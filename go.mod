module branchprof

go 1.22

package branchprof

// Benchmark harness: one benchmark per table and figure in the paper.
// Each benchmark regenerates its artifact from the shared measured
// matrix (built once per process) and reports the headline quantity
// as a custom metric, so `go test -bench=.` both exercises the full
// pipeline and prints the paper's numbers.

import (
	"testing"

	"branchprof/internal/dynpred"
	"branchprof/internal/engine"
	"branchprof/internal/exp"
	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

func sharedSuite(b *testing.B) *exp.Suite {
	b.Helper()
	s, err := exp.Shared()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1DeadCode regenerates Table 1: the dynamically dead
// code left in because dead-branch elimination must stay off to keep
// IFPROBBER/MFPixie branch numbering in sync.
func BenchmarkTable1DeadCode(b *testing.B) {
	var rows []exp.DeadCodeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	var max float64
	for _, r := range rows {
		if r.DeadPct > max {
			max = r.DeadPct
		}
	}
	b.ReportMetric(100*max, "max-dead-%")
}

// BenchmarkTable3 regenerates Table 3: instructions/break for the
// low-variability FORTRAN programs under self prediction.
func BenchmarkTable3(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Table3(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var min float64 = 1e18
	for _, r := range rows {
		if r.InstrsPerBreak < min {
			min = r.InstrsPerBreak
		}
	}
	b.ReportMetric(min, "min-instrs/break")
}

// BenchmarkFigure1a regenerates Figure 1a (FORTRAN, no prediction).
func BenchmarkFigure1a(b *testing.B) {
	benchFigure1(b, workloads.Fortran)
}

// BenchmarkFigure1b regenerates Figure 1b (C, no prediction).
func BenchmarkFigure1b(b *testing.B) {
	benchFigure1(b, workloads.C)
}

func benchFigure1(b *testing.B, lang workloads.Lang) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = exp.Figure1(s, lang)
	}
	var sum float64
	for _, r := range rows {
		sum += r.NoCalls
	}
	b.ReportMetric(sum/float64(len(rows)), "avg-instrs/break")
}

// BenchmarkFigure2a regenerates Figure 2a (spice2g6 predicted).
func BenchmarkFigure2a(b *testing.B) {
	benchFigure2(b, []string{"spice2g6"})
}

// BenchmarkFigure2b regenerates Figure 2b (C programs predicted).
func BenchmarkFigure2b(b *testing.B) {
	s := sharedSuite(b)
	benchFigure2(b, exp.CProgramNames(s))
}

func benchFigure2(b *testing.B, progs []string) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.Fig2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Figure2(s, progs)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ratioSum float64
	for _, r := range rows {
		ratioSum += r.Others / r.Self
	}
	b.ReportMetric(100*ratioSum/float64(len(rows)), "others-%-of-self")
}

// BenchmarkFigure3a regenerates Figure 3a (spice2g6 pairwise).
func BenchmarkFigure3a(b *testing.B) {
	benchFigure3(b, []string{"spice2g6"})
}

// BenchmarkFigure3b regenerates Figure 3b (C programs pairwise).
func BenchmarkFigure3b(b *testing.B) {
	s := sharedSuite(b)
	benchFigure3(b, exp.CProgramNames(s))
}

func benchFigure3(b *testing.B, progs []string) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.Fig3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Figure3(s, progs)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64 = 1e18
	for _, r := range rows {
		if r.WorstPct < worst {
			worst = r.WorstPct
		}
	}
	b.ReportMetric(worst, "worst-%-of-self")
}

// BenchmarkTakenConstancy regenerates the percent-taken observation.
func BenchmarkTakenConstancy(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.TakenRow
	for i := 0; i < b.N; i++ {
		rows = exp.TakenConstancy(s)
	}
	var maxSpread float64
	for _, r := range rows {
		if r.Program != "spice2g6" && r.Program != "uncompress" && r.Spread() > maxSpread {
			maxSpread = r.Spread()
		}
	}
	b.ReportMetric(maxSpread, "max-spread-pp")
}

// BenchmarkCombinedModes regenerates the scaled/unscaled/polling
// comparison.
func BenchmarkCombinedModes(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.CombinedRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.CombinedComparison(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sc, un float64
	for _, r := range rows {
		sc += r.Scaled
		un += r.Unscaled
	}
	b.ReportMetric(sc/un, "scaled/unscaled")
}

// BenchmarkHeuristicComparison regenerates the heuristics-lose-2x
// observation.
func BenchmarkHeuristicComparison(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.HeuristicRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.HeuristicComparison(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	var n int
	for _, r := range rows {
		if f := r.Factor(); f > 0 && f < 1e6 {
			sum += f
			n++
		}
	}
	b.ReportMetric(sum/float64(n), "profile-vs-heuristic-x")
}

// BenchmarkMotivation regenerates the fpppp/li contrast that opens
// the paper's argument for instructions-per-mispredicted-branch.
func BenchmarkMotivation(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.MotivationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Motivation(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].InstrsPerMispred/rows[1].InstrsPerMispred, "fpppp/li-mispred-ratio")
}

// ---- extension benchmarks ----

// BenchmarkStaticVsDynamic regenerates the extension comparing static
// profile prediction with simulated 1/2-bit hardware predictors.
func BenchmarkStaticVsDynamic(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.DynRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.StaticVsDynamic(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var wins int
	for _, r := range rows {
		if r.SelfRate <= r.TwoBitRate {
			wins++
		}
	}
	b.ReportMetric(float64(wins)/float64(len(rows)), "static-wins-frac")
}

// BenchmarkRunLengths regenerates the run-length distribution
// extension.
func BenchmarkRunLengths(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.RunLengthRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.RunLengths(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxCV float64
	for _, r := range rows {
		if r.Stats.CV > maxCV {
			maxCV = r.Stats.CV
		}
	}
	b.ReportMetric(maxCV, "max-runlength-cv")
}

// BenchmarkCoverage regenerates the coverage-vs-quality study.
func BenchmarkCoverage(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.CoverageRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Coverage(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(exp.CoverageCorrelation(rows), "pearson-r")
}

// ---- substrate micro-benchmarks ----

// BenchmarkCompileAllWorkloads measures the MF compiler over the
// whole sample base.
func BenchmarkCompileAllWorkloads(b *testing.B) {
	all := workloads.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range all {
			if _, err := mfc.Compile(w.Name, w.Source, mfc.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// liSieve compiles the li workload and returns its pre-decoded image
// with the sievel dataset — the fixture both VM-speed benchmarks
// share so their numbers are a clean backend A/B.
func liSieve(b *testing.B) (*vm.Image, []byte) {
	b.Helper()
	w, err := workloads.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return vm.Load(prog), w.Datasets[2].Gen() // sievel
}

// BenchmarkVMInterpreter measures raw interpreter speed on the li
// sieve workload, reporting instructions per second. It pins the
// interpreter explicitly: the test binary links the generated
// workload bodies, so the default Run dispatch would silently measure
// codegen instead.
func BenchmarkVMInterpreter(b *testing.B) {
	im, input := liSieve(b)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := im.RunInterpreter(input, nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "vm-instrs/s")
}

// BenchmarkVMCodegen measures the compiled-to-Go backend on the same
// workload and dataset as BenchmarkVMInterpreter; `make bench-codegen`
// pairs the two to book the speedup into BENCH_VM.json.
func BenchmarkVMCodegen(b *testing.B) {
	w, err := workloads.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if vm.CompiledFor(prog) == nil {
		b.Fatal("no compiled body registered for li — run `go generate ./internal/workloads/compiled`")
	}
	if !vm.CompiledEnabled() {
		b.Fatal("compiled backend disabled (BRANCHPROF_VM_BACKEND=interp?)")
	}
	im, input := vm.Load(prog), w.Datasets[2].Gen() // sievel
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := im.Run(input, nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "vm-instrs/s")
}

// branchEvent is one recorded conditional-branch outcome, for
// replaying a real program's branch stream through predictors without
// re-running the VM.
type branchEvent struct {
	site  int32
	taken bool
}

// streamRecorder captures a run's branch stream.
type streamRecorder struct {
	events []branchEvent
}

func (r *streamRecorder) Branch(site int32, taken bool, _ uint64) {
	r.events = append(r.events, branchEvent{site, taken})
}
func (r *streamRecorder) Transfer(vm.TransferKind, uint64) {}

// BenchmarkPredictorZoo measures predictor-simulation throughput: the
// li sieve workload's branch stream replayed through the full zoo
// (1-bit, 2-bit, two-level, gshare, bi-mode), reporting predictor
// decisions per second — the marginal cost of attaching every scheme
// to a traced run.
func BenchmarkPredictorZoo(b *testing.B) {
	w, err := workloads.ByName("li")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := &streamRecorder{}
	if _, err := vm.Run(prog, w.Datasets[2].Gen(), &vm.Config{Trace: rec}); err != nil {
		b.Fatal(err)
	}
	if len(rec.events) == 0 {
		b.Fatal("no branch events recorded")
	}
	b.ResetTimer()
	var decisions uint64
	for i := 0; i < b.N; i++ {
		preds := dynpred.Zoo(len(prog.Sites))
		for _, ev := range rec.events {
			for _, p := range preds {
				p.Branch(ev.site, ev.taken, 0)
			}
		}
		for _, p := range preds {
			if p.Err() != nil {
				b.Fatal(p.Err())
			}
			decisions += p.Executed()
		}
	}
	b.ReportMetric(float64(decisions)/b.Elapsed().Seconds(), "pred-decisions/s")
}

// BenchmarkPredictEvaluate measures prediction construction and
// evaluation over the biggest profile in the suite.
func BenchmarkPredictEvaluate(b *testing.B) {
	s := sharedSuite(b)
	p, err := s.Program("gcc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := predict.Combine(p.OtherProfiles(0), predict.Scaled, p.Prog.Sites, predict.LoopHeuristic)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := predict.Evaluate(pred, p.Runs[0].Prof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInlineAblation regenerates the inlining ablation.
func BenchmarkInlineAblation(b *testing.B) {
	var rows []exp.InlineRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.InlineAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	var best float64
	for _, r := range rows {
		if r.Speedup() > best {
			best = r.Speedup()
		}
	}
	b.ReportMetric(best, "best-inline-gain-x")
}

// BenchmarkSelectStudy regenerates the if-conversion study.
func BenchmarkSelectStudy(b *testing.B) {
	var rows []exp.SelectRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.SelectStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	var max float64
	for _, r := range rows {
		if r.SelectPct > max {
			max = r.SelectPct
		}
	}
	b.ReportMetric(100*max, "max-select-%")
}

// BenchmarkDisagreement regenerates the worst-predictor failure
// decomposition.
func BenchmarkDisagreement(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.DisagreeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.DisagreementStudy(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var excess, unseen uint64
	for _, r := range rows {
		excess += r.Excess()
		unseen += r.UnseenMiss
	}
	b.ReportMetric(100*float64(unseen)/float64(excess), "unseen-share-%")
}

// BenchmarkTraceStudy regenerates the trace-selection extension.
func BenchmarkTraceStudy(b *testing.B) {
	s := sharedSuite(b)
	b.ResetTimer()
	var rows []exp.TraceRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.TraceStudy(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var gain float64
	var n int
	for _, r := range rows {
		if r.Block > 0 {
			gain += r.Profile / r.Block
			n++
		}
	}
	b.ReportMetric(gain/float64(n), "avg-trace-gain-x")
}

// BenchmarkSuiteCollectCold measures a from-scratch collection of the
// full program × dataset matrix: every workload compiled and every
// dataset interpreted, on a fresh engine each iteration.
func BenchmarkSuiteCollectCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{})
		s, err := exp.CollectWith(eng)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Programs) == 0 {
			b.Fatal("empty suite")
		}
		b.ReportMetric(float64(eng.Stats().Instrs), "instrs/op")
	}
}

// BenchmarkSuiteCollectWarm measures the same collection served from
// a pre-populated persistent cache: each iteration uses a fresh
// engine (empty memory cache) over the shared directory, so the cost
// is recompilation plus disk reads — the speedup over Cold is what
// the content-addressed cache buys.
func BenchmarkSuiteCollectWarm(b *testing.B) {
	dir := b.TempDir()
	if _, err := exp.CollectWith(engine.New(engine.Options{CacheDir: dir})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{CacheDir: dir})
		s, err := exp.CollectWith(eng)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Programs) == 0 {
			b.Fatal("empty suite")
		}
		if runs := eng.Stats().Runs; runs != 0 {
			b.Fatalf("warm collection executed %d runs; cache did not serve", runs)
		}
	}
}

package branchprof

// The complete IFPROBBER workflow, end to end: instrument-and-run,
// accumulate counts in the database across runs, feed them back into
// the source as directives, recompile the annotated source, and use
// the embedded directives as the prediction for a future run — the
// full loop the paper's section "Methods and Tools" describes.

import (
	"strings"
	"testing"

	"branchprof/internal/ifprob"
)

const workflowSrc = `
func classify(c int) int {
	if (c >= 'a' && c <= 'z') { return 1; }
	if (c >= 'A' && c <= 'Z') { return 2; }
	if (c >= '0' && c <= '9') { return 3; }
	return 0;
}

func main() int {
	var counts0 int = 0;
	var counts1 int = 0;
	var c int = getc();
	while (c != -1) {
		switch (classify(c)) {
		case 1, 2:
			counts0 = counts0 + 1;
		case 3:
			counts1 = counts1 + 1;
		}
		c = getc();
	}
	return counts0 * 1000 + counts1;
}
`

func TestFullFeedbackWorkflow(t *testing.T) {
	prog, err := Compile("classify", workflowSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// 1. Profile three previous runs into the accumulating database.
	db := ifprob.NewDB()
	for _, input := range []string{
		"The quick brown Fox 42!",
		"all lowercase words here",
		"1234 5678 90 numbers 11",
	} {
		run, err := Run(prog, []byte(input))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(run.Profile); err != nil {
			t.Fatal(err)
		}
	}
	accumulated := db.Get("classify")
	if accumulated == nil || accumulated.Executed() == 0 {
		t.Fatal("database did not accumulate")
	}

	// 2. Persist and reload the database (the cross-run handoff).
	path := t.TempDir() + "/db.json"
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ifprob.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	accumulated = reloaded.Get("classify")

	// 3. Feed the counts back into the source as directives.
	annotated, err := AnnotateSource(workflowSrc, prog, accumulated)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(annotated, "IFPROB(") {
		t.Fatal("annotation produced no directives")
	}

	// 4. Recompile the annotated source: directives are comments, so
	// the site table must be identical.
	prog2, err := Compile("classify", annotated, Options{})
	if err != nil {
		t.Fatalf("annotated source does not compile: %v", err)
	}
	if len(prog2.Sites) != len(prog.Sites) {
		t.Fatalf("annotation changed the site table: %d vs %d", len(prog2.Sites), len(prog.Sites))
	}

	// 5. The recompiling compiler reads its predictions out of the
	// source.
	embedded := ProfileFromSource(annotated, prog2)
	if embedded.Executed() != accumulated.Executed() {
		t.Fatalf("embedded profile lost counts: %d vs %d", embedded.Executed(), accumulated.Executed())
	}

	// 6. Predict a future run from the embedded directives and check
	// it matches predicting from the database directly.
	future, err := Run(prog2, []byte("A Fresh Run with 99 new Words 2026"))
	if err != nil {
		t.Fatal(err)
	}
	fromDirectives, err := PredictFromProfile(prog2, embedded)
	if err != nil {
		t.Fatal(err)
	}
	fromDB, err := PredictFromProfile(prog2, accumulated)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromDirectives.Dir {
		if fromDirectives.Dir[i] != fromDB.Dir[i] {
			t.Fatalf("site %d: directive prediction %v != database prediction %v",
				i, fromDirectives.Dir[i], fromDB.Dir[i])
		}
	}
	ipb, _, err := InstructionsPerBreak(future, fromDirectives)
	if err != nil {
		t.Fatal(err)
	}
	unpred := InstructionsPerBreakUnpredicted(future, false)
	if ipb <= unpred {
		t.Errorf("feedback prediction (%v) no better than no prediction (%v)", ipb, unpred)
	}
}

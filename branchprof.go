// Package branchprof reproduces the system of Fisher & Freudenberger,
// "Predicting Conditional Branch Directions From Previous Runs of a
// Program" (ASPLOS 1992): profile-guided static branch prediction,
// measured in instructions per break in control.
//
// The package is a facade over the substrates in internal/:
//
//   - a compiler for MF, a small C-like language, standing in for the
//     Multiflow trace-scheduling compiler (internal/mfc);
//   - a Trace-like scalar RISC virtual machine that counts every
//     instruction and every branch outcome (internal/vm);
//   - IFPROBBER-style branch profiling with an accumulating database
//     and source-level feedback directives (internal/ifprob);
//   - static predictors — self/oracle, single-profile, scaled and
//     unscaled sums, polling, loop heuristics (internal/predict);
//   - break-in-control accounting (internal/breaks);
//   - analogues of the paper's 15 benchmark programs (internal/workloads)
//     and the experiment harness regenerating each table and figure
//     (internal/exp).
//
// Typical use:
//
//	prog, _ := branchprof.Compile("demo", src, branchprof.Options{})
//	run, _ := branchprof.Run(prog, input)
//	pred, _ := branchprof.PredictFromProfile(prog, run.Profile)
//	ipb, _, _ := branchprof.InstructionsPerBreak(run, pred)
package branchprof

import (
	"branchprof/internal/breaks"
	"branchprof/internal/engine"
	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// Prelude returns the MF runtime prelude (puti, puts, geti, getf,
// srand/rnd, …). Prepend it to source that wants those helpers:
//
//	prog, err := branchprof.Compile("demo", branchprof.Prelude()+src, opts)
func Prelude() string { return workloads.Prelude() }

// Options controls compilation; see mfc.Options.
type Options = mfc.Options

// Program is a compiled MF program.
type Program = isa.Program

// Profile holds per-branch taken/total counts for one or more runs.
type Profile = ifprob.Profile

// Prediction assigns a static direction to every branch site.
type Prediction = predict.Prediction

// Breakdown reports what contributed to a run's breaks in control.
type Breakdown = breaks.Breakdown

// RunResult couples a VM run with its extracted branch profile.
type RunResult struct {
	Result  *vm.Result
	Profile *Profile
}

// Compile builds an MF source unit into an executable program. name
// labels the program in profiles and reports. Compilation is memoized
// by the shared engine, so recompiling identical source is free.
func Compile(name, src string, opts Options) (*Program, error) {
	return engine.Default().Compile(name, src, opts)
}

// Run executes the program on input through the shared engine,
// collecting instruction counts and branch outcomes.
func Run(p *Program, input []byte) (*RunResult, error) {
	res, err := engine.Default().Run(p, "", input, nil)
	if err != nil {
		return nil, err
	}
	return &RunResult{Result: res, Profile: ifprob.FromRun(p.Source, "input", res)}, nil
}

// PredictSelf returns the oracle prediction: the run predicts itself,
// every branch in its majority direction — the best any static
// predictor can do.
func PredictSelf(p *Program, r *RunResult) (*Prediction, error) {
	return predict.FromProfile(r.Profile, p.Sites, predict.LoopHeuristic)
}

// PredictFromProfile predicts from a previously gathered profile
// (typically of *other* datasets), falling back to the loop heuristic
// on never-executed branches.
func PredictFromProfile(p *Program, prof *Profile) (*Prediction, error) {
	return predict.FromProfile(prof, p.Sites, predict.LoopHeuristic)
}

// PredictScaledSum combines several profiles with equal per-dataset
// weight — the predictor the paper reports.
func PredictScaledSum(p *Program, profs []*Profile) (*Prediction, error) {
	return predict.Combine(profs, predict.Scaled, p.Sites, predict.LoopHeuristic)
}

// PredictHeuristic predicts with no profile at all: loop back edges
// taken, everything else not taken.
func PredictHeuristic(p *Program) *Prediction {
	return predict.FromHeuristic(p.Sites, predict.LoopHeuristic)
}

// InstructionsPerBreak evaluates the prediction against the run and
// returns the paper's measure — instructions executed per mispredicted
// branch or unavoidable transfer — plus the break composition.
func InstructionsPerBreak(r *RunResult, pred *Prediction) (float64, Breakdown, error) {
	return breaks.WithPrediction(r.Result, r.Profile, pred)
}

// InstructionsPerBreakUnpredicted returns the measure with every
// conditional branch counted as a break; includeCalls additionally
// counts direct calls and returns (Figure 1's two bar styles).
func InstructionsPerBreakUnpredicted(r *RunResult, includeCalls bool) float64 {
	return breaks.Unpredicted(r.Result, includeCalls)
}

// PercentCorrect returns the fraction of the run's executed branches
// the prediction got right — the traditional measure the paper argues
// is insufficient.
func PercentCorrect(r *RunResult, pred *Prediction) (float64, error) {
	ev, err := predict.Evaluate(pred, r.Profile)
	if err != nil {
		return 0, err
	}
	return ev.PercentCorrect(), nil
}

// AnnotateSource re-emits MF source with IFPROB feedback directives
// from the profile, the way the IFPROBBER utility fed accumulated
// counts back to the user.
func AnnotateSource(src string, p *Program, prof *Profile) (string, error) {
	return ifprob.AnnotateSource(src, p, prof)
}

// ProfileFromSource recovers the branch profile embedded in annotated
// source (the consuming half of the feedback loop: the recompiling
// compiler reads the directives a previous run's counts produced).
// Directives are comments, so the annotated source compiles to the
// same site table as the original; p should be the program compiled
// from src.
func ProfileFromSource(src string, p *Program) *Profile {
	return ifprob.ProfileFromDirectives(p, ifprob.ParseDirectives(src))
}

package branchprof

import (
	"strings"
	"testing"
)

const demoSrc = `
func main() int {
	var i int;
	var odd int = 0;
	var c int = getc();
	while (c != -1) {
		if ((c & 1) == 1) {
			odd = odd + 1;
		}
		for (i = 0; i < 3; i = i + 1) {
			odd = odd + 0;
		}
		c = getc();
	}
	return odd;
}
`

func compileDemo(t *testing.T) *Program {
	t.Helper()
	p, err := Compile("demo", demoSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeEndToEnd(t *testing.T) {
	prog := compileDemo(t)
	train, err := Run(prog, []byte("aaabbbccc"))
	if err != nil {
		t.Fatal(err)
	}
	target, err := Run(prog, []byte("xyzxyzxyzxyz"))
	if err != nil {
		t.Fatal(err)
	}

	selfPred, err := PredictSelf(prog, target)
	if err != nil {
		t.Fatal(err)
	}
	selfIPB, bd, err := InstructionsPerBreak(target, selfPred)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Instrs != target.Result.Instrs {
		t.Errorf("breakdown instrs %d != run %d", bd.Instrs, target.Result.Instrs)
	}

	crossPred, err := PredictFromProfile(prog, train.Profile)
	if err != nil {
		t.Fatal(err)
	}
	crossIPB, _, err := InstructionsPerBreak(target, crossPred)
	if err != nil {
		t.Fatal(err)
	}
	if crossIPB > selfIPB {
		t.Errorf("cross prediction (%v) beat the self oracle (%v)", crossIPB, selfIPB)
	}
	unpred := InstructionsPerBreakUnpredicted(target, false)
	if unpred > selfIPB {
		t.Errorf("no prediction (%v) beat self prediction (%v)", unpred, selfIPB)
	}
	pct, err := PercentCorrect(target, selfPred)
	if err != nil {
		t.Fatal(err)
	}
	if pct <= 0.5 || pct > 1 {
		t.Errorf("self percent correct = %v", pct)
	}
}

func TestFacadeScaledSumAndHeuristic(t *testing.T) {
	prog := compileDemo(t)
	var profs []*Profile
	for _, in := range []string{"hello world", "AAAA", "mixed Case Input 123"} {
		r, err := Run(prog, []byte(in))
		if err != nil {
			t.Fatal(err)
		}
		profs = append(profs, r.Profile)
	}
	pred, err := PredictScaledSum(prog, profs)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Sites() != len(prog.Sites) {
		t.Errorf("prediction covers %d sites, program has %d", pred.Sites(), len(prog.Sites))
	}
	h := PredictHeuristic(prog)
	// The demo's loops mean the heuristic must predict at least one
	// site taken (the back edges) and at least one not taken.
	var taken, notTaken bool
	for _, d := range h.Dir {
		if d.String() == "taken" {
			taken = true
		} else {
			notTaken = true
		}
	}
	if !taken || !notTaken {
		t.Error("loop heuristic should mix directions on a program with loops and ifs")
	}
}

func TestFacadeAnnotate(t *testing.T) {
	prog := compileDemo(t)
	r, err := Run(prog, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := AnnotateSource(demoSrc, prog, r.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IFPROB") {
		t.Error("annotated source has no directives")
	}
	if len(strings.Split(out, "\n")) != len(strings.Split(demoSrc, "\n")) {
		t.Error("annotation changed the line count")
	}
}

func TestPreludeCompiles(t *testing.T) {
	src := Prelude() + `
func main() int {
	puti(-42);
	putc('\n');
	putf(3.25);
	putc('\n');
	puts("done");
	return geti();
}
`
	prog, err := Compile("preludedemo", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(prog, []byte("  123 "))
	if err != nil {
		t.Fatal(err)
	}
	out := string(r.Result.Output)
	if !strings.Contains(out, "-42") || !strings.Contains(out, "3.250") || !strings.Contains(out, "done") {
		t.Errorf("output = %q", out)
	}
	if r.Result.ExitCode != 123 {
		t.Errorf("geti = %d, want 123", r.Result.ExitCode)
	}
}

package branchprof_test

import (
	"fmt"
	"log"

	"branchprof"
)

// ExampleCompile compiles a two-branch program, runs it, and prints
// the measured branch behaviour.
func ExampleCompile() {
	src := `
func main() int {
	var i int;
	var odd int = 0;
	for (i = 0; i < 8; i = i + 1) {
		if ((i & 1) == 1) {
			odd = odd + 1;
		}
	}
	return odd;
}
`
	prog, err := branchprof.Compile("demo", src, branchprof.Options{})
	if err != nil {
		log.Fatal(err)
	}
	run, err := branchprof.Run(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exit %d, %d static sites, %d branches executed\n",
		run.Result.ExitCode, len(prog.Sites), run.Result.CondBranches())
	// Output: exit 4, 2 static sites, 17 branches executed
}

// ExamplePredictFromProfile uses one run's profile to predict another
// and reports the paper's measure.
func ExamplePredictFromProfile() {
	src := `
func main() int {
	var vowels int = 0;
	var c int = getc();
	while (c != -1) {
		if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
			vowels = vowels + 1;
		}
		c = getc();
	}
	return vowels;
}
`
	prog, err := branchprof.Compile("vowels", src, branchprof.Options{})
	if err != nil {
		log.Fatal(err)
	}
	train, err := branchprof.Run(prog, []byte("the paper asks whether previous runs predict future ones"))
	if err != nil {
		log.Fatal(err)
	}
	target, err := branchprof.Run(prog, []byte("and finds that they usually do"))
	if err != nil {
		log.Fatal(err)
	}
	pred, err := branchprof.PredictFromProfile(prog, train.Profile)
	if err != nil {
		log.Fatal(err)
	}
	pct, err := branchprof.PercentCorrect(target, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("previous run predicts %.0f%% of the target's branches\n", 100*pct)
	// Output: previous run predicts 85% of the target's branches
}

// ExampleAnnotateSource shows the IFPROBBER feedback directives.
func ExampleAnnotateSource() {
	src := `func main() int {
	var n int = 0;
	var c int = getc();
	while (c != -1) {
		n = n + 1;
		c = getc();
	}
	return n;
}`
	prog, err := branchprof.Compile("count", src, branchprof.Options{})
	if err != nil {
		log.Fatal(err)
	}
	run, err := branchprof.Run(prog, []byte("abc"))
	if err != nil {
		log.Fatal(err)
	}
	annotated, err := branchprof.AnnotateSource(src, prog, run.Profile)
	if err != nil {
		log.Fatal(err)
	}
	// Print just the annotated line.
	fmt.Println(lineContaining(annotated, "IFPROB"))
	// Output: 	while (c != -1) {  //!MF! IFPROB(while@4:2, 3, 4)
}

func lineContaining(s, sub string) string {
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			if containsStr(line, sub) {
				return line
			}
			start = i + 1
		}
	}
	return ""
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Package cli factors the plumbing every MF command-line tool used to
// carry privately: source-file loading with the optional runtime
// prelude, dataset input reading (file or stdin), uniform error
// reporting, and the shared flags (-cache-dir, -stats, -timeout,
// -max-retries, -allow-partial) that give each tool the shared
// compile→run→profile pipeline with its persistent measurement cache,
// per-stage statistics, and the robustness controls from
// docs/ROBUSTNESS.md. Context wires SIGINT/SIGTERM into engine
// cancellation: the first signal cancels in-flight work and still
// flushes -stats; a second force-exits.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"branchprof/internal/engine"
	"branchprof/internal/workloads"
)

// Tool is one command-line tool's shared state. Construct it with New
// before flag.Parse: it registers the engine flags on the default
// flag set.
type Tool struct {
	Name string

	cacheDir     *string
	stats        *bool
	timeout      *time.Duration
	maxRetries   *int
	allowPartial *bool

	engOnce sync.Once
	eng     *engine.Engine

	ctxOnce sync.Once
	ctx     context.Context
	cancel  context.CancelFunc
}

// New registers the shared engine flags and returns the tool handle.
func New(name string) *Tool {
	return &Tool{
		Name:         name,
		cacheDir:     flag.String("cache-dir", "", "persistent measurement cache directory (empty = in-memory only)"),
		stats:        flag.Bool("stats", false, "print engine pipeline statistics to stderr on exit"),
		timeout:      flag.Duration("timeout", 0, "overall deadline for the tool's measurement work (0 = none)"),
		maxRetries:   flag.Int("max-retries", 2, "retries for transient cache I/O faults (0 disables)"),
		allowPartial: flag.Bool("allow-partial", false, "degrade instead of failing: keep healthy results past failed cells and annotate coverage"),
	}
}

// Engine returns the tool's engine, built on first use from the
// -cache-dir and -max-retries flags.
func (t *Tool) Engine() *engine.Engine {
	t.engOnce.Do(func() {
		retries := *t.maxRetries
		if retries <= 0 {
			retries = -1 // engine spells "retries disabled" as negative; 0 picks its default
		}
		t.eng = engine.New(engine.Options{CacheDir: *t.cacheDir, MaxRetries: retries})
	})
	return t.eng
}

// Context returns the tool's root context, honouring -timeout, and
// installs the signal handler on first use: the first SIGINT/SIGTERM
// cancels the context (in-flight engine work unwinds promptly and the
// tool still flushes -stats on its way out through Fatal), a second
// signal force-exits with the conventional status 130. Tools that
// never call Context keep the default die-on-^C behaviour.
func (t *Tool) Context() context.Context {
	t.ctxOnce.Do(func() {
		if *t.timeout > 0 {
			t.ctx, t.cancel = context.WithTimeout(context.Background(), *t.timeout)
		} else {
			t.ctx, t.cancel = context.WithCancel(context.Background())
		}
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-ch
			fmt.Fprintf(os.Stderr, "%s: %v: cancelling (again to force exit)\n", t.Name, sig)
			t.cancel()
			<-ch
			os.Exit(130)
		}()
	})
	return t.ctx
}

// AllowPartial reports the -allow-partial flag.
func (t *Tool) AllowPartial() bool { return *t.allowPartial }

// PrintStats writes the engine's pipeline statistics to stderr when
// -stats was given. Call it after the tool's real work.
func (t *Tool) PrintStats() {
	if t.stats == nil || !*t.stats {
		return
	}
	fmt.Fprintln(os.Stderr, t.Engine().Stats().String())
}

// Fatal reports err prefixed with the tool name and exits 1. The
// -stats output is flushed first, so a cancelled or failed run still
// reports what the pipeline managed to do — the paper's methodology
// leans on knowing how much measurement a run completed.
func (t *Tool) Fatal(err error) {
	t.PrintStats()
	fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, err)
	os.Exit(1)
}

// Usage prints the usage line and exits 2.
func (t *Tool) Usage(usage string) {
	fmt.Fprintln(os.Stderr, "usage:", usage)
	os.Exit(2)
}

// LoadSource reads an MF source file, derives the program name from
// the file's base name, and optionally prepends the runtime prelude
// (puti, geti, …).
func LoadSource(path string, prelude bool) (name, source string, err error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	source = string(src)
	if prelude {
		source = workloads.Prelude() + source
	}
	return name, source, nil
}

// ReadInput returns the dataset bytes: the named file, or all of
// stdin when path is empty.
func ReadInput(path string) ([]byte, error) {
	if path != "" {
		return os.ReadFile(path)
	}
	return io.ReadAll(os.Stdin)
}

// InputLabel names the dataset for profiles and cache entries: the
// input file's base name, or "stdin".
func InputLabel(path string) string {
	if path == "" {
		return "stdin"
	}
	return filepath.Base(path)
}

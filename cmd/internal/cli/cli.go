// Package cli factors the plumbing every MF command-line tool used to
// carry privately: source-file loading with the optional runtime
// prelude, dataset input reading (file or stdin), uniform error
// reporting, and the shared flags (-cache-dir, -stats, -timeout,
// -max-retries, -allow-partial) that give each tool the shared
// compile→run→profile pipeline with its persistent measurement cache,
// per-stage statistics, and the robustness controls from
// docs/ROBUSTNESS.md. Context wires SIGINT/SIGTERM into engine
// cancellation: the first signal cancels in-flight work and still
// flushes -stats; a second force-exits.
package cli

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"branchprof/internal/engine"
	"branchprof/internal/obs"
	"branchprof/internal/workloads"
)

// Tool is one command-line tool's shared state. Construct it with New
// before flag.Parse: it registers the engine flags on the default
// flag set.
type Tool struct {
	Name string

	cacheDir     *string
	stats        *bool
	timeout      *time.Duration
	maxRetries   *int
	allowPartial *bool

	trace       *string
	traceChrome *string
	metrics     *string
	metricsAddr *string
	pprofAddr   *string
	vmprof      *string

	engOnce sync.Once
	eng     *engine.Engine

	ctxOnce sync.Once
	ctx     context.Context
	cancel  context.CancelFunc

	obsOnce  sync.Once
	obsB     *obs.Obs
	traceBuf *bytes.Buffer
	rootSpan *obs.Span
	servers  []*obs.Server

	finishOnce sync.Once
}

// New registers the shared engine flags and returns the tool handle.
func New(name string) *Tool {
	return &Tool{
		Name:         name,
		cacheDir:     flag.String("cache-dir", "", "persistent measurement cache directory (empty = in-memory only)"),
		stats:        flag.Bool("stats", false, "print engine pipeline statistics to stderr on exit"),
		timeout:      flag.Duration("timeout", 0, "overall deadline for the tool's measurement work (0 = none)"),
		maxRetries:   flag.Int("max-retries", 2, "retries for transient cache I/O faults (0 disables)"),
		allowPartial: flag.Bool("allow-partial", false, "degrade instead of failing: keep healthy results past failed cells and annotate coverage"),
		trace:        flag.String("trace", "", "write pipeline span trace as JSONL to this file"),
		traceChrome:  flag.String("trace-chrome", "", "write the span trace as a Chrome trace_event file (chrome://tracing, Perfetto)"),
		metrics:      flag.String("metrics", "", "write metrics in Prometheus text format to this file on exit"),
		metricsAddr:  flag.String("metrics-addr", "", "serve /metrics (plus pprof) on this address while the tool runs"),
		pprofAddr:    flag.String("pprof-addr", "", "serve net/http/pprof and /debug/vmprof on this address while the tool runs"),
		vmprof:       flag.String("vmprof", "", "write the VM sampling profile (folded stacks, flamegraph input) to this file"),
	}
}

// Engine returns the tool's engine, built on first use from the
// -cache-dir, -max-retries and observability flags.
func (t *Tool) Engine() *engine.Engine {
	t.engOnce.Do(func() {
		retries := *t.maxRetries
		if retries <= 0 {
			retries = -1 // engine spells "retries disabled" as negative; 0 picks its default
		}
		t.eng = engine.New(engine.Options{CacheDir: *t.cacheDir, MaxRetries: retries, Obs: t.Obs()})
	})
	return t.eng
}

// Warn reports a non-fatal problem to stderr, prefixed with the tool
// name: observability and persistence are best-effort and never kill
// a measurement. Exported for long-running tools (branchprofd) that
// surface startup and drain warnings through the same channel.
func (t *Tool) Warn(format string, args ...any) {
	fmt.Fprintf(os.Stderr, t.Name+": warning: "+format+"\n", args...)
}

// Obs builds the tool's observability bundle from the -trace,
// -trace-chrome, -metrics-addr, -pprof-addr and -vmprof flags on
// first use, starting the HTTP servers when addresses were given. It
// returns nil when none of those flags ask for anything, so the
// engine's hot paths keep their disabled-sink cost (the -metrics file
// export needs no bundle: it reads the engine's registry at Finish).
func (t *Tool) Obs() *obs.Obs {
	t.obsOnce.Do(func() {
		tracing := *t.trace != "" || *t.traceChrome != ""
		profiling := *t.vmprof != "" || *t.pprofAddr != ""
		serving := *t.metricsAddr != "" || *t.pprofAddr != ""
		if !tracing && !profiling && !serving {
			return
		}
		o := &obs.Obs{Reg: obs.NewRegistry()}
		if tracing {
			t.traceBuf = &bytes.Buffer{}
			o.Tr = obs.NewTracer(t.traceBuf, nil)
		}
		if profiling {
			o.VMProf = obs.NewVMProfile()
		}
		t.obsB = o
		t.rootSpan = o.Tracer().Start(nil, "tool/"+t.Name)
		for _, addr := range []string{*t.metricsAddr, *t.pprofAddr} {
			if addr == "" {
				continue
			}
			srv, err := obs.Serve(addr, o.Reg, o.VMProf)
			if err != nil {
				t.Warn("observability server on %s: %v", addr, err)
				continue
			}
			t.servers = append(t.servers, srv)
		}
	})
	return t.obsB
}

// Finish flushes every observability sink and the -stats line: the
// trace JSONL and its Chrome conversion, the Prometheus metrics file,
// the folded VM profile, and the HTTP servers. Idempotent; every tool
// exit path (including Fatal) funnels through it. Sink failures warn
// rather than fail — the measurement already succeeded.
func (t *Tool) Finish() {
	t.finishOnce.Do(func() {
		// Materialize the bundle even if no engine work ran (e.g. a
		// listing-only invocation): the flags still promise output.
		t.Obs()
		t.rootSpan.End()
		if tr := t.obsB.Tracer(); tr != nil {
			if err := tr.Err(); err != nil {
				t.Warn("%v", err)
			}
			if *t.trace != "" {
				if err := os.WriteFile(*t.trace, t.traceBuf.Bytes(), 0o644); err != nil {
					t.Warn("writing -trace: %v", err)
				}
			}
			if *t.traceChrome != "" {
				var out bytes.Buffer
				if err := obs.WriteChromeTrace(&out, bytes.NewReader(t.traceBuf.Bytes())); err != nil {
					t.Warn("converting -trace-chrome: %v", err)
				} else if err := os.WriteFile(*t.traceChrome, out.Bytes(), 0o644); err != nil {
					t.Warn("writing -trace-chrome: %v", err)
				}
			}
		}
		if *t.metrics != "" {
			var out bytes.Buffer
			if err := t.Engine().Registry().WritePrometheus(&out); err != nil {
				t.Warn("rendering -metrics: %v", err)
			} else if err := os.WriteFile(*t.metrics, out.Bytes(), 0o644); err != nil {
				t.Warn("writing -metrics: %v", err)
			}
		}
		if vp := t.obsB.VMProfile(); vp != nil && *t.vmprof != "" {
			var out bytes.Buffer
			if err := vp.WriteFolded(&out); err != nil {
				t.Warn("rendering -vmprof: %v", err)
			} else if err := os.WriteFile(*t.vmprof, out.Bytes(), 0o644); err != nil {
				t.Warn("writing -vmprof: %v", err)
			}
		}
		for _, srv := range t.servers {
			srv.Close()
		}
		t.PrintStats()
	})
}

// Context returns the tool's root context, honouring -timeout, and
// installs the signal handler on first use: the first SIGINT/SIGTERM
// cancels the context (in-flight engine work unwinds promptly and the
// tool still flushes -stats on its way out through Fatal), a second
// signal force-exits with the conventional status 130. Tools that
// never call Context keep the default die-on-^C behaviour.
func (t *Tool) Context() context.Context {
	t.ctxOnce.Do(func() {
		if *t.timeout > 0 {
			t.ctx, t.cancel = context.WithTimeout(context.Background(), *t.timeout)
		} else {
			t.ctx, t.cancel = context.WithCancel(context.Background())
		}
		// With tracing on, hang the tool-level root span on the context
		// so every pipeline span nests under it.
		if t.Obs() != nil && t.rootSpan != nil {
			t.ctx = obs.ContextWithSpan(t.ctx, t.rootSpan)
		}
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-ch
			fmt.Fprintf(os.Stderr, "%s: %v: cancelling (again to force exit)\n", t.Name, sig)
			t.cancel()
			<-ch
			os.Exit(130)
		}()
	})
	return t.ctx
}

// AllowPartial reports the -allow-partial flag.
func (t *Tool) AllowPartial() bool { return *t.allowPartial }

// PrintStats writes the engine's pipeline statistics to stderr when
// -stats was given. Call it after the tool's real work.
func (t *Tool) PrintStats() {
	if t.stats == nil || !*t.stats {
		return
	}
	fmt.Fprintln(os.Stderr, t.Engine().Stats().String())
}

// Fatal reports err prefixed with the tool name and exits 1. The
// observability sinks and -stats output are flushed first, so a
// cancelled or failed run still reports what the pipeline managed to
// do — the paper's methodology leans on knowing how much measurement
// a run completed.
func (t *Tool) Fatal(err error) {
	t.Finish()
	fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, err)
	os.Exit(1)
}

// Usage prints the usage line and exits 2.
func (t *Tool) Usage(usage string) {
	fmt.Fprintln(os.Stderr, "usage:", usage)
	os.Exit(2)
}

// LoadSource reads an MF source file, derives the program name from
// the file's base name, and optionally prepends the runtime prelude
// (puti, geti, …).
func LoadSource(path string, prelude bool) (name, source string, err error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	source = string(src)
	if prelude {
		source = workloads.Prelude() + source
	}
	return name, source, nil
}

// ReadInput returns the dataset bytes: the named file, or all of
// stdin when path is empty.
func ReadInput(path string) ([]byte, error) {
	if path != "" {
		return os.ReadFile(path)
	}
	return io.ReadAll(os.Stdin)
}

// InputLabel names the dataset for profiles and cache entries: the
// input file's base name, or "stdin".
func InputLabel(path string) string {
	if path == "" {
		return "stdin"
	}
	return filepath.Base(path)
}

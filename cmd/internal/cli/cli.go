// Package cli factors the plumbing every MF command-line tool used to
// carry privately: source-file loading with the optional runtime
// prelude, dataset input reading (file or stdin), uniform error
// reporting, and the engine flags (-cache-dir, -stats) that give each
// tool the shared compile→run→profile pipeline with its persistent
// measurement cache and per-stage statistics.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"branchprof/internal/engine"
	"branchprof/internal/workloads"
)

// Tool is one command-line tool's shared state. Construct it with New
// before flag.Parse: it registers the engine flags on the default
// flag set.
type Tool struct {
	Name string

	cacheDir *string
	stats    *bool

	engOnce sync.Once
	eng     *engine.Engine
}

// New registers the shared engine flags and returns the tool handle.
func New(name string) *Tool {
	return &Tool{
		Name:     name,
		cacheDir: flag.String("cache-dir", "", "persistent measurement cache directory (empty = in-memory only)"),
		stats:    flag.Bool("stats", false, "print engine pipeline statistics to stderr on exit"),
	}
}

// Engine returns the tool's engine, built on first use from the
// -cache-dir flag.
func (t *Tool) Engine() *engine.Engine {
	t.engOnce.Do(func() {
		t.eng = engine.New(engine.Options{CacheDir: *t.cacheDir})
	})
	return t.eng
}

// PrintStats writes the engine's pipeline statistics to stderr when
// -stats was given. Call it after the tool's real work.
func (t *Tool) PrintStats() {
	if t.stats == nil || !*t.stats {
		return
	}
	fmt.Fprintln(os.Stderr, t.Engine().Stats().String())
}

// Fatal reports err prefixed with the tool name and exits 1.
func (t *Tool) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", t.Name, err)
	os.Exit(1)
}

// Usage prints the usage line and exits 2.
func (t *Tool) Usage(usage string) {
	fmt.Fprintln(os.Stderr, "usage:", usage)
	os.Exit(2)
}

// LoadSource reads an MF source file, derives the program name from
// the file's base name, and optionally prepends the runtime prelude
// (puti, geti, …).
func LoadSource(path string, prelude bool) (name, source string, err error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	source = string(src)
	if prelude {
		source = workloads.Prelude() + source
	}
	return name, source, nil
}

// ReadInput returns the dataset bytes: the named file, or all of
// stdin when path is empty.
func ReadInput(path string) ([]byte, error) {
	if path != "" {
		return os.ReadFile(path)
	}
	return io.ReadAll(os.Stdin)
}

// InputLabel names the dataset for profiles and cache entries: the
// input file's base name, or "stdin".
func InputLabel(path string) string {
	if path == "" {
		return "stdin"
	}
	return filepath.Base(path)
}

// Command experiments regenerates every table and figure from Fisher
// & Freudenberger (ASPLOS 1992) on the simulated substrate. With no
// flags it prints everything; individual flags select single
// artifacts. All measurement routes through the shared engine, so
// -cache-dir makes repeated regenerations serve the compile→run→
// profile work from the persistent cache, and -stats reports the
// per-stage pipeline costs.
package main

import (
	"flag"
	"fmt"
	"os"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/exp"
	"branchprof/internal/workloads"
)

func main() {
	t := cli.New("experiments")
	var (
		table1     = flag.Bool("table1", false, "Table 1: dynamically dead code")
		table2     = flag.Bool("table2", false, "Table 2: program sample base")
		table3     = flag.Bool("table3", false, "Table 3: FORTRAN instrs/break")
		fig1a      = flag.Bool("fig1a", false, "Figure 1a: unpredicted breaks, FORTRAN")
		fig1b      = flag.Bool("fig1b", false, "Figure 1b: unpredicted breaks, C")
		fig2a      = flag.Bool("fig2a", false, "Figure 2a: predicted breaks, spice2g6")
		fig2b      = flag.Bool("fig2b", false, "Figure 2b: predicted breaks, C programs")
		fig3a      = flag.Bool("fig3a", false, "Figure 3a: best/worst predictors, spice2g6")
		fig3b      = flag.Bool("fig3b", false, "Figure 3b: best/worst predictors, C programs")
		taken      = flag.Bool("taken", false, "percent-taken constancy")
		combined   = flag.Bool("combined", false, "scaled vs unscaled vs polling")
		heuristic  = flag.Bool("heuristic", false, "profile feedback vs heuristics")
		motivation = flag.Bool("motivation", false, "fpppp vs li percent-correct contrast")
		crossmode  = flag.Bool("crossmode", false, "compress vs uncompress cross-prediction")
		dynamic    = flag.Bool("dynamic", false, "extension: static vs 1/2-bit dynamic predictors")
		runlens    = flag.Bool("runlengths", false, "extension: run-length distribution between breaks")
		coverage   = flag.Bool("coverage", false, "extension: predictor coverage vs quality")
		inline     = flag.Bool("inline", false, "extension: inlining ablation")
		selects    = flag.Bool("selects", false, "extension: if-conversion to selects")
		disagree   = flag.Bool("disagree", false, "extension: why worst predictors fail (coverage conjecture)")
		hotsites   = flag.Bool("hotsites", false, "diagnostic: hottest mispredicting branches")
		traces     = flag.Bool("traces", false, "extension: trace-selection lengths (block vs heuristic vs profile)")
		chart      = flag.Bool("chart", false, "render figures as bar charts instead of tables")
		jsonOut    = flag.Bool("json", false, "emit every artifact as one JSON document")
	)
	flag.Parse()
	exp.SetEngine(t.Engine())

	if *jsonOut {
		if err := emitJSON(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		t.PrintStats()
		return
	}

	any := *table1 || *table2 || *table3 || *fig1a || *fig1b || *fig2a || *fig2b ||
		*fig3a || *fig3b || *taken || *combined || *heuristic || *motivation || *crossmode ||
		*dynamic || *runlens || *coverage || *inline || *selects || *disagree || *hotsites || *traces
	all := !any

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if all || *table2 {
		fmt.Println(exp.RenderTable2(exp.Table2()))
	}
	if all || *table1 {
		rows, err := exp.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderTable1(rows))
	}
	if all || *inline {
		rows, err := exp.InlineAblation()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderInlineAblation(rows))
	}
	if all || *selects {
		rows, err := exp.SelectStudy()
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderSelectStudy(rows))
	}

	needSuite := all || *table3 || *fig1a || *fig1b || *fig2a || *fig2b || *fig3a ||
		*fig3b || *taken || *combined || *heuristic || *motivation || *crossmode ||
		*dynamic || *runlens || *coverage || *disagree || *hotsites || *traces
	if !needSuite {
		t.PrintStats()
		return
	}
	s, err := exp.Shared()
	if err != nil {
		fail(err)
	}

	renderFig1 := exp.RenderFigure1
	if *chart {
		renderFig1 = exp.ChartFigure1
	}
	if all || *fig1a {
		fmt.Println(renderFig1("Figure 1a (FORTRAN/FP)", exp.Figure1(s, workloads.Fortran)))
	}
	if all || *fig1b {
		fmt.Println(renderFig1("Figure 1b (C/Integer)", exp.Figure1(s, workloads.C)))
	}
	if all || *table3 {
		rows, err := exp.Table3(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderTable3(rows))
	}
	renderFig2 := exp.RenderFigure2
	if *chart {
		renderFig2 = exp.ChartFigure2
	}
	if all || *fig2a {
		rows, err := exp.Figure2(s, []string{"spice2g6"})
		if err != nil {
			fail(err)
		}
		fmt.Println(renderFig2("Figure 2a (spice2g6)", rows))
	}
	if all || *fig2b {
		rows, err := exp.Figure2(s, exp.CProgramNames(s))
		if err != nil {
			fail(err)
		}
		fmt.Println(renderFig2("Figure 2b (C/Integer)", rows))
	}
	renderFig3 := exp.RenderFigure3
	if *chart {
		renderFig3 = exp.ChartFigure3
	}
	if all || *fig3a {
		rows, err := exp.Figure3(s, []string{"spice2g6"})
		if err != nil {
			fail(err)
		}
		fmt.Println(renderFig3("Figure 3a (spice2g6)", rows))
	}
	if all || *fig3b {
		rows, err := exp.Figure3(s, exp.CProgramNames(s))
		if err != nil {
			fail(err)
		}
		fmt.Println(renderFig3("Figure 3b (C/Integer)", rows))
	}
	if all || *taken {
		fmt.Println(exp.RenderTaken(exp.TakenConstancy(s)))
	}
	if all || *combined {
		rows, err := exp.CombinedComparison(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderCombined(rows))
	}
	if all || *heuristic {
		rows, err := exp.HeuristicComparison(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderHeuristic(rows))
	}
	if all || *motivation {
		rows, err := exp.Motivation(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderMotivation(rows))
	}
	if all || *crossmode {
		rows, err := exp.CrossMode(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderCrossMode(rows))
	}
	if all || *dynamic {
		rows, err := exp.StaticVsDynamic(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderStaticVsDynamic(rows))
	}
	if all || *runlens {
		rows, err := exp.RunLengths(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderRunLengths(rows))
	}
	if all || *coverage {
		rows, err := exp.Coverage(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderCoverage(rows))
	}
	if all || *disagree {
		rows, err := exp.DisagreementStudy(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderDisagreement(rows))
	}
	if all || *hotsites {
		rows, err := exp.HotSites(s, 3)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderHotSites(rows))
	}
	if all || *traces {
		rows, err := exp.TraceStudy(s)
		if err != nil {
			fail(err)
		}
		fmt.Println(exp.RenderTraceStudy(rows))
	}
	t.PrintStats()
}

// Command experiments regenerates every table and figure from Fisher
// & Freudenberger (ASPLOS 1992) on the simulated substrate. With no
// flags it prints everything; individual flags select single
// artifacts. All measurement routes through the shared engine, so
// -cache-dir makes repeated regenerations serve the compile→run→
// profile work from the persistent cache, and -stats reports the
// per-stage pipeline costs.
package main

import (
	"flag"
	"fmt"
	"os"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/exp"
	"branchprof/internal/workloads"
)

func main() {
	t := cli.New("experiments")
	var (
		table1     = flag.Bool("table1", false, "Table 1: dynamically dead code")
		table2     = flag.Bool("table2", false, "Table 2: program sample base")
		table3     = flag.Bool("table3", false, "Table 3: FORTRAN instrs/break")
		fig1a      = flag.Bool("fig1a", false, "Figure 1a: unpredicted breaks, FORTRAN")
		fig1b      = flag.Bool("fig1b", false, "Figure 1b: unpredicted breaks, C")
		fig2a      = flag.Bool("fig2a", false, "Figure 2a: predicted breaks, spice2g6")
		fig2b      = flag.Bool("fig2b", false, "Figure 2b: predicted breaks, C programs")
		fig3a      = flag.Bool("fig3a", false, "Figure 3a: best/worst predictors, spice2g6")
		fig3b      = flag.Bool("fig3b", false, "Figure 3b: best/worst predictors, C programs")
		taken      = flag.Bool("taken", false, "percent-taken constancy")
		combined   = flag.Bool("combined", false, "scaled vs unscaled vs polling")
		heuristic  = flag.Bool("heuristic", false, "profile feedback vs heuristics")
		motivation = flag.Bool("motivation", false, "fpppp vs li percent-correct contrast")
		crossmode  = flag.Bool("crossmode", false, "compress vs uncompress cross-prediction")
		dynamic    = flag.Bool("dynamic", false, "extension: static vs dynamic predictor zoo")
		ipm        = flag.Bool("ipm", false, "extension: instructions per mispredict by scheme")
		h2p        = flag.Bool("h2p", false, "extension: hard-to-predict branch ranking")
		h2pN       = flag.Int("h2p-n", 5, "top-N branches per program for -h2p")
		runlens    = flag.Bool("runlengths", false, "extension: run-length distribution between breaks")
		coverage   = flag.Bool("coverage", false, "extension: predictor coverage vs quality")
		inline     = flag.Bool("inline", false, "extension: inlining ablation")
		selects    = flag.Bool("selects", false, "extension: if-conversion to selects")
		disagree   = flag.Bool("disagree", false, "extension: why worst predictors fail (coverage conjecture)")
		hotsites   = flag.Bool("hotsites", false, "diagnostic: hottest mispredicting branches")
		traces     = flag.Bool("traces", false, "extension: trace-selection lengths (block vs heuristic vs profile)")
		chart      = flag.Bool("chart", false, "render figures as bar charts instead of tables")
		jsonOut    = flag.Bool("json", false, "emit every artifact as one JSON document")
	)
	flag.Parse()
	exp.SetEngine(t.Engine())

	if *jsonOut {
		if err := emitJSON(t); err != nil {
			t.Fatal(err)
		}
		t.Finish()
		return
	}

	any := *table1 || *table2 || *table3 || *fig1a || *fig1b || *fig2a || *fig2b ||
		*fig3a || *fig3b || *taken || *combined || *heuristic || *motivation || *crossmode ||
		*dynamic || *ipm || *h2p || *runlens || *coverage || *inline || *selects || *disagree || *hotsites || *traces
	all := !any

	fail := func(err error) {
		t.Fatal(err)
	}
	// emit prints one artifact, or — under -allow-partial — skips it
	// with a note when its inputs are missing from a degraded suite.
	emit := func(err error, render func() string) {
		if err != nil {
			if t.AllowPartial() {
				fmt.Fprintln(os.Stderr, "experiments: degraded: skipping artifact:", err)
				return
			}
			fail(err)
		}
		fmt.Println(render())
	}

	if all || *table2 {
		fmt.Println(exp.RenderTable2(exp.Table2()))
	}
	if all || *table1 {
		rows, err := exp.Table1()
		emit(err, func() string { return exp.RenderTable1(rows) })
	}
	if all || *inline {
		rows, err := exp.InlineAblation()
		emit(err, func() string { return exp.RenderInlineAblation(rows) })
	}
	if all || *selects {
		rows, err := exp.SelectStudy()
		emit(err, func() string { return exp.RenderSelectStudy(rows) })
	}

	needSuite := all || *table3 || *fig1a || *fig1b || *fig2a || *fig2b || *fig3a ||
		*fig3b || *taken || *combined || *heuristic || *motivation || *crossmode ||
		*dynamic || *ipm || *h2p || *runlens || *coverage || *disagree || *hotsites || *traces
	if !needSuite {
		t.Finish()
		return
	}
	s, err := exp.CollectCtx(t.Context(), t.Engine(), exp.CollectOptions{AllowPartial: t.AllowPartial()})
	if err != nil {
		fail(err)
	}
	if s.Partial() {
		fmt.Println(exp.RenderCoverageSummary(s))
	}

	renderFig1 := exp.RenderFigure1
	if *chart {
		renderFig1 = exp.ChartFigure1
	}
	if all || *fig1a {
		fmt.Println(renderFig1("Figure 1a (FORTRAN/FP)", exp.Figure1(s, workloads.Fortran)))
	}
	if all || *fig1b {
		fmt.Println(renderFig1("Figure 1b (C/Integer)", exp.Figure1(s, workloads.C)))
	}
	if all || *table3 {
		rows, err := exp.Table3(s)
		emit(err, func() string { return exp.RenderTable3(rows) })
	}
	renderFig2 := exp.RenderFigure2
	if *chart {
		renderFig2 = exp.ChartFigure2
	}
	if all || *fig2a {
		rows, err := exp.Figure2(s, []string{"spice2g6"})
		emit(err, func() string { return renderFig2("Figure 2a (spice2g6)", rows) })
	}
	if all || *fig2b {
		rows, err := exp.Figure2(s, exp.CProgramNames(s))
		emit(err, func() string { return renderFig2("Figure 2b (C/Integer)", rows) })
	}
	renderFig3 := exp.RenderFigure3
	if *chart {
		renderFig3 = exp.ChartFigure3
	}
	if all || *fig3a {
		rows, err := exp.Figure3(s, []string{"spice2g6"})
		emit(err, func() string { return renderFig3("Figure 3a (spice2g6)", rows) })
	}
	if all || *fig3b {
		rows, err := exp.Figure3(s, exp.CProgramNames(s))
		emit(err, func() string { return renderFig3("Figure 3b (C/Integer)", rows) })
	}
	if all || *taken {
		fmt.Println(exp.RenderTaken(exp.TakenConstancy(s)))
	}
	if all || *combined {
		rows, err := exp.CombinedComparison(s)
		emit(err, func() string { return exp.RenderCombined(rows) })
	}
	if all || *heuristic {
		rows, err := exp.HeuristicComparison(s)
		emit(err, func() string { return exp.RenderHeuristic(rows) })
	}
	if all || *motivation {
		rows, err := exp.Motivation(s)
		emit(err, func() string { return exp.RenderMotivation(rows) })
	}
	if all || *crossmode {
		rows, err := exp.CrossMode(s)
		emit(err, func() string { return exp.RenderCrossMode(rows) })
	}
	if all || *dynamic {
		rows, err := exp.StaticVsDynamic(s)
		emit(err, func() string { return exp.RenderStaticVsDynamic(rows) })
	}
	if all || *ipm {
		rows, err := exp.InstrsPerMispredict(s)
		emit(err, func() string { return exp.RenderInstrsPerMispredict(rows) })
	}
	if all || *h2p {
		rows, err := exp.H2PStudy(s, *h2pN)
		emit(err, func() string { return exp.RenderH2P(rows) })
	}
	if all || *runlens {
		rows, err := exp.RunLengths(s)
		emit(err, func() string { return exp.RenderRunLengths(rows) })
	}
	if all || *coverage {
		rows, err := exp.Coverage(s)
		emit(err, func() string { return exp.RenderCoverage(rows) })
	}
	if all || *disagree {
		rows, err := exp.DisagreementStudy(s)
		emit(err, func() string { return exp.RenderDisagreement(rows) })
	}
	if all || *hotsites {
		rows, err := exp.HotSites(s, 3)
		emit(err, func() string { return exp.RenderHotSites(rows) })
	}
	if all || *traces {
		rows, err := exp.TraceStudy(s)
		emit(err, func() string { return exp.RenderTraceStudy(rows) })
	}
	t.Finish()
}

package main

import (
	"encoding/json"
	"fmt"
	"os"

	"branchprof/internal/exp"
	"branchprof/internal/workloads"
)

// emitJSON regenerates every artifact and writes one JSON document to
// stdout, for downstream tooling (plotting, regression tracking).
func emitJSON() error {
	out := make(map[string]any)

	t1, err := exp.Table1()
	if err != nil {
		return err
	}
	out["table1_dead_code"] = t1
	out["table2_inventory"] = exp.Table2()

	inl, err := exp.InlineAblation()
	if err != nil {
		return err
	}
	out["ext_inline_ablation"] = inl

	sel, err := exp.SelectStudy()
	if err != nil {
		return err
	}
	out["ext_select_study"] = sel

	s, err := exp.Shared()
	if err != nil {
		return err
	}
	t3, err := exp.Table3(s)
	if err != nil {
		return err
	}
	out["table3_fortran_instrs_per_break"] = t3
	out["figure1a_fortran"] = exp.Figure1(s, workloads.Fortran)
	out["figure1b_c"] = exp.Figure1(s, workloads.C)

	f2a, err := exp.Figure2(s, []string{"spice2g6"})
	if err != nil {
		return err
	}
	out["figure2a_spice"] = f2a
	f2b, err := exp.Figure2(s, exp.CProgramNames(s))
	if err != nil {
		return err
	}
	out["figure2b_c"] = f2b

	f3a, err := exp.Figure3(s, []string{"spice2g6"})
	if err != nil {
		return err
	}
	out["figure3a_spice"] = f3a
	f3b, err := exp.Figure3(s, exp.CProgramNames(s))
	if err != nil {
		return err
	}
	out["figure3b_c"] = f3b

	out["taken_constancy"] = exp.TakenConstancy(s)

	comb, err := exp.CombinedComparison(s)
	if err != nil {
		return err
	}
	out["combined_modes"] = comb

	heur, err := exp.HeuristicComparison(s)
	if err != nil {
		return err
	}
	out["heuristics"] = heur

	mot, err := exp.Motivation(s)
	if err != nil {
		return err
	}
	out["motivation_fpppp_vs_li"] = mot

	cm, err := exp.CrossMode(s)
	if err != nil {
		return err
	}
	out["crossmode_compress"] = cm

	dyn, err := exp.StaticVsDynamic(s)
	if err != nil {
		return err
	}
	out["ext_static_vs_dynamic"] = dyn

	rl, err := exp.RunLengths(s)
	if err != nil {
		return err
	}
	// Histograms are bulky text; strip them for the JSON form.
	type rlRow struct {
		Program string
		Dataset string
		Stats   any
	}
	slim := make([]rlRow, len(rl))
	for i, r := range rl {
		slim[i] = rlRow{Program: r.Program, Dataset: r.Dataset, Stats: r.Stats}
	}
	out["ext_run_lengths"] = slim

	cov, err := exp.Coverage(s)
	if err != nil {
		return err
	}
	out["ext_coverage"] = map[string]any{
		"pairs":     cov,
		"pearson_r": exp.CoverageCorrelation(cov),
	}

	dis, err := exp.DisagreementStudy(s)
	if err != nil {
		return err
	}
	out["ext_disagreement"] = dis

	hot, err := exp.HotSites(s, 3)
	if err != nil {
		return err
	}
	out["diag_hot_sites"] = hot

	tr, err := exp.TraceStudy(s)
	if err != nil {
		return err
	}
	out["ext_trace_selection"] = tr

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("encoding: %w", err)
	}
	return nil
}

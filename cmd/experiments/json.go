package main

import (
	"fmt"
	"os"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/exp"
	"branchprof/internal/workloads"
)

// emitJSON regenerates every artifact and writes one JSON document to
// stdout, for downstream tooling (plotting, regression tracking).
// Under -allow-partial a degraded suite still emits every artifact its
// surviving cells support; the document then carries a "coverage" key
// describing the missing cells and a "skipped_artifacts" list.
func emitJSON(t *cli.Tool) error {
	out := make(map[string]any)
	var skipped []string
	// put records one artifact, or — under -allow-partial — drops it
	// with a note when its inputs are missing from a degraded suite.
	put := func(key string, rows any, err error) error {
		if err != nil {
			if t.AllowPartial() {
				skipped = append(skipped, fmt.Sprintf("%s: %v", key, err))
				return nil
			}
			return err
		}
		out[key] = rows
		return nil
	}

	t1, err := exp.Table1()
	if err := put("table1_dead_code", t1, err); err != nil {
		return err
	}
	out["table2_inventory"] = exp.Table2()

	inl, err := exp.InlineAblation()
	if err := put("ext_inline_ablation", inl, err); err != nil {
		return err
	}

	sel, err := exp.SelectStudy()
	if err := put("ext_select_study", sel, err); err != nil {
		return err
	}

	s, err := exp.CollectCtx(t.Context(), t.Engine(), exp.CollectOptions{AllowPartial: t.AllowPartial()})
	if err != nil {
		return err
	}
	if s.Partial() {
		out["coverage"] = map[string]any{
			"summary": s.CoverageSummary().String(),
			"cells":   s.CoverageSummary(),
			"errors":  errorStrings(s),
		}
	}

	t3, err := exp.Table3(s)
	if err := put("table3_fortran_instrs_per_break", t3, err); err != nil {
		return err
	}
	out["figure1a_fortran"] = exp.Figure1(s, workloads.Fortran)
	out["figure1b_c"] = exp.Figure1(s, workloads.C)

	f2a, err := exp.Figure2(s, []string{"spice2g6"})
	if err := put("figure2a_spice", f2a, err); err != nil {
		return err
	}
	f2b, err := exp.Figure2(s, exp.CProgramNames(s))
	if err := put("figure2b_c", f2b, err); err != nil {
		return err
	}

	f3a, err := exp.Figure3(s, []string{"spice2g6"})
	if err := put("figure3a_spice", f3a, err); err != nil {
		return err
	}
	f3b, err := exp.Figure3(s, exp.CProgramNames(s))
	if err := put("figure3b_c", f3b, err); err != nil {
		return err
	}

	out["taken_constancy"] = exp.TakenConstancy(s)

	comb, err := exp.CombinedComparison(s)
	if err := put("combined_modes", comb, err); err != nil {
		return err
	}

	heur, err := exp.HeuristicComparison(s)
	if err := put("heuristics", heur, err); err != nil {
		return err
	}

	mot, err := exp.Motivation(s)
	if err := put("motivation_fpppp_vs_li", mot, err); err != nil {
		return err
	}

	cm, err := exp.CrossMode(s)
	if err := put("crossmode_compress", cm, err); err != nil {
		return err
	}

	dyn, err := exp.StaticVsDynamic(s)
	if err := put("ext_static_vs_dynamic", dyn, err); err != nil {
		return err
	}

	ipm, err := exp.InstrsPerMispredict(s)
	if err := put("ext_instrs_per_mispredict", ipm, err); err != nil {
		return err
	}

	h2p, err := exp.H2PStudy(s, 5)
	if err := put("ext_h2p", h2p, err); err != nil {
		return err
	}

	rl, err := exp.RunLengths(s)
	if err != nil {
		if err := put("ext_run_lengths", nil, err); err != nil {
			return err
		}
	} else {
		// Histograms are bulky text; strip them for the JSON form.
		type rlRow struct {
			Program string
			Dataset string
			Stats   any
		}
		slim := make([]rlRow, len(rl))
		for i, r := range rl {
			slim[i] = rlRow{Program: r.Program, Dataset: r.Dataset, Stats: r.Stats}
		}
		out["ext_run_lengths"] = slim
	}

	cov, err := exp.Coverage(s)
	if err := put("ext_coverage", map[string]any{
		"pairs":     cov,
		"pearson_r": exp.CoverageCorrelation(cov),
	}, err); err != nil {
		return err
	}

	dis, err := exp.DisagreementStudy(s)
	if err := put("ext_disagreement", dis, err); err != nil {
		return err
	}

	hot, err := exp.HotSites(s, 3)
	if err := put("diag_hot_sites", hot, err); err != nil {
		return err
	}

	tr, err := exp.TraceStudy(s)
	if err := put("ext_trace_selection", tr, err); err != nil {
		return err
	}

	if len(skipped) > 0 {
		out["skipped_artifacts"] = skipped
	}

	// A degraded or zero-branch suite can put +Inf/NaN into the rows
	// (e.g. InstrsPerBreak with no breaks); EncodeSafe renders healthy
	// documents byte-identically and re-encodes only when needed.
	if err := exp.EncodeSafe(os.Stdout, out, "  "); err != nil {
		return fmt.Errorf("encoding: %w", err)
	}
	return nil
}

func errorStrings(s *exp.Suite) []string {
	var out []string
	for _, ce := range s.Errors {
		out = append(out, ce.Error())
	}
	return out
}

// Command mfpixie runs an MF program with per-instruction counting
// through the shared engine and prints the detailed dynamic report:
// total instructions, hottest functions, instruction mix, and branch
// density. With -cache-dir, re-analyzing the same source and input
// reuses the persisted measurement instead of re-interpreting.
package main

import (
	"flag"
	"fmt"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/engine"
	"branchprof/internal/pixie"
	"branchprof/internal/vm"
)

func main() {
	t := cli.New("mfpixie")
	prelude := flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
	inPath := flag.String("input", "", "dataset file (default: stdin)")
	flag.Parse()
	if flag.NArg() != 1 {
		t.Usage("mfpixie [-input data] [-cache-dir dir] [-stats] file.mf")
	}
	name, source, err := cli.LoadSource(flag.Arg(0), *prelude)
	if err != nil {
		t.Fatal(err)
	}
	input, err := cli.ReadInput(*inPath)
	if err != nil {
		t.Fatal(err)
	}
	out, err := t.Engine().ExecuteContext(t.Context(), engine.Spec{
		Name:    name,
		Source:  source,
		Dataset: cli.InputLabel(*inPath),
		Input:   input,
		Config:  vm.Config{PerPC: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pixie.Analyze(out.Prog, out.Res)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(rep.String())
	t.Finish()
}

// Command mfpixie runs an MF program with per-instruction counting
// and prints the detailed dynamic report: total instructions, hottest
// functions, instruction mix, and branch density.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"branchprof/internal/mfc"
	"branchprof/internal/pixie"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

func main() {
	prelude := flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
	inPath := flag.String("input", "", "dataset file (default: stdin)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mfpixie [-input data] file.mf")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfpixie:", err)
		os.Exit(1)
	}
	var input []byte
	if *inPath != "" {
		input, err = os.ReadFile(*inPath)
	} else {
		input, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfpixie:", err)
		os.Exit(1)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	source := string(src)
	if *prelude {
		source = workloads.Prelude() + source
	}
	prog, err := mfc.Compile(name, source, mfc.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfpixie:", err)
		os.Exit(1)
	}
	res, err := vm.Run(prog, input, &vm.Config{PerPC: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfpixie:", err)
		os.Exit(1)
	}
	rep, err := pixie.Analyze(prog, res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfpixie:", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
}

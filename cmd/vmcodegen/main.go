// Command vmcodegen regenerates the ahead-of-time compiled bodies of
// the workload analogues (internal/workloads/compiled). For every
// registered workload it compiles the MF source with the default
// compiler options — the same configuration the experiment suite
// uses — and emits one Go file via internal/vm/codegen, registered
// under the program's content digest so vm.Load binds it at runtime.
//
// Run via go:generate (see internal/workloads/compiled/compiled.go);
// `make gencheck` fails CI when the committed files are stale.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/vm/codegen"
	"branchprof/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vmcodegen: ")
	out := flag.String("out", ".", "output directory for generated files")
	pkg := flag.String("pkg", "compiled", "package name for generated files")
	tag := flag.String("tag", "!branchprof_nocodegen", "build constraint for generated files (empty for none)")
	flag.Parse()

	for _, w := range workloads.All() {
		prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
		if err != nil {
			log.Fatalf("compile %s: %v", w.Name, err)
		}
		if err := codegen.Supported(prog); err != nil {
			log.Printf("skip %s (interpreter only): %v", w.Name, err)
			continue
		}
		digest := isa.ProgramDigest(prog)
		src, err := codegen.Generate(prog, codegen.Options{
			Package:  *pkg,
			Symbol:   "wl" + sanitize(w.Name),
			Digest:   digest,
			BuildTag: *tag,
			Note:     fmt.Sprintf("Workload %q compiled with default mfc options.", w.Name),
		})
		if err != nil {
			log.Fatalf("generate %s: %v", w.Name, err)
		}
		path := filepath.Join(*out, "z_"+sanitize(w.Name)+"_gen.go")
		if old, err := os.ReadFile(path); err == nil && bytes.Equal(old, src) {
			continue
		}
		if err := os.WriteFile(path, src, 0o644); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		log.Printf("wrote %s (%d bytes)", path, len(src))
	}
}

func sanitize(name string) string {
	b := []byte(name)
	for i, ch := range b {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

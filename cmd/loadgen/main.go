// Command loadgen drives an in-process branchprofd server with a
// profile-ingest workload and reports the results as Go benchmark
// lines, so its output pipes straight into cmd/benchjson:
//
//	go run ./cmd/loadgen -rounds 3 | \
//	    go run ./cmd/benchjson -append -label server-ingest -o BENCH_SERVER.json
//
// The same workload — n profiles per round spread over several
// programs and datasets on a sharded store — runs through each ingest
// path in turn:
//
//	BenchmarkServerIngestSingle   one POST /v1/profile per profile
//	BenchmarkServerIngestBatch    POST /v1/profile/batch, -batch entries per request
//	BenchmarkServerIngestStream   POST /v1/profile/stream, NDJSON
//
// ns/op is per profile, so the lines are directly comparable: the
// batch and stream paths amortize admission, HTTP framing and — above
// all — the per-shard fsync'd save that the single path pays on every
// request. Batch and stream lines also carry an x_vs_single metric
// (>1 means faster than the single-request path). The server is real
// (HTTP over loopback via httptest), the store is a throwaway sharded
// directory unless -db points somewhere durable.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"branchprof/internal/server"
)

// branchySrc branches on every input byte (taken exactly on 'a'), so
// each distinct input is genuinely new profile work for the VM.
const branchySrc = `
func main() int {
	var n int = 0;
	var c int = getc();
	while (c >= 0) {
		if (c == 97) {
			n = n + 1;
		}
		c = getc();
	}
	return n;
}
`

type profileEntry struct {
	Program string `json:"program"`
	Source  string `json:"source"`
	Dataset string `json:"dataset"`
	Input   string `json:"input"`
}

// workload builds n profile requests for one (mode, round) pair. The
// input embeds mode and round so no request is ever a run-cache hit —
// every ingest path does the same amount of real VM work.
func workload(mode string, round, n, programs, datasets int) []profileEntry {
	entries := make([]profileEntry, n)
	for i := range entries {
		entries[i] = profileEntry{
			Program: fmt.Sprintf("prog%02d", i%programs),
			Source:  branchySrc,
			Dataset: fmt.Sprintf("d%d", i%datasets),
			Input:   fmt.Sprintf("%s-%d-%d-abab", mode, round, i),
		}
	}
	return entries
}

func post(client *http.Client, url, contentType string, body []byte) error {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %d: %.200s", url, resp.StatusCode, raw)
	}
	return nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func main() {
	var (
		n        = flag.Int("n", 64, "profiles per round per ingest path")
		rounds   = flag.Int("rounds", 3, "measured rounds (one extra warmup round runs first)")
		programs = flag.Int("programs", 8, "distinct programs in the workload")
		datasets = flag.Int("datasets", 2, "datasets per program")
		batch    = flag.Int("batch", 64, "entries per /v1/profile/batch request")
		shards   = flag.Int("shards", 4, "store shards")
		dbPath   = flag.String("db", "", "store path (default: throwaway temp dir)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	dir := *dbPath
	if dir == "" {
		tmp, err := os.MkdirTemp("", "loadgen-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "profiles.d")
	}
	srv, warns, err := server.New(server.Options{DBPath: dir, Shards: *shards})
	if err != nil {
		fail(err)
	}
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, "loadgen: startup warning:", w)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	single := func(mode string, round int) error {
		for _, e := range workload(mode, round, *n, *programs, *datasets) {
			if err := post(client, ts.URL+"/v1/profile", "application/json", mustJSON(e)); err != nil {
				return err
			}
		}
		return nil
	}
	batched := func(mode string, round int) error {
		entries := workload(mode, round, *n, *programs, *datasets)
		for len(entries) > 0 {
			chunk := entries
			if len(chunk) > *batch {
				chunk = chunk[:*batch]
			}
			entries = entries[len(chunk):]
			body := mustJSON(map[string]any{"entries": chunk})
			if err := post(client, ts.URL+"/v1/profile/batch", "application/json", body); err != nil {
				return err
			}
		}
		return nil
	}
	streamed := func(mode string, round int) error {
		var buf bytes.Buffer
		for _, e := range workload(mode, round, *n, *programs, *datasets) {
			buf.Write(mustJSON(e))
			buf.WriteByte('\n')
		}
		return post(client, ts.URL+"/v1/profile/stream", "application/x-ndjson", buf.Bytes())
	}

	paths := []struct {
		name string
		run  func(mode string, round int) error
	}{
		{"ServerIngestSingle", single},
		{"ServerIngestBatch", batched},
		{"ServerIngestStream", streamed},
	}

	// Warmup: compile the programs, fault in the store, open sockets.
	for _, p := range paths {
		if err := p.run("warm-"+p.name, 0); err != nil {
			fail(err)
		}
	}

	nsPerOp := map[string]float64{}
	for _, p := range paths {
		var total time.Duration
		for r := 1; r <= *rounds; r++ {
			start := time.Now()
			if err := p.run(p.name, r); err != nil {
				fail(err)
			}
			total += time.Since(start)
		}
		ops := *n * *rounds
		nsPerOp[p.name] = float64(total.Nanoseconds()) / float64(ops)
		line := fmt.Sprintf("Benchmark%s %d %.0f ns/op %.1f profiles/s",
			p.name, ops, nsPerOp[p.name], float64(ops)/total.Seconds())
		if base := nsPerOp["ServerIngestSingle"]; p.name != "ServerIngestSingle" && base > 0 {
			line += fmt.Sprintf(" %.2f x_vs_single", base/nsPerOp[p.name])
		}
		fmt.Println(line)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fail(fmt.Errorf("drain: %w", err))
	}
}

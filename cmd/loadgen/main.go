// Command loadgen drives an in-process branchprofd deployment with a
// profile-ingest workload and reports the results as Go benchmark
// lines, so its output pipes straight into cmd/benchjson:
//
//	go run ./cmd/loadgen -rounds 3 | \
//	    go run ./cmd/benchjson -append -label server-ingest -o BENCH_SERVER.json
//
// The same workload — n profiles per round spread over several
// programs and datasets on a sharded store — runs through each ingest
// path in turn:
//
//	BenchmarkServerIngestSingle   one POST /v1/profile per profile
//	BenchmarkServerIngestBatch    POST /v1/profile/batch, -batch entries per request
//	BenchmarkServerIngestStream   POST /v1/profile/stream, NDJSON
//
// ns/op is per profile, so the lines are directly comparable: the
// batch and stream paths amortize admission, HTTP framing and — above
// all — the per-shard fsync'd save that the single path pays on every
// request. Batch and stream lines also carry an x_vs_single metric
// (>1 means faster than the single-request path). The server is real
// (HTTP over loopback via httptest), the store is a throwaway sharded
// directory unless -db points somewhere durable.
//
// With -nodes N > 1 the target is an N-node replication cluster (full
// mesh, see docs/STORE.md) and the client routes each profile to its
// home node by rendezvous hash of the program@dataset key
// (internal/route), failing over to the next node in the key's
// preference order when a node is unreachable or answers 5xx. Each
// timed round then also pays one anti-entropy sync per node, so the
// routed numbers include replication's cost. Benchmark names gain a
// RoutedN suffix:
//
//	BenchmarkServerIngestSingleRouted3 ...
//
// With -wal-fsync POLICY every node journals ingest through a
// write-ahead log before acknowledging (see docs/ROBUSTNESS.md
// "Durability contract"); benchmark names gain a WALRecord /
// WALBatch / WALInterval suffix, so the trajectory prices what each
// durability point costs against the journal-free baseline.
//
// On 429 (admission shed) the client honors the server's Retry-After
// hint with jittered backoff instead of failing the run, in routed
// and single-node mode alike.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"branchprof/internal/route"
	"branchprof/internal/server"
)

// branchySrc branches on every input byte (taken exactly on 'a'), so
// each distinct input is genuinely new profile work for the VM.
const branchySrc = `
func main() int {
	var n int = 0;
	var c int = getc();
	while (c >= 0) {
		if (c == 97) {
			n = n + 1;
		}
		c = getc();
	}
	return n;
}
`

type profileEntry struct {
	Program string `json:"program"`
	Source  string `json:"source"`
	Dataset string `json:"dataset"`
	Input   string `json:"input"`
}

// key is the entry's routing key — the same program@dataset composite
// the server stores it under.
func (e profileEntry) key() string { return e.Program + "@" + e.Dataset }

// workload builds n profile requests for one (mode, round) pair. The
// input embeds mode and round so no request is ever a run-cache hit —
// every ingest path does the same amount of real VM work.
func workload(mode string, round, n, programs, datasets int) []profileEntry {
	entries := make([]profileEntry, n)
	for i := range entries {
		entries[i] = profileEntry{
			Program: fmt.Sprintf("prog%02d", i%programs),
			Source:  branchySrc,
			Dataset: fmt.Sprintf("d%d", i%datasets),
			Input:   fmt.Sprintf("%s-%d-%d-abab", mode, round, i),
		}
	}
	return entries
}

// nodeErr marks a node-level failure — transport error or 5xx/503 —
// that a routed client should answer by failing over to the key's
// next-preferred node. Non-node errors (4xx: the request itself is
// bad) abort instead of retrying elsewhere.
type nodeErr struct {
	node string
	err  error
}

func (e *nodeErr) Error() string { return fmt.Sprintf("node %s: %v", e.node, e.err) }
func (e *nodeErr) Unwrap() error { return e.err }

// client posts to a deployment: one node, or a routed cluster.
type client struct {
	http  *http.Client
	nodes []string // base URLs; len 1 = standalone
	// max429Retries bounds Retry-After loops per node so a wedged
	// server cannot hang the run.
	max429Retries int
	retried429    atomic.Uint64
	failovers     atomic.Uint64
}

// post sends body to path on the key's home node, failing over along
// the key's rendezvous preference order on node-level errors.
func (c *client) post(key, path, contentType string, body []byte) error {
	order := c.nodes
	if len(c.nodes) > 1 {
		order = route.Order(c.nodes, key)
	}
	var lastErr error
	for i, node := range order {
		if i > 0 {
			c.failovers.Add(1)
		}
		err := c.postNode(node, path, contentType, body)
		if err == nil {
			return nil
		}
		var ne *nodeErr
		if !errors.As(err, &ne) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// postNode posts to one node, honoring 429 Retry-After with jittered
// backoff.
func (c *client) postNode(node, path, contentType string, body []byte) error {
	for attempt := 0; ; attempt++ {
		resp, err := c.http.Post(node+path, contentType, bytes.NewReader(body))
		if err != nil {
			return &nodeErr{node: node, err: err}
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < c.max429Retries:
			// Shed by admission control: the server told us when to come
			// back; jitter the hint so retrying clients don't re-arrive
			// in the same burst that got them shed.
			c.retried429.Add(1)
			time.Sleep(jitter(retryAfter(resp.Header)))
		case resp.StatusCode >= http.StatusInternalServerError:
			return &nodeErr{node: node, err: fmt.Errorf("%s: %d: %.200s", path, resp.StatusCode, raw)}
		default:
			return fmt.Errorf("%s%s: %d: %.200s", node, path, resp.StatusCode, raw)
		}
	}
}

// retryAfter parses the Retry-After seconds hint, defaulting to 1s.
func retryAfter(h http.Header) time.Duration {
	if s, err := strconv.Atoi(h.Get("Retry-After")); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return time.Second
}

// jitter spreads d over [d/2, d): full coordination-avoiding jitter
// would use [0, d), but honoring at least half the server's hint keeps
// the retry honest under sustained overload.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// groupByNode splits entries by home node, preserving order within
// each group — the batch/stream unit of a routed client.
func groupByNode(nodes []string, entries []profileEntry) map[string][]profileEntry {
	groups := make(map[string][]profileEntry)
	if len(nodes) == 1 {
		groups[nodes[0]] = entries
		return groups
	}
	for _, e := range entries {
		n := route.Pick(nodes, e.key())
		groups[n] = append(groups[n], e)
	}
	return groups
}

func main() {
	var (
		n        = flag.Int("n", 64, "profiles per round per ingest path")
		rounds   = flag.Int("rounds", 3, "measured rounds (one extra warmup round runs first)")
		programs = flag.Int("programs", 8, "distinct programs in the workload")
		datasets = flag.Int("datasets", 2, "datasets per program")
		batch    = flag.Int("batch", 64, "entries per /v1/profile/batch request")
		shards   = flag.Int("shards", 4, "store shards per node")
		nodeN    = flag.Int("nodes", 1, "cluster size; >1 benchmarks hash-routed ingest across a replicated full mesh")
		dbPath   = flag.String("db", "", "store path (node index appended when -nodes > 1; default: throwaway temp dir)")
		walFsync = flag.String("wal-fsync", "", "journal ingest through a write-ahead log with this fsync policy (record, batch or interval); empty = no journal")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *nodeN < 1 {
		fail(fmt.Errorf("-nodes must be at least 1"))
	}

	dir := *dbPath
	if dir == "" {
		tmp, err := os.MkdirTemp("", "loadgen-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "profiles.d")
	}

	// Allocate every node's URL before building any server — each node
	// needs the full peer list at construction.
	handlers := make([]*switchHandler, *nodeN)
	urls := make([]string, *nodeN)
	for i := range handlers {
		handlers[i] = &switchHandler{}
		ts := httptest.NewServer(handlers[i])
		defer ts.Close()
		urls[i] = ts.URL
	}
	servers := make([]*server.Server, *nodeN)
	for i := range servers {
		opts := server.Options{DBPath: dir, Shards: *shards}
		if *nodeN > 1 {
			opts.DBPath = fmt.Sprintf("%s-node%d", dir, i+1)
			opts.SelfID = fmt.Sprintf("node%d", i+1)
			for j, u := range urls {
				if j != i {
					opts.Peers = append(opts.Peers, u)
				}
			}
			opts.SyncInterval = time.Hour // rounds sync explicitly, see below
		}
		if *walFsync != "" {
			opts.WALDir = opts.DBPath + "-wal"
			opts.WALFsync = *walFsync
		}
		srv, warns, err := server.New(opts)
		if err != nil {
			fail(err)
		}
		for _, w := range warns {
			fmt.Fprintln(os.Stderr, "loadgen: startup warning:", w)
		}
		servers[i] = srv
		handlers[i].set(srv.Handler())
	}

	cl := &client{http: http.DefaultClient, nodes: urls, max429Retries: 8}

	// syncCluster is the replication cost a routed round pays: one
	// anti-entropy pull per node, so ingested components spread.
	syncCluster := func() error {
		if *nodeN == 1 {
			return nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, srv := range servers {
			if err := srv.SyncNow(ctx); err != nil {
				return err
			}
		}
		return nil
	}

	single := func(mode string, round int) error {
		for _, e := range workload(mode, round, *n, *programs, *datasets) {
			if err := cl.post(e.key(), "/v1/profile", "application/json", mustJSON(e)); err != nil {
				return err
			}
		}
		return syncCluster()
	}
	batched := func(mode string, round int) error {
		entries := workload(mode, round, *n, *programs, *datasets)
		for node, group := range groupByNode(urls, entries) {
			for len(group) > 0 {
				chunk := group
				if len(chunk) > *batch {
					chunk = chunk[:*batch]
				}
				group = group[len(chunk):]
				body := mustJSON(map[string]any{"entries": chunk})
				// The group shares a home node but each chunk re-routes by
				// its first key, so failover still works per request.
				if err := cl.post(chunk[0].key(), "/v1/profile/batch", "application/json", body); err != nil {
					_ = node
					return err
				}
			}
		}
		return syncCluster()
	}
	streamed := func(mode string, round int) error {
		entries := workload(mode, round, *n, *programs, *datasets)
		for _, group := range groupByNode(urls, entries) {
			var buf bytes.Buffer
			for _, e := range group {
				buf.Write(mustJSON(e))
				buf.WriteByte('\n')
			}
			if err := cl.post(group[0].key(), "/v1/profile/stream", "application/x-ndjson", buf.Bytes()); err != nil {
				return err
			}
		}
		return syncCluster()
	}

	suffix := ""
	if *nodeN > 1 {
		suffix = fmt.Sprintf("Routed%d", *nodeN)
	}
	if p := *walFsync; p != "" {
		suffix += "WAL" + strings.ToUpper(p[:1]) + p[1:]
	}
	paths := []struct {
		name string
		run  func(mode string, round int) error
	}{
		{"ServerIngestSingle" + suffix, single},
		{"ServerIngestBatch" + suffix, batched},
		{"ServerIngestStream" + suffix, streamed},
	}

	// Warmup: compile the programs, fault in the stores, open sockets.
	for _, p := range paths {
		if err := p.run("warm-"+p.name, 0); err != nil {
			fail(err)
		}
	}

	nsPerOp := map[string]float64{}
	for _, p := range paths {
		var total time.Duration
		for r := 1; r <= *rounds; r++ {
			start := time.Now()
			if err := p.run(p.name, r); err != nil {
				fail(err)
			}
			total += time.Since(start)
		}
		ops := *n * *rounds
		nsPerOp[p.name] = float64(total.Nanoseconds()) / float64(ops)
		line := fmt.Sprintf("Benchmark%s %d %.0f ns/op %.1f profiles/s",
			p.name, ops, nsPerOp[p.name], float64(ops)/total.Seconds())
		if base := nsPerOp["ServerIngestSingle"+suffix]; p.name != "ServerIngestSingle"+suffix && base > 0 {
			line += fmt.Sprintf(" %.2f x_vs_single", base/nsPerOp[p.name])
		}
		fmt.Println(line)
	}
	if n := cl.retried429.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests shed with 429 and retried after backoff\n", n)
	}
	if n := cl.failovers.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests failed over to a non-home node\n", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, srv := range servers {
		if err := srv.Drain(ctx); err != nil {
			fail(fmt.Errorf("drain: %w", err))
		}
	}
}

// switchHandler lets the node URLs exist before the servers behind
// them: every cluster node needs every other node's URL at
// construction time.
type switchHandler struct{ h atomic.Value }

type handlerBox struct{ h http.Handler }

func (sw *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if box, ok := sw.h.Load().(handlerBox); ok && box.h != nil {
		box.h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node starting", http.StatusServiceUnavailable)
}

func (sw *switchHandler) set(h http.Handler) { sw.h.Store(handlerBox{h: h}) }

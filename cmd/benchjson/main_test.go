package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `
goos: linux
BenchmarkA 10 1000 ns/op 5.0 widgets/op
BenchmarkB-8 20 4000 ns/op
ok  	pkg	0.1s
`
	s, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Parsed) != 2 || len(s.Raw) != 2 {
		t.Fatalf("parsed %d/%d lines, want 2/2", len(s.Parsed), len(s.Raw))
	}
	if s.Parsed[0].NsPerOp != 1000 || s.Parsed[0].Metrics["widgets/op"] != 5.0 {
		t.Fatalf("first line: %+v", s.Parsed[0])
	}
	if s.Geomean != 2000 { // sqrt(1000*4000)
		t.Fatalf("geomean = %v, want 2000", s.Geomean)
	}
}

func TestMergeTrajectory(t *testing.T) {
	rep := func(label string) report {
		return report{Label: label, Go: "go1.24.0", Current: section{Raw: []string{"BenchmarkA 1 1 ns/op"}}}
	}

	// Empty file starts a trajectory.
	traj, err := mergeTrajectory(nil, rep("first"))
	if err != nil || len(traj.Entries) != 1 || traj.Entries[0].Label != "first" {
		t.Fatalf("fresh merge: %+v, %v", traj, err)
	}

	// A legacy single report is absorbed as the first entry.
	legacy, _ := json.Marshal(rep("legacy"))
	traj, err = mergeTrajectory(legacy, rep("next"))
	if err != nil || len(traj.Entries) != 2 {
		t.Fatalf("legacy merge: %+v, %v", traj, err)
	}
	if traj.Entries[0].Label != "legacy" || traj.Entries[1].Label != "next" {
		t.Fatalf("legacy merge order: %+v", traj.Entries)
	}

	// Re-merging a trajectory appends, preserving order.
	blob, _ := json.Marshal(traj)
	traj, err = mergeTrajectory(blob, rep("third"))
	if err != nil || len(traj.Entries) != 3 || traj.Entries[2].Label != "third" {
		t.Fatalf("trajectory merge: %+v, %v", traj, err)
	}

	// A file this tool doesn't own is refused, not clobbered.
	if _, err := mergeTrajectory([]byte(`{"unrelated": true}`), rep("x")); err == nil {
		t.Fatal("foreign JSON object accepted")
	}
	if _, err := mergeTrajectory([]byte(`{broken`), rep("x")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// Command benchjson converts `go test -bench` output into a small
// machine-readable JSON report. The raw benchmark lines are preserved
// verbatim (benchstat consumes exactly those lines), alongside parsed
// ns/op and custom metrics so dashboards don't need a Go-bench parser.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkVMInterpreter -count 3 . | \
//	    go run ./cmd/benchjson -o BENCH_VM.json -baseline old.txt
//
// The optional -baseline file holds benchmark lines from an earlier
// build (same format); they are embedded under "baseline" so one file
// carries the before/after pair:
//
//	jq -r '.baseline.raw[]' BENCH_VM.json > old.txt
//	jq -r '.current.raw[]'  BENCH_VM.json > new.txt
//	benchstat old.txt new.txt
//
// With -append the output file becomes a trajectory instead of a
// snapshot: `{"entries": [report, ...]}` with this run appended last,
// so successive builds accumulate a perf history in one tracked file:
//
//	go test -bench ... | go run ./cmd/benchjson -append -label pr6 -o BENCH_VM.json
//	jq -r '.entries[] | [.label, .current.geomean_ns_per_op] | @tsv' BENCH_VM.json
//
// A pre-existing single-report file is absorbed as the trajectory's
// first entry, so switching a file to append mode is lossless.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchLine struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type section struct {
	Raw     []string    `json:"raw"`
	Parsed  []benchLine `json:"parsed"`
	Geomean float64     `json:"geomean_ns_per_op,omitempty"`
}

type report struct {
	Label    string   `json:"label,omitempty"`
	Time     string   `json:"time,omitempty"`
	Go       string   `json:"go"`
	GOOS     string   `json:"goos"`
	GOARCH   string   `json:"goarch"`
	Note     string   `json:"note,omitempty"`
	Baseline *section `json:"baseline,omitempty"`
	Current  section  `json:"current"`
	SpeedupX float64  `json:"speedup_x,omitempty"`
}

// trajectory is the -append file shape: one report per build, oldest
// first.
type trajectory struct {
	Entries []report `json:"entries"`
}

// parse extracts benchmark result lines ("BenchmarkName N ns/op ...")
// from mixed `go test` output.
func parse(r io.Reader) (section, error) {
	var s section
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		bl := benchLine{Name: fields[0], N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				bl.NsPerOp = v
			} else {
				bl.Metrics[fields[i+1]] = v
			}
		}
		s.Raw = append(s.Raw, line)
		s.Parsed = append(s.Parsed, bl)
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	s.Geomean = geomeanNs(s.Parsed)
	return s, nil
}

// mergeTrajectory folds rep into the contents of an existing -append
// file. An empty file starts a fresh trajectory; a legacy single
// report becomes the first entry; a trajectory gains one entry at the
// end. Anything else is an error — better to refuse than to clobber a
// file this tool does not own.
func mergeTrajectory(existing []byte, rep report) (trajectory, error) {
	var traj trajectory
	if len(bytes.TrimSpace(existing)) > 0 {
		var probe struct {
			Entries []json.RawMessage `json:"entries"`
			Current *section          `json:"current"`
		}
		if err := json.Unmarshal(existing, &probe); err != nil {
			return traj, fmt.Errorf("existing report: %w", err)
		}
		switch {
		case probe.Entries != nil:
			if err := json.Unmarshal(existing, &traj); err != nil {
				return traj, fmt.Errorf("existing trajectory: %w", err)
			}
		case probe.Current != nil:
			var old report
			if err := json.Unmarshal(existing, &old); err != nil {
				return traj, fmt.Errorf("existing report: %w", err)
			}
			traj.Entries = append(traj.Entries, old)
		default:
			return traj, errors.New("existing file is neither a benchjson report nor a trajectory")
		}
	}
	traj.Entries = append(traj.Entries, rep)
	return traj, nil
}

func geomeanNs(lines []benchLine) float64 {
	prod, n := 1.0, 0
	for _, l := range lines {
		if l.NsPerOp > 0 {
			prod *= l.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "file of benchmark lines from an earlier build to embed")
	note := flag.String("note", "", "free-form annotation stored in the report")
	appendMode := flag.Bool("append", false, "append this run to -o as a trajectory entry instead of overwriting")
	label := flag.String("label", "", "short name for this run, stored on the trajectory entry")
	flag.Parse()

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(cur.Parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := report{
		Label:   *label,
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Note:    *note,
		Current: cur,
	}
	if *appendMode {
		rep.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base, err := parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.Baseline = &base
		if base.Geomean > 0 && cur.Geomean > 0 {
			rep.SpeedupX = base.Geomean / cur.Geomean
		}
	}
	var doc any = &rep
	if *appendMode {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -append requires -o")
			os.Exit(1)
		}
		existing, err := os.ReadFile(*out)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		traj, err := mergeTrajectory(existing, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
			os.Exit(1)
		}
		doc = &traj
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Command benchjson converts `go test -bench` output into a small
// machine-readable JSON report. The raw benchmark lines are preserved
// verbatim (benchstat consumes exactly those lines), alongside parsed
// ns/op and custom metrics so dashboards don't need a Go-bench parser.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkVMInterpreter -count 3 . | \
//	    go run ./cmd/benchjson -o BENCH_VM.json -baseline old.txt
//
// The optional -baseline file holds benchmark lines from an earlier
// build (same format); they are embedded under "baseline" so one file
// carries the before/after pair:
//
//	jq -r '.baseline.raw[]' BENCH_VM.json > old.txt
//	jq -r '.current.raw[]'  BENCH_VM.json > new.txt
//	benchstat old.txt new.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchLine struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type section struct {
	Raw     []string    `json:"raw"`
	Parsed  []benchLine `json:"parsed"`
	Geomean float64     `json:"geomean_ns_per_op,omitempty"`
}

type report struct {
	Go       string   `json:"go"`
	GOOS     string   `json:"goos"`
	GOARCH   string   `json:"goarch"`
	Note     string   `json:"note,omitempty"`
	Baseline *section `json:"baseline,omitempty"`
	Current  section  `json:"current"`
	SpeedupX float64  `json:"speedup_x,omitempty"`
}

// parse extracts benchmark result lines ("BenchmarkName N ns/op ...")
// from mixed `go test` output.
func parse(r io.Reader) (section, error) {
	var s section
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		bl := benchLine{Name: fields[0], N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				bl.NsPerOp = v
			} else {
				bl.Metrics[fields[i+1]] = v
			}
		}
		s.Raw = append(s.Raw, line)
		s.Parsed = append(s.Parsed, bl)
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	s.Geomean = geomeanNs(s.Parsed)
	return s, nil
}

func geomeanNs(lines []benchLine) float64 {
	prod, n := 1.0, 0
	for _, l := range lines {
		if l.NsPerOp > 0 {
			prod *= l.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "file of benchmark lines from an earlier build to embed")
	note := flag.String("note", "", "free-form annotation stored in the report")
	flag.Parse()

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(cur.Parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := report{
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Note:    *note,
		Current: cur,
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base, err := parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.Baseline = &base
		if base.Geomean > 0 && cur.Geomean > 0 {
			rep.SpeedupX = base.Geomean / cur.Geomean
		}
	}
	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

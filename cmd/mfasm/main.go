// Command mfasm assembles a textual machine program (see
// internal/asm for the syntax) and runs it, printing its output and
// run statistics — the low-level counterpart to mfrun for experiments
// that need precise control over the instruction stream.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"branchprof/internal/asm"
	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

func main() {
	var (
		inPath = flag.String("input", "", "input file (default: stdin)")
		list   = flag.Bool("list", false, "print the assembled listing instead of running")
		fuel   = flag.Uint64("fuel", 0, "instruction limit (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mfasm [-input data] [-list] file.mfs")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfasm:", err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfasm:", err)
		os.Exit(1)
	}
	if *list {
		fmt.Print(isa.Disasm(prog))
		return
	}
	var input []byte
	if *inPath != "" {
		input, err = os.ReadFile(*inPath)
	} else {
		input, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfasm:", err)
		os.Exit(1)
	}
	res, err := vm.Run(prog, input, &vm.Config{Fuel: *fuel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfasm:", err)
		os.Exit(1)
	}
	os.Stdout.Write(res.Output)
	fmt.Fprintf(os.Stderr, "exit %d after %d instructions, %d branches (%d taken)\n",
		res.ExitCode, res.Instrs, res.CondBranches(), res.TakenBranches())
}

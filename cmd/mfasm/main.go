// Command mfasm assembles a textual machine program (see
// internal/asm for the syntax) and runs it through the shared engine,
// printing its output and run statistics — the low-level counterpart
// to mfrun for experiments that need precise control over the
// instruction stream. The assembled source text is the cache content
// key, so -cache-dir lets repeated runs skip the interpreter.
package main

import (
	"flag"
	"fmt"
	"os"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/asm"
	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

func main() {
	t := cli.New("mfasm")
	var (
		inPath = flag.String("input", "", "input file (default: stdin)")
		list   = flag.Bool("list", false, "print the assembled listing instead of running")
		fuel   = flag.Uint64("fuel", 0, "instruction limit (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		t.Usage("mfasm [-input data] [-list] [-cache-dir dir] [-stats] file.mfs")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if *list {
		fmt.Print(isa.Disasm(prog))
		t.Finish()
		return
	}
	input, err := cli.ReadInput(*inPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := t.Engine().RunContext(t.Context(), prog, string(src), input, &vm.Config{Fuel: *fuel})
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout.Write(res.Output)
	fmt.Fprintf(os.Stderr, "exit %d after %d instructions, %d branches (%d taken)\n",
		res.ExitCode, res.Instrs, res.CondBranches(), res.TakenBranches())
	t.Finish()
}

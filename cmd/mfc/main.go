// Command mfc compiles an MF source file through the shared engine
// and prints the assembler listing, the static branch-site table, or
// both.
package main

import (
	"flag"
	"fmt"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/isa"
	"branchprof/internal/mfc"
)

func main() {
	t := cli.New("mfc")
	var (
		prelude = flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
		dce     = flag.Bool("dce", false, "enable dead-branch elimination")
		sites   = flag.Bool("sites", false, "print the static branch-site table")
		asm     = flag.Bool("asm", true, "print the assembler listing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		t.Usage("mfc [-dce] [-sites] [-asm=false] [-stats] file.mf")
	}
	name, source, err := cli.LoadSource(flag.Arg(0), *prelude)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := t.Engine().CompileContext(t.Context(), name, source, mfc.Options{DeadBranchElim: *dce})
	if err != nil {
		t.Fatal(err)
	}
	if *asm {
		fmt.Print(isa.Disasm(prog))
	}
	if *sites {
		fmt.Printf("\n%d static branch sites:\n", len(prog.Sites))
		for _, s := range prog.Sites {
			back := ""
			if s.LoopBack {
				back = " loop-back"
			}
			fmt.Printf("  site %3d: %s at %d:%d in %s (depth %d)%s\n",
				s.ID, s.Label, s.Line, s.Col, s.Func, s.LoopDepth, back)
		}
	}
	t.Finish()
}

// Command mfc compiles an MF source file and prints the assembler
// listing, the static branch-site table, or both.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/workloads"
)

func main() {
	var (
		prelude = flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
		dce     = flag.Bool("dce", false, "enable dead-branch elimination")
		sites   = flag.Bool("sites", false, "print the static branch-site table")
		asm     = flag.Bool("asm", true, "print the assembler listing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mfc [-dce] [-sites] [-asm=false] file.mf")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfc:", err)
		os.Exit(1)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	source := string(src)
	if *prelude {
		source = workloads.Prelude() + source
	}
	prog, err := mfc.Compile(name, source, mfc.Options{DeadBranchElim: *dce})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfc:", err)
		os.Exit(1)
	}
	if *asm {
		fmt.Print(isa.Disasm(prog))
	}
	if *sites {
		fmt.Printf("\n%d static branch sites:\n", len(prog.Sites))
		for _, s := range prog.Sites {
			back := ""
			if s.LoopBack {
				back = " loop-back"
			}
			fmt.Printf("  site %3d: %s at %d:%d in %s (depth %d)%s\n",
				s.ID, s.Label, s.Line, s.Col, s.Func, s.LoopDepth, back)
		}
	}
}

// Command branchprofd serves the measurement pipeline over HTTP: a
// long-running, hardened daemon that accepts MF programs and
// datasets, accumulates per-branch profiles, and answers
// cross-dataset branch predictions. See docs/SERVER.md for the
// endpoint reference, overload behaviour and a curl walkthrough.
//
// Usage:
//
//	branchprofd [-addr :8723] [-db profiles.json] [-shards N]
//	            [-wal DIR] [-fsync record|batch|interval] [-fsync-interval D]
//	            [-cache-dir DIR]
//	            [-self ID] [-peers URL,URL,...] [-sync-interval D]
//	            [-concurrency N] [-queue N] [-request-timeout D]
//	            [-max-body N] [-max-fuel N] [-drain-timeout D]
//	            [-breaker-threshold N] [-breaker-cooldown D]
//	            [observability flags: -trace, -metrics, -metrics-addr, ...]
//
// With -shards N the profile store is a sharded directory: -db names
// the directory, keys spread over N shard files each with its own
// circuit breaker, and an existing single-file database at that path
// is migrated in place (the original is kept as ".pre-shard"). An
// already-sharded store remembers its own shard count; -shards then
// has no effect.
//
// With -wal DIR every profile mutation is appended to a write-ahead
// journal in DIR before it is acknowledged, and unapplied records are
// replayed on startup — acknowledged ingest survives a crash even when
// the store's own save never ran. -fsync picks when appends reach the
// medium: "record" (every append, the default), "batch" (once per
// ingest request) or "interval" (in the background every
// -fsync-interval). See docs/ROBUSTNESS.md "Durability contract".
//
// With -peers (a comma-separated list of the other nodes' base URLs)
// the node joins a replication cluster: profiles ingested anywhere
// reach every node by gossip anti-entropy, and each node serves
// predictions from the cluster-wide merged view. -self names this
// node — it must be stable across restarts and unique in the cluster
// (persisted data is keyed by it). See docs/STORE.md for the
// replication design and README.md for a three-node quickstart.
//
// The first SIGINT/SIGTERM starts a graceful drain: /readyz flips to
// 503, queued requests are shed, in-flight requests complete, and the
// process exits once the listener closes or -drain-timeout expires
// (whichever comes first). A second signal force-exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/server"
)

func main() {
	tool := cli.New("branchprofd")
	var (
		addr         = flag.String("addr", "127.0.0.1:8723", "listen address")
		dbPath       = flag.String("db", "", "persist the accumulated profile database to this path (empty = in-memory only)")
		shards       = flag.Int("shards", 0, "open -db as a sharded store with this many shards (0 = single file unless -db is already a sharded directory)")
		walDir       = flag.String("wal", "", "journal every profile mutation to a write-ahead log in this directory before acknowledging (empty = no journal)")
		walFsync     = flag.String("fsync", "record", "journal fsync policy: record, batch or interval (requires -wal)")
		walInterval  = flag.Duration("fsync-interval", 100*time.Millisecond, "background journal sync period under -fsync interval")
		concurrency  = flag.Int("concurrency", 0, "simultaneously executing requests (0 = engine worker count)")
		queue        = flag.Int("queue", 64, "requests allowed to wait beyond -concurrency before shedding with 429 (0 or -1 = none)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline, propagated into the VM")
		maxBody      = flag.Int64("max-body", 4<<20, "maximum request body bytes")
		maxFuel      = flag.Uint64("max-fuel", 1<<26, "maximum VM instructions per request")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "hard deadline for the SIGTERM graceful drain")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive persistent-I/O failures that open the circuit breaker")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "time the circuit stays open before a half-open probe")
		self         = flag.String("self", "", "this node's stable, cluster-unique ID (required with -peers; alone, enables the replication store layer without gossip)")
		peers        = flag.String("peers", "", "comma-separated base URLs of the other cluster nodes, e.g. http://10.0.0.2:8723,http://10.0.0.3:8723")
		syncInterval = flag.Duration("sync-interval", 2*time.Second, "base gossip period between anti-entropy rounds (jittered ±20%)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		tool.Usage("branchprofd [flags]")
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 && *self == "" {
		tool.Fatal(fmt.Errorf("-peers requires -self (a stable, cluster-unique node ID)"))
	}

	queueDepth := *queue
	if queueDepth <= 0 {
		// The flag defaults to 64, so 0 here is an operator's explicit
		// -queue 0 — "no queueing", which server.Options spells as
		// negative (its own 0 means "use the default depth").
		queueDepth = -1
	}
	srv, warns, err := server.New(server.Options{
		Engine:           tool.Engine(),
		DBPath:           *dbPath,
		Shards:           *shards,
		WALDir:           *walDir,
		WALFsync:         *walFsync,
		WALInterval:      *walInterval,
		Concurrency:      *concurrency,
		QueueDepth:       queueDepth,
		RequestTimeout:   *reqTimeout,
		MaxBodyBytes:     *maxBody,
		MaxFuel:          *maxFuel,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		SelfID:           *self,
		Peers:            peerList,
		SyncInterval:     *syncInterval,
		Obs:              tool.Obs(),
		OnDrained:        tool.Finish,
	})
	for _, w := range warns {
		tool.Warn("%s", w)
	}
	if err != nil {
		tool.Fatal(err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		tool.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "branchprofd: serving on http://%s (drain with SIGTERM)\n", bound)

	// The first signal cancels the tool context; the server then
	// drains under the hard deadline. In-flight requests keep their
	// own contexts, so they finish rather than being cancelled.
	<-tool.Context().Done()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		tool.Warn("drain incomplete: %v", err)
		tool.Finish()
		os.Exit(1)
	}
	tool.Finish()
}

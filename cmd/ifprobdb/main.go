// Command ifprobdb inspects and combines IFPROBBER profile stores:
// list programs, dump a program's accumulated counts, or merge several
// stores into one (the cross-machine accumulation a team running the
// paper's methodology would need). Every argument goes through the
// pluggable store layer, so single-file databases and sharded store
// directories (branchprofd -shards) mix freely on one command line;
// -merge accumulates into the output store — commutative counter
// merges, so existing data there is added to, never clobbered — and
// -merge combined with -shards writes (or migrates to) a sharded
// store. It does no measurement of its own, but carries the shared
// tool flags so scripted pipelines can pass a uniform flag set to
// every branchprof command.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/ifprob"
	"branchprof/internal/store"

	_ "branchprof/internal/store/memstore"   // linked driver: single-file stores
	_ "branchprof/internal/store/shardstore" // linked driver: sharded store directories
)

func main() {
	t := cli.New("ifprobdb")
	var (
		list   = flag.Bool("list", false, "list programs in the store(s)")
		dump   = flag.String("dump", "", "dump the named program's accumulated profile")
		merge  = flag.String("merge", "", "merge all argument stores into the store at this path (accumulates into existing data)")
		shards = flag.Int("shards", 0, "with -merge: shard count for a new sharded output store (migrates an existing single-file one)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		t.Usage("ifprobdb [-list] [-dump prog] [-merge out [-shards N]] store...")
	}
	ctx := t.Context()

	merged := ifprob.NewDB()
	for _, path := range flag.Args() {
		// Open would treat a missing path as a fresh empty store; for a
		// read the operator almost certainly mistyped it.
		if _, err := os.Stat(path); err != nil {
			t.Fatal(err)
		}
		src, warns, err := store.Open(ctx, path, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range warns {
			t.Warn("%s: %s", path, w)
		}
		snap, err := src.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := merged.Add(snap[k]); err != nil {
				t.Fatal(fmt.Errorf("merging %s from %s: %w", k, path, err))
			}
		}
		if err := src.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}

	switch {
	case *merge != "":
		out, warns, err := store.Open(ctx, *merge, store.Options{Shards: *shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range warns {
			t.Warn("%s: %s", *merge, w)
		}
		for _, name := range merged.Programs() {
			if err := out.Merge(ctx, merged.Get(name)); err != nil {
				t.Fatal(fmt.Errorf("merging %s into %s: %w", name, *merge, err))
			}
		}
		if err := out.Save(ctx); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(ctx); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ifprobdb: merged %d programs into %s\n", len(merged.Programs()), *merge)
	case *dump != "":
		p := merged.Get(*dump)
		if p == nil {
			t.Fatal(fmt.Errorf("no program %q in the store(s)", *dump))
		}
		fmt.Printf("program %s (datasets: %s)\n", p.Program, p.Dataset)
		fmt.Printf("instructions %d, branches %d, taken %.1f%%, coverage %.1f%%\n",
			p.Instrs, p.Executed(), 100*p.PercentTaken(), 100*p.Coverage())
		for i := range p.Total {
			if p.Total[i] == 0 {
				continue
			}
			fmt.Printf("  site %4d: %10d / %-10d (%.1f%% taken)\n",
				i, p.Taken[i], p.Total[i], 100*float64(p.Taken[i])/float64(p.Total[i]))
		}
	default:
		*list = true
		fallthrough
	case *list:
		for _, name := range merged.Programs() {
			p := merged.Get(name)
			fmt.Printf("%-20s %12d branches over %d sites (%s)\n",
				name, p.Executed(), p.Sites(), p.Dataset)
		}
	}
	t.Finish()
}

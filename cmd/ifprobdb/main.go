// Command ifprobdb inspects and combines IFPROBBER profile stores:
// list programs, dump a program's accumulated counts, or merge several
// stores into one (the cross-machine accumulation a team running the
// paper's methodology would need). Every argument goes through the
// pluggable store layer, so single-file databases and sharded store
// directories (branchprofd -shards) mix freely on one command line;
// -merge accumulates into the output store — commutative counter
// merges, so existing data there is added to, never clobbered — and
// -merge combined with -shards writes (or migrates to) a sharded
// store. It does no measurement of its own, but carries the shared
// tool flags so scripted pipelines can pass a uniform flag set to
// every branchprof command.
//
// -verify is the odd one out: it audits instead of reading — every
// argument store's files are re-read and their checksums and counter
// invariants recomputed in place, one file at a time (a sharded store
// reports shard by shard), with nothing merged into memory, so it
// scales to stores far larger than RAM and never takes a write lock.
// With -wal DIR it also audits the write-ahead journal branchprofd
// keeps there (frame CRCs, global sequence continuity, a torn tail
// flagged as recoverable) and cross-checks every store file's
// embedded checkpoint against the journal — a checkpoint above the
// log's last sequence number cannot have come from it. Exit status is
// non-zero when any file is corrupt.
//
// -wal-dump SEG pretty-prints one journal segment record by record
// (offset, sequence, operation, key) — the forensic view of what a
// replay would apply.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strings"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/ifprob"
	"branchprof/internal/store"
	"branchprof/internal/store/wal"

	_ "branchprof/internal/store/memstore" // linked driver: single-file stores

	"branchprof/internal/store/shardstore" // linked driver + on-disk layout for -verify
)

// verifyStore audits one store argument file by file: a single-file
// database is one report line, a sharded root gets one line per shard.
// When audit is non-nil, each clean file's embedded journal checkpoint
// is cross-checked against the audited log. It returns (clean files,
// corrupt files); infrastructure errors (no such path, unreadable
// manifest) are fatal — absence of evidence is not a clean audit.
func verifyStore(t *cli.Tool, path string, audit *wal.Audit) (clean, corrupt int) {
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	report := func(file string, n int, walSeq uint64, err error) {
		switch {
		case err == nil:
			if audit != nil {
				if msg := audit.CheckWatermark(file, walSeq); msg != "" {
					fmt.Printf("%-40s CORRUPT  %s\n", file, msg)
					corrupt++
					return
				}
			}
			note := fmt.Sprintf("%d profiles", n)
			if walSeq != 0 {
				note += fmt.Sprintf(", checkpoint %d", walSeq)
			}
			fmt.Printf("%-40s clean    %s\n", file, note)
			clean++
		case errors.Is(err, fs.ErrNotExist):
			// A shard nothing was ever saved to has no file: empty, not
			// corrupt.
			fmt.Printf("%-40s clean    empty (no file)\n", file)
			clean++
		default:
			fmt.Printf("%-40s CORRUPT  %v\n", file, err)
			corrupt++
		}
	}
	if !fi.IsDir() {
		n, walSeq, err := ifprob.VerifyFile(path)
		report(path, n, walSeq, err)
		return clean, corrupt
	}
	shards, err := shardstore.ManifestShards(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		file := shardstore.ShardFile(path, i)
		n, walSeq, err := ifprob.VerifyFile(file)
		report(file, n, walSeq, err)
	}
	return clean, corrupt
}

// verifyWAL audits the write-ahead journal directory segment by
// segment: frame lengths and CRCs, and the global sequence continuity
// replay depends on. A torn tail in the final segment is reported as
// clean-but-noted (the expected crash artifact, repaired by the next
// replay); a bad frame or sequence gap anywhere else is corruption.
// The returned audit lets store checkpoints be cross-checked.
func verifyWAL(t *cli.Tool, dir string) (audit *wal.Audit, clean, corrupt int) {
	audit, err := wal.VerifySegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range audit.Segments {
		var probs []string
		for _, p := range audit.Problems {
			if strings.HasPrefix(p, seg.Path+": ") {
				probs = append(probs, strings.TrimPrefix(p, seg.Path+": "))
			}
		}
		switch {
		case len(probs) > 0:
			fmt.Printf("%-40s CORRUPT  %s\n", seg.Path, strings.Join(probs, "; "))
			corrupt++
		case seg.TornAt >= 0:
			fmt.Printf("%-40s clean    %d records, torn tail at byte %d (recoverable)\n",
				seg.Path, seg.Records, seg.TornAt)
			clean++
		case seg.Records == 0:
			fmt.Printf("%-40s clean    empty\n", seg.Path)
			clean++
		default:
			fmt.Printf("%-40s clean    %d records (seq %d..%d)\n",
				seg.Path, seg.Records, seg.MinSeq, seg.MaxSeq)
			clean++
		}
	}
	if len(audit.Segments) == 0 {
		fmt.Printf("%-40s clean    empty journal\n", dir)
		clean++
	}
	return audit, clean, corrupt
}

func main() {
	t := cli.New("ifprobdb")
	var (
		list    = flag.Bool("list", false, "list programs in the store(s)")
		dump    = flag.String("dump", "", "dump the named program's accumulated profile")
		merge   = flag.String("merge", "", "merge all argument stores into the store at this path (accumulates into existing data)")
		shards  = flag.Int("shards", 0, "with -merge: shard count for a new sharded output store (migrates an existing single-file one)")
		verify  = flag.Bool("verify", false, "audit the store(s) in place: recompute every file's checksum and invariants, report per shard, exit non-zero on corruption")
		walDir  = flag.String("wal", "", "with -verify: also audit the write-ahead journal at this directory and cross-check store checkpoints against it")
		walDump = flag.String("wal-dump", "", "pretty-print one journal segment file record by record, then exit")
	)
	flag.Parse()
	if *walDump != "" {
		if err := wal.DumpSegment(os.Stdout, *walDump); err != nil {
			t.Fatal(err)
		}
		t.Finish()
		return
	}
	if *walDir != "" && !*verify {
		t.Fatal(errors.New("-wal only audits; combine it with -verify"))
	}
	if flag.NArg() == 0 && !(*verify && *walDir != "") {
		t.Usage("ifprobdb [-list] [-dump prog] [-merge out [-shards N]] [-verify [-wal DIR]] [-wal-dump SEG] store...")
	}
	ctx := t.Context()

	if *verify {
		var audit *wal.Audit
		var clean, corrupt int
		if *walDir != "" {
			audit, clean, corrupt = verifyWAL(t, *walDir)
		}
		for _, path := range flag.Args() {
			c, b := verifyStore(t, path, audit)
			clean, corrupt = clean+c, corrupt+b
		}
		fmt.Fprintf(os.Stderr, "ifprobdb: verified %d files: %d clean, %d corrupt\n", clean+corrupt, clean, corrupt)
		if corrupt > 0 {
			t.Fatal(fmt.Errorf("%d corrupt files", corrupt))
		}
		t.Finish()
		return
	}

	merged := ifprob.NewDB()
	for _, path := range flag.Args() {
		// Open would treat a missing path as a fresh empty store; for a
		// read the operator almost certainly mistyped it.
		if _, err := os.Stat(path); err != nil {
			t.Fatal(err)
		}
		src, warns, err := store.Open(ctx, path, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range warns {
			t.Warn("%s: %s", path, w)
		}
		snap, err := src.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := merged.Add(snap[k]); err != nil {
				t.Fatal(fmt.Errorf("merging %s from %s: %w", k, path, err))
			}
		}
		if err := src.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}

	switch {
	case *merge != "":
		out, warns, err := store.Open(ctx, *merge, store.Options{Shards: *shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range warns {
			t.Warn("%s: %s", *merge, w)
		}
		for _, name := range merged.Programs() {
			if err := out.Merge(ctx, merged.Get(name)); err != nil {
				t.Fatal(fmt.Errorf("merging %s into %s: %w", name, *merge, err))
			}
		}
		if err := out.Save(ctx); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(ctx); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ifprobdb: merged %d programs into %s\n", len(merged.Programs()), *merge)
	case *dump != "":
		p := merged.Get(*dump)
		if p == nil {
			t.Fatal(fmt.Errorf("no program %q in the store(s)", *dump))
		}
		fmt.Printf("program %s (datasets: %s)\n", p.Program, p.Dataset)
		fmt.Printf("instructions %d, branches %d, taken %.1f%%, coverage %.1f%%\n",
			p.Instrs, p.Executed(), 100*p.PercentTaken(), 100*p.Coverage())
		for i := range p.Total {
			if p.Total[i] == 0 {
				continue
			}
			fmt.Printf("  site %4d: %10d / %-10d (%.1f%% taken)\n",
				i, p.Taken[i], p.Total[i], 100*float64(p.Taken[i])/float64(p.Total[i]))
		}
	default:
		*list = true
		fallthrough
	case *list:
		for _, name := range merged.Programs() {
			p := merged.Get(name)
			fmt.Printf("%-20s %12d branches over %d sites (%s)\n",
				name, p.Executed(), p.Sites(), p.Dataset)
		}
	}
	t.Finish()
}

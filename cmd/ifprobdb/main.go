// Command ifprobdb inspects and combines IFPROBBER profile databases:
// list programs, dump a program's accumulated counts, or merge several
// databases into one (the cross-machine accumulation a team running
// the paper's methodology would need). It does no measurement of its
// own, but carries the shared tool flags so scripted pipelines can
// pass a uniform flag set to every branchprof command.
package main

import (
	"flag"
	"fmt"
	"os"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/ifprob"
)

func main() {
	t := cli.New("ifprobdb")
	var (
		list  = flag.Bool("list", false, "list programs in the database(s)")
		dump  = flag.String("dump", "", "dump the named program's accumulated profile")
		merge = flag.String("merge", "", "merge all argument databases into this output path")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		t.Usage("ifprobdb [-list] [-dump prog] [-merge out.json] db.json...")
	}

	merged := ifprob.NewDB()
	for _, path := range flag.Args() {
		db, err := ifprob.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range db.Programs() {
			if err := merged.Add(db.Get(name)); err != nil {
				t.Fatal(fmt.Errorf("merging %s from %s: %w", name, path, err))
			}
		}
	}

	switch {
	case *merge != "":
		if err := merged.Save(*merge); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ifprobdb: wrote %d programs to %s\n", len(merged.Programs()), *merge)
	case *dump != "":
		p := merged.Get(*dump)
		if p == nil {
			t.Fatal(fmt.Errorf("no program %q in the database(s)", *dump))
		}
		fmt.Printf("program %s (datasets: %s)\n", p.Program, p.Dataset)
		fmt.Printf("instructions %d, branches %d, taken %.1f%%, coverage %.1f%%\n",
			p.Instrs, p.Executed(), 100*p.PercentTaken(), 100*p.Coverage())
		for i := range p.Total {
			if p.Total[i] == 0 {
				continue
			}
			fmt.Printf("  site %4d: %10d / %-10d (%.1f%% taken)\n",
				i, p.Taken[i], p.Total[i], 100*float64(p.Taken[i])/float64(p.Total[i]))
		}
	default:
		*list = true
		fallthrough
	case *list:
		for _, name := range merged.Programs() {
			p := merged.Get(name)
			fmt.Printf("%-20s %12d branches over %d sites (%s)\n",
				name, p.Executed(), p.Sites(), p.Dataset)
		}
	}
	t.Finish()
}

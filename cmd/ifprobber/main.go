// Command ifprobber is the profile-collection loop: it compiles an MF
// program, runs it on a dataset, and accumulates the branch counts
// into a JSON database (creating it if absent) — one invocation per
// run, like the paper's instrumented binaries updating their counter
// database. With -annotate it instead reads the database and re-emits
// the source with IFPROB feedback directives.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"branchprof/internal/ifprob"
	"branchprof/internal/mfc"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

func main() {
	var (
		prelude  = flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
		dbPath   = flag.String("db", "ifprob.json", "profile database path")
		inPath   = flag.String("input", "", "dataset file (default: stdin)")
		dataset  = flag.String("dataset", "stdin", "dataset name recorded in the database")
		annotate = flag.Bool("annotate", false, "emit source annotated with accumulated IFPROB directives")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ifprobber [-db file] [-input data] [-annotate] file.mf")
		os.Exit(2)
	}
	path := flag.Arg(0)
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifprobber:", err)
		os.Exit(1)
	}
	src := string(srcBytes)
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if *prelude {
		src = workloads.Prelude() + src
	}
	prog, err := mfc.Compile(name, src, mfc.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifprobber:", err)
		os.Exit(1)
	}

	db, err := ifprob.Load(*dbPath)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "ifprobber:", err)
			os.Exit(1)
		}
		db = ifprob.NewDB()
	}

	if *annotate {
		prof := db.Get(name)
		if prof == nil {
			fmt.Fprintf(os.Stderr, "ifprobber: no accumulated profile for %s in %s\n", name, *dbPath)
			os.Exit(1)
		}
		out, err := ifprob.AnnotateSource(src, prog, prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ifprobber:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	var input []byte
	if *inPath != "" {
		input, err = os.ReadFile(*inPath)
	} else {
		input, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifprobber:", err)
		os.Exit(1)
	}
	res, err := vm.Run(prog, input, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifprobber:", err)
		os.Exit(1)
	}
	os.Stdout.Write(res.Output)
	if err := db.Add(ifprob.FromRun(name, *dataset, res)); err != nil {
		fmt.Fprintln(os.Stderr, "ifprobber:", err)
		os.Exit(1)
	}
	if err := db.Save(*dbPath); err != nil {
		fmt.Fprintln(os.Stderr, "ifprobber:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ifprobber: accumulated %d branch executions for %s into %s\n",
		res.CondBranches(), name, *dbPath)
}

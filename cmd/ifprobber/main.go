// Command ifprobber is the profile-collection loop: it compiles an MF
// program, runs it on a dataset, and accumulates the branch counts
// into a profile store (creating it if absent) — one invocation per
// run, like the paper's instrumented binaries updating their counter
// database. The store goes through the pluggable storage layer, so
// -db may name the classic single JSON file or a sharded store
// directory (as written by branchprofd -shards); either accumulates
// the same way. With -annotate it instead reads the store and
// re-emits the source with IFPROB feedback directives. Compilation
// and the measured run route through the shared engine, so a
// -cache-dir lets repeated accumulations of an already-measured
// (source, dataset) pair skip the interpreter.
package main

import (
	"fmt"
	"os"

	"flag"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/engine"
	"branchprof/internal/ifprob"
	"branchprof/internal/mfc"
	"branchprof/internal/store"

	_ "branchprof/internal/store/memstore"   // linked driver: single-file stores
	_ "branchprof/internal/store/shardstore" // linked driver: sharded store directories
)

func main() {
	t := cli.New("ifprobber")
	var (
		prelude  = flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
		dbPath   = flag.String("db", "ifprob.json", "profile store path (single file or sharded directory)")
		inPath   = flag.String("input", "", "dataset file (default: stdin)")
		dataset  = flag.String("dataset", "", "dataset name recorded in the store (default: input file name or stdin)")
		annotate = flag.Bool("annotate", false, "emit source annotated with accumulated IFPROB directives")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		t.Usage("ifprobber [-db store] [-input data] [-annotate] [-cache-dir dir] [-stats] file.mf")
	}
	ctx := t.Context()
	name, src, err := cli.LoadSource(flag.Arg(0), *prelude)
	if err != nil {
		t.Fatal(err)
	}

	db, warns, err := store.Open(ctx, *dbPath, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range warns {
		t.Warn("%s", w)
	}

	if *annotate {
		prog, err := t.Engine().CompileContext(ctx, name, src, mfc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prof, err := db.Get(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if prof == nil {
			t.Fatal(fmt.Errorf("no accumulated profile for %s in %s", name, *dbPath))
		}
		out, err := ifprob.AnnotateSource(src, prog, prof)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Print(out)
		t.Finish()
		return
	}

	input, err := cli.ReadInput(*inPath)
	if err != nil {
		t.Fatal(err)
	}
	dsName := *dataset
	if dsName == "" {
		dsName = cli.InputLabel(*inPath)
	}
	out, err := t.Engine().ExecuteContext(ctx, engine.Spec{
		Name:    name,
		Source:  src,
		Dataset: dsName,
		Input:   input,
	})
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout.Write(out.Res.Output)
	if err := db.Merge(ctx, out.Prof); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(ctx); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(ctx); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ifprobber: accumulated %d branch executions for %s into %s\n",
		out.Res.CondBranches(), name, *dbPath)
	t.Finish()
}

// Command mfrun compiles and runs an MF source file, feeding it a
// dataset file (or stdin) and reporting the run statistics the VM
// collects: instructions, branch outcomes, and control transfers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"branchprof/internal/mfc"
	"branchprof/internal/pixie"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

func main() {
	var (
		prelude = flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
		inPath  = flag.String("input", "", "input file (default: stdin)")
		dce     = flag.Bool("dce", false, "enable dead-branch elimination")
		stats   = flag.Bool("stats", true, "print run statistics to stderr")
		mix     = flag.Bool("pixie", false, "print the full pixie report to stderr")
		fuel    = flag.Uint64("fuel", 0, "instruction limit (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mfrun [-input data] [-dce] [-pixie] file.mf")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfrun:", err)
		os.Exit(1)
	}
	var input []byte
	if *inPath != "" {
		input, err = os.ReadFile(*inPath)
	} else {
		input, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfrun:", err)
		os.Exit(1)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	source := string(src)
	if *prelude {
		source = workloads.Prelude() + source
	}
	prog, err := mfc.Compile(name, source, mfc.Options{DeadBranchElim: *dce})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfrun:", err)
		os.Exit(1)
	}
	cfg := &vm.Config{Fuel: *fuel, PerPC: *mix}
	res, err := vm.Run(prog, input, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfrun:", err)
		os.Exit(1)
	}
	os.Stdout.Write(res.Output)
	if *stats {
		fmt.Fprintf(os.Stderr, "exit %d after %d instructions\n", res.ExitCode, res.Instrs)
		fmt.Fprintf(os.Stderr, "conditional branches %d (taken %d), jumps %d\n",
			res.CondBranches(), res.TakenBranches(), res.Jumps)
		fmt.Fprintf(os.Stderr, "calls direct %d indirect %d, returns direct %d indirect %d, max depth %d\n",
			res.DirectCalls, res.IndirectCalls, res.DirectReturns, res.IndirectReturns, res.MaxDepth)
	}
	if *mix {
		rep, err := pixie.Analyze(prog, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfrun:", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, rep.String())
	}
}

// Command mfrun compiles and runs an MF source file through the
// shared engine, feeding it a dataset file (or stdin) and reporting
// the run statistics the VM collects: instructions, branch outcomes,
// and control transfers. With -cache-dir, repeated runs of the same
// source and input are served from the persistent measurement cache.
package main

import (
	"flag"
	"fmt"
	"os"

	"branchprof/cmd/internal/cli"
	"branchprof/internal/engine"
	"branchprof/internal/mfc"
	"branchprof/internal/pixie"
	"branchprof/internal/vm"
)

func main() {
	t := cli.New("mfrun")
	var (
		prelude  = flag.Bool("prelude", false, "prepend the MF runtime prelude (puti, geti, ...)")
		inPath   = flag.String("input", "", "input file (default: stdin)")
		dce      = flag.Bool("dce", false, "enable dead-branch elimination")
		runStats = flag.Bool("run-stats", true, "print run statistics to stderr")
		mix      = flag.Bool("pixie", false, "print the full pixie report to stderr")
		fuel     = flag.Uint64("fuel", 0, "instruction limit (0 = default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		t.Usage("mfrun [-input data] [-dce] [-pixie] [-cache-dir dir] [-stats] file.mf")
	}
	name, source, err := cli.LoadSource(flag.Arg(0), *prelude)
	if err != nil {
		t.Fatal(err)
	}
	input, err := cli.ReadInput(*inPath)
	if err != nil {
		t.Fatal(err)
	}
	out, err := t.Engine().ExecuteContext(t.Context(), engine.Spec{
		Name:    name,
		Source:  source,
		Options: mfc.Options{DeadBranchElim: *dce},
		Dataset: cli.InputLabel(*inPath),
		Input:   input,
		Config:  vm.Config{Fuel: *fuel, PerPC: *mix},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Res
	os.Stdout.Write(res.Output)
	if *runStats {
		fmt.Fprintf(os.Stderr, "exit %d after %d instructions\n", res.ExitCode, res.Instrs)
		fmt.Fprintf(os.Stderr, "conditional branches %d (taken %d), jumps %d\n",
			res.CondBranches(), res.TakenBranches(), res.Jumps)
		fmt.Fprintf(os.Stderr, "calls direct %d indirect %d, returns direct %d indirect %d, max depth %d\n",
			res.DirectCalls, res.IndirectCalls, res.DirectReturns, res.IndirectReturns, res.MaxDepth)
	}
	if *mix {
		rep, err := pixie.Analyze(out.Prog, res)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(os.Stderr, rep.String())
	}
	t.Finish()
}

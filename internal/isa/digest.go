package isa

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
)

// ProgramDigest returns a stable content hash covering every field of
// the program that can influence execution: the full instruction
// stream, function shapes, initial memory images, the site table size
// and the source name (which appears verbatim in fuel/cancel error
// text). Two programs with equal digests are observationally
// identical to the VM, so the digest is the key under which
// ahead-of-time compiled backends register themselves (vm.Backend):
// a generated body may run in place of the interpreter exactly when
// the program it was generated from hashes the same.
//
// The encoding is a fixed, explicit field walk — not an encoding/gob
// or reflect-based serialization — so the digest cannot drift with
// library versions. Changing it invalidates every registered
// compiled form (they fail the lookup and fall back to the
// interpreter), never correctness.
func ProgramDigest(p *Program) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	str("mf-program-v1")
	str(p.Source)
	i64(int64(p.Main))
	i64(int64(p.IntMem))
	i64(int64(p.FloatMem))
	i64(int64(len(p.Sites)))

	u64(uint64(len(p.IntData)))
	for _, v := range p.IntData {
		i64(v)
	}
	u64(uint64(len(p.FloatData)))
	for _, v := range p.FloatData {
		u64(math.Float64bits(v))
	}

	u64(uint64(len(p.Funcs)))
	for i := range p.Funcs {
		hashFunc(h, u64, i64, str, &p.Funcs[i])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func hashFunc(h hash.Hash, u64 func(uint64), i64 func(int64), str func(string), f *Func) {
	str(f.Name)
	i64(int64(f.Kind))
	i64(int64(f.NumParams))
	i64(int64(f.NumIRegs))
	i64(int64(f.NumFRegs))
	u64(uint64(len(f.FParams)))
	for _, fp := range f.FParams {
		if fp {
			u64(1)
		} else {
			u64(0)
		}
	}
	u64(uint64(len(f.Code)))
	for i := range f.Code {
		in := &f.Code[i]
		i64(int64(in.Op))
		i64(int64(in.A))
		i64(int64(in.B))
		i64(int64(in.C))
		i64(in.Imm)
		u64(math.Float64bits(in.FImm))
		i64(int64(in.Target))
		i64(int64(in.Site))
	}
}

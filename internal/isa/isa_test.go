package isa

import (
	"strings"
	"testing"
)

func validProgram() *Program {
	return &Program{
		Funcs: []Func{{
			Name: "main", Kind: FuncInt, NumIRegs: 2,
			Code: []Instr{
				{Op: OpLdi, C: 0, Imm: 1},
				{Op: OpBr, A: 0, Target: 3, Site: 0},
				{Op: OpLdi, C: 0, Imm: 2},
				{Op: OpRet, A: 0},
			},
		}},
		Main: 0, IntMem: 1, FloatMem: 1,
		Sites: []BranchSite{{ID: 0, Func: "main"}},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"bad main", func(p *Program) { p.Main = 5 }, "main index"},
		{"branch target out of range", func(p *Program) { p.Funcs[0].Code[1].Target = 99 }, "target"},
		{"branch site out of range", func(p *Program) { p.Funcs[0].Code[1].Site = 7 }, "site"},
		{"call target out of range", func(p *Program) {
			p.Funcs[0].Code[0] = Instr{Op: OpCall, Target: 9}
		}, "call target"},
		{"no trailing control", func(p *Program) {
			p.Funcs[0].Code[3] = Instr{Op: OpLdi, C: 0}
		}, "control transfer"},
		{"site id mismatch", func(p *Program) { p.Sites[0].ID = 3 }, "has id"},
		{"reused site", func(p *Program) {
			p.Funcs[0].Code[2] = Instr{Op: OpBr, A: 0, Target: 3, Site: 0}
		}, "reused"},
	}
	for _, c := range cases {
		p := validProgram()
		c.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < opCount; op++ {
		if !op.Valid() {
			t.Errorf("op %d has no name", uint8(op))
		}
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d renders as %s", uint8(op), op)
		}
	}
	if Op(200).Valid() {
		t.Error("op 200 should be invalid")
	}
}

func TestIsControl(t *testing.T) {
	control := []Op{OpBr, OpJmp, OpCall, OpICall, OpRet, OpHalt}
	for _, op := range control {
		if !op.IsControl() {
			t.Errorf("%v should be control", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLd, OpGetc, OpSqrt} {
		if op.IsControl() {
			t.Errorf("%v should not be control", op)
		}
	}
}

func TestDisasmCoversProgram(t *testing.T) {
	p := validProgram()
	out := Disasm(p)
	for _, want := range []string{"main", "ldi", "br", "ret", "site 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestFuncIndexAndStaticInstrs(t *testing.T) {
	p := validProgram()
	if got := p.FuncIndex("main"); got != 0 {
		t.Errorf("FuncIndex(main) = %d", got)
	}
	if got := p.FuncIndex("nope"); got != -1 {
		t.Errorf("FuncIndex(nope) = %d", got)
	}
	if got := p.StaticInstrs(); got != 4 {
		t.Errorf("StaticInstrs = %d, want 4", got)
	}
}

// Package isa defines the instruction set of the Trace-like scalar RISC
// virtual machine used throughout this repository.
//
// The machine is deliberately close in spirit to the RISC-level
// "operations" of the Multiflow Trace 14/300 that Fisher and
// Freudenberger counted: fixed-cost three-register operations, memory
// reached only through explicit loads and stores, and a small set of
// control-transfer operations whose dynamic behaviour is exactly what
// the paper's IFPROBBER and MFPixie tools measured.
//
// Integer and floating-point state are separate, word-addressed
// memories (FORTRAN style). Each function owns a private register
// frame; calls push a new frame. Conditional branches test a single
// register against zero, so a compare feeds a branch as two
// instructions, as on most RISCs.
package isa

import "fmt"

// Op enumerates the machine operations.
type Op uint8

// Operation codes. The groups matter to the measurement machinery:
// OpBr is the only conditional branch; OpJmp/OpCall/OpICall/OpRet are
// the other control transfers the paper classifies as avoidable or
// unavoidable breaks in control.
const (
	OpNop Op = iota

	// Integer ALU: C = A op B (register indices).
	OpAdd
	OpSub
	OpMul
	OpDiv // traps (halts with error) on divide by zero
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right
	OpNeg // C = -A
	OpNot // C = ^A

	// Integer comparisons: C = A cmp B ? 1 : 0.
	OpSlt
	OpSle
	OpSeq
	OpSne

	// Floating point ALU.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Floating comparisons: integer register C = FA cmp FB ? 1 : 0.
	OpFSlt
	OpFSle
	OpFSeq
	OpFSne

	// Conversions.
	OpCvtIF // float C = float(int A)
	OpCvtFI // int C = int(float A), truncating toward zero

	// Constants and moves.
	OpLdi  // int C = Imm
	OpLdf  // float C = FImm
	OpMov  // int C = A
	OpFMov // float C = A

	// Memory. Address = int reg A + Imm, word granularity.
	OpLd  // int C = imem[A+Imm]
	OpSt  // imem[A+Imm] = B
	OpFLd // float C = fmem[A+Imm]
	OpFSt // fmem[A+Imm] = FB (float reg B)

	// Control transfer.
	OpBr    // if int A != 0 jump to Target (taken) else fall through; Site identifies the static branch
	OpJmp   // unconditional jump to Target
	OpCall  // direct call of Funcs[Target]; args copied from caller regs
	OpICall // indirect call: callee = function index in int reg A
	OpRet   // return; int reg A (or float reg A) holds the value per callee kind

	// System.
	OpGetc // int C = next input byte, or -1 at end of input
	OpPutc // append low byte of int A to the output
	OpHalt // stop execution

	// Math intrinsics (single instructions, as transcendental units).
	OpSqrt
	OpSin
	OpCos
	OpExp
	OpLog
	OpFAbs
	OpFloor
	OpPow // float C = pow(A, B)

	// Conditional selects (the Trace front ends' if-conversion target:
	// both operands are evaluated and one is selected, with no branch).
	// The fourth operand — the else-value register — rides in Imm.
	OpSel  // int C = (int A != 0) ? int B : int reg Imm
	OpFSel // float C = (int A != 0) ? float B : float reg Imm

	opCount
)

var opNames = [...]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpSlt: "slt", OpSle: "sle", OpSeq: "seq", OpSne: "sne",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpFSlt: "fslt", OpFSle: "fsle", OpFSeq: "fseq", OpFSne: "fsne",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpLdi: "ldi", OpLdf: "ldf", OpMov: "mov", OpFMov: "fmov",
	OpLd: "ld", OpSt: "st", OpFLd: "fld", OpFSt: "fst",
	OpBr: "br", OpJmp: "jmp", OpCall: "call", OpICall: "icall", OpRet: "ret",
	OpGetc: "getc", OpPutc: "putc", OpHalt: "halt",
	OpSqrt: "sqrt", OpSin: "sin", OpCos: "cos", OpExp: "exp", OpLog: "log",
	OpFAbs: "fabs", OpFloor: "floor", OpPow: "pow",
	OpSel: "sel", OpFSel: "fsel",
}

// String returns the assembler mnemonic for the operation.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined operation.
func (op Op) Valid() bool { return op < opCount && (op == OpNop || opNames[op] != "") }

// IsControl reports whether the operation can transfer control.
func (op Op) IsControl() bool {
	switch op {
	case OpBr, OpJmp, OpCall, OpICall, OpRet, OpHalt:
		return true
	}
	return false
}

// Instr is one machine operation. All operands are explicit fields
// rather than a packed encoding; the VM interprets these directly.
type Instr struct {
	Op      Op
	A, B, C int32   // register operands (meaning depends on Op)
	Imm     int64   // integer immediate / address offset
	FImm    float64 // floating immediate (OpLdf)
	Target  int32   // branch target (instruction index) or callee function index
	Site    int32   // static conditional branch site id for OpBr; -1 otherwise
}

// BranchSite describes one static conditional branch in the compiled
// program. Site ids are dense and assigned in source order, which is
// what lets profiles gathered on one compilation predict another.
type BranchSite struct {
	ID        int
	Func      string // enclosing function name
	Line      int    // source line
	Col       int    // source column
	LoopDepth int    // number of enclosing loops at the branch
	LoopBack  bool   // true when the taken direction is a loop back edge
	Label     string // short description, e.g. "while", "if", "&&", "switch-arm"
}

// FuncKind says whether a function returns an int or a float value;
// the VM uses it to route OpRet.
type FuncKind uint8

// Function return kinds.
const (
	FuncInt FuncKind = iota
	FuncFloat
	FuncVoid
)

// Func is one compiled function.
type Func struct {
	Name      string
	Kind      FuncKind
	NumParams int    // parameters occupy registers [0,NumParams)
	NumFRegs  int    // size of the float register frame
	NumIRegs  int    // size of the int register frame (includes params)
	FParams   []bool // per-parameter: true if the parameter is a float
	Code      []Instr
}

// Program is a complete executable image.
type Program struct {
	Funcs     []Func
	Main      int       // index of the entry function
	IntMem    int       // words of int memory
	FloatMem  int       // words of float memory
	IntData   []int64   // initial contents of int memory (prefix)
	FloatData []float64 // initial contents of float memory (prefix)
	Sites     []BranchSite
	Source    string // name of the source unit, for reports
}

// FuncIndex returns the index of the named function, or -1.
func (p *Program) FuncIndex(name string) int {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return i
		}
	}
	return -1
}

// StaticInstrs returns the total static instruction count.
func (p *Program) StaticInstrs() int {
	n := 0
	for i := range p.Funcs {
		n += len(p.Funcs[i].Code)
	}
	return n
}

// Validate checks structural invariants: operand registers within the
// declared frames, branch targets inside the owning function, call
// targets naming real functions, and branch sites consistently
// numbered. The compiler calls this after codegen, and tests rely on
// it to reject malformed hand-built programs.
func (p *Program) Validate() error {
	if p.Main < 0 || p.Main >= len(p.Funcs) {
		return fmt.Errorf("isa: main index %d out of range (%d funcs)", p.Main, len(p.Funcs))
	}
	seen := make(map[int32]bool)
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		if f.NumParams > f.NumIRegs+f.NumFRegs {
			return fmt.Errorf("isa: %s: %d params exceed register frame", f.Name, f.NumParams)
		}
		for pc, in := range f.Code {
			if !in.Op.Valid() {
				return fmt.Errorf("isa: %s+%d: invalid op %d", f.Name, pc, uint8(in.Op))
			}
			switch in.Op {
			case OpBr, OpJmp:
				if in.Target < 0 || int(in.Target) >= len(f.Code) {
					return fmt.Errorf("isa: %s+%d: %v target %d out of range", f.Name, pc, in.Op, in.Target)
				}
				if in.Op == OpBr {
					if in.Site < 0 || int(in.Site) >= len(p.Sites) {
						return fmt.Errorf("isa: %s+%d: branch site %d out of range", f.Name, pc, in.Site)
					}
					if seen[in.Site] {
						return fmt.Errorf("isa: %s+%d: branch site %d reused", f.Name, pc, in.Site)
					}
					seen[in.Site] = true
				}
			case OpCall:
				if in.Target < 0 || int(in.Target) >= len(p.Funcs) {
					return fmt.Errorf("isa: %s+%d: call target %d out of range", f.Name, pc, in.Target)
				}
			}
		}
		if n := len(f.Code); n == 0 || !f.Code[n-1].Op.IsControl() {
			return fmt.Errorf("isa: %s: function does not end in a control transfer", f.Name)
		}
	}
	for i, s := range p.Sites {
		if s.ID != i {
			return fmt.Errorf("isa: site %d has id %d", i, s.ID)
		}
	}
	return nil
}

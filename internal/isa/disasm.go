package isa

import (
	"fmt"
	"strings"
)

// DisasmInstr renders one instruction in assembler syntax.
func DisasmInstr(in Instr) string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpSlt, OpSle, OpSeq, OpSne:
		return fmt.Sprintf("%-5s r%d, r%d, r%d", in.Op, in.C, in.A, in.B)
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpPow:
		return fmt.Sprintf("%-5s f%d, f%d, f%d", in.Op, in.C, in.A, in.B)
	case OpFSlt, OpFSle, OpFSeq, OpFSne:
		return fmt.Sprintf("%-5s r%d, f%d, f%d", in.Op, in.C, in.A, in.B)
	case OpNeg, OpNot, OpMov:
		return fmt.Sprintf("%-5s r%d, r%d", in.Op, in.C, in.A)
	case OpFNeg, OpFMov, OpSqrt, OpSin, OpCos, OpExp, OpLog, OpFAbs, OpFloor:
		return fmt.Sprintf("%-5s f%d, f%d", in.Op, in.C, in.A)
	case OpCvtIF:
		return fmt.Sprintf("%-5s f%d, r%d", in.Op, in.C, in.A)
	case OpCvtFI:
		return fmt.Sprintf("%-5s r%d, f%d", in.Op, in.C, in.A)
	case OpLdi:
		return fmt.Sprintf("%-5s r%d, %d", in.Op, in.C, in.Imm)
	case OpLdf:
		return fmt.Sprintf("%-5s f%d, %g", in.Op, in.C, in.FImm)
	case OpLd:
		return fmt.Sprintf("%-5s r%d, %d(r%d)", in.Op, in.C, in.Imm, in.A)
	case OpSt:
		return fmt.Sprintf("%-5s %d(r%d), r%d", in.Op, in.Imm, in.A, in.B)
	case OpFLd:
		return fmt.Sprintf("%-5s f%d, %d(r%d)", in.Op, in.C, in.Imm, in.A)
	case OpFSt:
		return fmt.Sprintf("%-5s %d(r%d), f%d", in.Op, in.Imm, in.A, in.B)
	case OpBr:
		return fmt.Sprintf("%-5s r%d, @%d  ; site %d", in.Op, in.A, in.Target, in.Site)
	case OpJmp:
		return fmt.Sprintf("%-5s @%d", in.Op, in.Target)
	case OpCall:
		return fmt.Sprintf("%-5s fn%d (args from r%d, result r%d)", in.Op, in.Target, in.A, in.C)
	case OpICall:
		return fmt.Sprintf("%-5s [r%d] (args from r%d, result r%d)", in.Op, in.A, in.B, in.C)
	case OpRet:
		return fmt.Sprintf("%-5s r%d", in.Op, in.A)
	case OpGetc:
		return fmt.Sprintf("%-5s r%d", in.Op, in.C)
	case OpPutc:
		return fmt.Sprintf("%-5s r%d", in.Op, in.A)
	case OpSel:
		return fmt.Sprintf("%-5s r%d, r%d ? r%d : r%d", in.Op, in.C, in.A, in.B, in.Imm)
	case OpFSel:
		return fmt.Sprintf("%-5s f%d, r%d ? f%d : f%d", in.Op, in.C, in.A, in.B, in.Imm)
	}
	return fmt.Sprintf("%s a=%d b=%d c=%d imm=%d tgt=%d", in.Op, in.A, in.B, in.C, in.Imm, in.Target)
}

// Disasm renders a whole program as an assembler listing.
func Disasm(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s: %d funcs, %d sites, imem %d, fmem %d\n",
		p.Source, len(p.Funcs), len(p.Sites), p.IntMem, p.FloatMem)
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		fmt.Fprintf(&b, "\nfn%d %s: params=%d iregs=%d fregs=%d\n", fi, f.Name, f.NumParams, f.NumIRegs, f.NumFRegs)
		for pc, in := range f.Code {
			fmt.Fprintf(&b, "  %4d: %s\n", pc, DisasmInstr(in))
		}
	}
	return b.String()
}

package isa

// Decode metadata: a per-operation description of how the interpreter
// consumes each operand field. The VM's pre-decoder uses it to verify
// and densify programs once at load time instead of re-deriving
// operand roles per instruction in the hot loop, and the differential
// fuzzer uses it to generate well-formed operands for every operation.

// RegClass says which register file (if any) an operand field indexes.
type RegClass uint8

// Operand register classes.
const (
	RegNone  RegClass = iota // field unused by the interpreter
	RegInt                   // indexes the integer register window
	RegFloat                 // indexes the float register window
)

// OpMeta describes one operation's operand usage.
type OpMeta struct {
	A, B, C RegClass // register classes of the A/B/C fields (RegNone when unused)
	SelImm  bool     // Imm holds a register index (OpSel/OpFSel else-value)
	ImmReg  RegClass // register class of the Imm-held index when SelImm
	HasImm  bool     // Imm holds an integer immediate / address offset
	HasFImm bool     // FImm holds a float immediate
	Target  bool     // Target holds a branch pc or callee function index
	Site    bool     // Site identifies a static conditional branch
}

var opMeta = [opCount]OpMeta{
	OpNop: {},

	OpAdd: {A: RegInt, B: RegInt, C: RegInt},
	OpSub: {A: RegInt, B: RegInt, C: RegInt},
	OpMul: {A: RegInt, B: RegInt, C: RegInt},
	OpDiv: {A: RegInt, B: RegInt, C: RegInt},
	OpRem: {A: RegInt, B: RegInt, C: RegInt},
	OpAnd: {A: RegInt, B: RegInt, C: RegInt},
	OpOr:  {A: RegInt, B: RegInt, C: RegInt},
	OpXor: {A: RegInt, B: RegInt, C: RegInt},
	OpShl: {A: RegInt, B: RegInt, C: RegInt},
	OpShr: {A: RegInt, B: RegInt, C: RegInt},
	OpNeg: {A: RegInt, C: RegInt},
	OpNot: {A: RegInt, C: RegInt},

	OpSlt: {A: RegInt, B: RegInt, C: RegInt},
	OpSle: {A: RegInt, B: RegInt, C: RegInt},
	OpSeq: {A: RegInt, B: RegInt, C: RegInt},
	OpSne: {A: RegInt, B: RegInt, C: RegInt},

	OpFAdd: {A: RegFloat, B: RegFloat, C: RegFloat},
	OpFSub: {A: RegFloat, B: RegFloat, C: RegFloat},
	OpFMul: {A: RegFloat, B: RegFloat, C: RegFloat},
	OpFDiv: {A: RegFloat, B: RegFloat, C: RegFloat},
	OpFNeg: {A: RegFloat, C: RegFloat},

	OpFSlt: {A: RegFloat, B: RegFloat, C: RegInt},
	OpFSle: {A: RegFloat, B: RegFloat, C: RegInt},
	OpFSeq: {A: RegFloat, B: RegFloat, C: RegInt},
	OpFSne: {A: RegFloat, B: RegFloat, C: RegInt},

	OpCvtIF: {A: RegInt, C: RegFloat},
	OpCvtFI: {A: RegFloat, C: RegInt},

	OpLdi:  {C: RegInt, HasImm: true},
	OpLdf:  {C: RegFloat, HasFImm: true},
	OpMov:  {A: RegInt, C: RegInt},
	OpFMov: {A: RegFloat, C: RegFloat},

	OpLd:  {A: RegInt, C: RegInt, HasImm: true},
	OpSt:  {A: RegInt, B: RegInt, HasImm: true},
	OpFLd: {A: RegInt, C: RegFloat, HasImm: true},
	OpFSt: {A: RegInt, B: RegFloat, HasImm: true},

	OpBr:    {A: RegInt, Target: true, Site: true},
	OpJmp:   {Target: true},
	OpCall:  {Target: true}, // A/B name arg windows, C the result register
	OpICall: {A: RegInt},    // B names the int arg window, C the result register
	OpRet:   {},             // A's class depends on the function's kind

	OpGetc: {C: RegInt},
	OpPutc: {A: RegInt},
	OpHalt: {A: RegInt},

	OpSqrt:  {A: RegFloat, C: RegFloat},
	OpSin:   {A: RegFloat, C: RegFloat},
	OpCos:   {A: RegFloat, C: RegFloat},
	OpExp:   {A: RegFloat, C: RegFloat},
	OpLog:   {A: RegFloat, C: RegFloat},
	OpFAbs:  {A: RegFloat, C: RegFloat},
	OpFloor: {A: RegFloat, C: RegFloat},
	OpPow:   {A: RegFloat, B: RegFloat, C: RegFloat},

	OpSel:  {A: RegInt, B: RegInt, C: RegInt, SelImm: true, ImmReg: RegInt},
	OpFSel: {A: RegInt, B: RegFloat, C: RegFloat, SelImm: true, ImmReg: RegFloat},
}

// Meta returns the operand metadata for op. Invalid operations return
// the zero OpMeta (no operands).
func (op Op) Meta() OpMeta {
	if op < opCount {
		return opMeta[op]
	}
	return OpMeta{}
}

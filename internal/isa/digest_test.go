package isa

import (
	"math"
	"testing"
)

func digestProg() *Program {
	return &Program{
		Source:    "d",
		IntMem:    8,
		FloatMem:  2,
		IntData:   []int64{1, -2},
		FloatData: []float64{3.5},
		Sites:     []BranchSite{{ID: 0, Func: "main"}},
		Funcs: []Func{{
			Name: "main", Kind: FuncInt, NumIRegs: 4, NumFRegs: 2,
			Code: []Instr{
				{Op: OpLdi, C: 0, Imm: 7, Site: -1},
				{Op: OpBr, A: 0, Target: 2, Site: 0},
				{Op: OpRet, A: 0, Site: -1},
			},
		}},
	}
}

// TestProgramDigestStable: the digest is deterministic — it keys the
// compiled-body registry, so instability would silently unbind every
// generated body.
func TestProgramDigestStable(t *testing.T) {
	a, b := ProgramDigest(digestProg()), ProgramDigest(digestProg())
	if a != b {
		t.Fatalf("digest not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("digest %q is not 64 hex chars", a)
	}
}

// TestProgramDigestSensitive: any semantic field change must change
// the digest, otherwise a stale generated body could bind to a
// program it was not generated from.
func TestProgramDigestSensitive(t *testing.T) {
	base := ProgramDigest(digestProg())
	muts := []struct {
		name string
		mut  func(p *Program)
	}{
		{"source", func(p *Program) { p.Source = "e" }},
		{"intmem", func(p *Program) { p.IntMem = 9 }},
		{"intdata", func(p *Program) { p.IntData[1] = -3 }},
		{"floatdata-bits", func(p *Program) {
			p.FloatData[0] = math.Float64frombits(math.Float64bits(p.FloatData[0]) ^ 1)
		}},
		{"site-count", func(p *Program) { p.Sites = append(p.Sites, BranchSite{ID: 1, Func: "main"}) }},
		{"func-name", func(p *Program) { p.Funcs[0].Name = "m" }},
		{"func-kind", func(p *Program) { p.Funcs[0].Kind = FuncVoid }},
		{"nregs", func(p *Program) { p.Funcs[0].NumIRegs = 5 }},
		{"imm", func(p *Program) { p.Funcs[0].Code[0].Imm = 8 }},
		{"op", func(p *Program) { p.Funcs[0].Code[0].Op = OpMov }},
		{"target", func(p *Program) { p.Funcs[0].Code[1].Target = 0 }},
		{"fimm-bits", func(p *Program) { p.Funcs[0].Code[0].FImm = math.Float64frombits(1) }},
		{"fparams", func(p *Program) { p.Funcs[0].FParams = []bool{true} }},
		{"extra-func", func(p *Program) {
			p.Funcs = append(p.Funcs, Func{Name: "g", Code: []Instr{{Op: OpRet, Site: -1}}})
		}},
	}
	for _, m := range muts {
		p := digestProg()
		m.mut(p)
		if d := ProgramDigest(p); d == base {
			t.Errorf("%s: mutation did not change the digest", m.name)
		}
	}
}

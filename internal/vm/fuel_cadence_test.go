package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/workloads"
)

func compileWorkload(t *testing.T, name string) (*isa.Program, []byte) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, w.Datasets[0].Gen()
}

// TestFuelExactAtCount: block-batched fuel accounting must not
// overshoot — ErrFuel fires with Instrs equal to the configured fuel,
// exactly as the unbatched reference does, including at and around
// the 4096-instruction poll boundary.
func TestFuelExactAtCount(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	im := Load(prog)
	for _, fuel := range []uint64{1, 17, 4095, 4096, 4097, 100000} {
		res, err := im.Run(input, &Config{Fuel: fuel})
		if !errors.Is(err, ErrFuel) {
			t.Fatalf("fuel=%d: err = %v, want ErrFuel", fuel, err)
		}
		if res.Instrs != fuel {
			t.Errorf("fuel=%d: stopped after %d instructions", fuel, res.Instrs)
		}
		if want := fmt.Sprintf("after %d instructions", fuel); !strings.Contains(err.Error(), want) {
			t.Errorf("fuel=%d: error %q does not report the exact count", fuel, err)
		}
	}
}

// TestSampleCadenceBounded: the Sample hook must keep firing at the
// reference interpreter's cadence — every 4096 retired instructions —
// even though the pre-decoded loop only reconciles its batched
// instruction count at block boundaries.
func TestSampleCadenceBounded(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	var stamps []uint64
	_, err := Load(prog).Run(input, &Config{
		Fuel: 1 << 20,
		Sample: func(stack []int32, instrs uint64) {
			stamps = append(stamps, instrs)
		},
	})
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
	if len(stamps) < 100 {
		t.Fatalf("only %d samples over %d instructions", len(stamps), 1<<20)
	}
	for i, at := range stamps {
		if at%4096 != 0 {
			t.Fatalf("sample %d at instruction %d, not a poll-cadence multiple", i, at)
		}
		if i > 0 && at-stamps[i-1] > 4096 {
			t.Fatalf("samples %d..%d gap = %d instructions (> 4096)", i-1, i, at-stamps[i-1])
		}
	}
}

// TestCancelWithinPollWindow: closing Done from inside the Sample hook
// pins the observation point, so cancellation must land within one
// 4096-instruction poll window of the close — and at the exact same
// instruction count the reference interpreter reports.
func TestCancelWithinPollWindow(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	run := func(runner func(*Config) (*Result, error)) (closeAt uint64, res *Result, err error) {
		done := make(chan struct{})
		closed := false
		res, err = runner(&Config{
			Done: done,
			Sample: func(stack []int32, instrs uint64) {
				if !closed && instrs >= 100000 {
					closed = true
					closeAt = instrs
					close(done)
				}
			},
		})
		return closeAt, res, err
	}
	im := Load(prog)
	fAt, fRes, fErr := run(func(c *Config) (*Result, error) { return im.Run(input, c) })
	rAt, rRes, rErr := run(func(c *Config) (*Result, error) { return runRef(prog, input, c) })
	for _, tc := range []struct {
		name string
		at   uint64
		res  *Result
		err  error
	}{{"fast", fAt, fRes, fErr}, {"ref", rAt, rRes, rErr}} {
		if !errors.Is(tc.err, ErrCancelled) {
			t.Fatalf("%s: err = %v, want ErrCancelled", tc.name, tc.err)
		}
		if tc.res.Instrs < tc.at || tc.res.Instrs-tc.at > 4096 {
			t.Errorf("%s: closed at %d, cancelled at %d (window > 4096)",
				tc.name, tc.at, tc.res.Instrs)
		}
	}
	if fAt != rAt || fRes.Instrs != rRes.Instrs || fErr.Error() != rErr.Error() {
		t.Errorf("cancellation diverged: fast closed %d stopped %d (%v); ref closed %d stopped %d (%v)",
			fAt, fRes.Instrs, fErr, rAt, rRes.Instrs, rErr)
	}
}

// TestCancelInsideSampleSameStamp: a Done channel that is already
// closed when the Sample hook fires is observed at the very next poll
// point, not at the end of the current superinstruction batch.
func TestCancelInsideSampleSameStamp(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	done := make(chan struct{})
	close(done)
	res, err := Load(prog).Run(input, &Config{Done: done})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Instrs != 0 {
		t.Errorf("pre-closed Done stopped after %d instructions, want 0", res.Instrs)
	}
	if !strings.Contains(err.Error(), "after 0 instructions") {
		t.Errorf("error %q does not report immediate cancellation", err)
	}
}

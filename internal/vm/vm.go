// Package vm interprets isa.Program images and produces the exact
// dynamic measurements the paper's tools collected: total RISC-level
// instruction counts (MFPixie's job), per-static-branch taken/total
// counts (IFPROBBER's job), and counts of every other kind of control
// transfer, which the break-in-control metrics classify as avoidable
// or unavoidable.
//
// The interpreter is deterministic and single-threaded: the same
// program and input always produce the same counts.
package vm

import (
	"errors"
	"fmt"
	"sync"

	"branchprof/internal/isa"
)

// TransferKind classifies non-branch control transfers for tracers.
type TransferKind uint8

// Transfer kinds reported to a Tracer.
const (
	TransferJump TransferKind = iota
	TransferCall
	TransferReturn
	TransferIndirectCall
	TransferIndirectReturn
)

// String names the transfer kind.
func (k TransferKind) String() string {
	switch k {
	case TransferJump:
		return "jump"
	case TransferCall:
		return "call"
	case TransferReturn:
		return "return"
	case TransferIndirectCall:
		return "indirect-call"
	case TransferIndirectReturn:
		return "indirect-return"
	}
	return "transfer(?)"
}

// Tracer observes control transfers as they execute. instrs is the
// number of instructions executed so far including the transferring
// one, so tracers can measure distances between events. Tracers are
// only consulted at control transfers, never per instruction, so the
// interpreter stays fast.
type Tracer interface {
	// Branch is called at every conditional branch execution.
	Branch(site int32, taken bool, instrs uint64)
	// Transfer is called at every jump, call and return.
	Transfer(kind TransferKind, instrs uint64)
}

// SemanticsVersion identifies the observable semantics of the
// interpreter: the exact instruction counts, branch outcomes, output
// bytes and trap behaviour a run produces. Persisted measurements
// (internal/engine's content-addressed cache) embed it in their keys,
// so bumping it invalidates every cached result. Bump it whenever a
// change to the interpreter alters any counter or observable result.
const SemanticsVersion = 1

// Config controls resource limits and optional measurements.
type Config struct {
	// Fuel is the maximum number of instructions to execute; 0 means
	// the default of 2^33 (comfortably above every workload here).
	Fuel uint64
	// MaxDepth limits call nesting; 0 means 100000.
	MaxDepth int
	// MaxOutput limits the output buffer; 0 means 1<<26 bytes.
	MaxOutput int
	// PerPC, when true, records per-instruction execution counts
	// (MFPixie's detailed mode). Costs one slice per function.
	PerPC bool
	// Trace, when non-nil, observes every control transfer (used by
	// the dynamic-predictor and run-length extensions).
	Trace Tracer
	// Done, when non-nil, cancels the run cooperatively: the
	// interpreter polls it every few thousand instructions and returns
	// an error wrapping ErrCancelled once it is closed. Like Trace it
	// is excluded from Fingerprint — cancellation never changes what a
	// completed run would have measured, and a cancelled run is never
	// cached.
	Done <-chan struct{}
	// Sample, when non-nil, receives the current call stack (function
	// indices, outermost first) at the same few-thousand-instruction
	// cadence as the Done poll — the VM-level sampling profiler behind
	// the observability layer's flamegraphs. The stack slice is reused
	// between calls and must not be retained. Like Trace and Done it is
	// excluded from Fingerprint: sampling observes a run without
	// changing any measurement. Note that cache-served measurements
	// never execute, so they contribute no samples.
	Sample func(stack []int32, instrs uint64)
}

func (c *Config) fill() {
	if c.Fuel == 0 {
		c.Fuel = 1 << 33
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 100000
	}
	if c.MaxOutput == 0 {
		c.MaxOutput = 1 << 26
	}
}

// Fingerprint returns a canonical string covering every configuration
// field that can affect a run's measurements, with defaults resolved
// first so a nil config and an explicitly defaulted one fingerprint
// identically. The tracer and the done channel are deliberately
// excluded: tracers observe a run without changing its counters (and
// traced runs are never served from a cache), and cancellation either
// aborts a run — which is then never cached — or changes nothing.
// A nil receiver is valid and means the default config.
func (c *Config) Fingerprint() string {
	var d Config
	if c != nil {
		d = *c
	}
	d.fill()
	return fmt.Sprintf("fuel=%d,depth=%d,out=%d,perpc=%t", d.Fuel, d.MaxDepth, d.MaxOutput, d.PerPC)
}

// Result holds everything measured during a run.
type Result struct {
	// Instrs is the total number of RISC-level instructions executed,
	// including branches, calls and returns.
	Instrs uint64
	// ExitCode is main's return value.
	ExitCode int64
	// Output is everything written with putc.
	Output []byte

	// SiteTaken[i] and SiteTotal[i] count, for static branch site i,
	// how often the branch was taken and how often it executed.
	SiteTaken []uint64
	SiteTotal []uint64

	// Control-transfer event counts other than conditional branches.
	Jumps           uint64 // unconditional jumps executed
	DirectCalls     uint64
	DirectReturns   uint64
	IndirectCalls   uint64
	IndirectReturns uint64

	// MaxDepth is the deepest call nesting reached.
	MaxDepth int

	// PerPC[f][pc] is the execution count of instruction pc of
	// function f; nil unless Config.PerPC was set.
	PerPC [][]uint64
}

// CondBranches returns the total number of conditional branches executed.
func (r *Result) CondBranches() uint64 {
	var n uint64
	for _, t := range r.SiteTotal {
		n += t
	}
	return n
}

// TakenBranches returns the total number of taken conditional branches.
func (r *Result) TakenBranches() uint64 {
	var n uint64
	for _, t := range r.SiteTaken {
		n += t
	}
	return n
}

// ErrFuel is returned (wrapped) when the instruction budget runs out.
var ErrFuel = errors.New("vm: fuel exhausted")

// ErrCancelled is returned (wrapped) when Config.Done closes mid-run.
var ErrCancelled = errors.New("vm: run cancelled")

// RuntimeError describes a trap during execution: where it happened
// (both the program-wide PC and the function-relative one) and how far
// the run had progressed.
type RuntimeError struct {
	Func     string // trapping function's name
	PC       int    // program counter within Func
	GlobalPC int    // program-wide PC (functions laid out in index order)
	Instrs   uint64 // instructions executed when the trap fired
	Msg      string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: trap at pc=%d (%s+%d) after %d instrs: %s",
		e.GlobalPC, e.Func, e.PC, e.Instrs, e.Msg)
}

// frame is one call record. All fields are 32-bit so a frame fits in
// 32 bytes: pushes and pops are on the interpreter's hottest path,
// and function counts, code lengths (verified < 2^31) and register
// slab sizes all fit comfortably.
type frame struct {
	fn     int32 // function index
	retPC  int32 // caller pc to resume at
	iBase  int32 // caller's int register window base
	fBase  int32 // caller's float register window base
	resReg int32 // caller register receiving the result
	// retDpc and retN pre-resolve the return edge for the headerless
	// stream: the caller's continuation dinstr and the instruction
	// count of the block it starts (credited when the edge is taken).
	retDpc   int32
	retN     int32
	indirect bool // whether this frame was entered via OpICall
}

// imageCache memoizes pre-decoded Images for package-level Run
// callers, keyed by program identity. Programs are immutable once
// validated (the engine relies on this too), so an address match
// means the cached decode is still correct — and unlike a
// stringified-pointer key, the map entry keeps the program alive, so
// the key can never be a recycled address of a different program.
var (
	imageMu    sync.Mutex
	imageCache = map[*isa.Program]*Image{}
)

// imageCacheMax bounds how many programs Run keeps decoded. Churning
// through more than this many live programs is the engine's use case,
// and it memoizes Images itself.
const imageCacheMax = 64

func cachedImage(p *isa.Program) *Image {
	imageMu.Lock()
	defer imageMu.Unlock()
	if im, ok := imageCache[p]; ok {
		return im
	}
	if len(imageCache) >= imageCacheMax {
		clear(imageCache)
	}
	im := Load(p)
	imageCache[p] = im
	return im
}

// Run executes the program on the given input and returns the
// measurements. A nil cfg uses defaults. The pre-decoded form of p is
// memoized (programs are immutable once validated), so repeated Run
// calls on the same program pay the decode and verification cost
// once, exactly as if the caller had used Load and Image.Run.
func Run(p *isa.Program, input []byte, cfg *Config) (*Result, error) {
	return cachedImage(p).Run(input, cfg)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Package vm interprets isa.Program images and produces the exact
// dynamic measurements the paper's tools collected: total RISC-level
// instruction counts (MFPixie's job), per-static-branch taken/total
// counts (IFPROBBER's job), and counts of every other kind of control
// transfer, which the break-in-control metrics classify as avoidable
// or unavoidable.
//
// The interpreter is deterministic and single-threaded: the same
// program and input always produce the same counts.
package vm

import (
	"errors"
	"fmt"
	"math"

	"branchprof/internal/isa"
)

// TransferKind classifies non-branch control transfers for tracers.
type TransferKind uint8

// Transfer kinds reported to a Tracer.
const (
	TransferJump TransferKind = iota
	TransferCall
	TransferReturn
	TransferIndirectCall
	TransferIndirectReturn
)

// String names the transfer kind.
func (k TransferKind) String() string {
	switch k {
	case TransferJump:
		return "jump"
	case TransferCall:
		return "call"
	case TransferReturn:
		return "return"
	case TransferIndirectCall:
		return "indirect-call"
	case TransferIndirectReturn:
		return "indirect-return"
	}
	return "transfer(?)"
}

// Tracer observes control transfers as they execute. instrs is the
// number of instructions executed so far including the transferring
// one, so tracers can measure distances between events. Tracers are
// only consulted at control transfers, never per instruction, so the
// interpreter stays fast.
type Tracer interface {
	// Branch is called at every conditional branch execution.
	Branch(site int32, taken bool, instrs uint64)
	// Transfer is called at every jump, call and return.
	Transfer(kind TransferKind, instrs uint64)
}

// SemanticsVersion identifies the observable semantics of the
// interpreter: the exact instruction counts, branch outcomes, output
// bytes and trap behaviour a run produces. Persisted measurements
// (internal/engine's content-addressed cache) embed it in their keys,
// so bumping it invalidates every cached result. Bump it whenever a
// change to the interpreter alters any counter or observable result.
const SemanticsVersion = 1

// Config controls resource limits and optional measurements.
type Config struct {
	// Fuel is the maximum number of instructions to execute; 0 means
	// the default of 2^33 (comfortably above every workload here).
	Fuel uint64
	// MaxDepth limits call nesting; 0 means 100000.
	MaxDepth int
	// MaxOutput limits the output buffer; 0 means 1<<26 bytes.
	MaxOutput int
	// PerPC, when true, records per-instruction execution counts
	// (MFPixie's detailed mode). Costs one slice per function.
	PerPC bool
	// Trace, when non-nil, observes every control transfer (used by
	// the dynamic-predictor and run-length extensions).
	Trace Tracer
	// Done, when non-nil, cancels the run cooperatively: the
	// interpreter polls it every few thousand instructions and returns
	// an error wrapping ErrCancelled once it is closed. Like Trace it
	// is excluded from Fingerprint — cancellation never changes what a
	// completed run would have measured, and a cancelled run is never
	// cached.
	Done <-chan struct{}
	// Sample, when non-nil, receives the current call stack (function
	// indices, outermost first) at the same few-thousand-instruction
	// cadence as the Done poll — the VM-level sampling profiler behind
	// the observability layer's flamegraphs. The stack slice is reused
	// between calls and must not be retained. Like Trace and Done it is
	// excluded from Fingerprint: sampling observes a run without
	// changing any measurement. Note that cache-served measurements
	// never execute, so they contribute no samples.
	Sample func(stack []int32, instrs uint64)
}

func (c *Config) fill() {
	if c.Fuel == 0 {
		c.Fuel = 1 << 33
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 100000
	}
	if c.MaxOutput == 0 {
		c.MaxOutput = 1 << 26
	}
}

// Fingerprint returns a canonical string covering every configuration
// field that can affect a run's measurements, with defaults resolved
// first so a nil config and an explicitly defaulted one fingerprint
// identically. The tracer and the done channel are deliberately
// excluded: tracers observe a run without changing its counters (and
// traced runs are never served from a cache), and cancellation either
// aborts a run — which is then never cached — or changes nothing.
// A nil receiver is valid and means the default config.
func (c *Config) Fingerprint() string {
	var d Config
	if c != nil {
		d = *c
	}
	d.fill()
	return fmt.Sprintf("fuel=%d,depth=%d,out=%d,perpc=%t", d.Fuel, d.MaxDepth, d.MaxOutput, d.PerPC)
}

// Result holds everything measured during a run.
type Result struct {
	// Instrs is the total number of RISC-level instructions executed,
	// including branches, calls and returns.
	Instrs uint64
	// ExitCode is main's return value.
	ExitCode int64
	// Output is everything written with putc.
	Output []byte

	// SiteTaken[i] and SiteTotal[i] count, for static branch site i,
	// how often the branch was taken and how often it executed.
	SiteTaken []uint64
	SiteTotal []uint64

	// Control-transfer event counts other than conditional branches.
	Jumps           uint64 // unconditional jumps executed
	DirectCalls     uint64
	DirectReturns   uint64
	IndirectCalls   uint64
	IndirectReturns uint64

	// MaxDepth is the deepest call nesting reached.
	MaxDepth int

	// PerPC[f][pc] is the execution count of instruction pc of
	// function f; nil unless Config.PerPC was set.
	PerPC [][]uint64
}

// CondBranches returns the total number of conditional branches executed.
func (r *Result) CondBranches() uint64 {
	var n uint64
	for _, t := range r.SiteTotal {
		n += t
	}
	return n
}

// TakenBranches returns the total number of taken conditional branches.
func (r *Result) TakenBranches() uint64 {
	var n uint64
	for _, t := range r.SiteTaken {
		n += t
	}
	return n
}

// ErrFuel is returned (wrapped) when the instruction budget runs out.
var ErrFuel = errors.New("vm: fuel exhausted")

// ErrCancelled is returned (wrapped) when Config.Done closes mid-run.
var ErrCancelled = errors.New("vm: run cancelled")

// RuntimeError describes a trap during execution: where it happened
// (both the program-wide PC and the function-relative one) and how far
// the run had progressed.
type RuntimeError struct {
	Func     string // trapping function's name
	PC       int    // program counter within Func
	GlobalPC int    // program-wide PC (functions laid out in index order)
	Instrs   uint64 // instructions executed when the trap fired
	Msg      string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: trap at pc=%d (%s+%d) after %d instrs: %s",
		e.GlobalPC, e.Func, e.PC, e.Instrs, e.Msg)
}

type frame struct {
	fn       int   // function index
	retPC    int   // caller pc to resume at
	iBase    int   // caller's int register window base
	fBase    int   // caller's float register window base
	resReg   int32 // caller register receiving the result
	indirect bool  // whether this frame was entered via OpICall
}

// Run executes the program on the given input and returns the
// measurements. A nil cfg uses defaults.
func Run(p *isa.Program, input []byte, cfg *Config) (*Result, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.fill()

	res := &Result{
		SiteTaken: make([]uint64, len(p.Sites)),
		SiteTotal: make([]uint64, len(p.Sites)),
	}
	if c.PerPC {
		res.PerPC = make([][]uint64, len(p.Funcs))
		for i := range p.Funcs {
			res.PerPC[i] = make([]uint64, len(p.Funcs[i].Code))
		}
	}

	imem := make([]int64, p.IntMem)
	copy(imem, p.IntData)
	fmem := make([]float64, p.FloatMem)
	copy(fmem, p.FloatData)

	// Register stacks. Frames are windows into these slabs.
	iregs := make([]int64, 0, 4096)
	fregs := make([]float64, 0, 4096)
	frames := make([]frame, 0, 256)

	push := func(fi int, retPC int, iBase, fBase int, resReg int32, indirect bool) {
		f := &p.Funcs[fi]
		frames = append(frames, frame{fn: fi, retPC: retPC, iBase: iBase, fBase: fBase, resReg: resReg, indirect: indirect})
		need := iBase + f.NumIRegs
		_ = need
		for len(iregs) < iBase+f.NumIRegs {
			iregs = append(iregs, 0)
		}
		for i := iBase; i < iBase+f.NumIRegs; i++ {
			iregs[i] = 0
		}
		for len(fregs) < fBase+f.NumFRegs {
			fregs = append(fregs, 0)
		}
		for i := fBase; i < fBase+f.NumFRegs; i++ {
			fregs[i] = 0
		}
	}

	// Enter main with no arguments.
	push(p.Main, -1, 0, 0, -1, false)
	cur := p.Main
	code := p.Funcs[cur].Code
	ib, fb := 0, 0
	pc := 0
	inPos := 0

	trap := func(msg string) error {
		// The global PC places the trap in a flat layout of the image:
		// every earlier function's code, then pc within the current one.
		global := pc
		for i := 0; i < cur; i++ {
			global += len(p.Funcs[i].Code)
		}
		return &RuntimeError{Func: p.Funcs[cur].Name, PC: pc, GlobalPC: global,
			Instrs: res.Instrs, Msg: msg}
	}

	fuel := c.Fuel
	// One flag gates the whole periodic-poll block, so runs with
	// neither cancellation nor sampling pay a single comparison.
	poll := c.Done != nil || c.Sample != nil
	var stackBuf []int32
	if c.Sample != nil {
		stackBuf = make([]int32, 0, 64)
	}
	for {
		if res.Instrs >= fuel {
			return res, fmt.Errorf("%w after %d instructions in %s", ErrFuel, res.Instrs, p.Source)
		}
		if poll && res.Instrs&4095 == 0 {
			if c.Done != nil {
				select {
				case <-c.Done:
					return res, fmt.Errorf("%w after %d instructions in %s", ErrCancelled, res.Instrs, p.Source)
				default:
				}
			}
			if c.Sample != nil {
				stackBuf = stackBuf[:0]
				for i := range frames {
					stackBuf = append(stackBuf, int32(frames[i].fn))
				}
				c.Sample(stackBuf, res.Instrs)
			}
		}
		if pc < 0 || pc >= len(code) {
			return res, trap("pc out of range")
		}
		in := &code[pc]
		res.Instrs++
		if c.PerPC {
			res.PerPC[cur][pc]++
		}
		switch in.Op {
		case isa.OpNop:
		case isa.OpAdd:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] + iregs[ib+int(in.B)]
		case isa.OpSub:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] - iregs[ib+int(in.B)]
		case isa.OpMul:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] * iregs[ib+int(in.B)]
		case isa.OpDiv:
			d := iregs[ib+int(in.B)]
			if d == 0 {
				return res, trap("integer divide by zero")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] / d
		case isa.OpRem:
			d := iregs[ib+int(in.B)]
			if d == 0 {
				return res, trap("integer remainder by zero")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] % d
		case isa.OpAnd:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] & iregs[ib+int(in.B)]
		case isa.OpOr:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] | iregs[ib+int(in.B)]
		case isa.OpXor:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] ^ iregs[ib+int(in.B)]
		case isa.OpShl:
			sh := iregs[ib+int(in.B)]
			if sh < 0 || sh > 63 {
				return res, trap("shift amount out of range")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] << uint(sh)
		case isa.OpShr:
			sh := iregs[ib+int(in.B)]
			if sh < 0 || sh > 63 {
				return res, trap("shift amount out of range")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] >> uint(sh)
		case isa.OpNeg:
			iregs[ib+int(in.C)] = -iregs[ib+int(in.A)]
		case isa.OpNot:
			iregs[ib+int(in.C)] = ^iregs[ib+int(in.A)]
		case isa.OpSlt:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] < iregs[ib+int(in.B)])
		case isa.OpSle:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] <= iregs[ib+int(in.B)])
		case isa.OpSeq:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] == iregs[ib+int(in.B)])
		case isa.OpSne:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] != iregs[ib+int(in.B)])

		case isa.OpFAdd:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] + fregs[fb+int(in.B)]
		case isa.OpFSub:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] - fregs[fb+int(in.B)]
		case isa.OpFMul:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] * fregs[fb+int(in.B)]
		case isa.OpFDiv:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] / fregs[fb+int(in.B)]
		case isa.OpFNeg:
			fregs[fb+int(in.C)] = -fregs[fb+int(in.A)]
		case isa.OpFSlt:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] < fregs[fb+int(in.B)])
		case isa.OpFSle:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] <= fregs[fb+int(in.B)])
		case isa.OpFSeq:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] == fregs[fb+int(in.B)])
		case isa.OpFSne:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] != fregs[fb+int(in.B)])

		case isa.OpCvtIF:
			fregs[fb+int(in.C)] = float64(iregs[ib+int(in.A)])
		case isa.OpCvtFI:
			f := fregs[fb+int(in.A)]
			if math.IsNaN(f) || f > math.MaxInt64 || f < math.MinInt64 {
				return res, trap("float to int conversion out of range")
			}
			iregs[ib+int(in.C)] = int64(f)

		case isa.OpLdi:
			iregs[ib+int(in.C)] = in.Imm
		case isa.OpLdf:
			fregs[fb+int(in.C)] = in.FImm
		case isa.OpMov:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)]
		case isa.OpFMov:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)]

		case isa.OpLd:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(imem)) {
				return res, trap(fmt.Sprintf("int load address %d out of range [0,%d)", a, len(imem)))
			}
			iregs[ib+int(in.C)] = imem[a]
		case isa.OpSt:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(imem)) {
				return res, trap(fmt.Sprintf("int store address %d out of range [0,%d)", a, len(imem)))
			}
			imem[a] = iregs[ib+int(in.B)]
		case isa.OpFLd:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(fmem)) {
				return res, trap(fmt.Sprintf("float load address %d out of range [0,%d)", a, len(fmem)))
			}
			fregs[fb+int(in.C)] = fmem[a]
		case isa.OpFSt:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(fmem)) {
				return res, trap(fmt.Sprintf("float store address %d out of range [0,%d)", a, len(fmem)))
			}
			fmem[a] = fregs[fb+int(in.B)]

		case isa.OpBr:
			res.SiteTotal[in.Site]++
			taken := iregs[ib+int(in.A)] != 0
			if taken {
				res.SiteTaken[in.Site]++
			}
			if c.Trace != nil {
				c.Trace.Branch(in.Site, taken, res.Instrs)
			}
			if taken {
				pc = int(in.Target)
				continue
			}
		case isa.OpJmp:
			res.Jumps++
			if c.Trace != nil {
				c.Trace.Transfer(TransferJump, res.Instrs)
			}
			pc = int(in.Target)
			continue
		case isa.OpCall, isa.OpICall:
			var fi int
			indirect := in.Op == isa.OpICall
			if indirect {
				fi = int(iregs[ib+int(in.A)])
				if fi < 0 || fi >= len(p.Funcs) {
					return res, trap(fmt.Sprintf("indirect call to bad function index %d", fi))
				}
				res.IndirectCalls++
				if c.Trace != nil {
					c.Trace.Transfer(TransferIndirectCall, res.Instrs)
				}
			} else {
				fi = int(in.Target)
				res.DirectCalls++
				if c.Trace != nil {
					c.Trace.Transfer(TransferCall, res.Instrs)
				}
			}
			if len(frames) >= c.MaxDepth {
				return res, trap("call stack overflow")
			}
			callee := &p.Funcs[fi]
			niBase := len(iregs)
			nfBase := len(fregs)
			// Stage arguments: they sit contiguously in the caller's
			// windows starting at in.A (ints; in.B for icall) and at
			// in.B (floats; none for icall).
			var iArg, fArg int
			if indirect {
				iArg = int(in.B)
			} else {
				iArg = int(in.A)
				fArg = int(in.B)
			}
			push(fi, pc+1, niBase, nfBase, in.C, indirect)
			ni, nf := 0, 0
			for pi := 0; pi < callee.NumParams; pi++ {
				if pi < len(callee.FParams) && callee.FParams[pi] {
					if indirect {
						return res, trap("indirect call to function with float parameters")
					}
					fregs[nfBase+nf] = fregs[fb+fArg]
					fArg++
					nf++
				} else {
					iregs[niBase+ni] = iregs[ib+iArg]
					iArg++
					ni++
				}
			}
			if d := len(frames); d > res.MaxDepth {
				res.MaxDepth = d
			}
			cur = fi
			code = callee.Code
			ib, fb = niBase, nfBase
			pc = 0
			continue
		case isa.OpRet:
			fr := frames[len(frames)-1]
			if fr.indirect {
				res.IndirectReturns++
				if c.Trace != nil {
					c.Trace.Transfer(TransferIndirectReturn, res.Instrs)
				}
			} else if fr.retPC >= 0 {
				res.DirectReturns++
				if c.Trace != nil {
					c.Trace.Transfer(TransferReturn, res.Instrs)
				}
			}
			f := &p.Funcs[cur]
			var iv int64
			var fv float64
			switch f.Kind {
			case isa.FuncInt:
				iv = iregs[ib+int(in.A)]
			case isa.FuncFloat:
				fv = fregs[fb+int(in.A)]
			}
			// Pop the frame.
			iregs = iregs[:ib]
			fregs = fregs[:fb]
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				res.ExitCode = iv
				return res, nil
			}
			caller := frames[len(frames)-1]
			cur = caller.fn
			code = p.Funcs[cur].Code
			ib, fb = caller.iBase, caller.fBase
			pc = fr.retPC
			if fr.resReg >= 0 {
				switch f.Kind {
				case isa.FuncInt:
					iregs[ib+int(fr.resReg)] = iv
				case isa.FuncFloat:
					fregs[fb+int(fr.resReg)] = fv
				}
			}
			continue

		case isa.OpGetc:
			if inPos < len(input) {
				iregs[ib+int(in.C)] = int64(input[inPos])
				inPos++
			} else {
				iregs[ib+int(in.C)] = -1
			}
		case isa.OpPutc:
			if len(res.Output) >= c.MaxOutput {
				return res, trap("output limit exceeded")
			}
			res.Output = append(res.Output, byte(iregs[ib+int(in.A)]))
		case isa.OpHalt:
			res.ExitCode = iregs[ib+int(in.A)]
			return res, nil

		case isa.OpSqrt:
			fregs[fb+int(in.C)] = math.Sqrt(fregs[fb+int(in.A)])
		case isa.OpSin:
			fregs[fb+int(in.C)] = math.Sin(fregs[fb+int(in.A)])
		case isa.OpCos:
			fregs[fb+int(in.C)] = math.Cos(fregs[fb+int(in.A)])
		case isa.OpExp:
			fregs[fb+int(in.C)] = math.Exp(fregs[fb+int(in.A)])
		case isa.OpLog:
			fregs[fb+int(in.C)] = math.Log(fregs[fb+int(in.A)])
		case isa.OpFAbs:
			fregs[fb+int(in.C)] = math.Abs(fregs[fb+int(in.A)])
		case isa.OpFloor:
			fregs[fb+int(in.C)] = math.Floor(fregs[fb+int(in.A)])
		case isa.OpPow:
			fregs[fb+int(in.C)] = math.Pow(fregs[fb+int(in.A)], fregs[fb+int(in.B)])
		case isa.OpSel:
			if iregs[ib+int(in.A)] != 0 {
				iregs[ib+int(in.C)] = iregs[ib+int(in.B)]
			} else {
				iregs[ib+int(in.C)] = iregs[ib+int(in.Imm)]
			}
		case isa.OpFSel:
			if iregs[ib+int(in.A)] != 0 {
				fregs[fb+int(in.C)] = fregs[fb+int(in.B)]
			} else {
				fregs[fb+int(in.C)] = fregs[fb+int(in.Imm)]
			}

		default:
			return res, trap(fmt.Sprintf("unimplemented op %v", in.Op))
		}
		pc++
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

package vm

import (
	"fmt"
	"sync"
	"testing"

	"branchprof/internal/isa"
)

// Image.Run reuses pooled memory buffers across runs, restoring only
// the span of addresses the previous run stored to. These tests prove
// the reuse is invisible: every run on a shared Image must match the
// reference interpreter (which always builds fresh memory), including
// runs right after a trap, a fuel cut, or a cancellation left the
// pooled buffer dirty.

// memProbeProg reads imem[1] before storing to it, then loads from an
// input-controlled address. With an out-of-range input byte the run
// traps *after* the store — leaving the buffer dirty at the worst
// moment — and with an in-range byte it completes, returning the
// pre-store value of imem[1]. A missed restore shows up as a changed
// exit code on the next run.
func memProbeProg(t *testing.T) *isa.Program {
	t.Helper()
	p := &isa.Program{
		Funcs: []isa.Func{{Name: "main", Kind: isa.FuncInt, NumIRegs: 8, NumFRegs: 4,
			Code: []isa.Instr{
				{Op: isa.OpGetc, C: 0},
				{Op: isa.OpLd, C: 3, A: 1, Imm: 1}, // r3 = imem[1]
				{Op: isa.OpLdi, C: 2, Imm: 99},
				{Op: isa.OpSt, A: 1, B: 2, Imm: 1},  // imem[1] = 99
				{Op: isa.OpFLd, C: 1, A: 1, Imm: 2}, // f1 = fmem[2]
				{Op: isa.OpLdf, C: 2, FImm: 2.5},
				{Op: isa.OpFAdd, C: 3, A: 1, B: 2},
				{Op: isa.OpFSt, A: 1, B: 3, Imm: 2}, // fmem[2] = f1 + 2.5
				{Op: isa.OpCvtFI, C: 5, A: 3},       // exit code sees float staleness too
				{Op: isa.OpAdd, C: 3, A: 3, B: 5},
				{Op: isa.OpLd, C: 4, A: 0, Imm: 0}, // traps when input byte is OOB
				{Op: isa.OpRet, A: 3},
			}}},
		Main:    0,
		IntMem:  16,
		IntData: []int64{3, -1, 7},
		// fmem[2] starts beyond the data section: restore must re-zero
		// it, not just re-copy data.
		FloatMem:  4,
		FloatData: []float64{1.5},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMemReuseAfterTrap interleaves trapping, cancelled, and clean
// runs on one Image and demands each matches a fresh-memory reference
// run exactly.
func TestMemReuseAfterTrap(t *testing.T) {
	prog := memProbeProg(t)
	im := Load(prog)
	closed := make(chan struct{})
	close(closed)
	steps := []struct {
		name  string
		input []byte
		cfg   Config
	}{
		{"trap-after-store", []byte{200}, Config{}},
		{"clean", []byte{1}, Config{}},
		{"fuel-cut-after-store", []byte{1}, Config{Fuel: 9}},
		{"clean-again", []byte{1}, Config{}},
		{"cancelled", []byte{1}, Config{Done: closed}},
		{"clean-final", []byte{1}, Config{}},
	}
	for _, s := range steps {
		cfg := s.cfg
		ref, refErr := runRef(prog, s.input, &cfg)
		cfg = s.cfg
		fast, fastErr := im.Run(s.input, &cfg)
		diffCompare(t, s.name, ref, fast, refErr, fastErr)
	}
}

// TestMemReuseWorkload runs a real workload three times on one Image —
// full, fuel-cut mid-run, full again — against the reference each
// time. The final run executes on a buffer the fuel-cut run dirtied
// with its real store pattern, so any address the dirty-span tracking
// misses changes its counters.
func TestMemReuseWorkload(t *testing.T) {
	prog, input := compileWorkload(t, "li")
	im := Load(prog)
	full, err := im.Run(input, &Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, fuel := range []uint64{0, full.Instrs / 2, 0} {
		cfg := &Config{Fuel: fuel}
		ref, refErr := runRef(prog, input, &Config{Fuel: fuel})
		fast, fastErr := im.Run(input, cfg)
		diffCompare(t, fmt.Sprintf("run%d(fuel=%d)", i, fuel), ref, fast, refErr, fastErr)
	}
}

// TestMemReuseConcurrent hammers one Image from several goroutines,
// mixing trapping and clean runs; the pool must hand each run a
// private, fully-restored buffer. Run under -race this also proves
// the pool itself is data-race free.
func TestMemReuseConcurrent(t *testing.T) {
	prog := memProbeProg(t)
	im := Load(prog)
	refClean, refCleanErr := runRef(prog, []byte{1}, &Config{})
	if refCleanErr != nil {
		t.Fatal(refCleanErr)
	}
	_, refTrapErr := runRef(prog, []byte{200}, &Config{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if (g+i)%2 == 0 {
					res, err := im.Run([]byte{1}, &Config{})
					if err != nil || res.ExitCode != refClean.ExitCode {
						errc <- fmt.Errorf("clean run: exit=%d err=%v, want exit=%d",
							res.ExitCode, err, refClean.ExitCode)
						return
					}
				} else {
					_, err := im.Run([]byte{200}, &Config{})
					if err == nil || err.Error() != refTrapErr.Error() {
						errc <- fmt.Errorf("trap run: err=%v, want %v", err, refTrapErr)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestRunMemoizesImages: the package-level Run entry must reuse one
// pre-decoded Image per program, so repeat callers get pooled-memory
// performance without managing Images themselves.
func TestRunMemoizesImages(t *testing.T) {
	prog := memProbeProg(t)
	a, b := cachedImage(prog), cachedImage(prog)
	if a != b {
		t.Fatal("cachedImage returned distinct Images for the same program")
	}
	ref, refErr := runRef(prog, []byte{1}, &Config{})
	for i := 0; i < 3; i++ {
		fast, fastErr := Run(prog, []byte{1}, &Config{})
		diffCompare(t, fmt.Sprintf("run%d", i), ref, fast, refErr, fastErr)
	}
}

// The step loop and the run driver. The step loop interprets original
// instructions one at a time with the reference interpreter's exact
// check order — fuel, then the Done/Sample poll, then the pc bounds
// trap, then execution — so every event (ErrFuel, cancellation, a
// sample) fires at precisely the same instruction count as before.
// The fast loop hands over whenever an event could fire inside the
// next block; the step loop hands back at the first block leader it
// reaches whose whole block fits before the next event.
package vm

import (
	"fmt"
	"math"

	"branchprof/internal/isa"
)

// Run executes the pre-decoded program on the given input. A nil cfg
// uses defaults. Images are safe for concurrent Run calls.
func (im *Image) Run(input []byte, cfg *Config) (*Result, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	if im.fallback {
		return runReference(im.prog, input, &c)
	}
	if im.compiled != nil && CompiledEnabled() {
		return im.compiled(im.prog, input, &c)
	}
	return im.runFast(input, &c)
}

// RunInterpreter executes via the fast interpreter even when a
// compiled body is registered for the program (benchmarks and the
// codegen differential suite pin the backend this way). Fallback
// images still use the reference interpreter, exactly as Run does.
func (im *Image) RunInterpreter(input []byte, cfg *Config) (*Result, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	if im.fallback {
		return runReference(im.prog, input, &c)
	}
	return im.runFast(input, &c)
}

// runFast is the pre-decoded interpreter entry. cfg must be filled.
func (im *Image) runFast(input []byte, cp *Config) (*Result, error) {
	c := *cp
	p := im.prog
	res := &Result{
		SiteTaken: make([]uint64, len(p.Sites)),
		SiteTotal: make([]uint64, len(p.Sites)),
	}
	if c.PerPC {
		res.PerPC = make([][]uint64, len(p.Funcs))
		for i := range p.Funcs {
			res.PerPC[i] = make([]uint64, len(p.Funcs[i].Code))
		}
	}

	mb := im.getMem()

	st := &exec{
		p: p, im: im, c: &c, res: res,
		imem: mb.imem, fmem: mb.fmem,
		iregs:   mb.iregs,
		fregs:   mb.fregs,
		frames:  mb.frames,
		input:   input,
		fuel:    c.Fuel,
		adjFrom: -1,
		// Empty dirty spans; the store sites widen them.
		iLo: len(mb.imem), fLo: len(mb.fmem),
	}
	st.v = im.variant(c.Trace != nil, c.PerPC)
	if c.PerPC {
		st.blockCounts = make([][]uint64, len(im.blocks))
		for i := range im.blocks {
			st.blockCounts[i] = make([]uint64, len(im.blocks[i]))
		}
	}
	st.poll = c.Done != nil || c.Sample != nil
	st.nextPoll = ^uint64(0)
	if st.poll {
		st.nextPoll = 0
	}
	st.stop = min(st.fuel, st.nextPoll)
	if c.Sample != nil {
		st.stackBuf = make([]int32, 0, 64)
	}

	// Enter main with no arguments.
	main := &p.Funcs[p.Main]
	st.frames = append(st.frames, frame{fn: int32(p.Main), retPC: -1, resReg: -1})
	st.iregs = growInt(st.iregs, 0, main.NumIRegs)
	st.fregs = growFloat(st.fregs, 0, main.NumFRegs)
	st.cur = p.Main
	// Start in the step loop at pc 0: its rejoin check credits main's
	// entry block (or enters the headered block header), and an
	// immediately-due poll or zero fuel fires first, exactly as the
	// reference orders events.
	st.fast = false
	st.pc = 0

	for !st.done {
		if st.fast {
			st.runFast()
		} else {
			st.runStep()
		}
	}
	st.finalize()
	// The run finished without panicking, so the dirty spans are
	// complete and the buffers can be restored and reused.
	im.putMem(st)
	return res, st.err
}

// finalize settles the deferred accounting: the exact instruction
// total, and for PerPC runs the expansion of whole-block counts into
// per-pc counts minus the tail of a block a trap cut short.
func (st *exec) finalize() {
	st.res.Instrs = st.instrs
	if !st.c.PerPC {
		return
	}
	for fi, counts := range st.blockCounts {
		blks := st.im.blocks[fi]
		pp := st.res.PerPC[fi]
		for bi, n := range counts {
			if n == 0 {
				continue
			}
			b := blks[bi]
			for pc := b.start; pc < b.start+b.n; pc++ {
				pp[pc] += n
			}
		}
	}
	if st.adjFrom >= 0 {
		pp := st.res.PerPC[st.adjFn]
		for pc := st.adjFrom; pc < st.adjTo; pc++ {
			pp[pc]--
		}
	}
}

// runStep interprets original instructions until the run finishes or
// a whole block fits before the next event, at which point it rejoins
// the fast loop at that block's header.
func (st *exec) runStep() {
	p := st.p
	v := st.v
	c := st.c
	res := st.res
	imem, fmem := st.imem, st.fmem
	iregs, fregs := st.iregs, st.fregs
	frames := st.frames
	input := st.input
	inPos := st.inPos
	cur := st.cur
	ib, fb := st.ib, st.fb
	pc := st.pc
	instrs := st.instrs
	code := p.Funcs[cur].Code
	hdr := v.hdr[cur]
	nAt := v.nAt[cur]

	flush := func() {
		st.iregs, st.fregs, st.frames = iregs, fregs, frames
		st.inPos = inPos
		st.cur, st.ib, st.fb = cur, ib, fb
		st.pc = pc
		st.instrs = instrs
	}
	trap := func(msg string) {
		flush()
		st.err = &RuntimeError{Func: p.Funcs[cur].Name, PC: pc,
			GlobalPC: st.im.funcBase[cur] + pc, Instrs: instrs, Msg: msg}
		st.done = true
	}

	for {
		// Rejoin the fast path at a block leader once the whole block
		// fits before the next event. The condition also guarantees no
		// event is pending right now, so the prelude below is not
		// skipped past anything.
		if pc >= 0 && pc < len(code) {
			if h := hdr[pc]; h >= 0 {
				if n := nAt[pc]; instrs+uint64(n) <= st.stop {
					if v.headerless {
						// Headerless blocks are credited as the edge into
						// them is taken; headered streams credit in the
						// block header instead.
						instrs += uint64(n)
					}
					flush()
					st.dpc = int(h)
					st.fast = true
					return
				}
			}
		}
		if instrs >= st.fuel {
			flush()
			st.err = fmt.Errorf("%w after %d instructions in %s", ErrFuel, instrs, p.Source)
			st.done = true
			return
		}
		if st.poll && instrs&4095 == 0 {
			if c.Done != nil {
				select {
				case <-c.Done:
					flush()
					st.err = fmt.Errorf("%w after %d instructions in %s", ErrCancelled, instrs, p.Source)
					st.done = true
					return
				default:
				}
			}
			if c.Sample != nil {
				st.stackBuf = st.stackBuf[:0]
				for i := range frames {
					st.stackBuf = append(st.stackBuf, int32(frames[i].fn))
				}
				c.Sample(st.stackBuf, instrs)
			}
			st.nextPoll = instrs + 4096
			st.stop = min(st.fuel, st.nextPoll)
		}
		if pc < 0 || pc >= len(code) {
			trap("pc out of range")
			return
		}
		in := &code[pc]
		instrs++
		if c.PerPC {
			res.PerPC[cur][pc]++
		}
		switch in.Op {
		case isa.OpNop:
		case isa.OpAdd:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] + iregs[ib+int(in.B)]
		case isa.OpSub:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] - iregs[ib+int(in.B)]
		case isa.OpMul:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] * iregs[ib+int(in.B)]
		case isa.OpDiv:
			d := iregs[ib+int(in.B)]
			if d == 0 {
				trap("integer divide by zero")
				return
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] / d
		case isa.OpRem:
			d := iregs[ib+int(in.B)]
			if d == 0 {
				trap("integer remainder by zero")
				return
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] % d
		case isa.OpAnd:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] & iregs[ib+int(in.B)]
		case isa.OpOr:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] | iregs[ib+int(in.B)]
		case isa.OpXor:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] ^ iregs[ib+int(in.B)]
		case isa.OpShl:
			sh := iregs[ib+int(in.B)]
			if sh < 0 || sh > 63 {
				trap("shift amount out of range")
				return
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] << uint(sh)
		case isa.OpShr:
			sh := iregs[ib+int(in.B)]
			if sh < 0 || sh > 63 {
				trap("shift amount out of range")
				return
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] >> uint(sh)
		case isa.OpNeg:
			iregs[ib+int(in.C)] = -iregs[ib+int(in.A)]
		case isa.OpNot:
			iregs[ib+int(in.C)] = ^iregs[ib+int(in.A)]
		case isa.OpSlt:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] < iregs[ib+int(in.B)])
		case isa.OpSle:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] <= iregs[ib+int(in.B)])
		case isa.OpSeq:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] == iregs[ib+int(in.B)])
		case isa.OpSne:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] != iregs[ib+int(in.B)])

		case isa.OpFAdd:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] + fregs[fb+int(in.B)]
		case isa.OpFSub:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] - fregs[fb+int(in.B)]
		case isa.OpFMul:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] * fregs[fb+int(in.B)]
		case isa.OpFDiv:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] / fregs[fb+int(in.B)]
		case isa.OpFNeg:
			fregs[fb+int(in.C)] = -fregs[fb+int(in.A)]
		case isa.OpFSlt:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] < fregs[fb+int(in.B)])
		case isa.OpFSle:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] <= fregs[fb+int(in.B)])
		case isa.OpFSeq:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] == fregs[fb+int(in.B)])
		case isa.OpFSne:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] != fregs[fb+int(in.B)])

		case isa.OpCvtIF:
			fregs[fb+int(in.C)] = float64(iregs[ib+int(in.A)])
		case isa.OpCvtFI:
			f := fregs[fb+int(in.A)]
			if math.IsNaN(f) || f > math.MaxInt64 || f < math.MinInt64 {
				trap("float to int conversion out of range")
				return
			}
			iregs[ib+int(in.C)] = int64(f)

		case isa.OpLdi:
			iregs[ib+int(in.C)] = in.Imm
		case isa.OpLdf:
			fregs[fb+int(in.C)] = in.FImm
		case isa.OpMov:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)]
		case isa.OpFMov:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)]

		case isa.OpLd:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(imem)) {
				trap(fmt.Sprintf("int load address %d out of range [0,%d)", a, len(imem)))
				return
			}
			iregs[ib+int(in.C)] = imem[a]
		case isa.OpSt:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(imem)) {
				trap(fmt.Sprintf("int store address %d out of range [0,%d)", a, len(imem)))
				return
			}
			st.dirtyInt(int(a))
			imem[a] = iregs[ib+int(in.B)]
		case isa.OpFLd:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(fmem)) {
				trap(fmt.Sprintf("float load address %d out of range [0,%d)", a, len(fmem)))
				return
			}
			fregs[fb+int(in.C)] = fmem[a]
		case isa.OpFSt:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(fmem)) {
				trap(fmt.Sprintf("float store address %d out of range [0,%d)", a, len(fmem)))
				return
			}
			st.dirtyFloat(int(a))
			fmem[a] = fregs[fb+int(in.B)]

		case isa.OpBr:
			res.SiteTotal[in.Site]++
			taken := iregs[ib+int(in.A)] != 0
			if taken {
				res.SiteTaken[in.Site]++
			}
			if c.Trace != nil {
				c.Trace.Branch(in.Site, taken, instrs)
			}
			if taken {
				pc = int(in.Target)
				continue
			}
		case isa.OpJmp:
			res.Jumps++
			if c.Trace != nil {
				c.Trace.Transfer(TransferJump, instrs)
			}
			pc = int(in.Target)
			continue
		case isa.OpCall, isa.OpICall:
			var fi int
			indirect := in.Op == isa.OpICall
			if indirect {
				fi = int(iregs[ib+int(in.A)])
				if fi < 0 || fi >= len(p.Funcs) {
					trap(fmt.Sprintf("indirect call to bad function index %d", fi))
					return
				}
				res.IndirectCalls++
				if c.Trace != nil {
					c.Trace.Transfer(TransferIndirectCall, instrs)
				}
			} else {
				fi = int(in.Target)
				res.DirectCalls++
				if c.Trace != nil {
					c.Trace.Transfer(TransferCall, instrs)
				}
			}
			if len(frames) >= c.MaxDepth {
				trap("call stack overflow")
				return
			}
			callee := &p.Funcs[fi]
			niBase := len(iregs)
			nfBase := len(fregs)
			var iArg, fArg int
			if indirect {
				iArg = int(in.B)
			} else {
				iArg = int(in.A)
				fArg = int(in.B)
			}
			// hdr/nAt are still the caller's here: record the return
			// edge for the headerless stream's dRetN.
			frames = append(frames, frame{fn: int32(fi), retPC: int32(pc + 1),
				iBase: int32(niBase), fBase: int32(nfBase), resReg: in.C, indirect: indirect,
				retDpc: hdr[pc+1], retN: nAt[pc+1]})
			iregs = growInt(iregs, niBase, callee.NumIRegs)
			fregs = growFloat(fregs, nfBase, callee.NumFRegs)
			ni, nf := 0, 0
			for pi := 0; pi < callee.NumParams; pi++ {
				if pi < len(callee.FParams) && callee.FParams[pi] {
					if indirect {
						trap("indirect call to function with float parameters")
						return
					}
					fregs[nfBase+nf] = fregs[fb+fArg]
					fArg++
					nf++
				} else {
					iregs[niBase+ni] = iregs[ib+iArg]
					iArg++
					ni++
				}
			}
			if d := len(frames); d > res.MaxDepth {
				res.MaxDepth = d
			}
			cur = fi
			code = callee.Code
			hdr = v.hdr[cur]
			nAt = v.nAt[cur]
			ib, fb = niBase, nfBase
			pc = 0
			continue
		case isa.OpRet:
			fr := frames[len(frames)-1]
			if fr.indirect {
				res.IndirectReturns++
				if c.Trace != nil {
					c.Trace.Transfer(TransferIndirectReturn, instrs)
				}
			} else if fr.retPC >= 0 {
				res.DirectReturns++
				if c.Trace != nil {
					c.Trace.Transfer(TransferReturn, instrs)
				}
			}
			f := &p.Funcs[cur]
			var iv int64
			var fv float64
			switch f.Kind {
			case isa.FuncInt:
				iv = iregs[ib+int(in.A)]
			case isa.FuncFloat:
				fv = fregs[fb+int(in.A)]
			}
			iregs = iregs[:ib]
			fregs = fregs[:fb]
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				res.ExitCode = iv
				flush()
				st.done = true
				return
			}
			caller := frames[len(frames)-1]
			cur = int(caller.fn)
			code = p.Funcs[cur].Code
			hdr = v.hdr[cur]
			nAt = v.nAt[cur]
			ib, fb = int(caller.iBase), int(caller.fBase)
			pc = int(fr.retPC)
			if fr.resReg >= 0 {
				switch f.Kind {
				case isa.FuncInt:
					iregs[ib+int(fr.resReg)] = iv
				case isa.FuncFloat:
					fregs[fb+int(fr.resReg)] = fv
				}
			}
			continue

		case isa.OpGetc:
			if inPos < len(input) {
				iregs[ib+int(in.C)] = int64(input[inPos])
				inPos++
			} else {
				iregs[ib+int(in.C)] = -1
			}
		case isa.OpPutc:
			if len(res.Output) >= c.MaxOutput {
				trap("output limit exceeded")
				return
			}
			res.Output = append(res.Output, byte(iregs[ib+int(in.A)]))
		case isa.OpHalt:
			res.ExitCode = iregs[ib+int(in.A)]
			flush()
			st.done = true
			return

		case isa.OpSqrt:
			fregs[fb+int(in.C)] = math.Sqrt(fregs[fb+int(in.A)])
		case isa.OpSin:
			fregs[fb+int(in.C)] = math.Sin(fregs[fb+int(in.A)])
		case isa.OpCos:
			fregs[fb+int(in.C)] = math.Cos(fregs[fb+int(in.A)])
		case isa.OpExp:
			fregs[fb+int(in.C)] = math.Exp(fregs[fb+int(in.A)])
		case isa.OpLog:
			fregs[fb+int(in.C)] = math.Log(fregs[fb+int(in.A)])
		case isa.OpFAbs:
			fregs[fb+int(in.C)] = math.Abs(fregs[fb+int(in.A)])
		case isa.OpFloor:
			fregs[fb+int(in.C)] = math.Floor(fregs[fb+int(in.A)])
		case isa.OpPow:
			fregs[fb+int(in.C)] = math.Pow(fregs[fb+int(in.A)], fregs[fb+int(in.B)])
		case isa.OpSel:
			if iregs[ib+int(in.A)] != 0 {
				iregs[ib+int(in.C)] = iregs[ib+int(in.B)]
			} else {
				iregs[ib+int(in.C)] = iregs[ib+int(in.Imm)]
			}
		case isa.OpFSel:
			if iregs[ib+int(in.A)] != 0 {
				fregs[fb+int(in.C)] = fregs[fb+int(in.B)]
			} else {
				fregs[fb+int(in.C)] = fregs[fb+int(in.Imm)]
			}

		default:
			trap(fmt.Sprintf("unimplemented op %v", in.Op))
			return
		}
		pc++
	}
}

package vm

import (
	"testing"

	"branchprof/internal/mfc"
)

const sampleLoopSrc = `
func inner(n int) int {
	var i int = 0;
	var s int = 0;
	while (i < n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}
func main() int {
	return inner(30000);
}
`

// TestSampleHook: the sampling callback fires on the 4096-instruction
// poll cadence with the current call stack, outermost frame first,
// and does not perturb any measurement.
func TestSampleHook(t *testing.T) {
	p, err := mfc.Compile("sample", sampleLoopSrc, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var calls int
	var lastInstrs uint64
	var sawInner bool
	cfg := &Config{Sample: func(stack []int32, instrs uint64) {
		calls++
		if instrs&4095 != 0 {
			t.Errorf("sample at instrs=%d, not on poll cadence", instrs)
		}
		if instrs < lastInstrs {
			t.Errorf("sample instrs went backwards: %d after %d", instrs, lastInstrs)
		}
		lastInstrs = instrs
		if len(stack) == 0 || int(stack[0]) != p.Main {
			t.Errorf("stack = %v, want main (%d) outermost", stack, p.Main)
		}
		if len(stack) == 2 {
			sawInner = true
		}
	}}
	res, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~30000 loop iterations ≫ 4096 instructions: several samples.
	if calls < 2 {
		t.Fatalf("got %d samples, want several", calls)
	}
	if !sawInner {
		t.Error("never sampled inside inner — stack depth lost")
	}
	if res.Instrs != base.Instrs || res.ExitCode != base.ExitCode {
		t.Errorf("sampling changed the measurement: instrs %d vs %d, exit %d vs %d",
			res.Instrs, base.Instrs, res.ExitCode, base.ExitCode)
	}
}

// TestSampleFingerprintExcluded: like Trace and Done, the sampling
// hook never reaches the cache key.
func TestSampleFingerprintExcluded(t *testing.T) {
	plain := (&Config{}).Fingerprint()
	sampled := (&Config{Sample: func([]int32, uint64) {}}).Fingerprint()
	if plain != sampled {
		t.Fatalf("Sample leaked into fingerprint: %q vs %q", plain, sampled)
	}
}

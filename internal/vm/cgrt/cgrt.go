// Package cgrt is the runtime half of the ahead-of-time codegen
// backend (internal/vm/codegen): the State a generated program body
// threads through its calls, the trap/halt/fuel/cancel unwinding
// machinery, and the Run wrapper that turns a generated body into a
// vm.CompiledFunc with exactly the reference interpreter's observable
// behaviour.
//
// Generated code keeps the hot state in locals (registers, the
// instruction count n, the fuel and poll flags) and reaches into
// State only on the slow paths: traps, polls, I/O and calls. All
// abnormal exits — fuel exhaustion, cooperative cancellation, runtime
// traps and halt — unwind the generated call stack with a typed
// panic carrying the instruction count, which Run recovers into the
// exact error values and Result fields ref.go produces.
package cgrt

import (
	"fmt"
	"math"

	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

// State carries a run's mutable machine state between generated
// function bodies. Generated code hoists the hot fields into locals
// at function entry; everything else is touched only on slow paths.
type State struct {
	P     *isa.Program
	Res   *vm.Result
	Imem  []int64
	Fmem  []float64
	Input []byte
	InPos int

	Fuel   uint64
	Poll   bool
	Done   <-chan struct{}
	Sample func(stack []int32, instrs uint64)
	Tr     vm.Tracer

	// MaxDepth is the configured limit; Depth is the live frame
	// count, starting at 1 for main exactly as the interpreter's
	// frame slice does. Stack mirrors the frame function indices
	// (outermost first) and is maintained only while sampling.
	MaxDepth int
	Depth    int
	Stack    []int32

	MaxOut   int
	funcBase []int
}

// Typed unwinding payloads. Each carries the instruction count at the
// moment the event fired so Run can stamp Result.Instrs exactly.
type fuelStop struct{ n uint64 }
type cancelStop struct{ n uint64 }
type haltStop struct {
	n    uint64
	code int64
}
type trapStop struct {
	fi, pc int32
	n      uint64
	msg    string
}

// Run executes body — a generated whole-program entry returning the
// final instruction count and main's integer return value — and
// reproduces the reference interpreter's result and error contract:
// ErrFuel/ErrCancelled wrapped with the exact instruction count and
// program source name, RuntimeError with function-relative and global
// PCs for traps, ExitCode from halt or main's return.
//
// cfg must already have defaults applied (vm.Image.Run fills it
// before dispatching to a compiled body).
func Run(p *isa.Program, input []byte, c *vm.Config, body func(*State) (uint64, int64)) (res *vm.Result, err error) {
	res = &vm.Result{
		SiteTaken: make([]uint64, len(p.Sites)),
		SiteTotal: make([]uint64, len(p.Sites)),
	}
	if c.PerPC {
		res.PerPC = make([][]uint64, len(p.Funcs))
		for i := range p.Funcs {
			res.PerPC[i] = make([]uint64, len(p.Funcs[i].Code))
		}
	}
	imem := make([]int64, p.IntMem)
	copy(imem, p.IntData)
	fmem := make([]float64, p.FloatMem)
	copy(fmem, p.FloatData)
	funcBase := make([]int, len(p.Funcs))
	base := 0
	for i := range p.Funcs {
		funcBase[i] = base
		base += len(p.Funcs[i].Code)
	}

	st := &State{
		P: p, Res: res, Imem: imem, Fmem: fmem, Input: input,
		Fuel: c.Fuel, Poll: c.Done != nil || c.Sample != nil,
		Done: c.Done, Sample: c.Sample, Tr: c.Trace,
		MaxDepth: c.MaxDepth, Depth: 1,
		MaxOut: c.MaxOutput, funcBase: funcBase,
	}
	if c.Sample != nil {
		st.Stack = append(make([]int32, 0, 64), int32(p.Main))
	}

	defer func() {
		switch r := recover().(type) {
		case nil:
		case fuelStop:
			res.Instrs = r.n
			err = fmt.Errorf("%w after %d instructions in %s", vm.ErrFuel, r.n, p.Source)
		case cancelStop:
			res.Instrs = r.n
			err = fmt.Errorf("%w after %d instructions in %s", vm.ErrCancelled, r.n, p.Source)
		case haltStop:
			res.Instrs = r.n
			res.ExitCode = r.code
			err = nil
		case trapStop:
			res.Instrs = r.n
			err = &vm.RuntimeError{
				Func:     p.Funcs[r.fi].Name,
				PC:       int(r.pc),
				GlobalPC: funcBase[r.fi] + int(r.pc),
				Instrs:   r.n,
				Msg:      r.msg,
			}
		default:
			panic(r)
		}
	}()

	n, exit := body(st)
	res.Instrs = n
	res.ExitCode = exit
	return res, nil
}

// Instrumented reports whether the run observes per-instruction or
// per-transfer events; generated bodies hoist the answer per call.
func (st *State) Instrumented() bool { return st.Tr != nil || st.Res.PerPC != nil }

// PerPCFor returns the per-pc counter row for function fi, or nil
// when per-pc counting is off.
func (st *State) PerPCFor(fi int) []uint64 {
	if st.Res.PerPC == nil {
		return nil
	}
	return st.Res.PerPC[fi]
}

// FuelStop aborts the run out of fuel after n instructions.
func (st *State) FuelStop(n uint64) { panic(fuelStop{n}) }

// PollCheck is the periodic cancellation/sampling poll, reached every
// time n&4095 == 0 exactly as the interpreter's loop head does.
func (st *State) PollCheck(n uint64) {
	if st.Done != nil {
		select {
		case <-st.Done:
			panic(cancelStop{n})
		default:
		}
	}
	if st.Sample != nil {
		st.Sample(st.Stack, n)
	}
}

// Halt ends the run with the given exit code after n instructions.
func (st *State) Halt(n uint64, code int64) { panic(haltStop{n, code}) }

// Trap aborts the run with a RuntimeError at pc of function fi.
func (st *State) Trap(fi, pc int32, n uint64, msg string) {
	panic(trapStop{fi: fi, pc: pc, n: n, msg: msg})
}

// TrapMem is Trap for the four memory bounds messages.
func (st *State) TrapMem(fi, pc int32, n uint64, what string, addr int64, size int) {
	st.Trap(fi, pc, n, fmt.Sprintf("%s address %d out of range [0,%d)", what, addr, size))
}

// TrapICall is Trap for an indirect call to an out-of-range index.
func (st *State) TrapICall(fi, pc int32, n uint64, callee int) {
	st.Trap(fi, pc, n, fmt.Sprintf("indirect call to bad function index %d", callee))
}

// Getc returns the next input byte, or -1 at end of input.
func (st *State) Getc() int64 {
	if st.InPos < len(st.Input) {
		b := st.Input[st.InPos]
		st.InPos++
		return int64(b)
	}
	return -1
}

// Putc appends the low byte of v to the output, trapping once the
// configured output limit is reached.
func (st *State) Putc(fi, pc int32, n uint64, v int64) {
	if len(st.Res.Output) >= st.MaxOut {
		st.Trap(fi, pc, n, "output limit exceeded")
	}
	st.Res.Output = append(st.Res.Output, byte(v))
}

// UnsupportedICall aborts an indirect call whose argument staging
// would escape the register frames. The interpreter's behaviour on
// this path is depth-dependent (reads from the freshly zeroed callee
// window, or a slab-bounds panic), so generated code cannot
// reproduce it statically; it panics instead — the documented
// codegen-mode-only delta. No workload or fuzzer-generated program
// reaches this path; a program that does can be pinned to the
// interpreter with BRANCHPROF_VM_BACKEND=interp.
func (st *State) UnsupportedICall(fi, pc int32, callee int) {
	panic(fmt.Sprintf("vm codegen: indirect call at %s+%d stages callee %s outside the register frames; interpreter behaviour is depth-dependent (run with BRANCHPROF_VM_BACKEND=interp)",
		st.P.Funcs[fi].Name, pc, st.P.Funcs[callee].Name))
}

// BadResult reproduces the interpreter's index-out-of-range panic
// when an indirect call's result register lies outside the caller's
// frame. The panic index is frame-relative here where the
// interpreter's is slab-relative; both are runtime range errors on
// the same program point.
func BadResult(reg int32) {
	_ = []int64(nil)[reg]
}

// B2I is the comparison materialization ref.go uses.
func B2I(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// F64 reconstructs a float immediate from its exact bit pattern, so
// generated code round-trips every value including NaN payloads.
func F64(bits uint64) float64 { return math.Float64frombits(bits) }

// The backend seam: ahead-of-time compiled program bodies register
// here under their program's content digest (isa.ProgramDigest), and
// Load binds a matching body to the Image so Run dispatches to native
// code instead of the interpreter. Generated bodies come from
// internal/vm/codegen via go:generate (see internal/workloads/
// compiled); they are differential-verified against the fast
// interpreter by the same suites that verified fast.go against
// ref.go, so selection is purely a performance decision —
// SemanticsVersion is unchanged by the backend in use.
package vm

import (
	"os"
	"sync"
	"sync/atomic"

	"branchprof/internal/isa"
)

// CompiledFunc is one ahead-of-time compiled program body. It
// receives the program it was generated from (so generated code
// carries no copy of the data segments — the digest match guarantees
// p is the program the code came from), the run input, and a Config
// that has already had defaults applied (Image.Run fills it before
// dispatching). It must produce bit-identical Results and errors to
// the interpreter for every input and configuration.
type CompiledFunc func(p *isa.Program, input []byte, c *Config) (*Result, error)

var (
	compiledMu  sync.Mutex
	compiledReg map[string]CompiledFunc

	// compiledOff disables dispatch to compiled bodies without
	// unregistering them (benchmarks pin the interpreter this way,
	// and BRANCHPROF_VM_BACKEND=interp does it process-wide).
	compiledOff atomic.Bool
)

func init() {
	if os.Getenv("BRANCHPROF_VM_BACKEND") == "interp" {
		compiledOff.Store(true)
	}
}

// RegisterCompiled makes fn the compiled body for programs whose
// isa.ProgramDigest equals digest. Generated packages call it from
// init, so registration precedes every Load. Registering the same
// digest twice keeps the latest body.
func RegisterCompiled(digest string, fn CompiledFunc) {
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if compiledReg == nil {
		compiledReg = make(map[string]CompiledFunc)
	}
	compiledReg[digest] = fn
}

// CompiledFor returns the registered compiled body for p, or nil.
// The digest is only computed when at least one body is registered,
// so builds without generated code pay nothing at Load.
func CompiledFor(p *isa.Program) CompiledFunc {
	compiledMu.Lock()
	n := len(compiledReg)
	compiledMu.Unlock()
	if n == 0 {
		return nil
	}
	d := isa.ProgramDigest(p)
	compiledMu.Lock()
	defer compiledMu.Unlock()
	return compiledReg[d]
}

// SetCompiledEnabled turns dispatch to compiled bodies on or off
// process-wide and reports the previous setting. Registration is
// unaffected; a disabled backend re-enables instantly. Benchmarks use
// it to pin one backend per measurement.
func SetCompiledEnabled(on bool) (prev bool) {
	return !compiledOff.Swap(!on)
}

// CompiledEnabled reports whether compiled bodies may be dispatched.
func CompiledEnabled() bool { return !compiledOff.Load() }

package vm

import "testing"

func TestConfigFingerprint(t *testing.T) {
	var nilCfg *Config
	zero := &Config{}
	defaulted := &Config{Fuel: 1 << 33, MaxDepth: 100000, MaxOutput: 1 << 26}

	// nil, zero and explicitly defaulted configs describe the same run
	// and must share a fingerprint — otherwise the engine's cache would
	// split identical measurements across keys.
	if nilCfg.Fingerprint() != zero.Fingerprint() {
		t.Fatalf("nil %q != zero %q", nilCfg.Fingerprint(), zero.Fingerprint())
	}
	if defaulted.Fingerprint() != zero.Fingerprint() {
		t.Fatalf("defaulted %q != zero %q", defaulted.Fingerprint(), zero.Fingerprint())
	}

	// Every measurement-affecting field must move the fingerprint.
	base := zero.Fingerprint()
	for name, c := range map[string]*Config{
		"fuel":   {Fuel: 1000},
		"depth":  {MaxDepth: 7},
		"output": {MaxOutput: 64},
		"perpc":  {PerPC: true},
	} {
		if c.Fingerprint() == base {
			t.Errorf("changing %s did not change the fingerprint %q", name, base)
		}
	}

	// A tracer must NOT move the fingerprint: tracers observe a run
	// without changing its counters, and traced runs bypass the cache.
	traced := &Config{Trace: dummyTracer{}}
	if traced.Fingerprint() != base {
		t.Fatalf("tracer changed the fingerprint: %q", traced.Fingerprint())
	}
}

type dummyTracer struct{}

func (dummyTracer) Branch(site int32, taken bool, instrs uint64) {}
func (dummyTracer) Transfer(kind TransferKind, instrs uint64)    {}

package vm

import (
	"bytes"
	"testing"

	"branchprof/internal/isa"
	"branchprof/internal/vm/codegen/difftest"
)

// FuzzVMDifferential generates structurally valid programs from the
// fuzz input and demands that the pre-decoded interpreter and the
// reference interpreter agree exactly: same counters, same output,
// same error text (trap classification, fuel exhaustion), same exit
// code. Operand roles come from isa.Meta so every operation —
// including the ones the superinstruction fuser targets — is reachable.

const (
	fuzzIRegs  = 6
	fuzzFRegs  = 4
	fuzzParams = 2
)

// fuzzOps is the op pool the generator draws from. Weighted towards
// the shapes the pre-decoder fuses (ldi/ld/cmp/br runs, call/ret) by
// listing them more than once.
var fuzzOps = []isa.Op{
	isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
	isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
	isa.OpNeg, isa.OpNot,
	isa.OpSlt, isa.OpSle, isa.OpSeq, isa.OpSne,
	isa.OpSlt, isa.OpSeq, isa.OpSne,
	isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFNeg,
	isa.OpFSlt, isa.OpFSle, isa.OpFSeq, isa.OpFSne,
	isa.OpCvtIF, isa.OpCvtFI,
	isa.OpLdi, isa.OpLdi, isa.OpLdi, isa.OpLdf,
	isa.OpMov, isa.OpFMov,
	isa.OpLd, isa.OpLd, isa.OpSt, isa.OpFLd, isa.OpFSt,
	isa.OpBr, isa.OpBr, isa.OpJmp,
	isa.OpCall, isa.OpICall, isa.OpRet,
	isa.OpGetc, isa.OpPutc,
	isa.OpSqrt, isa.OpSin, isa.OpCos, isa.OpExp, isa.OpLog,
	isa.OpFAbs, isa.OpFloor, isa.OpPow,
	isa.OpSel, isa.OpFSel,
	isa.OpHalt,
}

type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		r.pos++
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) i64() int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v = v<<8 | int64(r.byte())
	}
	return v
}

// fuzzProgram deterministically derives a Validate-clean program from
// the input bytes, or nil when the input is too degenerate.
func fuzzProgram(data []byte) *isa.Program {
	r := &fuzzReader{data: data}
	nf := 1 + int(r.byte())%3
	p := &isa.Program{
		IntMem:   12,
		FloatMem: 8,
		IntData:  []int64{3, -1, 7},
		Source:   "fuzz",
	}
	siteID := 0
	for fi := 0; fi < nf; fi++ {
		f := isa.Func{
			Name:     string(rune('a' + fi)),
			Kind:     isa.FuncInt,
			NumIRegs: fuzzIRegs,
			NumFRegs: fuzzFRegs,
		}
		if fi > 0 {
			f.NumParams = int(r.byte()) % (fuzzParams + 1)
			if r.byte()%4 == 0 {
				f.Kind = isa.FuncFloat
			}
			if f.NumParams > 0 && r.byte()%4 == 0 {
				// One float parameter exercises the mixed staging
				// path and the icall-rejects-float-params trap.
				f.FParams = make([]bool, f.NumParams)
				f.FParams[0] = true
			}
		}
		n := 2 + int(r.byte())%14
		for pc := 0; pc < n; pc++ {
			op := fuzzOps[int(r.byte())%len(fuzzOps)]
			in := isa.Instr{Op: op, Site: -1}
			m := op.Meta()
			reg := func(c isa.RegClass) int32 {
				switch c {
				case isa.RegInt:
					return int32(r.byte()) % fuzzIRegs
				case isa.RegFloat:
					return int32(r.byte()) % fuzzFRegs
				}
				return 0
			}
			in.A, in.B, in.C = reg(m.A), reg(m.B), reg(m.C)
			if m.HasImm {
				if op == isa.OpLdi {
					in.Imm = r.i64()
				} else {
					// Mostly in-range addresses, some out of range to
					// exercise trap recovery inside fused sequences.
					in.Imm = int64(r.byte())%16 - 2
				}
			}
			if m.HasFImm {
				in.FImm = float64(int8(r.byte()))
			}
			if m.SelImm {
				in.Imm = int64(reg(m.ImmReg))
			}
			switch op {
			case isa.OpBr:
				in.Site = int32(siteID)
				p.Sites = append(p.Sites, isa.BranchSite{ID: siteID, Func: f.Name})
				siteID++
				in.Target = int32(r.byte()) // fixed up below
			case isa.OpJmp:
				in.Target = int32(r.byte())
			case isa.OpCall:
				in.Target = int32(r.byte()) % int32(nf)
				// Arg windows must stay inside the caller's frames.
				in.A = int32(r.byte()) % (fuzzIRegs - fuzzParams)
				in.B = int32(r.byte()) % (fuzzFRegs - fuzzParams)
			case isa.OpICall:
				in.B = int32(r.byte()) % (fuzzIRegs - fuzzParams)
			case isa.OpRet:
				in.A = reg(isa.RegInt)
				if f.Kind == isa.FuncFloat {
					in.A = reg(isa.RegFloat)
				}
			}
			f.Code = append(f.Code, in)
		}
		// Force a terminator and fix up branch targets now that the
		// length is final.
		f.Code = append(f.Code, isa.Instr{Op: isa.OpRet, Site: -1})
		for pc := range f.Code {
			switch f.Code[pc].Op {
			case isa.OpBr, isa.OpJmp:
				f.Code[pc].Target %= int32(len(f.Code))
			}
		}
		p.Funcs = append(p.Funcs, f)
	}
	if p.Funcs[p.Main].Kind != isa.FuncInt {
		p.Funcs[p.Main].Kind = isa.FuncInt
	}
	if err := p.Validate(); err != nil {
		return nil
	}
	return p
}

func FuzzVMDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 9, 30, 1, 2, 3, 35, 0, 4, 41, 1, 5, 44, 7, 0})
	f.Add(bytes.Repeat([]byte{31, 14, 45, 3}, 16))
	f.Add([]byte{1, 12, 44, 0, 45, 1, 46, 2, 30, 5, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		if prog == nil {
			t.Skip()
		}
		var input []byte
		if len(data) > 4 {
			input = data[len(data)-4:]
		}
		// Small fuel keeps generated infinite loops cheap while still
		// crossing the batched-accounting poll boundary.
		cfg := &Config{Fuel: 20000, MaxDepth: 64, MaxOutput: 1 << 12}
		ref, refErr := runRef(prog, input, cfg)
		fast, fastErr := Load(prog).Run(input, cfg)
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("error mismatch:\n  ref:  %v\n  fast: %v\nprogram:\n%s",
				refErr, fastErr, isa.Disasm(prog))
		}
		if refErr != nil && refErr.Error() != fastErr.Error() {
			t.Fatalf("error text mismatch:\n  ref:  %v\n  fast: %v\nprogram:\n%s",
				refErr, fastErr, isa.Disasm(prog))
		}
		if ref == nil || fast == nil {
			return
		}
		if ref.Instrs != fast.Instrs || ref.ExitCode != fast.ExitCode ||
			!bytes.Equal(ref.Output, fast.Output) ||
			ref.Jumps != fast.Jumps ||
			ref.DirectCalls != fast.DirectCalls || ref.DirectReturns != fast.DirectReturns ||
			ref.IndirectCalls != fast.IndirectCalls || ref.IndirectReturns != fast.IndirectReturns ||
			ref.MaxDepth != fast.MaxDepth {
			t.Fatalf("result mismatch:\n  ref:  %+v\n  fast: %+v\nprogram:\n%s",
				summary(ref), summary(fast), isa.Disasm(prog))
		}
		for i := range ref.SiteTaken {
			if ref.SiteTaken[i] != fast.SiteTaken[i] || ref.SiteTotal[i] != fast.SiteTotal[i] {
				t.Fatalf("site %d mismatch: ref=%d/%d fast=%d/%d\nprogram:\n%s", i,
					ref.SiteTaken[i], ref.SiteTotal[i], fast.SiteTaken[i], fast.SiteTotal[i],
					isa.Disasm(prog))
			}
		}
		// Opt-in codegen leg: compile this program with the codegen
		// backend in a subprocess and compare against the interpreter
		// (see codegen_diff_test.go for the always-on corpus variant).
		if fuzzCodegen {
			if err := difftest.Compare([]*isa.Program{prog}, [][]byte{input}); err != nil {
				t.Fatalf("codegen leg: %v\nprogram:\n%s", err, isa.Disasm(prog))
			}
		}
	})
}

type resultSummary struct {
	Instrs, Jumps, DC, DR, IC, IR uint64
	Exit                          int64
	Out                           string
	Depth                         int
}

func summary(r *Result) resultSummary {
	return resultSummary{
		Instrs: r.Instrs, Jumps: r.Jumps,
		DC: r.DirectCalls, DR: r.DirectReturns,
		IC: r.IndirectCalls, IR: r.IndirectReturns,
		Exit: r.ExitCode, Out: string(r.Output), Depth: r.MaxDepth,
	}
}

// TestFuzzSeedsDiffer sanity-checks the generator: the fixed seeds
// must produce at least one runnable program that executes real work,
// otherwise the fuzz target silently degrades into a no-op.
func TestFuzzSeedsDiffer(t *testing.T) {
	ran := 0
	for _, seed := range [][]byte{
		{2, 9, 30, 1, 2, 3, 35, 0, 4, 41, 1, 5, 44, 7, 0},
		bytes.Repeat([]byte{31, 14, 45, 3}, 16),
		{1, 12, 44, 0, 45, 1, 46, 2, 30, 5, 255, 255},
	} {
		prog := fuzzProgram(seed)
		if prog == nil {
			continue
		}
		res, err := Load(prog).Run(nil, &Config{Fuel: 20000})
		if res != nil && res.Instrs > 0 {
			ran++
		}
		_ = err
	}
	if ran == 0 {
		t.Fatal("no fuzz seed produced a program that executes instructions")
	}
	// Generator determinism: identical input, identical program.
	a := fuzzProgram([]byte{7, 8, 9, 10, 11, 12})
	b := fuzzProgram([]byte{7, 8, 9, 10, 11, 12})
	if (a == nil) != (b == nil) {
		t.Fatal("generator is nondeterministic")
	}
	if a != nil && isa.Disasm(a) != isa.Disasm(b) {
		t.Fatal("generator is nondeterministic")
	}
}

package vm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"branchprof/internal/isa"
)

// evalBinary runs a single binary operation through the VM.
func evalBinary(t *testing.T, op isa.Op, a, b int64) (int64, error) {
	t.Helper()
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: a},
		{Op: isa.OpLdi, C: 1, Imm: b},
		{Op: op, C: 2, A: 0, B: 1},
		{Op: isa.OpRet, A: 2},
	}, 3, 0, 0)
	res, err := Run(p, nil, nil)
	if err != nil {
		return 0, err
	}
	return res.ExitCode, nil
}

// TestIntSemanticsMatchGo: every integer ALU op agrees with Go's
// int64 semantics on random operands (Go and the VM both use two's
// complement with wrapping).
func TestIntSemanticsMatchGo(t *testing.T) {
	f := func(a, b int64) bool {
		cases := []struct {
			op   isa.Op
			want func(a, b int64) int64
		}{
			{isa.OpAdd, func(a, b int64) int64 { return a + b }},
			{isa.OpSub, func(a, b int64) int64 { return a - b }},
			{isa.OpMul, func(a, b int64) int64 { return a * b }},
			{isa.OpAnd, func(a, b int64) int64 { return a & b }},
			{isa.OpOr, func(a, b int64) int64 { return a | b }},
			{isa.OpXor, func(a, b int64) int64 { return a ^ b }},
			{isa.OpSlt, func(a, b int64) int64 { return b2i(a < b) }},
			{isa.OpSle, func(a, b int64) int64 { return b2i(a <= b) }},
			{isa.OpSeq, func(a, b int64) int64 { return b2i(a == b) }},
			{isa.OpSne, func(a, b int64) int64 { return b2i(a != b) }},
		}
		for _, c := range cases {
			got, err := evalBinary(t, c.op, a, b)
			if err != nil || got != c.want(a, b) {
				return false
			}
		}
		// Division and remainder avoid the zero divisor; Go's
		// truncated division is the reference.
		if b != 0 && !(a == math.MinInt64 && b == -1) {
			if got, err := evalBinary(t, isa.OpDiv, a, b); err != nil || got != a/b {
				return false
			}
			if got, err := evalBinary(t, isa.OpRem, a, b); err != nil || got != a%b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestShiftSemanticsMatchGo over the legal shift range.
func TestShiftSemanticsMatchGo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a := rng.Int63() - rng.Int63()
		sh := int64(rng.Intn(64))
		if got, err := evalBinary(t, isa.OpShl, a, sh); err != nil || got != a<<uint(sh) {
			t.Fatalf("%d << %d: got %d want %d (%v)", a, sh, got, a<<uint(sh), err)
		}
		if got, err := evalBinary(t, isa.OpShr, a, sh); err != nil || got != a>>uint(sh) {
			t.Fatalf("%d >> %d: got %d want %d (%v)", a, sh, got, a>>uint(sh), err)
		}
	}
}

// TestFloatSemanticsMatchGo: float ops are IEEE doubles exactly as Go
// computes them.
func TestFloatSemanticsMatchGo(t *testing.T) {
	evalF := func(op isa.Op, a, b float64) float64 {
		p := prog([]isa.Instr{
			{Op: isa.OpLdf, C: 0, FImm: a},
			{Op: isa.OpLdf, C: 1, FImm: b},
			{Op: op, C: 2, A: 0, B: 1},
			{Op: isa.OpLdf, C: 3, FImm: 1e9},
			{Op: isa.OpFMul, C: 2, A: 2, B: 3},
			{Op: isa.OpCvtFI, C: 0, A: 2},
			{Op: isa.OpRet, A: 0},
		}, 1, 4, 0)
		res, err := Run(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.ExitCode) / 1e9
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a := rng.Float64()*4 - 2
		b := rng.Float64()*4 - 2
		if got, want := evalF(isa.OpFAdd, a, b), a+b; math.Abs(got-want) > 1e-9 {
			t.Fatalf("fadd(%v,%v) = %v, want %v", a, b, got, want)
		}
		if got, want := evalF(isa.OpFMul, a, b), a*b; math.Abs(got-want) > 1e-9 {
			t.Fatalf("fmul(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

// TestDeterminismProperty: any short random instruction mix runs
// identically twice.
func TestDeterminismProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var code []isa.Instr
		for i := 0; i < 20; i++ {
			switch rng.Intn(5) {
			case 0:
				code = append(code, isa.Instr{Op: isa.OpLdi, C: int32(rng.Intn(4)), Imm: int64(rng.Intn(100))})
			case 1:
				code = append(code, isa.Instr{Op: isa.OpAdd, C: int32(rng.Intn(4)), A: int32(rng.Intn(4)), B: int32(rng.Intn(4))})
			case 2:
				code = append(code, isa.Instr{Op: isa.OpXor, C: int32(rng.Intn(4)), A: int32(rng.Intn(4)), B: int32(rng.Intn(4))})
			case 3:
				code = append(code, isa.Instr{Op: isa.OpGetc, C: int32(rng.Intn(4))})
			default:
				code = append(code, isa.Instr{Op: isa.OpPutc, A: int32(rng.Intn(4))})
			}
		}
		code = append(code, isa.Instr{Op: isa.OpRet, A: 0})
		p := prog(code, 4, 0, 0)
		input := make([]byte, rng.Intn(16))
		rng.Read(input)
		r1, err1 := Run(p, input, nil)
		r2, err2 := Run(p, input, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: divergent errors %v / %v", seed, err1, err2)
		}
		if err1 == nil && (r1.ExitCode != r2.ExitCode || r1.Instrs != r2.Instrs || string(r1.Output) != string(r2.Output)) {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
	}
}

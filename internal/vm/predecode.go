// Pre-decode: compile an isa.Program once into a dense, verified,
// block-structured internal form the fast dispatch loop (fast.go)
// executes without per-instruction fuel, poll, pc-bounds, or
// observability checks.
//
// The load-time pass
//
//   - verifies every statically checkable trap condition (function
//     table shape, branch/jump targets, branch sites, terminators) so
//     the hot loop can drop those checks; programs that fail
//     verification fall back to the reference interpreter, which
//     reproduces their dynamic trap behaviour exactly;
//   - segments each function into basic blocks (capped at
//     maxBlockLen original instructions) and batches fuel and
//     instruction accounting per block: in the plain stream every
//     control transfer credits its successor block's instruction
//     count as it takes the edge ("edge accounting"), so straight
//     mirrors of the isa ops carry no accounting at all; headered
//     streams (PerPC, Trace) put the same credit in an explicit block
//     header. Either way, one "will an event fire inside this block?"
//     comparison replaces n per-instruction checks, with the step
//     loop (step.go) replaying event-adjacent windows one
//     instruction at a time so ErrFuel and the Done/Sample poll fire
//     at exactly the same instruction counts as before;
//   - fuses frequent adjacent pairs (and a few triples) into
//     superinstructions — compare+branch, ldi+alu, ldi+compare,
//     load+use, mul+add, fld+fmul, mov+call and friends — that
//     execute both halves' register and memory effects in the
//     original order, so values and out-of-range panics are
//     position-identical;
//   - specializes by configuration: four opcode streams keyed by
//     (Trace?, PerPC?) are built lazily and memoized on the Image, so
//     the plain cached-collection path pays zero per-instruction
//     conditionals for observability it isn't using. Traced streams
//     swap every control transfer for a tracing twin; PerPC streams
//     use counting block headers whose per-block counters expand into
//     exact per-pc counts when the run finishes.
//
// Nothing here changes observable semantics: Result counters, output
// bytes, exit codes, trap classification, and panic behaviour are
// bit-identical to the reference interpreter (differential_test.go,
// FuzzVMDifferential), so SemanticsVersion stays at 1 and persisted
// engine caches remain valid.
package vm

import (
	"math"
	"sync"

	"branchprof/internal/isa"
)

// maxBlockLen caps how many original instructions one block may
// credit at once. Events (fuel, polls) are at least 4096 instructions
// apart, so a small cap keeps the fast path covering ≥ ~94% of
// instructions even in polled runs while bounding how long the step
// loop interprets around each event. It must fit in a byte: branch
// superinstructions pack both successors' counts into rem.
const maxBlockLen = 255

// dop is the internal operation set. It mirrors the isa ops and adds
// block bookkeeping, fused pairs/triples, tracing twins of the
// control ops, and the edge-accounting ("N") control forms used by
// the headerless plain stream.
type dop uint8

const (
	// Block bookkeeping.
	dBlock    dop = iota // header: pre-credit a (=n) instructions or bail to step mode
	dBlockCnt            // header that also bumps blockCounts[fn][x]
	dToStep              // resume one-at-a-time interpretation at pc a (end-of-code sentinel)

	// Straight mirrors of the isa ops.
	dNop
	dAdd
	dSub
	dMul
	dDiv
	dRem
	dAnd
	dOr
	dXor
	dShl
	dShr
	dNeg
	dNot
	dSlt
	dSle
	dSeq
	dSne
	dFAdd
	dFSub
	dFMul
	dFDiv
	dFNeg
	dFSlt
	dFSle
	dFSeq
	dFSne
	dCvtIF
	dCvtFI
	dLdi
	dLdf // float immediate carried as bits in imm
	dMov
	dFMov
	dLd
	dSt
	dFLd
	dFSt
	dBr
	dJmp
	dCall
	dICall
	dRet
	dGetc
	dPutc
	dHalt
	dSqrt
	dSin
	dCos
	dExp
	dLog
	dFAbs
	dFloor
	dPow
	dSel
	dFSel
	dBadOp // unknown op: trap "unimplemented op" (original op value in imm)

	// Fused superinstructions (non-control; all streams). Each
	// executes its halves in original order.
	dSltBr // slt c,a,b ; br c  →  one compare-and-branch (headered streams)
	dSleBr
	dSeqBr
	dSneBr
	dLdiAdd // ldi c,imm ; add x,a,b
	dLdiSub
	dLdiMul
	dLdiSlt // ldi c,imm ; slt x,a,b
	dLdiSle
	dLdiSeq
	dLdiSne
	dLdiLd  // ldi c,imm ; ld x,[b+target]
	dLdAdd  // ld c,[a+imm] ; add x,c,b (commuted: loaded value left)
	dLdMov  // ld c,[a+imm] ; mov x,target
	dLdSlt  // ld c,[a+imm] ; slt x,b,target
	dLdSeq  // ld c,[a+imm] ; seq x,b,target
	dLdLd   // ld c,[a+target] ; ld x,[b+imm]
	dMulAdd // mul c,a,b ; add x,c,target (commuted)
	dAddMov // add c,a,b ; mov x,target
	dAddFld // add c,a,b ; fld x,[c+imm]
	dSltSne // slt c,a,b ; sne x,c,target (!= is symmetric)
	dSeqSne // seq c,a,b ; sne x,c,target
	dFldMul // fld c,[a+imm] ; fmul x,c,target (commuted)
	dFldLdi // fld c,[a+target] ; ldi x,imm
	dFMulAdd
	dFAddMov // fadd c,a,b ; fmov x,target
	dFMovLdi // fmov c,a ; ldi x,imm
	dMovLdi  // mov c,a ; ldi x,imm

	// Tracing twins used by Trace-configured streams.
	dBrT
	dJmpT
	dCallT
	dICallT
	dRetT

	// Edge-accounting control forms for the headerless plain stream.
	// Each checks and credits its successor block's count (packed in
	// rem) as it takes the edge, bailing to step mode when an event
	// would fire inside the successor.
	dFall   // fall into the next leader: credit rem instructions
	dBrN    // br a (site x): taken → target crediting rem>>8, else dpc+1 crediting rem&0xff
	dJmpN   // jmp → target crediting rem
	dCallN  // call fi=target, entry dpc x, credit rem>>8; frame remembers rem&0xff for the return edge
	dICallN // icall [a]: entry dpc/count from entryDpc/entryN; frame remembers rem for the return edge
	dRetN   // ret a: return edge credits the frame's recorded count
	dSltBrN // fused compare-and-branch, edge-accounting form
	dSleBrN
	dSeqBrN
	dSneBrN
	dLdiBrN // ldi c,imm ; br a (site x)
	dLdiSltBrN
	dLdiSleBrN
	dLdiSeqBrN
	dLdiSneBrN
	dMovCallN // mov then call; mov regs and return pc packed in imm
	dLdiRetN  // ldi c,imm ; ret a
	dSneFall  // sne c,a,b then fall edge
	dSneJmpN  // sne c,a,b ; jmp
	dLdiJmpN  // ldi c,imm ; jmp
	dLdiSltSne
	dLdiSeqSne
	dLdiSltSneFall // ldi ; slt ; sne then fall edge
	dLdiSeqSneFall
	dLdiSltSneJmpN // ldi ; slt ; sne ; jmp
	dLdiSeqSneJmpN
	dLdRetN // ld c,[a+b] ; ret x
	dStRetN // st [a+b],c ; ret x
	// ldi ; ld ; seq comparing the loaded value with the immediate ;
	// br on the compare. The load destination spills to eImm.
	dLdiLdSeqBrN
)

// dinstr is one pre-decoded operation, exactly 32 bytes so the
// dispatch loop indexes the stream with a power-of-two stride. Field
// roles vary by op (see the builder). rem counts the original
// instructions of the enclosing block that come strictly after the
// ones this dinstr covers — traps recover the exact pc and
// instruction count from it plus the per-block tables (the
// edge-accounting control ops, which cannot overshoot mid-block,
// repurpose rem for successor block counts instead).
type dinstr struct {
	op     dop
	rem    uint16
	a      int32
	b      int32
	c      int32
	x      int32 // site (branches), second result (fused), block index (headers)
	target int32 // branch/jump: target dpc; call: callee function index
	imm    int64
}

// blockInfo locates one basic block in its function's original code.
type blockInfo struct {
	start int32 // original pc of the first instruction
	n     int32 // original instruction count (≤ maxBlockLen)
}

// variant is one specialized opcode stream for a (Trace?, PerPC?)
// configuration: per-function dinstr code plus the tables the fast
// and step loops use to move between dinstr and original pcs.
//
//	hdr[fn][pc]  dpc of the block starting at original pc (or -1);
//	             hdr[fn][len(code)] is a dToStep sentinel
//	             reproducing the fall-off-the-end trap
//	nAt[fn][pc]  instruction count of the block starting at pc (or -1)
//	bDpc[fn][bi] dpc of block bi's first dinstr (+ sentinel entry),
//	             so a binary search recovers the block of any dpc
//	bPC[fn][bi]  original pc of block bi's start (+ len(code))
//	bN[fn][bi]   original instruction count of block bi (+ 0)
type variant struct {
	headerless bool
	code       [][]dinstr
	hdr        [][]int32
	nAt        [][]int32
	bDpc       [][]int32
	bPC        [][]int32
	bN         [][]int32
	entryDpc   []int32 // per function: dpc of the entry block (headerless calls)
	entryN     []int32 // per function: entry block instruction count
	// tPC[fn][dpc] is the original taken-target pc of the branch or
	// jump dinstr at dpc (headerless stream only). Jump threading
	// redirects dinstr targets past singleton-jump blocks, so the
	// step loop's resume pc must be recovered from here, not from the
	// (possibly threaded) target dpc. Read only on event bail-outs.
	tPC [][]int32
	// eImm[fn][dpc] is spill space for superinstructions whose dinstr
	// fields are full: branch trios pack the threaded fall edge
	// (landing dpc and both edges' skipped-jump counts) here exactly
	// as dBrN packs its imm; the cmp+sne quads pack the compare's
	// destination register and the edge's skipped-jump count.
	eImm [][]int64
}

// Variant stream keys: bit 0 = PerPC, bit 1 = Trace.
const (
	vPlain  = 0
	vPerPC  = 1
	vTrace  = 2
	vTraceP = 3
)

// funcMeta is the call-path subset of isa.Func, packed into 16 bytes
// so the dispatch loop's call and return machinery reads one compact
// cache line instead of chasing the full Func struct.
type funcMeta struct {
	numI    int32
	numF    int32
	nparams int32
	kind    isa.FuncKind
	intOnly bool // no float parameters: staging is a straight copy loop
}

// Image is a pre-decoded, verified program ready to run. Loading is
// separable from running so callers that execute the same program
// many times (the engine memoizes Images alongside compiles) pay the
// decode and verification cost once. An Image is safe for concurrent
// Run calls.
type Image struct {
	prog     *isa.Program
	fallback bool  // failed verification: Run uses the reference interpreter
	funcBase []int // global pc of each function's first instruction
	blocks   [][]blockInfo
	fmeta    []funcMeta

	// compiled is the ahead-of-time generated body registered for
	// this program (backend.go), bound once at Load; nil when none
	// is registered. Run prefers it over the interpreter unless the
	// backend is disabled.
	compiled CompiledFunc

	mu       sync.Mutex
	variants [4]*variant

	// memPool holds *memBuf pairs from finished runs, dirty-span
	// restored and ready for the next Run (mem.go).
	memPool sync.Pool
}

// Program returns the program this image was pre-decoded from.
// Callers memoizing images can use it to confirm an image still
// belongs to the program they hold.
func (im *Image) Program() *isa.Program { return im.prog }

// Load pre-decodes and verifies p. It never fails: programs with
// statically detectable bad shapes (empty functions, missing
// terminators, out-of-range targets or sites) are marked for the
// reference interpreter instead, which reproduces their trap and
// panic behaviour exactly.
func Load(p *isa.Program) *Image {
	im := &Image{prog: p}
	im.funcBase = make([]int, len(p.Funcs))
	base := 0
	for i := range p.Funcs {
		im.funcBase[i] = base
		base += len(p.Funcs[i].Code)
	}
	if !verify(p) {
		im.fallback = true
		return im
	}
	im.compiled = CompiledFor(p)
	im.fmeta = make([]funcMeta, len(p.Funcs))
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		fm := funcMeta{
			numI:    int32(f.NumIRegs),
			numF:    int32(f.NumFRegs),
			nparams: int32(f.NumParams),
			kind:    f.Kind,
			intOnly: true,
		}
		for pi := 0; pi < f.NumParams && pi < len(f.FParams); pi++ {
			if f.FParams[pi] {
				fm.intOnly = false
				break
			}
		}
		im.fmeta[fi] = fm
	}
	im.blocks = make([][]blockInfo, len(p.Funcs))
	for fi := range p.Funcs {
		im.blocks[fi] = splitBlocks(p.Funcs[fi].Code)
	}
	return im
}

// Prog returns the program this image was loaded from.
func (im *Image) Prog() *isa.Program { return im.prog }

// Fallback reports whether verification failed and runs use the
// reference interpreter.
func (im *Image) Fallback() bool { return im.fallback }

// verify checks every condition the fast path relies on statically.
// Anything dynamic (divide by zero, memory bounds, indirect call
// indices, stack depth, output limits) stays checked at runtime.
func verify(p *isa.Program) bool {
	if len(p.Funcs) == 0 || p.Main < 0 || p.Main >= len(p.Funcs) {
		return false
	}
	for fi := range p.Funcs {
		code := p.Funcs[fi].Code
		if len(code) == 0 || len(code) > math.MaxInt32/2 {
			return false
		}
		if !code[len(code)-1].Op.IsControl() {
			return false
		}
		for i := range code {
			in := &code[i]
			switch in.Op {
			case isa.OpBr:
				if in.Target < 0 || int(in.Target) >= len(code) {
					return false
				}
				if in.Site < 0 || int(in.Site) >= len(p.Sites) {
					return false
				}
			case isa.OpJmp:
				if in.Target < 0 || int(in.Target) >= len(code) {
					return false
				}
			case isa.OpCall:
				if in.Target < 0 || int(in.Target) >= len(p.Funcs) {
					return false
				}
			}
		}
	}
	return true
}

// splitBlocks segments code into basic blocks: leaders are pc 0,
// every branch/jump target, and every instruction after a control
// transfer; blocks additionally split at maxBlockLen so one edge
// never credits more than that.
func splitBlocks(code []isa.Instr) []blockInfo {
	leader := make([]bool, len(code))
	leader[0] = true
	for pc := range code {
		in := &code[pc]
		if in.Op.IsControl() && pc+1 < len(code) {
			leader[pc+1] = true
		}
		switch in.Op {
		case isa.OpBr, isa.OpJmp:
			leader[in.Target] = true
		}
	}
	var blocks []blockInfo
	start := 0
	for pc := 0; pc < len(code); pc++ {
		n := pc - start + 1
		endsBlock := code[pc].Op.IsControl() || n >= maxBlockLen ||
			pc+1 >= len(code) || leader[pc+1]
		if endsBlock {
			blocks = append(blocks, blockInfo{start: int32(start), n: int32(n)})
			start = pc + 1
		}
	}
	return blocks
}

// variant returns the stream specialized for the given configuration,
// building and memoizing it on first use.
func (im *Image) variant(traced, perPC bool) *variant {
	key := 0
	if perPC {
		key |= vPerPC
	}
	if traced {
		key |= vTrace
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	if v := im.variants[key]; v != nil {
		return v
	}
	v := im.build(traced, perPC)
	im.variants[key] = v
	return v
}

// build constructs one specialized stream. The plain stream is
// headerless (control ops carry the accounting); PerPC streams need
// counting headers and traced streams keep every control transfer a
// single traceable dinstr, so both stay headered. Compare+branch
// fusion is disabled in traced streams for the same reason; the
// arithmetic fusions carry no observability and stay on everywhere.
func (im *Image) build(traced, perPC bool) *variant {
	p := im.prog
	nf := len(p.Funcs)
	v := &variant{
		headerless: !traced && !perPC,
		code:       make([][]dinstr, nf),
		hdr:        make([][]int32, nf),
		nAt:        make([][]int32, nf),
		bDpc:       make([][]int32, nf),
		bPC:        make([][]int32, nf),
		bN:         make([][]int32, nf),
		entryDpc:   make([]int32, nf),
		entryN:     make([]int32, nf),
		tPC:        make([][]int32, nf),
		eImm:       make([][]int64, nf),
	}
	for fi := range p.Funcs {
		im.buildFunc(v, fi, traced, perPC)
		v.entryDpc[fi] = v.hdr[fi][0]
		v.entryN[fi] = v.nAt[fi][0]
	}
	// Cross-function patch: direct calls in the headerless stream bake
	// the callee's entry dpc and entry block count in.
	if v.headerless {
		for fi := range v.code {
			code := v.code[fi]
			for i := range code {
				switch code[i].op {
				case dCallN, dMovCallN:
					callee := code[i].target
					code[i].x = v.entryDpc[callee]
					code[i].rem |= uint16(v.entryN[callee]) << 8
				}
			}
		}
	}
	return v
}

// buildFunc translates one function into v's stream and fills the
// function's slots in every variant table.
func (im *Image) buildFunc(v *variant, fi int, traced, perPC bool) {
	code := im.prog.Funcs[fi].Code
	blocks := im.blocks[fi]
	hdr := make([]int32, len(code)+1)
	nAt := make([]int32, len(code)+1)
	for i := range hdr {
		hdr[i] = -1
		nAt[i] = -1
	}
	nAt[len(code)] = 0
	bDpc := make([]int32, len(blocks)+1)
	bPC := make([]int32, len(blocks)+1)
	bN := make([]int32, len(blocks)+1)
	out := make([]dinstr, 0, len(code)+len(blocks)+1)

	headered := traced || perPC
	hop := dBlock
	if perPC {
		hop = dBlockCnt
	}
	for bi, blk := range blocks {
		hdr[blk.start] = int32(len(out))
		nAt[blk.start] = blk.n
		bDpc[bi] = int32(len(out))
		bPC[bi] = blk.start
		bN[bi] = blk.n
		if headered {
			out = append(out, dinstr{op: hop, rem: uint16(blk.n), a: blk.n, x: int32(bi)})
		}
		end := int(blk.start + blk.n)
		for pc := int(blk.start); pc < end; pc++ {
			consumed, d := fuseControl(code, pc, end, v.headerless)
			if consumed == 0 && pc+2 < end {
				consumed, d = fuseTriple(&code[pc], &code[pc+1], &code[pc+2])
			}
			if consumed == 0 && pc+1 < end &&
				!(v.headerless && code[pc+1].Op.IsControl()) {
				consumed, d = fusePair(&code[pc], &code[pc+1], traced)
			}
			if consumed == 0 {
				consumed, d = decodeOne(&code[pc], traced)
			}
			switch d.op {
			case dCall, dCallT, dICall, dICallT:
				// Headered calls stash the return pc in imm (the isa
				// call ops carry no immediate of their own).
				d.imm = int64(pc + 1)
			}
			if d.op != dLdiLdSeqBrN { // rem stashes the load destination
				d.rem = uint16(end - pc - consumed)
			}
			out = append(out, d)
			pc += consumed - 1
		}
		if v.headerless && !code[end-1].Op.IsControl() {
			// A sne or a cmp+sne trio in the final slots merges with the
			// fall edge; rem==0 proves the dinstr covers exactly through
			// end-1. The trio's compare destination moves to rem (a quad
			// needs target for the fall's landing dpc); the patch pass
			// spills it to eImm.
			n := len(out)
			switch {
			case out[n-1].op == dSne && out[n-1].rem == 0:
				out[n-1].op = dSneFall
			case (out[n-1].op == dLdiSltSne || out[n-1].op == dLdiSeqSne) &&
				out[n-1].rem == 0 &&
				out[n-1].target >= 0 && out[n-1].target < 1<<16:
				if out[n-1].op == dLdiSltSne {
					out[n-1].op = dLdiSltSneFall
				} else {
					out[n-1].op = dLdiSeqSneFall
				}
				out[n-1].rem = uint16(out[n-1].target)
			default:
				out = append(out, dinstr{op: dFall})
			}
		}
		// A cmp+sne trio directly before the block's jump merges with
		// it; rem==1 proves the jump is the only instruction after the
		// trio's coverage.
		if v.headerless {
			if n := len(out); n >= 2 && out[n-1].op == dJmpN &&
				(out[n-2].op == dLdiSltSne || out[n-2].op == dLdiSeqSne) &&
				out[n-2].rem == 1 &&
				out[n-2].target >= 0 && out[n-2].target < 1<<16 {
				q := &out[n-2]
				if q.op == dLdiSltSne {
					q.op = dLdiSltSneJmpN
				} else {
					q.op = dLdiSeqSneJmpN
				}
				q.rem = uint16(q.target)
				q.target = out[n-1].target
				out = out[:n-1]
			}
		}
	}
	// Sentinel: control that reaches pc == len(code) (fall-through off
	// the end, or a return past a call in the last slot) resumes the
	// step loop there, which reproduces the fuel check, the poll, and
	// the "pc out of range" trap in exactly the reference order.
	hdr[len(code)] = int32(len(out))
	bDpc[len(blocks)] = int32(len(out))
	bPC[len(blocks)] = int32(len(code))
	out = append(out, dinstr{op: dToStep, a: int32(len(code))})

	// Intra-function patch: convert control targets from original pcs
	// to dpcs and fill in the successor block counts the
	// edge-accounting ops credit. Edges whose dinstr has a spare field
	// are jump-threaded: an edge landing on a chain of singleton-jump
	// blocks is redirected past the chain at build time, crediting
	// every skipped block and bumping Jumps by the chain length, so the
	// jumps never dispatch. On an event bail-out nothing of the chain
	// has been credited or counted and the step loop resumes at the
	// edge's original continuation pc (tPC for taken edges, the block
	// end for fall edges), replaying the chain with exact event order.
	if v.headerless {
		tPC := make([]int32, len(out))
		eImm := make([]int64, len(out))
		// thread follows singleton-jump blocks from the block led by
		// pc. It returns the landing dpc, the total instruction credit
		// (skipped jumps plus the landing block, capped at 255 so it
		// packs into a rem byte), and the number of jumps skipped.
		thread := func(pc int32) (fdpc int32, totalN uint16, nJmp int32) {
			total := nAt[pc]
			seen := map[int32]bool{pc: true}
			for nAt[pc] == 1 && code[pc].Op == isa.OpJmp {
				next := code[pc].Target
				if seen[next] || total+nAt[next] > 255 {
					break
				}
				seen[next] = true
				nJmp++
				total += nAt[next]
				pc = next
			}
			return hdr[pc], uint16(total), nJmp
		}
		for bi := range blocks {
			td := bDpc[bi+1] - 1
			end := bPC[bi] + bN[bi]
			d := &out[td]
			switch d.op {
			case dBrN, dSltBrN, dSleBrN, dSeqBrN, dSneBrN:
				// imm is free: it packs the fall-edge landing dpc and
				// both edges' skipped-jump counts.
				tpc := d.target
				tPC[td] = tpc
				fdT, nT, jT := thread(tpc)
				fdF, nF, jF := thread(end)
				d.target = fdT
				d.rem = nT<<8 | nF
				d.imm = int64(fdF)<<16 | int64(jT)<<8 | int64(jF)
			case dLdiBrN:
				// imm carries the ldi, so only the taken edge (spare
				// field b) threads; the fall edge stays dpc+1.
				tpc := d.target
				tPC[td] = tpc
				fdT, nT, jT := thread(tpc)
				d.target = fdT
				d.rem = nT<<8 | uint16(nAt[end])
				d.b = jT
			case dLdiSltBrN, dLdiSleBrN, dLdiSeqBrN, dLdiSneBrN, dLdiLdSeqBrN:
				// No spare dinstr fields: the fall edge spills to eImm,
				// packed exactly like dBrN's imm. The quad's stashed
				// register bytes (load destination and the seq's other
				// operand) move to eImm's top 16 bits.
				regs := int64(0)
				if d.op == dLdiLdSeqBrN {
					regs = int64(d.rem)
				}
				tpc := d.target
				tPC[td] = tpc
				fdT, nT, jT := thread(tpc)
				fdF, nF, jF := thread(end)
				d.target = fdT
				d.rem = nT<<8 | nF
				eImm[td] = regs<<48 | int64(fdF)<<16 | int64(jT)<<8 | int64(jF)
			case dJmpN, dSneJmpN, dLdiJmpN:
				tpc := d.target
				tPC[td] = tpc
				fd, n, j := thread(tpc)
				d.target = fd
				d.rem = n
				d.x = j
			case dLdiSltSneJmpN, dLdiSeqSneJmpN:
				// rem stashed the compare destination at fusion time; it
				// moves to eImm with the edge's skipped-jump count.
				sltC := int64(d.rem)
				tpc := d.target
				tPC[td] = tpc
				fd, n, j := thread(tpc)
				d.target = fd
				d.rem = n
				eImm[td] = sltC<<16 | int64(j)
			case dFall, dSneFall:
				fd, n, j := thread(end)
				d.target = fd
				d.rem = n
				d.x = j
			case dLdiSltSneFall, dLdiSeqSneFall:
				sltC := int64(d.rem)
				fd, n, j := thread(end)
				d.target = fd
				d.rem = n
				eImm[td] = sltC<<16 | int64(j)
			case dCallN, dMovCallN, dICallN:
				// Return-edge count; dCallN/dMovCallN get the callee
				// entry count ORed in by the cross-function patch.
				d.rem = uint16(nAt[end])
			}
		}
		v.tPC[fi] = tPC
		v.eImm[fi] = eImm
	} else {
		for i := range out {
			switch out[i].op {
			case dBr, dBrT, dJmp, dJmpT, dSltBr, dSleBr, dSeqBr, dSneBr:
				out[i].target = hdr[out[i].target]
			}
		}
	}

	v.code[fi] = out
	v.hdr[fi] = hdr
	v.nAt[fi] = nAt
	v.bDpc[fi] = bDpc
	v.bPC[fi] = bPC
	v.bN[fi] = bN
}

// fuseControl fuses a block terminator (and up to two predecessors)
// into an edge-accounting superinstruction for the headerless stream.
// Branch targets are left as original pcs; the patch pass converts
// them to dpcs and fills the packed successor counts. It returns 0
// when the position is not a fusible terminator.
func fuseControl(code []isa.Instr, pc, end int, headerless bool) (int, dinstr) {
	if !headerless {
		return 0, dinstr{}
	}
	last := end - 1
	if !code[last].Op.IsControl() {
		return 0, dinstr{}
	}
	t := &code[last]
	// Quad: ldi ; ld ; seq with the loaded value as one operand ; br on
	// the compare. The other seq operand is read from its register at
	// execution time (after both writes, so aliasing with either
	// destination stays sequential). Field pressure: imm carries the
	// ldi and b the full load offset, so the load destination and the
	// other operand ride in rem as bytes until the patch pass spills
	// them to eImm's top bits.
	if pc == last-3 && code[pc].Op == isa.OpLdi && code[pc+1].Op == isa.OpLd &&
		code[pc+2].Op == isa.OpSeq && t.Op == isa.OpBr {
		ldi, ld, seq := &code[pc], &code[pc+1], &code[pc+2]
		other := int32(-1)
		switch ld.C {
		case seq.A:
			other = seq.B
		case seq.B:
			other = seq.A
		}
		if t.A == seq.C && other >= 0 && other < 1<<8 &&
			int64(int32(ld.Imm)) == ld.Imm &&
			ld.C >= 0 && ld.C < 1<<8 && seq.C >= 0 && seq.C < 1<<16 &&
			t.Site >= 0 && t.Site < 1<<16 {
			return 4, dinstr{op: dLdiLdSeqBrN, c: ldi.C, imm: ldi.Imm,
				a: ld.A, b: int32(ld.Imm), x: t.Site<<16 | seq.C,
				target: t.Target, rem: uint16(ld.C)<<8 | uint16(other)}
		}
		return 0, dinstr{}
	}
	// Triple: ldi ; cmp ; br on the compare's result. The site and the
	// compare's destination share x, so both must fit 16 bits.
	if pc == last-2 && code[pc].Op == isa.OpLdi && t.Op == isa.OpBr {
		cmp := &code[pc+1]
		var op dop
		switch cmp.Op {
		case isa.OpSlt:
			op = dLdiSltBrN
		case isa.OpSle:
			op = dLdiSleBrN
		case isa.OpSeq:
			op = dLdiSeqBrN
		case isa.OpSne:
			op = dLdiSneBrN
		}
		if op != 0 && t.A == cmp.C &&
			cmp.C >= 0 && cmp.C < 1<<16 && t.Site >= 0 && t.Site < 1<<16 {
			return 3, dinstr{op: op, c: code[pc].C, imm: code[pc].Imm,
				a: cmp.A, b: cmp.B, x: t.Site<<16 | cmp.C, target: t.Target}
		}
		return 0, dinstr{}
	}
	if pc == last-1 {
		switch {
		case t.Op == isa.OpBr && t.A == code[pc].C &&
			(code[pc].Op == isa.OpSlt || code[pc].Op == isa.OpSle ||
				code[pc].Op == isa.OpSeq || code[pc].Op == isa.OpSne):
			var op dop
			switch code[pc].Op {
			case isa.OpSlt:
				op = dSltBrN
			case isa.OpSle:
				op = dSleBrN
			case isa.OpSeq:
				op = dSeqBrN
			default:
				op = dSneBrN
			}
			return 2, dinstr{op: op, a: code[pc].A, b: code[pc].B, c: code[pc].C,
				x: t.Site, target: t.Target}
		case t.Op == isa.OpBr && code[pc].Op == isa.OpLdi:
			return 2, dinstr{op: dLdiBrN, c: code[pc].C, imm: code[pc].Imm,
				a: t.A, x: t.Site, target: t.Target}
		case t.Op == isa.OpCall && code[pc].Op == isa.OpMov &&
			code[pc].A >= 0 && code[pc].A < 1<<16 && code[pc].C >= 0 && code[pc].C < 1<<16:
			// imm packs the return pc (high 32) and the mov's source
			// and destination registers (low 32).
			return 2, dinstr{op: dMovCallN, a: t.A, b: t.B, c: t.C, target: t.Target,
				imm: int64(end)<<32 | int64(code[pc].A)<<16 | int64(code[pc].C)}
		case t.Op == isa.OpRet && code[pc].Op == isa.OpLdi:
			return 2, dinstr{op: dLdiRetN, c: code[pc].C, imm: code[pc].Imm, a: t.A}
		case t.Op == isa.OpRet && code[pc].Op == isa.OpLd:
			return 2, dinstr{op: dLdRetN, a: code[pc].A, imm: code[pc].Imm,
				c: code[pc].C, x: t.A}
		case t.Op == isa.OpRet && code[pc].Op == isa.OpSt:
			return 2, dinstr{op: dStRetN, a: code[pc].A, imm: code[pc].Imm,
				b: code[pc].B, x: t.A}
		case t.Op == isa.OpJmp && code[pc].Op == isa.OpSne:
			return 2, dinstr{op: dSneJmpN, a: code[pc].A, b: code[pc].B,
				c: code[pc].C, target: t.Target}
		case t.Op == isa.OpJmp && code[pc].Op == isa.OpLdi:
			return 2, dinstr{op: dLdiJmpN, c: code[pc].C, imm: code[pc].Imm,
				target: t.Target}
		}
		return 0, dinstr{}
	}
	if pc != last {
		return 0, dinstr{}
	}
	switch t.Op {
	case isa.OpBr:
		return 1, dinstr{op: dBrN, a: t.A, x: t.Site, target: t.Target}
	case isa.OpJmp:
		return 1, dinstr{op: dJmpN, target: t.Target}
	case isa.OpCall:
		return 1, dinstr{op: dCallN, a: t.A, b: t.B, c: t.C, target: t.Target,
			imm: int64(end)}
	case isa.OpICall:
		return 1, dinstr{op: dICallN, a: t.A, b: t.B, c: t.C, imm: int64(end)}
	case isa.OpRet:
		return 1, dinstr{op: dRetN, a: t.A}
	}
	return 0, dinstr{}
}

// fuseTriple fuses ldi ; cmp ; sne-on-the-compare into one dinstr.
// None of the three can trap, and the halves execute in original
// order with register reads after prior writes, so values and panics
// are position-identical. The sne's destination and its non-compare
// operand share x, so both must fit 16 bits.
func fuseTriple(a, b, c *isa.Instr) (int, dinstr) {
	if a.Op != isa.OpLdi || c.Op != isa.OpSne {
		return 0, dinstr{}
	}
	var op dop
	switch b.Op {
	case isa.OpSlt:
		op = dLdiSltSne
	case isa.OpSeq:
		op = dLdiSeqSne
	default:
		return 0, dinstr{}
	}
	var other int32
	switch b.C {
	case c.A:
		other = c.B
	case c.B:
		other = c.A
	default:
		return 0, dinstr{}
	}
	if other < 0 || other >= 1<<16 || c.C < 0 || c.C >= 1<<16 {
		return 0, dinstr{}
	}
	return 3, dinstr{op: op, c: a.C, imm: a.Imm, a: b.A, b: b.B,
		target: b.C, x: c.C<<16 | other}
}

// fusePair tries to fuse code[pc] and code[pc+1] (both inside one
// block, neither a control transfer the headerless stream handles)
// into a superinstruction. It returns the number of original
// instructions consumed (0 when no fusion applies). Fused forms
// execute both halves' register and memory effects in the original
// order, so values and panics are position-identical; forms that
// forward the first half's result only fire when the second half
// reads it, and only for value-symmetric consumers.
func fusePair(a, b *isa.Instr, traced bool) (int, dinstr) {
	switch a.Op {
	case isa.OpSlt, isa.OpSle, isa.OpSeq, isa.OpSne:
		// compare+branch for headered untraced (PerPC) streams; traced
		// streams keep branches standalone. The headerless stream
		// handles this in fuseControl.
		if b.Op == isa.OpBr && b.A == a.C && !traced {
			var op dop
			switch a.Op {
			case isa.OpSlt:
				op = dSltBr
			case isa.OpSle:
				op = dSleBr
			case isa.OpSeq:
				op = dSeqBr
			default:
				op = dSneBr
			}
			return 2, dinstr{op: op, a: a.A, b: a.B, c: a.C, x: b.Site, target: b.Target}
		}
		if b.Op == isa.OpSne {
			other := int32(-1)
			if b.A == a.C {
				other = b.B
			} else if b.B == a.C {
				other = b.A
			} else {
				return 0, dinstr{}
			}
			if a.Op == isa.OpSlt {
				return 2, dinstr{op: dSltSne, a: a.A, b: a.B, c: a.C, x: b.C, target: other}
			}
			if a.Op == isa.OpSeq {
				return 2, dinstr{op: dSeqSne, a: a.A, b: a.B, c: a.C, x: b.C, target: other}
			}
		}
		return 0, dinstr{}
	case isa.OpLdi:
		var op dop
		switch b.Op {
		case isa.OpAdd:
			op = dLdiAdd
		case isa.OpSub:
			op = dLdiSub
		case isa.OpMul:
			op = dLdiMul
		case isa.OpSlt:
			op = dLdiSlt
		case isa.OpSle:
			op = dLdiSle
		case isa.OpSeq:
			op = dLdiSeq
		case isa.OpSne:
			op = dLdiSne
		case isa.OpLd:
			if int64(int32(b.Imm)) == b.Imm {
				return 2, dinstr{op: dLdiLd, c: a.C, imm: a.Imm,
					b: b.A, x: b.C, target: int32(b.Imm)}
			}
			return 0, dinstr{}
		default:
			return 0, dinstr{}
		}
		return 2, dinstr{op: op, c: a.C, imm: a.Imm, a: b.A, b: b.B, x: b.C}
	case isa.OpLd:
		switch b.Op {
		case isa.OpAdd:
			// The add consumes the loaded value; addition commutes, so
			// normalize the loaded value to the left operand.
			other := int32(-1)
			if b.A == a.C {
				other = b.B
			} else if b.B == a.C {
				other = b.A
			} else {
				return 0, dinstr{}
			}
			return 2, dinstr{op: dLdAdd, a: a.A, imm: a.Imm, c: a.C, b: other, x: b.C}
		case isa.OpMov:
			return 2, dinstr{op: dLdMov, a: a.A, imm: a.Imm, c: a.C, x: b.C, target: b.A}
		case isa.OpSlt:
			return 2, dinstr{op: dLdSlt, a: a.A, imm: a.Imm, c: a.C,
				b: b.A, target: b.B, x: b.C}
		case isa.OpSeq:
			return 2, dinstr{op: dLdSeq, a: a.A, imm: a.Imm, c: a.C,
				b: b.A, target: b.B, x: b.C}
		case isa.OpLd:
			if int64(int32(a.Imm)) == a.Imm {
				return 2, dinstr{op: dLdLd, a: a.A, c: a.C, target: int32(a.Imm),
					b: b.A, x: b.C, imm: b.Imm}
			}
		}
		return 0, dinstr{}
	case isa.OpMul:
		if b.Op == isa.OpAdd {
			other := int32(-1)
			if b.A == a.C {
				other = b.B
			} else if b.B == a.C {
				other = b.A
			} else {
				return 0, dinstr{}
			}
			return 2, dinstr{op: dMulAdd, a: a.A, b: a.B, c: a.C, x: b.C, target: other}
		}
		return 0, dinstr{}
	case isa.OpAdd:
		switch b.Op {
		case isa.OpMov:
			return 2, dinstr{op: dAddMov, a: a.A, b: a.B, c: a.C, x: b.C, target: b.A}
		case isa.OpFLd:
			if b.A == a.C {
				return 2, dinstr{op: dAddFld, a: a.A, b: a.B, c: a.C, x: b.C, imm: b.Imm}
			}
		}
		return 0, dinstr{}
	case isa.OpFLd:
		switch b.Op {
		case isa.OpFMul:
			other := int32(-1)
			if b.A == a.C {
				other = b.B
			} else if b.B == a.C {
				other = b.A
			} else {
				return 0, dinstr{}
			}
			return 2, dinstr{op: dFldMul, a: a.A, imm: a.Imm, c: a.C, x: b.C, target: other}
		case isa.OpLdi:
			if int64(int32(a.Imm)) == a.Imm {
				return 2, dinstr{op: dFldLdi, a: a.A, c: a.C, target: int32(a.Imm),
					x: b.C, imm: b.Imm}
			}
		}
		return 0, dinstr{}
	case isa.OpFMul:
		if b.Op == isa.OpFAdd {
			other := int32(-1)
			if b.A == a.C {
				other = b.B
			} else if b.B == a.C {
				other = b.A
			} else {
				return 0, dinstr{}
			}
			return 2, dinstr{op: dFMulAdd, a: a.A, b: a.B, c: a.C, x: b.C, target: other}
		}
		return 0, dinstr{}
	case isa.OpFAdd:
		if b.Op == isa.OpFMov {
			return 2, dinstr{op: dFAddMov, a: a.A, b: a.B, c: a.C, x: b.C, target: b.A}
		}
		return 0, dinstr{}
	case isa.OpFMov:
		if b.Op == isa.OpLdi {
			return 2, dinstr{op: dFMovLdi, a: a.A, c: a.C, x: b.C, imm: b.Imm}
		}
		return 0, dinstr{}
	case isa.OpMov:
		if b.Op == isa.OpLdi {
			return 2, dinstr{op: dMovLdi, a: a.A, c: a.C, x: b.C, imm: b.Imm}
		}
		return 0, dinstr{}
	}
	return 0, dinstr{}
}

// decodeOne translates a single instruction. Operand fields keep the
// reference interpreter's roles; only targets (patched to dpcs
// afterwards) and the float immediate (carried as bits) change shape.
func decodeOne(in *isa.Instr, traced bool) (int, dinstr) {
	d := dinstr{a: in.A, b: in.B, c: in.C, imm: in.Imm}
	switch in.Op {
	case isa.OpNop:
		d.op = dNop
	case isa.OpAdd:
		d.op = dAdd
	case isa.OpSub:
		d.op = dSub
	case isa.OpMul:
		d.op = dMul
	case isa.OpDiv:
		d.op = dDiv
	case isa.OpRem:
		d.op = dRem
	case isa.OpAnd:
		d.op = dAnd
	case isa.OpOr:
		d.op = dOr
	case isa.OpXor:
		d.op = dXor
	case isa.OpShl:
		d.op = dShl
	case isa.OpShr:
		d.op = dShr
	case isa.OpNeg:
		d.op = dNeg
	case isa.OpNot:
		d.op = dNot
	case isa.OpSlt:
		d.op = dSlt
	case isa.OpSle:
		d.op = dSle
	case isa.OpSeq:
		d.op = dSeq
	case isa.OpSne:
		d.op = dSne
	case isa.OpFAdd:
		d.op = dFAdd
	case isa.OpFSub:
		d.op = dFSub
	case isa.OpFMul:
		d.op = dFMul
	case isa.OpFDiv:
		d.op = dFDiv
	case isa.OpFNeg:
		d.op = dFNeg
	case isa.OpFSlt:
		d.op = dFSlt
	case isa.OpFSle:
		d.op = dFSle
	case isa.OpFSeq:
		d.op = dFSeq
	case isa.OpFSne:
		d.op = dFSne
	case isa.OpCvtIF:
		d.op = dCvtIF
	case isa.OpCvtFI:
		d.op = dCvtFI
	case isa.OpLdi:
		d.op = dLdi
	case isa.OpLdf:
		d.op = dLdf
		d.imm = int64(math.Float64bits(in.FImm))
	case isa.OpMov:
		d.op = dMov
	case isa.OpFMov:
		d.op = dFMov
	case isa.OpLd:
		d.op = dLd
	case isa.OpSt:
		d.op = dSt
	case isa.OpFLd:
		d.op = dFLd
	case isa.OpFSt:
		d.op = dFSt
	case isa.OpBr:
		d.op = dBr
		if traced {
			d.op = dBrT
		}
		d.x = in.Site
		d.target = in.Target
	case isa.OpJmp:
		d.op = dJmp
		if traced {
			d.op = dJmpT
		}
		d.target = in.Target
	case isa.OpCall:
		d.op = dCall
		if traced {
			d.op = dCallT
		}
		d.target = in.Target
	case isa.OpICall:
		d.op = dICall
		if traced {
			d.op = dICallT
		}
	case isa.OpRet:
		d.op = dRet
		if traced {
			d.op = dRetT
		}
	case isa.OpGetc:
		d.op = dGetc
	case isa.OpPutc:
		d.op = dPutc
	case isa.OpHalt:
		d.op = dHalt
	case isa.OpSqrt:
		d.op = dSqrt
	case isa.OpSin:
		d.op = dSin
	case isa.OpCos:
		d.op = dCos
	case isa.OpExp:
		d.op = dExp
	case isa.OpLog:
		d.op = dLog
	case isa.OpFAbs:
		d.op = dFAbs
	case isa.OpFloor:
		d.op = dFloor
	case isa.OpPow:
		d.op = dPow
	case isa.OpSel:
		d.op = dSel
	case isa.OpFSel:
		d.op = dFSel
	default:
		d.op = dBadOp
		d.imm = int64(in.Op)
	}
	return 1, d
}

package vm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"branchprof/internal/isa"
)

// prog wraps a single main function into a runnable program.
func prog(code []isa.Instr, iregs, fregs int, sites int) *isa.Program {
	p := &isa.Program{
		Funcs: []isa.Func{{
			Name: "main", Kind: isa.FuncInt,
			NumIRegs: iregs, NumFRegs: fregs, Code: code,
		}},
		Main: 0, IntMem: 16, FloatMem: 16,
	}
	for i := 0; i < sites; i++ {
		p.Sites = append(p.Sites, isa.BranchSite{ID: i, Func: "main"})
	}
	return p
}

func run(t *testing.T, p *isa.Program, input []byte, cfg *Config) *Result {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := Run(p, input, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestIntArithmetic(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.OpAdd, 7, 5, 12},
		{isa.OpSub, 7, 5, 2},
		{isa.OpMul, 7, 5, 35},
		{isa.OpDiv, 7, 5, 1},
		{isa.OpDiv, -7, 5, -1},
		{isa.OpRem, 7, 5, 2},
		{isa.OpRem, -7, 5, -2},
		{isa.OpAnd, 0b1100, 0b1010, 0b1000},
		{isa.OpOr, 0b1100, 0b1010, 0b1110},
		{isa.OpXor, 0b1100, 0b1010, 0b0110},
		{isa.OpShl, 3, 4, 48},
		{isa.OpShr, -16, 2, -4},
		{isa.OpSlt, 3, 4, 1},
		{isa.OpSlt, 4, 3, 0},
		{isa.OpSle, 4, 4, 1},
		{isa.OpSeq, 4, 4, 1},
		{isa.OpSne, 4, 4, 0},
	}
	for _, c := range cases {
		p := prog([]isa.Instr{
			{Op: isa.OpLdi, C: 0, Imm: c.a},
			{Op: isa.OpLdi, C: 1, Imm: c.b},
			{Op: c.op, C: 2, A: 0, B: 1},
			{Op: isa.OpRet, A: 2},
		}, 3, 0, 0)
		res := run(t, p, nil, nil)
		if res.ExitCode != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, res.ExitCode, c.want)
		}
		if res.Instrs != 4 {
			t.Errorf("%v: executed %d instructions, want 4", c.op, res.Instrs)
		}
	}
}

func TestFloatOpsAndConversion(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdf, C: 0, FImm: 2.25},
		{Op: isa.OpLdf, C: 1, FImm: 4.0},
		{Op: isa.OpFMul, C: 2, A: 0, B: 1}, // 9.0
		{Op: isa.OpSqrt, C: 3, A: 2},       // 3.0
		{Op: isa.OpCvtFI, C: 0, A: 3},
		{Op: isa.OpRet, A: 0},
	}, 1, 4, 0)
	res := run(t, p, nil, nil)
	if res.ExitCode != 3 {
		t.Errorf("sqrt(2.25*4) = %d, want 3", res.ExitCode)
	}
}

func TestBranchCounting(t *testing.T) {
	// Loop 5 times using a conditional branch; site 0 should be
	// taken 5 times, not taken once.
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 0},     // i = 0
		{Op: isa.OpLdi, C: 1, Imm: 5},     // n = 5
		{Op: isa.OpLdi, C: 3, Imm: 1},     // one
		{Op: isa.OpAdd, C: 0, A: 0, B: 3}, // i++
		{Op: isa.OpSlt, C: 2, A: 0, B: 1}, // i < n
		{Op: isa.OpBr, A: 2, Target: 3, Site: 0},
		{Op: isa.OpRet, A: 0},
	}, 4, 0, 1)
	res := run(t, p, nil, nil)
	if res.ExitCode != 5 {
		t.Fatalf("exit = %d, want 5", res.ExitCode)
	}
	if res.SiteTotal[0] != 5 || res.SiteTaken[0] != 4 {
		t.Errorf("site 0 = %d/%d, want 4 taken of 5", res.SiteTaken[0], res.SiteTotal[0])
	}
}

func TestMemoryAndIO(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpGetc, C: 0},
		{Op: isa.OpLdi, C: 1, Imm: 0},
		{Op: isa.OpSt, A: 1, B: 0, Imm: 3}, // imem[3] = input byte
		{Op: isa.OpLd, C: 2, A: 1, Imm: 3},
		{Op: isa.OpPutc, A: 2},
		{Op: isa.OpGetc, C: 0}, // EOF -> -1
		{Op: isa.OpRet, A: 0},
	}, 3, 0, 0)
	res := run(t, p, []byte("Q"), nil)
	if string(res.Output) != "Q" {
		t.Errorf("output = %q, want Q", res.Output)
	}
	if res.ExitCode != -1 {
		t.Errorf("EOF getc = %d, want -1", res.ExitCode)
	}
}

func TestTrapDivideByZero(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 1},
		{Op: isa.OpLdi, C: 1, Imm: 0},
		{Op: isa.OpDiv, C: 2, A: 0, B: 1},
		{Op: isa.OpRet, A: 2},
	}, 3, 0, 0)
	_, err := Run(p, nil, nil)
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("expected RuntimeError, got %v", err)
	}
	if !strings.Contains(re.Error(), "divide by zero") {
		t.Errorf("error = %v, want divide by zero", re)
	}
}

func TestTrapOutOfRangeLoad(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 99999},
		{Op: isa.OpLd, C: 1, A: 0},
		{Op: isa.OpRet, A: 1},
	}, 2, 0, 0)
	if _, err := Run(p, nil, nil); err == nil {
		t.Fatal("expected out-of-range trap")
	}
	p = prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: -1},
		{Op: isa.OpSt, A: 0, B: 0},
		{Op: isa.OpRet, A: 0},
	}, 1, 0, 0)
	if _, err := Run(p, nil, nil); err == nil {
		t.Fatal("expected negative-address trap")
	}
}

func TestFuelExhaustion(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpJmp, Target: 0},
		{Op: isa.OpRet, A: 0},
	}, 1, 0, 0)
	_, err := Run(p, nil, &Config{Fuel: 1000})
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("expected ErrFuel, got %v", err)
	}
}

func TestCallsAndReturns(t *testing.T) {
	// main calls fn directly then indirectly; fn doubles its argument.
	fn := isa.Func{
		Name: "double", Kind: isa.FuncInt, NumParams: 1, NumIRegs: 2,
		FParams: []bool{false},
		Code: []isa.Instr{
			{Op: isa.OpAdd, C: 1, A: 0, B: 0},
			{Op: isa.OpRet, A: 1},
		},
	}
	main := isa.Func{
		Name: "main", Kind: isa.FuncInt, NumIRegs: 4,
		Code: []isa.Instr{
			{Op: isa.OpLdi, C: 0, Imm: 21},
			{Op: isa.OpCall, A: 0, B: 0, C: 1, Target: 1}, // direct
			{Op: isa.OpLdi, C: 2, Imm: 1},                 // function index of fn
			{Op: isa.OpICall, A: 2, B: 1, C: 3},           // indirect: double(42)
			{Op: isa.OpRet, A: 3},
		},
	}
	p := &isa.Program{Funcs: []isa.Func{main, fn}, Main: 0, IntMem: 1, FloatMem: 1}
	res := run(t, p, nil, nil)
	if res.ExitCode != 84 {
		t.Fatalf("exit = %d, want 84", res.ExitCode)
	}
	if res.DirectCalls != 1 || res.IndirectCalls != 1 {
		t.Errorf("calls = %d direct %d indirect, want 1/1", res.DirectCalls, res.IndirectCalls)
	}
	if res.DirectReturns != 1 || res.IndirectReturns != 1 {
		t.Errorf("returns = %d direct %d indirect, want 1/1", res.DirectReturns, res.IndirectReturns)
	}
	if res.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", res.MaxDepth)
	}
}

func TestStackOverflowTrap(t *testing.T) {
	// main calls itself forever.
	p := &isa.Program{
		Funcs: []isa.Func{{
			Name: "main", Kind: isa.FuncInt, NumIRegs: 1,
			Code: []isa.Instr{
				{Op: isa.OpCall, C: 0, Target: 0},
				{Op: isa.OpRet, A: 0},
			},
		}},
		Main: 0, IntMem: 1, FloatMem: 1,
	}
	_, err := Run(p, nil, &Config{MaxDepth: 50})
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("expected stack overflow, got %v", err)
	}
}

func TestIndirectCallBadIndexTrap(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 42},
		{Op: isa.OpICall, A: 0, B: 0, C: 1},
		{Op: isa.OpRet, A: 1},
	}, 2, 0, 0)
	if _, err := Run(p, nil, nil); err == nil {
		t.Fatal("expected bad function index trap")
	}
}

func TestPerPCCounts(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 0},
		{Op: isa.OpLdi, C: 1, Imm: 3},
		{Op: isa.OpLdi, C: 3, Imm: 1},
		{Op: isa.OpAdd, C: 0, A: 0, B: 3},
		{Op: isa.OpSlt, C: 2, A: 0, B: 1},
		{Op: isa.OpBr, A: 2, Target: 3, Site: 0},
		{Op: isa.OpRet, A: 0},
	}, 4, 0, 1)
	res := run(t, p, nil, &Config{PerPC: true})
	if res.PerPC == nil {
		t.Fatal("expected per-PC counts")
	}
	if res.PerPC[0][3] != 3 {
		t.Errorf("loop body executed %d times, want 3", res.PerPC[0][3])
	}
	var sum uint64
	for _, c := range res.PerPC[0] {
		sum += c
	}
	if sum != res.Instrs {
		t.Errorf("per-PC counts sum to %d, total is %d", sum, res.Instrs)
	}
}

func TestOutputLimit(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 'x'},
		{Op: isa.OpPutc, A: 0},
		{Op: isa.OpJmp, Target: 1},
		{Op: isa.OpRet, A: 0},
	}, 1, 0, 0)
	_, err := Run(p, nil, &Config{MaxOutput: 100})
	if err == nil || !strings.Contains(err.Error(), "output limit") {
		t.Fatalf("expected output limit trap, got %v", err)
	}
}

func TestCvtFIOverflowTrap(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdf, C: 0, FImm: math.Inf(1)},
		{Op: isa.OpCvtFI, C: 0, A: 0},
		{Op: isa.OpRet, A: 0},
	}, 1, 1, 0)
	if _, err := Run(p, nil, nil); err == nil {
		t.Fatal("expected conversion trap on +Inf")
	}
}

func TestHaltStopsExecution(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 9},
		{Op: isa.OpHalt, A: 0},
		{Op: isa.OpLdi, C: 0, Imm: 1},
		{Op: isa.OpRet, A: 0},
	}, 1, 0, 0)
	res := run(t, p, nil, nil)
	if res.ExitCode != 9 {
		t.Errorf("exit = %d, want 9", res.ExitCode)
	}
	if res.Instrs != 2 {
		t.Errorf("instrs = %d, want 2", res.Instrs)
	}
}

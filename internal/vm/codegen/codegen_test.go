package codegen

import (
	"bytes"
	"strings"
	"testing"

	"branchprof/internal/isa"
)

func okProg() *isa.Program {
	return &isa.Program{
		Source: "t",
		IntMem: 4,
		Funcs: []isa.Func{{
			Name: "main", Kind: isa.FuncInt, NumIRegs: 4,
			Code: []isa.Instr{
				{Op: isa.OpLdi, C: 0, Imm: 42, Site: -1},
				{Op: isa.OpRet, A: 0, Site: -1},
			},
		}},
	}
}

func TestSupportedAccepts(t *testing.T) {
	if err := Supported(okProg()); err != nil {
		t.Fatal(err)
	}
}

// TestSupportedDeclines: each condition whose violation the reference
// interpreter answers with a Go panic (not a defined trap) must be
// declined, so the program keeps its exact behaviour on the
// interpreter instead of being compiled.
func TestSupportedDeclines(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *isa.Program)
		want string
	}{
		{"no-funcs", func(p *isa.Program) { p.Funcs = nil }, "no functions"},
		{"bad-main", func(p *isa.Program) { p.Main = 3 }, "main index"},
		{"no-terminator", func(p *isa.Program) {
			p.Funcs[0].Code = []isa.Instr{{Op: isa.OpLdi, C: 0, Site: -1}}
		}, "control transfer"},
		{"operand-oob", func(p *isa.Program) {
			p.Funcs[0].Code[0].C = 99
		}, "operand register"},
		{"branch-target-oob", func(p *isa.Program) {
			p.Sites = []isa.BranchSite{{ID: 0, Func: "main"}}
			p.Funcs[0].Code[0] = isa.Instr{Op: isa.OpBr, A: 0, Target: 9, Site: 0}
		}, "branch target"},
		{"branch-site-oob", func(p *isa.Program) {
			p.Funcs[0].Code[0] = isa.Instr{Op: isa.OpBr, A: 0, Target: 1, Site: 5}
		}, "branch site"},
		{"call-target-oob", func(p *isa.Program) {
			p.Funcs[0].Code[0] = isa.Instr{Op: isa.OpCall, Target: 7, C: -1, Site: -1}
		}, "call target"},
		{"call-window-oob", func(p *isa.Program) {
			p.Funcs = append(p.Funcs, isa.Func{
				Name: "g", Kind: isa.FuncVoid, NumParams: 2, NumIRegs: 4,
				Code: []isa.Instr{{Op: isa.OpRet, Site: -1}},
			})
			p.Funcs[0].Code[0] = isa.Instr{Op: isa.OpCall, Target: 1, A: 3, C: -1, Site: -1}
		}, "argument window"},
		{"params-exceed-frame", func(p *isa.Program) {
			p.Funcs[0].NumParams = 9
		}, "parameters exceed"},
		{"ret-reg-oob", func(p *isa.Program) {
			p.Funcs[0].Code[1].A = 44
		}, "return register"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := okProg()
			tc.mut(p)
			err := Supported(p)
			if err == nil {
				t.Fatalf("Supported accepted a %s program", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if _, gerr := Generate(p, Options{Package: "x", Symbol: "x"}); gerr == nil {
				t.Fatalf("Generate accepted a %s program", tc.name)
			}
		})
	}
}

// TestGenerateDeterministic: identical programs generate identical
// bytes — the property behind the gencheck freshness gate.
func TestGenerateDeterministic(t *testing.T) {
	opts := Options{Package: "pkg", Symbol: "sym", Digest: "d", BuildTag: "!tag"}
	a, err := Generate(okProg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(okProg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Generate is nondeterministic")
	}
	for _, want := range []string{
		"package pkg", "//go:build !tag",
		`vm.RegisterCompiled("d", symRun)`,
		"func symMain(st *cgrt.State)",
		"func sym_f0(", "func sym_f0t(",
		"st.Instrumented()",
	} {
		if !strings.Contains(string(a), want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	// The plain variant must not reference the tracer or per-pc rows.
	plain := string(a[strings.Index(string(a), "func sym_f0("):strings.Index(string(a), "func sym_f0t(")])
	for _, banned := range []string{"st.Tr", "PerPCFor", "pcc"} {
		if strings.Contains(plain, banned) {
			t.Errorf("plain variant references %q:\n%s", banned, plain)
		}
	}
}

// TestGenerateSkipsMathImport: a program whose only math-needing op is
// dead code must not import math (it would not compile).
func TestGenerateSkipsMathImport(t *testing.T) {
	p := okProg()
	p.Funcs[0].NumFRegs = 2
	p.Funcs[0].Code = []isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 1, Site: -1},
		{Op: isa.OpRet, A: 0, Site: -1},
		{Op: isa.OpSqrt, A: 0, C: 1, Site: -1}, // unreachable
		{Op: isa.OpRet, A: 0, Site: -1},
	}
	src, err := Generate(p, Options{Package: "x", Symbol: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), `"math"`) {
		t.Fatal("dead math op forced the math import")
	}
}

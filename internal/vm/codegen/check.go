package codegen

import (
	"fmt"
	"math"

	"branchprof/internal/isa"
)

// paramCounts splits a function's parameter list the way the
// interpreter's staging loop does: parameters at or beyond
// len(FParams) are integers.
func paramCounts(f *isa.Func) (ints, floats int) {
	for pi := 0; pi < f.NumParams; pi++ {
		if pi < len(f.FParams) && f.FParams[pi] {
			floats++
		} else {
			ints++
		}
	}
	return ints, floats
}

// stagedBeforeFloat returns how many integer parameters the
// interpreter stages before hitting the first float parameter (all of
// them when the function has none) — the reads an indirect call
// performs before it either completes staging or traps.
func stagedBeforeFloat(f *isa.Func) (ints int, hasFloat bool) {
	for pi := 0; pi < f.NumParams; pi++ {
		if pi < len(f.FParams) && f.FParams[pi] {
			return ints, true
		}
		ints++
	}
	return ints, false
}

// regOK reports whether operand index x is a valid register of class
// cl in function f.
func regOK(f *isa.Func, cl isa.RegClass, x int32) bool {
	switch cl {
	case isa.RegInt:
		return x >= 0 && int(x) < f.NumIRegs
	case isa.RegFloat:
		return x >= 0 && int(x) < f.NumFRegs
	}
	return true
}

// Supported reports whether p is inside the envelope the generator
// compiles, returning a descriptive error when it is not. The
// envelope is the fast interpreter's static verification plus every
// condition whose violation the reference interpreter answers with a
// Go panic rather than a defined trap (out-of-range operand register
// indices, argument windows escaping the caller's frame, staged
// parameters escaping the callee's frame): such programs keep their
// exact behaviour by running on the interpreter instead. All 15
// workload analogues and every program the differential fuzzer
// generates are inside the envelope.
func Supported(p *isa.Program) error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("codegen: no functions")
	}
	if p.Main < 0 || p.Main >= len(p.Funcs) {
		return fmt.Errorf("codegen: main index %d out of range", p.Main)
	}
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		if f.NumIRegs < 0 || f.NumFRegs < 0 {
			return fmt.Errorf("codegen: %s: negative register count", f.Name)
		}
		ints, floats := paramCounts(f)
		if ints > f.NumIRegs || floats > f.NumFRegs {
			return fmt.Errorf("codegen: %s: parameters exceed register frame", f.Name)
		}
		code := f.Code
		if len(code) == 0 || len(code) > math.MaxInt32/2 {
			return fmt.Errorf("codegen: %s: bad code length %d", f.Name, len(code))
		}
		if !code[len(code)-1].Op.IsControl() {
			return fmt.Errorf("codegen: %s: does not end in a control transfer", f.Name)
		}
		for pc := range code {
			in := &code[pc]
			if !in.Op.Valid() {
				return fmt.Errorf("codegen: %s+%d: invalid op %d", f.Name, pc, in.Op)
			}
			m := in.Op.Meta()
			// OpCall/OpICall overload A/B/C as windows, checked below.
			if in.Op != isa.OpCall && in.Op != isa.OpICall {
				if !regOK(f, m.A, in.A) || !regOK(f, m.B, in.B) || !regOK(f, m.C, in.C) {
					return fmt.Errorf("codegen: %s+%d: operand register out of range", f.Name, pc)
				}
			}
			if m.SelImm && !regOK(f, m.ImmReg, int32(in.Imm)) {
				return fmt.Errorf("codegen: %s+%d: select register out of range", f.Name, pc)
			}
			switch in.Op {
			case isa.OpBr:
				if in.Target < 0 || int(in.Target) >= len(code) {
					return fmt.Errorf("codegen: %s+%d: branch target out of range", f.Name, pc)
				}
				if in.Site < 0 || int(in.Site) >= len(p.Sites) {
					return fmt.Errorf("codegen: %s+%d: branch site out of range", f.Name, pc)
				}
			case isa.OpJmp:
				if in.Target < 0 || int(in.Target) >= len(code) {
					return fmt.Errorf("codegen: %s+%d: jump target out of range", f.Name, pc)
				}
			case isa.OpRet:
				switch f.Kind {
				case isa.FuncInt:
					if !regOK(f, isa.RegInt, in.A) {
						return fmt.Errorf("codegen: %s+%d: return register out of range", f.Name, pc)
					}
				case isa.FuncFloat:
					if !regOK(f, isa.RegFloat, in.A) {
						return fmt.Errorf("codegen: %s+%d: return register out of range", f.Name, pc)
					}
				}
			case isa.OpCall:
				if in.Target < 0 || int(in.Target) >= len(p.Funcs) {
					return fmt.Errorf("codegen: %s+%d: call target out of range", f.Name, pc)
				}
				g := &p.Funcs[in.Target]
				gi, gf := paramCounts(g)
				if in.A < 0 || int(in.A)+gi > f.NumIRegs {
					return fmt.Errorf("codegen: %s+%d: int argument window out of range", f.Name, pc)
				}
				if in.B < 0 || int(in.B)+gf > f.NumFRegs {
					return fmt.Errorf("codegen: %s+%d: float argument window out of range", f.Name, pc)
				}
				if in.C >= 0 && !resultRegOK(f, g.Kind, in.C) {
					return fmt.Errorf("codegen: %s+%d: result register out of range", f.Name, pc)
				}
			case isa.OpICall:
				// Per-callee staging and result-register issues are
				// handled case by case in the generated dispatch
				// switch (see codegen.go), because the callee is only
				// known at runtime; here only the site's own operands
				// must be sound.
				if !regOK(f, isa.RegInt, in.A) {
					return fmt.Errorf("codegen: %s+%d: callee register out of range", f.Name, pc)
				}
				if in.B < 0 {
					return fmt.Errorf("codegen: %s+%d: int argument window out of range", f.Name, pc)
				}
			}
		}
	}
	return nil
}

// resultRegOK reports whether caller register c can receive a result
// of the given callee kind (void callees never write a result, so any
// c is fine).
func resultRegOK(caller *isa.Func, kind isa.FuncKind, c int32) bool {
	switch kind {
	case isa.FuncInt:
		return int(c) < caller.NumIRegs
	case isa.FuncFloat:
		return int(c) < caller.NumFRegs
	}
	return true
}

package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"branchprof/internal/isa"
)

// TestTrapEnrichedFields: a trap pinpoints the faulting function,
// intra-function pc, flat global pc, and the instruction count at the
// moment of the trap.
func TestTrapEnrichedFields(t *testing.T) {
	// Two functions so the global pc differs from the local one: main
	// is laid out after a 5-instruction helper that is never called.
	pad := isa.Func{
		Name: "helper", Kind: isa.FuncInt,
		NumIRegs: 1,
		Code: []isa.Instr{
			{Op: isa.OpNop}, {Op: isa.OpNop}, {Op: isa.OpNop}, {Op: isa.OpNop},
			{Op: isa.OpRet, A: 0},
		},
	}
	main := isa.Func{
		Name: "main", Kind: isa.FuncInt,
		NumIRegs: 3,
		Code: []isa.Instr{
			{Op: isa.OpLdi, C: 0, Imm: 1},
			{Op: isa.OpLdi, C: 1, Imm: 0},
			{Op: isa.OpDiv, C: 2, A: 0, B: 1}, // traps here, pc=2
			{Op: isa.OpRet, A: 2},
		},
	}
	p := &isa.Program{Funcs: []isa.Func{pad, main}, Main: 1, IntMem: 16, FloatMem: 16}
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	_, err := Run(p, nil, nil)
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("expected *RuntimeError, got %v", err)
	}
	if re.Func != "main" || re.PC != 2 {
		t.Errorf("trap at %s+%d, want main+2", re.Func, re.PC)
	}
	if want := 2 + len(pad.Code); re.GlobalPC != want {
		t.Errorf("global pc = %d, want %d", re.GlobalPC, want)
	}
	if re.Instrs != 3 { // two loads plus the div itself
		t.Errorf("instrs at trap = %d, want 3", re.Instrs)
	}
	want := fmt.Sprintf("vm: trap at pc=%d (main+2) after 3 instrs: integer divide by zero", re.GlobalPC)
	if re.Error() != want {
		t.Errorf("rendered trap = %q, want %q", re.Error(), want)
	}
}

// TestCancelClosedDoneStopsImmediately: a pre-closed done channel is
// observed at the first poll point, before any instruction retires.
func TestCancelClosedDoneStopsImmediately(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpJmp, Target: 0},
		{Op: isa.OpRet, A: 0},
	}, 1, 0, 0)
	done := make(chan struct{})
	close(done)
	_, err := Run(p, nil, &Config{Done: done})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !strings.Contains(err.Error(), "after 0 instructions") {
		t.Errorf("cancellation not immediate: %v", err)
	}
}

// TestCancelMidRunInterruptsLoop: closing done during an unbounded
// loop interrupts it long before fuel would.
func TestCancelMidRunInterruptsLoop(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpJmp, Target: 0},
		{Op: isa.OpRet, A: 0},
	}, 1, 0, 0)
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := Run(p, nil, &Config{Done: done})
		errc <- err
	}()
	time.Sleep(2 * time.Millisecond)
	close(done)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never observed the closed done channel")
	}
}

// TestCancelDoneExcludedFromFingerprint: wiring a done channel into a
// config must not perturb cache keys — cancellation is a property of
// one attempt, not of the measurement.
func TestCancelDoneExcludedFromFingerprint(t *testing.T) {
	a := Config{Fuel: 1000}
	b := Config{Fuel: 1000, Done: make(chan struct{})}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("Done changed the fingerprint: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

// TestCancelNilDoneRunsToCompletion: the zero config still runs
// normally — the poll is a no-op without a channel.
func TestCancelNilDoneRunsToCompletion(t *testing.T) {
	p := prog([]isa.Instr{
		{Op: isa.OpLdi, C: 0, Imm: 42},
		{Op: isa.OpRet, A: 0},
	}, 1, 0, 0)
	res := run(t, p, nil, nil)
	if res.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", res.ExitCode)
	}
}

// The fast dispatch loop: executes pre-decoded, verified streams
// (predecode.go) with no per-instruction fuel, poll, pc-bounds, or
// observability checks. Accounting is batched per basic block — the
// headerless plain stream credits each block as a control transfer
// enters it, headered streams credit in the block header — and
// whenever an event (fuel exhaustion, Done/Sample poll) could fire
// inside the next block, control transfers to the step loop
// (step.go), which replays that window one instruction at a time with
// the reference interpreter's exact check order.
//
// Register access deliberately keeps the reference interpreter's
// exact indexing expressions and statement order: register windows
// are unverified, so an out-of-range program must panic at the same
// operation with the same index as before.
package vm

import (
	"fmt"
	"math"

	"branchprof/internal/isa"
)

// exec is the resumable interpreter state shared by the fast and step
// loops. Both loops copy the hot fields into locals and flush them
// back when control transfers.
type exec struct {
	p   *isa.Program
	im  *Image
	v   *variant
	c   *Config
	res *Result

	imem   []int64
	fmem   []float64
	iregs  []int64
	fregs  []float64
	frames []frame
	input  []byte
	inPos  int

	// Dirty store spans ([iLo, iHi) of imem, [fLo, fHi) of fmem),
	// widened by every store so putMem can restore only what this run
	// touched. iLo/fLo start at the memory size (empty span).
	iLo, iHi int
	fLo, fHi int

	cur    int // current function index
	ib, fb int // register window bases
	pc     int // original pc (valid in step mode and at mode switches)
	dpc    int // dinstr pc (valid in fast mode)

	instrs   uint64 // instructions executed; credited per block in fast mode
	fuel     uint64
	poll     bool
	nextPoll uint64 // next instruction count at which Done/Sample fire
	stop     uint64 // min(fuel, nextPoll): no event before this count
	stackBuf []int32

	// PerPC runs count whole-block executions here and expand them
	// into per-pc counts at finalize.
	blockCounts [][]uint64
	// A fast-mode trap overshoots that accounting: pcs in
	// [adjFrom, adjTo) of function adjFn were counted but never ran.
	adjFn   int
	adjFrom int
	adjTo   int

	fast bool
	done bool
	err  error
}

// dirtyInt widens the int-memory dirty span to cover a store at a.
func (st *exec) dirtyInt(a int) {
	if a < st.iLo {
		st.iLo = a
	}
	if a >= st.iHi {
		st.iHi = a + 1
	}
}

// dirtyFloat widens the float-memory dirty span to cover a store at a.
func (st *exec) dirtyFloat(a int) {
	if a < st.fLo {
		st.fLo = a
	}
	if a >= st.fHi {
		st.fHi = a + 1
	}
}

// blockAt returns the index of the block of function fn that contains
// dpc (the sentinel counts as a final empty block). Cold paths only.
func (st *exec) blockAt(fn, dpc int) int {
	bd := st.v.bDpc[fn]
	lo, hi := 0, len(bd)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(bd[mid]) <= dpc {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// blockStartPC returns the original pc of the block starting at dpc.
func (st *exec) blockStartPC(fn, dpc int) int {
	return int(st.v.bPC[fn][st.blockAt(fn, dpc)])
}

// fallPC returns the original pc one past the block containing dpc —
// the fall-through continuation of its terminator. Jump threading may
// redirect a fall edge's target dpc elsewhere, so event bail-outs
// recover the resume pc from the block tables instead.
func (st *exec) fallPC(fn, dpc int) int {
	bi := st.blockAt(fn, dpc)
	return int(st.v.bPC[fn][bi] + st.v.bN[fn][bi])
}

// runFast executes dinstr streams until the run finishes, an event
// window forces the step loop, or a trap fires.
//
// Trap protocol: a trapping case sets trapRem to the count of
// original block instructions strictly after the dinstr (0 for
// edge-accounting terminators, d.rem otherwise), trapBack to how many
// original instructions from the end of the dinstr's coverage the
// trapping one sits (1 = last, 2 = second-to-last, ...), and jumps to
// trapExit, which recovers the exact pc and instruction count from
// the per-block tables.
func (st *exec) runFast() {
	p := st.p
	v := st.v
	c := st.c
	res := st.res
	imem, fmem := st.imem, st.fmem
	iregs, fregs := st.iregs, st.fregs
	frames := st.frames
	input := st.input
	inPos := st.inPos
	cur := st.cur
	ib, fb := st.ib, st.fb
	dpc := st.dpc
	instrs := st.instrs
	stop := st.stop
	fcode := v.code[cur]
	fmeta := st.im.fmeta

	var stepPC int
	var trapRem int
	var trapBack int
	var trapMsg string

	for {
		d := &fcode[dpc]
		switch d.op {
		case dBlock:
			if instrs+uint64(d.a) > stop {
				stepPC = int(v.bPC[cur][d.x])
				goto stepExit
			}
			instrs += uint64(d.a)
			dpc++
		case dBlockCnt:
			if instrs+uint64(d.a) > stop {
				stepPC = int(v.bPC[cur][d.x])
				goto stepExit
			}
			instrs += uint64(d.a)
			st.blockCounts[cur][d.x]++
			dpc++
		case dToStep:
			stepPC = int(d.a)
			goto stepExit

		case dNop:
			dpc++
		case dAdd:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] + iregs[ib+int(d.b)]
			dpc++
		case dSub:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] - iregs[ib+int(d.b)]
			dpc++
		case dMul:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] * iregs[ib+int(d.b)]
			dpc++
		case dDiv:
			dv := iregs[ib+int(d.b)]
			if dv == 0 {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "integer divide by zero"
				goto trapExit
			}
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] / dv
			dpc++
		case dRem:
			dv := iregs[ib+int(d.b)]
			if dv == 0 {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "integer remainder by zero"
				goto trapExit
			}
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] % dv
			dpc++
		case dAnd:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] & iregs[ib+int(d.b)]
			dpc++
		case dOr:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] | iregs[ib+int(d.b)]
			dpc++
		case dXor:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] ^ iregs[ib+int(d.b)]
			dpc++
		case dShl:
			sh := iregs[ib+int(d.b)]
			if sh < 0 || sh > 63 {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "shift amount out of range"
				goto trapExit
			}
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] << uint(sh)
			dpc++
		case dShr:
			sh := iregs[ib+int(d.b)]
			if sh < 0 || sh > 63 {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "shift amount out of range"
				goto trapExit
			}
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] >> uint(sh)
			dpc++
		case dNeg:
			iregs[ib+int(d.c)] = -iregs[ib+int(d.a)]
			dpc++
		case dNot:
			iregs[ib+int(d.c)] = ^iregs[ib+int(d.a)]
			dpc++
		case dSlt:
			iregs[ib+int(d.c)] = b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			dpc++
		case dSle:
			iregs[ib+int(d.c)] = b2i(iregs[ib+int(d.a)] <= iregs[ib+int(d.b)])
			dpc++
		case dSeq:
			iregs[ib+int(d.c)] = b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			dpc++
		case dSne:
			iregs[ib+int(d.c)] = b2i(iregs[ib+int(d.a)] != iregs[ib+int(d.b)])
			dpc++
		case dLdiSltSne, dLdiSeqSne:
			iregs[ib+int(d.c)] = d.imm
			var cv int64
			if d.op == dLdiSltSne {
				cv = b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			} else {
				cv = b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			}
			iregs[ib+int(d.target)] = cv
			iregs[ib+(int(d.x)>>16)] = b2i(cv != iregs[ib+(int(d.x)&0xffff)])
			dpc++

		case dFAdd:
			fregs[fb+int(d.c)] = fregs[fb+int(d.a)] + fregs[fb+int(d.b)]
			dpc++
		case dFSub:
			fregs[fb+int(d.c)] = fregs[fb+int(d.a)] - fregs[fb+int(d.b)]
			dpc++
		case dFMul:
			fregs[fb+int(d.c)] = fregs[fb+int(d.a)] * fregs[fb+int(d.b)]
			dpc++
		case dFDiv:
			fregs[fb+int(d.c)] = fregs[fb+int(d.a)] / fregs[fb+int(d.b)]
			dpc++
		case dFNeg:
			fregs[fb+int(d.c)] = -fregs[fb+int(d.a)]
			dpc++
		case dFSlt:
			iregs[ib+int(d.c)] = b2i(fregs[fb+int(d.a)] < fregs[fb+int(d.b)])
			dpc++
		case dFSle:
			iregs[ib+int(d.c)] = b2i(fregs[fb+int(d.a)] <= fregs[fb+int(d.b)])
			dpc++
		case dFSeq:
			iregs[ib+int(d.c)] = b2i(fregs[fb+int(d.a)] == fregs[fb+int(d.b)])
			dpc++
		case dFSne:
			iregs[ib+int(d.c)] = b2i(fregs[fb+int(d.a)] != fregs[fb+int(d.b)])
			dpc++

		case dCvtIF:
			fregs[fb+int(d.c)] = float64(iregs[ib+int(d.a)])
			dpc++
		case dCvtFI:
			f := fregs[fb+int(d.a)]
			if math.IsNaN(f) || f > math.MaxInt64 || f < math.MinInt64 {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "float to int conversion out of range"
				goto trapExit
			}
			iregs[ib+int(d.c)] = int64(f)
			dpc++

		case dLdi:
			iregs[ib+int(d.c)] = d.imm
			dpc++
		case dLdf:
			fregs[fb+int(d.c)] = math.Float64frombits(uint64(d.imm))
			dpc++
		case dMov:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)]
			dpc++
		case dFMov:
			fregs[fb+int(d.c)] = fregs[fb+int(d.a)]
			dpc++

		case dLd:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			iregs[ib+int(d.c)] = imem[ad]
			dpc++
		case dSt:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("int store address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			st.dirtyInt(int(ad))
			imem[ad] = iregs[ib+int(d.b)]
			dpc++
		case dFLd:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(fmem)) {
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("float load address %d out of range [0,%d)", ad, len(fmem))
				goto trapExit
			}
			fregs[fb+int(d.c)] = fmem[ad]
			dpc++
		case dFSt:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(fmem)) {
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("float store address %d out of range [0,%d)", ad, len(fmem))
				goto trapExit
			}
			st.dirtyFloat(int(ad))
			fmem[ad] = fregs[fb+int(d.b)]
			dpc++

		case dBr:
			res.SiteTotal[d.x]++
			if iregs[ib+int(d.a)] != 0 {
				res.SiteTaken[d.x]++
				dpc = int(d.target)
			} else {
				dpc++
			}
		case dBrT:
			res.SiteTotal[d.x]++
			taken := iregs[ib+int(d.a)] != 0
			if taken {
				res.SiteTaken[d.x]++
			}
			c.Trace.Branch(d.x, taken, instrs)
			if taken {
				dpc = int(d.target)
			} else {
				dpc++
			}
		case dJmp:
			res.Jumps++
			dpc = int(d.target)
		case dJmpT:
			res.Jumps++
			c.Trace.Transfer(TransferJump, instrs)
			dpc = int(d.target)

		case dCall, dCallT:
			fi := int(d.target)
			res.DirectCalls++
			if d.op == dCallT {
				c.Trace.Transfer(TransferCall, instrs)
			}
			if len(frames) >= c.MaxDepth {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "call stack overflow"
				goto trapExit
			}
			fm := &fmeta[fi]
			niBase := len(iregs)
			nfBase := len(fregs)
			iArg := int(d.a)
			frames = append(frames, frame{fn: d.target, retPC: int32(d.imm),
				iBase: int32(niBase), fBase: int32(nfBase), resReg: d.c})
			if np := int(fm.nparams); fm.intOnly && int(fm.numI) > np {
				// The staging loop overwrites the param slots, so only
				// the callee's scratch registers need clearing.
				iregs = growInt(iregs, niBase+np, int(fm.numI)-np)
			} else {
				iregs = growInt(iregs, niBase, int(fm.numI))
			}
			fregs = growFloat(fregs, nfBase, int(fm.numF))
			if fm.intOnly {
				for k := 0; k < int(fm.nparams); k++ {
					iregs[niBase+k] = iregs[ib+iArg+k]
				}
			} else {
				callee := &p.Funcs[fi]
				fArg := int(d.b)
				ni, nf := 0, 0
				for pi := 0; pi < callee.NumParams; pi++ {
					if pi < len(callee.FParams) && callee.FParams[pi] {
						fregs[nfBase+nf] = fregs[fb+fArg]
						fArg++
						nf++
					} else {
						iregs[niBase+ni] = iregs[ib+iArg]
						iArg++
						ni++
					}
				}
			}
			if dep := len(frames); dep > res.MaxDepth {
				res.MaxDepth = dep
			}
			cur = fi
			fcode = v.code[cur]
			ib, fb = niBase, nfBase
			dpc = int(v.hdr[cur][0])
		case dICall, dICallT:
			fi := int(iregs[ib+int(d.a)])
			if fi < 0 || fi >= len(p.Funcs) {
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("indirect call to bad function index %d", fi)
				goto trapExit
			}
			res.IndirectCalls++
			if d.op == dICallT {
				c.Trace.Transfer(TransferIndirectCall, instrs)
			}
			if len(frames) >= c.MaxDepth {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "call stack overflow"
				goto trapExit
			}
			fm := &fmeta[fi]
			callee := &p.Funcs[fi]
			niBase := len(iregs)
			nfBase := len(fregs)
			iArg := int(d.b)
			frames = append(frames, frame{fn: int32(fi), retPC: int32(d.imm),
				iBase: int32(niBase), fBase: int32(nfBase), resReg: d.c, indirect: true})
			iregs = growInt(iregs, niBase, int(fm.numI))
			fregs = growFloat(fregs, nfBase, int(fm.numF))
			ni := 0
			for pi := 0; pi < callee.NumParams; pi++ {
				if pi < len(callee.FParams) && callee.FParams[pi] {
					trapRem, trapBack, trapMsg = int(d.rem), 1, "indirect call to function with float parameters"
					goto trapExit
				}
				iregs[niBase+ni] = iregs[ib+iArg]
				iArg++
				ni++
			}
			if dep := len(frames); dep > res.MaxDepth {
				res.MaxDepth = dep
			}
			cur = fi
			fcode = v.code[cur]
			ib, fb = niBase, nfBase
			dpc = int(v.hdr[cur][0])
		case dRet, dRetT:
			fr := frames[len(frames)-1]
			if fr.indirect {
				res.IndirectReturns++
				if d.op == dRetT {
					c.Trace.Transfer(TransferIndirectReturn, instrs)
				}
			} else if fr.retPC >= 0 {
				res.DirectReturns++
				if d.op == dRetT {
					c.Trace.Transfer(TransferReturn, instrs)
				}
			}
			kind := fmeta[cur].kind
			var iv int64
			var fv float64
			switch kind {
			case isa.FuncInt:
				iv = iregs[ib+int(d.a)]
			case isa.FuncFloat:
				fv = fregs[fb+int(d.a)]
			}
			iregs = iregs[:ib]
			fregs = fregs[:fb]
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				res.ExitCode = iv
				goto doneExit
			}
			caller := frames[len(frames)-1]
			cur = int(caller.fn)
			fcode = v.code[cur]
			ib, fb = int(caller.iBase), int(caller.fBase)
			if fr.resReg >= 0 {
				switch kind {
				case isa.FuncInt:
					iregs[ib+int(fr.resReg)] = iv
				case isa.FuncFloat:
					fregs[fb+int(fr.resReg)] = fv
				}
			}
			dpc = int(v.hdr[cur][fr.retPC])

		case dGetc:
			if inPos < len(input) {
				iregs[ib+int(d.c)] = int64(input[inPos])
				inPos++
			} else {
				iregs[ib+int(d.c)] = -1
			}
			dpc++
		case dPutc:
			if len(res.Output) >= c.MaxOutput {
				trapRem, trapBack, trapMsg = int(d.rem), 1, "output limit exceeded"
				goto trapExit
			}
			res.Output = append(res.Output, byte(iregs[ib+int(d.a)]))
			dpc++
		case dHalt:
			res.ExitCode = iregs[ib+int(d.a)]
			goto doneExit

		case dSqrt:
			fregs[fb+int(d.c)] = math.Sqrt(fregs[fb+int(d.a)])
			dpc++
		case dSin:
			fregs[fb+int(d.c)] = math.Sin(fregs[fb+int(d.a)])
			dpc++
		case dCos:
			fregs[fb+int(d.c)] = math.Cos(fregs[fb+int(d.a)])
			dpc++
		case dExp:
			fregs[fb+int(d.c)] = math.Exp(fregs[fb+int(d.a)])
			dpc++
		case dLog:
			fregs[fb+int(d.c)] = math.Log(fregs[fb+int(d.a)])
			dpc++
		case dFAbs:
			fregs[fb+int(d.c)] = math.Abs(fregs[fb+int(d.a)])
			dpc++
		case dFloor:
			fregs[fb+int(d.c)] = math.Floor(fregs[fb+int(d.a)])
			dpc++
		case dPow:
			fregs[fb+int(d.c)] = math.Pow(fregs[fb+int(d.a)], fregs[fb+int(d.b)])
			dpc++
		case dSel:
			if iregs[ib+int(d.a)] != 0 {
				iregs[ib+int(d.c)] = iregs[ib+int(d.b)]
			} else {
				iregs[ib+int(d.c)] = iregs[ib+int(d.imm)]
			}
			dpc++
		case dFSel:
			if iregs[ib+int(d.a)] != 0 {
				fregs[fb+int(d.c)] = fregs[fb+int(d.b)]
			} else {
				fregs[fb+int(d.c)] = fregs[fb+int(d.imm)]
			}
			dpc++

		case dBadOp:
			trapRem, trapBack = int(d.rem), 1
			trapMsg = fmt.Sprintf("unimplemented op %v", isa.Op(d.imm))
			goto trapExit

		// Fused superinstructions. Sub-operations run in original
		// order with the reference's exact reads and writes.
		case dSltBr:
			cv := b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			iregs[ib+int(d.c)] = cv
			res.SiteTotal[d.x]++
			if cv != 0 {
				res.SiteTaken[d.x]++
				dpc = int(d.target)
			} else {
				dpc++
			}
		case dSleBr:
			cv := b2i(iregs[ib+int(d.a)] <= iregs[ib+int(d.b)])
			iregs[ib+int(d.c)] = cv
			res.SiteTotal[d.x]++
			if cv != 0 {
				res.SiteTaken[d.x]++
				dpc = int(d.target)
			} else {
				dpc++
			}
		case dSeqBr:
			cv := b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			iregs[ib+int(d.c)] = cv
			res.SiteTotal[d.x]++
			if cv != 0 {
				res.SiteTaken[d.x]++
				dpc = int(d.target)
			} else {
				dpc++
			}
		case dSneBr:
			cv := b2i(iregs[ib+int(d.a)] != iregs[ib+int(d.b)])
			iregs[ib+int(d.c)] = cv
			res.SiteTotal[d.x]++
			if cv != 0 {
				res.SiteTaken[d.x]++
				dpc = int(d.target)
			} else {
				dpc++
			}
		case dLdiAdd:
			iregs[ib+int(d.c)] = d.imm
			iregs[ib+int(d.x)] = iregs[ib+int(d.a)] + iregs[ib+int(d.b)]
			dpc++
		case dLdiSub:
			iregs[ib+int(d.c)] = d.imm
			iregs[ib+int(d.x)] = iregs[ib+int(d.a)] - iregs[ib+int(d.b)]
			dpc++
		case dLdiMul:
			iregs[ib+int(d.c)] = d.imm
			iregs[ib+int(d.x)] = iregs[ib+int(d.a)] * iregs[ib+int(d.b)]
			dpc++
		case dLdiSlt:
			iregs[ib+int(d.c)] = d.imm
			iregs[ib+int(d.x)] = b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			dpc++
		case dLdiSle:
			iregs[ib+int(d.c)] = d.imm
			iregs[ib+int(d.x)] = b2i(iregs[ib+int(d.a)] <= iregs[ib+int(d.b)])
			dpc++
		case dLdiSeq:
			iregs[ib+int(d.c)] = d.imm
			iregs[ib+int(d.x)] = b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			dpc++
		case dLdiSne:
			iregs[ib+int(d.c)] = d.imm
			iregs[ib+int(d.x)] = b2i(iregs[ib+int(d.a)] != iregs[ib+int(d.b)])
			dpc++
		case dLdiLd:
			iregs[ib+int(d.c)] = d.imm
			ad := iregs[ib+int(d.b)] + int64(d.target)
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			iregs[ib+int(d.x)] = imem[ad]
			dpc++
		case dLdAdd:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(imem)) {
				// The load traps: its fused add never executed either.
				trapRem, trapBack = int(d.rem), 2
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			lv := imem[ad]
			iregs[ib+int(d.c)] = lv
			iregs[ib+int(d.x)] = lv + iregs[ib+int(d.b)]
			dpc++
		case dLdMov:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 2
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			iregs[ib+int(d.c)] = imem[ad]
			iregs[ib+int(d.x)] = iregs[ib+int(d.target)]
			dpc++
		case dLdSlt:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 2
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			iregs[ib+int(d.c)] = imem[ad]
			iregs[ib+int(d.x)] = b2i(iregs[ib+int(d.b)] < iregs[ib+int(d.target)])
			dpc++
		case dLdSeq:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 2
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			iregs[ib+int(d.c)] = imem[ad]
			iregs[ib+int(d.x)] = b2i(iregs[ib+int(d.b)] == iregs[ib+int(d.target)])
			dpc++
		case dLdLd:
			ad := iregs[ib+int(d.a)] + int64(d.target)
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 2
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			iregs[ib+int(d.c)] = imem[ad]
			ad = iregs[ib+int(d.b)] + d.imm
			if uint64(ad) >= uint64(len(imem)) {
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			iregs[ib+int(d.x)] = imem[ad]
			dpc++
		case dMulAdd:
			mv := iregs[ib+int(d.a)] * iregs[ib+int(d.b)]
			iregs[ib+int(d.c)] = mv
			iregs[ib+int(d.x)] = mv + iregs[ib+int(d.target)]
			dpc++
		case dAddMov:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)] + iregs[ib+int(d.b)]
			iregs[ib+int(d.x)] = iregs[ib+int(d.target)]
			dpc++
		case dAddFld:
			av := iregs[ib+int(d.a)] + iregs[ib+int(d.b)]
			iregs[ib+int(d.c)] = av
			ad := av + d.imm
			if uint64(ad) >= uint64(len(fmem)) {
				// The fld (second half) traps: the add did execute.
				trapRem, trapBack = int(d.rem), 1
				trapMsg = fmt.Sprintf("float load address %d out of range [0,%d)", ad, len(fmem))
				goto trapExit
			}
			fregs[fb+int(d.x)] = fmem[ad]
			dpc++
		case dSltSne:
			cv := b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			iregs[ib+int(d.c)] = cv
			iregs[ib+int(d.x)] = b2i(cv != iregs[ib+int(d.target)])
			dpc++
		case dSeqSne:
			cv := b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			iregs[ib+int(d.c)] = cv
			iregs[ib+int(d.x)] = b2i(cv != iregs[ib+int(d.target)])
			dpc++
		case dFldMul:
			ad := iregs[ib+int(d.a)] + d.imm
			if uint64(ad) >= uint64(len(fmem)) {
				trapRem, trapBack = int(d.rem), 2
				trapMsg = fmt.Sprintf("float load address %d out of range [0,%d)", ad, len(fmem))
				goto trapExit
			}
			lv := fmem[ad]
			fregs[fb+int(d.c)] = lv
			fregs[fb+int(d.x)] = lv * fregs[fb+int(d.target)]
			dpc++
		case dFldLdi:
			ad := iregs[ib+int(d.a)] + int64(d.target)
			if uint64(ad) >= uint64(len(fmem)) {
				trapRem, trapBack = int(d.rem), 2
				trapMsg = fmt.Sprintf("float load address %d out of range [0,%d)", ad, len(fmem))
				goto trapExit
			}
			fregs[fb+int(d.c)] = fmem[ad]
			iregs[ib+int(d.x)] = d.imm
			dpc++
		case dFMulAdd:
			mv := fregs[fb+int(d.a)] * fregs[fb+int(d.b)]
			fregs[fb+int(d.c)] = mv
			fregs[fb+int(d.x)] = mv + fregs[fb+int(d.target)]
			dpc++
		case dFAddMov:
			fregs[fb+int(d.c)] = fregs[fb+int(d.a)] + fregs[fb+int(d.b)]
			fregs[fb+int(d.x)] = fregs[fb+int(d.target)]
			dpc++
		case dFMovLdi:
			fregs[fb+int(d.c)] = fregs[fb+int(d.a)]
			iregs[ib+int(d.x)] = d.imm
			dpc++
		case dMovLdi:
			iregs[ib+int(d.c)] = iregs[ib+int(d.a)]
			iregs[ib+int(d.x)] = d.imm
			dpc++

		// Edge-accounting control ops (headerless plain stream). Each
		// credits its successor block before entering it; when the
		// credit would cross the event horizon the step loop takes
		// over at the successor's first instruction.
		case dFall:
			if instrs+uint64(d.rem) > stop {
				stepPC = st.fallPC(cur, dpc)
				goto stepExit
			}
			instrs += uint64(d.rem)
			res.Jumps += uint64(d.x)
			dpc = int(d.target)
		case dSneFall:
			iregs[ib+int(d.c)] = b2i(iregs[ib+int(d.a)] != iregs[ib+int(d.b)])
			if instrs+uint64(d.rem) > stop {
				stepPC = st.fallPC(cur, dpc)
				goto stepExit
			}
			instrs += uint64(d.rem)
			res.Jumps += uint64(d.x)
			dpc = int(d.target)
		case dLdiSltSneFall, dLdiSeqSneFall:
			iregs[ib+int(d.c)] = d.imm
			var cv int64
			if d.op == dLdiSltSneFall {
				cv = b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			} else {
				cv = b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			}
			em := v.eImm[cur][dpc]
			iregs[ib+int(em>>16)] = cv
			iregs[ib+(int(d.x)>>16)] = b2i(cv != iregs[ib+(int(d.x)&0xffff)])
			if instrs+uint64(d.rem) > stop {
				stepPC = st.fallPC(cur, dpc)
				goto stepExit
			}
			instrs += uint64(d.rem)
			res.Jumps += uint64(em & 0xffff)
			dpc = int(d.target)
		case dBrN:
			res.SiteTotal[d.x]++
			var tdpc int
			var n, nj uint64
			taken := iregs[ib+int(d.a)] != 0
			if taken {
				res.SiteTaken[d.x]++
				tdpc, n, nj = int(d.target), uint64(d.rem>>8), uint64(d.imm>>8)&0xff
			} else {
				tdpc, n, nj = int(d.imm>>16), uint64(d.rem&0xff), uint64(d.imm)&0xff
			}
			if instrs+n > stop {
				if taken {
					stepPC = int(v.tPC[cur][dpc])
				} else {
					stepPC = st.fallPC(cur, dpc)
				}
				goto stepExit
			}
			instrs += n
			res.Jumps += nj
			dpc = tdpc
		case dJmpN:
			res.Jumps++
			if instrs+uint64(d.rem) > stop {
				stepPC = int(v.tPC[cur][dpc])
				goto stepExit
			}
			instrs += uint64(d.rem)
			res.Jumps += uint64(d.x)
			dpc = int(d.target)
		case dSneJmpN:
			iregs[ib+int(d.c)] = b2i(iregs[ib+int(d.a)] != iregs[ib+int(d.b)])
			res.Jumps++
			if instrs+uint64(d.rem) > stop {
				stepPC = int(v.tPC[cur][dpc])
				goto stepExit
			}
			instrs += uint64(d.rem)
			res.Jumps += uint64(d.x)
			dpc = int(d.target)
		case dLdiJmpN:
			iregs[ib+int(d.c)] = d.imm
			res.Jumps++
			if instrs+uint64(d.rem) > stop {
				stepPC = int(v.tPC[cur][dpc])
				goto stepExit
			}
			instrs += uint64(d.rem)
			res.Jumps += uint64(d.x)
			dpc = int(d.target)
		case dLdiSltSneJmpN, dLdiSeqSneJmpN:
			iregs[ib+int(d.c)] = d.imm
			var cv int64
			if d.op == dLdiSltSneJmpN {
				cv = b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			} else {
				cv = b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			}
			em := v.eImm[cur][dpc]
			iregs[ib+int(em>>16)] = cv
			iregs[ib+(int(d.x)>>16)] = b2i(cv != iregs[ib+(int(d.x)&0xffff)])
			res.Jumps++
			if instrs+uint64(d.rem) > stop {
				stepPC = int(v.tPC[cur][dpc])
				goto stepExit
			}
			instrs += uint64(d.rem)
			res.Jumps += uint64(em & 0xffff)
			dpc = int(d.target)
		case dSltBrN, dSleBrN, dSeqBrN, dSneBrN:
			var cv int64
			switch d.op {
			case dSltBrN:
				cv = b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			case dSleBrN:
				cv = b2i(iregs[ib+int(d.a)] <= iregs[ib+int(d.b)])
			case dSeqBrN:
				cv = b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			default:
				cv = b2i(iregs[ib+int(d.a)] != iregs[ib+int(d.b)])
			}
			iregs[ib+int(d.c)] = cv
			res.SiteTotal[d.x]++
			var tdpc int
			var n, nj uint64
			if cv != 0 {
				res.SiteTaken[d.x]++
				tdpc, n, nj = int(d.target), uint64(d.rem>>8), uint64(d.imm>>8)&0xff
			} else {
				tdpc, n, nj = int(d.imm>>16), uint64(d.rem&0xff), uint64(d.imm)&0xff
			}
			if instrs+n > stop {
				if cv != 0 {
					stepPC = int(v.tPC[cur][dpc])
				} else {
					stepPC = st.fallPC(cur, dpc)
				}
				goto stepExit
			}
			instrs += n
			res.Jumps += nj
			dpc = tdpc
		case dLdiBrN:
			iregs[ib+int(d.c)] = d.imm
			res.SiteTotal[d.x]++
			var tdpc int
			var n, nj uint64
			taken := iregs[ib+int(d.a)] != 0
			if taken {
				res.SiteTaken[d.x]++
				tdpc, n, nj = int(d.target), uint64(d.rem>>8), uint64(d.b)
			} else {
				tdpc, n, nj = dpc+1, uint64(d.rem&0xff), 0
			}
			if instrs+n > stop {
				if taken {
					stepPC = int(v.tPC[cur][dpc])
				} else {
					stepPC = st.fallPC(cur, dpc)
				}
				goto stepExit
			}
			instrs += n
			res.Jumps += nj
			dpc = tdpc
		case dLdiSltBrN, dLdiSleBrN, dLdiSeqBrN, dLdiSneBrN:
			iregs[ib+int(d.c)] = d.imm
			var cv int64
			switch d.op {
			case dLdiSltBrN:
				cv = b2i(iregs[ib+int(d.a)] < iregs[ib+int(d.b)])
			case dLdiSleBrN:
				cv = b2i(iregs[ib+int(d.a)] <= iregs[ib+int(d.b)])
			case dLdiSeqBrN:
				cv = b2i(iregs[ib+int(d.a)] == iregs[ib+int(d.b)])
			default:
				cv = b2i(iregs[ib+int(d.a)] != iregs[ib+int(d.b)])
			}
			iregs[ib+(int(d.x)&0xffff)] = cv
			site := d.x >> 16
			res.SiteTotal[site]++
			em := v.eImm[cur][dpc]
			var tdpc int
			var n, nj uint64
			if cv != 0 {
				res.SiteTaken[site]++
				tdpc, n, nj = int(d.target), uint64(d.rem>>8), uint64(em>>8)&0xff
			} else {
				tdpc, n, nj = int(em>>16), uint64(d.rem&0xff), uint64(em)&0xff
			}
			if instrs+n > stop {
				if cv != 0 {
					stepPC = int(v.tPC[cur][dpc])
				} else {
					stepPC = st.fallPC(cur, dpc)
				}
				goto stepExit
			}
			instrs += n
			res.Jumps += nj
			dpc = tdpc
		case dLdiLdSeqBrN:
			// ldi c,imm ; ld (eImm bits 56+),[a+b] ; seq comparing the
			// loaded value against the register in eImm bits [48,56)
			// into x&0xffff ; br on the compare. The fall edge packs
			// into eImm bits [16,48) exactly like dBrN's imm.
			iregs[ib+int(d.c)] = d.imm
			ad := iregs[ib+int(d.a)] + int64(d.b)
			if uint64(ad) >= uint64(len(imem)) {
				// The ld is third-from-last in the block; the seq and
				// br after it never executed.
				trapRem, trapBack = 0, 3
				trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
				goto trapExit
			}
			em := uint64(v.eImm[cur][dpc])
			lv := imem[ad]
			iregs[ib+int(em>>56)] = lv
			cv := b2i(lv == iregs[ib+int(em>>48)&0xff])
			iregs[ib+(int(d.x)&0xffff)] = cv
			site := d.x >> 16
			res.SiteTotal[site]++
			var tdpc int
			var n, nj uint64
			if cv != 0 {
				res.SiteTaken[site]++
				tdpc, n, nj = int(d.target), uint64(d.rem>>8), (em>>8)&0xff
			} else {
				tdpc, n, nj = int(em>>16)&0xffffffff, uint64(d.rem&0xff), em&0xff
			}
			if instrs+n > stop {
				if cv != 0 {
					stepPC = int(v.tPC[cur][dpc])
				} else {
					stepPC = st.fallPC(cur, dpc)
				}
				goto stepExit
			}
			instrs += n
			res.Jumps += nj
			dpc = tdpc
		case dCallN, dMovCallN:
			retPC := int(d.imm)
			if d.op == dMovCallN {
				// The fused mov runs first, exactly as the standalone
				// instruction would (imm packs retPC | movSrc | movDest).
				iregs[ib+(int(d.imm)&0xffff)] = iregs[ib+(int(d.imm>>16)&0xffff)]
				retPC = int(d.imm >> 32)
			}
			fi := int(d.target)
			res.DirectCalls++
			if len(frames) >= c.MaxDepth {
				trapRem, trapBack, trapMsg = 0, 1, "call stack overflow"
				goto trapExit
			}
			fm := &fmeta[fi]
			niBase := len(iregs)
			nfBase := len(fregs)
			iArg := int(d.a)
			frames = append(frames, frame{fn: d.target, retPC: int32(retPC),
				iBase: int32(niBase), fBase: int32(nfBase), resReg: d.c,
				retDpc: int32(dpc) + 1, retN: int32(d.rem & 0xff)})
			if np := int(fm.nparams); fm.intOnly && int(fm.numI) > np {
				// The staging loop overwrites the param slots, so only
				// the callee's scratch registers need clearing.
				iregs = growInt(iregs, niBase+np, int(fm.numI)-np)
			} else {
				iregs = growInt(iregs, niBase, int(fm.numI))
			}
			fregs = growFloat(fregs, nfBase, int(fm.numF))
			if fm.intOnly {
				for k := 0; k < int(fm.nparams); k++ {
					iregs[niBase+k] = iregs[ib+iArg+k]
				}
			} else {
				callee := &p.Funcs[fi]
				fArg := int(d.b)
				ni, nf := 0, 0
				for pi := 0; pi < callee.NumParams; pi++ {
					if pi < len(callee.FParams) && callee.FParams[pi] {
						fregs[nfBase+nf] = fregs[fb+fArg]
						fArg++
						nf++
					} else {
						iregs[niBase+ni] = iregs[ib+iArg]
						iArg++
						ni++
					}
				}
			}
			if dep := len(frames); dep > res.MaxDepth {
				res.MaxDepth = dep
			}
			cur = fi
			fcode = v.code[cur]
			ib, fb = niBase, nfBase
			n := uint64(d.rem >> 8)
			if instrs+n > stop {
				stepPC = 0
				goto stepExit
			}
			instrs += n
			dpc = int(d.x)
		case dICallN:
			fi := int(iregs[ib+int(d.a)])
			if fi < 0 || fi >= len(p.Funcs) {
				trapRem, trapBack = 0, 1
				trapMsg = fmt.Sprintf("indirect call to bad function index %d", fi)
				goto trapExit
			}
			res.IndirectCalls++
			if len(frames) >= c.MaxDepth {
				trapRem, trapBack, trapMsg = 0, 1, "call stack overflow"
				goto trapExit
			}
			fm := &fmeta[fi]
			callee := &p.Funcs[fi]
			niBase := len(iregs)
			nfBase := len(fregs)
			iArg := int(d.b)
			frames = append(frames, frame{fn: int32(fi), retPC: int32(d.imm),
				iBase: int32(niBase), fBase: int32(nfBase), resReg: d.c, indirect: true,
				retDpc: int32(dpc) + 1, retN: int32(d.rem)})
			iregs = growInt(iregs, niBase, int(fm.numI))
			fregs = growFloat(fregs, nfBase, int(fm.numF))
			ni := 0
			for pi := 0; pi < callee.NumParams; pi++ {
				if pi < len(callee.FParams) && callee.FParams[pi] {
					trapRem, trapBack, trapMsg = 0, 1, "indirect call to function with float parameters"
					goto trapExit
				}
				iregs[niBase+ni] = iregs[ib+iArg]
				iArg++
				ni++
			}
			if dep := len(frames); dep > res.MaxDepth {
				res.MaxDepth = dep
			}
			cur = fi
			fcode = v.code[cur]
			ib, fb = niBase, nfBase
			n := uint64(v.entryN[fi])
			if instrs+n > stop {
				stepPC = 0
				goto stepExit
			}
			instrs += n
			dpc = int(v.entryDpc[fi])
		case dRetN, dLdiRetN, dLdRetN, dStRetN:
			retReg := d.a
			switch d.op {
			case dLdiRetN:
				iregs[ib+int(d.c)] = d.imm
			case dLdRetN:
				ad := iregs[ib+int(d.a)] + d.imm
				if uint64(ad) >= uint64(len(imem)) {
					trapRem, trapBack = 0, 2
					trapMsg = fmt.Sprintf("int load address %d out of range [0,%d)", ad, len(imem))
					goto trapExit
				}
				iregs[ib+int(d.c)] = imem[ad]
				retReg = d.x
			case dStRetN:
				ad := iregs[ib+int(d.a)] + d.imm
				if uint64(ad) >= uint64(len(imem)) {
					trapRem, trapBack = 0, 2
					trapMsg = fmt.Sprintf("int store address %d out of range [0,%d)", ad, len(imem))
					goto trapExit
				}
				st.dirtyInt(int(ad))
				imem[ad] = iregs[ib+int(d.b)]
				retReg = d.x
			}
			fr := frames[len(frames)-1]
			if fr.indirect {
				res.IndirectReturns++
			} else if fr.retPC >= 0 {
				res.DirectReturns++
			}
			kind := fmeta[cur].kind
			var iv int64
			var fv float64
			switch kind {
			case isa.FuncInt:
				iv = iregs[ib+int(retReg)]
			case isa.FuncFloat:
				fv = fregs[fb+int(retReg)]
			}
			iregs = iregs[:ib]
			fregs = fregs[:fb]
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				res.ExitCode = iv
				goto doneExit
			}
			caller := frames[len(frames)-1]
			cur = int(caller.fn)
			fcode = v.code[cur]
			ib, fb = int(caller.iBase), int(caller.fBase)
			if fr.resReg >= 0 {
				switch kind {
				case isa.FuncInt:
					iregs[ib+int(fr.resReg)] = iv
				case isa.FuncFloat:
					fregs[fb+int(fr.resReg)] = fv
				}
			}
			n := uint64(fr.retN)
			if instrs+n > stop {
				stepPC = int(fr.retPC)
				goto stepExit
			}
			instrs += n
			dpc = int(fr.retDpc)
		}
	}

stepExit:
	st.iregs, st.fregs, st.frames = iregs, fregs, frames
	st.inPos = inPos
	st.cur, st.ib, st.fb = cur, ib, fb
	st.instrs = instrs
	st.pc = stepPC
	st.fast = false
	return

trapExit:
	st.iregs, st.fregs, st.frames = iregs, fregs, frames
	st.inPos = inPos
	st.cur, st.ib, st.fb = cur, ib, fb
	st.instrs = instrs
	{
		bi := st.blockAt(cur, dpc)
		pc := int(v.bPC[cur][bi]+v.bN[cur][bi]) - trapRem - trapBack
		st.trapFast(cur, pc, uint64(trapRem+trapBack-1), trapMsg)
	}
	return

doneExit:
	st.iregs, st.fregs, st.frames = iregs, fregs, frames
	st.inPos = inPos
	st.cur, st.ib, st.fb = cur, ib, fb
	st.instrs = instrs
	st.done = true
}

// trapFast finishes a fast-mode trap: the block's credited accounting
// counted notExec instructions that never ran, so back them out of
// the total and (for PerPC runs) record which pcs of the trapping
// block to uncount at finalize. pc is the trapping original
// instruction, which did execute and does count.
func (st *exec) trapFast(fn, pc int, notExec uint64, msg string) {
	st.instrs -= notExec
	if st.c.PerPC {
		blks := st.im.blocks[fn]
		lo, hi := 0, len(blks)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if int(blks[mid].start) <= pc {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		st.adjFn = fn
		st.adjFrom = pc + 1
		st.adjTo = int(blks[lo].start + blks[lo].n)
	}
	st.err = &RuntimeError{Func: st.p.Funcs[fn].Name, PC: pc,
		GlobalPC: st.im.funcBase[fn] + pc, Instrs: st.instrs, Msg: msg}
	st.done = true
}

package vm

import (
	"bytes"
	"os"
	"testing"

	"branchprof/internal/isa"
	"branchprof/internal/vm/codegen/difftest"
)

// The codegen leg of the differential fuzz suite. Generated Go code
// must be compiled before it can run, so these comparisons happen in
// a subprocess harness (internal/vm/codegen/difftest) rather than in
// the fuzz executor: TestCodegenSeedDifferential batches a corpus of
// generator-derived programs into one harness build and always runs;
// setting BRANCHPROF_FUZZ_CODEGEN=1 additionally gives every
// FuzzVMDifferential execution its own harness run (slow — one Go
// build per input — so it is opt-in for fuzzing sessions hunting
// codegen divergences specifically).

var fuzzCodegen = os.Getenv("BRANCHPROF_FUZZ_CODEGEN") != ""

// codegenCorpus derives a deterministic spread of fuzz-generator
// programs: the fixed fuzz seeds plus xorshift-derived inputs, capped
// and digest-deduplicated.
func codegenCorpus() (progs []*isa.Program, inputs [][]byte) {
	var datas [][]byte
	datas = append(datas,
		[]byte{2, 9, 30, 1, 2, 3, 35, 0, 4, 41, 1, 5, 44, 7, 0},
		bytes.Repeat([]byte{31, 14, 45, 3}, 16),
		[]byte{1, 12, 44, 0, 45, 1, 46, 2, 30, 5, 255, 255},
	)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return byte(state)
	}
	for i := 0; i < 64; i++ {
		d := make([]byte, 8+int(next())%48)
		for j := range d {
			d[j] = next()
		}
		datas = append(datas, d)
	}
	seen := make(map[string]bool)
	for _, data := range datas {
		prog := fuzzProgram(data)
		if prog == nil {
			continue
		}
		d := isa.ProgramDigest(prog)
		if seen[d] {
			continue
		}
		seen[d] = true
		var input []byte
		if len(data) > 4 {
			input = data[len(data)-4:]
		}
		progs = append(progs, prog)
		inputs = append(inputs, input)
		if len(progs) >= 24 {
			break
		}
	}
	return progs, inputs
}

// TestCodegenSeedDifferential compiles a corpus of fuzz-generator
// programs with the codegen backend and demands interpreter/codegen
// agreement on results, errors, traces, and fuel cuts — the always-on
// half of the codegen fuzz leg.
func TestCodegenSeedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness build")
	}
	progs, inputs := codegenCorpus()
	if len(progs) < 8 {
		t.Fatalf("corpus degenerated: only %d programs", len(progs))
	}
	if err := difftest.Compare(progs, inputs); err != nil {
		t.Fatal(err)
	}
}

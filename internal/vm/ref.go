// The reference interpreter: the original one-giant-switch loop the
// fast back end (see predecode.go, fast.go, step.go) was measured
// against. It remains the executable semantic specification — the
// differential suite and FuzzVMDifferential run it side by side with
// the fast path and require bit-identical Results — and the runtime
// fallback for images that fail static verification (bad targets,
// functions not ending in a control transfer), whose trap behaviour
// depends on per-instruction pc checks the fast path deliberately
// drops.
package vm

import (
	"fmt"
	"math"

	"branchprof/internal/isa"
)

// runReference executes p exactly as the pre-decoded back end does,
// one instruction and one check at a time. cfg must already be filled.
func runReference(p *isa.Program, input []byte, c *Config) (*Result, error) {
	res := &Result{
		SiteTaken: make([]uint64, len(p.Sites)),
		SiteTotal: make([]uint64, len(p.Sites)),
	}
	if c.PerPC {
		res.PerPC = make([][]uint64, len(p.Funcs))
		for i := range p.Funcs {
			res.PerPC[i] = make([]uint64, len(p.Funcs[i].Code))
		}
	}

	imem := make([]int64, p.IntMem)
	copy(imem, p.IntData)
	fmem := make([]float64, p.FloatMem)
	copy(fmem, p.FloatData)

	// Register stacks. Frames are windows into these slabs.
	iregs := make([]int64, 0, 4096)
	fregs := make([]float64, 0, 4096)
	frames := make([]frame, 0, 256)

	push := func(fi int, retPC int, iBase, fBase int, resReg int32, indirect bool) {
		f := &p.Funcs[fi]
		frames = append(frames, frame{fn: int32(fi), retPC: int32(retPC),
			iBase: int32(iBase), fBase: int32(fBase), resReg: resReg, indirect: indirect})
		iregs = growInt(iregs, iBase, f.NumIRegs)
		fregs = growFloat(fregs, fBase, f.NumFRegs)
	}

	// Enter main with no arguments.
	push(p.Main, -1, 0, 0, -1, false)
	cur := p.Main
	code := p.Funcs[cur].Code
	ib, fb := 0, 0
	pc := 0
	inPos := 0

	trap := func(msg string) error {
		// The global PC places the trap in a flat layout of the image:
		// every earlier function's code, then pc within the current one.
		global := pc
		for i := 0; i < cur; i++ {
			global += len(p.Funcs[i].Code)
		}
		return &RuntimeError{Func: p.Funcs[cur].Name, PC: pc, GlobalPC: global,
			Instrs: res.Instrs, Msg: msg}
	}

	fuel := c.Fuel
	// One flag gates the whole periodic-poll block, so runs with
	// neither cancellation nor sampling pay a single comparison.
	poll := c.Done != nil || c.Sample != nil
	var stackBuf []int32
	if c.Sample != nil {
		stackBuf = make([]int32, 0, 64)
	}
	for {
		if res.Instrs >= fuel {
			return res, fmt.Errorf("%w after %d instructions in %s", ErrFuel, res.Instrs, p.Source)
		}
		if poll && res.Instrs&4095 == 0 {
			if c.Done != nil {
				select {
				case <-c.Done:
					return res, fmt.Errorf("%w after %d instructions in %s", ErrCancelled, res.Instrs, p.Source)
				default:
				}
			}
			if c.Sample != nil {
				stackBuf = stackBuf[:0]
				for i := range frames {
					stackBuf = append(stackBuf, int32(frames[i].fn))
				}
				c.Sample(stackBuf, res.Instrs)
			}
		}
		if pc < 0 || pc >= len(code) {
			return res, trap("pc out of range")
		}
		in := &code[pc]
		res.Instrs++
		if c.PerPC {
			res.PerPC[cur][pc]++
		}
		switch in.Op {
		case isa.OpNop:
		case isa.OpAdd:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] + iregs[ib+int(in.B)]
		case isa.OpSub:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] - iregs[ib+int(in.B)]
		case isa.OpMul:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] * iregs[ib+int(in.B)]
		case isa.OpDiv:
			d := iregs[ib+int(in.B)]
			if d == 0 {
				return res, trap("integer divide by zero")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] / d
		case isa.OpRem:
			d := iregs[ib+int(in.B)]
			if d == 0 {
				return res, trap("integer remainder by zero")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] % d
		case isa.OpAnd:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] & iregs[ib+int(in.B)]
		case isa.OpOr:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] | iregs[ib+int(in.B)]
		case isa.OpXor:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] ^ iregs[ib+int(in.B)]
		case isa.OpShl:
			sh := iregs[ib+int(in.B)]
			if sh < 0 || sh > 63 {
				return res, trap("shift amount out of range")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] << uint(sh)
		case isa.OpShr:
			sh := iregs[ib+int(in.B)]
			if sh < 0 || sh > 63 {
				return res, trap("shift amount out of range")
			}
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)] >> uint(sh)
		case isa.OpNeg:
			iregs[ib+int(in.C)] = -iregs[ib+int(in.A)]
		case isa.OpNot:
			iregs[ib+int(in.C)] = ^iregs[ib+int(in.A)]
		case isa.OpSlt:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] < iregs[ib+int(in.B)])
		case isa.OpSle:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] <= iregs[ib+int(in.B)])
		case isa.OpSeq:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] == iregs[ib+int(in.B)])
		case isa.OpSne:
			iregs[ib+int(in.C)] = b2i(iregs[ib+int(in.A)] != iregs[ib+int(in.B)])

		case isa.OpFAdd:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] + fregs[fb+int(in.B)]
		case isa.OpFSub:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] - fregs[fb+int(in.B)]
		case isa.OpFMul:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] * fregs[fb+int(in.B)]
		case isa.OpFDiv:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)] / fregs[fb+int(in.B)]
		case isa.OpFNeg:
			fregs[fb+int(in.C)] = -fregs[fb+int(in.A)]
		case isa.OpFSlt:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] < fregs[fb+int(in.B)])
		case isa.OpFSle:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] <= fregs[fb+int(in.B)])
		case isa.OpFSeq:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] == fregs[fb+int(in.B)])
		case isa.OpFSne:
			iregs[ib+int(in.C)] = b2i(fregs[fb+int(in.A)] != fregs[fb+int(in.B)])

		case isa.OpCvtIF:
			fregs[fb+int(in.C)] = float64(iregs[ib+int(in.A)])
		case isa.OpCvtFI:
			f := fregs[fb+int(in.A)]
			if math.IsNaN(f) || f > math.MaxInt64 || f < math.MinInt64 {
				return res, trap("float to int conversion out of range")
			}
			iregs[ib+int(in.C)] = int64(f)

		case isa.OpLdi:
			iregs[ib+int(in.C)] = in.Imm
		case isa.OpLdf:
			fregs[fb+int(in.C)] = in.FImm
		case isa.OpMov:
			iregs[ib+int(in.C)] = iregs[ib+int(in.A)]
		case isa.OpFMov:
			fregs[fb+int(in.C)] = fregs[fb+int(in.A)]

		case isa.OpLd:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(imem)) {
				return res, trap(fmt.Sprintf("int load address %d out of range [0,%d)", a, len(imem)))
			}
			iregs[ib+int(in.C)] = imem[a]
		case isa.OpSt:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(imem)) {
				return res, trap(fmt.Sprintf("int store address %d out of range [0,%d)", a, len(imem)))
			}
			imem[a] = iregs[ib+int(in.B)]
		case isa.OpFLd:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(fmem)) {
				return res, trap(fmt.Sprintf("float load address %d out of range [0,%d)", a, len(fmem)))
			}
			fregs[fb+int(in.C)] = fmem[a]
		case isa.OpFSt:
			a := iregs[ib+int(in.A)] + in.Imm
			if a < 0 || a >= int64(len(fmem)) {
				return res, trap(fmt.Sprintf("float store address %d out of range [0,%d)", a, len(fmem)))
			}
			fmem[a] = fregs[fb+int(in.B)]

		case isa.OpBr:
			res.SiteTotal[in.Site]++
			taken := iregs[ib+int(in.A)] != 0
			if taken {
				res.SiteTaken[in.Site]++
			}
			if c.Trace != nil {
				c.Trace.Branch(in.Site, taken, res.Instrs)
			}
			if taken {
				pc = int(in.Target)
				continue
			}
		case isa.OpJmp:
			res.Jumps++
			if c.Trace != nil {
				c.Trace.Transfer(TransferJump, res.Instrs)
			}
			pc = int(in.Target)
			continue
		case isa.OpCall, isa.OpICall:
			var fi int
			indirect := in.Op == isa.OpICall
			if indirect {
				fi = int(iregs[ib+int(in.A)])
				if fi < 0 || fi >= len(p.Funcs) {
					return res, trap(fmt.Sprintf("indirect call to bad function index %d", fi))
				}
				res.IndirectCalls++
				if c.Trace != nil {
					c.Trace.Transfer(TransferIndirectCall, res.Instrs)
				}
			} else {
				fi = int(in.Target)
				res.DirectCalls++
				if c.Trace != nil {
					c.Trace.Transfer(TransferCall, res.Instrs)
				}
			}
			if len(frames) >= c.MaxDepth {
				return res, trap("call stack overflow")
			}
			callee := &p.Funcs[fi]
			niBase := len(iregs)
			nfBase := len(fregs)
			// Stage arguments: they sit contiguously in the caller's
			// windows starting at in.A (ints; in.B for icall) and at
			// in.B (floats; none for icall).
			var iArg, fArg int
			if indirect {
				iArg = int(in.B)
			} else {
				iArg = int(in.A)
				fArg = int(in.B)
			}
			push(fi, pc+1, niBase, nfBase, in.C, indirect)
			ni, nf := 0, 0
			for pi := 0; pi < callee.NumParams; pi++ {
				if pi < len(callee.FParams) && callee.FParams[pi] {
					if indirect {
						return res, trap("indirect call to function with float parameters")
					}
					fregs[nfBase+nf] = fregs[fb+fArg]
					fArg++
					nf++
				} else {
					iregs[niBase+ni] = iregs[ib+iArg]
					iArg++
					ni++
				}
			}
			if d := len(frames); d > res.MaxDepth {
				res.MaxDepth = d
			}
			cur = fi
			code = callee.Code
			ib, fb = niBase, nfBase
			pc = 0
			continue
		case isa.OpRet:
			fr := frames[len(frames)-1]
			if fr.indirect {
				res.IndirectReturns++
				if c.Trace != nil {
					c.Trace.Transfer(TransferIndirectReturn, res.Instrs)
				}
			} else if fr.retPC >= 0 {
				res.DirectReturns++
				if c.Trace != nil {
					c.Trace.Transfer(TransferReturn, res.Instrs)
				}
			}
			f := &p.Funcs[cur]
			var iv int64
			var fv float64
			switch f.Kind {
			case isa.FuncInt:
				iv = iregs[ib+int(in.A)]
			case isa.FuncFloat:
				fv = fregs[fb+int(in.A)]
			}
			// Pop the frame.
			iregs = iregs[:ib]
			fregs = fregs[:fb]
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				res.ExitCode = iv
				return res, nil
			}
			caller := frames[len(frames)-1]
			cur = int(caller.fn)
			code = p.Funcs[cur].Code
			ib, fb = int(caller.iBase), int(caller.fBase)
			pc = int(fr.retPC)
			if fr.resReg >= 0 {
				switch f.Kind {
				case isa.FuncInt:
					iregs[ib+int(fr.resReg)] = iv
				case isa.FuncFloat:
					fregs[fb+int(fr.resReg)] = fv
				}
			}
			continue

		case isa.OpGetc:
			if inPos < len(input) {
				iregs[ib+int(in.C)] = int64(input[inPos])
				inPos++
			} else {
				iregs[ib+int(in.C)] = -1
			}
		case isa.OpPutc:
			if len(res.Output) >= c.MaxOutput {
				return res, trap("output limit exceeded")
			}
			res.Output = append(res.Output, byte(iregs[ib+int(in.A)]))
		case isa.OpHalt:
			res.ExitCode = iregs[ib+int(in.A)]
			return res, nil

		case isa.OpSqrt:
			fregs[fb+int(in.C)] = math.Sqrt(fregs[fb+int(in.A)])
		case isa.OpSin:
			fregs[fb+int(in.C)] = math.Sin(fregs[fb+int(in.A)])
		case isa.OpCos:
			fregs[fb+int(in.C)] = math.Cos(fregs[fb+int(in.A)])
		case isa.OpExp:
			fregs[fb+int(in.C)] = math.Exp(fregs[fb+int(in.A)])
		case isa.OpLog:
			fregs[fb+int(in.C)] = math.Log(fregs[fb+int(in.A)])
		case isa.OpFAbs:
			fregs[fb+int(in.C)] = math.Abs(fregs[fb+int(in.A)])
		case isa.OpFloor:
			fregs[fb+int(in.C)] = math.Floor(fregs[fb+int(in.A)])
		case isa.OpPow:
			fregs[fb+int(in.C)] = math.Pow(fregs[fb+int(in.A)], fregs[fb+int(in.B)])
		case isa.OpSel:
			if iregs[ib+int(in.A)] != 0 {
				iregs[ib+int(in.C)] = iregs[ib+int(in.B)]
			} else {
				iregs[ib+int(in.C)] = iregs[ib+int(in.Imm)]
			}
		case isa.OpFSel:
			if iregs[ib+int(in.A)] != 0 {
				fregs[fb+int(in.C)] = fregs[fb+int(in.B)]
			} else {
				fregs[fb+int(in.C)] = fregs[fb+int(in.Imm)]
			}

		default:
			return res, trap(fmt.Sprintf("unimplemented op %v", in.Op))
		}
		pc++
	}
}

// growInt sizes the integer register slab for a frame window
// [base, base+n) in one step and zeroes the window. A non-positive n
// leaves the slab untouched, matching the element-at-a-time growth
// the interpreter used before.
func growInt(regs []int64, base, n int) []int64 {
	if n <= 0 {
		return regs
	}
	need := base + n
	if need > len(regs) {
		if need <= cap(regs) {
			regs = regs[:need]
		} else {
			grown := make([]int64, need, max(need, 2*cap(regs)))
			copy(grown, regs)
			regs = grown
		}
	}
	clear(regs[base : base+n])
	return regs
}

// growFloat is growInt for the float register slab.
func growFloat(regs []float64, base, n int) []float64 {
	if n <= 0 {
		return regs
	}
	need := base + n
	if need > len(regs) {
		if need <= cap(regs) {
			regs = regs[:need]
		} else {
			grown := make([]float64, need, max(need, 2*cap(regs)))
			copy(grown, regs)
			regs = grown
		}
	}
	clear(regs[base : base+n])
	return regs
}

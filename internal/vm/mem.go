// Per-run memory images and their reuse pool. Building a run's memory
// means copying the program's data section into a full-size buffer —
// for heap-heavy workloads that is megabytes of memmove per run, and
// profiles showed it costing more than a tenth of total interpreter
// time. Instead of rebuilding from scratch, each Image pools finished
// buffers and the interpreter tracks the span of addresses every run
// actually stored to; reuse restores only that dirty span to the data
// section's initial values.
//
// Correctness leans on two invariants: stores are the only writes to
// imem/fmem after construction (dSt/dFSt/dStRetN in the fast loop,
// OpSt/OpFSt in the step loop — all five call dirtyInt/dirtyFloat
// before writing), and a run that panics never returns its buffer, so
// a buffer in the pool is always clean outside the restored span.
package vm

// memBuf is one run's worth of mutable state — memory images plus the
// register and frame slabs — pooled per Image. The slabs are reused
// at length zero: every window is cleared by growInt/growFloat before
// the callee can read it, so stale contents are unobservable, and
// skipping the quarter-megabyte of zeroing a fresh slab allocation
// pays is the point.
type memBuf struct {
	imem   []int64
	fmem   []float64
	iregs  []int64
	fregs  []float64
	frames []frame
}

// getMem returns a ready-to-run buffer set, reusing a pooled one when
// available.
func (im *Image) getMem() *memBuf {
	if v := im.memPool.Get(); v != nil {
		return v.(*memBuf)
	}
	p := im.prog
	return &memBuf{
		imem:   initMem(p.IntData, p.IntMem),
		fmem:   initMem(p.FloatData, p.FloatMem),
		iregs:  make([]int64, 0, 1<<15),
		fregs:  make([]float64, 0, 4096),
		frames: make([]frame, 0, 1024),
	}
}

// putMem restores the spans the finished run stored to and returns
// the buffers to the pool for the next run.
func (im *Image) putMem(st *exec) {
	restoreSpan(st.imem, im.prog.IntData, st.iLo, st.iHi)
	restoreSpan(st.fmem, im.prog.FloatData, st.fLo, st.fHi)
	im.memPool.Put(&memBuf{
		imem:   st.imem,
		fmem:   st.fmem,
		iregs:  st.iregs[:0],
		fregs:  st.fregs[:0],
		frames: st.frames[:0],
	})
}

// restoreSpan resets m[lo:hi] to its initial contents: the data
// section where it overlaps, zero beyond it.
func restoreSpan[T int64 | float64](m, data []T, lo, hi int) {
	if lo >= hi {
		return
	}
	if lo < len(data) {
		e := min(hi, len(data))
		copy(m[lo:e], data[lo:e])
		lo = e
	}
	clear(m[lo:hi])
}

// initMem builds a memory image of size words starting with the data
// section. The data prefix is copied over anyway, so it is not
// pre-zeroed: append allocates without clearing the copied region and
// zeroes only [len, cap), which for images whose data section spans
// all of memory (common for workloads with big heaps) skips a
// full-size memclr on every run. Oversized data is truncated to size,
// matching the make+copy behavior this replaces.
func initMem[T int64 | float64](data []T, size int) []T {
	m := append([]T(nil), data...)
	switch {
	case len(m) > size:
		m = m[:size:size]
	case len(m) < size && cap(m) >= size:
		m = m[:size] // append zeroed [len, cap)
	case len(m) < size:
		grown := make([]T, size)
		copy(grown, m)
		m = grown
	}
	return m
}

package vm

import (
	"bytes"
	"fmt"
	"testing"

	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/workloads"
)

// The pre-decoded interpreter must be observationally identical to the
// reference interpreter: same Result counters, same output bytes, same
// error classification (including exact trap messages and instruction
// counts), on every workload and on every error path. These tests are
// the proof obligation behind SemanticsVersion staying at 1.

// runRef invokes the reference interpreter with the same config
// defaulting the public entry points apply.
func runRef(p *isa.Program, input []byte, cfg *Config) (*Result, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	return runReference(p, input, &c)
}

func diffCompare(t *testing.T, label string, ref, fast *Result, refErr, fastErr error) {
	t.Helper()
	if (refErr == nil) != (fastErr == nil) {
		t.Fatalf("%s: error mismatch: ref=%v fast=%v", label, refErr, fastErr)
	}
	if refErr != nil && refErr.Error() != fastErr.Error() {
		t.Fatalf("%s: error text mismatch:\n  ref:  %v\n  fast: %v", label, refErr, fastErr)
	}
	if ref == nil || fast == nil {
		if ref != fast {
			t.Fatalf("%s: result nilness mismatch: ref=%v fast=%v", label, ref, fast)
		}
		return
	}
	if ref.Instrs != fast.Instrs {
		t.Errorf("%s: Instrs: ref=%d fast=%d", label, ref.Instrs, fast.Instrs)
	}
	if ref.ExitCode != fast.ExitCode {
		t.Errorf("%s: ExitCode: ref=%d fast=%d", label, ref.ExitCode, fast.ExitCode)
	}
	if !bytes.Equal(ref.Output, fast.Output) {
		t.Errorf("%s: Output differs (%d vs %d bytes)", label, len(ref.Output), len(fast.Output))
	}
	for i := range ref.SiteTaken {
		if ref.SiteTaken[i] != fast.SiteTaken[i] || ref.SiteTotal[i] != fast.SiteTotal[i] {
			t.Errorf("%s: site %d: ref=%d/%d fast=%d/%d", label, i,
				ref.SiteTaken[i], ref.SiteTotal[i], fast.SiteTaken[i], fast.SiteTotal[i])
		}
	}
	if ref.Jumps != fast.Jumps {
		t.Errorf("%s: Jumps: ref=%d fast=%d", label, ref.Jumps, fast.Jumps)
	}
	if ref.DirectCalls != fast.DirectCalls || ref.DirectReturns != fast.DirectReturns {
		t.Errorf("%s: direct calls/returns: ref=%d/%d fast=%d/%d", label,
			ref.DirectCalls, ref.DirectReturns, fast.DirectCalls, fast.DirectReturns)
	}
	if ref.IndirectCalls != fast.IndirectCalls || ref.IndirectReturns != fast.IndirectReturns {
		t.Errorf("%s: indirect calls/returns: ref=%d/%d fast=%d/%d", label,
			ref.IndirectCalls, ref.IndirectReturns, fast.IndirectCalls, fast.IndirectReturns)
	}
	if ref.MaxDepth != fast.MaxDepth {
		t.Errorf("%s: MaxDepth: ref=%d fast=%d", label, ref.MaxDepth, fast.MaxDepth)
	}
	if (ref.PerPC == nil) != (fast.PerPC == nil) {
		t.Fatalf("%s: PerPC nilness mismatch", label)
	}
	for fi := range ref.PerPC {
		for pc := range ref.PerPC[fi] {
			if ref.PerPC[fi][pc] != fast.PerPC[fi][pc] {
				t.Errorf("%s: PerPC[%d][%d]: ref=%d fast=%d", label, fi, pc,
					ref.PerPC[fi][pc], fast.PerPC[fi][pc])
			}
		}
	}
}

// TestDifferentialWorkloads runs every dataset of every workload
// through both interpreters and demands bit-identical results, in
// plain mode and (first dataset) PerPC mode.
func TestDifferentialWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			im := Load(prog)
			for di, ds := range w.Datasets {
				input := ds.Gen()
				ref, refErr := runRef(prog, input, &Config{})
				fast, fastErr := im.Run(input, &Config{})
				diffCompare(t, ds.Name, ref, fast, refErr, fastErr)
				if di == 0 {
					refP, refErrP := runRef(prog, input, &Config{PerPC: true})
					fastP, fastErrP := im.Run(input, &Config{PerPC: true})
					diffCompare(t, ds.Name+"/perpc", refP, fastP, refErrP, fastErrP)
				}
			}
		})
	}
}

// diffTracer records the full event stream for stream-level comparison.
type diffTracer struct {
	events []string
}

func (d *diffTracer) Branch(site int32, taken bool, instrs uint64) {
	d.events = append(d.events, fmt.Sprintf("br %d %v @%d", site, taken, instrs))
}

func (d *diffTracer) Transfer(kind TransferKind, instrs uint64) {
	d.events = append(d.events, fmt.Sprintf("xf %v @%d", kind, instrs))
}

// TestDifferentialTraced compares the complete control-transfer event
// streams (order, kinds, sites, instruction stamps) on a workload
// subset. The traced variant shares no superinstruction fusions with
// the plain stream, so this pins the event protocol itself.
func TestDifferentialTraced(t *testing.T) {
	for _, name := range []string{"li", "eqntott", "tomcatv"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			input := w.Datasets[0].Gen()
			refTr, fastTr := &diffTracer{}, &diffTracer{}
			ref, refErr := runRef(prog, input, &Config{Trace: refTr})
			fast, fastErr := Load(prog).Run(input, &Config{Trace: fastTr})
			diffCompare(t, name, ref, fast, refErr, fastErr)
			if len(refTr.events) != len(fastTr.events) {
				t.Fatalf("event count: ref=%d fast=%d", len(refTr.events), len(fastTr.events))
			}
			for i := range refTr.events {
				if refTr.events[i] != fastTr.events[i] {
					t.Fatalf("event %d: ref=%q fast=%q", i, refTr.events[i], fastTr.events[i])
				}
			}
		})
	}
}

// TestDifferentialFuelSweep proves batched fuel accounting is exact:
// for fuels around interesting boundaries both interpreters must agree
// on whether ErrFuel fires, on the exact instruction count in the
// error, and on every partial counter.
func TestDifferentialFuelSweep(t *testing.T) {
	w, err := workloads.ByName("li")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	im := Load(prog)
	input := w.Datasets[0].Gen()
	full, err := im.Run(input, &Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := full.Instrs
	fuels := []uint64{1, 2, 3, 7, 100, 4095, 4096, 4097, 8192,
		n / 3, n / 2, n/2 + 1, n - 4097, n - 4096, n - 1, n, n + 1}
	for _, fuel := range fuels {
		if fuel == 0 || fuel > n+1 {
			continue
		}
		ref, refErr := runRef(prog, input, &Config{Fuel: fuel})
		fast, fastErr := im.Run(input, &Config{Fuel: fuel})
		diffCompare(t, fmt.Sprintf("fuel=%d", fuel), ref, fast, refErr, fastErr)
	}
}

// TestDifferentialTraps runs hand-built trapping programs through both
// interpreters; classification, message, and partial counters must
// match. Each program places the faulting instruction at a different
// offset inside its block so the fused-superinstruction trap recovery
// (rem/back bookkeeping) is exercised at several alignments.
func TestDifferentialTraps(t *testing.T) {
	mk := func(code ...isa.Instr) *isa.Program {
		p := &isa.Program{
			Funcs:    []isa.Func{{Name: "main", Kind: isa.FuncInt, NumIRegs: 8, Code: code}},
			Main:     0,
			IntMem:   16,
			FloatMem: 1,
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		prog *isa.Program
	}{
		{"div-zero", mk(
			isa.Instr{Op: isa.OpLdi, C: 0, Imm: 5},
			isa.Instr{Op: isa.OpLdi, C: 1, Imm: 0},
			isa.Instr{Op: isa.OpDiv, C: 2, A: 0, B: 1},
			isa.Instr{Op: isa.OpRet, A: 2},
		)},
		{"load-oob", mk(
			isa.Instr{Op: isa.OpLdi, C: 0, Imm: 99},
			isa.Instr{Op: isa.OpLd, C: 1, A: 0, Imm: 0},
			isa.Instr{Op: isa.OpRet, A: 1},
		)},
		{"store-oob", mk(
			isa.Instr{Op: isa.OpLdi, C: 0, Imm: -3},
			isa.Instr{Op: isa.OpLdi, C: 1, Imm: 7},
			isa.Instr{Op: isa.OpSt, A: 0, C: 1, Imm: 0},
			isa.Instr{Op: isa.OpRet, A: 1},
		)},
		{"load-oob-mid-block", mk(
			isa.Instr{Op: isa.OpLdi, C: 0, Imm: 1 << 40},
			isa.Instr{Op: isa.OpLdi, C: 1, Imm: 1},
			isa.Instr{Op: isa.OpAdd, C: 2, A: 0, B: 1},
			isa.Instr{Op: isa.OpLd, C: 3, A: 2, Imm: 0},
			isa.Instr{Op: isa.OpAdd, C: 4, A: 3, B: 1},
			isa.Instr{Op: isa.OpAdd, C: 5, A: 4, B: 1},
			isa.Instr{Op: isa.OpRet, A: 5},
		)},
	}
	for _, tc := range cases {
		ref, refErr := runRef(tc.prog, nil, &Config{})
		fast, fastErr := Load(tc.prog).Run(nil, &Config{})
		diffCompare(t, tc.name, ref, fast, refErr, fastErr)
		if refErr == nil {
			t.Errorf("%s: expected a trap, got success", tc.name)
		}
	}
}

package vm

import (
	"testing"

	"branchprof/internal/isa"
)

// recordingTracer captures every event the VM reports.
type recordingTracer struct {
	branches  []bool
	sites     []int32
	transfers []TransferKind
	instrs    []uint64
}

func (r *recordingTracer) Branch(site int32, taken bool, instrs uint64) {
	r.sites = append(r.sites, site)
	r.branches = append(r.branches, taken)
	r.instrs = append(r.instrs, instrs)
}

func (r *recordingTracer) Transfer(kind TransferKind, instrs uint64) {
	r.transfers = append(r.transfers, kind)
	r.instrs = append(r.instrs, instrs)
}

func TestTracerSeesEveryEvent(t *testing.T) {
	callee := isa.Func{
		Name: "f", Kind: isa.FuncInt, NumIRegs: 1,
		Code: []isa.Instr{{Op: isa.OpRet, A: 0}},
	}
	main := isa.Func{
		Name: "main", Kind: isa.FuncInt, NumIRegs: 4,
		Code: []isa.Instr{
			{Op: isa.OpLdi, C: 0, Imm: 0},            // 0: i = 0
			{Op: isa.OpLdi, C: 1, Imm: 3},            // 1: n
			{Op: isa.OpLdi, C: 3, Imm: 1},            // 2: one
			{Op: isa.OpCall, C: 2, Target: 1},        // 3: call f (direct)
			{Op: isa.OpAdd, C: 0, A: 0, B: 3},        // 4: i++
			{Op: isa.OpSlt, C: 2, A: 0, B: 1},        // 5: i < n
			{Op: isa.OpBr, A: 2, Target: 3, Site: 0}, // 6: loop
			{Op: isa.OpJmp, Target: 8},               // 7: jump
			{Op: isa.OpRet, A: 0},                    // 8
		},
	}
	p := &isa.Program{
		Funcs: []isa.Func{main, callee}, Main: 0, IntMem: 1, FloatMem: 1,
		Sites: []isa.BranchSite{{ID: 0, Func: "main"}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := &recordingTracer{}
	res, err := Run(p, nil, &Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	// 3 loop iterations: 3 branch events (2 taken, 1 not).
	if len(tr.branches) != 3 {
		t.Fatalf("branch events = %d, want 3", len(tr.branches))
	}
	taken := 0
	for _, b := range tr.branches {
		if b {
			taken++
		}
	}
	if taken != 2 {
		t.Errorf("taken events = %d, want 2", taken)
	}
	// Tracer and counters must agree.
	if uint64(len(tr.branches)) != res.CondBranches() {
		t.Errorf("tracer saw %d branches, counters say %d", len(tr.branches), res.CondBranches())
	}
	// Transfers: 3 calls + 3 returns + 1 jump.
	var calls, rets, jumps int
	for _, k := range tr.transfers {
		switch k {
		case TransferCall:
			calls++
		case TransferReturn:
			rets++
		case TransferJump:
			jumps++
		}
	}
	if calls != 3 || rets != 3 || jumps != 1 {
		t.Errorf("transfers = %d calls %d rets %d jumps, want 3/3/1", calls, rets, jumps)
	}
	// Event instruction stamps must be nondecreasing and within total.
	var last uint64
	for _, at := range tr.instrs {
		if at < last || at > res.Instrs {
			t.Fatalf("event stamp %d out of order (last %d, total %d)", at, last, res.Instrs)
		}
		last = at
	}
}

func TestTransferKindStrings(t *testing.T) {
	kinds := []TransferKind{TransferJump, TransferCall, TransferReturn, TransferIndirectCall, TransferIndirectReturn}
	for _, k := range kinds {
		if k.String() == "transfer(?)" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TransferKind(99).String() != "transfer(?)" {
		t.Error("unknown kind should render as placeholder")
	}
}

// Package flock provides advisory file locking for the repository's
// shared on-disk stores: the engine's persistent measurement cache
// directory and the ifprob database file. Two processes (or two
// engines in one process) pointed at the same store serialize their
// writes through an exclusive lock on a dedicated lock file, so a
// save never interleaves with another writer's save.
//
// The lock file itself is a zero-length sibling of the protected
// resource (`<dir>/.branchprof.lock` for a cache directory,
// `<path>.lock` for a database file; see docs/ENGINE.md). It is
// created on demand and never removed — on POSIX systems removing a
// lock file that another process holds open reintroduces the race the
// lock exists to close.
//
// Locks are advisory: readers that tolerate concurrent writers (the
// cache's load path validates every entry anyway) may skip locking
// entirely.
package flock

import (
	"fmt"
	"os"
	"path/filepath"
)

// Lock is a held advisory lock. Release it with Unlock.
type Lock struct {
	f *os.File
}

// Acquire takes an exclusive advisory lock on path, creating the file
// if needed, and blocks until the lock is granted. The parent
// directory is created on demand.
func Acquire(path string) (*Lock, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("flock: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("flock: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("flock: locking %s: %w", path, err)
	}
	return &Lock{f: f}, nil
}

// Unlock releases the lock. Safe on nil and idempotent.
func (l *Lock) Unlock() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	uerr := unlockFile(f)
	cerr := f.Close()
	if uerr != nil {
		return fmt.Errorf("flock: %w", uerr)
	}
	if cerr != nil {
		return fmt.Errorf("flock: %w", cerr)
	}
	return nil
}

// CacheLockPath returns the lock file guarding a persistent cache
// directory.
func CacheLockPath(dir string) string {
	return filepath.Join(dir, ".branchprof.lock")
}

// DBLockPath returns the lock file guarding a database file.
func DBLockPath(path string) string { return path + ".lock" }

//go:build !unix

package flock

import "os"

// Non-unix platforms fall back to no-op locking: the stores remain
// crash-consistent on their own (temp file + rename), the lock only
// adds cross-process serialization where flock(2) exists.
func lockFile(*os.File) error   { return nil }
func unlockFile(*os.File) error { return nil }

package flock

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestMain lets the cross-process test re-exec the test binary as a
// lock-holding worker.
func TestMain(m *testing.M) {
	if dir := os.Getenv("FLOCK_WORKER_DIR"); dir != "" {
		iters, _ := strconv.Atoi(os.Getenv("FLOCK_WORKER_ITERS"))
		if err := worker(dir, iters); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// worker performs iters lock-guarded read-modify-write cycles on a
// shared counter file. Without mutual exclusion, concurrent workers
// lose updates.
func worker(dir string, iters int) error {
	counter := filepath.Join(dir, "counter")
	for i := 0; i < iters; i++ {
		l, err := Acquire(CacheLockPath(dir))
		if err != nil {
			return err
		}
		data, err := os.ReadFile(counter)
		if err != nil {
			l.Unlock()
			return err
		}
		n, err := strconv.Atoi(string(data))
		if err != nil {
			l.Unlock()
			return fmt.Errorf("corrupt counter %q: %v", data, err)
		}
		runtime.Gosched() // widen the window a lost update would need
		if err := os.WriteFile(counter, []byte(strconv.Itoa(n+1)), 0o644); err != nil {
			l.Unlock()
			return err
		}
		if err := l.Unlock(); err != nil {
			return err
		}
	}
	return nil
}

// TestMutualExclusionGoroutines proves the lock serializes critical
// sections within one process: overlapping holders would be observed
// by the inCritical flag.
func TestMutualExclusionGoroutines(t *testing.T) {
	dir := t.TempDir()
	path := CacheLockPath(dir)
	var mu sync.Mutex
	inCritical := false
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				l, err := Acquire(path)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				mu.Lock()
				if inCritical {
					t.Error("two holders inside the critical section")
				}
				inCritical = true
				mu.Unlock()
				time.Sleep(50 * time.Microsecond)
				mu.Lock()
				inCritical = false
				mu.Unlock()
				if err := l.Unlock(); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMutualExclusionProcesses proves two real processes serialize on
// the same lock file: each performs non-atomic read-modify-write
// cycles on a shared counter, and no update is lost.
func TestMutualExclusionProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no test binary path: %v", err)
	}
	dir := t.TempDir()
	counter := filepath.Join(dir, "counter")
	if err := os.WriteFile(counter, []byte("0"), 0o644); err != nil {
		t.Fatal(err)
	}
	const procs, iters = 4, 25
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd := exec.Command(exe, "-test.run=TestMain")
			cmd.Env = append(os.Environ(),
				"FLOCK_WORKER_DIR="+dir,
				"FLOCK_WORKER_ITERS="+strconv.Itoa(iters))
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Errorf("worker: %v\n%s", err, out)
			}
		}()
	}
	wg.Wait()
	data, err := os.ReadFile(counter)
	if err != nil {
		t.Fatal(err)
	}
	got, err := strconv.Atoi(string(data))
	if err != nil {
		t.Fatalf("corrupt counter %q: %v", data, err)
	}
	if want := procs * iters; got != want {
		t.Fatalf("lost updates: counter = %d, want %d", got, want)
	}
}

// TestUnlockIdempotent checks Unlock on nil and double-unlock.
func TestUnlockIdempotent(t *testing.T) {
	var nilLock *Lock
	if err := nilLock.Unlock(); err != nil {
		t.Fatalf("nil unlock: %v", err)
	}
	l, err := Acquire(DBLockPath(filepath.Join(t.TempDir(), "db.json")))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(); err != nil {
		t.Fatalf("second unlock: %v", err)
	}
}

//go:build unix

package flock

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive flock(2) on f, blocking until granted.
// flock locks belong to the open file description, so the lock is
// released either explicitly or when the descriptor closes (including
// on process death — a crashed holder never wedges the store).
func lockFile(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if err != syscall.EINTR {
			return err
		}
	}
}

func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}

package pixie

import (
	"strings"
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/vm"
)

const src = `
func hot() int {
	var i int;
	var s int = 0;
	for (i = 0; i < 200; i = i + 1) {
		s = s + i;
	}
	return s;
}
func cold() int { return 1; }
func main() int {
	var r int = hot();
	r = r + cold();
	return r;
}
`

func analyze(t *testing.T) *Report {
	t.Helper()
	prog, err := mfc.Compile("pixprog", src, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, nil, &vm.Config{PerPC: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != res.Instrs {
		t.Errorf("report total %d != run total %d", rep.Total, res.Instrs)
	}
	return rep
}

func TestHottestFunctionFirst(t *testing.T) {
	rep := analyze(t)
	if len(rep.PerFunc) < 3 {
		t.Fatalf("per-func entries: %d", len(rep.PerFunc))
	}
	if rep.PerFunc[0].Name != "hot" {
		t.Errorf("hottest = %s, want hot", rep.PerFunc[0].Name)
	}
	var sum uint64
	for _, f := range rep.PerFunc {
		sum += f.Instrs
	}
	if sum != rep.Total {
		t.Errorf("per-func sums to %d, total %d", sum, rep.Total)
	}
}

func TestMixSumsToTotal(t *testing.T) {
	rep := analyze(t)
	var sum uint64
	for _, m := range rep.Mix {
		sum += m.Count
	}
	if sum != rep.Total {
		t.Errorf("mix sums to %d, total %d", sum, rep.Total)
	}
}

func TestBranchDensity(t *testing.T) {
	rep := analyze(t)
	d := rep.BranchDensity()
	if d <= 1 || d > 100 {
		t.Errorf("branch density = %v, expected a small loop-dominated value", d)
	}
}

func TestStringRendering(t *testing.T) {
	rep := analyze(t)
	out := rep.String()
	for _, want := range []string{"pixprog", "total instructions", "hot", "instruction mix"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestAnalyzeRequiresPerPC(t *testing.T) {
	prog, err := mfc.Compile("pixprog", src, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, res); err == nil {
		t.Error("Analyze should require per-PC counts")
	}
}

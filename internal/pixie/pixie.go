// Package pixie produces detailed dynamic instruction reports from VM
// runs, modeled on MFPixie (Multiflow's internal Pixie-like tool): the
// total RISC-level instruction count, per-function counts, the
// instruction mix, and the branch density figures the paper's
// motivation section turns on (li executes a conditional branch about
// every 10 instructions, fpppp about every 170).
package pixie

import (
	"fmt"
	"sort"
	"strings"

	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

// FuncCount is the dynamic instruction count of one function.
type FuncCount struct {
	Name   string
	Instrs uint64
}

// MixEntry is one opcode's share of execution.
type MixEntry struct {
	Op    isa.Op
	Count uint64
}

// Report is the full dynamic analysis of a run.
type Report struct {
	Program      string
	Total        uint64
	CondBranches uint64
	PerFunc      []FuncCount // descending by count
	Mix          []MixEntry  // descending by count
}

// BranchDensity returns instructions per executed conditional branch.
func (r *Report) BranchDensity() float64 {
	if r.CondBranches == 0 {
		return float64(r.Total)
	}
	return float64(r.Total) / float64(r.CondBranches)
}

// Analyze builds a report. The run must have been made with
// vm.Config.PerPC set; otherwise only totals are available and
// Analyze reports an error.
func Analyze(p *isa.Program, res *vm.Result) (*Report, error) {
	if res.PerPC == nil {
		return nil, fmt.Errorf("pixie: run was not made with per-PC counting enabled")
	}
	if len(res.PerPC) != len(p.Funcs) {
		return nil, fmt.Errorf("pixie: run has %d functions of counts, program has %d", len(res.PerPC), len(p.Funcs))
	}
	r := &Report{Program: p.Source, Total: res.Instrs, CondBranches: res.CondBranches()}
	var mix [256]uint64
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		var n uint64
		for pc, c := range res.PerPC[fi] {
			n += c
			mix[f.Code[pc].Op] += c
		}
		if n > 0 {
			r.PerFunc = append(r.PerFunc, FuncCount{Name: f.Name, Instrs: n})
		}
	}
	sort.Slice(r.PerFunc, func(i, j int) bool {
		if r.PerFunc[i].Instrs != r.PerFunc[j].Instrs {
			return r.PerFunc[i].Instrs > r.PerFunc[j].Instrs
		}
		return r.PerFunc[i].Name < r.PerFunc[j].Name
	})
	for op, c := range mix {
		if c > 0 {
			r.Mix = append(r.Mix, MixEntry{Op: isa.Op(op), Count: c})
		}
	}
	sort.Slice(r.Mix, func(i, j int) bool {
		if r.Mix[i].Count != r.Mix[j].Count {
			return r.Mix[i].Count > r.Mix[j].Count
		}
		return r.Mix[i].Op < r.Mix[j].Op
	})
	return r, nil
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pixie report for %s\n", r.Program)
	fmt.Fprintf(&b, "  total instructions: %d\n", r.Total)
	fmt.Fprintf(&b, "  conditional branches: %d (1 per %.1f instructions)\n", r.CondBranches, r.BranchDensity())
	fmt.Fprintf(&b, "  hottest functions:\n")
	for i, fcount := range r.PerFunc {
		if i >= 10 {
			break
		}
		fmt.Fprintf(&b, "    %-20s %12d (%.1f%%)\n", fcount.Name, fcount.Instrs, 100*float64(fcount.Instrs)/float64(r.Total))
	}
	fmt.Fprintf(&b, "  instruction mix:\n")
	for i, me := range r.Mix {
		if i >= 12 {
			break
		}
		fmt.Fprintf(&b, "    %-8s %12d (%.1f%%)\n", me.Op, me.Count, 100*float64(me.Count)/float64(r.Total))
	}
	return b.String()
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"branchprof/internal/circuit"
	"branchprof/internal/faults"
	"branchprof/internal/store/replstore"
)

// The sync plane is branchprofd's peer-replication machinery: when a
// node is started with peers (Options.Peers / -peers), its profile
// store is wrapped in internal/store/replstore and two internal
// endpoints open up:
//
//	GET  /v1/sync/digest — this node's anti-entropy digest
//	POST /v1/sync/pull   — fetch named components by (key, origin)
//
// A background gossip loop periodically pulls from every peer: fetch
// the peer's digest, diff it against local state, pull the components
// the peer is ahead on, apply the winners, persist the touched keys.
// Sync exchanges bypass admission control (they are cheap reads and
// must keep working while the compute plane is saturated) but carry
// their own guards: a per-peer circuit breaker (reusing
// internal/circuit) so an unreachable peer costs one probe per
// cooldown instead of a timeout per round, a bounded number of
// concurrent peer syncs, jittered intervals so a cluster started in
// unison does not gossip in lockstep, and a cap on refs per pull
// request. Every exchange consults the faults.PeerFetch stage first,
// which is how the cluster soak injects partitions and slow links.
// See docs/SERVER.md and docs/STORE.md.

// maxPullRefs caps the refs in one /v1/sync/pull request; the gossip
// loop chunks larger diffs. Keeps any single sync response bounded.
const maxPullRefs = 512

// digestResponse is the GET /v1/sync/digest body.
type digestResponse struct {
	Self   string           `json:"self"`
	Digest replstore.Digest `json:"digest"`
}

// pullRequest is the POST /v1/sync/pull body.
type pullRequest struct {
	Refs []replstore.Ref `json:"refs"`
}

// pullResponse is its reply.
type pullResponse struct {
	Self       string                `json:"self"`
	Components []replstore.Component `json:"components"`
}

// handleSyncDigest serves this replica's anti-entropy digest.
func (s *Server) handleSyncDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, digestResponse{Self: s.repl.Self(), Digest: s.repl.Digest()})
}

// handleSyncPull serves component state to a pulling peer.
func (s *Server) handleSyncPull(w http.ResponseWriter, r *http.Request) {
	var req pullRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Refs) > maxPullRefs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("at most %d refs per pull", maxPullRefs))
		return
	}
	comps, err := s.repl.Fetch(r.Context(), req.Refs)
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	writeJSON(w, http.StatusOK, pullResponse{Self: s.repl.Self(), Components: comps})
}

// syncPeer is the gossip loop's per-peer state.
type syncPeer struct {
	addr string // base URL, e.g. "http://127.0.0.1:7071"
	brk  *circuit.Breaker

	mu      sync.Mutex
	syncs   uint64 // completed sync rounds
	errs    uint64 // failed sync rounds
	pulled  uint64 // components applied from this peer
	skipped uint64 // rounds skipped by the open breaker
	pending int    // components this node holds that the peer lacks (hand-off backlog)
	lastErr string
}

func (p *syncPeer) snapshot() peerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	return peerHealth{
		Addr:    p.addr,
		Breaker: p.brk.State().String(),
		Syncs:   p.syncs,
		Errors:  p.errs,
		Pulled:  p.pulled,
		Skipped: p.skipped,
		Pending: p.pending,
		LastErr: p.lastErr,
	}
}

// syncer owns the gossip loop.
type syncer struct {
	s        *Server
	rs       *replstore.Store
	peers    []*syncPeer
	client   *http.Client
	interval time.Duration
	timeout  time.Duration
	sem      chan struct{} // bounds concurrent peer syncs

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newSyncer(s *Server, rs *replstore.Store) *syncer {
	sy := &syncer{
		s:        s,
		rs:       rs,
		client:   &http.Client{Timeout: s.opts.SyncTimeout},
		interval: s.opts.SyncInterval,
		timeout:  s.opts.SyncTimeout,
		sem:      make(chan struct{}, s.opts.SyncConcurrency),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, addr := range s.opts.Peers {
		sy.peers = append(sy.peers, &syncPeer{
			addr: strings.TrimRight(addr, "/"),
			brk:  circuit.New(s.opts.BreakerThreshold, s.opts.BreakerCooldown, s.opts.Obs.Now),
		})
	}
	return sy
}

// run is the gossip loop: one bounded-concurrency round per jittered
// interval until shutdown. Started by Listen; tests drive rounds
// directly through Server.SyncNow instead.
func (sy *syncer) run() {
	defer close(sy.done)
	for {
		// ±20% jitter keeps replicas started together from gossiping in
		// lockstep (and their disk writes from aligning).
		jitter := time.Duration(rand.Int63n(int64(sy.interval)/2+1)) - sy.interval/4
		select {
		case <-sy.stop:
			return
		case <-time.After(sy.interval + jitter):
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			select {
			case <-sy.stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		sy.round(ctx)
		cancel()
	}
}

// shutdown stops the loop and waits for any in-flight round to finish,
// so the drain-time final save sees replication quiesced.
func (sy *syncer) shutdown() {
	sy.stopOnce.Do(func() { close(sy.stop) })
	<-sy.done
}

// round syncs with every peer, at most cap(sem) concurrently, and
// returns the first error per failing peer joined together.
func (sy *syncer) round(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(sy.peers))
	for i, p := range sy.peers {
		select {
		case sy.sem <- struct{}{}:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(i int, p *syncPeer) {
			defer wg.Done()
			defer func() { <-sy.sem }()
			errs[i] = sy.syncPeer(ctx, p)
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// syncPeer runs one anti-entropy pull from p, through its breaker.
func (sy *syncer) syncPeer(ctx context.Context, p *syncPeer) error {
	if !p.brk.Allow() {
		p.mu.Lock()
		p.skipped++
		p.mu.Unlock()
		sy.s.m.replSkipped(p.addr)
		return nil
	}
	pulled, err := sy.pull(ctx, p)
	p.brk.Record(err)
	p.mu.Lock()
	if err != nil {
		p.errs++
		p.lastErr = err.Error()
		p.mu.Unlock()
		sy.s.m.replSync(p.addr, false)
		return fmt.Errorf("sync %s: %w", p.addr, err)
	}
	p.syncs++
	p.pulled += uint64(pulled)
	p.lastErr = ""
	p.mu.Unlock()
	sy.s.m.replSync(p.addr, true)
	sy.s.m.replPulled(p.addr, pulled)
	return nil
}

// pull fetches p's digest, pulls every component p is ahead on, and
// applies the winners, persisting the touched keys. It also recomputes
// the hand-off backlog owed to p (components we hold that p lacks —
// p will pull them from us when it can reach us).
func (sy *syncer) pull(ctx context.Context, p *syncPeer) (applied int, err error) {
	ctx, cancel := context.WithTimeout(ctx, sy.timeout)
	defer cancel()
	// The chaos hook: partition/delay rules for this peer fire here,
	// before any network I/O.
	if err := sy.s.opts.Faults.Fire(faults.PeerFetch, p.addr); err != nil {
		return 0, err
	}
	var dig digestResponse
	if err := sy.getJSON(ctx, p.addr+"/v1/sync/digest", &dig); err != nil {
		return 0, err
	}
	if dig.Self == sy.rs.Self() {
		return 0, fmt.Errorf("peer %s reports our own node ID %q (misconfigured -self?)", p.addr, dig.Self)
	}
	p.mu.Lock()
	p.pending = len(sy.rs.Owed(dig.Digest))
	p.mu.Unlock()

	refs := sy.rs.Diff(dig.Digest)
	touched := make(map[string]bool)
	for len(refs) > 0 {
		chunk := refs
		if len(chunk) > maxPullRefs {
			chunk = chunk[:maxPullRefs]
		}
		refs = refs[len(chunk):]
		var resp pullResponse
		if err := sy.postJSON(ctx, p.addr+"/v1/sync/pull", pullRequest{Refs: chunk}, &resp); err != nil {
			return applied, err
		}
		for _, c := range resp.Components {
			ok, err := sy.rs.Apply(ctx, c)
			if err != nil {
				return applied, fmt.Errorf("applying %s/%s: %w", c.Key, c.Origin, err)
			}
			if ok {
				applied++
				touched[c.Key] = true
			}
		}
	}
	if len(touched) > 0 {
		keys := make([]string, 0, len(touched))
		for k := range touched {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sy.s.saveDB(ctx, keys...)
	}
	return applied, nil
}

func (sy *syncer) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return sy.do(req, v)
}

func (sy *syncer) postJSON(ctx context.Context, url string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return sy.do(req, v)
}

func (sy *syncer) do(req *http.Request, v any) error {
	resp, err := sy.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: %s", req.Method, req.URL.Path, resp.Status)
	}
	// Digests and component chunks are bounded by maxPullRefs, but a
	// confused peer must not OOM us.
	return json.NewDecoder(http.MaxBytesReader(nil, resp.Body, 64<<20)).Decode(v)
}

// SyncNow runs one full anti-entropy round against every configured
// peer, synchronously, and returns the joined per-peer errors. It is
// the deterministic entry point the cluster soak drives instead of
// waiting on the jittered background loop; calling it on a server with
// no peers is a no-op.
func (s *Server) SyncNow(ctx context.Context) error {
	if s.syncer == nil {
		return nil
	}
	return s.syncer.round(ctx)
}

// Repl returns the replication layer, or nil when the server runs
// standalone.
func (s *Server) Repl() *replstore.Store { return s.repl }

// peerHealth is one peer's entry in /healthz.
type peerHealth struct {
	Addr    string `json:"addr"`
	Breaker string `json:"breaker"`
	Syncs   uint64 `json:"syncs"`
	Errors  uint64 `json:"errors"`
	Pulled  uint64 `json:"pulled"`
	Skipped uint64 `json:"skipped"`
	// Pending is the hand-off backlog: components this node holds that
	// the peer lacked at last contact. Non-zero while a partitioned
	// peer has not yet caught up.
	Pending int    `json:"pending"`
	LastErr string `json:"last_error,omitempty"`
}

// replHealth is the replication block in /healthz.
type replHealth struct {
	Self  string       `json:"self"`
	Peers []peerHealth `json:"peers"`
}

// replHealthz builds the /healthz replication block, nil when
// replication is off.
func (s *Server) replHealthz() *replHealth {
	if s.syncer == nil {
		return nil
	}
	rh := &replHealth{Self: s.repl.Self()}
	for _, p := range s.syncer.peers {
		rh.Peers = append(rh.Peers, p.snapshot())
	}
	return rh
}

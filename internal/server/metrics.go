package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"branchprof/internal/obs"
)

// serverMetrics is branchprofd's instrumentation, registered on the
// engine's registry so /metrics serves the whole picture (pipeline
// stages, caches, and the serving layer) from one endpoint. Metric
// names are documented in docs/SERVER.md.
type serverMetrics struct {
	reg *obs.Registry

	shedQueueFull *obs.Counter
	shedDraining  *obs.Counter
	panics        *obs.Counter

	dbSaves   *obs.Counter
	dbErrors  *obs.Counter
	dbSkipped *obs.Counter

	latency *obs.Histogram

	// lastEngineDiskErrs is the high-water mark of engine cache I/O
	// failures already fed into the circuit breaker.
	lastEngineDiskErrs atomic.Uint64

	mu       sync.Mutex
	requests map[string]*obs.Counter // route|code → counter
}

func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	const shedHelp = "Requests rejected by admission control."
	const dbHelp = "Profile database save attempts by outcome."
	m := &serverMetrics{
		reg:           reg,
		shedQueueFull: reg.Counter(`branchprofd_shed_total{reason="queue_full"}`, shedHelp),
		shedDraining:  reg.Counter(`branchprofd_shed_total{reason="draining"}`, shedHelp),
		panics:        reg.Counter("branchprofd_panics_total", "Handler panics recovered into 500s."),
		dbSaves:       reg.Counter(`branchprofd_db_save_total{result="ok"}`, dbHelp),
		dbErrors:      reg.Counter(`branchprofd_db_save_total{result="error"}`, dbHelp),
		dbSkipped:     reg.Counter(`branchprofd_db_save_total{result="skipped"}`, dbHelp),
		latency: reg.Histogram("branchprofd_request_seconds",
			"Request latency by route, admission wait included.", obs.DefLatencyBuckets),
		requests: make(map[string]*obs.Counter),
	}
	reg.GaugeFunc("branchprofd_inflight", "Requests holding an execution slot.",
		func() float64 { e, _ := s.gate.load(); return float64(e) })
	reg.GaugeFunc("branchprofd_queued", "Requests waiting for an execution slot.",
		func() float64 { _, q := s.gate.load(); return float64(q) })
	reg.GaugeFunc("branchprofd_breaker_open", "Persistent-I/O circuit breaker: 0 closed, 1 open, 0.5 half-open.",
		func() float64 {
			switch s.breaker.State() {
			case breakerOpen:
				return 1
			case breakerHalfOpen:
				return 0.5
			}
			return 0
		})
	reg.GaugeFunc("branchprofd_degraded", "1 while in compute-only degraded mode.",
		func() float64 {
			if s.breaker.Degraded() {
				return 1
			}
			return 0
		})
	return m
}

// observe records one finished request.
func (m *serverMetrics) observe(route string, code int, d time.Duration) {
	if m.reg == nil {
		return
	}
	key := fmt.Sprintf("%s|%d", route, code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = m.reg.Counter(
			fmt.Sprintf(`branchprofd_requests_total{route=%q,code="%d"}`, route, code),
			"Requests by route and status code.")
		m.requests[key] = c
	}
	m.mu.Unlock()
	c.Inc()
	m.latency.Observe(d.Seconds())
}

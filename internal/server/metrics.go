package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"branchprof/internal/circuit"
	"branchprof/internal/obs"
	"branchprof/internal/store"
)

// serverMetrics is branchprofd's instrumentation, registered on the
// engine's registry so /metrics serves the whole picture (pipeline
// stages, caches, and the serving layer) from one endpoint. Metric
// names are documented in docs/SERVER.md.
type serverMetrics struct {
	reg *obs.Registry

	shedQueueFull *obs.Counter
	shedDraining  *obs.Counter
	panics        *obs.Counter

	dbSaves   *obs.Counter
	dbErrors  *obs.Counter
	dbSkipped *obs.Counter

	// H2P report instrumentation (see /v1/h2p): reports served by mode,
	// and the shape of the most recent report.
	h2pProfiles    *obs.Counter
	h2pTraced      *obs.Counter
	h2pLastSites   *obs.Gauge
	h2pLastTopMPKI *obs.Gauge
	h2pLastInstrs  *obs.Gauge

	// Per-peer replication counters, keyed by peer base URL. The maps
	// are written once at construction and read-only after; nil
	// counters (no registry) ignore operations.
	replSyncOK   map[string]*obs.Counter
	replSyncErr  map[string]*obs.Counter
	replSyncSkip map[string]*obs.Counter
	replPulledC  map[string]*obs.Counter

	latency *obs.Histogram

	// lastEngineDiskErrs is the high-water mark of engine cache I/O
	// failures already fed into the circuit breaker.
	lastEngineDiskErrs atomic.Uint64

	mu       sync.Mutex
	requests map[string]*obs.Counter // route|code → counter
}

func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	const shedHelp = "Requests rejected by admission control."
	const dbHelp = "Profile database save attempts by outcome."
	m := &serverMetrics{
		reg:           reg,
		shedQueueFull: reg.Counter(`branchprofd_shed_total{reason="queue_full"}`, shedHelp),
		shedDraining:  reg.Counter(`branchprofd_shed_total{reason="draining"}`, shedHelp),
		panics:        reg.Counter("branchprofd_panics_total", "Handler panics recovered into 500s."),
		dbSaves:       reg.Counter(`branchprofd_db_save_total{result="ok"}`, dbHelp),
		dbErrors:      reg.Counter(`branchprofd_db_save_total{result="error"}`, dbHelp),
		dbSkipped:     reg.Counter(`branchprofd_db_save_total{result="skipped"}`, dbHelp),
		h2pProfiles: reg.Counter(`branchprof_h2p_reports_total{mode="profiles"}`,
			"H2P branch reports served by mode."),
		h2pTraced: reg.Counter(`branchprof_h2p_reports_total{mode="traced"}`,
			"H2P branch reports served by mode."),
		h2pLastSites: reg.Gauge("branchprof_h2p_last_sites",
			"Static branch sites covered by the most recent H2P report."),
		h2pLastTopMPKI: reg.Gauge("branchprof_h2p_last_top_mpki",
			"Score (MPKI) of the hardest branch in the most recent H2P report."),
		h2pLastInstrs: reg.Gauge("branchprof_h2p_last_traced_instrs",
			"Instructions executed by the most recent traced H2P run."),
		latency: reg.Histogram("branchprofd_request_seconds",
			"Request latency by route, admission wait included.", obs.DefLatencyBuckets),
		requests:     make(map[string]*obs.Counter),
		replSyncOK:   make(map[string]*obs.Counter),
		replSyncErr:  make(map[string]*obs.Counter),
		replSyncSkip: make(map[string]*obs.Counter),
		replPulledC:  make(map[string]*obs.Counter),
	}
	reg.GaugeFunc("branchprofd_inflight", "Requests holding an execution slot.",
		func() float64 { e, _ := s.gate.load(); return float64(e) })
	reg.GaugeFunc("branchprofd_queued", "Requests waiting for an execution slot.",
		func() float64 { _, q := s.gate.load(); return float64(q) })
	reg.GaugeFunc("branchprofd_breaker_open", "Persistent-I/O circuit breaker: 0 closed, 1 open, 0.5 half-open.",
		func() float64 { return breakerValue(s.breaker.State().String()) })
	reg.GaugeFunc("branchprofd_degraded", "1 while in (possibly partial) compute-only degraded mode.",
		func() float64 {
			if s.Degraded() {
				return 1
			}
			return 0
		})
	m.registerStoreGauges(s)
	m.registerWALGauges(s)
	m.registerReplMetrics(s)
	return m
}

// registerWALGauges exposes the write-ahead journal's shape
// (branchprofd_wal_*). No-op when the server runs without -wal.
func (m *serverMetrics) registerWALGauges(s *Server) {
	if m.reg == nil || s.wal == nil {
		return
	}
	m.reg.GaugeFunc("branchprofd_wal_pending",
		"Journaled records not yet saved by the wrapped driver (the replay backlog).",
		func() float64 { return float64(s.wal.WALStats().Pending) })
	m.reg.GaugeFunc("branchprofd_wal_segments", "Journal segment files on disk.",
		func() float64 { return float64(s.wal.WALStats().Segments) })
	m.reg.GaugeFunc("branchprofd_wal_bytes", "Total journal bytes on disk.",
		func() float64 { return float64(s.wal.WALStats().Bytes) })
	m.reg.GaugeFunc("branchprofd_wal_last_seq", "Last sequence number assigned to a journal record.",
		func() float64 { return float64(s.wal.WALStats().LastSeq) })
	m.reg.GaugeFunc("branchprofd_wal_appends_total", "Records appended to the journal since open.",
		func() float64 { return float64(s.wal.WALStats().Appends) })
	m.reg.GaugeFunc("branchprofd_wal_syncs_total", "Journal fsyncs since open.",
		func() float64 { return float64(s.wal.WALStats().Syncs) })
	m.reg.GaugeFunc("branchprofd_wal_replayed_total", "Records replayed into the driver at open.",
		func() float64 { return float64(s.wal.WALStats().Replayed) })
	m.reg.GaugeFunc("branchprofd_wal_truncated_total", "Segments deleted or reset after their records became durable.",
		func() float64 { return float64(s.wal.WALStats().Truncated) })
	m.reg.GaugeFunc("branchprofd_wal_broken",
		"1 while a torn append has poisoned the journal tail (restart required).",
		func() float64 {
			if s.wal.Broken() {
				return 1
			}
			return 0
		})
}

// registerReplMetrics exposes the replication plane: per-peer sync
// outcomes, components pulled, breaker state, and the hand-off backlog
// owed to each peer. The peer set is fixed at startup, so registering
// one series per peer is safe. No-op on standalone nodes.
func (m *serverMetrics) registerReplMetrics(s *Server) {
	if s.syncer == nil {
		return
	}
	const syncHelp = "Peer anti-entropy rounds by outcome."
	find := func(addr string) *syncPeer {
		for _, p := range s.syncer.peers {
			if p.addr == addr {
				return p
			}
		}
		return nil
	}
	for _, p := range s.syncer.peers {
		addr := p.addr
		m.replSyncOK[addr] = m.reg.Counter(
			fmt.Sprintf(`branchprofd_repl_sync_total{peer=%q,result="ok"}`, addr), syncHelp)
		m.replSyncErr[addr] = m.reg.Counter(
			fmt.Sprintf(`branchprofd_repl_sync_total{peer=%q,result="error"}`, addr), syncHelp)
		m.replSyncSkip[addr] = m.reg.Counter(
			fmt.Sprintf(`branchprofd_repl_sync_total{peer=%q,result="skipped"}`, addr), syncHelp)
		m.replPulledC[addr] = m.reg.Counter(
			fmt.Sprintf(`branchprofd_repl_pulled_total{peer=%q}`, addr),
			"Components applied from each peer.")
		if m.reg != nil {
			m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_repl_breaker_open{peer=%q}`, addr),
				"Per-peer sync circuit breaker: 0 closed, 1 open, 0.5 half-open.",
				func() float64 {
					if p := find(addr); p != nil {
						return breakerValue(p.brk.State().String())
					}
					return 0
				})
			m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_repl_pending{peer=%q}`, addr),
				"Components this node holds that the peer lacked at last contact (hand-off backlog).",
				func() float64 {
					if p := find(addr); p != nil {
						p.mu.Lock()
						defer p.mu.Unlock()
						return float64(p.pending)
					}
					return 0
				})
		}
	}
}

// replSync records one finished peer round.
func (m *serverMetrics) replSync(peer string, ok bool) {
	if ok {
		m.replSyncOK[peer].Inc()
	} else {
		m.replSyncErr[peer].Inc()
	}
}

// replSkipped records a round skipped by the peer's open breaker.
func (m *serverMetrics) replSkipped(peer string) { m.replSyncSkip[peer].Inc() }

// replPulled records components applied from a peer.
func (m *serverMetrics) replPulled(peer string, n int) {
	if n > 0 {
		m.replPulledC[peer].Add(uint64(n))
	}
}

// h2pReport records one served H2P report: the mode counter plus the
// last-report shape gauges. Traced reports also record the run's
// instruction count; profile-only reports leave that gauge alone (no
// run happened).
func (m *serverMetrics) h2pReport(mode string, sites int, topMPKI float64, instrs uint64) {
	if mode == "traced" {
		m.h2pTraced.Inc()
		m.h2pLastInstrs.Set(float64(instrs))
	} else {
		m.h2pProfiles.Inc()
	}
	m.h2pLastSites.Set(float64(sites))
	m.h2pLastTopMPKI.Set(topMPKI)
}

// breakerValue encodes a breaker state name as the conventional
// 0/0.5/1 gauge value.
func breakerValue(state string) float64 {
	switch state {
	case circuit.Open.String():
		return 1
	case circuit.HalfOpen.String():
		return 0.5
	}
	return 0
}

// registerStoreGauges exposes the profile store's shape on the shared
// registry. The aggregate gauges exist for every driver; sharded
// stores additionally get per-shard series (branchprofd_store_shard_*)
// so a single sick shard is visible from /metrics. The shard set is
// fixed at open time, so registering once per shard is safe.
func (m *serverMetrics) registerStoreGauges(s *Server) {
	if m.reg == nil {
		return
	}
	m.reg.GaugeFunc("branchprofd_store_keys", "Profile keys resident in the store.",
		func() float64 { return float64(s.store.Stats().Keys) })
	m.reg.GaugeFunc("branchprofd_store_degraded", "1 while any shard breaker is open or probing.",
		func() float64 {
			if s.store.Stats().Degraded {
				return 1
			}
			return 0
		})
	shardStat := func(name string) store.ShardStats {
		for _, sh := range s.store.Stats().Shards {
			if sh.Name == name {
				return sh
			}
		}
		return store.ShardStats{}
	}
	for _, sh := range s.store.Stats().Shards {
		name := sh.Name
		m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_store_shard_keys{shard=%q}`, name),
			"Profile keys resident per shard.",
			func() float64 { return float64(shardStat(name).Keys) })
		m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_store_shard_dirty{shard=%q}`, name),
			"1 while the shard has unsaved changes.",
			func() float64 {
				if shardStat(name).Dirty {
					return 1
				}
				return 0
			})
		m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_store_shard_breaker_open{shard=%q}`, name),
			"Per-shard circuit breaker: 0 closed, 1 open, 0.5 half-open.",
			func() float64 { return breakerValue(shardStat(name).Breaker) })
		m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_store_shard_saves{shard=%q,result="ok"}`, name),
			"Per-shard save attempts by outcome.",
			func() float64 { return float64(shardStat(name).Saves) })
		m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_store_shard_saves{shard=%q,result="error"}`, name),
			"Per-shard save attempts by outcome.",
			func() float64 { return float64(shardStat(name).SaveErrors) })
		m.reg.GaugeFunc(fmt.Sprintf(`branchprofd_store_shard_saves{shard=%q,result="skipped"}`, name),
			"Per-shard save attempts by outcome.",
			func() float64 { return float64(shardStat(name).SaveSkipped) })
	}
}

// observe records one finished request.
func (m *serverMetrics) observe(route string, code int, d time.Duration) {
	if m.reg == nil {
		return
	}
	key := fmt.Sprintf("%s|%d", route, code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = m.reg.Counter(
			fmt.Sprintf(`branchprofd_requests_total{route=%q,code="%d"}`, route, code),
			"Requests by route and status code.")
		m.requests[key] = c
	}
	m.mu.Unlock()
	c.Inc()
	m.latency.Observe(d.Seconds())
}

package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"

	"branchprof/internal/dynpred"
	"branchprof/internal/exp"
	"branchprof/internal/ifprob"
	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/runlength"
	"branchprof/internal/vm"
)

// The /v1/h2p endpoint serves hard-to-predict branch reports: which
// static branches keep costing mispredicts no matter the predictor
// (Lin & Tarsa's H2P characterization), ranked by mispredicts per
// kilo-instruction. It has two modes:
//
//   - GET ?program=X&n=N answers purely from stored profiles: per-site
//     taken-rate, outcome entropy, and the cost of the best static
//     prediction (min(taken, not-taken) mispredicts), with no program
//     re-run — cheap, but blind to history-sensitive behaviour;
//   - POST {program, source, dataset, input, ...} compiles and traces
//     one run through the full predictor zoo (profile-fed static,
//     1-bit, 2-bit, two-level, gshare, bi-mode) plus the per-branch
//     outcome recorder, and ranks sites by their minimum MPKI across
//     schemes — the real H2P score.

// h2pProfileSite is one ranked branch in the profile-only (GET) report.
type h2pProfileSite struct {
	Site     int    `json:"site"`
	Executed uint64 `json:"executed"`
	Taken    uint64 `json:"taken"`
	// TakenRate and Entropy characterize the outcome distribution;
	// MPKI is the per-kilo-instruction cost of the best static
	// prediction for the site — a lower bound on what any per-site
	// static scheme pays, computable without re-running the program.
	TakenRate float64 `json:"taken_rate"`
	Entropy   float64 `json:"entropy"`
	MPKI      float64 `json:"mpki"`
}

// h2pProfileResponse is the GET /v1/h2p reply.
type h2pProfileResponse struct {
	Program  string   `json:"program"`
	Mode     string   `json:"mode"` // "profiles"
	Datasets []string `json:"datasets"`
	// SkippedDatasets lists profiles accumulated under a different
	// compilation (site-count mismatch with the first dataset seen);
	// they cannot be merged into one per-site view.
	SkippedDatasets []string         `json:"skipped_datasets,omitempty"`
	Sites           int              `json:"sites"`
	Instrs          uint64           `json:"instrs"`
	Top             []h2pProfileSite `json:"top"`
	Degraded        bool             `json:"degraded"`
}

// h2pRequest is the POST /v1/h2p body: one traced run through the
// predictor zoo.
type h2pRequest struct {
	Program string      `json:"program"`
	Source  string      `json:"source"`
	Dataset string      `json:"dataset"`
	Input   string      `json:"input"`
	Options mfc.Options `json:"options"`
	// Fuel caps the run's instruction budget; 0 (or anything above the
	// server's MaxFuel) is clamped to MaxFuel.
	Fuel uint64 `json:"fuel"`
	// N caps the ranking; 0 means 10.
	N int `json:"n"`
}

// h2pTracedSite is one ranked branch in the traced (POST) report.
type h2pTracedSite struct {
	Site      int     `json:"site"`
	Func      string  `json:"func"`
	Line      int     `json:"line"`
	Label     string  `json:"label"`
	Executed  uint64  `json:"executed"`
	TakenRate float64 `json:"taken_rate"`
	Entropy   float64 `json:"entropy"`
	MeanRun   float64 `json:"mean_run"`
	MaxRun    uint64  `json:"max_run"`
	// MPKI lists the site's cost under every scheme; Score is the
	// minimum — a branch is only as hard as its best predictor finds it.
	MPKI  []runlength.SchemeMPKI `json:"mpki"`
	Score float64                `json:"score"`
}

// h2pTracedResponse is the POST /v1/h2p reply.
type h2pTracedResponse struct {
	Program string `json:"program"`
	Mode    string `json:"mode"` // "traced"
	Dataset string `json:"dataset"`
	// TrainedOn lists the stored datasets that fed the static
	// profile-based scheme; empty means it fell back to the loop
	// heuristic.
	TrainedOn     []string        `json:"trained_on"`
	HeuristicOnly bool            `json:"heuristic_only"`
	Sites         int             `json:"sites"`
	Instrs        uint64          `json:"instrs"`
	Top           []h2pTracedSite `json:"top"`
	Degraded      bool            `json:"degraded"`
}

// handleH2P dispatches on method: GET is the profile-only report,
// POST the traced run.
func (s *Server) handleH2P(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleH2PProfiles(w, r)
	case http.MethodPost:
		s.handleH2PTraced(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// handleH2PProfiles characterizes a program's branches from its stored
// profiles alone.
func (s *Server) handleH2PProfiles(w http.ResponseWriter, r *http.Request) {
	program := r.URL.Query().Get("program")
	if !nameRE.MatchString(program) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("program name must match %s", nameRE))
		return
	}
	n, ok := pageParam(r, "n", 10)
	if !ok {
		writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
		return
	}
	keys, err := s.store.Keys(r.Context())
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	sort.Strings(keys)
	// Merge every stored profile that shares the first-seen compiled
	// shape; profiles from a different compilation of the same name are
	// reported as skipped rather than silently mixed.
	var merged *ifprob.Profile
	resp := h2pProfileResponse{Program: program, Mode: "profiles"}
	for _, key := range keys {
		p, ds := splitDBKey(key)
		if p != program {
			continue
		}
		prof, err := s.store.Get(r.Context(), key)
		if err != nil || prof == nil {
			continue // key raced away between Keys and Get
		}
		// Stored profiles carry the composite program@dataset key in
		// Program; normalize so per-dataset profiles of one program merge.
		prof = prof.Clone()
		prof.Program = program
		if merged == nil {
			merged = prof
			resp.Datasets = append(resp.Datasets, ds)
			continue
		}
		if prof.Sites() != merged.Sites() || merged.Merge(prof) != nil {
			resp.SkippedDatasets = append(resp.SkippedDatasets, ds)
			continue
		}
		resp.Datasets = append(resp.Datasets, ds)
	}
	if merged == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no profiles accumulated for %q", program))
		return
	}
	resp.Sites = merged.Sites()
	resp.Instrs = merged.Instrs
	sites := make([]h2pProfileSite, 0, merged.Sites())
	for i := range merged.Total {
		total, taken := merged.Total[i], merged.Taken[i]
		if total == 0 {
			continue
		}
		// The best static prediction follows the majority direction, so
		// it mispredicts the minority count.
		miss := taken
		if other := total - taken; other < miss {
			miss = other
		}
		sites = append(sites, h2pProfileSite{
			Site:      i,
			Executed:  total,
			Taken:     taken,
			TakenRate: float64(taken) / float64(total),
			Entropy:   runlength.Entropy(taken, total),
			MPKI:      runlength.MPKI(miss, merged.Instrs),
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.MPKI != b.MPKI {
			return a.MPKI > b.MPKI
		}
		if a.Executed != b.Executed {
			return a.Executed > b.Executed
		}
		return a.Site < b.Site
	})
	if n > 0 && n < len(sites) {
		sites = sites[:n]
	}
	resp.Top = sites
	resp.Degraded = s.Degraded()
	s.m.h2pReport("profiles", resp.Sites, topScore(resp.Top), 0)
	writeJSON(w, http.StatusOK, resp)
}

// handleH2PTraced compiles the submitted program, runs it once with
// the full predictor zoo attached, and ranks its branches by minimum
// MPKI across schemes.
func (s *Server) handleH2PTraced(w http.ResponseWriter, r *http.Request) {
	var req h2pRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !nameRE.MatchString(req.Program) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("program name must match %s", nameRE))
		return
	}
	if req.Dataset != "" && !nameRE.MatchString(req.Dataset) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("dataset name must match %s", nameRE))
		return
	}
	if req.Source == "" || len(req.Source) > maxSourceLen {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("source is required and at most %d bytes", maxSourceLen))
		return
	}
	if len(req.Input) > maxInputLen {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("input exceeds %d bytes", maxInputLen))
		return
	}
	if req.N < 0 {
		writeError(w, http.StatusBadRequest, "n must be non-negative")
		return
	}
	n := req.N
	if n == 0 {
		n = 10
	}
	prog, err := s.eng.CompileContext(r.Context(), req.Program, req.Source, req.Options)
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}

	// Feed the static scheme from the program's stored profiles — the
	// paper's feedback loop — falling back to the loop heuristic when
	// nothing usable is accumulated.
	keys, err := s.store.Keys(r.Context())
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	sort.Strings(keys)
	var train []*ifprob.Profile
	var trainedOn []string
	for _, key := range keys {
		p, ds := splitDBKey(key)
		if p != req.Program {
			continue
		}
		prof, err := s.store.Get(r.Context(), key)
		if err != nil || prof == nil || prof.Sites() != len(prog.Sites) {
			continue
		}
		train = append(train, prof)
		trainedOn = append(trainedOn, ds)
	}
	pr, err := predict.Combine(train, predict.Scaled, prog.Sites, predict.LoopHeuristic)
	heuristicOnly := false
	if errors.Is(err, predict.ErrNoProfiles) {
		pr = predict.FromHeuristic(prog.Sites, predict.LoopHeuristic)
		heuristicOnly = true
		trainedOn = nil
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	dirs := make([]bool, len(pr.Dir))
	for i, d := range pr.Dir {
		dirs[i] = d == predict.Taken
	}

	static := dynpred.NewStatic("profile", dirs)
	preds := append([]dynpred.Predictor{static}, dynpred.Zoo(len(prog.Sites))...)
	rec := runlength.NewSites(len(prog.Sites))
	multi := &dynpred.Multi{Predictors: preds, Extra: []vm.Tracer{rec}}

	fuel := req.Fuel
	if fuel == 0 || fuel > s.opts.MaxFuel {
		fuel = s.opts.MaxFuel
	}
	res, err := s.eng.RunContext(r.Context(), prog, "", []byte(req.Input), &vm.Config{Fuel: fuel, Trace: multi})
	s.feedEngineDiskHealth()
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	if err := multi.Err(); err != nil {
		// Predictors sized from the compiled program can only trip this
		// on an internal invariant violation — an honest 500.
		writeError(w, http.StatusInternalServerError, "tracer contract violation: "+err.Error())
		return
	}

	schemes := make([]runlength.SchemeMisses, len(preds))
	for i, p := range preds {
		schemes[i] = runlength.SchemeMisses{Scheme: p.Name(), Misses: p.SiteMispredicts()}
	}
	entries := runlength.RankH2P(rec.Stats(), res.Instrs, schemes, n)
	resp := h2pTracedResponse{
		Program:       req.Program,
		Mode:          "traced",
		Dataset:       req.Dataset,
		TrainedOn:     trainedOn,
		HeuristicOnly: heuristicOnly,
		Sites:         len(prog.Sites),
		Instrs:        res.Instrs,
		Top:           make([]h2pTracedSite, 0, len(entries)),
		Degraded:      s.Degraded(),
	}
	for _, e := range entries {
		site := h2pTracedSite{
			Site:      e.Stats.Site,
			Executed:  e.Stats.Executed,
			TakenRate: e.Stats.TakenRate,
			Entropy:   e.Stats.Entropy,
			MeanRun:   e.Stats.MeanRun,
			MaxRun:    e.Stats.MaxRun,
			MPKI:      e.MPKI,
			Score:     e.Score,
		}
		if e.Stats.Site < len(prog.Sites) {
			meta := prog.Sites[e.Stats.Site]
			site.Func, site.Line, site.Label = meta.Func, meta.Line, meta.Label
		}
		resp.Top = append(resp.Top, site)
	}
	var top float64
	if len(resp.Top) > 0 {
		top = resp.Top[0].Score
	}
	s.m.h2pReport("traced", resp.Sites, top, res.Instrs)
	// All scores are finite here, but route through the same non-finite-
	// safe encoder as /v1/predict so the contract cannot rot.
	data, err := exp.MarshalSafe(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data) //nolint:errcheck // client gone is not actionable
}

// topScore is the MPKI of the worst-ranked branch, for the gauge.
func topScore(top []h2pProfileSite) float64 {
	if len(top) == 0 {
		return 0
	}
	return top[0].MPKI
}

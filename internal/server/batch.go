package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"branchprof/internal/engine"
	"branchprof/internal/store"
	"branchprof/internal/vm"
)

// Batch and streaming ingest: POST /v1/profile/batch accepts many
// profile requests in one body and fans them out across the engine's
// worker pool (one admission slot, one store save for every touched
// shard); POST /v1/profile/stream accepts NDJSON — one profile
// request per line — and answers NDJSON, one result per line plus a
// trailing summary, saving touched shards periodically so a long
// stream's profiles become durable as it flows rather than only at
// the end.

const (
	// maxBatchEntries caps one batch body. The transport body cap
	// (MaxBodyBytes) usually binds first; this bounds the slice even
	// for tiny entries.
	maxBatchEntries = 256
	// streamSaveEvery is how many accepted stream entries accumulate
	// between periodic saves of the touched shards.
	streamSaveEvery = 32
)

// batchRequest is the POST /v1/profile/batch body.
type batchRequest struct {
	Entries []profileRequest `json:"entries"`
}

// batchEntry is one entry's outcome, in entry order. Status carries
// the HTTP status the entry would have received as a single request.
type batchEntry struct {
	Index   int              `json:"index"`
	Status  int              `json:"status"`
	Error   string           `json:"error,omitempty"`
	Profile *profileResponse `json:"profile,omitempty"`
}

// batchResponse is the POST /v1/profile/batch reply. The batch itself
// is 200 whenever it was well-formed; per-entry failures live in
// Results.
type batchResponse struct {
	Results   []batchEntry `json:"results"`
	OK        int          `json:"ok"`
	Failed    int          `json:"failed"`
	Persisted bool         `json:"persisted"`
	// Journaled reports whether the batch's merges are in the
	// write-ahead journal per the configured fsync policy; false when
	// the server runs without -wal.
	Journaled bool `json:"journaled"`
	Degraded  bool `json:"degraded"`
}

// specFor converts a validated profile request into an engine spec.
func (s *Server) specFor(req *profileRequest) engine.Spec {
	fuel := req.Fuel
	if fuel == 0 || fuel > s.opts.MaxFuel {
		fuel = s.opts.MaxFuel
	}
	return engine.Spec{
		Name:    req.Program,
		Source:  req.Source,
		Options: req.Options,
		Dataset: req.Dataset,
		Input:   []byte(req.Input),
		Config:  vm.Config{Fuel: fuel},
	}
}

// mergeOutcome folds one successful execution into the store and
// builds the entry's profile summary. It returns the touched store
// key ("" when the merge failed) alongside the entry.
func (s *Server) mergeOutcome(ctx context.Context, req *profileRequest, out *engine.Outcome) (string, batchEntry) {
	key := dbKey(req.Program, req.Dataset)
	prof := out.Prof.Clone()
	prof.Program = key
	if err := s.store.Merge(ctx, prof); err != nil {
		if errors.Is(err, store.ErrConflict) {
			return "", batchEntry{
				Status: http.StatusConflict,
				Error: fmt.Sprintf("profile conflicts with accumulated data for %s/%s (source or options changed?): %v",
					req.Program, req.Dataset, err),
			}
		}
		code, msg := classify(err)
		return "", batchEntry{Status: code, Error: msg}
	}
	acc, err := s.store.Get(ctx, key)
	if err != nil || acc == nil {
		return key, batchEntry{Status: http.StatusInternalServerError,
			Error: fmt.Sprintf("reading back accumulated profile: %v", err)}
	}
	return key, batchEntry{
		Status: http.StatusOK,
		Profile: &profileResponse{
			Program:      req.Program,
			Dataset:      req.Dataset,
			Sites:        acc.Sites(),
			Executed:     acc.Executed(),
			Taken:        acc.TakenCount(),
			PercentTaken: acc.PercentTaken(),
			Coverage:     acc.Coverage(),
			Instrs:       out.Res.Instrs,
			CacheHit:     out.CacheHit,
		},
	}
}

// handleProfileBatch ingests a batch of profile requests. Every entry
// is validated up front; the valid ones execute concurrently on the
// engine pool; each successful run merges into the store; the touched
// shards are saved once. Entries fail independently — one hostile
// entry costs only its own slot in Results.
func (s *Server) handleProfileBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Entries) == 0 {
		writeError(w, http.StatusBadRequest, "entries must not be empty")
		return
	}
	if len(req.Entries) > maxBatchEntries {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch exceeds %d entries", maxBatchEntries))
		return
	}

	results := make([]batchEntry, len(req.Entries))
	var specs []engine.Spec
	var specIdx []int // spec position → entry index
	for i := range req.Entries {
		results[i].Index = i
		if err := validateProfileRequest(&req.Entries[i]); err != nil {
			results[i].Status = http.StatusBadRequest
			results[i].Error = err.Error()
			continue
		}
		specs = append(specs, s.specFor(&req.Entries[i]))
		specIdx = append(specIdx, i)
	}

	outs := s.eng.ExecuteBatch(r.Context(), specs)
	s.feedEngineDiskHealth()
	var touched []string
	for pos, res := range outs {
		i := specIdx[pos]
		if res.Err != nil {
			code, msg := classify(res.Err)
			results[i].Status = code
			results[i].Error = msg
			continue
		}
		key, entry := s.mergeOutcome(r.Context(), &req.Entries[i], res.Out)
		entry.Index = i
		results[i] = entry
		if key != "" && entry.Status == http.StatusOK {
			touched = append(touched, key)
		}
	}

	journaled := false
	persisted := false
	if len(touched) > 0 {
		journaled = s.journaled(r.Context())
		persisted = s.saveDB(r.Context(), touched...)
	}
	resp := batchResponse{Results: results, Persisted: persisted, Journaled: journaled, Degraded: s.Degraded()}
	for i := range results {
		if results[i].Status == http.StatusOK {
			resp.OK++
			results[i].Profile.Persisted = persisted
			results[i].Profile.Journaled = journaled
			results[i].Profile.Degraded = resp.Degraded
		} else {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamSummary is the trailing NDJSON object a stream reply ends
// with: total accounting plus the stream's two durability outcomes,
// reported separately because they answer different questions —
// Journaled ("would a crash right now lose accepted entries?") and
// Saved ("did the driver's own save land?"). Persisted mirrors Saved
// for pre-journal clients.
type streamSummary struct {
	Done   bool `json:"done"`
	Lines  int  `json:"lines"`
	OK     int  `json:"ok"`
	Failed int  `json:"failed"`
	// Journaled: every accepted entry reached the write-ahead journal
	// per the configured fsync policy. False when the server runs
	// without -wal, or any journal commit failed.
	Journaled bool `json:"journaled"`
	// Saved: every periodic and final save of the touched shards
	// landed in the wrapped driver.
	Saved     bool `json:"saved"`
	Persisted bool `json:"persisted"`
	Degraded  bool `json:"degraded"`
}

// handleProfileStream ingests NDJSON: one profile request per line,
// answered line-by-line (same shape as batch entries) with a summary
// object last. Entries execute in arrival order; touched shards are
// saved every streamSaveEvery accepted entries and once at the end,
// so a crash mid-stream loses at most one save window.
func (s *Server) handleProfileStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Interleaved request reads and response writes: without full
	// duplex, HTTP/1 drains the remaining request body at the first
	// response flush (keep-alive hygiene), deadlocking against a client
	// that streams lines as it reads results. Unsupported transports
	// (the in-process test recorder) still work half-duplex.
	http.NewResponseController(w).EnableFullDuplex() //nolint:errcheck
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before reading any input: a streaming
		// client sees the 200 (and can start its response reader)
		// as soon as the stream opens, not after its first line.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v) //nolint:errcheck // client gone is not actionable
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Each line is size-capped like a single request body; the stream
	// itself is bounded by the request deadline, not by length.
	sc := bufio.NewScanner(r.Body)
	maxLine := int(s.opts.MaxBodyBytes)
	sc.Buffer(make([]byte, 64<<10), maxLine)

	sum := streamSummary{Done: true}
	var touched []string
	allSaved := true
	allJournaled := true
	flushTouched := func() {
		if len(touched) == 0 {
			return
		}
		// Journal commit first: the save-window boundary is also the
		// batch-policy fsync point, so a crash between windows loses
		// nothing the summary will claim as journaled.
		if !s.journaled(r.Context()) {
			allJournaled = false
		}
		// The final flush runs even when the client's deadline already
		// expired — accepted profiles should still reach disk.
		if !s.saveDB(context.WithoutCancel(r.Context()), touched...) {
			allSaved = false
		}
		touched = touched[:0]
	}

	line := 0
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		entry := batchEntry{Index: line}
		var req profileRequest
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		switch err := dec.Decode(&req); {
		case err != nil:
			entry.Status = http.StatusBadRequest
			entry.Error = "malformed JSON: " + err.Error()
		default:
			if err := validateProfileRequest(&req); err != nil {
				entry.Status = http.StatusBadRequest
				entry.Error = err.Error()
			} else if out, err := s.eng.ExecuteContext(r.Context(), s.specFor(&req)); err != nil {
				entry.Status, entry.Error = classify(err)
			} else {
				var key string
				key, entry = s.mergeOutcome(r.Context(), &req, out)
				entry.Index = line
				if key != "" && entry.Status == http.StatusOK {
					touched = append(touched, key)
				}
			}
		}
		if entry.Status == http.StatusOK {
			sum.OK++
		} else {
			sum.Failed++
		}
		line++
		emit(entry)
		if len(touched) >= streamSaveEvery {
			flushTouched()
		}
		if r.Context().Err() != nil {
			break // deadline or client gone: stop reading, summarize
		}
	}
	s.feedEngineDiskHealth()
	if err := sc.Err(); err != nil {
		sum.Failed++
		emit(batchEntry{Index: line, Status: http.StatusBadRequest,
			Error: "reading stream: " + err.Error()})
	}
	flushTouched()
	sum.Lines = line
	sum.Saved = allSaved && sum.OK > 0 && s.store.Stats().Persistent
	sum.Persisted = sum.Saved
	sum.Journaled = allJournaled && sum.OK > 0 && s.wal != nil
	sum.Degraded = s.Degraded()
	emit(sum)
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchprof/internal/faults"
	"branchprof/internal/store"
	"branchprof/internal/store/shardstore"
)

// TestSoakShardedIngest is the cross-shard concurrency soak: batch
// ingest, streaming ingest, single profiles, predictions, inventory
// paging and health probes all hammer a sharded server at once —
// under -race via `make soak` — while one shard's disk is failing.
// The sick shard's breaker must open and stay isolated (the other
// shards keep persisting), the server must answer every request with
// a contract status, and the drain at the end must flush every
// healthy shard so nothing profiled during the run is lost.
func TestSoakShardedIngest(t *testing.T) {
	dbPath := t.TempDir() + "/profiles.d"

	// Probe the shard topology first so the fault rule can aim at the
	// shard owning prog00's keys.
	probe, _, err := shardstore.Open(context.Background(), dbPath, store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	programs := make([]string, 8)
	for i := range programs {
		programs[i] = fmt.Sprintf("prog%02d", i)
	}
	sickShard := probe.ShardName(dbKey(programs[0], "d0"))
	var healthyProg string
	for _, p := range programs[1:] {
		if probe.ShardName(dbKey(p, "d0")) != sickShard && probe.ShardName(dbKey(p, "d1")) != sickShard {
			healthyProg = p
			break
		}
	}
	if healthyProg == "" {
		t.Fatal("no program with both datasets off the sick shard")
	}

	inj := faults.NewSet(1, faults.Rule{Stage: faults.DBSave, Label: sickShard})
	s := newTestServer(t, Options{
		Concurrency:      4,
		DBPath:           dbPath,
		Shards:           4,
		Faults:           inj,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // the sick shard stays sick all run
		RequestTimeout:   10 * time.Second,
	})

	duration := 1200 * time.Millisecond
	if testing.Short() {
		duration = 300 * time.Millisecond
	}
	deadline := time.Now().Add(duration)
	var unexpected atomic.Int64
	var firstBad atomic.Value // string

	bad := func(what string, code int, body string) {
		unexpected.Add(1)
		firstBad.CompareAndSwap(nil, fmt.Sprintf("%s -> %d: %.200s", what, code, body))
	}
	post := func(path string, v any) (int, string) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		req := httptest.NewRequest("POST", path, strings.NewReader(string(b)))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	var wg sync.WaitGroup
	worker := func(f func(iter int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				f(i)
			}
		}()
	}

	// Batch ingest across all shards (sick one included).
	for w := 0; w < 2; w++ {
		w := w
		worker(func(iter int) {
			entries := make([]map[string]any, 4)
			for j := range entries {
				p := programs[(iter+j+w)%len(programs)]
				ds := fmt.Sprintf("d%d", j%2)
				entries[j] = profileBody(p, ds, countSrc, strings.Repeat("ab", j+1))
			}
			code, body := post("/v1/profile/batch", map[string]any{"entries": entries})
			// 429 is a legal shed under load; anything else must be 200.
			if code != 200 && code != 429 {
				bad("batch", code, body)
			}
		})
	}

	// Streaming ingest of the healthy program.
	worker(func(iter int) {
		line1, _ := json.Marshal(profileBody(healthyProg, "d0", countSrc, "aaab"))
		line2, _ := json.Marshal(profileBody(healthyProg, "d1", countSrc, "bb"))
		req := httptest.NewRequest("POST", "/v1/profile/stream",
			strings.NewReader(string(line1)+"\n"+string(line2)+"\n"))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 && rec.Code != 429 {
			bad("stream", rec.Code, rec.Body.String())
		}
	})

	// Single profiles aimed at the sick shard: they must stay 200
	// (compute succeeds, persistence degrades).
	worker(func(iter int) {
		code, body := post("/v1/profile", profileBody(programs[0], "d0", countSrc, "aba"))
		if code != 200 && code != 429 {
			bad("sick-shard profile", code, body)
		}
	})

	// Predictions and paged inventory reads.
	worker(func(iter int) {
		code, body := post("/v1/predict", map[string]any{"program": healthyProg, "source": countSrc})
		if code != 200 && code != 429 {
			bad("predict", code, body)
		}
		if code, body := get("/v1/programs?limit=3&offset=1"); code != 200 {
			bad("programs", code, body)
		}
	})

	// Health and metrics must never shed.
	worker(func(iter int) {
		if code, body := get("/healthz"); code != 200 {
			bad("healthz", code, body)
		}
		if code, body := get("/metrics"); code != 200 {
			bad("metrics", code, body)
		}
	})

	wg.Wait()
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d unexpected responses during soak; first: %v", n, firstBad.Load())
	}

	// The sick shard degraded alone: its breaker is open, the healthy
	// shards kept saving.
	st := s.Store().Stats()
	if !st.Degraded {
		t.Fatal("sick shard did not degrade the store")
	}
	var sickSeen bool
	for _, sh := range st.Shards {
		if sh.Name == sickShard {
			sickSeen = true
			if sh.Breaker != "open" || sh.SaveErrors == 0 {
				t.Fatalf("sick shard stats: %+v", sh)
			}
		} else if sh.Breaker != "closed" {
			t.Fatalf("healthy shard %s caught the sickness: %+v", sh.Name, sh)
		}
	}
	if !sickSeen {
		t.Fatalf("sick shard %s missing from stats", sickShard)
	}
	if !s.Degraded() {
		t.Fatal("server does not report the partial degradation")
	}

	// Drain flushes the healthy shards; a fresh store sees everything
	// accumulated there during the soak.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	reopened, _, err := shardstore.Open(context.Background(), dbPath, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"d0", "d1"} {
		p, err := reopened.Get(context.Background(), dbKey(healthyProg, ds))
		if err != nil || p == nil || p.Executed() == 0 {
			t.Fatalf("drain lost %s@%s from a healthy shard: %v, %v", healthyProg, ds, p, err)
		}
	}
}

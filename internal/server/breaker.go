package server

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state the way /healthz reports it.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker guards the server's persistent cache/DB I/O. Threshold
// consecutive failures open the circuit; while open every attempt is
// skipped (the server runs compute-only, see docs/SERVER.md) until
// the cooldown elapses, after which exactly one probe is allowed
// through half-open: its success closes the circuit, its failure
// re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether the caller may attempt the guarded I/O now.
// Every Allow must be matched with Record(err) when it returned true.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an allowed attempt.
func (b *breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	case breakerOpen:
		// A straggler attempt admitted before the trip; stay open.
		b.openedAt = b.now()
	}
}

// State returns the current state for health reporting. An open
// circuit whose cooldown has elapsed still reports "open" until the
// next Allow promotes it — health is about what requests experience.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Degraded reports whether the guarded I/O is currently being skipped
// or probed — i.e. the server is not persisting normally.
func (b *breaker) Degraded() bool {
	return b.State() != breakerClosed
}

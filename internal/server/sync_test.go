package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"branchprof/internal/engine"
	"branchprof/internal/faults"
)

// switchHandler lets a cluster test allocate listener URLs before the
// servers that answer on them exist — the peer-list chicken-and-egg:
// every node needs every other node's URL at construction time.
type switchHandler struct{ h atomic.Value } // holds handlerBox

type handlerBox struct{ h http.Handler }

func (sw *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if box, ok := sw.h.Load().(handlerBox); ok && box.h != nil {
		box.h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node down", http.StatusServiceUnavailable)
}

func (sw *switchHandler) set(h http.Handler) {
	sw.h.Store(handlerBox{h: h})
}

// clusterNode is one replica in the in-process cluster harness.
type clusterNode struct {
	name string
	url  string
	hs   *httptest.Server
	sw   *switchHandler
	opts Options

	// mu serializes liveness transitions against in-flight client
	// posts: workers hold RLock for the duration of a request, kill
	// and restart take Lock — so a node never dies mid-accepted-post
	// and the test's accepted-ingest ledger stays exact.
	mu    sync.RWMutex
	srv   *Server
	alive bool
}

// cluster is N branchprofd replicas wired into a full mesh over real
// loopback HTTP, with manual (deterministic) sync rounds.
type cluster struct {
	t     *testing.T
	nodes []*clusterNode
}

// newCluster builds an n-node full mesh. customize (optional) edits
// each node's Options before construction, with every node's URL in
// hand — the hook for per-node fault sets (labeled by peer URL) and
// on-disk stores.
func newCluster(t *testing.T, n int, customize func(i int, urls []string, o *Options)) *cluster {
	t.Helper()
	c := &cluster{t: t}
	var urls []string
	for i := 0; i < n; i++ {
		sw := &switchHandler{}
		hs := httptest.NewServer(sw)
		t.Cleanup(hs.Close)
		c.nodes = append(c.nodes, &clusterNode{
			name: fmt.Sprintf("node%d", i+1),
			url:  hs.URL,
			hs:   hs,
			sw:   sw,
		})
		urls = append(urls, hs.URL)
	}
	for i, node := range c.nodes {
		var peers []string
		for j, other := range c.nodes {
			if j != i {
				peers = append(peers, other.url)
			}
		}
		opts := Options{
			Concurrency:  2,
			SelfID:       node.name,
			Peers:        peers,
			SyncInterval: time.Hour, // tests drive SyncNow themselves
			SyncTimeout:  10 * time.Second,
			// Short cooldown so a restarted peer is re-probed within a
			// bounded convergence loop instead of the production 5s.
			BreakerCooldown: 50 * time.Millisecond,
		}
		if customize != nil {
			customize(i, urls, &opts)
		}
		node.opts = opts
		node.srv = newTestServer(t, opts)
		node.alive = true
		node.sw.set(node.srv.Handler())
	}
	return c
}

// post sends a JSON request to node i's live handler, holding the
// liveness read-lock for the duration. Returns -1 when the node is
// down (the routed client's "connection refused").
func (c *cluster) post(i int, method, path string, body, out any) int {
	node := c.nodes[i]
	node.mu.RLock()
	defer node.mu.RUnlock()
	if !node.alive {
		return -1
	}
	return doJSON(c.t, node.srv, method, path, body, out)
}

// streamIngest posts n copies of body as one NDJSON request to node
// i's /v1/profile/stream, holding the liveness read-lock like post.
// It returns how many lines were acknowledged with a 200 entry plus
// the HTTP status (-1 when the node is down). A crash mid-stream
// truncates the response; only well-formed 200 entries count as
// acknowledged, exactly what a careful client would retry on.
func (c *cluster) streamIngest(i, n int, body map[string]any) (int, int) {
	node := c.nodes[i]
	node.mu.RLock()
	defer node.mu.RUnlock()
	if !node.alive {
		return 0, -1
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for k := 0; k < n; k++ {
		if err := enc.Encode(body); err != nil {
			c.t.Errorf("encoding stream line: %v", err)
			return 0, -1
		}
	}
	req := httptest.NewRequest("POST", "/v1/profile/stream", &buf)
	rec := httptest.NewRecorder()
	node.srv.Handler().ServeHTTP(rec, req)
	acked := 0
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e struct {
			Done   bool `json:"done"`
			Status int  `json:"status"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			break // garbled tail after a mid-emit crash
		}
		if e.Done {
			break
		}
		if e.Status == http.StatusOK {
			acked++
		}
	}
	return acked, rec.Code
}

// kill abruptly stops node i: no drain, no final sync — the crash the
// soak recovers from. The store is closed so a restart can re-acquire
// its shard locks (in production the process exit releases them).
func (c *cluster) kill(i int) {
	node := c.nodes[i]
	node.mu.Lock()
	defer node.mu.Unlock()
	node.alive = false
	node.sw.set(nil)
	node.srv.Close()
	if err := node.srv.Store().Close(context.Background()); err != nil {
		c.t.Errorf("closing %s store: %v", node.name, err)
	}
}

// restart brings a killed node back from its persisted store.
func (c *cluster) restart(i int) {
	node := c.nodes[i]
	node.mu.Lock()
	defer node.mu.Unlock()
	node.srv = newTestServer(c.t, node.opts)
	node.alive = true
	node.sw.set(node.srv.Handler())
}

// syncAll runs one manual anti-entropy round on every live node.
func (c *cluster) syncAll(ctx context.Context) {
	for i, node := range c.nodes {
		node.mu.RLock()
		alive := node.alive
		node.mu.RUnlock()
		if !alive {
			continue
		}
		if err := c.nodes[i].srv.SyncNow(ctx); err != nil {
			c.t.Logf("sync %s: %v", node.name, err)
		}
	}
}

// digestJSON renders node i's replication digest canonically.
func (c *cluster) digestJSON(i int) string {
	data, err := json.Marshal(c.nodes[i].srv.Repl().Digest())
	if err != nil {
		c.t.Fatal(err)
	}
	return string(data)
}

// snapshotJSON renders node i's full logical store canonically —
// map keys sort under encoding/json, so equal strings mean
// bit-identical served state.
func (c *cluster) snapshotJSON(i int) string {
	snap, err := c.nodes[i].srv.Store().Snapshot(context.Background())
	if err != nil {
		c.t.Fatalf("snapshot %s: %v", c.nodes[i].name, err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		c.t.Fatal(err)
	}
	return string(data)
}

// converge syncs until every live node reports the same digest, up to
// maxRounds; it fails the test if the cluster does not converge.
// Rounds are spaced past the harness breaker cooldown so a tripped
// peer breaker gets its half-open probe within the budget.
func (c *cluster) converge(ctx context.Context, maxRounds int) {
	c.t.Helper()
	for r := 0; r < maxRounds; r++ {
		c.syncAll(ctx)
		base, same := "", true
		for i, node := range c.nodes {
			node.mu.RLock()
			alive := node.alive
			node.mu.RUnlock()
			if !alive {
				continue
			}
			d := c.digestJSON(i)
			if base == "" {
				base = d
			} else if d != base {
				same = false
				break
			}
		}
		if same {
			return
		}
		time.Sleep(60 * time.Millisecond)
	}
	c.t.Fatalf("cluster did not converge within %d rounds", maxRounds)
}

func TestSyncEndpointsAbsentOnStandaloneNode(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	if code := doJSON(t, s, "GET", "/v1/sync/digest", nil, nil); code != http.StatusNotFound {
		t.Errorf("standalone /v1/sync/digest = %d, want 404", code)
	}
	var hr healthResponse
	doJSON(t, s, "GET", "/healthz", nil, &hr)
	if hr.Repl != nil {
		t.Errorf("standalone healthz carries repl block: %+v", hr.Repl)
	}
}

func TestPeersRequireSelfID(t *testing.T) {
	if _, _, err := New(Options{Peers: []string{"http://127.0.0.1:1"}}); err == nil {
		t.Fatal("New accepted Peers without SelfID")
	}
}

func TestSyncEndpointContracts(t *testing.T) {
	c := newCluster(t, 2, nil)

	var dig digestResponse
	if code := c.post(0, "GET", "/v1/sync/digest", nil, &dig); code != http.StatusOK {
		t.Fatalf("digest = %d", code)
	}
	if dig.Self != "node1" {
		t.Errorf("digest self = %q, want node1", dig.Self)
	}
	if code := c.post(0, "POST", "/v1/sync/digest", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("POST digest = %d, want 405", code)
	}
	if code := c.post(0, "GET", "/v1/sync/pull", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET pull = %d, want 405", code)
	}
	refs := make([]map[string]string, maxPullRefs+1)
	for i := range refs {
		refs[i] = map[string]string{"key": fmt.Sprintf("k%d@d", i), "origin": "node2"}
	}
	if code := c.post(0, "POST", "/v1/sync/pull", map[string]any{"refs": refs}, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized pull = %d, want 413", code)
	}
	if code := c.post(0, "POST", "/v1/sync/pull", map[string]any{"refs": []any{}}, nil); code != http.StatusOK {
		t.Errorf("empty pull = %d, want 200", code)
	}
}

// TestSyncTwoNodeConvergence is the basic replication contract: ingest
// on one node, sync, serve from the other — including predictions
// trained on profiles the serving node never ingested.
func TestSyncTwoNodeConvergence(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, 2, nil)

	if code := c.post(0, "POST", "/v1/profile", profileBody("count", "mostly-a", countSrc, "aaab"), nil); code != http.StatusOK {
		t.Fatalf("ingest node1 = %d", code)
	}
	if code := c.post(1, "POST", "/v1/profile", profileBody("count", "no-a", countSrc, "bbbb"), nil); code != http.StatusOK {
		t.Fatalf("ingest node2 = %d", code)
	}
	c.converge(ctx, 4)
	if a, b := c.snapshotJSON(0), c.snapshotJSON(1); a != b {
		t.Fatalf("snapshots diverge:\n%s\nvs\n%s", a, b)
	}

	// node2 predicts for the dataset only node1 ever saw.
	var pr predictResponse
	if code := c.post(1, "POST", "/v1/predict", map[string]any{
		"program": "count", "source": countSrc, "target_dataset": "no-a",
	}, &pr); code != http.StatusOK {
		t.Fatalf("predict on node2 = %d", code)
	}
	if pr.HeuristicOnly {
		t.Fatal("node2 predicted heuristically; replicated profile not used")
	}
	if len(pr.TrainedOn) != 1 || pr.TrainedOn[0] != "mostly-a" {
		t.Fatalf("TrainedOn = %v, want [mostly-a] (replicated from node1)", pr.TrainedOn)
	}
	if pr.Eval == nil {
		t.Fatal("no eval against the held-out replicated target")
	}

	// Ingesting the same key on BOTH nodes and re-syncing must not
	// double-count: each node's contribution is its own component.
	for i := 0; i < 2; i++ {
		if code := c.post(i, "POST", "/v1/profile", profileBody("count", "shared", countSrc, "aa"), nil); code != http.StatusOK {
			t.Fatalf("shared ingest node%d = %d", i+1, code)
		}
	}
	c.converge(ctx, 4)
	c.converge(ctx, 4) // converged resync must change nothing
	// Reference: the branch counts of exactly one run of "aa".
	one, err := engine.New(engine.Options{}).Execute(engine.Spec{
		Name: "count", Source: countSrc, Dataset: "probe", Input: []byte("aa"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		acc, err := c.nodes[i].srv.Store().Get(ctx, "count@shared")
		if err != nil || acc == nil {
			t.Fatalf("node%d count@shared: %v %v", i+1, acc, err)
		}
		if want := 2 * one.Prof.TakenCount(); acc.TakenCount() != want {
			t.Errorf("node%d count@shared taken = %d, want %d (exactly two ingests, no double-count)",
				i+1, acc.TakenCount(), want)
		}
	}
	if a, b := c.snapshotJSON(0), c.snapshotJSON(1); a != b {
		t.Fatalf("snapshots diverge after shared-key sync:\n%s\nvs\n%s", a, b)
	}
}

// TestSyncPeerBreakerOpensOnDeadPeer verifies an unreachable peer
// trips its circuit breaker (visible in /healthz) instead of costing a
// timeout every round, and that sync with the live peer keeps working.
func TestSyncPeerBreakerOpensOnDeadPeer(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, 3, nil)
	c.kill(2)

	if code := c.post(0, "POST", "/v1/profile", profileBody("count", "d1", countSrc, "ab"), nil); code != http.StatusOK {
		t.Fatalf("ingest = %d", code)
	}
	// Default breaker threshold is 3 consecutive failures.
	for i := 0; i < 4; i++ {
		c.nodes[0].srv.SyncNow(ctx) //nolint:errcheck // dead-peer errors expected
	}
	var hr healthResponse
	if code := c.post(0, "GET", "/healthz", nil, &hr); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if hr.Repl == nil || hr.Repl.Self != "node1" || len(hr.Repl.Peers) != 2 {
		t.Fatalf("healthz repl block = %+v", hr.Repl)
	}
	var dead, live *peerHealth
	for i := range hr.Repl.Peers {
		switch hr.Repl.Peers[i].Addr {
		case c.nodes[2].url:
			dead = &hr.Repl.Peers[i]
		case c.nodes[1].url:
			live = &hr.Repl.Peers[i]
		}
	}
	if dead == nil || live == nil {
		t.Fatalf("peers in healthz: %+v", hr.Repl.Peers)
	}
	if dead.Breaker == "closed" || dead.Errors == 0 {
		t.Errorf("dead peer health = %+v, want open breaker and errors", dead)
	}
	if dead.LastErr == "" {
		t.Error("dead peer has no last_error")
	}
	if live.Breaker != "closed" || live.Errors != 0 || live.Syncs == 0 {
		t.Errorf("live peer health = %+v, want closed breaker and successful syncs", live)
	}
	// node2 still replicated node1's ingest despite node3 being dead.
	if err := c.nodes[1].srv.SyncNow(ctx); err != nil {
		t.Logf("node2 sync: %v", err)
	}
	if p, err := c.nodes[1].srv.Store().Get(ctx, "count@d1"); err != nil || p == nil {
		t.Fatalf("node2 count@d1 after sync: %v %v", p, err)
	}
}

// TestSyncPartitionTracksPending verifies the hinted-handoff-style
// accounting: while a peer is partitioned away, the data it is missing
// shows up as a pending backlog in /healthz, and drains to zero after
// the partition heals.
func TestSyncPartitionTracksPending(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, 2, func(i int, urls []string, o *Options) {
		// Keep the per-peer breaker out of the picture (it has its own
		// test): this test is about the pending-backlog accounting.
		o.BreakerThreshold = 100
		if i == 0 {
			// node1 cannot reach node2 for its first 3 exchanges; the
			// partition heals deterministically after that.
			o.Faults = faults.NewSet(1, faults.Rule{
				Stage: faults.PeerFetch, Kind: faults.Error, Label: urls[1], Through: 3,
			})
		}
	})

	if code := c.post(0, "POST", "/v1/profile", profileBody("count", "d1", countSrc, "aaaa"), nil); code != http.StatusOK {
		t.Fatalf("ingest = %d", code)
	}
	// Partitioned rounds: node1's pulls fail. node2 is not synced
	// during the window (an asymmetric partition), so node1's data
	// stays a real backlog owed to node2.
	for i := 0; i < 3; i++ {
		c.nodes[0].srv.SyncNow(ctx) //nolint:errcheck // partitioned
	}
	var hr healthResponse
	c.post(0, "GET", "/healthz", nil, &hr)
	if hr.Repl == nil || len(hr.Repl.Peers) != 1 {
		t.Fatalf("repl block = %+v", hr.Repl)
	}
	if hr.Repl.Peers[0].Errors != 3 {
		t.Errorf("errors during partition = %d, want 3", hr.Repl.Peers[0].Errors)
	}

	// Healed: the next sync succeeds and computes the backlog owed to
	// node2 (node2 still lacks node1's component until IT pulls).
	if err := c.nodes[0].srv.SyncNow(ctx); err != nil {
		t.Fatalf("post-heal sync: %v", err)
	}
	c.post(0, "GET", "/healthz", nil, &hr)
	if hr.Repl.Peers[0].Pending == 0 {
		t.Error("pending backlog = 0 during peer lag, want > 0")
	}
	// node2 catches up; node1's next round sees the backlog drained.
	if err := c.nodes[1].srv.SyncNow(ctx); err != nil {
		t.Fatalf("node2 sync: %v", err)
	}
	if err := c.nodes[0].srv.SyncNow(ctx); err != nil {
		t.Fatalf("node1 resync: %v", err)
	}
	c.post(0, "GET", "/healthz", nil, &hr)
	if hr.Repl.Peers[0].Pending != 0 {
		t.Errorf("pending backlog after heal = %d, want 0", hr.Repl.Peers[0].Pending)
	}
	if a, b := c.snapshotJSON(0), c.snapshotJSON(1); a != b {
		t.Fatalf("snapshots diverge after heal:\n%s\nvs\n%s", a, b)
	}
}

// TestSyncLoopLifecycle exercises the background gossip loop end to
// end: Listen starts it, rounds fire on the jittered interval against
// a real peer, and Drain stops it cleanly before the final save.
func TestSyncLoopLifecycle(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, 2, nil)
	if code := c.post(1, "POST", "/v1/profile", profileBody("count", "dl", countSrc, "ab"), nil); code != http.StatusOK {
		t.Fatalf("ingest = %d", code)
	}

	// A third server (not in the harness) whose peer is node2 and whose
	// loop runs for real on a short interval.
	s := newTestServer(t, Options{
		Concurrency:  1,
		SelfID:       "looper",
		Peers:        []string{c.nodes[1].url},
		SyncInterval: 10 * time.Millisecond,
		SyncTimeout:  5 * time.Second,
	})
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if p, _ := s.Store().Get(ctx, "count@dl"); p != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never replicated count@dl")
		}
		time.Sleep(5 * time.Millisecond)
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain with gossip loop running: %v", err)
	}
}

// TestSoakClusterConvergence is the robustness soak: a three-node
// cluster — every node journaling to a write-ahead log — under
// concurrent multi-node ingest, with node3 crash-killed by a Crash
// failpoint mid-stream-ingest and a network partition between the two
// survivors that heals mid-run. node3's shard saves fail throughout,
// so every line it acknowledges survives ONLY in its journal; its
// restart must replay exactly the acknowledged records. Healthy nodes
// must answer reads with no 5xx throughout; after the dead node
// restarts (journal replay) and bounded anti-entropy rounds run, all
// three nodes must hold bit-identical profile snapshots whose
// counters account for every accepted ingest exactly once. Run under
// -race by `make soak-cluster`.
func TestSoakClusterConvergence(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// PeerFetch consultations (all peers of node1 combined) before
	// node1's partition toward node2 heals. The Through window counts
	// stage consultations, so healthy node3 exchanges spend it too —
	// large enough to keep the partition up across many sync rounds.
	const partitionWindow = 60
	// node3 "dies" (Crash failpoint) at its crashAppend-th journal
	// append. Its appends come only from its own stream ingest — it
	// never gossip-pulls before the restart — so the count is exact:
	// the crash lands mid-stream, with at least one worker's request
	// in flight.
	const crashAppend = 23

	var node3Faults *faults.Set
	c := newCluster(t, 3, func(i int, urls []string, o *Options) {
		o.DBPath = filepath.Join(dir, fmt.Sprintf("node%d-db", i+1))
		o.Shards = 4
		o.WALDir = filepath.Join(dir, fmt.Sprintf("node%d-wal", i+1))
		o.WALFsync = "record"
		switch i {
		case 0:
			// Asymmetric partition: node1 cannot pull from node2 until
			// the window is spent; node2 pulls from node1 freely. The
			// nastier case for convergence — state flows one way only.
			o.Faults = faults.NewSet(7, faults.Rule{
				Stage: faults.PeerFetch, Kind: faults.Error, Label: urls[1], Through: partitionWindow,
			})
		case 2:
			// node3's shard saves never succeed (the manifest, not
			// labeled "shard-", still lands), so acked ingest lives
			// only in its journal — and the node is crash-killed
			// mid-stream. The same set survives the restart: Nth has
			// passed, the dead saves persist, and replay alone must
			// carry the data.
			node3Faults = faults.NewSet(17,
				faults.Rule{Stage: faults.JournalAppend, Kind: faults.Crash, Nth: crashAppend},
				faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Label: "shard-"},
			)
			o.Faults = node3Faults
		}
	})

	var (
		accepted [3]atomic.Uint64 // 200-accepted ingests per node
		bad      sync.Map         // status → count, for non-2xx on healthy nodes
		wg       sync.WaitGroup
		stopSync = make(chan struct{})
	)

	// Continuous background anti-entropy on the two surviving nodes,
	// racing the ingest workers — the -race soak surface. node3 does
	// not pull before its restart: its journal-append counter must
	// stay an exact ledger of its own ingest so the crash failpoint
	// fires deterministically (replicated puts would also append).
	// It still serves its peers' pulls throughout.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stopSync:
					return
				default:
				}
				node := c.nodes[i]
				node.mu.RLock()
				alive := node.alive
				srv := node.srv
				node.mu.RUnlock()
				if alive {
					srv.SyncNow(ctx) //nolint:errcheck // partition errors expected
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	// Ingest workers: two per node. node1 and node2 post single
	// requests; node3's ingest arrives as NDJSON streams — the path
	// whose per-line acks outrun the driver's save window, so the
	// journal is all that protects them when the node dies.
	const perWorker = 20
	var ingest sync.WaitGroup
	for i := 0; i < 2; i++ {
		for w := 0; w < 2; w++ {
			ingest.Add(1)
			go func(i int) {
				defer ingest.Done()
				ds := fmt.Sprintf("ds%d", i+1)
				for k := 0; k < perWorker; k++ {
					code := c.post(i, "POST", "/v1/profile", profileBody("count", ds, countSrc, "aaab"), nil)
					switch {
					case code == http.StatusOK:
						accepted[i].Add(1)
					case code == -1 || code == http.StatusServiceUnavailable:
						// Node killed under us (routed clients fail over).
						return
					case code >= 500:
						v, _ := bad.LoadOrStore(code, new(atomic.Uint64))
						v.(*atomic.Uint64).Add(1)
					case code == http.StatusTooManyRequests:
						// Overloaded: back off and retry the same slot.
						k--
					}
				}
			}(i)
		}
	}
	for w := 0; w < 2; w++ {
		ingest.Add(1)
		go func() {
			defer ingest.Done()
			for {
				n, code := c.streamIngest(2, perWorker, profileBody("count", "ds3", countSrc, "aaab"))
				accepted[2].Add(uint64(n))
				if code == http.StatusTooManyRequests && n == 0 {
					continue // shed before streaming began: retry
				}
				// Done, truncated by the crash, or the node is dead —
				// either way acked lines are journaled and counted.
				return
			}
		}()
	}

	// Kill node3 the moment its crash failpoint fires — mid-stream,
	// no drain, no save. kill waits for in-flight requests (liveness
	// write-lock), so lines acked after the crash are still journaled
	// and still owed exactly once.
	deadline := time.Now().Add(10 * time.Second)
	for node3Faults.Fired(faults.JournalAppend) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("node3 crash failpoint never fired (journal appends: %d)",
				node3Faults.Calls(faults.JournalAppend))
		}
		time.Sleep(time.Millisecond)
	}
	c.kill(2)

	// Reads on the healthy nodes must keep working through the
	// partition and the dead peer.
	for i := 0; i < 2; i++ {
		var pr predictResponse
		if code := c.post(i, "POST", "/v1/predict", map[string]any{
			"program": "count", "source": countSrc,
		}, &pr); code != http.StatusOK {
			t.Errorf("predict on node%d during chaos = %d, want 200", i+1, code)
		}
		if code := c.post(i, "GET", "/healthz", nil, nil); code != http.StatusOK {
			t.Errorf("healthz on node%d during chaos = %d", i+1, code)
		}
	}

	ingest.Wait()
	close(stopSync)
	wg.Wait()

	bad.Range(func(k, v any) bool {
		t.Errorf("healthy nodes returned %d × status %v during soak", v.(*atomic.Uint64).Load(), k)
		return true
	})

	// Drive node1 past its partition window so it heals (Through
	// counts consultations — two per round here, one per peer; the
	// background rounds already spent some, these are idempotent
	// extras).
	for i := 0; i < partitionWindow; i++ {
		c.nodes[0].srv.SyncNow(ctx) //nolint:errcheck // partitioned rounds error
	}

	// The dead node returns: its shards hold nothing (saves always
	// failed), so recovery is pure journal replay — one record per
	// acknowledged stream line, nothing skipped, nothing doubled.
	c.restart(2)
	var hr healthResponse
	if code := c.post(2, "GET", "/healthz", nil, &hr); code != http.StatusOK {
		t.Fatalf("healthz on restarted node3 = %d", code)
	}
	if hr.WAL == nil {
		t.Fatal("restarted node3 reports no wal block in /healthz")
	} else if got, want := hr.WAL.Replayed, accepted[2].Load(); got != want {
		t.Errorf("node3 replayed %d journal records, want %d (one per acked stream line)", got, want)
	}

	// Bounded anti-entropy rounds must now converge the whole cluster.
	c.converge(ctx, 20)

	snaps := []string{c.snapshotJSON(0), c.snapshotJSON(1), c.snapshotJSON(2)}
	if snaps[0] != snaps[1] || snaps[1] != snaps[2] {
		t.Fatalf("snapshots diverge after heal+restart:\nnode1 %s\nnode2 %s\nnode3 %s",
			snaps[0], snaps[1], snaps[2])
	}

	// Exactly-once accounting: every accepted ingest of "aaab" runs
	// countSrc once, so each key's counters are accepted × one run.
	one, err := c.nodes[0].srv.Engine().ExecuteContext(ctx, c.nodes[0].srv.specFor(&profileRequest{
		Program: "count", Source: countSrc, Dataset: "probe", Input: "aaab",
	}))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("count@ds%d", i+1)
		want := accepted[i].Load()
		p, err := c.nodes[0].srv.Store().Get(ctx, key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if want == 0 {
			if p != nil {
				t.Errorf("%s exists with no accepted ingests", key)
			}
			continue
		}
		if p == nil {
			t.Errorf("%s missing (%d accepted ingests)", key, want)
			continue
		}
		if p.Executed() != want*one.Prof.Executed() {
			t.Errorf("%s executed = %d, want %d accepted × %d (lost or double-counted ingests)",
				key, p.Executed(), want, one.Prof.Executed())
		}
		if p.Instrs != want*one.Prof.Instrs {
			t.Errorf("%s instrs = %d, want %d × %d", key, p.Instrs, want, one.Prof.Instrs)
		}
	}
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"branchprof/internal/faults"
)

// TestCrashRecoveryMatrix is the write-ahead journal's crash
// consistency proof: the process is "killed" (a Crash failpoint
// panicking at an injected point, the in-memory server abandoned
// without any drain or save) at every journal-relevant operation —
// append, sync, driver save, truncation, and replay itself — under
// every ingest path (single, batch, stream, and degraded-mode ingest
// whose saves fail), and after a clean reopen exactly the
// acknowledged entries are counted exactly once:
//
//   - no acknowledged entry is lost (ack happens after the journal
//     append, fsync=record, so every ack is on the medium);
//   - no entry is double-counted (Profile.Merge adds counters, so a
//     record that is both saved and replayed would show up twice —
//     the per-group watermark embedded in the driver's save unit
//     prevents that);
//   - an entry in flight at the kill may land zero or one times,
//     never more.
//
// Each request uses a distinct program key, making the accounting
// exact: a key's executed-branch count must be 0× or 1× the per-run
// baseline, and 1× when its request was acknowledged.
func TestCrashRecoveryMatrix(t *testing.T) {
	perRun := crashBaseline(t)

	// healingSaves fails the first few shard saves (the manifest's
	// DBSave consultation is call 1 and unlabeled "shard-"), then
	// heals — degraded-mode ingest whose backlog must survive a crash.
	healingSaves := faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Label: "shard-", Through: 3}
	// deadSaves never heals: every record stays pending in the journal,
	// guaranteeing the replay-crash scenario has records to replay.
	deadSaves := faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Label: "shard-"}

	scenarios := []struct {
		name string
		// rule is the crash injector; the zero Rule means the crash
		// happens in phase 2, during replay, instead.
		rule   faults.Rule
		replay bool
	}{
		{name: "append-crash", rule: faults.Rule{Stage: faults.JournalAppend, Kind: faults.Crash, Nth: 3}},
		{name: "append-torn", rule: faults.Rule{Stage: faults.JournalAppend, Kind: faults.TornWrite, Nth: 3}},
		{name: "sync-crash", rule: faults.Rule{Stage: faults.JournalSync, Kind: faults.Crash, Nth: 4}},
		{name: "save-crash", rule: faults.Rule{Stage: faults.DBSave, Kind: faults.Crash, Nth: 3}},
		{name: "truncate-crash", rule: faults.Rule{Stage: faults.JournalTruncate, Kind: faults.Crash, Nth: 2}},
		{name: "replay-crash", replay: true},
	}
	paths := []string{"single", "batch", "stream", "degraded"}

	for _, sc := range scenarios {
		for _, path := range paths {
			sc, path := sc, path
			t.Run(sc.name+"/"+path, func(t *testing.T) {
				t.Parallel()
				// The crash rule goes first so an Nth match beats the
				// catch-all degraded error rule at the same stage.
				var rules []faults.Rule
				if !sc.replay {
					rules = append(rules, sc.rule)
				}
				switch {
				case sc.replay:
					rules = append(rules, deadSaves)
				case path == "degraded":
					rules = append(rules, healingSaves)
				}
				runCrashScenario(t, perRun, rules, path, sc.replay)
			})
		}
	}
}

// crashBaseline measures one run's executed-branch count for the
// matrix's fixed program and input.
func crashBaseline(t *testing.T) uint64 {
	t.Helper()
	s := newTestServer(t, Options{Concurrency: 1})
	var pr profileResponse
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("base", "d", countSrc, "aaa"), &pr); code != http.StatusOK {
		t.Fatalf("baseline profile: status %d", code)
	}
	if pr.Executed == 0 {
		t.Fatal("baseline executed 0 branches")
	}
	return pr.Executed
}

func runCrashScenario(t *testing.T, perRun uint64, rules []faults.Rule, path string, replayCrash bool) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "profiles.d")
	walDir := filepath.Join(dir, "wal")
	open := func(fs *faults.Set) (*Server, Warnings, error) {
		return New(Options{
			Concurrency: 2, DBPath: dbPath, Shards: 4,
			WALDir: walDir, WALFsync: "record", Faults: fs,
		})
	}
	fs := faults.NewSet(11, rules...)
	srv, _, err := open(fs)
	if err != nil {
		t.Fatalf("phase-1 open: %v", err)
	}
	t.Cleanup(func() { srv.Close() }) // save-free; the abandon stays a kill

	var crashStage faults.Stage
	if !replayCrash {
		crashStage = rules[0].Stage
	}
	acked := make(map[string]bool)
	var sent []string
	keyN := 0
	nextKey := func() string {
		k := fmt.Sprintf("p%02d", keyN)
		keyN++
		sent = append(sent, k)
		return k
	}

	const rounds = 8
	for round := 0; round < rounds; round++ {
		if !replayCrash && fs.Fired(crashStage) > 0 {
			break // the process is dead; nothing more is sent
		}
		switch path {
		case "single", "degraded":
			key := nextKey()
			if code := doJSON(t, srv, "POST", "/v1/profile",
				profileBody(key, "d", countSrc, "aaa"), nil); code == http.StatusOK {
				acked[key] = true
			}
		case "batch":
			keys := []string{nextKey(), nextKey()}
			var entries []map[string]any
			for _, k := range keys {
				entries = append(entries, profileBody(k, "d", countSrc, "aaa"))
			}
			var br batchResponse
			if code := doJSON(t, srv, "POST", "/v1/profile/batch",
				map[string]any{"entries": entries}, &br); code == http.StatusOK {
				for _, e := range br.Results {
					if e.Status == http.StatusOK && e.Index < len(keys) {
						acked[keys[e.Index]] = true
					}
				}
			}
		case "stream":
			keys := []string{nextKey(), nextKey(), nextKey()}
			for _, i := range postCrashStream(t, srv, keys) {
				acked[keys[i]] = true
			}
		}
	}
	if !replayCrash && fs.Fired(crashStage) == 0 {
		t.Fatalf("crash fault at %s never fired in %d rounds (calls: %d)",
			crashStage, rounds, fs.Calls(crashStage))
	}
	if len(sent) == 0 {
		t.Fatal("scenario sent no requests")
	}

	if replayCrash {
		// Phase 2: the kill happens during recovery itself. Replay
		// never saves or truncates, so a crashed replay restarts from
		// the same disk state.
		rfs := faults.NewSet(13, faults.Rule{Stage: faults.JournalReplay, Kind: faults.Crash, Nth: 2})
		func() {
			defer func() {
				if v := recover(); !faults.IsCrash(v) {
					t.Fatalf("replay open recovered %v, want a CrashPanic", v)
				}
			}()
			open(rfs)
			t.Fatal("open survived the injected replay crash")
		}()
		if rfs.Fired(faults.JournalReplay) == 0 {
			t.Fatal("replay crash never fired (no records to replay?)")
		}
	}

	// Recovery: a clean reopen truncates any torn tail and replays the
	// journal's unapplied suffix.
	srv2, warns, err := open(nil)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	for _, w := range warns {
		t.Logf("recovery warning: %s", w)
	}

	ctx := context.Background()
	ackedCount := 0
	for _, key := range sent {
		p, err := srv2.Store().Get(ctx, key+"@d")
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		var n uint64
		if p != nil {
			n = p.Executed()
		}
		if n%perRun != 0 {
			t.Fatalf("%s: executed %d is not a whole multiple of %d per run — partial merge survived", key, n, perRun)
		}
		switch times := n / perRun; {
		case acked[key] && times != 1:
			t.Fatalf("%s: acknowledged once but counted %d times after recovery", key, times)
		case !acked[key] && times > 1:
			t.Fatalf("%s: never acknowledged but counted %d times after recovery", key, times)
		default:
			if acked[key] {
				ackedCount++
			}
		}
	}
	t.Logf("%s: %d keys sent, %d acked — all accounted exactly once", path, len(sent), ackedCount)
}

// postCrashStream posts keys as NDJSON stream lines and returns the
// indexes acknowledged with a 200 entry. A crash mid-stream leaves
// the response truncated (possibly with a recovered-500 error object
// appended); only well-formed 200 entries count as acknowledged.
func postCrashStream(t *testing.T, srv *Server, keys []string) []int {
	t.Helper()
	var body bytes.Buffer
	for _, k := range keys {
		if err := json.NewEncoder(&body).Encode(profileBody(k, "d", countSrc, "aaa")); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest("POST", "/v1/profile/stream", &body)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	var ackedIdx []int
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e struct {
			Done   bool `json:"done"`
			Index  int  `json:"index"`
			Status int  `json:"status"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			break // garbled tail after a mid-emit crash
		}
		if e.Done {
			break
		}
		if e.Status == http.StatusOK && e.Index >= 0 && e.Index < len(keys) {
			ackedIdx = append(ackedIdx, e.Index)
		}
	}
	return ackedIdx
}

package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"branchprof/internal/engine"
	"branchprof/internal/faults"
)

// TestBurstShedding is the load-shedding end-to-end check: a burst of
// concurrent requests far beyond concurrency+queue must shed the
// excess with 429 + Retry-After while every admitted request completes
// with a correct profile. Run with -race in `make chaos-server`.
func TestBurstShedding(t *testing.T) {
	// Slow the engine's run stage so the whole burst overlaps: every
	// request is in flight before the first slot frees.
	fs := faults.NewSet(1, faults.Rule{Stage: faults.Run, Kind: faults.Delay, Delay: 300 * time.Millisecond})
	eng := engine.New(engine.Options{Workers: 2, Faults: fs})
	s := newTestServer(t, Options{Engine: eng, Concurrency: 2, QueueDepth: 2})

	const burst = 12
	type result struct {
		code  int
		retry string
		resp  profileResponse
		input string
	}
	results := make([]result, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct inputs defeat the engine's singleflight/cache
			// dedup so each admitted request really holds a slot.
			input := strings.Repeat("a", i%4) + strings.Repeat("b", i/4+1)
			var pr profileResponse
			code, hdr := doJSONHdr(t, s, "POST", "/v1/profile",
				profileBody("count", fmt.Sprintf("d%02d", i), countSrc, input), &pr)
			results[i] = result{code: code, retry: hdr.Get("Retry-After"), resp: pr, input: input}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, r := range results {
		switch r.code {
		case http.StatusOK:
			ok++
			// The paper's counting program: the while site is taken once
			// per input byte, the if site once per 'a'.
			n := uint64(len(r.input))
			wantTaken := n + uint64(strings.Count(r.input, "a"))
			if r.resp.Executed != 2*n+1 || r.resp.Taken != wantTaken {
				t.Errorf("request %d: profile %d/%d, want %d/%d",
					i, r.resp.Taken, r.resp.Executed, wantTaken, 2*n+1)
			}
		case http.StatusTooManyRequests:
			shed++
			if r.retry == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, r.code)
		}
	}
	// At most concurrency+queue = 4 can be in the house while the first
	// batch still runs; the burst overlaps fully, so at least
	// burst-2*(c+q) are provably shed even if a second wave is admitted.
	if ok == 0 || shed < burst-8 {
		t.Fatalf("burst of %d: %d ok, %d shed — shedding did not engage", burst, ok, shed)
	}
	if got := s.m.shedQueueFull.Load(); got != uint64(shed) {
		t.Errorf("shed metric = %d, want %d", got, shed)
	}
	// The gate is empty again: nothing leaked a slot.
	if e, q := s.gate.load(); e != 0 || q != 0 {
		t.Fatalf("gate leaked: executing=%d waiting=%d", e, q)
	}
}

// TestQueueAdmitsWhenSlotsFree: a request that waits in the queue (not
// shed) runs and answers correctly once a slot frees.
func TestQueueAdmitsWhenSlotsFree(t *testing.T) {
	fs := faults.NewSet(1, faults.Rule{Stage: faults.Run, Kind: faults.Delay, Delay: 150 * time.Millisecond})
	eng := engine.New(engine.Options{Workers: 1, Faults: fs})
	s := newTestServer(t, Options{Engine: eng, Concurrency: 1, QueueDepth: 4})

	const n = 4
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = doJSON(t, s, "POST", "/v1/profile",
				profileBody("count", fmt.Sprintf("q%d", i), countSrc, strings.Repeat("a", i+1)), nil)
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("queued request %d: status %d, want 200", i, code)
		}
	}
}

package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
)

// The breaker state machine itself is tested in internal/circuit;
// this file covers the server's use of it: degraded compute-only
// mode, recovery, and the engine-disk error feed.

// TestDegradedComputeOnlyMode is the degraded-mode acceptance test:
// with DB saves failing (injected via internal/faults) the breaker
// opens, the server keeps answering profile and prediction requests
// from memory, and the degradation shows in responses, /healthz and
// /metrics.
func TestDegradedComputeOnlyMode(t *testing.T) {
	dbPath := t.TempDir() + "/profiles.json"
	fs := faults.NewSet(1, faults.Rule{Stage: faults.DBSave, Kind: faults.Error})
	s := newTestServer(t, Options{
		Concurrency:      1,
		DBPath:           dbPath,
		Faults:           fs,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // no recovery during this test
	})

	// First failure: still closed, but the profile did not persist.
	var pr profileResponse
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "mostly-a", countSrc, "aaab"), &pr); code != 200 {
		t.Fatalf("profile 1 = %d", code)
	}
	if pr.Persisted {
		t.Fatal("save failed but response claims persisted")
	}
	if pr.Degraded {
		t.Fatal("one failure under threshold should not report degraded")
	}

	// Second failure trips the breaker into compute-only mode.
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "no-a", countSrc, "bbbb"), &pr); code != 200 {
		t.Fatalf("profile 2 = %d", code)
	}
	if !s.Degraded() {
		t.Fatal("breaker did not open after threshold failures")
	}

	// Profiles keep accumulating in memory and responses say degraded.
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "mostly-a", countSrc, "aaab"), &pr); code != 200 {
		t.Fatalf("profile while degraded = %d", code)
	}
	if !pr.Degraded || pr.Persisted {
		t.Fatalf("degraded profile response: %+v", pr)
	}

	// Predictions still work, trained on the in-memory profiles.
	var pd predictResponse
	body := map[string]any{"program": "count", "source": countSrc, "target_dataset": "no-a"}
	if code := doJSON(t, s, "POST", "/v1/predict", body, &pd); code != 200 {
		t.Fatalf("predict while degraded = %d", code)
	}
	if pd.HeuristicOnly || len(pd.TrainedOn) != 1 || !pd.Degraded {
		t.Fatalf("degraded prediction: %+v", pd)
	}
	if pd.Eval == nil || pd.Eval.Mispredicts == 0 {
		t.Fatal("degraded prediction lost its evaluation")
	}

	// /healthz reports the degradation without failing liveness.
	var h healthResponse
	if code := doJSON(t, s, "GET", "/healthz", nil, &h); code != 200 {
		t.Fatal("healthz must stay 200 while degraded")
	}
	if h.Status != "degraded" || h.Breaker != "open" {
		t.Fatalf("healthz while degraded: %+v", h)
	}

	// Metrics: breaker open, degraded flag, error + skipped saves.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		"branchprofd_breaker_open 1",
		"branchprofd_degraded 1",
		`branchprofd_db_save_total{result="error"} 2`,
		`branchprofd_db_save_total{result="skipped"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBreakerRecovery: once the disk heals, the half-open probe closes
// the circuit and persistence resumes — with the accumulated in-memory
// state, nothing profiled during the outage is lost.
func TestBreakerRecovery(t *testing.T) {
	dbPath := t.TempDir() + "/profiles.json"
	// Exactly the first two saves fail; everything after succeeds.
	fs := faults.NewSet(1,
		faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Nth: 1},
		faults.Rule{Stage: faults.DBSave, Kind: faults.Error, Nth: 2},
	)
	s := newTestServer(t, Options{
		Concurrency:      1,
		DBPath:           dbPath,
		Faults:           fs,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})

	var pr profileResponse
	doJSON(t, s, "POST", "/v1/profile", profileBody("count", "d1", countSrc, "a"), &pr)
	doJSON(t, s, "POST", "/v1/profile", profileBody("count", "d2", countSrc, "b"), &pr)
	if !s.Degraded() {
		t.Fatal("breaker should be open after two save failures")
	}

	// After the cooldown the next update is the half-open probe; the
	// heal makes it succeed and close the circuit — and the save
	// flushes every profile accumulated during the outage.
	time.Sleep(30 * time.Millisecond)
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "d3", countSrc, "ab"), &pr); code != 200 {
		t.Fatal("probe request failed")
	}
	if !pr.Persisted || pr.Degraded {
		t.Fatalf("post-recovery response: %+v", pr)
	}
	if s.Degraded() {
		t.Fatal("breaker did not close after successful probe")
	}
	db, err := ifprob.Load(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.Programs()); got != 3 {
		t.Fatalf("recovered database holds %d profiles, want all 3 (outage data included)", got)
	}

	var h healthResponse
	doJSON(t, s, "GET", "/healthz", nil, &h)
	if h.Status != "ok" || h.Breaker != "closed" {
		t.Fatalf("healthz after recovery: %+v", h)
	}
}

// TestEngineDiskErrorsFeedBreaker: cache-write failures inside the
// engine (a different disk path than the DB) also count against the
// persistence breaker, because feedEngineDiskHealth routes the stats
// delta in.
func TestEngineDiskErrorsFeedBreaker(t *testing.T) {
	// The engine's disk cache write fails every time.
	fs := faults.NewSet(1, faults.Rule{Stage: faults.CacheWrite, Kind: faults.Error})
	s := newTestServer(t, Options{
		CacheDir:         t.TempDir(),
		Faults:           fs,
		Concurrency:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	doJSON(t, s, "POST", "/v1/profile", profileBody("count", "e1", countSrc, "a"), nil)
	doJSON(t, s, "POST", "/v1/profile", profileBody("count", "e2", countSrc, "b"), nil)
	if !s.Degraded() {
		t.Fatal("engine cache-write failures did not degrade the server")
	}
	var h healthResponse
	doJSON(t, s, "GET", "/healthz", nil, &h)
	if h.CacheWriteErrors == 0 {
		t.Fatalf("healthz hides the cache trouble: %+v", h)
	}
}

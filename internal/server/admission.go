package server

import (
	"context"
	"errors"
	"sync"
)

// Admission-control errors the HTTP layer maps to status codes.
var (
	// errShed reports a request rejected because the bounded queue is
	// full — the load-shedding path, mapped to 429 + Retry-After.
	errShed = errors.New("server: queue full, request shed")
	// errDraining reports a request rejected (or unqueued) because the
	// server is draining, mapped to 503.
	errDraining = errors.New("server: draining")
)

// gate is the server's admission controller: a concurrency semaphore
// sized to the engine pool plus a bounded waiting queue. At most
// cap(sem) requests execute and at most maxQueue more wait; anything
// beyond that is shed immediately, so a burst can never pile up
// unbounded goroutines or memory. Draining unblocks every waiter.
type gate struct {
	sem      chan struct{}
	maxTotal int64 // cap(sem) + queue bound

	mu      sync.Mutex
	inHouse int64 // admitted requests: executing + waiting

	draining  chan struct{}
	drainOnce sync.Once
}

func newGate(concurrency, queueDepth int) *gate {
	if concurrency <= 0 {
		concurrency = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &gate{
		sem:      make(chan struct{}, concurrency),
		maxTotal: int64(concurrency + queueDepth),
		draining: make(chan struct{}),
	}
}

// acquire admits the request or rejects it with errShed (queue full),
// errDraining (shutdown in progress), or ctx.Err() (caller gave up
// while queued). On success the returned release func must be called
// exactly once when the request finishes.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	select {
	case <-g.draining:
		return nil, errDraining
	default:
	}
	g.mu.Lock()
	if g.inHouse >= g.maxTotal {
		g.mu.Unlock()
		return nil, errShed
	}
	g.inHouse++
	g.mu.Unlock()
	leave := func() {
		g.mu.Lock()
		g.inHouse--
		g.mu.Unlock()
	}
	select {
	case g.sem <- struct{}{}:
		return func() {
			<-g.sem
			leave()
		}, nil
	case <-ctx.Done():
		leave()
		return nil, ctx.Err()
	case <-g.draining:
		leave()
		return nil, errDraining
	}
}

// beginDrain flips the gate into draining mode: waiters unblock with
// errDraining and no new request is admitted. Idempotent.
func (g *gate) beginDrain() {
	g.drainOnce.Do(func() { close(g.draining) })
}

// load returns (executing, waiting) for the queue-depth gauges.
func (g *gate) load() (executing, waiting int64) {
	executing = int64(len(g.sem))
	g.mu.Lock()
	total := g.inHouse
	g.mu.Unlock()
	waiting = total - executing
	if waiting < 0 {
		waiting = 0
	}
	return executing, waiting
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"branchprof/internal/engine"
)

// countSrc branches on every input byte: the `if (c == 97)` site is
// taken exactly once per 'a', so profiles — and cross-dataset
// predictions — depend on the dataset in a way tests can compute.
const countSrc = `
func main() int {
	var n int = 0;
	var c int = getc();
	while (c >= 0) {
		if (c == 97) {
			n = n + 1;
		}
		c = getc();
	}
	return n;
}
`

// spinSrc never terminates; only the fuel limit stops it.
const spinSrc = `
func main() int {
	var c int = 1;
	while (c == 1) {
		c = 1;
	}
	return c;
}
`

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, warns, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range warns {
		t.Logf("startup warning: %s", w)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// doJSON posts body to path on the server's handler and decodes the
// reply into out (when non-nil), returning the status code.
func doJSON(t *testing.T, s *Server, method, path string, body, out any) int {
	t.Helper()
	code, _ := doJSONHdr(t, s, method, path, body, out)
	return code
}

// doJSONHdr is doJSON plus the response headers.
func doJSONHdr(t *testing.T, s *Server, method, path string, body, out any) (int, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: undecodable body %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code, rec.Header()
}

func profileBody(program, dataset, source, input string) map[string]any {
	return map[string]any{
		"program": program, "dataset": dataset, "source": source, "input": input,
	}
}

func TestProfileAccumulateAndPredict(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 2})

	// Profile two datasets with known branch behaviour.
	var pr profileResponse
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "mostly-a", countSrc, "aaab"), &pr); code != http.StatusOK {
		t.Fatalf("profile = %d", code)
	}
	if pr.Program != "count" || pr.Dataset != "mostly-a" || pr.Executed == 0 {
		t.Fatalf("bad profile response: %+v", pr)
	}
	// Cross-check against a direct engine run of the same spec.
	out, err := engine.New(engine.Options{}).Execute(engine.Spec{
		Name: "count", Source: countSrc, Dataset: "mostly-a", Input: []byte("aaab"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Executed != out.Prof.Executed() || pr.Taken != out.Prof.TakenCount() {
		t.Fatalf("served profile %d/%d, direct run %d/%d",
			pr.Taken, pr.Executed, out.Prof.TakenCount(), out.Prof.Executed())
	}
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "no-a", countSrc, "bbbb"), &pr); code != http.StatusOK {
		t.Fatalf("profile 2 = %d", code)
	}

	// Same program+dataset again: accumulates, does not conflict.
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "mostly-a", countSrc, "aaab"), &pr); code != http.StatusOK {
		t.Fatalf("re-profile = %d", code)
	}
	if pr.Executed != 2*out.Prof.Executed() {
		t.Fatalf("accumulation: executed = %d, want %d", pr.Executed, 2*out.Prof.Executed())
	}

	// Predict no-a from mostly-a: the if site trained taken, target
	// never takes it.
	var pd predictResponse
	body := map[string]any{"program": "count", "source": countSrc, "target_dataset": "no-a"}
	if code := doJSON(t, s, "POST", "/v1/predict", body, &pd); code != http.StatusOK {
		t.Fatalf("predict = %d", code)
	}
	if pd.HeuristicOnly {
		t.Fatal("prediction ignored the accumulated profiles")
	}
	if len(pd.TrainedOn) != 1 || pd.TrainedOn[0] != "mostly-a" {
		t.Fatalf("trained on %v, want [mostly-a]", pd.TrainedOn)
	}
	if pd.Eval == nil || pd.Eval.TargetDataset != "no-a" {
		t.Fatalf("missing eval against held-out target: %+v", pd.Eval)
	}
	if pd.Eval.Executed == 0 || pd.Eval.Mispredicts == 0 {
		t.Fatalf("expected mispredicts against inverted dataset, got %+v", *pd.Eval)
	}
	var ifSite *sitePrediction
	for i := range pd.Sites {
		if pd.Sites[i].Label == "if" {
			ifSite = &pd.Sites[i]
		}
	}
	if ifSite == nil || ifSite.Direction != "taken" || !ifSite.FromProfile {
		t.Fatalf("if site prediction: %+v", ifSite)
	}

	// Inventory.
	var inv struct {
		Programs []programInfo `json:"programs"`
	}
	if code := doJSON(t, s, "GET", "/v1/programs", nil, &inv); code != http.StatusOK {
		t.Fatalf("programs = %d", code)
	}
	if len(inv.Programs) != 1 || inv.Programs[0].Program != "count" ||
		strings.Join(inv.Programs[0].Datasets, ",") != "mostly-a,no-a" {
		t.Fatalf("inventory: %+v", inv.Programs)
	}
}

func TestPredictWithoutProfilesFallsBackToHeuristic(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	var pd predictResponse
	body := map[string]any{"program": "count", "source": countSrc}
	if code := doJSON(t, s, "POST", "/v1/predict", body, &pd); code != http.StatusOK {
		t.Fatalf("predict = %d", code)
	}
	if !pd.HeuristicOnly || len(pd.Sites) == 0 {
		t.Fatalf("expected heuristic-only prediction, got %+v", pd)
	}
	for _, site := range pd.Sites {
		if site.Label == "while" && site.Direction != "taken" {
			t.Fatalf("loop heuristic should predict while taken: %+v", site)
		}
	}
}

// TestValidation walks the strict-input contract: every hostile or
// malformed request gets a typed status, never a crash.
func TestValidation(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1, MaxFuel: 50_000, MaxBodyBytes: 64 << 10})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"bad program name", "/v1/profile", profileBody("no/slash", "d", countSrc, ""), 400},
		{"at-sign name", "/v1/profile", profileBody("a@b", "d", countSrc, ""), 400},
		{"empty dataset", "/v1/profile", profileBody("p", "", countSrc, ""), 400},
		{"missing source", "/v1/profile", profileBody("p", "d", "", ""), 400},
		{"compile error", "/v1/profile", profileBody("p", "d", "func main() int { return undefined_var; }", ""), 400},
		{"parse garbage", "/v1/profile", profileBody("p", "d", "\x00{{{", ""), 400},
		{"fuel trap", "/v1/profile", profileBody("spin", "d", spinSrc, ""), 422},
		{"oversized body", "/v1/profile", profileBody("p", "d", strings.Repeat("x", 80<<10), ""), 413},
		{"unknown field", "/v1/profile", map[string]any{"program": "p", "nope": 1}, 400},
		{"predict bad mode", "/v1/predict", map[string]any{"program": "p", "source": countSrc, "mode": "psychic"}, 400},
		{"predict bad target", "/v1/predict", map[string]any{"program": "p", "source": countSrc, "target_dataset": "x y"}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := doJSON(t, s, "POST", tc.path, tc.body, nil); code != tc.want {
				t.Fatalf("%s: code = %d, want %d", tc.name, code, tc.want)
			}
		})
	}

	// Malformed JSON and wrong method need raw requests.
	req := httptest.NewRequest("POST", "/v1/profile", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("malformed JSON: %d", rec.Code)
	}
	if code := doJSON(t, s, "GET", "/v1/profile", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET profile should be 405")
	}
	if code := doJSON(t, s, "POST", "/v1/programs", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST programs should be 405")
	}
}

// TestProfileConflict: re-profiling a program name with a different
// site table (changed source) is a 409, not silent corruption.
func TestProfileConflict(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("p", "d", countSrc, "aa"), nil); code != 200 {
		t.Fatalf("first profile = %d", code)
	}
	// One branch site vs countSrc's two: a different site table.
	other := "func main() int { if (getc() > 0) { return 1; } return 0; }"
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("p", "d", other, "aa"), nil); code != http.StatusConflict {
		t.Fatalf("conflicting profile = %d, want 409", code)
	}
}

func TestHealthAndReadyLifecycle(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	var h healthResponse
	if code := doJSON(t, s, "GET", "/healthz", nil, &h); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if h.Status != "ok" || h.Breaker != "closed" || h.Draining {
		t.Fatalf("healthz: %+v", h)
	}
	// Before Listen the server is not ready.
	if code := doJSON(t, s, "GET", "/readyz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Listen = %d, want 503", code)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("readyz after Listen = %d", resp.StatusCode)
	}
}

// TestPanicRecoveryMiddleware: a handler panic becomes a 500 and a
// counted metric, never a dead process.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	h := s.instrument("boom", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if got := s.m.panics.Load(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	// The server keeps serving.
	if code := doJSON(t, s, "GET", "/healthz", nil, nil); code != 200 {
		t.Fatal("server dead after panic")
	}
}

// TestRequestDeadline: a program too slow for the per-request
// deadline is cancelled through the VM poll and reported as 504.
func TestRequestDeadline(t *testing.T) {
	s := newTestServer(t, Options{
		Concurrency:    1,
		RequestTimeout: 30 * time.Millisecond,
		MaxFuel:        1 << 40, // fuel won't save us; the deadline must
	})
	start := time.Now()
	code := doJSON(t, s, "POST", "/v1/profile", profileBody("spin", "d", spinSrc, ""), nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow request = %d, want 504", code)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation was not prompt: %v", el)
	}
}

// TestMetricsEndpoint: the serving-layer metrics ride the engine
// registry out of one /metrics endpoint.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "d", countSrc, "aa"), nil); code != 200 {
		t.Fatal("profile failed")
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	text := rec.Body.String()
	for _, want := range []string{
		`branchprofd_requests_total{route="profile",code="200"} 1`,
		"branchprofd_inflight 0",
		"branchprofd_degraded 0",
		"branchprof_engine_stage_total", // engine metrics share the endpoint
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestDBPersistenceAcrossRestart: profiles survive a server restart
// through the DB file, and a corrupt file is quarantined.
func TestDBPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	dbPath := dir + "/profiles.json"
	s1 := newTestServer(t, Options{Concurrency: 1, DBPath: dbPath})
	var pr profileResponse
	if code := doJSON(t, s1, "POST", "/v1/profile", profileBody("count", "d1", countSrc, "aaa"), &pr); code != 200 {
		t.Fatal("profile failed")
	}
	if !pr.Persisted {
		t.Fatal("profile not persisted with a healthy disk")
	}
	s1.Close()

	s2 := newTestServer(t, Options{Concurrency: 1, DBPath: dbPath})
	var inv struct {
		Programs []programInfo `json:"programs"`
	}
	doJSON(t, s2, "GET", "/v1/programs", nil, &inv)
	if len(inv.Programs) != 1 || inv.Programs[0].Program != "count" {
		t.Fatalf("restart lost profiles: %+v", inv.Programs)
	}
}

func TestCorruptDBQuarantinedAtStartup(t *testing.T) {
	dir := t.TempDir()
	dbPath := dir + "/profiles.json"
	if err := writeFile(dbPath, "{torn garbage"); err != nil {
		t.Fatal(err)
	}
	s, warns, err := New(Options{Concurrency: 1, DBPath: dbPath})
	if err != nil {
		t.Fatalf("corrupt DB should not prevent startup: %v", err)
	}
	defer s.Close()
	if len(warns) != 1 || !strings.Contains(warns[0], "quarantined") {
		t.Fatalf("expected quarantine warning, got %v", warns)
	}
	if _, err := readFile(dbPath + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The server works and re-creates the database.
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "d", countSrc, "a"), nil); code != 200 {
		t.Fatal("profile after quarantine failed")
	}
}

func writeFile(path, data string) error { return os.WriteFile(path, []byte(data), 0o644) }

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"branchprof/internal/engine"
	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
)

// postHTTP sends a real HTTP request to a listening server.
func postHTTP(t *testing.T, addr, path string, body any) (*http.Response, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	return http.Post("http://"+addr+path, "application/json", &buf)
}

// waitLoad polls the admission gate until it reaches the wanted shape,
// so drain tests order events without sleeping blind.
func waitLoad(t *testing.T, s *Server, executing, waiting int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e, q := s.gate.load(); e == executing && q == waiting {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	e, q := s.gate.load()
	t.Fatalf("gate never reached executing=%d waiting=%d (at %d/%d)", executing, waiting, e, q)
}

// TestGracefulDrain covers the SIGTERM choreography end to end over a
// real listener: readiness flips before the listener closes, queued
// requests are shed with 503, the in-flight request completes with its
// correct answer, the final database save lands, and OnDrained runs.
func TestGracefulDrain(t *testing.T) {
	fs := faults.NewSet(1, faults.Rule{Stage: faults.Run, Kind: faults.Delay, Delay: 400 * time.Millisecond})
	eng := engine.New(engine.Options{Workers: 1, Faults: fs})
	dbPath := t.TempDir() + "/profiles.json"
	var drained atomic.Int32
	s := newTestServer(t, Options{
		Engine:      eng,
		DBPath:      dbPath,
		Concurrency: 1,
		QueueDepth:  1,
		OnDrained:   func() { drained.Add(1) },
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A: in-flight, holding the only slot for ~400ms.
	aCh := make(chan *http.Response, 1)
	go func() {
		resp, err := postHTTP(t, addr, "/v1/profile", profileBody("count", "da", countSrc, "aab"))
		if err == nil {
			aCh <- resp
		} else {
			t.Error(err)
			close(aCh)
		}
	}()
	waitLoad(t, s, 1, 0)

	// B: queued behind A.
	bCh := make(chan *http.Response, 1)
	go func() {
		resp, err := postHTTP(t, addr, "/v1/profile", profileBody("count", "db", countSrc, "bbb"))
		if err == nil {
			bCh <- resp
		} else {
			t.Error(err)
			close(bCh)
		}
	}()
	waitLoad(t, s, 1, 1)

	s.BeginDrain()

	// Readiness flips while the listener is still serving: the probe
	// itself travels over the open listener.
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatalf("listener closed before drain completed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}

	// B was waiting: unblocked with 503 + Retry-After.
	select {
	case resp := <-bCh:
		if resp == nil {
			t.Fatal("queued request failed at transport level")
		}
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("queued request during drain: %d (Retry-After %q), want 503 with hint",
				resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		resp.Body.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("queued request not unblocked by drain")
	}

	// C: new arrival during drain is rejected outright.
	resp, err = postHTTP(t, addr, "/v1/profile", profileBody("count", "dc", countSrc, "c"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Drain completes within the hard deadline; A finishes first.
	start := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if el := time.Since(start); el > 8*time.Second {
		t.Fatalf("drain took %v", el)
	}
	select {
	case resp := <-aCh:
		if resp == nil {
			t.Fatal("in-flight request failed at transport level")
		}
		var pr profileResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// "aab": 3 loop iterations + 2 a's.
		if resp.StatusCode != http.StatusOK || pr.Taken != 5 || pr.Executed != 7 {
			t.Fatalf("in-flight request during drain: %d %+v", resp.StatusCode, pr)
		}
	case <-time.After(time.Second):
		t.Fatal("in-flight request did not complete")
	}

	if got := drained.Load(); got != 1 {
		t.Fatalf("OnDrained ran %d times, want 1", got)
	}
	// The final save flushed A's profile.
	if _, err := os.Stat(dbPath); err != nil {
		t.Fatalf("final database save missing: %v", err)
	}
	db, err := ifprob.Load(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Programs()) != 1 || db.Programs()[0] != "count@da" {
		t.Fatalf("drained database holds %v", db.Programs())
	}
	// The listener is actually closed now.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestDrainHardDeadline: when an in-flight request outlives the drain
// context, Drain returns the context error instead of hanging, and the
// remaining connection is force-closed.
func TestDrainHardDeadline(t *testing.T) {
	fs := faults.NewSet(1, faults.Rule{Stage: faults.Run, Kind: faults.Delay, Delay: 3 * time.Second})
	eng := engine.New(engine.Options{Workers: 1, Faults: fs})
	s := newTestServer(t, Options{Engine: eng, Concurrency: 1, QueueDepth: 0})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := postHTTP(t, addr, "/v1/profile", profileBody("count", "slow", countSrc, "a"))
		if err == nil {
			resp.Body.Close()
		}
		// Either a transport error (connection force-closed) or a late
		// response is fine — the point is the server did not wait.
	}()
	waitLoad(t, s, 1, 0)

	start := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err = s.Drain(dctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain past deadline = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("hard deadline did not bound the drain: %v", el)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("force-close left the client hanging")
	}
}

// TestBeginDrainIdempotent: repeated BeginDrain (SIGTERM storms) is
// safe, and Drain after BeginDrain still completes.
func TestBeginDrainIdempotent(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	for i := 0; i < 3; i++ {
		s.BeginDrain()
	}
	dctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain without listener: %v", err)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"branchprof/internal/engine"
	"branchprof/internal/exp"
	"branchprof/internal/ifprob"
	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/store"
	"branchprof/internal/vm"
)

// Request size limits beyond the transport body cap: a program or
// dataset that blows these is rejected before any compute is spent.
const (
	maxNameLen   = 100
	maxSourceLen = 256 << 10
	maxInputLen  = 1 << 20
)

// nameRE validates program and dataset names. '@' is excluded so the
// composite database key stays unambiguous; path characters are
// excluded so names can never traverse anything downstream.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$`)

// profileRequest is the POST /v1/profile body: run a program on a
// dataset and accumulate its branch profile.
type profileRequest struct {
	Program string      `json:"program"`
	Source  string      `json:"source"`
	Dataset string      `json:"dataset"`
	Input   string      `json:"input"`
	Options mfc.Options `json:"options"`
	// Fuel caps the run's instruction budget; 0 (or anything above the
	// server's MaxFuel) is clamped to MaxFuel.
	Fuel uint64 `json:"fuel"`
}

// profileResponse summarizes the accumulated profile after the run.
type profileResponse struct {
	Program      string  `json:"program"`
	Dataset      string  `json:"dataset"`
	Sites        int     `json:"sites"`
	Executed     uint64  `json:"executed"`
	Taken        uint64  `json:"taken"`
	PercentTaken float64 `json:"percent_taken"`
	Coverage     float64 `json:"coverage"`
	Instrs       uint64  `json:"instrs"`
	CacheHit     bool    `json:"cache_hit"`
	// Persisted reports whether the updated database reached disk;
	// false in compute-only degraded mode (see /healthz).
	Persisted bool `json:"persisted"`
	// Journaled reports whether the update is in the write-ahead
	// journal per the configured fsync policy — durable across a crash
	// even when Persisted is false. Always false when the server runs
	// without -wal.
	Journaled bool `json:"journaled"`
	Degraded  bool `json:"degraded"`
}

// predictRequest is the POST /v1/predict body: predict per-branch
// directions for a program from its accumulated profiles.
type predictRequest struct {
	Program string      `json:"program"`
	Source  string      `json:"source"`
	Options mfc.Options `json:"options"`
	// Mode is "scaled" (default), "unscaled" or "polling".
	Mode string `json:"mode"`
	// TargetDataset, when set, is held out of the training set and —
	// when its profile is in the database — evaluated against, the
	// paper's cross-dataset experiment.
	TargetDataset string `json:"target_dataset"`
}

// sitePrediction is one static branch's predicted direction.
type sitePrediction struct {
	ID          int    `json:"id"`
	Func        string `json:"func"`
	Line        int    `json:"line"`
	Label       string `json:"label"`
	Direction   string `json:"direction"`
	FromProfile bool   `json:"from_profile"`
}

// predictEval reports prediction quality against the held-out target
// dataset, including the paper's instructions-per-mispredict measure.
type predictEval struct {
	TargetDataset       string  `json:"target_dataset"`
	Executed            uint64  `json:"executed"`
	Mispredicts         uint64  `json:"mispredicts"`
	PercentCorrect      float64 `json:"percent_correct"`
	InstrsPerMispredict float64 `json:"instrs_per_mispredict"`
}

// predictResponse is the POST /v1/predict reply.
type predictResponse struct {
	Program string `json:"program"`
	Mode    string `json:"mode"`
	// TrainedOn lists the datasets whose profiles fed the prediction;
	// empty when the prediction is heuristic-only.
	TrainedOn     []string         `json:"trained_on"`
	HeuristicOnly bool             `json:"heuristic_only"`
	Sites         []sitePrediction `json:"sites"`
	Eval          *predictEval     `json:"eval,omitempty"`
	// EvalError is set when a held-out target profile existed but the
	// evaluation against it failed; it distinguishes "evaluation went
	// wrong" (Eval nil, EvalError set) from "no target profile to
	// evaluate against" (both empty).
	EvalError string `json:"eval_error,omitempty"`
	Degraded  bool   `json:"degraded"`
}

// programInfo is one entry of GET /v1/programs.
type programInfo struct {
	Program  string   `json:"program"`
	Datasets []string `json:"datasets"`
	Sites    int      `json:"sites"`
	Executed uint64   `json:"executed"`
}

// decodeBody parses the limited request body into v. The error is
// pre-classified: oversized bodies are 413, malformed JSON 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.opts.MaxBodyBytes))
		} else {
			writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		}
		return false
	}
	return true
}

// validateNames rejects out-of-contract program/dataset identifiers
// and source/input blobs before any compute is admitted.
func validateProfileRequest(req *profileRequest) error {
	if !nameRE.MatchString(req.Program) {
		return fmt.Errorf("program name must match %s", nameRE)
	}
	if !nameRE.MatchString(req.Dataset) {
		return fmt.Errorf("dataset name must match %s", nameRE)
	}
	if req.Source == "" {
		return errors.New("source is required")
	}
	if len(req.Source) > maxSourceLen {
		return fmt.Errorf("source exceeds %d bytes", maxSourceLen)
	}
	if len(req.Input) > maxInputLen {
		return fmt.Errorf("input exceeds %d bytes", maxInputLen)
	}
	return nil
}

// handleProfile runs one program×dataset measurement and accumulates
// its profile in the database.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req profileRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := validateProfileRequest(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out, err := s.eng.ExecuteContext(r.Context(), s.specFor(&req))
	s.feedEngineDiskHealth()
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	key := dbKey(req.Program, req.Dataset)
	prof := out.Prof.Clone()
	prof.Program = key
	if err := s.store.Merge(r.Context(), prof); err != nil {
		if errors.Is(err, store.ErrConflict) {
			// Same name, different shape: the program was previously
			// profiled from different source or compiler options.
			writeError(w, http.StatusConflict,
				fmt.Sprintf("profile conflicts with accumulated data for %s/%s (source or options changed?): %v",
					req.Program, req.Dataset, err))
			return
		}
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	journaled := s.journaled(r.Context())
	persisted := s.saveDB(r.Context(), key)
	acc, err := s.store.Get(r.Context(), key)
	if err != nil || acc == nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("reading back accumulated profile: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, profileResponse{
		Program:      req.Program,
		Dataset:      req.Dataset,
		Sites:        acc.Sites(),
		Executed:     acc.Executed(),
		Taken:        acc.TakenCount(),
		PercentTaken: acc.PercentTaken(),
		Coverage:     acc.Coverage(),
		Instrs:       out.Res.Instrs,
		CacheHit:     out.CacheHit,
		Persisted:    persisted,
		Journaled:    journaled,
		Degraded:     s.Degraded(),
	})
}

// handlePredict serves a cross-dataset prediction for a program from
// the profiles accumulated so far.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !nameRE.MatchString(req.Program) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("program name must match %s", nameRE))
		return
	}
	if req.Source == "" || len(req.Source) > maxSourceLen {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("source is required and at most %d bytes", maxSourceLen))
		return
	}
	if req.TargetDataset != "" && !nameRE.MatchString(req.TargetDataset) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("target_dataset name must match %s", nameRE))
		return
	}
	var mode predict.CombineMode
	switch req.Mode {
	case "", "scaled":
		mode = predict.Scaled
	case "unscaled":
		mode = predict.Unscaled
	case "polling":
		mode = predict.Polling
	default:
		writeError(w, http.StatusBadRequest, `mode must be "scaled", "unscaled" or "polling"`)
		return
	}
	prog, err := s.eng.CompileContext(r.Context(), req.Program, req.Source, req.Options)
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}

	// Gather the program's per-dataset profiles, holding out the target.
	keys, err := s.store.Keys(r.Context())
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	var train []*ifprob.Profile
	var trainedOn []string
	var target *ifprob.Profile
	for _, key := range keys {
		p, ds := splitDBKey(key)
		if p != req.Program {
			continue
		}
		prof, err := s.store.Get(r.Context(), key)
		if err != nil || prof == nil {
			continue // key raced away between Keys and Get
		}
		if prof.Sites() != len(prog.Sites) {
			// Accumulated under a different compilation of the same
			// name; unusable for this image.
			continue
		}
		if ds == req.TargetDataset {
			target = prof
			continue
		}
		train = append(train, prof)
		trainedOn = append(trainedOn, ds)
	}

	pr, err := predict.Combine(train, mode, prog.Sites, predict.LoopHeuristic)
	heuristicOnly := false
	if errors.Is(err, predict.ErrNoProfiles) {
		// No training data yet: fall back to the static heuristic, the
		// compiler's default when no feedback exists.
		pr = predict.FromHeuristic(prog.Sites, predict.LoopHeuristic)
		heuristicOnly = true
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	resp := predictResponse{
		Program:       req.Program,
		Mode:          mode.String(),
		TrainedOn:     trainedOn,
		HeuristicOnly: heuristicOnly,
		Degraded:      s.Degraded(),
	}
	resp.Sites = make([]sitePrediction, len(prog.Sites))
	for i, site := range prog.Sites {
		fromProfile := !heuristicOnly && i < len(pr.FromProfile) && pr.FromProfile[i]
		resp.Sites[i] = sitePrediction{
			ID:          site.ID,
			Func:        site.Func,
			Line:        site.Line,
			Label:       site.Label,
			Direction:   pr.Dir[i].String(),
			FromProfile: fromProfile,
		}
	}
	if target != nil {
		ev, err := predict.Evaluate(pr, target)
		if err != nil {
			resp.EvalError = err.Error()
		} else {
			ipm := float64(target.Instrs)
			if ev.Mispredicts > 0 {
				ipm /= float64(ev.Mispredicts)
			} else {
				ipm = math.Inf(1)
			}
			resp.Eval = &predictEval{
				TargetDataset:       req.TargetDataset,
				Executed:            ev.Executed,
				Mispredicts:         ev.Mispredicts,
				PercentCorrect:      ev.PercentCorrect(),
				InstrsPerMispredict: ipm,
			}
		}
	}
	// InstrsPerMispredict is +Inf for a perfectly predicted target;
	// route past encoding/json's non-finite rejection.
	data, err := exp.MarshalSafe(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data) //nolint:errcheck // client gone is not actionable
}

// pageParam parses a non-negative integer query parameter, reporting
// (value, ok); absence yields the default.
func pageParam(r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// handlePrograms lists the accumulated profile inventory, paged with
// ?limit=N&offset=M over the program list (sorted by name). limit=0
// (the default) returns everything; the reply always carries the
// total so clients can page without a count round-trip.
func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit, ok := pageParam(r, "limit", 0)
	if !ok {
		writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	offset, ok := pageParam(r, "offset", 0)
	if !ok {
		writeError(w, http.StatusBadRequest, "offset must be a non-negative integer")
		return
	}
	keys, err := s.store.Keys(r.Context())
	if err != nil {
		code, msg := classify(err)
		writeError(w, code, msg)
		return
	}
	byProgram := make(map[string]*programInfo)
	for _, key := range keys {
		p, ds := splitDBKey(key)
		prof, err := s.store.Get(r.Context(), key)
		if err != nil || prof == nil {
			continue // key raced away between Keys and Get
		}
		info := byProgram[p]
		if info == nil {
			info = &programInfo{Program: p, Sites: prof.Sites()}
			byProgram[p] = info
		}
		info.Datasets = append(info.Datasets, ds)
		info.Executed += prof.Executed()
	}
	names := make([]string, 0, len(byProgram))
	for n := range byProgram {
		names = append(names, n)
	}
	sort.Strings(names)
	total := len(names)
	if offset > total {
		offset = total
	}
	names = names[offset:]
	if limit > 0 && limit < len(names) {
		names = names[:limit]
	}
	out := make([]programInfo, 0, len(names))
	for _, n := range names {
		sort.Strings(byProgram[n].Datasets)
		out = append(out, *byProgram[n])
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"programs": out,
		"total":    total,
		"offset":   offset,
	})
}

// storeHealth is the store detail inside /healthz.
type storeHealth struct {
	Driver     string        `json:"driver"`
	Persistent bool          `json:"persistent"`
	Degraded   bool          `json:"degraded"`
	Keys       int           `json:"keys"`
	Shards     []shardHealth `json:"shards,omitempty"`
}

// shardHealth is one shard's health inside /healthz.
type shardHealth struct {
	Name    string `json:"name"`
	Keys    int    `json:"keys"`
	Dirty   bool   `json:"dirty"`
	Breaker string `json:"breaker"`
}

// walHealth is the write-ahead journal detail inside /healthz; absent
// when the server runs without -wal.
type walHealth struct {
	Dir      string `json:"dir"`
	Policy   string `json:"policy"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	// Pending counts journaled records the wrapped driver has not yet
	// saved — the replay backlog a crash right now would recover.
	Pending  int    `json:"pending"`
	LastSeq  uint64 `json:"last_seq"`
	Replayed uint64 `json:"replayed"`
	// Broken means a torn append poisoned the log's tail; ingest is
	// rejected until restart (which truncates the tear and replays).
	Broken bool `json:"broken"`
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Status        string  `json:"status"` // "ok" or "degraded"
	Breaker       string  `json:"breaker"`
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Engine disk-cache trouble the operator should know about even
	// when the breaker has recovered.
	CacheWriteErrors uint64      `json:"cache_write_errors"`
	CacheInvalid     uint64      `json:"cache_invalid"`
	Programs         int         `json:"programs"`
	Store            storeHealth `json:"store"`
	// Repl reports the replication layer's per-peer health; absent on
	// standalone nodes.
	Repl *replHealth `json:"repl,omitempty"`
	// WAL reports the write-ahead journal's health; absent without -wal.
	WAL *walHealth `json:"wal,omitempty"`
}

// handleHealthz reports liveness plus degradation detail. It always
// answers 200 while the process is up — degradation is data, not
// death — and bypasses admission control so overload cannot starve it.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	status := "ok"
	if s.Degraded() {
		status = "degraded"
	}
	ss := s.store.Stats()
	sh := storeHealth{
		Driver:     ss.Driver,
		Persistent: ss.Persistent,
		Degraded:   ss.Degraded,
		Keys:       ss.Keys,
	}
	for _, shard := range ss.Shards {
		sh.Shards = append(sh.Shards, shardHealth{
			Name:    shard.Name,
			Keys:    shard.Keys,
			Dirty:   shard.Dirty,
			Breaker: shard.Breaker,
		})
	}
	var wh *walHealth
	if s.wal != nil {
		ws := s.wal.WALStats()
		wh = &walHealth{
			Dir:      ws.Dir,
			Policy:   string(ws.Policy),
			Segments: ws.Segments,
			Bytes:    ws.Bytes,
			Pending:  ws.Pending,
			LastSeq:  ws.LastSeq,
			Replayed: ws.Replayed,
			Broken:   ws.Broken,
		}
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:           status,
		Breaker:          s.breaker.State().String(),
		Draining:         s.draining.Load(),
		UptimeSeconds:    s.uptime().Seconds(),
		CacheWriteErrors: st.DiskWriteErrs,
		CacheInvalid:     st.DiskInvalid,
		Programs:         ss.Keys,
		Store:            sh,
		Repl:             s.replHealthz(),
		WAL:              wh,
	})
}

// handleReadyz reports readiness for traffic: 200 after Listen, 503
// once draining begins (before the listener closes, so load balancers
// see the flip while connections still work).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	reason := "not started"
	if s.draining.Load() {
		reason = "draining"
	}
	writeError(w, http.StatusServiceUnavailable, reason)
}

// classify maps a pipeline error to the HTTP status that tells the
// client whose fault it was: bad programs are 400, programs that
// trap at runtime are 422, deadlines 504, cancellations 499, drain
// 503 — and anything else (including recovered panics and injected
// faults) is an honest 500.
func classify(err error) (int, string) {
	var se *engine.StageError
	var pe *engine.PanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "internal error: " + err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline exceeded: " + err.Error()
	case errors.Is(err, context.Canceled):
		return statusClientGone, "cancelled: " + err.Error()
	}
	if errors.As(err, &se) {
		switch se.Stage {
		case "compile":
			return http.StatusBadRequest, "compile error: " + trimEngine(err)
		case "run", "profile":
			if isTrap(err) {
				return http.StatusUnprocessableEntity, "runtime trap: " + trimEngine(err)
			}
		}
	}
	return http.StatusInternalServerError, "internal error: " + err.Error()
}

// isTrap reports whether err is a VM resource/behaviour trap — the
// program's fault, not the server's.
func isTrap(err error) bool {
	var re *vm.RuntimeError
	return errors.Is(err, vm.ErrFuel) || errors.As(err, &re)
}

// trimEngine drops the "engine: <stage> <spec>: " prefix so client
// errors read as their cause.
func trimEngine(err error) string {
	msg := err.Error()
	if i := strings.Index(msg, ": "); i >= 0 && strings.HasPrefix(msg, "engine: ") {
		if j := strings.Index(msg[i+2:], ": "); j >= 0 {
			return msg[i+2+j+2:]
		}
	}
	return msg
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestProfileBatch: a mixed batch fails per-entry, succeeds per-entry,
// and lands in the store with one save.
func TestProfileBatch(t *testing.T) {
	dbPath := t.TempDir() + "/profiles.json"
	s := newTestServer(t, Options{Concurrency: 2, DBPath: dbPath})

	body := map[string]any{"entries": []map[string]any{
		profileBody("count", "d1", countSrc, "aaab"),
		profileBody("count", "d2", countSrc, "bbbb"),
		profileBody("bad name!", "d", countSrc, ""),
		profileBody("broken", "d", "func main() int { return undefined; }", ""),
	}}
	var resp batchResponse
	if code := doJSON(t, s, "POST", "/v1/profile/batch", body, &resp); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if resp.OK != 2 || resp.Failed != 2 {
		t.Fatalf("ok/failed = %d/%d, want 2/2", resp.OK, resp.Failed)
	}
	if !resp.Persisted {
		t.Fatal("batch with a healthy disk did not persist")
	}
	wantStatus := []int{200, 200, 400, 400}
	for i, want := range wantStatus {
		if resp.Results[i].Index != i || resp.Results[i].Status != want {
			t.Fatalf("entry %d = %+v, want status %d", i, resp.Results[i], want)
		}
	}
	if p := resp.Results[0].Profile; p == nil || p.Executed == 0 || !p.Persisted {
		t.Fatalf("entry 0 profile: %+v", resp.Results[0].Profile)
	}

	// Both datasets are in the inventory; the same batch again
	// accumulates rather than conflicting.
	var inv struct {
		Programs []programInfo `json:"programs"`
		Total    int           `json:"total"`
	}
	doJSON(t, s, "GET", "/v1/programs", nil, &inv)
	if inv.Total != 1 || strings.Join(inv.Programs[0].Datasets, ",") != "d1,d2" {
		t.Fatalf("inventory after batch: %+v", inv)
	}

	// A conflicting entry inside a batch is a per-entry 409.
	other := "func main() int { if (getc() > 0) { return 1; } return 0; }"
	body = map[string]any{"entries": []map[string]any{
		profileBody("count", "d1", other, "aa"),
	}}
	doJSON(t, s, "POST", "/v1/profile/batch", body, &resp)
	if resp.Results[0].Status != http.StatusConflict {
		t.Fatalf("conflicting batch entry = %+v, want 409", resp.Results[0])
	}
}

// TestProfileBatchLimits: malformed batch bodies get typed statuses.
func TestProfileBatchLimits(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 1})
	if code := doJSON(t, s, "POST", "/v1/profile/batch", map[string]any{"entries": []any{}}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", code)
	}
	entries := make([]map[string]any, maxBatchEntries+1)
	for i := range entries {
		entries[i] = profileBody("p", "d", "func main() int { return 0; }", "")
	}
	if code := doJSON(t, s, "POST", "/v1/profile/batch", map[string]any{"entries": entries}, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d, want 413", code)
	}
	if code := doJSON(t, s, "GET", "/v1/profile/batch", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatal("GET batch should be 405")
	}
}

// streamLines posts raw NDJSON and decodes every response line.
func streamLines(t *testing.T, s *Server, body string) []map[string]any {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/profile/stream", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("undecodable stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, v)
	}
	return lines
}

// TestProfileStream: NDJSON in, NDJSON out — result per line, summary
// last, profiles durable, malformed lines failing alone.
func TestProfileStream(t *testing.T) {
	dbPath := t.TempDir() + "/profiles.d"
	s := newTestServer(t, Options{Concurrency: 2, DBPath: dbPath, Shards: 2})

	enc := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	body := enc(profileBody("count", "d1", countSrc, "aaab")) + "\n" +
		"{not json\n" +
		enc(profileBody("count", "d2", countSrc, "bbbb")) + "\n"

	lines := streamLines(t, s, body)
	if len(lines) != 4 { // 3 results + summary
		t.Fatalf("stream returned %d lines, want 4: %v", len(lines), lines)
	}
	for i, wantStatus := range []float64{200, 400, 200} {
		if lines[i]["status"] != wantStatus {
			t.Fatalf("line %d = %v, want status %v", i, lines[i], wantStatus)
		}
	}
	sum := lines[3]
	if sum["done"] != true || sum["lines"] != float64(3) || sum["ok"] != float64(2) || sum["failed"] != float64(1) {
		t.Fatalf("summary = %v", sum)
	}
	if sum["persisted"] != true {
		t.Fatalf("stream did not persist: %v", sum)
	}

	// The sharded store holds both keys durably: a fresh server on the
	// same path sees them.
	s2 := newTestServer(t, Options{Concurrency: 1, DBPath: dbPath})
	var inv struct {
		Programs []programInfo `json:"programs"`
	}
	doJSON(t, s2, "GET", "/v1/programs", nil, &inv)
	if len(inv.Programs) != 1 || strings.Join(inv.Programs[0].Datasets, ",") != "d1,d2" {
		t.Fatalf("inventory after stream restart: %+v", inv.Programs)
	}

	// An empty stream is fine: zero lines, nothing persisted.
	lines = streamLines(t, s, "\n\n")
	if len(lines) != 1 || lines[0]["lines"] != float64(0) || lines[0]["persisted"] != false {
		t.Fatalf("empty stream = %v", lines)
	}
}

// TestProfileStreamClientDisconnect: a client that vanishes mid-stream
// must not cost the profiles it already streamed — the handler's final
// flush runs under context.WithoutCancel, so every accepted entry
// reaches disk and no shard is left dirty.
func TestProfileStreamClientDisconnect(t *testing.T) {
	dbPath := t.TempDir() + "/profiles.d"
	s := newTestServer(t, Options{Concurrency: 2, DBPath: dbPath, Shards: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/profile/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", resp.StatusCode)
	}

	// Stream two entries and wait for their acknowledgement lines: both
	// are merged (and the shard dirty) before the disconnect.
	lines := bufio.NewScanner(resp.Body)
	for i, ds := range []string{"d1", "d2"} {
		entry, err := json.Marshal(profileBody("count", ds, countSrc, "aaab"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pw.Write(append(entry, '\n')); err != nil {
			t.Fatal(err)
		}
		if !lines.Scan() {
			t.Fatalf("no response line for entry %d: %v", i, lines.Err())
		}
		var got batchEntry
		if err := json.Unmarshal(lines.Bytes(), &got); err != nil {
			t.Fatalf("undecodable line %q: %v", lines.Text(), err)
		}
		if got.Status != http.StatusOK {
			t.Fatalf("entry %d = %+v, want 200", i, got)
		}
	}

	// Drop the connection without finishing the stream: the request
	// context the handler holds is cancelled from under it.
	cancel()
	pw.CloseWithError(context.Canceled) //nolint:errcheck // pipe close cannot fail

	// The WithoutCancel final flush must still land both entries:
	// every shard clean, both datasets durable on a fresh open.
	deadline := time.Now().Add(10 * time.Second)
	for {
		clean := true
		for _, sh := range s.store.Stats().Shards {
			if sh.Dirty {
				clean = false
			}
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards still dirty after disconnect: %+v", s.store.Stats().Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s2 := newTestServer(t, Options{Concurrency: 1, DBPath: dbPath})
	var inv struct {
		Programs []programInfo `json:"programs"`
	}
	doJSON(t, s2, "GET", "/v1/programs", nil, &inv)
	if len(inv.Programs) != 1 || strings.Join(inv.Programs[0].Datasets, ",") != "d1,d2" {
		t.Fatalf("profiles accepted before disconnect were lost: %+v", inv.Programs)
	}
}

// TestShardedServerEndToEnd: a server on a sharded store profiles,
// predicts, pages the inventory, and exposes per-shard health and
// metrics.
func TestShardedServerEndToEnd(t *testing.T) {
	dbPath := t.TempDir() + "/profiles.d"
	s := newTestServer(t, Options{Concurrency: 2, DBPath: dbPath, Shards: 4})

	var pr profileResponse
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "mostly-a", countSrc, "aaab"), &pr); code != 200 {
		t.Fatalf("profile = %d", code)
	}
	if !pr.Persisted || pr.Degraded {
		t.Fatalf("sharded profile response: %+v", pr)
	}
	doJSON(t, s, "POST", "/v1/profile", profileBody("count", "no-a", countSrc, "bbbb"), &pr)
	doJSON(t, s, "POST", "/v1/profile", profileBody("other", "d", countSrc, "ab"), &pr)

	// Prediction trains across shards transparently.
	var pd predictResponse
	body := map[string]any{"program": "count", "source": countSrc, "target_dataset": "no-a"}
	if code := doJSON(t, s, "POST", "/v1/predict", body, &pd); code != 200 {
		t.Fatalf("predict = %d", code)
	}
	if pd.HeuristicOnly || len(pd.TrainedOn) != 1 {
		t.Fatalf("sharded predict: %+v", pd)
	}

	// Paged inventory: limit=1 pages through the two programs.
	var page struct {
		Programs []programInfo `json:"programs"`
		Total    int           `json:"total"`
		Offset   int           `json:"offset"`
	}
	doJSON(t, s, "GET", "/v1/programs?limit=1", nil, &page)
	if page.Total != 2 || len(page.Programs) != 1 || page.Programs[0].Program != "count" {
		t.Fatalf("page 1: %+v", page)
	}
	doJSON(t, s, "GET", "/v1/programs?limit=1&offset=1", nil, &page)
	if page.Total != 2 || len(page.Programs) != 1 || page.Programs[0].Program != "other" {
		t.Fatalf("page 2: %+v", page)
	}
	doJSON(t, s, "GET", "/v1/programs?offset=99", nil, &page)
	if page.Total != 2 || len(page.Programs) != 0 || page.Offset != 2 {
		t.Fatalf("past-the-end page: %+v", page)
	}
	if code := doJSON(t, s, "GET", "/v1/programs?limit=-1", nil, nil); code != 400 {
		t.Fatalf("negative limit = %d, want 400", code)
	}
	if code := doJSON(t, s, "GET", "/v1/programs?limit=x", nil, nil); code != 400 {
		t.Fatalf("junk limit = %d, want 400", code)
	}

	// Health reports the sharded store.
	var h healthResponse
	doJSON(t, s, "GET", "/healthz", nil, &h)
	if h.Store.Driver != "shard" || len(h.Store.Shards) != 4 || h.Store.Keys != 3 {
		t.Fatalf("healthz store detail: %+v", h.Store)
	}
	for _, sh := range h.Store.Shards {
		if sh.Breaker != "closed" {
			t.Fatalf("healthy shard reports breaker %q", sh.Breaker)
		}
	}

	// Per-shard metrics ride the shared registry.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		"branchprofd_store_keys 3",
		`branchprofd_store_shard_keys{shard="shard-000"}`,
		`branchprofd_store_shard_breaker_open{shard="shard-003"} 0`,
		`branchprofd_store_shard_saves{shard=`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

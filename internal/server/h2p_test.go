package server

import (
	"net/http"
	"testing"
)

// mixSrc has one easy branch (the loop, almost always taken) and one
// hard branch (taken on every 'a' in the input), so an H2P ranking has
// a deterministic hardest site to find: with an alternating "abab..."
// input the `if (c == 97)` site flips every execution and must out-
// score the loop back-edge under every scheme.
const mixSrc = `
func main() int {
	var n int = 0;
	var c int = getc();
	while (c >= 0) {
		if (c == 97) {
			n = n + 1;
		}
		c = getc();
	}
	return n;
}
`

func h2pBody(program, dataset, source, input string, n int) map[string]any {
	return map[string]any{
		"program": program, "dataset": dataset, "source": source, "input": input, "n": n,
	}
}

func TestH2PProfilesReport(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 2})

	// No profiles yet: 404, not an empty report.
	if code := doJSON(t, s, "GET", "/v1/h2p?program=count", nil, nil); code != http.StatusNotFound {
		t.Fatalf("h2p before any profile = %d, want 404", code)
	}
	if code := doJSON(t, s, "GET", "/v1/h2p?program=bad@name", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("h2p with invalid name = %d, want 400", code)
	}

	for _, ds := range []struct{ name, input string }{
		{"mostly-a", "aaab"},
		{"alternating", "abababab"},
	} {
		if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", ds.name, mixSrc, ds.input), nil); code != http.StatusOK {
			t.Fatalf("profile %s = %d", ds.name, code)
		}
	}

	var resp h2pProfileResponse
	if code := doJSON(t, s, "GET", "/v1/h2p?program=count&n=2", nil, &resp); code != http.StatusOK {
		t.Fatalf("h2p = %d", code)
	}
	if resp.Mode != "profiles" || len(resp.Datasets) != 2 || resp.Instrs == 0 {
		t.Fatalf("bad h2p response: %+v", resp)
	}
	if len(resp.Top) == 0 || len(resp.Top) > 2 {
		t.Fatalf("top has %d sites, want 1..2", len(resp.Top))
	}
	prev := resp.Top[0].MPKI
	for _, site := range resp.Top {
		if site.MPKI > prev {
			t.Fatalf("ranking not descending: %+v", resp.Top)
		}
		prev = site.MPKI
		if site.Executed == 0 {
			t.Fatalf("never-executed site ranked: %+v", site)
		}
		if site.TakenRate < 0 || site.TakenRate > 1 || site.Entropy < 0 || site.Entropy > 1.0000001 {
			t.Fatalf("site stats out of range: %+v", site)
		}
	}
}

func TestH2PTracedReport(t *testing.T) {
	s := newTestServer(t, Options{Concurrency: 2})

	// Accumulate a profile first so the static scheme is profile-fed.
	if code := doJSON(t, s, "POST", "/v1/profile", profileBody("count", "train", mixSrc, "abab"), nil); code != http.StatusOK {
		t.Fatal("profile failed")
	}

	var resp h2pTracedResponse
	if code := doJSON(t, s, "POST", "/v1/h2p", h2pBody("count", "alternating", mixSrc, "abababababababab", 3), &resp); code != http.StatusOK {
		t.Fatalf("traced h2p = %d", code)
	}
	if resp.Mode != "traced" || resp.Instrs == 0 || resp.Sites == 0 {
		t.Fatalf("bad traced response: %+v", resp)
	}
	if resp.HeuristicOnly || len(resp.TrainedOn) != 1 || resp.TrainedOn[0] != "train" {
		t.Fatalf("static scheme not profile-fed: %+v", resp)
	}
	if len(resp.Top) == 0 || len(resp.Top) > 3 {
		t.Fatalf("top has %d sites, want 1..3", len(resp.Top))
	}
	// Every ranked site carries the full scheme breakdown, with the
	// profile-fed static scheme first, and a finite score.
	for _, site := range resp.Top {
		if len(site.MPKI) != 6 {
			t.Fatalf("site %d has %d schemes, want 6 (static + zoo): %+v", site.Site, len(site.MPKI), site)
		}
		if site.MPKI[0].Scheme != "profile" {
			t.Fatalf("first scheme = %q, want the profile-fed static", site.MPKI[0].Scheme)
		}
		if site.Func == "" {
			t.Fatalf("ranked site missing source identity: %+v", site)
		}
	}
	// The alternating if is structurally the hardest branch here: high
	// entropy, run length 1. It must top the ranking.
	if top := resp.Top[0]; top.Entropy < 0.9 || top.Label != "if" {
		t.Fatalf("hardest branch = %+v, want the alternating if", top)
	}

	// Without any stored profile the static scheme falls back to the
	// heuristic — still a valid report.
	var fresh h2pTracedResponse
	if code := doJSON(t, s, "POST", "/v1/h2p", h2pBody("nameless", "", mixSrc, "ab", 0), &fresh); code != http.StatusOK {
		t.Fatal("heuristic-only traced h2p failed")
	}
	if !fresh.HeuristicOnly || len(fresh.TrainedOn) != 0 {
		t.Fatalf("expected heuristic-only fallback: %+v", fresh)
	}

	// Contract errors stay client errors.
	if code := doJSON(t, s, "POST", "/v1/h2p", h2pBody("count", "x", "func main( {", "", 0), nil); code != http.StatusBadRequest {
		t.Fatal("compile error not 400")
	}
	if code := doJSON(t, s, "POST", "/v1/h2p", h2pBody("bad@name", "x", mixSrc, "", 0), nil); code != http.StatusBadRequest {
		t.Fatal("invalid program name not 400")
	}
	if code := doJSON(t, s, "DELETE", "/v1/h2p", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatal("DELETE not 405")
	}

	// The report metrics are live on the shared registry.
	if v := s.m.h2pLastSites.Load(); v == 0 {
		t.Error("branchprof_h2p_last_sites not set")
	}
	if v := s.m.h2pLastInstrs.Load(); v == 0 {
		t.Error("branchprof_h2p_last_traced_instrs not set")
	}
}

// Package server is branchprofd: the repository's measurement
// pipeline (internal/engine) behind a long-running, hardened HTTP
// service. Clients POST MF programs and datasets; the server compiles
// and runs them through the shared engine (reusing its caches, fault
// discipline and observability wiring), accumulates per-branch
// profiles in an ifprob database keyed by program and dataset, and
// serves cross-dataset predictions — the paper's feedback loop
// (profile previous runs, predict the next one) as an online service.
//
// The robustness machinery is the point of the package:
//
//   - admission control: a concurrency semaphore sized to the engine
//     pool plus a bounded waiting queue; a burst beyond both is shed
//     immediately with 429 and a Retry-After hint, so overload can
//     never queue unbounded goroutines or memory;
//   - per-request deadlines propagated as contexts into the VM's
//     cancellation poll (408/504 instead of a wedged worker);
//   - strict input validation and body size limits: compiler errors
//     are 400, VM traps (fuel, stack, output) are 422 — hostile input
//     never crashes the process;
//   - panic-to-500 recovery middleware around every handler;
//   - circuit breakers around persistent I/O: the single-file store is
//     guarded by a server-wide breaker (plus the engine cache's error
//     feed), while the sharded store carries one breaker per shard —
//     either way, when a disk misbehaves the server degrades to
//     compute-only mode (profiles stay in memory, saves are skipped
//     until a half-open probe succeeds) and reports the degradation
//     via /healthz and metrics;
//   - /healthz and /readyz endpoints, and SIGTERM graceful drain with
//     a hard deadline: readiness flips first, in-flight requests
//     complete, queued requests are shed with 503.
//
// See docs/SERVER.md for the endpoint reference and a walkthrough.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"branchprof/internal/circuit"
	"branchprof/internal/engine"
	"branchprof/internal/faults"
	"branchprof/internal/obs"
	"branchprof/internal/store"
	"branchprof/internal/store/replstore"
	"branchprof/internal/store/wal"

	_ "branchprof/internal/store/memstore"   // linked store driver: "mem"
	_ "branchprof/internal/store/shardstore" // linked store driver: "shard"
)

// Options configures a Server.
type Options struct {
	// Engine is the measurement pipeline; nil builds a private one
	// from CacheDir/Faults/Obs.
	Engine *engine.Engine
	// CacheDir enables the engine's persistent measurement cache when
	// Engine is nil.
	CacheDir string
	// DBPath, when non-empty, persists the accumulated profile store
	// there (loaded at startup, saved after each update through the
	// circuit breaker, final save on drain). A file is a single-file
	// store; a directory is a sharded store (auto-detected by its
	// manifest). Ignored when Store is set.
	DBPath string
	// Shards, when > 0, opens DBPath as a sharded store: a fresh path
	// is created with that many shards, and an existing single-file
	// database is migrated in place (original kept as ".pre-shard").
	// An existing sharded store's manifest wins over this value.
	Shards int
	// Store, when non-nil, is used directly and DBPath/Shards are
	// ignored — the injection point for tests and embedders.
	Store store.Store
	// WALDir, when non-empty, journals every profile mutation to a
	// write-ahead log in that directory before it is acknowledged, and
	// replays unapplied records on startup — acknowledged ingest
	// survives a crash even when the driver's save never ran (see
	// docs/ROBUSTNESS.md "Durability contract"). The underlying driver
	// must support checkpoints (both built-in drivers do).
	WALDir string
	// WALFsync picks when journal appends reach the medium: "record"
	// (fsync inside every append — strongest, slowest), "batch" (fsync
	// once per ingest request before the acknowledgement) or "interval"
	// (background fsync every WALInterval — weakest, fastest). Empty
	// means "record".
	WALFsync string
	// WALInterval is the background sync period under the "interval"
	// policy; 0 means 100ms.
	WALInterval time.Duration
	// Concurrency bounds simultaneously executing requests;
	// 0 means the engine's worker count.
	Concurrency int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// Concurrency; anything past both is shed with 429. 0 means 64,
	// negative means no queue (immediate shed when busy).
	QueueDepth int
	// RequestTimeout is the per-request deadline propagated into the
	// VM; 0 means 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 means 4 MiB.
	MaxBodyBytes int64
	// MaxFuel caps the instruction budget a request may ask for (and
	// is the default when it asks for none); 0 means 1<<26. Keeping it
	// well below the VM's offline default bounds slot hold time.
	MaxFuel uint64
	// RetryAfter is the Retry-After hint on 429/503 responses;
	// 0 means 1s.
	RetryAfter time.Duration
	// BreakerThreshold is the consecutive persistent-I/O failures that
	// open the circuit; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe; 0 means 5s.
	BreakerCooldown time.Duration
	// Peers lists the base URLs of the other branchprofd nodes in the
	// replication cluster (e.g. "http://10.0.0.2:7070"). Non-empty
	// turns on peer replication: the store is wrapped in
	// internal/store/replstore, the /v1/sync endpoints open, and a
	// gossip loop anti-entropy-syncs with every peer. Requires SelfID.
	Peers []string
	// SelfID is this node's stable, cluster-unique origin ID (persisted
	// component keys embed it). Required when Peers is set; setting it
	// alone enables the replication layer without a gossip loop (a
	// single-node cluster peers can still pull from).
	SelfID string
	// SyncInterval is the base gossip period (jittered ±20% per round);
	// 0 means 2s.
	SyncInterval time.Duration
	// SyncTimeout bounds one full peer exchange (digest + pulls);
	// 0 means 5s.
	SyncTimeout time.Duration
	// SyncConcurrency bounds simultaneous peer syncs within a round;
	// 0 means 4.
	SyncConcurrency int
	// Faults injects faults into the server's own persistence stages
	// and peer-sync exchanges (chaos tests only; nil in production).
	// The engine carries its own set.
	Faults *faults.Set
	// Obs supplies observability sinks (metrics registry, tracer,
	// clock). Nil-safe throughout.
	Obs *obs.Obs
	// OnDrained, when non-nil, runs after a drain completes — the hook
	// cmd/branchprofd uses to flush observability sinks before exit.
	OnDrained func()
}

// Server is the branchprofd HTTP service. Construct with New, attach
// with Handler or Listen, stop with Drain (graceful) or Close (hard).
type Server struct {
	opts    Options
	eng     *engine.Engine
	store   store.Store
	guarded bool             // the store isolates its own save failures (per-shard breakers)
	wal     *wal.Store       // non-nil when WALDir journaling is on
	repl    *replstore.Store // non-nil when peer replication is on
	syncer  *syncer          // non-nil when Peers is non-empty
	gate    *gate
	breaker *circuit.Breaker
	mux     *http.ServeMux

	ready    atomic.Bool
	draining atomic.Bool

	dbMu sync.Mutex // serializes unguarded-store saves and the save/skip decision

	httpMu sync.Mutex
	http   *http.Server
	lis    net.Listener

	startedAt time.Time

	m *serverMetrics
}

// New builds the server, opening the profile store at DBPath (single
// file or sharded directory; see internal/store). Corrupt persisted
// state is quarantined (renamed aside with a ".corrupt" suffix)
// rather than refusing to start or silently overwriting evidence; the
// server then starts empty and says so in the returned warnings, as
// does a completed single-file → sharded migration.
func New(opts Options) (*Server, Warnings, error) {
	var warns Warnings
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Options{CacheDir: opts.CacheDir, Faults: opts.Faults, Obs: opts.Obs})
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = eng.WorkerCount()
	}
	switch {
	case opts.QueueDepth == 0:
		opts.QueueDepth = 64
	case opts.QueueDepth < 0:
		opts.QueueDepth = 0
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	if opts.MaxFuel == 0 {
		opts.MaxFuel = 1 << 26
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 2 * time.Second
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 5 * time.Second
	}
	if opts.SyncConcurrency <= 0 {
		opts.SyncConcurrency = 4
	}
	if len(opts.Peers) > 0 && opts.SelfID == "" {
		return nil, nil, errors.New("server: Peers requires SelfID (a stable, cluster-unique node ID)")
	}
	s := &Server{
		opts:      opts,
		eng:       eng,
		gate:      newGate(opts.Concurrency, opts.QueueDepth),
		breaker:   circuit.New(opts.BreakerThreshold, opts.BreakerCooldown, opts.Obs.Now),
		startedAt: opts.Obs.Now(),
	}
	s.store = opts.Store
	if s.store == nil {
		st, w, err := store.Open(context.Background(), opts.DBPath, store.Options{
			Shards:           opts.Shards,
			BreakerThreshold: opts.BreakerThreshold,
			BreakerCooldown:  opts.BreakerCooldown,
			Faults:           opts.Faults,
			Now:              opts.Obs.Now,
		})
		warns = append(warns, w...)
		if err != nil {
			return nil, warns, fmt.Errorf("server: opening profile store: %w", err)
		}
		s.store = st
	}
	if opts.WALDir != "" && opts.Store == nil && opts.DBPath == "" {
		// An in-memory store's Save is a successful no-op, which would
		// let the journal truncate records that are durable nowhere.
		return nil, warns, errors.New("server: WALDir requires a persistent store (set DBPath)")
	}
	if opts.WALDir != "" {
		// The journal sits below the replication layer so that composite
		// component keys, sync-pull applies and origin adoptions are all
		// journaled mutations — a crashed node replays its replicated
		// state too.
		ws, w, err := wal.Wrap(context.Background(), s.store, opts.WALDir, wal.Options{
			Fsync:    wal.FsyncPolicy(opts.WALFsync),
			Interval: opts.WALInterval,
			Faults:   opts.Faults,
		})
		warns = append(warns, w...)
		if err != nil {
			return nil, warns, fmt.Errorf("server: opening write-ahead journal: %w", err)
		}
		s.wal = ws
		s.store = ws
	}
	if opts.SelfID != "" {
		rs, w, err := replstore.Wrap(context.Background(), s.store, replstore.Config{Self: opts.SelfID})
		warns = append(warns, w...)
		if err != nil {
			return nil, warns, fmt.Errorf("server: wrapping store for replication: %w", err)
		}
		s.repl = rs
		s.store = rs
		if len(opts.Peers) > 0 {
			s.syncer = newSyncer(s, rs)
		}
	}
	s.guarded = s.store.Stats().Guarded
	s.m = newServerMetrics(eng.Registry(), s)
	s.mux = s.buildMux()
	return s, warns, nil
}

// Warnings are non-fatal startup conditions the operator should see.
type Warnings []string

// Engine returns the engine the server routes work through.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Store returns the accumulated profile store (live handle; stores
// are safe for concurrent use).
func (s *Server) Store() store.Store { return s.store }

// buildMux wires the endpoint table. Every API handler runs inside
// the recover/metrics middleware; health endpoints bypass admission
// control so an overloaded server still answers its probes.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/v1/profile", s.instrument("profile", s.admitted(s.handleProfile)))
	mux.Handle("/v1/profile/batch", s.instrument("profile_batch", s.admitted(s.handleProfileBatch)))
	mux.Handle("/v1/profile/stream", s.instrument("profile_stream", s.admitted(s.handleProfileStream)))
	mux.Handle("/v1/predict", s.instrument("predict", s.admitted(s.handlePredict)))
	mux.Handle("/v1/h2p", s.instrument("h2p", s.admitted(s.handleH2P)))
	mux.Handle("/v1/programs", s.instrument("programs", http.HandlerFunc(s.handlePrograms)))
	if s.repl != nil {
		// The sync plane bypasses admission control like the health
		// endpoints: anti-entropy must keep working while the compute
		// plane is saturated, or overload would wedge convergence.
		mux.Handle("/v1/sync/digest", s.instrument("sync_digest", http.HandlerFunc(s.handleSyncDigest)))
		mux.Handle("/v1/sync/pull", s.instrument("sync_pull", http.HandlerFunc(s.handleSyncPull)))
	}
	mux.Handle("/healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("/readyz", s.instrument("readyz", http.HandlerFunc(s.handleReadyz)))
	if reg := s.eng.Registry(); reg != nil {
		mux.Handle("/metrics", reg)
	}
	return mux
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr and serves in a background goroutine with the
// full set of listener timeouts (see docs/SERVER.md). It flips
// readiness on and returns the bound address, useful with ":0".
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	s.httpMu.Lock()
	s.http = srv
	s.lis = lis
	s.httpMu.Unlock()
	s.ready.Store(true)
	go srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Drain/Close
	if s.syncer != nil {
		go s.syncer.run()
	}
	return lis.Addr().String(), nil
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// BeginDrain flips the server into draining mode without touching the
// listener: /readyz starts answering 503 (so load balancers stop
// sending traffic while the listener is still open), no new request
// is admitted, and queued requests unblock with 503. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.ready.Store(false)
		s.gate.beginDrain()
	}
}

// Drain gracefully shuts the server down: BeginDrain, then wait for
// in-flight requests to complete and the listener to close, bounded
// by ctx (the hard deadline — when it expires remaining connections
// are force-closed and ctx.Err is returned). The store gets a final
// best-effort save through the circuit breaker(s), and OnDrained
// runs last.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	s.stopSync()
	s.httpMu.Lock()
	srv := s.http
	s.httpMu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
		if err != nil {
			srv.Close()
		}
	}
	// The final save must not be cancelled by an already-expired drain
	// deadline — it is the last chance for in-memory profiles to reach
	// disk.
	s.saveDB(context.Background())
	if s.opts.OnDrained != nil {
		s.opts.OnDrained()
	}
	return err
}

// stopSync stops the gossip loop (if any) and waits for the in-flight
// round, so shutdown's final save sees replication quiesced. Safe to
// call when the loop never started (Listen not reached): syncer.run
// exits on the closed stop channel whenever it would have begun.
func (s *Server) stopSync() {
	if s.syncer == nil {
		return
	}
	s.httpMu.Lock()
	started := s.lis != nil
	s.httpMu.Unlock()
	if started {
		s.syncer.shutdown()
	} else {
		s.syncer.stopOnce.Do(func() { close(s.syncer.stop) })
	}
}

// Close stops the server immediately (tests, fatal paths).
func (s *Server) Close() error {
	s.BeginDrain()
	s.stopSync()
	s.httpMu.Lock()
	srv := s.http
	s.httpMu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// Degraded reports whether the server is in (possibly partial)
// compute-only degraded mode: the server-wide persistent-I/O circuit
// is open or probing, or — for a sharded store — any shard's breaker
// is, or the write-ahead journal is broken (a torn append poisoned
// the log's tail; no further ingest can be made durable).
func (s *Server) Degraded() bool {
	if s.breaker.Degraded() || s.store.Stats().Degraded {
		return true
	}
	return s.wal != nil && s.wal.Broken()
}

// journaled drives the journal to its policy's commit point at an
// ingest acknowledgement boundary and reports whether the request's
// mutations are in the journal per that policy: under "record" every
// append already synced, under "batch" this is the per-request fsync,
// and under "interval" the append is journaled with the sync owed to
// the background ticker. False when journaling is off or the commit
// failed.
func (s *Server) journaled(ctx context.Context) bool {
	if s.wal == nil {
		return false
	}
	if s.wal.Broken() {
		return false
	}
	if s.wal.Policy() == wal.FsyncBatch {
		// Detached from the request context like the stream's final
		// save: an expired client deadline must not lose the fsync for
		// already-applied mutations.
		return s.wal.Sync(context.WithoutCancel(ctx)) == nil
	}
	return true
}

// instrument is the outermost middleware: panic-to-500 recovery plus
// the request counter and latency histogram.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.opts.Obs.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		ctx, sp := s.opts.Obs.Start(r.Context(), "serve."+route)
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Inc()
				// The handler may have written nothing yet; best-effort 500.
				writeError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
			// End the span here, not inline after ServeHTTP: a handler
			// panic would otherwise leak it unended in the tracer.
			sp.SetAttr("code", sw.code)
			sp.End()
			s.m.observe(route, sw.code, s.opts.Obs.Now().Sub(start))
		}()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// admitted wraps an execution-bearing handler in admission control
// and the per-request deadline. Shed requests get 429 + Retry-After,
// drain rejections 503 + Retry-After, and a client that gives up
// while queued is released without ever taking a slot.
func (s *Server) admitted(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := s.gate.acquire(r.Context())
		if err != nil {
			retry := strconv.Itoa(int((s.opts.RetryAfter + time.Second - 1) / time.Second))
			switch {
			case errors.Is(err, errShed):
				s.m.shedQueueFull.Inc()
				w.Header().Set("Retry-After", retry)
				writeError(w, http.StatusTooManyRequests, "queue full, retry later")
			case errors.Is(err, errDraining):
				s.m.shedDraining.Inc()
				w.Header().Set("Retry-After", retry)
				writeError(w, http.StatusServiceUnavailable, "server draining")
			default: // client went away while queued
				writeError(w, statusClientGone, "client cancelled while queued")
			}
			return
		}
		defer release()
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		next(w, r.WithContext(ctx))
	})
}

// statusClientGone mirrors nginx's non-standard 499 "client closed
// request" — the connection is usually gone, the code feeds metrics.
const statusClientGone = 499

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so streaming handlers (NDJSON
// ingest) can push partial responses through the metrics wrapper —
// without this the handler's Flusher assertion fails and a streaming
// client sees nothing until the request ends.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// controller features the wrapper doesn't re-implement (full-duplex
// streaming, deadlines) reach the real connection.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// saveDB persists the store (the shards owning keys, or everything
// dirty when keys is empty) through the appropriate circuit breaker.
// Unguarded stores (the single file) route through the server-wide
// breaker, preserving the original compute-only degradation contract;
// guarded stores (sharded) isolate failures per shard themselves.
// Returns whether the selected profile data is durable on disk (false
// when persistence is unconfigured, skipped by an open circuit, or
// failed).
func (s *Server) saveDB(ctx context.Context, keys ...string) bool {
	if s.guarded {
		err := s.store.Save(ctx, keys...)
		switch {
		case err == nil:
			s.m.dbSaves.Inc()
			return true
		case errors.Is(err, store.ErrDegraded):
			s.m.dbSkipped.Inc()
		default:
			s.m.dbErrors.Inc()
		}
		return false
	}
	if !s.store.Stats().Persistent {
		return false
	}
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	if !s.breaker.Allow() {
		s.m.dbSkipped.Inc()
		return false
	}
	err := s.store.Save(ctx, keys...)
	s.breaker.Record(err)
	if err != nil {
		s.m.dbErrors.Inc()
		return false
	}
	s.m.dbSaves.Inc()
	return true
}

// feedEngineDiskHealth routes the engine's cache-I/O failure counters
// into the circuit breaker, so a disk that only the measurement cache
// touches still trips the server into (reported) degraded mode.
func (s *Server) feedEngineDiskHealth() {
	st := s.eng.Stats()
	errs := st.DiskWriteErrs + st.RetryGiveUps
	last := s.m.lastEngineDiskErrs.Swap(errs)
	if errs > last {
		s.breaker.Record(fmt.Errorf("server: engine cache I/O errors (%d new)", errs-last))
	}
}

// uptime is the server's age, for /healthz.
func (s *Server) uptime() time.Duration {
	return s.opts.Obs.Now().Sub(s.startedAt)
}

// dbKey is the composite key profiles are stored under: program and
// dataset names are validated to exclude '@', so the join is
// unambiguous.
func dbKey(program, dataset string) string { return program + "@" + dataset }

// splitDBKey undoes dbKey.
func splitDBKey(key string) (program, dataset string) {
	if i := strings.IndexByte(key, '@'); i >= 0 {
		return key[:i], key[i+1:]
	}
	return key, ""
}

// writeJSON renders v as the response body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not actionable
}

// writeError renders the uniform error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "status": code})
}

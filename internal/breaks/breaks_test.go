package breaks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"branchprof/internal/ifprob"
	"branchprof/internal/predict"
	"branchprof/internal/vm"
)

func result() *vm.Result {
	return &vm.Result{
		Instrs:          10000,
		SiteTaken:       []uint64{90, 10},
		SiteTotal:       []uint64{100, 100},
		Jumps:           500, // never counted: the compiler eliminates them
		DirectCalls:     40,
		DirectReturns:   40,
		IndirectCalls:   5,
		IndirectReturns: 5,
	}
}

func TestUnpredictedPolicies(t *testing.T) {
	res := result()
	// no calls: 200 branches + 10 indirect events = 210 breaks
	if got := Unpredicted(res, false); got != 10000.0/210 {
		t.Errorf("no-calls = %v, want %v", got, 10000.0/210)
	}
	// with calls: + 80 direct events = 290 breaks
	if got := Unpredicted(res, true); got != 10000.0/290 {
		t.Errorf("with-calls = %v, want %v", got, 10000.0/290)
	}
}

func TestPredictedPolicy(t *testing.T) {
	res := result()
	b := Count(res, 25, Predicted)
	if b.Breaks != 25+10 {
		t.Errorf("breaks = %d, want 35", b.Breaks)
	}
	if b.InstrsPerBreak() != 10000.0/35 {
		t.Errorf("ipb = %v", b.InstrsPerBreak())
	}
}

func TestJumpsNeverCount(t *testing.T) {
	res := result()
	res.Jumps = 1 << 40
	a := Count(res, 0, UnpredictedWithCalls)
	res.Jumps = 0
	b := Count(res, 0, UnpredictedWithCalls)
	if a.Breaks != b.Breaks {
		t.Error("jumps leaked into the break count")
	}
}

func TestZeroBreaksIsInf(t *testing.T) {
	res := &vm.Result{Instrs: 100}
	b := Count(res, 0, Predicted)
	if !math.IsInf(b.InstrsPerBreak(), 1) {
		t.Errorf("ipb with no breaks = %v, want +Inf", b.InstrsPerBreak())
	}
}

func TestWithPrediction(t *testing.T) {
	res := result()
	prof := ifprob.FromRun("p", "d", res)
	// Predict both sites taken: site0 misses 10, site1 misses 90.
	pr := &predict.Prediction{
		Dir:         []predict.Direction{predict.Taken, predict.Taken},
		FromProfile: []bool{true, true},
	}
	ipb, bd, err := WithPrediction(res, prof, pr)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Mispredicts != 100 {
		t.Errorf("mispredicts = %d, want 100", bd.Mispredicts)
	}
	if ipb != 10000.0/110 {
		t.Errorf("ipb = %v, want %v", ipb, 10000.0/110)
	}
	// A mismatched prediction is an error.
	if _, _, err := WithPrediction(res, prof, &predict.Prediction{Dir: make([]predict.Direction, 1)}); err == nil {
		t.Error("mismatched prediction accepted")
	}
}

// TestPredictionNeverWorseThanUnpredicted: under the same policy,
// predicted breaks can never exceed unpredicted ones, because
// mispredicts <= executed branches.
func TestPredictionNeverWorseThanUnpredicted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 1
		res := &vm.Result{
			Instrs:          uint64(rng.Intn(100000) + 1),
			SiteTaken:       make([]uint64, k),
			SiteTotal:       make([]uint64, k),
			IndirectCalls:   uint64(rng.Intn(50)),
			IndirectReturns: uint64(rng.Intn(50)),
		}
		pr := &predict.Prediction{Dir: make([]predict.Direction, k), FromProfile: make([]bool, k)}
		for i := 0; i < k; i++ {
			res.SiteTotal[i] = uint64(rng.Intn(1000))
			if res.SiteTotal[i] > 0 {
				res.SiteTaken[i] = uint64(rng.Intn(int(res.SiteTotal[i]) + 1))
			}
			if rng.Intn(2) == 1 {
				pr.Dir[i] = predict.Taken
			}
		}
		prof := ifprob.FromRun("p", "d", res)
		ipbPred, _, err := WithPrediction(res, prof, pr)
		if err != nil {
			return false
		}
		ipbUnpred := Unpredicted(res, false)
		return ipbPred >= ipbUnpred || math.IsInf(ipbPred, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

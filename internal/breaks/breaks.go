// Package breaks computes the paper's central measure: instructions
// per break in control.
//
// A "break in control" is anything that stops an ILP compiler from
// moving instructions freely. The paper classifies transfers as:
//
//   - unavoidable: indirect calls and their returns (and indirect
//     jumps / assigned GOTOs, which our compiler never generates) —
//     always breaks;
//   - avoidable: direct calls and returns (an inlining compiler can
//     remove them; Figure 1 reports both with and without them),
//     unconditional jumps (assumed eliminated by code layout — never
//     counted), and multi-way branches (lowered to cascaded
//     conditional branches by the compiler, so they appear as
//     ordinary sites);
//   - conditional branches: all of them when no prediction is used
//     (Figure 1), or just the mispredicted ones when a predictor is
//     applied (Figures 2-3, Table 3).
package breaks

import (
	"fmt"
	"math"

	"branchprof/internal/ifprob"
	"branchprof/internal/predict"
	"branchprof/internal/vm"
)

// Policy selects which events count as breaks.
type Policy struct {
	// PredictBranches applies a predictor so only mispredicted
	// conditional branches break; when false every conditional branch
	// is a break.
	PredictBranches bool
	// IncludeDirectCalls adds direct calls and their returns to the
	// breaks (Figure 1's white bars). The paper's predicted results
	// assume inlining, so Figures 2-3 leave these out.
	IncludeDirectCalls bool
}

// Standard policies used by the experiments.
var (
	// UnpredictedNoCalls: Figure 1 black bars.
	UnpredictedNoCalls = Policy{}
	// UnpredictedWithCalls: Figure 1 white bars.
	UnpredictedWithCalls = Policy{IncludeDirectCalls: true}
	// Predicted: Figures 2-3 and Table 3.
	Predicted = Policy{PredictBranches: true}
)

// Breakdown reports the composition of the break count for one run.
type Breakdown struct {
	Instrs          uint64
	CondBranches    uint64 // executed conditional branches
	Mispredicts     uint64 // only meaningful under PredictBranches
	IndirectCalls   uint64
	IndirectReturns uint64
	DirectCalls     uint64
	DirectReturns   uint64
	Breaks          uint64 // total per the policy
}

// InstrsPerBreak returns the headline measure. With zero breaks it
// returns +Inf (a run with no barriers at all).
func (b Breakdown) InstrsPerBreak() float64 {
	if b.Breaks == 0 {
		return math.Inf(1)
	}
	return float64(b.Instrs) / float64(b.Breaks)
}

// Count computes the break composition of a run under a policy.
// mispredicts is consulted only when the policy predicts branches;
// pass 0 otherwise.
func Count(res *vm.Result, mispredicts uint64, pol Policy) Breakdown {
	b := Breakdown{
		Instrs:          res.Instrs,
		CondBranches:    res.CondBranches(),
		Mispredicts:     mispredicts,
		IndirectCalls:   res.IndirectCalls,
		IndirectReturns: res.IndirectReturns,
		DirectCalls:     res.DirectCalls,
		DirectReturns:   res.DirectReturns,
	}
	b.Breaks = b.IndirectCalls + b.IndirectReturns
	if pol.PredictBranches {
		b.Breaks += mispredicts
	} else {
		b.Breaks += b.CondBranches
	}
	if pol.IncludeDirectCalls {
		b.Breaks += b.DirectCalls + b.DirectReturns
	}
	return b
}

// Unpredicted returns instructions per break with every conditional
// branch counted as a break.
func Unpredicted(res *vm.Result, includeCalls bool) float64 {
	pol := UnpredictedNoCalls
	pol.IncludeDirectCalls = includeCalls
	return Count(res, 0, pol).InstrsPerBreak()
}

// WithPrediction evaluates a prediction against the run's own branch
// behaviour and returns instructions per (mispredicted or
// unavoidable) break — the quantity in Figures 2-3 and Table 3.
func WithPrediction(res *vm.Result, target *ifprob.Profile, pr *predict.Prediction) (float64, Breakdown, error) {
	ev, err := predict.Evaluate(pr, target)
	if err != nil {
		return 0, Breakdown{}, fmt.Errorf("breaks: %w", err)
	}
	b := Count(res, ev.Mispredicts, Predicted)
	return b.InstrsPerBreak(), b, nil
}

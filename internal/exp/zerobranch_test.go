package exp

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"branchprof/internal/engine"
	"branchprof/internal/workloads"
)

// A program with no conditional branches is the degenerate corner of
// the paper's central measure: zero breaks makes instructions-per-break
// +Inf by design, and every report path must carry that to the user
// without a NaN or a failed JSON encode. These tests push a synthetic
// zero-branch workload through the real collection machinery.

func zeroBranchWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name: "zerobranch", Lang: workloads.C,
		Desc:   "no conditional branches at all",
		Source: "func main() int { return 7; }\n",
		Datasets: []workloads.Dataset{
			{Name: "-", Desc: "none", Gen: func() []byte { return nil }},
		},
	}
}

func TestZeroBranchProgramEndToEnd(t *testing.T) {
	eng := engine.New(engine.Options{})
	s, err := CollectCtx(context.Background(), eng, CollectOptions{
		Workloads: []*workloads.Workload{zeroBranchWorkload()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Programs) != 1 || len(s.Programs[0].Runs) != 1 {
		t.Fatalf("collected %d programs", len(s.Programs))
	}
	r := s.Programs[0].Runs[0]
	if r.Res.CondBranches() != 0 {
		t.Fatalf("zero-branch program executed %d conditional branches", r.Res.CondBranches())
	}

	rows := Figure1(s, workloads.C)
	if len(rows) != 1 {
		t.Fatalf("Figure1 returned %d rows", len(rows))
	}
	if !math.IsInf(rows[0].NoCalls, 1) {
		t.Errorf("Figure1 NoCalls = %v, want +Inf (no breaks at all)", rows[0].NoCalls)
	}

	heur, err := HeuristicComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(heur) != 1 {
		t.Fatalf("HeuristicComparison returned %d rows", len(heur))
	}
	if !math.IsInf(heur[0].Profile, 1) || !math.IsInf(heur[0].LoopHeur, 1) {
		t.Errorf("zero-branch heuristic row = %+v, want +Inf everywhere", heur[0])
	}
	if f := heur[0].Factor(); math.IsNaN(f) || f != 1 {
		t.Errorf("Factor of a break-free row = %v, want 1", f)
	}

	// Every artifact that touches the suite must survive a JSON render.
	for name, v := range map[string]any{
		"figure1":    rows,
		"heuristics": heur,
		"taken":      TakenConstancy(s),
	} {
		b, err := MarshalSafe(v)
		if err != nil {
			t.Fatalf("%s: MarshalSafe: %v", name, err)
		}
		if !json.Valid(b) {
			t.Fatalf("%s: invalid JSON: %s", name, b)
		}
	}
}

func TestZeroBranchProgramAllowPartial(t *testing.T) {
	bad := &workloads.Workload{
		Name: "broken", Lang: workloads.C,
		Desc:   "does not compile",
		Source: "func main() int { return undefined_var; }\n",
		Datasets: []workloads.Dataset{
			{Name: "-", Desc: "none", Gen: func() []byte { return nil }},
		},
	}
	eng := engine.New(engine.Options{})
	s, err := CollectCtx(context.Background(), eng, CollectOptions{
		AllowPartial: true,
		Workloads:    []*workloads.Workload{zeroBranchWorkload(), bad},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Partial() || len(s.Errors) != 1 {
		t.Fatalf("want a partial suite with 1 failed cell, got %d errors", len(s.Errors))
	}
	if _, err := s.Program("zerobranch"); err != nil {
		t.Fatalf("healthy zero-branch cell missing from degraded suite: %v", err)
	}
	cov := s.CoverageSummary()
	if cov.MeasuredCells != 1 || cov.TotalCells != 2 {
		t.Fatalf("coverage = %+v", cov)
	}

	rows := Figure1(s, workloads.C)
	if len(rows) != 1 || !math.IsInf(rows[0].NoCalls, 1) {
		t.Fatalf("degraded Figure1 rows = %+v", rows)
	}
	b, err := MarshalSafe(map[string]any{
		"coverage": cov,
		"figure1":  rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatalf("degraded report is invalid JSON: %s", b)
	}

	// Strict mode must refuse the same matrix.
	if _, err := CollectCtx(context.Background(), engine.New(engine.Options{}), CollectOptions{
		Workloads: []*workloads.Workload{zeroBranchWorkload(), bad},
	}); err == nil {
		t.Fatal("strict collection of a broken workload succeeded")
	}
}

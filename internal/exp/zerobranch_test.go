package exp

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"branchprof/internal/engine"
	"branchprof/internal/workloads"
)

// A program with no conditional branches is the degenerate corner of
// the paper's central measure: zero breaks makes instructions-per-break
// +Inf by design, and every report path must carry that to the user
// without a NaN or a failed JSON encode. These tests push a synthetic
// zero-branch workload through the real collection machinery.

func zeroBranchWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name: "zerobranch", Lang: workloads.C,
		Desc:   "no conditional branches at all",
		Source: "func main() int { return 7; }\n",
		Datasets: []workloads.Dataset{
			{Name: "-", Desc: "none", Gen: func() []byte { return nil }},
		},
	}
}

func TestZeroBranchProgramEndToEnd(t *testing.T) {
	eng := engine.New(engine.Options{})
	s, err := CollectCtx(context.Background(), eng, CollectOptions{
		Workloads: []*workloads.Workload{zeroBranchWorkload()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Programs) != 1 || len(s.Programs[0].Runs) != 1 {
		t.Fatalf("collected %d programs", len(s.Programs))
	}
	r := s.Programs[0].Runs[0]
	if r.Res.CondBranches() != 0 {
		t.Fatalf("zero-branch program executed %d conditional branches", r.Res.CondBranches())
	}

	rows := Figure1(s, workloads.C)
	if len(rows) != 1 {
		t.Fatalf("Figure1 returned %d rows", len(rows))
	}
	if !math.IsInf(rows[0].NoCalls, 1) {
		t.Errorf("Figure1 NoCalls = %v, want +Inf (no breaks at all)", rows[0].NoCalls)
	}

	heur, err := HeuristicComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(heur) != 1 {
		t.Fatalf("HeuristicComparison returned %d rows", len(heur))
	}
	if !math.IsInf(heur[0].Profile, 1) || !math.IsInf(heur[0].LoopHeur, 1) {
		t.Errorf("zero-branch heuristic row = %+v, want +Inf everywhere", heur[0])
	}
	if f := heur[0].Factor(); math.IsNaN(f) || f != 1 {
		t.Errorf("Factor of a break-free row = %v, want 1", f)
	}

	// The dynamic-predictor extension tables hit the same degenerate
	// corner: zero branches means zero executed events for every scheme,
	// so each rate() must come back 0 (not NaN) and each
	// instrs-per-mispredict must be +Inf.
	dyn, err := StaticVsDynamic(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 1 {
		t.Fatalf("StaticVsDynamic returned %d rows", len(dyn))
	}
	for _, rate := range []float64{dyn[0].SelfRate, dyn[0].OthersRate, dyn[0].OneBitRate,
		dyn[0].TwoBitRate, dyn[0].TwoLevelRate, dyn[0].GShareRate, dyn[0].BiModeRate} {
		if rate != 0 {
			t.Errorf("zero-branch dynamic row has nonzero rate: %+v", dyn[0])
			break
		}
	}

	ipm, err := InstrsPerMispredict(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ipm) != 1 {
		t.Fatalf("InstrsPerMispredict returned %d rows", len(ipm))
	}
	for _, sch := range ipm[0].Schemes {
		if sch.Executed != 0 || sch.Mispredicts != 0 {
			t.Errorf("scheme %s saw events in a zero-branch program: %+v", sch.Scheme, sch)
		}
		if !math.IsInf(sch.IPM, 1) {
			t.Errorf("scheme %s IPM = %v, want +Inf", sch.Scheme, sch.IPM)
		}
	}

	h2p, err := H2PStudy(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2p) != 1 {
		t.Fatalf("H2PStudy returned %d rows", len(h2p))
	}
	if len(h2p[0].Top) != 0 {
		t.Errorf("zero-branch program ranked %d H2P sites", len(h2p[0].Top))
	}

	// Every artifact that touches the suite must survive a JSON render.
	for name, v := range map[string]any{
		"figure1":    rows,
		"heuristics": heur,
		"taken":      TakenConstancy(s),
		"dynamic":    dyn,
		"ipm":        ipm,
		"h2p":        h2p,
	} {
		b, err := MarshalSafe(v)
		if err != nil {
			t.Fatalf("%s: MarshalSafe: %v", name, err)
		}
		if !json.Valid(b) {
			t.Fatalf("%s: invalid JSON: %s", name, b)
		}
	}
}

func TestZeroBranchProgramAllowPartial(t *testing.T) {
	bad := &workloads.Workload{
		Name: "broken", Lang: workloads.C,
		Desc:   "does not compile",
		Source: "func main() int { return undefined_var; }\n",
		Datasets: []workloads.Dataset{
			{Name: "-", Desc: "none", Gen: func() []byte { return nil }},
		},
	}
	eng := engine.New(engine.Options{})
	s, err := CollectCtx(context.Background(), eng, CollectOptions{
		AllowPartial: true,
		Workloads:    []*workloads.Workload{zeroBranchWorkload(), bad},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Partial() || len(s.Errors) != 1 {
		t.Fatalf("want a partial suite with 1 failed cell, got %d errors", len(s.Errors))
	}
	if _, err := s.Program("zerobranch"); err != nil {
		t.Fatalf("healthy zero-branch cell missing from degraded suite: %v", err)
	}
	cov := s.CoverageSummary()
	if cov.MeasuredCells != 1 || cov.TotalCells != 2 {
		t.Fatalf("coverage = %+v", cov)
	}

	rows := Figure1(s, workloads.C)
	if len(rows) != 1 || !math.IsInf(rows[0].NoCalls, 1) {
		t.Fatalf("degraded Figure1 rows = %+v", rows)
	}
	b, err := MarshalSafe(map[string]any{
		"coverage": cov,
		"figure1":  rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatalf("degraded report is invalid JSON: %s", b)
	}

	// Strict mode must refuse the same matrix.
	if _, err := CollectCtx(context.Background(), engine.New(engine.Options{}), CollectOptions{
		Workloads: []*workloads.Workload{zeroBranchWorkload(), bad},
	}); err == nil {
		t.Fatal("strict collection of a broken workload succeeded")
	}
}

// Package exp runs the paper's experiments: it executes the full
// program × dataset matrix once (through the shared engine, which
// caches and bounds the work), then derives every table and figure
// from the recorded profiles and instruction counts.
package exp

import (
	"fmt"
	"sync"

	"branchprof/internal/engine"
	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// Run is one completed (program, dataset) execution with its profile.
type Run struct {
	Workload string
	Dataset  string
	Res      *vm.Result
	Prof     *ifprob.Profile
}

// ProgramRuns groups a compiled workload with all its dataset runs.
type ProgramRuns struct {
	Workload *workloads.Workload
	Prog     *isa.Program
	Runs     []*Run
}

// OtherProfiles returns the profiles of every dataset except index i —
// the paper's "sum of all the other datasets" predictor inputs.
func (p *ProgramRuns) OtherProfiles(i int) []*ifprob.Profile {
	out := make([]*ifprob.Profile, 0, len(p.Runs)-1)
	for j, r := range p.Runs {
		if j != i {
			out = append(out, r.Prof)
		}
	}
	return out
}

// Suite is the complete measured matrix.
type Suite struct {
	Programs []*ProgramRuns // in report order
	byName   map[string]*ProgramRuns
}

// Program returns the measured runs of one workload.
func (s *Suite) Program(name string) (*ProgramRuns, error) {
	if p, ok := s.byName[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("exp: no measured program %q", name)
}

var (
	engMu     sync.Mutex
	pkgEngine *engine.Engine
)

// SetEngine routes this package's collections and replays through
// eng — how cmd/experiments plugs in a persistent cache directory.
// Call it before the first Shared/Collect.
func SetEngine(eng *engine.Engine) {
	engMu.Lock()
	pkgEngine = eng
	engMu.Unlock()
}

// Engine returns the engine this package measures with (the process
// default unless SetEngine installed another).
func Engine() *engine.Engine {
	engMu.Lock()
	defer engMu.Unlock()
	if pkgEngine == nil {
		pkgEngine = engine.Default()
	}
	return pkgEngine
}

// Collect measures the full matrix through the package engine: every
// workload compiled with dead-branch elimination off (the paper's
// measurement configuration), every dataset run.
func Collect() (*Suite, error) {
	return CollectWith(Engine())
}

// CollectWith measures the full matrix through eng. (Workload,
// dataset) units are independent and deterministic, so they execute
// on the engine's bounded worker pool; results land in preassigned
// slots, so the assembled suite is identical to a sequential
// collection no matter the schedule or cache state.
func CollectWith(eng *engine.Engine) (*Suite, error) {
	all := workloads.All()
	s := &Suite{
		Programs: make([]*ProgramRuns, len(all)),
		byName:   make(map[string]*ProgramRuns),
	}
	type job struct{ wi, di int }
	var jobs []job
	for wi, w := range all {
		s.Programs[wi] = &ProgramRuns{Workload: w, Runs: make([]*Run, len(w.Datasets))}
		for di := range w.Datasets {
			jobs = append(jobs, job{wi, di})
		}
	}
	err := eng.Parallel(len(jobs), func(j int) error {
		wi, di := jobs[j].wi, jobs[j].di
		w := all[wi]
		ds := w.Datasets[di]
		out, err := eng.Execute(engine.Spec{
			Name:    w.Name,
			Source:  w.Source,
			Dataset: ds.Name,
			Input:   ds.Gen(),
		})
		if err != nil {
			return fmt.Errorf("exp: measuring %s/%s: %w", w.Name, ds.Name, err)
		}
		pr := s.Programs[wi]
		if di == 0 {
			// The compiled image is memoized per workload, so any
			// dataset's outcome carries the same program; dataset 0
			// publishes it exactly once.
			pr.Prog = out.Prog
		}
		pr.Runs[di] = &Run{Workload: w.Name, Dataset: ds.Name, Res: out.Res, Prof: out.Prof}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pr := range s.Programs {
		s.byName[pr.Workload.Name] = pr
	}
	return s, nil
}

var (
	sharedOnce  sync.Once
	sharedSuite *Suite
	sharedErr   error
)

// Shared returns a process-wide cached suite; the heavy matrix runs
// only once per process no matter how many experiments ask for it.
func Shared() (*Suite, error) {
	sharedOnce.Do(func() {
		sharedSuite, sharedErr = Collect()
	})
	return sharedSuite, sharedErr
}

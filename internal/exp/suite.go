// Package exp runs the paper's experiments: it executes the full
// program × dataset matrix once (through the shared engine, which
// caches and bounds the work), then derives every table and figure
// from the recorded profiles and instruction counts.
package exp

import (
	"context"
	"fmt"
	"sync"

	"branchprof/internal/engine"
	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
	"branchprof/internal/obs"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// Run is one completed (program, dataset) execution with its profile.
type Run struct {
	Workload string
	Dataset  string
	Res      *vm.Result
	Prof     *ifprob.Profile
}

// ProgramRuns groups a compiled workload with all its dataset runs.
type ProgramRuns struct {
	Workload *workloads.Workload
	Prog     *isa.Program
	Runs     []*Run
}

// OtherProfiles returns the profiles of every dataset except index i —
// the paper's "sum of all the other datasets" predictor inputs.
func (p *ProgramRuns) OtherProfiles(i int) []*ifprob.Profile {
	out := make([]*ifprob.Profile, 0, len(p.Runs)-1)
	for j, r := range p.Runs {
		if j != i {
			out = append(out, r.Prof)
		}
	}
	return out
}

// Multi reports whether cross-dataset experiments apply to this
// program: the workload registers several datasets AND more than one
// was actually measured — on a degraded suite a multi-dataset workload
// can come back with a single surviving run, which has no "others".
func (p *ProgramRuns) Multi() bool {
	return p.Workload.MultiDataset() && len(p.Runs) > 1
}

// InputFor regenerates the input bytes of the dataset r was measured
// on. Replay experiments must pair a run with its own dataset's bytes;
// indexing Workload.Datasets positionally is wrong on a degraded suite,
// where Runs is compacted and no longer aligned with the registration.
func (p *ProgramRuns) InputFor(r *Run) []byte {
	for _, ds := range p.Workload.Datasets {
		if ds.Name == r.Dataset {
			return ds.Gen()
		}
	}
	return nil
}

// CellError records one (workload, dataset) cell of the matrix that
// could not be measured, and why.
type CellError struct {
	Workload string
	Dataset  string
	Err      error
}

// Error describes the failed cell.
func (e *CellError) Error() string {
	return fmt.Sprintf("%s/%s: %v", e.Workload, e.Dataset, e.Err)
}

// Unwrap exposes the cause.
func (e *CellError) Unwrap() error { return e.Err }

// CoverageSummary quantifies how much of the full program × dataset
// matrix a suite actually holds.
type CoverageSummary struct {
	TotalCells    int // cells in the full matrix
	MeasuredCells int // cells successfully measured
	TotalPrograms int // workloads registered
	FullPrograms  int // workloads with every dataset measured
}

// Complete reports a fully-measured matrix.
func (c CoverageSummary) Complete() bool { return c.MeasuredCells == c.TotalCells }

// String renders the one-line coverage annotation reports carry.
func (c CoverageSummary) String() string {
	if c.Complete() {
		return fmt.Sprintf("coverage: complete (%d/%d cells)", c.MeasuredCells, c.TotalCells)
	}
	return fmt.Sprintf("coverage: PARTIAL %d/%d cells (%d/%d programs complete)",
		c.MeasuredCells, c.TotalCells, c.FullPrograms, c.TotalPrograms)
}

// Suite is the measured matrix — complete after a strict collection,
// possibly partial after a degraded-mode one (see CollectCtx). On a
// partial suite, Programs holds only workloads with at least one
// measured run, each ProgramRuns.Runs is compacted to its surviving
// cells, and Errors records every cell that failed.
type Suite struct {
	Programs []*ProgramRuns // in report order
	// Errors lists the failed matrix cells, in matrix order; empty on a
	// complete suite.
	Errors   []*CellError
	byName   map[string]*ProgramRuns
	cells    int      // size of the full matrix at collection time
	programs int      // workloads registered at collection time
	obs      *obs.Obs // collection engine's observability; may be nil
}

// span opens a root-level span for a derived artifact (the "predict"
// stage of the pipeline); nil — free — when tracing is off. Callers
// use `defer s.span("predict.x").End()`.
func (s *Suite) span(name string) *obs.Span {
	if s == nil || !s.obs.Tracing() {
		return nil
	}
	return s.obs.Tracer().Start(nil, name)
}

// Partial reports whether any cell of the matrix is missing.
func (s *Suite) Partial() bool { return len(s.Errors) > 0 }

// CoverageSummary summarizes how much of the matrix was measured.
func (s *Suite) CoverageSummary() CoverageSummary {
	c := CoverageSummary{TotalCells: s.cells, TotalPrograms: s.programs}
	for _, p := range s.Programs {
		c.MeasuredCells += len(p.Runs)
		if len(p.Runs) == len(p.Workload.Datasets) {
			c.FullPrograms++
		}
	}
	return c
}

// Program returns the measured runs of one workload.
func (s *Suite) Program(name string) (*ProgramRuns, error) {
	if p, ok := s.byName[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("exp: no measured program %q", name)
}

// program resolves name for experiment code that should degrade
// gracefully: a program missing from a partial suite is skipped
// ((nil, nil) — the caller drops that part of the report), while a
// missing program on a complete suite is a hard error, since it means
// the experiment asked for something that was never registered.
func (s *Suite) program(name string) (*ProgramRuns, error) {
	if p, ok := s.byName[name]; ok {
		return p, nil
	}
	if s.Partial() {
		return nil, nil
	}
	return nil, fmt.Errorf("exp: no measured program %q", name)
}

var (
	engMu     sync.Mutex
	pkgEngine *engine.Engine
)

// SetEngine routes this package's collections and replays through
// eng — how cmd/experiments plugs in a persistent cache directory.
// Call it before the first Shared/Collect.
func SetEngine(eng *engine.Engine) {
	engMu.Lock()
	pkgEngine = eng
	engMu.Unlock()
}

// Engine returns the engine this package measures with (the process
// default unless SetEngine installed another).
func Engine() *engine.Engine {
	engMu.Lock()
	defer engMu.Unlock()
	if pkgEngine == nil {
		pkgEngine = engine.Default()
	}
	return pkgEngine
}

// Collect measures the full matrix through the package engine: every
// workload compiled with dead-branch elimination off (the paper's
// measurement configuration), every dataset run.
func Collect() (*Suite, error) {
	return CollectWith(Engine())
}

// CollectWith measures the full matrix through eng, strictly: the
// first failing cell aborts the collection. See CollectCtx for the
// degraded mode that keeps the healthy cells instead.
func CollectWith(eng *engine.Engine) (*Suite, error) {
	return CollectCtx(context.Background(), eng, CollectOptions{})
}

// CollectOptions configures a collection.
type CollectOptions struct {
	// AllowPartial keeps collecting past failed cells: the suite comes
	// back with the healthy cells measured, per-cell Errors for the
	// rest, and a coverage summary. A suite with zero measured cells is
	// still an error, as is a cancelled collection.
	AllowPartial bool
	// Workloads overrides the measured matrix; nil means the full
	// registry (workloads.All()). Tests use it to collect synthetic
	// matrices — e.g. a zero-branch program — through the real
	// degraded-mode machinery.
	Workloads []*workloads.Workload
}

// CollectCtx measures the full matrix through eng under ctx.
// (Workload, dataset) units are independent and deterministic, so they
// execute on the engine's bounded worker pool; results land in
// preassigned slots, so the assembled suite is identical to a
// sequential collection no matter the schedule or cache state.
//
// Without AllowPartial the first error (in matrix order) aborts the
// collection. With it, failed cells are recorded and skipped: the
// suite's Programs keep only measured runs, workloads with no
// surviving run disappear, and CoverageSummary reports what remains.
func CollectCtx(ctx context.Context, eng *engine.Engine, opts CollectOptions) (*Suite, error) {
	all := opts.Workloads
	if all == nil {
		all = workloads.All()
	}
	s := &Suite{
		Programs: make([]*ProgramRuns, len(all)),
		byName:   make(map[string]*ProgramRuns),
		programs: len(all),
		obs:      eng.Obs(),
	}
	type job struct{ wi, di int }
	var jobs []job
	for wi, w := range all {
		s.Programs[wi] = &ProgramRuns{Workload: w, Runs: make([]*Run, len(w.Datasets))}
		for di := range w.Datasets {
			jobs = append(jobs, job{wi, di})
		}
	}
	s.cells = len(jobs)
	ctx, csp := s.obs.Start(ctx, "collect", obs.A("cells", len(jobs)))
	defer csp.End()
	reg := eng.Registry()
	cellsOK := reg.Counter(`branchprof_exp_cells_total{result="measured"}`, "Matrix cells by collection outcome.")
	cellsBad := reg.Counter(`branchprof_exp_cells_total{result="degraded"}`, "Matrix cells by collection outcome.")
	// Each cell publishes its own compiled image; the per-workload
	// Prog is picked after the barrier, so a failed first dataset does
	// not lose the program the other datasets compiled (and no two
	// goroutines race on the shared ProgramRuns).
	progs := make([]*isa.Program, len(jobs))
	errs, err := eng.ParallelErrors(ctx, len(jobs), func(j int) error {
		wi, di := jobs[j].wi, jobs[j].di
		w := all[wi]
		ds := w.Datasets[di]
		cctx, sp := s.obs.Start(ctx, "cell", obs.A("program", w.Name), obs.A("dataset", ds.Name))
		out, err := eng.ExecuteContext(cctx, engine.Spec{
			Name:    w.Name,
			Source:  w.Source,
			Dataset: ds.Name,
			Input:   ds.Gen(),
		})
		if err != nil {
			cellsBad.Inc()
			err = fmt.Errorf("exp: measuring %s/%s: %w", w.Name, ds.Name, err)
			sp.SetError(err)
			sp.End()
			return err
		}
		cellsOK.Inc()
		sp.SetAttr("cache_hit", out.CacheHit)
		sp.End()
		progs[j] = out.Prog
		s.Programs[wi].Runs[di] = &Run{Workload: w.Name, Dataset: ds.Name, Res: out.Res, Prof: out.Prof}
		return nil
	})
	for j, p := range progs {
		if pr := s.Programs[jobs[j].wi]; p != nil && pr.Prog == nil {
			pr.Prog = p
		}
	}
	if err != nil && !opts.AllowPartial {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		// Cancellation is never degraded to a partial suite: the caller
		// asked the whole collection to stop.
		return nil, cerr
	}
	for j, jerr := range errs {
		if jerr != nil {
			w := all[jobs[j].wi]
			s.Errors = append(s.Errors, &CellError{
				Workload: w.Name, Dataset: w.Datasets[jobs[j].di].Name, Err: jerr,
			})
		}
	}
	// Compact: drop failed cells and workloads with nothing measured.
	kept := s.Programs[:0]
	for _, pr := range s.Programs {
		runs := pr.Runs[:0]
		for _, r := range pr.Runs {
			if r != nil {
				runs = append(runs, r)
			}
		}
		pr.Runs = runs
		if len(runs) == 0 || pr.Prog == nil {
			continue
		}
		kept = append(kept, pr)
		s.byName[pr.Workload.Name] = pr
	}
	s.Programs = kept
	if len(s.Programs) == 0 {
		// A fully-failed collection has nothing to degrade to.
		if err != nil {
			return nil, fmt.Errorf("exp: collection failed completely: %w", err)
		}
		return nil, fmt.Errorf("exp: collection measured nothing")
	}
	csp.SetAttr("measured", s.cells-len(s.Errors))
	csp.SetAttr("degraded", len(s.Errors))
	return s, nil
}

var (
	sharedOnce  sync.Once
	sharedSuite *Suite
	sharedErr   error
)

// Shared returns a process-wide cached suite; the heavy matrix runs
// only once per process no matter how many experiments ask for it.
func Shared() (*Suite, error) {
	sharedOnce.Do(func() {
		sharedSuite, sharedErr = Collect()
	})
	return sharedSuite, sharedErr
}

// Package exp runs the paper's experiments: it executes the full
// program × dataset matrix once (cached), then derives every table
// and figure from the recorded profiles and instruction counts.
package exp

import (
	"fmt"
	"sync"

	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// Run is one completed (program, dataset) execution with its profile.
type Run struct {
	Workload string
	Dataset  string
	Res      *vm.Result
	Prof     *ifprob.Profile
}

// ProgramRuns groups a compiled workload with all its dataset runs.
type ProgramRuns struct {
	Workload *workloads.Workload
	Prog     *isa.Program
	Runs     []*Run
}

// OtherProfiles returns the profiles of every dataset except index i —
// the paper's "sum of all the other datasets" predictor inputs.
func (p *ProgramRuns) OtherProfiles(i int) []*ifprob.Profile {
	out := make([]*ifprob.Profile, 0, len(p.Runs)-1)
	for j, r := range p.Runs {
		if j != i {
			out = append(out, r.Prof)
		}
	}
	return out
}

// Suite is the complete measured matrix.
type Suite struct {
	Programs []*ProgramRuns // in report order
	byName   map[string]*ProgramRuns
}

// Program returns the measured runs of one workload.
func (s *Suite) Program(name string) (*ProgramRuns, error) {
	if p, ok := s.byName[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("exp: no measured program %q", name)
}

// Collect compiles every workload (dead-branch elimination off, the
// paper's measurement configuration) and runs every dataset. Runs are
// independent and deterministic, so they execute in parallel; the
// assembled suite is identical to a sequential collection.
func Collect() (*Suite, error) {
	all := workloads.All()
	s := &Suite{
		Programs: make([]*ProgramRuns, len(all)),
		byName:   make(map[string]*ProgramRuns),
	}
	var wg sync.WaitGroup
	// One error slot per (workload, dataset) goroutine: no slot is
	// shared, so failure reporting is race-free.
	var errs [][]error = make([][]error, len(all))
	for wi, w := range all {
		wi, w := wi, w
		prog, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
		if err != nil {
			return nil, fmt.Errorf("exp: compiling %s: %w", w.Name, err)
		}
		pr := &ProgramRuns{Workload: w, Prog: prog, Runs: make([]*Run, len(w.Datasets))}
		s.Programs[wi] = pr
		errs[wi] = make([]error, len(w.Datasets))
		for di, ds := range w.Datasets {
			di, ds := di, ds
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := vm.Run(prog, ds.Gen(), nil)
				if err != nil {
					errs[wi][di] = fmt.Errorf("exp: running %s/%s: %w", w.Name, ds.Name, err)
					return
				}
				pr.Runs[di] = &Run{
					Workload: w.Name,
					Dataset:  ds.Name,
					Res:      res,
					Prof:     ifprob.FromRun(w.Name, ds.Name, res),
				}
			}()
		}
	}
	wg.Wait()
	for _, we := range errs {
		for _, err := range we {
			if err != nil {
				return nil, err
			}
		}
	}
	for _, pr := range s.Programs {
		s.byName[pr.Workload.Name] = pr
	}
	return s, nil
}

var (
	sharedOnce  sync.Once
	sharedSuite *Suite
	sharedErr   error
)

// Shared returns a process-wide cached suite; the heavy matrix runs
// only once per process no matter how many experiments ask for it.
func Shared() (*Suite, error) {
	sharedOnce.Do(func() {
		sharedSuite, sharedErr = Collect()
	})
	return sharedSuite, sharedErr
}

package exp

import (
	"fmt"
	"math"
	"strings"

	"branchprof/internal/dynpred"
	"branchprof/internal/predict"
	"branchprof/internal/runlength"
	"branchprof/internal/vm"
)

// Extension experiments: not tables or figures from the paper itself,
// but quantifications of two claims its argument leans on — that
// static profile-fed prediction is competitive with the 1/2-bit
// hardware schemes (§1, "Static vs. Dynamic Branch Prediction"), and
// that run lengths between breaks are unevenly distributed (§3, "The
// distribution of runs of instructions between mispredicted branches
// will not be constant").

// DynRow compares mispredict rates of static and dynamic schemes on
// one run. Rates are mispredicts per executed conditional branch.
type DynRow struct {
	Program      string
	Dataset      string
	SelfRate     float64 // static, profile of the run itself (best static)
	OthersRate   float64 // static, scaled sum of the other datasets
	OneBitRate   float64
	TwoBitRate   float64
	TwoLevelRate float64 // two-level adaptive (Lee & Smith)
	GShareRate   float64
	BiModeRate   float64
}

// toDirs converts a prediction to the direction table a Static
// predictor consumes.
func toDirs(pr *predict.Prediction) []bool {
	dirs := make([]bool, len(pr.Dir))
	for i, d := range pr.Dir {
		dirs[i] = d == predict.Taken
	}
	return dirs
}

// tracedPredictors builds the full predictor set for one measured run
// — self and sum-of-others static tables plus the dynamic zoo — and
// replays the run once with everything attached to the identical
// branch stream. Returns the predictors in order (self, others,
// 1-bit, 2-bit, two-level, gshare, bimode) plus the replay's result.
// extra tracers (e.g. a runlength recorder) observe the same stream.
func tracedPredictors(p *ProgramRuns, r *Run, extra ...vm.Tracer) ([]dynpred.Predictor, *vm.Result, error) {
	self, err := selfPrediction(p, r)
	if err != nil {
		return nil, nil, err
	}
	others := self
	if p.Multi() {
		others, err = predict.Combine(p.OtherProfiles(0), predict.Scaled, p.Prog.Sites, predict.LoopHeuristic)
		if err != nil {
			return nil, nil, err
		}
	}
	preds := []dynpred.Predictor{
		dynpred.NewStatic("self", toDirs(self)),
		dynpred.NewStatic("others", toDirs(others)),
	}
	preds = append(preds, dynpred.Zoo(len(p.Prog.Sites))...)
	multi := &dynpred.Multi{Predictors: preds, Extra: extra}
	// Traced replays observe the execution, so the engine runs them
	// fresh (never from cache) while still counting them in stats.
	res, err := Engine().Run(p.Prog, "", p.InputFor(r), &vm.Config{Trace: multi})
	if err != nil {
		return nil, nil, fmt.Errorf("exp: dynamic replay of %s: %w", p.Workload.Name, err)
	}
	if err := multi.Err(); err != nil {
		return nil, nil, fmt.Errorf("exp: dynamic replay of %s: %w", p.Workload.Name, err)
	}
	return preds, res, nil
}

// missRate is mispredicts per executed conditional branch, 0 for a
// branch-free run (never NaN: zero-branch programs flow through every
// report writer).
func missRate(pr dynpred.Predictor) float64 {
	if pr.Executed() == 0 {
		return 0
	}
	return float64(pr.Mispredicts()) / float64(pr.Executed())
}

// StaticVsDynamic replays each program's first dataset through the
// VM with every predictor attached, measuring them on an identical
// branch stream. Programs with several datasets also get the
// sum-of-others static predictor; single-dataset programs reuse self.
// Programs replay concurrently; each writes only its own row slot, so
// the table order (and the first error reported) is identical to a
// serial pass.
func StaticVsDynamic(s *Suite) ([]DynRow, error) {
	rows := make([]DynRow, len(s.Programs))
	err := Engine().Parallel(len(s.Programs), func(i int) error {
		p := s.Programs[i]
		r := p.Runs[0]
		preds, _, err := tracedPredictors(p, r)
		if err != nil {
			return err
		}
		rows[i] = DynRow{
			Program: p.Workload.Name, Dataset: r.Dataset,
			SelfRate:     missRate(preds[0]),
			OthersRate:   missRate(preds[1]),
			OneBitRate:   missRate(preds[2]),
			TwoBitRate:   missRate(preds[3]),
			TwoLevelRate: missRate(preds[4]),
			GShareRate:   missRate(preds[5]),
			BiModeRate:   missRate(preds[6]),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderStaticVsDynamic formats the comparison.
func RenderStaticVsDynamic(rows []DynRow) string {
	var b strings.Builder
	b.WriteString("Extension: static (profile) vs dynamic mispredict rates\n")
	fmt.Fprintf(&b, "%-12s %-12s %8s %8s %8s %8s %8s %8s %8s\n",
		"PROGRAM", "DATASET", "SELF", "OTHERS", "1-BIT", "2-BIT", "2-LEVEL", "GSHARE", "BIMODE")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			r.Program, r.Dataset, 100*r.SelfRate, 100*r.OthersRate, 100*r.OneBitRate,
			100*r.TwoBitRate, 100*r.TwoLevelRate, 100*r.GShareRate, 100*r.BiModeRate)
	}
	return b.String()
}

// SchemeIPM is one scheme's cost on one run, in the paper's headline
// unit: how many instructions execute per mispredicted branch.
type SchemeIPM struct {
	Scheme      string  `json:"scheme"`
	Executed    uint64  `json:"executed"`
	Mispredicts uint64  `json:"mispredicts"`
	Rate        float64 `json:"rate"` // mispredicts per executed branch
	// IPM is instructions per mispredict; +Inf when nothing
	// mispredicted (a break-free run), matching breaks.InstrsPerBreak's
	// sentinel convention.
	IPM float64 `json:"instrs_per_mispredict"`
}

// SchemeIPMRow compares every scheme on one workload's run.
type SchemeIPMRow struct {
	Program string      `json:"program"`
	Dataset string      `json:"dataset"`
	Instrs  uint64      `json:"instrs"`
	Schemes []SchemeIPM `json:"schemes"`
}

// schemeIPM books one predictor's cost over a run of instrs.
func schemeIPM(pr dynpred.Predictor, instrs uint64) SchemeIPM {
	ipm := math.Inf(1)
	if pr.Mispredicts() > 0 {
		ipm = float64(instrs) / float64(pr.Mispredicts())
	}
	return SchemeIPM{
		Scheme:      pr.Name(),
		Executed:    pr.Executed(),
		Mispredicts: pr.Mispredicts(),
		Rate:        missRate(pr),
		IPM:         ipm,
	}
}

// InstrsPerMispredict is the predictor-zoo lane: each program's first
// dataset replayed once with the static profile predictors and every
// dynamic scheme attached, reported in instructions-per-mispredict so
// profile-fed static prediction and the hardware schemes — including
// the history-based ones the paper predates — line up on the paper's
// own axis.
// Programs replay concurrently with one preassigned row slot each, so
// output ordering matches the serial pass bit for bit.
func InstrsPerMispredict(s *Suite) ([]SchemeIPMRow, error) {
	rows := make([]SchemeIPMRow, len(s.Programs))
	err := Engine().Parallel(len(s.Programs), func(i int) error {
		p := s.Programs[i]
		r := p.Runs[0]
		preds, res, err := tracedPredictors(p, r)
		if err != nil {
			return err
		}
		row := SchemeIPMRow{Program: p.Workload.Name, Dataset: r.Dataset, Instrs: res.Instrs}
		for _, pr := range preds {
			row.Schemes = append(row.Schemes, schemeIPM(pr, res.Instrs))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderInstrsPerMispredict formats the zoo comparison.
func RenderInstrsPerMispredict(rows []SchemeIPMRow) string {
	var b strings.Builder
	b.WriteString("Extension: instructions per mispredict, static profile vs predictor zoo\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %-12s", "PROGRAM", "DATASET")
	for _, s := range rows[0].Schemes {
		fmt.Fprintf(&b, " %9s", strings.ToUpper(s.Scheme))
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s", r.Program, r.Dataset)
		for _, s := range r.Schemes {
			if math.IsInf(s.IPM, 1) {
				fmt.Fprintf(&b, " %9s", "∞")
			} else {
				fmt.Fprintf(&b, " %9.0f", s.IPM)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// H2PSite is one hard-to-predict branch in a program's ranking, with
// its source identity, outcome characterization and per-scheme cost.
type H2PSite struct {
	Site      int                    `json:"site"`
	Func      string                 `json:"func"`
	Line      int                    `json:"line"`
	Label     string                 `json:"label"`
	Executed  uint64                 `json:"executed"`
	TakenRate float64                `json:"taken_rate"`
	Entropy   float64                `json:"entropy"`
	MeanRun   float64                `json:"mean_run"`
	MaxRun    uint64                 `json:"max_run"`
	MPKI      []runlength.SchemeMPKI `json:"mpki"`
	// Score is the minimum MPKI across schemes: high means every
	// scheme, static and dynamic, pays for this branch.
	Score float64 `json:"score"`
}

// H2PRow is one program's top-N hard-to-predict branches.
type H2PRow struct {
	Program string    `json:"program"`
	Dataset string    `json:"dataset"`
	Instrs  uint64    `json:"instrs"`
	Top     []H2PSite `json:"top"`
}

// H2PStudy ranks each program's static branches by how expensive they
// stay across every scheme (mispredicts per kilo-instruction, scored
// by the best scheme's cost), following Lin & Tarsa's H2P framing:
// the interesting branches are the ones history does not fix.
func H2PStudy(s *Suite, n int) ([]H2PRow, error) {
	rows := make([]H2PRow, len(s.Programs))
	perr := Engine().Parallel(len(s.Programs), func(i int) error {
		p := s.Programs[i]
		r := p.Runs[0]
		rec := runlength.NewSites(len(p.Prog.Sites))
		preds, res, err := tracedPredictors(p, r, rec)
		if err != nil {
			return err
		}
		schemes := make([]runlength.SchemeMisses, len(preds))
		for i, pr := range preds {
			schemes[i] = runlength.SchemeMisses{Scheme: pr.Name(), Misses: pr.SiteMispredicts()}
		}
		entries := runlength.RankH2P(rec.Stats(), res.Instrs, schemes, n)
		row := H2PRow{Program: p.Workload.Name, Dataset: r.Dataset, Instrs: res.Instrs}
		for _, e := range entries {
			site := p.Prog.Sites[e.Stats.Site]
			row.Top = append(row.Top, H2PSite{
				Site:      e.Stats.Site,
				Func:      site.Func,
				Line:      site.Line,
				Label:     site.Label,
				Executed:  e.Stats.Executed,
				TakenRate: e.Stats.TakenRate,
				Entropy:   e.Stats.Entropy,
				MeanRun:   e.Stats.MeanRun,
				MaxRun:    e.Stats.MaxRun,
				MPKI:      e.MPKI,
				Score:     e.Score,
			})
		}
		rows[i] = row
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	return rows, nil
}

// RenderH2P formats the per-program rankings.
func RenderH2P(rows []H2PRow) string {
	var b strings.Builder
	b.WriteString("Extension: hard-to-predict branches (score = min MPKI across schemes)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s/%s (%d instrs)\n", r.Program, r.Dataset, r.Instrs)
		if len(r.Top) == 0 {
			b.WriteString("  (no executed branches)\n")
			continue
		}
		fmt.Fprintf(&b, "  %4s %-14s %-10s %9s %6s %7s %8s %7s  %s\n",
			"SITE", "FUNC", "LABEL", "EXECUTED", "TAKEN", "ENTROPY", "MEANRUN", "SCORE", "MPKI BY SCHEME")
		for _, t := range r.Top {
			var mp strings.Builder
			for i, m := range t.MPKI {
				if i > 0 {
					mp.WriteString(" ")
				}
				fmt.Fprintf(&mp, "%s=%.2f", m.Scheme, m.MPKI)
			}
			fmt.Fprintf(&b, "  %4d %-14s %-10s %9d %5.0f%% %7.2f %8.1f %7.2f  %s\n",
				t.Site, t.Func, t.Label, t.Executed, 100*t.TakenRate, t.Entropy, t.MeanRun, t.Score, mp.String())
		}
	}
	return b.String()
}

// RunLengthRow summarizes the break-to-break run-length distribution
// of one run under self prediction.
type RunLengthRow struct {
	Program string
	Dataset string
	Stats   runlength.Stats
	Hist    string
}

// RunLengths replays each program's first dataset with a run-length
// recorder under the self prediction. Replays run concurrently; row
// slots are preassigned so the summary order matches a serial pass.
func RunLengths(s *Suite) ([]RunLengthRow, error) {
	rows := make([]RunLengthRow, len(s.Programs))
	perr := Engine().Parallel(len(s.Programs), func(i int) error {
		p := s.Programs[i]
		r := p.Runs[0]
		self, err := selfPrediction(p, r)
		if err != nil {
			return err
		}
		rec := runlength.New(self)
		res, err := Engine().Run(p.Prog, "", p.InputFor(r), &vm.Config{Trace: rec})
		if err != nil {
			return fmt.Errorf("exp: run-length replay of %s: %w", p.Workload.Name, err)
		}
		// Close the distribution with the tail run (last break →
		// program exit); without it that stretch silently vanishes.
		rec.Finish(res.Instrs)
		rows[i] = RunLengthRow{
			Program: p.Workload.Name,
			Dataset: r.Dataset,
			Stats:   rec.Summarize(),
			Hist:    rec.Histogram(16),
		}
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	return rows, nil
}

// RenderRunLengths formats the distribution summary.
func RenderRunLengths(rows []RunLengthRow) string {
	var b strings.Builder
	b.WriteString("Extension: run lengths between breaks (self prediction)\n")
	fmt.Fprintf(&b, "%-12s %-12s %8s %8s %8s %8s %8s %6s\n",
		"PROGRAM", "DATASET", "BREAKS", "MEAN", "MEDIAN", "P90", "P99", "CV")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %8d %8.1f %8.0f %8.0f %8.0f %6.2f\n",
			r.Program, r.Dataset, r.Stats.Count, r.Stats.Mean, r.Stats.Median,
			r.Stats.P90, r.Stats.P99, r.Stats.CV)
	}
	return b.String()
}

// CoverageRow quantifies the paper's "Coverage" conjecture for one
// (predictor dataset, target dataset) pair: the fraction of the
// target's dynamic branches whose site the predictor saw, against the
// prediction quality obtained.
type CoverageRow struct {
	Program   string
	Predictor string
	Target    string
	// Coverage is the fraction of the target's executed branches at
	// sites the predictor dataset also executed.
	Coverage float64
	// PctOfSelf is the predictor's instrs/break as a fraction of the
	// target's self-prediction instrs/break.
	PctOfSelf float64
}

// Coverage computes every cross-dataset pair for multi-dataset
// programs. The paper tried to correlate such measures with predictor
// quality and reported failure ("nothing we tried seemed to correlate
// well"); CoverageCorrelation quantifies that.
// Programs are scored concurrently; each cell appends only to its own
// per-program slice and the slices are flattened in program order, so
// the pair ordering is byte-identical to a serial sweep.
func Coverage(s *Suite) ([]CoverageRow, error) {
	perProg := make([][]CoverageRow, len(s.Programs))
	perr := Engine().Parallel(len(s.Programs), func(pi int) error {
		p := s.Programs[pi]
		if !p.Multi() {
			return nil
		}
		for i, target := range p.Runs {
			self, err := selfPrediction(p, target)
			if err != nil {
				return err
			}
			selfIPB, err := ipb(target, self)
			if err != nil {
				return err
			}
			for j, pred := range p.Runs {
				if i == j {
					continue
				}
				pr, err := predict.FromProfile(pred.Prof, p.Prog.Sites, predict.LoopHeuristic)
				if err != nil {
					return err
				}
				v, err := ipb(target, pr)
				if err != nil {
					return err
				}
				var covered, executed uint64
				for site, n := range target.Prof.Total {
					executed += n
					if pred.Prof.Total[site] > 0 {
						covered += n
					}
				}
				cov := 0.0
				if executed > 0 {
					cov = float64(covered) / float64(executed)
				}
				perProg[pi] = append(perProg[pi], CoverageRow{
					Program:   p.Workload.Name,
					Predictor: pred.Dataset,
					Target:    target.Dataset,
					Coverage:  cov,
					PctOfSelf: pctOf(v, selfIPB),
				})
			}
		}
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	var rows []CoverageRow
	for _, pr := range perProg {
		rows = append(rows, pr...)
	}
	return rows, nil
}

// CoverageCorrelation returns the Pearson correlation between
// coverage and prediction quality across all pairs.
func CoverageCorrelation(rows []CoverageRow) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, r := range rows {
		sx += r.Coverage
		sy += r.PctOfSelf
		sxx += r.Coverage * r.Coverage
		syy += r.PctOfSelf * r.PctOfSelf
		sxy += r.Coverage * r.PctOfSelf
	}
	num := n*sxy - sx*sy
	den := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if den <= 0 {
		return 0
	}
	return num / math.Sqrt(den)
}

// RenderCoverage formats the coverage study with its correlation.
func RenderCoverage(rows []CoverageRow) string {
	var b strings.Builder
	b.WriteString("Extension: predictor coverage vs prediction quality\n")
	fmt.Fprintf(&b, "%-12s %-12s %-12s %9s %9s\n", "PROGRAM", "PREDICTOR", "TARGET", "COVERAGE", "%OF-SELF")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %-12s %8.1f%% %8.1f%%\n",
			r.Program, r.Predictor, r.Target, 100*r.Coverage, 100*r.PctOfSelf)
	}
	fmt.Fprintf(&b, "Pearson correlation (coverage vs quality): %.3f\n", CoverageCorrelation(rows))
	return b.String()
}

package exp

import (
	"fmt"
	"math"
	"strings"

	"branchprof/internal/dynpred"
	"branchprof/internal/predict"
	"branchprof/internal/runlength"
	"branchprof/internal/vm"
)

// Extension experiments: not tables or figures from the paper itself,
// but quantifications of two claims its argument leans on — that
// static profile-fed prediction is competitive with the 1/2-bit
// hardware schemes (§1, "Static vs. Dynamic Branch Prediction"), and
// that run lengths between breaks are unevenly distributed (§3, "The
// distribution of runs of instructions between mispredicted branches
// will not be constant").

// DynRow compares mispredict rates of static and dynamic schemes on
// one run. Rates are mispredicts per executed conditional branch.
type DynRow struct {
	Program    string
	Dataset    string
	SelfRate   float64 // static, profile of the run itself (best static)
	OthersRate float64 // static, scaled sum of the other datasets
	OneBitRate float64
	TwoBitRate float64
}

// StaticVsDynamic replays each program's first dataset through the
// VM with every predictor attached, measuring them on an identical
// branch stream. Programs with several datasets also get the
// sum-of-others static predictor; single-dataset programs reuse self.
func StaticVsDynamic(s *Suite) ([]DynRow, error) {
	var rows []DynRow
	for _, p := range s.Programs {
		r := p.Runs[0]
		self, err := selfPrediction(p, r)
		if err != nil {
			return nil, err
		}
		others := self
		if p.Multi() {
			others, err = predict.Combine(p.OtherProfiles(0), predict.Scaled, p.Prog.Sites, predict.LoopHeuristic)
			if err != nil {
				return nil, err
			}
		}
		toDirs := func(pr *predict.Prediction) []bool {
			dirs := make([]bool, len(pr.Dir))
			for i, d := range pr.Dir {
				dirs[i] = d == predict.Taken
			}
			return dirs
		}
		selfP := dynpred.NewStatic("self", toDirs(self))
		othersP := dynpred.NewStatic("others", toDirs(others))
		oneBit := dynpred.NewOneBit(len(p.Prog.Sites))
		twoBit := dynpred.NewTwoBit(len(p.Prog.Sites))
		multi := &dynpred.Multi{Predictors: []dynpred.Predictor{selfP, othersP, oneBit, twoBit}}
		// Traced replays observe the execution, so the engine runs them
		// fresh (never from cache) while still counting them in stats.
		if _, err := Engine().Run(p.Prog, "", p.InputFor(r), &vm.Config{Trace: multi}); err != nil {
			return nil, fmt.Errorf("exp: dynamic replay of %s: %w", p.Workload.Name, err)
		}
		rate := func(pr dynpred.Predictor) float64 {
			if pr.Executed() == 0 {
				return 0
			}
			return float64(pr.Mispredicts()) / float64(pr.Executed())
		}
		rows = append(rows, DynRow{
			Program: p.Workload.Name, Dataset: r.Dataset,
			SelfRate:   rate(selfP),
			OthersRate: rate(othersP),
			OneBitRate: rate(oneBit),
			TwoBitRate: rate(twoBit),
		})
	}
	return rows, nil
}

// RenderStaticVsDynamic formats the comparison.
func RenderStaticVsDynamic(rows []DynRow) string {
	var b strings.Builder
	b.WriteString("Extension: static (profile) vs dynamic (1/2-bit) mispredict rates\n")
	fmt.Fprintf(&b, "%-12s %-12s %8s %8s %8s %8s\n", "PROGRAM", "DATASET", "SELF", "OTHERS", "1-BIT", "2-BIT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
			r.Program, r.Dataset, 100*r.SelfRate, 100*r.OthersRate, 100*r.OneBitRate, 100*r.TwoBitRate)
	}
	return b.String()
}

// RunLengthRow summarizes the break-to-break run-length distribution
// of one run under self prediction.
type RunLengthRow struct {
	Program string
	Dataset string
	Stats   runlength.Stats
	Hist    string
}

// RunLengths replays each program's first dataset with a run-length
// recorder under the self prediction.
func RunLengths(s *Suite) ([]RunLengthRow, error) {
	var rows []RunLengthRow
	for _, p := range s.Programs {
		r := p.Runs[0]
		self, err := selfPrediction(p, r)
		if err != nil {
			return nil, err
		}
		rec := runlength.New(self)
		if _, err := Engine().Run(p.Prog, "", p.InputFor(r), &vm.Config{Trace: rec}); err != nil {
			return nil, fmt.Errorf("exp: run-length replay of %s: %w", p.Workload.Name, err)
		}
		rows = append(rows, RunLengthRow{
			Program: p.Workload.Name,
			Dataset: r.Dataset,
			Stats:   rec.Summarize(),
			Hist:    rec.Histogram(16),
		})
	}
	return rows, nil
}

// RenderRunLengths formats the distribution summary.
func RenderRunLengths(rows []RunLengthRow) string {
	var b strings.Builder
	b.WriteString("Extension: run lengths between breaks (self prediction)\n")
	fmt.Fprintf(&b, "%-12s %-12s %8s %8s %8s %8s %8s %6s\n",
		"PROGRAM", "DATASET", "BREAKS", "MEAN", "MEDIAN", "P90", "P99", "CV")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %8d %8.1f %8.0f %8.0f %8.0f %6.2f\n",
			r.Program, r.Dataset, r.Stats.Count, r.Stats.Mean, r.Stats.Median,
			r.Stats.P90, r.Stats.P99, r.Stats.CV)
	}
	return b.String()
}

// CoverageRow quantifies the paper's "Coverage" conjecture for one
// (predictor dataset, target dataset) pair: the fraction of the
// target's dynamic branches whose site the predictor saw, against the
// prediction quality obtained.
type CoverageRow struct {
	Program   string
	Predictor string
	Target    string
	// Coverage is the fraction of the target's executed branches at
	// sites the predictor dataset also executed.
	Coverage float64
	// PctOfSelf is the predictor's instrs/break as a fraction of the
	// target's self-prediction instrs/break.
	PctOfSelf float64
}

// Coverage computes every cross-dataset pair for multi-dataset
// programs. The paper tried to correlate such measures with predictor
// quality and reported failure ("nothing we tried seemed to correlate
// well"); CoverageCorrelation quantifies that.
func Coverage(s *Suite) ([]CoverageRow, error) {
	var rows []CoverageRow
	for _, p := range s.Programs {
		if !p.Multi() {
			continue
		}
		for i, target := range p.Runs {
			self, err := selfPrediction(p, target)
			if err != nil {
				return nil, err
			}
			selfIPB, err := ipb(target, self)
			if err != nil {
				return nil, err
			}
			for j, pred := range p.Runs {
				if i == j {
					continue
				}
				pr, err := predict.FromProfile(pred.Prof, p.Prog.Sites, predict.LoopHeuristic)
				if err != nil {
					return nil, err
				}
				v, err := ipb(target, pr)
				if err != nil {
					return nil, err
				}
				var covered, executed uint64
				for site, n := range target.Prof.Total {
					executed += n
					if pred.Prof.Total[site] > 0 {
						covered += n
					}
				}
				cov := 0.0
				if executed > 0 {
					cov = float64(covered) / float64(executed)
				}
				rows = append(rows, CoverageRow{
					Program:   p.Workload.Name,
					Predictor: pred.Dataset,
					Target:    target.Dataset,
					Coverage:  cov,
					PctOfSelf: pctOf(v, selfIPB),
				})
			}
		}
	}
	return rows, nil
}

// CoverageCorrelation returns the Pearson correlation between
// coverage and prediction quality across all pairs.
func CoverageCorrelation(rows []CoverageRow) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, r := range rows {
		sx += r.Coverage
		sy += r.PctOfSelf
		sxx += r.Coverage * r.Coverage
		syy += r.PctOfSelf * r.PctOfSelf
		sxy += r.Coverage * r.PctOfSelf
	}
	num := n*sxy - sx*sy
	den := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if den <= 0 {
		return 0
	}
	return num / math.Sqrt(den)
}

// RenderCoverage formats the coverage study with its correlation.
func RenderCoverage(rows []CoverageRow) string {
	var b strings.Builder
	b.WriteString("Extension: predictor coverage vs prediction quality\n")
	fmt.Fprintf(&b, "%-12s %-12s %-12s %9s %9s\n", "PROGRAM", "PREDICTOR", "TARGET", "COVERAGE", "%OF-SELF")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %-12s %8.1f%% %8.1f%%\n",
			r.Program, r.Predictor, r.Target, 100*r.Coverage, 100*r.PctOfSelf)
	}
	fmt.Fprintf(&b, "Pearson correlation (coverage vs quality): %.3f\n", CoverageCorrelation(rows))
	return b.String()
}

package exp

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"branchprof/internal/breaks"
	"branchprof/internal/vm"
)

// Healthy documents must render byte-identically to encoding/json:
// the sanitizer only runs when the plain marshal fails.
func TestMarshalSafeHealthyByteIdentical(t *testing.T) {
	type inner struct {
		A float64 `json:"a"`
		B string  `json:"b,omitempty"`
	}
	vals := []any{
		42,
		"hello",
		[]float64{1.5, -2, 0},
		map[string]inner{"x": {A: 3.25, B: "y"}},
		struct {
			Rows []inner
			N    int
			When time.Time
		}{Rows: []inner{{A: 1}}, N: 7, When: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)},
		nil,
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MarshalSafe(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("MarshalSafe(%v) = %s, want %s", v, got, want)
		}
	}
}

func TestMarshalSafeNonFinite(t *testing.T) {
	type row struct {
		IPB  float64 `json:"ipb"`
		Pct  float64 `json:"pct"`
		Name string  `json:"name"`
	}
	v := struct {
		Rows []row
		M    map[string]float64
	}{
		Rows: []row{{IPB: math.Inf(1), Pct: math.NaN(), Name: "zb"}},
		M:    map[string]float64{"neg": math.Inf(-1), "ok": 2.5},
	}
	if _, err := json.Marshal(v); err == nil {
		t.Fatal("fixture no longer trips encoding/json; test is vacuous")
	}
	b, err := MarshalSafe(v)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatalf("MarshalSafe produced invalid JSON: %s", b)
	}
	var back struct {
		Rows []map[string]any
		M    map[string]any
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows[0]["ipb"] != "+Inf" || back.Rows[0]["pct"] != "NaN" || back.Rows[0]["name"] != "zb" {
		t.Errorf("sanitized row = %v", back.Rows[0])
	}
	if back.M["neg"] != "-Inf" || back.M["ok"] != 2.5 {
		t.Errorf("sanitized map = %v", back.M)
	}
}

// The motivating case: a zero-break run's InstrsPerBreak is +Inf by
// design (see breaks.Breakdown), and a report row carrying it must
// still render as JSON.
func TestMarshalSafeZeroBreakBreakdown(t *testing.T) {
	b := breaks.Count(&vm.Result{Instrs: 100}, 0, breaks.Predicted)
	row := struct {
		Program string  `json:"program"`
		IPB     float64 `json:"instrs_per_break"`
	}{"zerobranch", b.InstrsPerBreak()}
	out, err := MarshalSafe(row)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out) || !strings.Contains(string(out), `"instrs_per_break":"+Inf"`) {
		t.Errorf("breakdown row rendered as %s", out)
	}
}

func TestEncodeSafe(t *testing.T) {
	var buf bytes.Buffer
	healthy := map[string]float64{"a": 1}
	if err := EncodeSafe(&buf, healthy, "  "); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	enc := json.NewEncoder(&plain)
	enc.SetIndent("", "  ")
	if err := enc.Encode(healthy); err != nil {
		t.Fatal(err)
	}
	if buf.String() != plain.String() {
		t.Errorf("healthy EncodeSafe = %q, want %q", buf.String(), plain.String())
	}

	buf.Reset()
	if err := EncodeSafe(&buf, map[string]float64{"inf": math.Inf(1)}, "  "); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("EncodeSafe wrote invalid JSON: %s", buf.Bytes())
	}
	if !strings.Contains(buf.String(), `"+Inf"`) {
		t.Errorf("EncodeSafe output = %q", buf.String())
	}
}

func TestSafeJSONStructureMirrorsEncodingJSON(t *testing.T) {
	type embedded struct {
		E int `json:"e"`
	}
	v := struct {
		embedded
		Skip   string `json:"-"`
		Named  int    `json:"renamed"`
		Empty  []int  `json:"empty,omitempty"`
		hidden int
		Ptr    *float64
		Bytes  []byte `json:"bytes"`
	}{embedded: embedded{E: 5}, Skip: "x", Named: 2, hidden: 9, Bytes: []byte("hi")}
	want, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(SafeJSON(v))
	if err != nil {
		t.Fatal(err)
	}
	var a, b map[string]any
	if err := json.Unmarshal(want, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got, &b); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("SafeJSON shape %v, want %v", b, a)
	}
	for k, wv := range a {
		if gv, ok := b[k]; !ok || !jsonEq(gv, wv) {
			t.Errorf("key %q: SafeJSON %v, encoding/json %v", k, b[k], wv)
		}
	}
}

func jsonEq(a, b any) bool {
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	return bytes.Equal(ab, bb)
}

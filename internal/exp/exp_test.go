package exp

import (
	"math"
	"testing"

	"branchprof/internal/workloads"
)

// suite fetches the shared measured matrix (built once per process).
func suite(t *testing.T) *Suite {
	t.Helper()
	s, err := Shared()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteCoversSampleBase(t *testing.T) {
	s := suite(t)
	if len(s.Programs) != len(workloads.All()) {
		t.Fatalf("suite has %d programs, registry has %d", len(s.Programs), len(workloads.All()))
	}
	for _, p := range s.Programs {
		if len(p.Runs) != len(p.Workload.Datasets) {
			t.Errorf("%s: %d runs for %d datasets", p.Workload.Name, len(p.Runs), len(p.Workload.Datasets))
		}
		for _, r := range p.Runs {
			if r.Res.Instrs == 0 || r.Prof.Executed() == 0 {
				t.Errorf("%s/%s: empty run", r.Workload, r.Dataset)
			}
		}
	}
	if _, err := s.Program("nonexistent"); err == nil {
		t.Error("unknown program lookup should fail")
	}
}

func TestTable3Shape(t *testing.T) {
	s := suite(t)
	rows, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	byProg := map[string]float64{}
	for _, r := range rows {
		byProg[r.Program] = r.InstrsPerBreak
		if r.InstrsPerBreak < 50 {
			t.Errorf("%s/%s: instrs/break %v is implausibly low for a FORTRAN program",
				r.Program, r.Dataset, r.InstrsPerBreak)
		}
	}
	// The paper's qualitative ordering: the big numeric codes sit in
	// the hundreds-to-thousands, well above every C program.
	for _, name := range []string{"tomcatv", "matrix300", "fpppp"} {
		if byProg[name] < 500 {
			t.Errorf("%s: instrs/break %v, want >500", name, byProg[name])
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	s := suite(t)
	fortran := Figure1(s, workloads.Fortran)
	c := Figure1(s, workloads.C)
	if len(fortran) == 0 || len(c) == 0 {
		t.Fatal("empty figure 1 panels")
	}
	for _, r := range append(fortran, c...) {
		if r.WithCalls > r.NoCalls {
			t.Errorf("%s/%s: including call breaks increased instrs/break (%v > %v)",
				r.Program, r.Dataset, r.WithCalls, r.NoCalls)
		}
		if r.NoCalls < 3 || r.NoCalls > 2000 {
			t.Errorf("%s/%s: unpredicted instrs/break %v out of plausible range", r.Program, r.Dataset, r.NoCalls)
		}
	}
	// C programs cluster low (the paper: about 5-17); check the panel
	// average rather than each row.
	var cSum float64
	for _, r := range c {
		cSum += r.NoCalls
	}
	if avg := cSum / float64(len(c)); avg > 25 {
		t.Errorf("average C unpredicted instrs/break = %v, expected the paper's low range", avg)
	}
}

func TestFigure2SelfIsUpperBound(t *testing.T) {
	s := suite(t)
	progs := append([]string{"spice2g6"}, CProgramNames(s)...)
	rows, err := Figure2(s, progs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no figure 2 rows")
	}
	for _, r := range rows {
		if r.Others > r.Self*1.0001 {
			t.Errorf("%s/%s: others (%v) beat the self oracle (%v)", r.Program, r.Dataset, r.Others, r.Self)
		}
		if r.Self < r.Others*0.5 && r.Others > 0 {
			t.Errorf("%s/%s: inconsistent self/others: %v vs %v", r.Program, r.Dataset, r.Self, r.Others)
		}
		// Prediction must beat no-prediction substantially.
		p, err := s.Program(r.Program)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range p.Runs {
			if run.Dataset == r.Dataset {
				unpred := Figure1(s, p.Workload.Lang)
				for _, u := range unpred {
					if u.Program == r.Program && u.Dataset == r.Dataset && r.Self < u.NoCalls {
						t.Errorf("%s/%s: self prediction (%v) worse than no prediction (%v)",
							r.Program, r.Dataset, r.Self, u.NoCalls)
					}
				}
			}
		}
	}
}

func TestFigure3BestWorstBounds(t *testing.T) {
	s := suite(t)
	rows, err := Figure3(s, append([]string{"spice2g6"}, CProgramNames(s)...))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BestPct < r.WorstPct {
			t.Errorf("%s/%s: best %v%% < worst %v%%", r.Program, r.Dataset, r.BestPct, r.WorstPct)
		}
		if r.BestPct > 100.0001 {
			t.Errorf("%s/%s: single predictor beat the self oracle: %v%%", r.Program, r.Dataset, r.BestPct)
		}
		if r.WorstPct <= 0 {
			t.Errorf("%s/%s: worst percentage %v", r.Program, r.Dataset, r.WorstPct)
		}
	}
}

func TestTable1DeadCodeSpread(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	var min, max float64 = 2, -1
	byProg := map[string]float64{}
	for _, r := range rows {
		if r.DeadPct < 0 || r.DeadPct > 0.6 {
			t.Errorf("%s: dead fraction %v out of range", r.Program, r.DeadPct)
		}
		if r.DeadPct < min {
			min = r.DeadPct
		}
		if r.DeadPct > max {
			max = r.DeadPct
		}
		byProg[r.Program] = r.DeadPct
		if !r.OutputsEqual {
			t.Errorf("%s: dead-branch elimination changed observable behaviour", r.Program)
		}
	}
	if min > 0.005 {
		t.Errorf("some program should have ~0%% dead code; min is %v", min)
	}
	if max < 0.05 {
		t.Errorf("some program should have substantial dead code; max is %v", max)
	}
	if byProg["li"] > 0.01 {
		t.Errorf("li should have ~0%% dead code (paper: 0%%), got %v", byProg["li"])
	}
	if byProg["matrix300"] < byProg["li"] {
		t.Error("matrix300 should have more dead code than li (paper: 29% vs 0%)")
	}
}

func TestTakenConstancy(t *testing.T) {
	s := suite(t)
	rows := TakenConstancy(s)
	for _, r := range rows {
		if r.MinPct < 0 || r.MaxPct > 1 || r.MinPct > r.MaxPct {
			t.Errorf("%s: taken range [%v,%v]", r.Program, r.MinPct, r.MaxPct)
		}
	}
	// compress vs uncompress (one binary, two modes) should differ a
	// lot more than datasets within one mode — that is the paper's
	// "no correlation between modes" observation in miniature.
	var compressRow, uncompressRow *TakenRow
	for i := range rows {
		switch rows[i].Program {
		case "compress":
			compressRow = &rows[i]
		case "uncompress":
			uncompressRow = &rows[i]
		}
	}
	if compressRow == nil || uncompressRow == nil {
		t.Fatal("missing compress rows")
	}
}

func TestHeuristicsLose(t *testing.T) {
	s := suite(t)
	rows, err := HeuristicComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, r := range rows {
		if math.IsInf(r.Profile, 1) || math.IsInf(r.LoopHeur, 1) {
			continue
		}
		sum += r.Factor()
		n++
	}
	if n == 0 {
		t.Fatal("no finite heuristic rows")
	}
	avg := sum / float64(n)
	// The paper: heuristics give up "about a factor of two".
	if avg < 1.15 {
		t.Errorf("profile feedback should clearly beat the loop heuristic on average; factor = %v", avg)
	}
}

func TestMotivationContrast(t *testing.T) {
	s := suite(t)
	rows, err := Motivation(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	fpppp, li := rows[0], rows[1]
	// Percent correct is close (within ~15 points) while instructions
	// per mispredict differ by more than an order of magnitude — the
	// paper's argument that percent-correct is the wrong measure.
	if diff := math.Abs(fpppp.PctCorrect - li.PctCorrect); diff > 0.15 {
		t.Errorf("percent-correct gap %v too large to make the paper's point", diff)
	}
	if fpppp.InstrsPerMispred < 10*li.InstrsPerMispred {
		t.Errorf("instrs/mispredict should differ by >10x: %v vs %v",
			fpppp.InstrsPerMispred, li.InstrsPerMispred)
	}
	if fpppp.InstrsPerBranch < 10*li.InstrsPerBranch {
		t.Errorf("branch densities should differ by >10x: %v vs %v",
			fpppp.InstrsPerBranch, li.InstrsPerBranch)
	}
}

func TestCrossModePoor(t *testing.T) {
	s := suite(t)
	rows, err := CrossMode(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	self, other, cross := rows[0], rows[1], rows[2]
	if cross.IPB > other.IPB {
		t.Errorf("uncompress profile (%v) should predict compress worse than another compress dataset (%v)",
			cross.IPB, other.IPB)
	}
	if cross.IPB > 0.8*self.IPB {
		t.Errorf("cross-mode prediction (%v) suspiciously close to self (%v)", cross.IPB, self.IPB)
	}
}

func TestCombinedModesClose(t *testing.T) {
	s := suite(t)
	rows, err := CombinedComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: scaled and unscaled "appeared to perform as well as
	// each other" on average.
	var scaledSum, unscaledSum float64
	for _, r := range rows {
		scaledSum += r.Scaled
		unscaledSum += r.Unscaled
	}
	ratio := scaledSum / unscaledSum
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("scaled vs unscaled aggregate ratio = %v, expected near parity", ratio)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	s := suite(t)
	t3, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Figure2(s, []string{"spice2g6"})
	if err != nil {
		t.Fatal(err)
	}
	f3, err := Figure3(s, []string{"li"})
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"table2": RenderTable2(Table2()),
		"table3": RenderTable3(t3),
		"fig1":   RenderFigure1("t", Figure1(s, workloads.C)),
		"fig2":   RenderFigure2("t", f2),
		"fig3":   RenderFigure3("t", f3),
		"taken":  RenderTaken(TakenConstancy(s)),
	} {
		if len(out) < 40 {
			t.Errorf("%s render too short: %q", name, out)
		}
	}
}

func TestTable2AndProgramNames(t *testing.T) {
	rows := Table2()
	if len(rows) != 15 {
		t.Fatalf("inventory has %d programs, want 15", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		if names[r.Program] {
			t.Errorf("duplicate program %s", r.Program)
		}
		names[r.Program] = true
		if len(r.Datasets) == 0 || r.Desc == "" {
			t.Errorf("%s: incomplete inventory row %+v", r.Program, r)
		}
	}
	for _, want := range []string{
		"spice2g6", "doduc", "nasa7", "matrix300", "fpppp", "tomcatv", "lfk",
		"gcc", "espresso", "li", "eqntott", "compress", "uncompress", "mfcom", "spiff",
	} {
		if !names[want] {
			t.Errorf("paper program %s missing from the inventory", want)
		}
	}

	s := suite(t)
	cnames := CProgramNames(s)
	if len(cnames) < 6 {
		t.Errorf("expected at least 6 multi-dataset C programs, got %v", cnames)
	}
	for _, n := range cnames {
		if n == "spice2g6" || n == "tomcatv" {
			t.Errorf("FORTRAN program %s in the C panel", n)
		}
	}
}

package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"branchprof/internal/engine"
	"branchprof/internal/faults"
	"branchprof/internal/workloads"
)

// TestDegradedCollectionKeepsHealthyCells poisons every run of one
// workload and checks the contract of degraded collection: the suite
// comes back partial, the poisoned program is gone, its cells are
// recorded as errors, the coverage summary says so, and every
// artifact the surviving cells support still renders.
func TestDegradedCollectionKeepsHealthyCells(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix collection in -short mode")
	}
	fs := faults.NewSet(1, faults.Rule{Stage: faults.Run, Kind: faults.Error, Label: "gcc/"})
	eng := engine.New(engine.Options{Faults: fs})
	s, err := CollectCtx(context.Background(), eng, CollectOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Partial() {
		t.Fatal("suite with a poisoned workload is not partial")
	}
	if _, err := s.Program("gcc"); err == nil {
		t.Fatal("poisoned program still present")
	}
	if p, err := s.Program("li"); err != nil || len(p.Runs) == 0 {
		t.Fatalf("healthy program lost: %v", err)
	}

	cov := s.CoverageSummary()
	if cov.Complete() {
		t.Fatalf("coverage reports complete on a partial suite: %+v", cov)
	}
	if !strings.Contains(cov.String(), "PARTIAL") {
		t.Fatalf("coverage annotation = %q", cov.String())
	}
	summary := RenderCoverageSummary(s)
	if !strings.Contains(summary, "gcc/") {
		t.Fatalf("coverage summary does not name the failed cells:\n%s", summary)
	}
	for _, ce := range s.Errors {
		if ce.Workload != "gcc" {
			t.Fatalf("unexpected failed cell: %v", ce)
		}
		if !faults.Is(ce.Err) {
			t.Fatalf("cell error lost the injected sentinel: %v", ce.Err)
		}
		var se *engine.StageError
		if !errors.As(ce.Err, &se) || se.Stage != faults.Run {
			t.Fatalf("cell error not attributed to the run stage: %v", ce.Err)
		}
	}

	// Every suite-derived artifact still renders from the healthy cells.
	out := renderAll(t, s)
	if strings.Contains(out, "gcc") {
		t.Fatalf("degraded artifacts still mention the failed program:\n%s", out)
	}
	if !strings.Contains(out, "li") {
		t.Fatal("degraded artifacts lost a healthy program")
	}
}

// TestDegradedNoFaultsIdentical is the PR's bit-identity invariant:
// with injection disabled, degraded-mode collection renders the exact
// bytes the strict path renders.
func TestDegradedNoFaultsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix collection in -short mode")
	}
	eng := engine.New(engine.Options{})
	strict, err := CollectWith(eng)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := CollectCtx(context.Background(), eng, CollectOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Partial() {
		t.Fatal("fault-free degraded collection reported partial")
	}
	if !relaxed.CoverageSummary().Complete() {
		t.Fatalf("coverage = %+v", relaxed.CoverageSummary())
	}
	if a, b := renderAll(t, strict), renderAll(t, relaxed); a != b {
		t.Fatal("degraded-mode collection diverged from strict output with no faults injected")
	}
}

// TestPartialFullyFailedCollectionIsError: when nothing survives
// there is nothing to degrade to — AllowPartial still errors.
func TestPartialFullyFailedCollectionIsError(t *testing.T) {
	fs := faults.NewSet(1, faults.Rule{Stage: faults.Compile, Kind: faults.Error})
	eng := engine.New(engine.Options{Faults: fs})
	s, err := CollectCtx(context.Background(), eng, CollectOptions{AllowPartial: true})
	if err == nil {
		t.Fatalf("fully-failed collection returned a suite: %+v", s.CoverageSummary())
	}
	if !faults.Is(err) {
		t.Fatalf("error lost the injected cause: %v", err)
	}
}

// TestPartialStrictModeAborts: without AllowPartial a failed cell
// fails the whole collection, as before this PR. (Every compile is
// poisoned so the test never pays for measuring the healthy cells.)
func TestPartialStrictModeAborts(t *testing.T) {
	fs := faults.NewSet(1, faults.Rule{Stage: faults.Compile, Kind: faults.Error})
	eng := engine.New(engine.Options{Faults: fs})
	if _, err := CollectCtx(context.Background(), eng, CollectOptions{}); err == nil {
		t.Fatal("strict collection tolerated a failed cell")
	}
}

// TestCancelCollectionNeverPartial: cancellation aborts even a
// degraded collection — a half-measured matrix the user asked to stop
// is not a result.
func TestCancelCollectionNeverPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.Options{})
	_, err := CollectCtx(ctx, eng, CollectOptions{AllowPartial: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled collection returned %v, want context.Canceled", err)
	}
}

// TestDegradedSingleDatasetSurvivor: a multi-dataset workload reduced
// to one surviving run must drop out of cross-dataset experiments
// (Multi) while still counting toward coverage.
func TestDegradedSingleDatasetSurvivor(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix collection in -short mode")
	}
	// Poison every li dataset except 8queens.
	var rules []faults.Rule
	for _, w := range workloads.All() {
		if w.Name != "li" {
			continue
		}
		for _, ds := range w.Datasets {
			if ds.Name != "8queens" {
				rules = append(rules, faults.Rule{
					Stage: faults.Run, Kind: faults.Error, Label: "li/" + ds.Name,
				})
			}
		}
	}
	if len(rules) == 0 {
		t.Skip("li has a single dataset; nothing to poison")
	}
	eng := engine.New(engine.Options{Faults: faults.NewSet(1, rules...)})
	s, err := CollectCtx(context.Background(), eng, CollectOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Program("li")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) != 1 || p.Runs[0].Dataset != "8queens" {
		t.Fatalf("surviving runs = %+v", p.Runs)
	}
	if p.Multi() {
		t.Fatal("single-survivor program still claims cross-dataset support")
	}
	if in := p.InputFor(p.Runs[0]); in == nil {
		t.Fatal("InputFor lost the surviving dataset")
	}
	// Cross-dataset artifacts must quietly exclude li, not fail.
	if _, err := Figure2(s, []string{"li"}); err != nil {
		t.Fatalf("Figure2 over a single-survivor program: %v", err)
	}
}

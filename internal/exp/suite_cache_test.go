package exp

import (
	"testing"

	"branchprof/internal/engine"
	"branchprof/internal/workloads"
)

// renderAll produces every suite-derived artifact as one string, so
// the cold/warm comparison covers the full reporting surface, not
// just the raw counters.
func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	out := RenderFigure1("Figure 1a", Figure1(s, workloads.Fortran))
	out += RenderFigure1("Figure 1b", Figure1(s, workloads.C))
	t3, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	out += RenderTable3(t3)
	f2, err := Figure2(s, CProgramNames(s))
	if err != nil {
		t.Fatal(err)
	}
	out += RenderFigure2("Figure 2b", f2)
	f3, err := Figure3(s, CProgramNames(s))
	if err != nil {
		t.Fatal(err)
	}
	out += RenderFigure3("Figure 3b", f3)
	out += RenderTaken(TakenConstancy(s))
	return out
}

// TestCachedSuiteIdentical is the end-to-end cache-correctness check:
// a suite collected fresh, a suite served from the same engine's
// caches, and a suite served from a *different* engine over the same
// persistent directory must render byte-identical experiment tables.
func TestCachedSuiteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix collection in -short mode")
	}
	dir := t.TempDir()

	cold := engine.New(engine.Options{CacheDir: dir})
	s1, err := CollectWith(cold)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.DiskHits != 0 || st.Runs == 0 {
		t.Fatalf("cold collection stats off: %+v", st)
	}
	want := renderAll(t, s1)

	// Same engine again: served from the in-memory LRU.
	s2, err := CollectWith(cold)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, s2); got != want {
		t.Fatal("memory-cached suite renders differently from the cold suite")
	}

	// Fresh engine, same directory: served from disk, recompiled only.
	warm := engine.New(engine.Options{CacheDir: dir})
	s3, err := CollectWith(warm)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Runs != 0 {
		t.Fatalf("warm collection executed %d runs; every measurement should come from disk", st.Runs)
	}
	if st.DiskHits == 0 {
		t.Fatal("warm collection never hit the disk cache")
	}
	if got := renderAll(t, s3); got != want {
		t.Fatal("disk-cached suite renders differently from the cold suite")
	}
}

// TestCollectMatchesSequential pins the bounded pool's assembly: a
// single-worker collection and a wide one must produce suites that
// render identically, whatever the schedule interleaving.
func TestCollectMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix collection in -short mode")
	}
	seq, err := CollectWith(engine.New(engine.Options{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := CollectWith(engine.New(engine.Options{Workers: 16}))
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(t, seq) != renderAll(t, wide) {
		t.Fatal("parallel collection renders differently from sequential")
	}
	if len(seq.Programs) != len(wide.Programs) {
		t.Fatal("program counts differ")
	}
	for i := range seq.Programs {
		a, b := seq.Programs[i], wide.Programs[i]
		if a.Workload.Name != b.Workload.Name || len(a.Runs) != len(b.Runs) {
			t.Fatalf("program %d shape differs", i)
		}
		for j := range a.Runs {
			if a.Runs[j].Res.Instrs != b.Runs[j].Res.Instrs {
				t.Fatalf("%s/%s: %d vs %d instrs", a.Workload.Name, a.Runs[j].Dataset,
					a.Runs[j].Res.Instrs, b.Runs[j].Res.Instrs)
			}
		}
	}
}

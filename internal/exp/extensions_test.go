package exp

import (
	"math"
	"strings"
	"testing"
)

func TestStaticVsDynamicShape(t *testing.T) {
	s := suite(t)
	rows, err := StaticVsDynamic(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Programs) {
		t.Fatalf("got %d rows for %d programs", len(rows), len(s.Programs))
	}
	var selfBeats2bit, twoBitBeats1bit int
	for _, r := range rows {
		for _, rate := range []float64{r.SelfRate, r.OthersRate, r.OneBitRate, r.TwoBitRate,
			r.TwoLevelRate, r.GShareRate, r.BiModeRate} {
			if rate < 0 || rate > 1 {
				t.Errorf("%s: rate %v out of [0,1]", r.Program, rate)
			}
		}
		// The self profile is the optimal *static* table; sum-of-others
		// can never beat it on the same run.
		if r.OthersRate < r.SelfRate-1e-9 {
			t.Errorf("%s: others (%v) beat self (%v)", r.Program, r.OthersRate, r.SelfRate)
		}
		if r.SelfRate <= r.TwoBitRate {
			selfBeats2bit++
		}
		if r.TwoBitRate <= r.OneBitRate {
			twoBitBeats1bit++
		}
	}
	// The paper's framing: static profiles are competitive with the
	// hardware schemes. Require that on most programs self-static is
	// at least as good as 2-bit, and 2-bit at least as good as 1-bit.
	if selfBeats2bit < len(rows)/2 {
		t.Errorf("static self beat 2-bit on only %d/%d programs", selfBeats2bit, len(rows))
	}
	if twoBitBeats1bit < len(rows)*2/3 {
		t.Errorf("2-bit beat 1-bit on only %d/%d programs", twoBitBeats1bit, len(rows))
	}
	out := RenderStaticVsDynamic(rows)
	if !strings.Contains(out, "2-BIT") || !strings.Contains(out, "GSHARE") {
		t.Error("render missing header")
	}
}

// wantSchemes is the fixed report order of the full predictor set.
var wantSchemes = []string{"self", "others", "1-bit", "2-bit", "two-level", "gshare", "bimode"}

func TestInstrsPerMispredictShape(t *testing.T) {
	s := suite(t)
	rows, err := InstrsPerMispredict(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Programs) {
		t.Fatalf("got %d rows for %d programs", len(rows), len(s.Programs))
	}
	var historyBeatsOneBit int
	for _, r := range rows {
		if len(r.Schemes) != len(wantSchemes) {
			t.Fatalf("%s: %d schemes, want %d", r.Program, len(r.Schemes), len(wantSchemes))
		}
		byName := map[string]SchemeIPM{}
		for i, sch := range r.Schemes {
			if sch.Scheme != wantSchemes[i] {
				t.Errorf("%s: scheme[%d] = %q, want %q", r.Program, i, sch.Scheme, wantSchemes[i])
			}
			byName[sch.Scheme] = sch
			if sch.Rate < 0 || sch.Rate > 1 {
				t.Errorf("%s/%s: rate %v out of [0,1]", r.Program, sch.Scheme, sch.Rate)
			}
			// IPM must be exactly instrs/mispredicts (or +Inf on zero).
			if sch.Mispredicts == 0 {
				if !math.IsInf(sch.IPM, 1) {
					t.Errorf("%s/%s: zero mispredicts but IPM %v", r.Program, sch.Scheme, sch.IPM)
				}
			} else if want := float64(r.Instrs) / float64(sch.Mispredicts); math.Abs(sch.IPM-want) > 1e-9 {
				t.Errorf("%s/%s: IPM %v, want %v", r.Program, sch.Scheme, sch.IPM, want)
			}
			// Every scheme sees the identical branch stream.
			if sch.Executed != r.Schemes[0].Executed {
				t.Errorf("%s/%s: executed %d != %d — schemes saw different streams",
					r.Program, sch.Scheme, sch.Executed, r.Schemes[0].Executed)
			}
		}
		// The self profile is the optimal static table; others can
		// never beat it on the same run.
		if byName["others"].Mispredicts < byName["self"].Mispredicts {
			t.Errorf("%s: others beat self", r.Program)
		}
		if byName["two-level"].Mispredicts <= byName["1-bit"].Mispredicts ||
			byName["gshare"].Mispredicts <= byName["1-bit"].Mispredicts {
			historyBeatsOneBit++
		}
	}
	// The point of the extension: history-based schemes should beat the
	// paper-era 1-bit scheme nearly everywhere.
	if historyBeatsOneBit < len(rows)*2/3 {
		t.Errorf("history schemes beat 1-bit on only %d/%d programs", historyBeatsOneBit, len(rows))
	}
	if out := RenderInstrsPerMispredict(rows); !strings.Contains(out, "TWO-LEVEL") {
		t.Error("render missing header")
	}
}

func TestH2PStudy(t *testing.T) {
	s := suite(t)
	const n = 3
	rows, err := H2PStudy(s, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Programs) {
		t.Fatalf("got %d rows for %d programs", len(rows), len(s.Programs))
	}
	for _, r := range rows {
		if len(r.Top) == 0 || len(r.Top) > n {
			t.Errorf("%s: %d ranked sites, want 1..%d", r.Program, len(r.Top), n)
		}
		prev := math.Inf(1)
		for _, site := range r.Top {
			if site.Score > prev+1e-12 {
				t.Errorf("%s: ranking not descending (%v after %v)", r.Program, site.Score, prev)
			}
			prev = site.Score
			if site.Executed == 0 {
				t.Errorf("%s: never-executed site %d ranked", r.Program, site.Site)
			}
			if site.TakenRate < 0 || site.TakenRate > 1 || site.Entropy < 0 || site.Entropy > 1+1e-12 {
				t.Errorf("%s site %d: rate %v entropy %v out of range", r.Program, site.Site, site.TakenRate, site.Entropy)
			}
			if len(site.MPKI) != len(wantSchemes) {
				t.Errorf("%s site %d: %d scheme costs, want %d", r.Program, site.Site, len(site.MPKI), len(wantSchemes))
			}
			// Score is the min across schemes — never above any entry.
			for _, m := range site.MPKI {
				if m.MPKI < site.Score-1e-12 {
					t.Errorf("%s site %d: score %v above %s's %v", r.Program, site.Site, site.Score, m.Scheme, m.MPKI)
				}
			}
			if site.Func == "" {
				t.Errorf("%s site %d: missing source identity", r.Program, site.Site)
			}
		}
	}
	if out := RenderH2P(rows); !strings.Contains(out, "MPKI BY SCHEME") {
		t.Error("render missing header")
	}
}

func TestRunLengthsShape(t *testing.T) {
	s := suite(t)
	rows, err := RunLengths(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Stats.Count == 0 {
			t.Errorf("%s: no breaks recorded", r.Program)
			continue
		}
		// The distribution summary must be internally consistent.
		if r.Stats.Median > r.Stats.P90+1e-9 || r.Stats.P90 > r.Stats.P99+1e-9 {
			t.Errorf("%s: quantiles out of order: %+v", r.Program, r.Stats)
		}
		if float64(r.Stats.Max) < r.Stats.Mean {
			t.Errorf("%s: max below mean: %+v", r.Program, r.Stats)
		}
		// The mean run length must agree with instrs/break from the
		// suite within the truncation of the final partial run.
		if r.Stats.Mean <= 1 {
			t.Errorf("%s: mean run length %v", r.Program, r.Stats.Mean)
		}
		if r.Hist == "" {
			t.Errorf("%s: empty histogram", r.Program)
		}
	}
	// The paper's point: branches are NOT evenly spaced. At least some
	// programs must show strong clustering (CV well above 1).
	var maxCV float64
	for _, r := range rows {
		if r.Stats.CV > maxCV {
			maxCV = r.Stats.CV
		}
	}
	if maxCV < 1.2 {
		t.Errorf("max run-length CV = %v; expected clustering somewhere", maxCV)
	}
}

func TestCoverageStudy(t *testing.T) {
	s := suite(t)
	rows, err := Coverage(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no coverage rows")
	}
	for _, r := range rows {
		if r.Coverage < 0 || r.Coverage > 1 {
			t.Errorf("%s %s->%s: coverage %v", r.Program, r.Predictor, r.Target, r.Coverage)
		}
		if r.PctOfSelf <= 0 || r.PctOfSelf > 1.0001 {
			t.Errorf("%s %s->%s: pct-of-self %v", r.Program, r.Predictor, r.Target, r.PctOfSelf)
		}
	}
	corr := CoverageCorrelation(rows)
	if math.IsNaN(corr) || corr < -1 || corr > 1 {
		t.Errorf("correlation = %v", corr)
	}
	out := RenderCoverage(rows)
	if !strings.Contains(out, "Pearson") {
		t.Error("render missing correlation line")
	}
}

func TestInlineAblation(t *testing.T) {
	rows, err := InlineAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no ablation rows")
	}
	var anyBigGain bool
	for _, r := range rows {
		if r.InlinedCalls > r.PlainCalls {
			t.Errorf("%s: inlining increased calls %d -> %d", r.Program, r.PlainCalls, r.InlinedCalls)
		}
		// Inlining must never make the break density worse.
		if r.Speedup() < 0.97 {
			t.Errorf("%s: inlining hurt instrs/break: %v -> %v", r.Program, r.PlainIPB, r.InlinedIPB)
		}
		if r.Speedup() > 2 {
			anyBigGain = true
		}
	}
	if !anyBigGain {
		t.Error("expected at least one call-heavy program to gain >2x from inlining")
	}
	if out := RenderInlineAblation(rows); !strings.Contains(out, "GAIN") {
		t.Error("render missing header")
	}
}

func TestSelectStudy(t *testing.T) {
	rows, err := SelectStudy()
	if err != nil {
		t.Fatal(err)
	}
	var anyConverted bool
	for _, r := range rows {
		if r.SelectPct < 0 || r.SelectPct > 0.1 {
			t.Errorf("%s: select share %v out of plausible range", r.Program, r.SelectPct)
		}
		if r.SitesSelect > r.SitesPlain {
			t.Errorf("%s: if-conversion added sites %d -> %d", r.Program, r.SitesPlain, r.SitesSelect)
		}
		if r.BranchesCut < -0.001 {
			t.Errorf("%s: branches increased by %v", r.Program, r.BranchesCut)
		}
		if r.SelectPct > 0 {
			anyConverted = true
		}
	}
	if !anyConverted {
		t.Error("no workload had convertible ifs")
	}
	if out := RenderSelectStudy(rows); !strings.Contains(out, "SELECT%") {
		t.Error("render missing header")
	}
}

func TestDisagreementStudy(t *testing.T) {
	s := suite(t)
	rows, err := DisagreementStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no disagreement rows")
	}
	for _, r := range rows {
		if r.TotalMiss < r.SelfMiss {
			t.Errorf("%s/%s: worst predictor (%d) beat the oracle (%d)",
				r.Program, r.Target, r.TotalMiss, r.SelfMiss)
		}
		// The decomposition must not exceed the excess.
		if r.UnseenMiss+r.FlippedMiss > r.Excess() {
			t.Errorf("%s/%s: decomposition %d+%d exceeds excess %d",
				r.Program, r.Target, r.UnseenMiss, r.FlippedMiss, r.Excess())
		}
		if sh := r.UnseenShare(); sh < 0 || sh > 1 {
			t.Errorf("%s/%s: unseen share %v", r.Program, r.Target, sh)
		}
	}
	if out := RenderDisagreement(rows); !strings.Contains(out, "aggregate") {
		t.Error("render missing aggregate line")
	}
}

func TestHotSites(t *testing.T) {
	s := suite(t)
	rows, err := HotSites(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no hot sites")
	}
	perProg := map[string]int{}
	for _, r := range rows {
		perProg[r.Program]++
		if r.Mispredicts > r.Executed {
			t.Errorf("%s %s:%d: mispredicts %d > executed %d", r.Program, r.Func, r.Line, r.Mispredicts, r.Executed)
		}
		if r.Intrinsic > r.Mispredicts {
			// intrinsic (oracle) misses at a site cannot exceed the
			// cross-dataset predictor's misses... unless the
			// cross-predictor happens to pick the minority direction
			// better by luck — impossible: oracle is per-site optimal.
			t.Errorf("%s %s:%d: intrinsic %d > mispredicts %d", r.Program, r.Func, r.Line, r.Intrinsic, r.Mispredicts)
		}
	}
	for prog, n := range perProg {
		if n > 3 {
			t.Errorf("%s: %d rows, cap is 3", prog, n)
		}
	}
	if out := RenderHotSites(rows); !strings.Contains(out, "INTRINSIC") {
		t.Error("render missing header")
	}
}

func TestTraceStudy(t *testing.T) {
	s := suite(t)
	rows, err := TraceStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Programs) {
		t.Fatalf("got %d rows for %d programs", len(rows), len(s.Programs))
	}
	var profWins int
	for _, r := range rows {
		if r.Block <= 0 || r.Heuristic <= 0 || r.Profile <= 0 {
			t.Errorf("%s: nonpositive lengths %+v", r.Program, r)
		}
		// Trace selection can only join blocks, never split them.
		if r.Profile < r.Block || r.Heuristic < r.Block*0.99 {
			t.Errorf("%s: traces shorter than blocks: %+v", r.Program, r)
		}
		if r.Profile >= r.Heuristic {
			profWins++
		}
	}
	// Profile-guided selection should be at least as good as the
	// heuristic almost everywhere.
	if profWins < len(rows)-2 {
		t.Errorf("profile-guided traces beat heuristic on only %d/%d programs", profWins, len(rows))
	}
	if out := RenderTraceStudy(rows); !strings.Contains(out, "PROFILE") {
		t.Error("render missing header")
	}
}

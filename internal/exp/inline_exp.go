package exp

import (
	"fmt"
	"strings"

	"branchprof/internal/breaks"
	"branchprof/internal/engine"
	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/workloads"
)

// InlineRow is the inlining ablation for one run: instructions per
// break with direct calls and returns counted as breaks, under each
// image's own self prediction, for the plain and the inlined
// compilation. The paper's Figure 1 approximates inlining by simply
// not counting call breaks; this experiment performs the inlining and
// measures what actually remains.
type InlineRow struct {
	Program       string
	Dataset       string
	PlainIPB      float64
	InlinedIPB    float64
	PlainCalls    uint64 // direct calls executed
	InlinedCalls  uint64
	PlainInstrs   uint64
	InlinedInstrs uint64
}

// Speedup is the instrs/break improvement from real inlining.
func (r InlineRow) Speedup() float64 {
	if r.PlainIPB == 0 {
		return 0
	}
	return r.InlinedIPB / r.PlainIPB
}

// InlineAblation compiles every workload with and without the
// inliner and measures the first dataset.
func InlineAblation() ([]InlineRow, error) {
	var rows []InlineRow
	eng := Engine()
	pol := breaks.Policy{PredictBranches: true, IncludeDirectCalls: true}
	measure := func(w *workloads.Workload, opts mfc.Options, input []byte) (float64, uint64, uint64, error) {
		out, err := eng.Execute(engine.Spec{
			Name: w.Name, Source: w.Source, Options: opts,
			Dataset: w.Datasets[0].Name, Input: input,
		})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("exp: inline ablation measuring %s: %w", w.Name, err)
		}
		pred, err := predict.FromProfile(out.Prof, out.Prog.Sites, predict.LoopHeuristic)
		if err != nil {
			return 0, 0, 0, err
		}
		ev, err := predict.Evaluate(pred, out.Prof)
		if err != nil {
			return 0, 0, 0, err
		}
		bd := breaks.Count(out.Res, ev.Mispredicts, pol)
		return bd.InstrsPerBreak(), out.Res.DirectCalls, out.Res.Instrs, nil
	}
	for _, w := range workloads.All() {
		input := w.Datasets[0].Gen()
		plainIPB, plainCalls, plainInstrs, err := measure(w, mfc.Options{}, input)
		if err != nil {
			return nil, err
		}
		inlIPB, inlCalls, inlInstrs, err := measure(w, mfc.Options{InlineCalls: true}, input)
		if err != nil {
			return nil, err
		}
		rows = append(rows, InlineRow{
			Program: w.Name, Dataset: w.Datasets[0].Name,
			PlainIPB: plainIPB, InlinedIPB: inlIPB,
			PlainCalls: plainCalls, InlinedCalls: inlCalls,
			PlainInstrs: plainInstrs, InlinedInstrs: inlInstrs,
		})
	}
	return rows, nil
}

// RenderInlineAblation formats the ablation.
func RenderInlineAblation(rows []InlineRow) string {
	var b strings.Builder
	b.WriteString("Extension: inlining ablation (instrs/break with call breaks counted, self prediction)\n")
	fmt.Fprintf(&b, "%-12s %-12s %9s %9s %8s %10s %10s\n",
		"PROGRAM", "DATASET", "PLAIN", "INLINED", "GAIN", "CALLS", "CALLS-INL")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %9.0f %9.0f %7.2fx %10d %10d\n",
			r.Program, r.Dataset, r.PlainIPB, r.InlinedIPB, r.Speedup(),
			r.PlainCalls, r.InlinedCalls)
	}
	return b.String()
}

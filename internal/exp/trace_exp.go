package exp

import (
	"fmt"
	"strings"

	"branchprof/internal/cfg"
	"branchprof/internal/engine"
	"branchprof/internal/predict"
	"branchprof/internal/vm"
)

// TraceRow measures what the predictions are *for*: the traces a
// Fisher-style trace-scheduling compiler would select. For each
// program's first dataset it reports the execution-weighted mean
// trace length in instructions under three regimes:
//
//   - Block: no trace growth at all (basic blocks only) — the
//     paper's "A compiler trying to extract ILP from blocks this size
//     might have a difficult time";
//   - Heuristic: traces grown along the loop/non-loop heuristic's
//     predicted directions;
//   - Profile: traces grown along the measured edge weights (what
//     feedback-directed trace selection sees).
type TraceRow struct {
	Program   string
	Dataset   string
	Block     float64
	Heuristic float64
	Profile   float64
}

// TraceStudy rebuilds every function's CFG from the compiled code,
// attaches the run's exact counts, and runs trace selection under
// each regime. Programs are measured concurrently with preassigned
// row slots, so the table order matches a serial pass exactly.
func TraceStudy(s *Suite) ([]TraceRow, error) {
	rows := make([]TraceRow, len(s.Programs))
	eng := Engine()
	perr := eng.Parallel(len(s.Programs), func(pi int) error {
		p := s.Programs[pi]
		first := p.Runs[0]
		out, err := eng.Execute(engine.Spec{
			Name: p.Workload.Name, Source: p.Workload.Source,
			Dataset: first.Dataset, Input: p.InputFor(first),
			Config: vm.Config{PerPC: true},
		})
		if err != nil {
			return fmt.Errorf("exp: trace study measuring %s: %w", p.Workload.Name, err)
		}
		res := out.Res
		heurDirs := make([]bool, len(p.Prog.Sites))
		for i, site := range p.Prog.Sites {
			heurDirs[i] = predict.LoopHeuristic(site) == predict.Taken
		}

		var blockNum, blockDen float64
		var heurTraces, profTraces []cfg.Trace
		for fi := range p.Prog.Funcs {
			g, err := cfg.Build(p.Prog, fi)
			if err != nil {
				return err
			}
			g.AttachRunCounts(p.Prog, fi, res.PerPC[fi], res.SiteTaken, res.SiteTotal)
			for _, b := range g.Blocks {
				blockNum += float64(b.Count) * float64(b.Instrs())
				blockDen += float64(b.Count)
			}
			profTraces = append(profTraces, g.SelectTraces()...)

			// Re-weight the same graph with heuristic directions.
			g.AttachPrediction(p.Prog, fi, heurDirs)
			heurTraces = append(heurTraces, g.SelectTraces()...)
		}
		row := TraceRow{Program: p.Workload.Name, Dataset: first.Dataset}
		if blockDen > 0 {
			row.Block = blockNum / blockDen
		}
		row.Heuristic = cfg.WeightedMeanLength(heurTraces)
		row.Profile = cfg.WeightedMeanLength(profTraces)
		rows[pi] = row
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	return rows, nil
}

// RenderTraceStudy formats the study.
func RenderTraceStudy(rows []TraceRow) string {
	var b strings.Builder
	b.WriteString("Extension: trace selection — weighted mean trace length (instructions)\n")
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s %10s %8s\n",
		"PROGRAM", "DATASET", "BLOCK", "HEURISTIC", "PROFILE", "GAIN")
	for _, r := range rows {
		gain := 0.0
		if r.Block > 0 {
			gain = r.Profile / r.Block
		}
		fmt.Fprintf(&b, "%-12s %-12s %10.1f %10.1f %10.1f %7.1fx\n",
			r.Program, r.Dataset, r.Block, r.Heuristic, r.Profile, gain)
	}
	return b.String()
}

package exp

import (
	"fmt"
	"strings"

	"branchprof/internal/engine"
	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// SelectRow quantifies footnote 2 of the paper: when the compiler
// if-converts simple ifs into select instructions, what fraction of
// executed instructions are selects ("typically less than 0.2%,
// sometimes up to 0.3%, and in one case 0.7%"), and how many static
// branch sites disappear.
type SelectRow struct {
	Program     string
	Dataset     string
	SelectPct   float64 // selects / executed instructions
	SitesPlain  int
	SitesSelect int
	BranchesCut float64 // fraction of executed branches removed
}

// SelectStudy compiles each workload with if-conversion and measures
// its first dataset.
func SelectStudy() ([]SelectRow, error) {
	var rows []SelectRow
	eng := Engine()
	for _, w := range workloads.All() {
		input := w.Datasets[0].Gen()
		plain, err := eng.Execute(engine.Spec{
			Name: w.Name, Source: w.Source, Dataset: w.Datasets[0].Name, Input: input,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: select study measuring %s: %w", w.Name, err)
		}
		sel, err := eng.Execute(engine.Spec{
			Name: w.Name, Source: w.Source, Dataset: w.Datasets[0].Name, Input: input,
			Options: mfc.Options{UseSelects: true},
			Config:  vm.Config{PerPC: true},
		})
		if err != nil {
			return nil, fmt.Errorf("exp: select study measuring %s (selects): %w", w.Name, err)
		}
		var selects uint64
		for fi := range sel.Prog.Funcs {
			for pc, in := range sel.Prog.Funcs[fi].Code {
				if in.Op == isa.OpSel || in.Op == isa.OpFSel {
					selects += sel.Res.PerPC[fi][pc]
				}
			}
		}
		row := SelectRow{
			Program: w.Name, Dataset: w.Datasets[0].Name,
			SitesPlain:  len(plain.Prog.Sites),
			SitesSelect: len(sel.Prog.Sites),
		}
		if sel.Res.Instrs > 0 {
			row.SelectPct = float64(selects) / float64(sel.Res.Instrs)
		}
		if pb := plain.Res.CondBranches(); pb > 0 {
			row.BranchesCut = 1 - float64(sel.Res.CondBranches())/float64(pb)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSelectStudy formats the study.
func RenderSelectStudy(rows []SelectRow) string {
	var b strings.Builder
	b.WriteString("Extension: if-conversion to selects (paper footnote 2)\n")
	fmt.Fprintf(&b, "%-12s %-12s %9s %10s %11s %12s\n",
		"PROGRAM", "DATASET", "SELECT%", "SITES", "SITES-SEL", "BRANCHES-CUT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %8.2f%% %10d %11d %11.1f%%\n",
			r.Program, r.Dataset, 100*r.SelectPct, r.SitesPlain, r.SitesSelect, 100*r.BranchesCut)
	}
	return b.String()
}

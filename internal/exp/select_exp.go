package exp

import (
	"fmt"
	"strings"

	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/vm"
	"branchprof/internal/workloads"
)

// SelectRow quantifies footnote 2 of the paper: when the compiler
// if-converts simple ifs into select instructions, what fraction of
// executed instructions are selects ("typically less than 0.2%,
// sometimes up to 0.3%, and in one case 0.7%"), and how many static
// branch sites disappear.
type SelectRow struct {
	Program     string
	Dataset     string
	SelectPct   float64 // selects / executed instructions
	SitesPlain  int
	SitesSelect int
	BranchesCut float64 // fraction of executed branches removed
}

// SelectStudy compiles each workload with if-conversion and measures
// its first dataset.
func SelectStudy() ([]SelectRow, error) {
	var rows []SelectRow
	for _, w := range workloads.All() {
		input := w.Datasets[0].Gen()
		plainProg, err := mfc.Compile(w.Name, w.Source, mfc.Options{})
		if err != nil {
			return nil, fmt.Errorf("exp: select study compiling %s: %w", w.Name, err)
		}
		selProg, err := mfc.Compile(w.Name, w.Source, mfc.Options{UseSelects: true})
		if err != nil {
			return nil, fmt.Errorf("exp: select study compiling %s (selects): %w", w.Name, err)
		}
		plain, err := vm.Run(plainProg, input, nil)
		if err != nil {
			return nil, fmt.Errorf("exp: select study running %s: %w", w.Name, err)
		}
		res, err := vm.Run(selProg, input, &vm.Config{PerPC: true})
		if err != nil {
			return nil, fmt.Errorf("exp: select study running %s (selects): %w", w.Name, err)
		}
		var selects uint64
		for fi := range selProg.Funcs {
			for pc, in := range selProg.Funcs[fi].Code {
				if in.Op == isa.OpSel || in.Op == isa.OpFSel {
					selects += res.PerPC[fi][pc]
				}
			}
		}
		row := SelectRow{
			Program: w.Name, Dataset: w.Datasets[0].Name,
			SitesPlain:  len(plainProg.Sites),
			SitesSelect: len(selProg.Sites),
		}
		if res.Instrs > 0 {
			row.SelectPct = float64(selects) / float64(res.Instrs)
		}
		if pb := plain.CondBranches(); pb > 0 {
			row.BranchesCut = 1 - float64(res.CondBranches())/float64(pb)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSelectStudy formats the study.
func RenderSelectStudy(rows []SelectRow) string {
	var b strings.Builder
	b.WriteString("Extension: if-conversion to selects (paper footnote 2)\n")
	fmt.Fprintf(&b, "%-12s %-12s %9s %10s %11s %12s\n",
		"PROGRAM", "DATASET", "SELECT%", "SITES", "SITES-SEL", "BRANCHES-CUT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %8.2f%% %10d %11d %11.1f%%\n",
			r.Program, r.Dataset, 100*r.SelectPct, r.SitesPlain, r.SitesSelect, 100*r.BranchesCut)
	}
	return b.String()
}

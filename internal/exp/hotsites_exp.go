package exp

import (
	"fmt"
	"sort"
	"strings"

	"branchprof/internal/predict"
)

// HotSiteRow identifies the static branches that cost the most under
// the paper's recommended predictor (scaled sum of other datasets;
// self when there is only one). This is the diagnostic a compiler
// writer would reach for after seeing a bad instructions-per-break
// number: which source branches are responsible, and are they
// intrinsically unpredictable or merely mistrained?
type HotSiteRow struct {
	Program     string
	Dataset     string
	Func        string
	Line, Col   int
	Label       string
	Executed    uint64
	Mispredicts uint64
	// Intrinsic is the oracle's mispredicts at this site — the part
	// no static predictor can remove.
	Intrinsic uint64
}

// HotSites returns, for each program's first dataset, the topN sites
// by mispredicts under the cross-dataset predictor.
func HotSites(s *Suite, topN int) ([]HotSiteRow, error) {
	var rows []HotSiteRow
	for _, p := range s.Programs {
		r := p.Runs[0]
		var pred *predict.Prediction
		var err error
		if p.Multi() {
			pred, err = predict.Combine(p.OtherProfiles(0), predict.Scaled, p.Prog.Sites, predict.LoopHeuristic)
		} else {
			pred, err = selfPrediction(p, r)
		}
		if err != nil {
			return nil, err
		}
		per, err := predict.EvaluatePerSite(pred, r.Prof, p.Prog.Sites)
		if err != nil {
			return nil, err
		}
		sort.Slice(per, func(i, j int) bool { return per[i].Mispredicts > per[j].Mispredicts })
		for i := 0; i < topN && i < len(per); i++ {
			se := per[i]
			if se.Mispredicts == 0 {
				break
			}
			intrinsic := r.Prof.Taken[se.Site.ID]
			if notTaken := r.Prof.Total[se.Site.ID] - intrinsic; notTaken < intrinsic {
				intrinsic = notTaken
			}
			rows = append(rows, HotSiteRow{
				Program: p.Workload.Name, Dataset: r.Dataset,
				Func: se.Site.Func, Line: se.Site.Line, Col: se.Site.Col,
				Label:    se.Site.Label,
				Executed: se.Executed, Mispredicts: se.Mispredicts,
				Intrinsic: intrinsic,
			})
		}
	}
	return rows, nil
}

// RenderHotSites formats the diagnostic.
func RenderHotSites(rows []HotSiteRow) string {
	var b strings.Builder
	b.WriteString("Diagnostic: hottest mispredicting branches (cross-dataset predictor)\n")
	fmt.Fprintf(&b, "%-12s %-22s %-10s %10s %10s %10s\n",
		"PROGRAM", "SITE", "KIND", "EXECUTED", "MISPRED", "INTRINSIC")
	last := ""
	for _, r := range rows {
		name := r.Program
		if name == last {
			name = ""
		} else {
			last = name
		}
		site := fmt.Sprintf("%s:%d:%d", r.Func, r.Line, r.Col)
		fmt.Fprintf(&b, "%-12s %-22s %-10s %10d %10d %10d\n",
			name, site, r.Label, r.Executed, r.Mispredicts, r.Intrinsic)
	}
	return b.String()
}

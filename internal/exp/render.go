package exp

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTable1 formats the dead-code table, sorted ascending like the
// paper's presentation.
func RenderTable1(rows []DeadCodeRow) string {
	sorted := append([]DeadCodeRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DeadPct < sorted[j].DeadPct })
	var b strings.Builder
	b.WriteString("Table 1. Dynamically dead code the compiler would eliminate\n")
	fmt.Fprintf(&b, "%-12s %-10s %6s %14s %14s\n", "PROGRAM", "DATASET", "DEAD", "INSTRS(plain)", "INSTRS(dce)")
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-12s %-10s %5.0f%% %14d %14d\n", r.Program, r.Dataset, 100*r.DeadPct, r.Plain, r.DCE)
	}
	return b.String()
}

// RenderTable2 formats the program inventory.
func RenderTable2(rows []InventoryRow) string {
	var b strings.Builder
	b.WriteString("Table 2. The programs tested and their datasets\n")
	fmt.Fprintf(&b, "%-12s %-12s %-28s %s\n", "PROGRAM", "CLASS", "DATASETS", "DESCRIPTION")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %-28s %s\n", r.Program, r.Class, strings.Join(r.Datasets, ","), r.Desc)
	}
	return b.String()
}

// RenderTable3 formats the low-variability FORTRAN results.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3. Instructions/break (FORTRAN programs, self prediction)\n")
	fmt.Fprintf(&b, "%-12s %-10s %12s\n", "PROGRAM", "DATASET", "INSTRS/BREAK")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10s %12.0f\n", r.Program, r.Dataset, r.InstrsPerBreak)
	}
	return b.String()
}

// RenderFigure1 formats one Figure 1 panel.
func RenderFigure1(title string, rows []Fig1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: instructions per break, no prediction\n", title)
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s\n", "PROGRAM", "DATASET", "NO-CALLS", "W/CALLS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %10.1f %10.1f\n", r.Program, r.Dataset, r.NoCalls, r.WithCalls)
	}
	return b.String()
}

// RenderFigure2 formats one Figure 2 panel.
func RenderFigure2(title string, rows []Fig2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: instructions per break, predicted\n", title)
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s %8s %8s\n", "PROGRAM", "DATASET", "SELF", "OTHERS", "SELF%", "OTHERS%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %10.0f %10.0f %7.1f%% %7.1f%%\n",
			r.Program, r.Dataset, r.Self, r.Others, 100*r.SelfPct, 100*r.OthersPct)
	}
	return b.String()
}

// RenderFigure3 formats one Figure 3 panel.
func RenderFigure3(title string, rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: best/worst single other dataset as %% of self\n", title)
	fmt.Fprintf(&b, "%-12s %-12s %10s %6s %-12s %6s %-12s\n", "PROGRAM", "DATASET", "SELF-IPB", "BEST", "(ds)", "WORST", "(ds)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %10.0f %5.0f%% %-12s %5.0f%% %-12s\n",
			r.Program, r.Dataset, r.SelfIPB, r.BestPct, r.BestDS, r.WorstPct, r.WorstDS)
	}
	return b.String()
}

// RenderTaken formats the percent-taken constancy observation.
func RenderTaken(rows []TakenRow) string {
	var b strings.Builder
	b.WriteString("Branch percent taken as a program constant\n")
	fmt.Fprintf(&b, "%-12s %7s %-12s %7s %-12s %7s\n", "PROGRAM", "MIN", "(ds)", "MAX", "(ds)", "SPREAD")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6.1f%% %-12s %6.1f%% %-12s %6.1fpp\n",
			r.Program, 100*r.MinPct, r.MinDS, 100*r.MaxPct, r.MaxDS, r.Spread())
	}
	return b.String()
}

// RenderCombined formats the combination-mode comparison.
func RenderCombined(rows []CombinedRow) string {
	var b strings.Builder
	b.WriteString("Scaled vs unscaled vs polling summary predictors (instrs/break)\n")
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s %10s\n", "PROGRAM", "DATASET", "SCALED", "UNSCALED", "POLLING")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %10.0f %10.0f %10.0f\n", r.Program, r.Dataset, r.Scaled, r.Unscaled, r.Polling)
	}
	return b.String()
}

// RenderHeuristic formats the heuristics comparison.
func RenderHeuristic(rows []HeuristicRow) string {
	var b strings.Builder
	b.WriteString("Profile feedback vs simple heuristics (instrs/break)\n")
	fmt.Fprintf(&b, "%-12s %-12s %9s %9s %9s %9s %7s\n", "PROGRAM", "DATASET", "PROFILE", "LOOP", "TAKEN", "NOTTAKEN", "FACTOR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %9.0f %9.0f %9.0f %9.0f %6.1fx\n",
			r.Program, r.Dataset, r.Profile, r.LoopHeur, r.AlwaysTaken, r.AlwaysNot, r.Factor())
	}
	return b.String()
}

// RenderMotivation formats the fpppp/li contrast.
func RenderMotivation(rows []MotivationRow) string {
	var b strings.Builder
	b.WriteString("Why percent-correct is the wrong measure (fpppp vs li)\n")
	fmt.Fprintf(&b, "%-8s %-8s %9s %14s %14s\n", "PROGRAM", "DATASET", "CORRECT", "INSTRS/BRANCH", "INSTRS/MISPRED")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %8.1f%% %14.1f %14.0f\n",
			r.Program, r.Dataset, 100*r.PctCorrect, r.InstrsPerBranch, r.InstrsPerMispred)
	}
	return b.String()
}

// RenderCoverageSummary formats a suite's coverage annotation: a
// one-line summary, then one line per failed matrix cell. Tools print
// it ahead of the reports whenever a degraded collection came back
// partial, so a reader always knows which cells are missing from the
// tables below.
func RenderCoverageSummary(s *Suite) string {
	var b strings.Builder
	b.WriteString(s.CoverageSummary().String())
	b.WriteByte('\n')
	for _, ce := range s.Errors {
		fmt.Fprintf(&b, "  failed cell %s/%s: %v\n", ce.Workload, ce.Dataset, ce.Err)
	}
	return b.String()
}

// RenderCrossMode formats the compress/uncompress observation.
func RenderCrossMode(rows []CrossModeRow) string {
	var b strings.Builder
	b.WriteString("compress predicted by its own mode vs the other mode (instrs/break)\n")
	fmt.Fprintf(&b, "%-20s %-24s %10s\n", "TARGET", "PREDICTOR", "IPB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-24s %10.0f\n", r.Target, r.Predictor, r.IPB)
	}
	return b.String()
}

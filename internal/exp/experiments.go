package exp

import (
	"bytes"
	"fmt"
	"math"

	"branchprof/internal/breaks"
	"branchprof/internal/engine"
	"branchprof/internal/ifprob"
	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/workloads"
)

// ipb evaluates a prediction against the run and returns instructions
// per break (mispredicted branches + unavoidable transfers).
func ipb(r *Run, pr *predict.Prediction) (float64, error) {
	v, _, err := breaks.WithPrediction(r.Res, r.Prof, pr)
	return v, err
}

// pctOf is v/self as a fraction, defined at the +Inf sentinel a
// break-free run produces (breaks.InstrsPerBreak): when both
// predictor and self are break-free the predictor is perfect (1);
// a finite predictor against an infinite self contributes 0 rather
// than NaN/Inf reaching a report writer.
func pctOf(v, self float64) float64 {
	if math.IsInf(self, 1) {
		if math.IsInf(v, 1) {
			return 1
		}
		return 0
	}
	return v / self
}

// selfPrediction is the oracle: the run predicts itself.
func selfPrediction(p *ProgramRuns, r *Run) (*predict.Prediction, error) {
	return predict.FromProfile(r.Prof, p.Prog.Sites, predict.LoopHeuristic)
}

// ---- Table 1: dynamically dead code ----

// DeadCodeRow is one Table 1 entry: how much dynamic execution the
// compiler's dead-branch elimination would have removed — code the
// paper (and we) must leave in to keep branch numbering in sync.
type DeadCodeRow struct {
	Program string
	Dataset string
	Plain   uint64 // instructions with dead branches left in
	DCE     uint64 // instructions with dead-branch elimination on
	DeadPct float64
	// OutputsEqual confirms the two compilations behaved identically —
	// the paper's premise that the dead code "always goes in one
	// direction" and never changes results.
	OutputsEqual bool
}

// Table1 measures each workload's first dataset under both compiler
// configurations (the paper's double compile: once plain, once with
// dead-branch elimination). Both measurements route through the
// engine, so repeated table generations — and the plain half, which
// the suite collection also needs — are served from cache.
func Table1() ([]DeadCodeRow, error) {
	eng := Engine()
	var rows []DeadCodeRow
	for _, w := range workloads.All() {
		ds := w.Datasets[0]
		input := ds.Gen()
		plain, err := eng.Execute(engine.Spec{
			Name: w.Name, Source: w.Source, Dataset: ds.Name, Input: input,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: table1 measuring %s: %w", w.Name, err)
		}
		dce, err := eng.Execute(engine.Spec{
			Name: w.Name, Source: w.Source, Dataset: ds.Name, Input: input,
			Options: mfc.Options{DeadBranchElim: true},
		})
		if err != nil {
			return nil, fmt.Errorf("exp: table1 measuring %s (DCE): %w", w.Name, err)
		}
		dead := 0.0
		if plain.Res.Instrs > 0 && dce.Res.Instrs < plain.Res.Instrs {
			dead = 1 - float64(dce.Res.Instrs)/float64(plain.Res.Instrs)
		}
		rows = append(rows, DeadCodeRow{
			Program: w.Name, Dataset: ds.Name,
			Plain: plain.Res.Instrs, DCE: dce.Res.Instrs, DeadPct: dead,
			OutputsEqual: bytes.Equal(plain.Res.Output, dce.Res.Output) && plain.Res.ExitCode == dce.Res.ExitCode,
		})
	}
	return rows, nil
}

// ---- Table 2: the program sample base ----

// InventoryRow describes one workload for the Table 2 report.
type InventoryRow struct {
	Program  string
	Class    string
	Desc     string
	Datasets []string
}

// Table2 lists the sample base.
func Table2() []InventoryRow {
	var rows []InventoryRow
	for _, w := range workloads.All() {
		r := InventoryRow{Program: w.Name, Class: w.Lang.String(), Desc: w.Desc}
		for _, ds := range w.Datasets {
			r.Datasets = append(r.Datasets, ds.Name)
		}
		rows = append(rows, r)
	}
	return rows
}

// ---- Table 3: FORTRAN programs with little dataset variability ----

// table3Programs is the fixed set the paper lists.
var table3Programs = []string{"tomcatv", "matrix300", "nasa7", "fpppp", "lfk", "doduc"}

// Table3Row is instructions per break under the best possible (self)
// prediction.
type Table3Row struct {
	Program        string
	Dataset        string
	InstrsPerBreak float64
}

// Table3 computes the self-predicted instructions per break for the
// low-variability FORTRAN programs.
func Table3(s *Suite) ([]Table3Row, error) {
	defer s.span("predict.table3").End()
	var rows []Table3Row
	for _, name := range table3Programs {
		p, err := s.program(name)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		for _, r := range p.Runs {
			pr, err := selfPrediction(p, r)
			if err != nil {
				return nil, err
			}
			v, err := ipb(r, pr)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table3Row{Program: name, Dataset: r.Dataset, InstrsPerBreak: v})
		}
	}
	return rows, nil
}

// ---- Figure 1: instructions per break with no prediction ----

// Fig1Row reports breaks with every conditional branch counted: the
// black bar excludes direct call/return breaks, the white bar
// includes them.
type Fig1Row struct {
	Program   string
	Dataset   string
	NoCalls   float64 // black bar
	WithCalls float64 // white bar
}

// Figure1 computes the unpredicted break densities for one language
// class.
func Figure1(s *Suite, lang workloads.Lang) []Fig1Row {
	defer s.span("predict.figure1").End()
	var rows []Fig1Row
	for _, p := range s.Programs {
		if p.Workload.Lang != lang {
			continue
		}
		for _, r := range p.Runs {
			rows = append(rows, Fig1Row{
				Program:   p.Workload.Name,
				Dataset:   r.Dataset,
				NoCalls:   breaks.Unpredicted(r.Res, false),
				WithCalls: breaks.Unpredicted(r.Res, true),
			})
		}
	}
	return rows
}

// ---- Figure 2: best possible vs sum-of-others prediction ----

// Fig2Row compares the self oracle (black bar) against the scaled sum
// of all other datasets (white bar), in instructions per mispredicted
// break.
type Fig2Row struct {
	Program   string
	Dataset   string
	Self      float64
	Others    float64
	SelfPct   float64 // percent branches correct under self
	OthersPct float64 // percent branches correct under others
}

// Figure2 runs the comparison for the named programs (the paper shows
// spice2g6 in 2a and the C programs in 2b). Programs with a single
// dataset are skipped — there are no "other datasets" to sum.
func Figure2(s *Suite, programs []string) ([]Fig2Row, error) {
	defer s.span("predict.figure2").End()
	var rows []Fig2Row
	for _, name := range programs {
		p, err := s.program(name)
		if err != nil {
			return nil, err
		}
		if p == nil || !p.Multi() {
			continue
		}
		for i, r := range p.Runs {
			selfPred, err := selfPrediction(p, r)
			if err != nil {
				return nil, err
			}
			otherPred, err := predict.Combine(p.OtherProfiles(i), predict.Scaled, p.Prog.Sites, predict.LoopHeuristic)
			if err != nil {
				return nil, err
			}
			selfIPB, err := ipb(r, selfPred)
			if err != nil {
				return nil, err
			}
			otherIPB, err := ipb(r, otherPred)
			if err != nil {
				return nil, err
			}
			selfEval, err := predict.Evaluate(selfPred, r.Prof)
			if err != nil {
				return nil, err
			}
			otherEval, err := predict.Evaluate(otherPred, r.Prof)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig2Row{
				Program: name, Dataset: r.Dataset,
				Self: selfIPB, Others: otherIPB,
				SelfPct:   selfEval.PercentCorrect(),
				OthersPct: otherEval.PercentCorrect(),
			})
		}
	}
	return rows, nil
}

// CProgramNames returns the multi-dataset C-class programs in report
// order (the population of figures 2b and 3b).
func CProgramNames(s *Suite) []string {
	var names []string
	for _, p := range s.Programs {
		if p.Workload.Lang == workloads.C && p.Multi() {
			names = append(names, p.Workload.Name)
		}
	}
	return names
}

// ---- Figure 3: best and worst single-dataset predictors ----

// Fig3Row reports, for each target dataset, how close the best and
// worst other single dataset come to the self oracle (as percentages
// of the self instructions-per-break).
type Fig3Row struct {
	Program  string
	Dataset  string
	SelfIPB  float64
	BestPct  float64
	BestDS   string
	WorstPct float64
	WorstDS  string
}

// Figure3 computes the pairwise prediction matrix for the named
// programs.
func Figure3(s *Suite, programs []string) ([]Fig3Row, error) {
	defer s.span("predict.figure3").End()
	var rows []Fig3Row
	for _, name := range programs {
		p, err := s.program(name)
		if err != nil {
			return nil, err
		}
		if p == nil || !p.Multi() {
			continue
		}
		for i, r := range p.Runs {
			selfPred, err := selfPrediction(p, r)
			if err != nil {
				return nil, err
			}
			selfIPB, err := ipb(r, selfPred)
			if err != nil {
				return nil, err
			}
			row := Fig3Row{Program: name, Dataset: r.Dataset, SelfIPB: selfIPB, BestPct: -1, WorstPct: -1}
			for j, other := range p.Runs {
				if j == i {
					continue
				}
				pr, err := predict.FromProfile(other.Prof, p.Prog.Sites, predict.LoopHeuristic)
				if err != nil {
					return nil, err
				}
				v, err := ipb(r, pr)
				if err != nil {
					return nil, err
				}
				pct := 100 * pctOf(v, selfIPB)
				if row.BestPct < 0 || pct > row.BestPct {
					row.BestPct, row.BestDS = pct, other.Dataset
				}
				if row.WorstPct < 0 || pct < row.WorstPct {
					row.WorstPct, row.WorstDS = pct, other.Dataset
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Informal observation: percent taken as a program constant ----

// TakenRow is the per-program spread of the percent-taken measure.
type TakenRow struct {
	Program string
	MinPct  float64
	MinDS   string
	MaxPct  float64
	MaxDS   string
}

// Spread is the max-min difference in percentage points.
func (t TakenRow) Spread() float64 { return 100 * (t.MaxPct - t.MinPct) }

// TakenConstancy measures percent-taken across every multi-dataset
// program.
func TakenConstancy(s *Suite) []TakenRow {
	var rows []TakenRow
	for _, p := range s.Programs {
		if !p.Multi() {
			continue
		}
		row := TakenRow{Program: p.Workload.Name, MinPct: 2}
		for _, r := range p.Runs {
			pct := r.Prof.PercentTaken()
			if pct < row.MinPct {
				row.MinPct, row.MinDS = pct, r.Dataset
			}
			if pct > row.MaxPct {
				row.MaxPct, row.MaxDS = pct, r.Dataset
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// ---- Informal observation: scaled vs unscaled vs polling ----

// CombinedRow compares the three sum-of-others combination modes on
// one target dataset, in instructions per break.
type CombinedRow struct {
	Program  string
	Dataset  string
	Scaled   float64
	Unscaled float64
	Polling  float64
}

// CombinedComparison evaluates every combination mode everywhere.
func CombinedComparison(s *Suite) ([]CombinedRow, error) {
	defer s.span("predict.combined").End()
	var rows []CombinedRow
	for _, p := range s.Programs {
		if !p.Multi() {
			continue
		}
		for i, r := range p.Runs {
			row := CombinedRow{Program: p.Workload.Name, Dataset: r.Dataset}
			for _, mode := range []predict.CombineMode{predict.Scaled, predict.Unscaled, predict.Polling} {
				pr, err := predict.Combine(p.OtherProfiles(i), mode, p.Prog.Sites, predict.LoopHeuristic)
				if err != nil {
					return nil, err
				}
				v, err := ipb(r, pr)
				if err != nil {
					return nil, err
				}
				switch mode {
				case predict.Scaled:
					row.Scaled = v
				case predict.Unscaled:
					row.Unscaled = v
				case predict.Polling:
					row.Polling = v
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Informal observation: simple heuristics lose about 2x ----

// HeuristicRow compares profile feedback against static heuristics on
// one dataset, in instructions per break.
type HeuristicRow struct {
	Program     string
	Dataset     string
	Profile     float64 // scaled sum of other datasets (self when only one)
	LoopHeur    float64
	AlwaysTaken float64
	AlwaysNot   float64
}

// Factor is how many times better profile feedback is than the loop
// heuristic.
func (h HeuristicRow) Factor() float64 {
	if h.LoopHeur == 0 {
		return 0
	}
	// A zero-branch run makes both sides +Inf; report the ratio as 1
	// (equally perfect) instead of NaN.
	return pctOf(h.Profile, h.LoopHeur)
}

// HeuristicComparison evaluates heuristic predictors everywhere.
func HeuristicComparison(s *Suite) ([]HeuristicRow, error) {
	defer s.span("predict.heuristics").End()
	var rows []HeuristicRow
	for _, p := range s.Programs {
		for i, r := range p.Runs {
			var profPred *predict.Prediction
			var err error
			if p.Multi() {
				profPred, err = predict.Combine(p.OtherProfiles(i), predict.Scaled, p.Prog.Sites, predict.LoopHeuristic)
			} else {
				profPred, err = selfPrediction(p, r)
			}
			if err != nil {
				return nil, err
			}
			row := HeuristicRow{Program: p.Workload.Name, Dataset: r.Dataset}
			if row.Profile, err = ipb(r, profPred); err != nil {
				return nil, err
			}
			for _, h := range []struct {
				heur predict.Heuristic
				dst  *float64
			}{
				{predict.LoopHeuristic, &row.LoopHeur},
				{predict.AlwaysTaken, &row.AlwaysTaken},
				{predict.AlwaysNotTaken, &row.AlwaysNot},
			} {
				pr := predict.FromHeuristic(p.Prog.Sites, h.heur)
				if *h.dst, err = ipb(r, pr); err != nil {
					return nil, err
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Section 2 motivation: fpppp vs li ----

// MotivationRow reproduces the paper's opening observation: fpppp and
// li have nearly the same percent-correct, but wildly different
// branch densities, so percent-correct is the wrong measure.
type MotivationRow struct {
	Program          string
	Dataset          string
	PctCorrect       float64 // self prediction
	InstrsPerBranch  float64 // branch density
	InstrsPerMispred float64 // the measure that separates them
}

// Motivation computes the fpppp/li contrast.
func Motivation(s *Suite) ([]MotivationRow, error) {
	var rows []MotivationRow
	for _, name := range []string{"fpppp", "li"} {
		p, err := s.program(name)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue
		}
		r := p.Runs[0]
		pr, err := selfPrediction(p, r)
		if err != nil {
			return nil, err
		}
		ev, err := predict.Evaluate(pr, r.Prof)
		if err != nil {
			return nil, err
		}
		v, err := ipb(r, pr)
		if err != nil {
			return nil, err
		}
		density := float64(r.Res.Instrs)
		if cb := r.Res.CondBranches(); cb > 0 {
			density /= float64(cb)
		}
		rows = append(rows, MotivationRow{
			Program: name, Dataset: r.Dataset,
			PctCorrect:       ev.PercentCorrect(),
			InstrsPerBranch:  density,
			InstrsPerMispred: v,
		})
	}
	return rows, nil
}

// CrossModeCheck reproduces the compress/uncompress observation: the
// two modes of one binary do not predict each other. It returns
// instructions-per-break for compress's first dataset predicted by
// itself, by another compress dataset, and by the matching uncompress
// run of a different program image — since compress and uncompress
// here are separate registrations of the same source, we evaluate the
// uncompress profile against the compress run directly (site tables
// are identical).
type CrossModeRow struct {
	Target    string
	Predictor string
	IPB       float64
}

// CrossMode measures compress predicted by compress vs by uncompress.
// On a partial suite missing either mode (or the specific datasets the
// comparison is built on), the experiment is skipped with no rows.
func CrossMode(s *Suite) ([]CrossModeRow, error) {
	cp, err := s.program("compress")
	if err != nil {
		return nil, err
	}
	up, err := s.program("uncompress")
	if err != nil {
		return nil, err
	}
	if cp == nil || up == nil {
		return nil, nil
	}
	if s.Partial() && (len(cp.Runs) < 3 || len(up.Runs) < 1) {
		return nil, nil
	}
	target := cp.Runs[0]
	var rows []CrossModeRow
	add := func(label string, prof *ifprob.Profile) error {
		pr, err := predict.FromProfile(prof, cp.Prog.Sites, predict.LoopHeuristic)
		if err != nil {
			return err
		}
		v, err := ipb(target, pr)
		if err != nil {
			return err
		}
		rows = append(rows, CrossModeRow{Target: "compress/" + target.Dataset, Predictor: label, IPB: v})
		return nil
	}
	if err := add("self", target.Prof); err != nil {
		return nil, err
	}
	if err := add("compress/"+cp.Runs[2].Dataset, cp.Runs[2].Prof); err != nil {
		return nil, err
	}
	// The uncompress profile comes from the same source compiled under
	// the same options, so its site table lines up.
	uprof := up.Runs[0].Prof.Clone()
	uprof.Program = "compress"
	if err := add("uncompress/"+up.Runs[0].Dataset, uprof); err != nil {
		return nil, err
	}
	return rows, nil
}

package exp

import (
	"testing"

	"branchprof/internal/engine"
)

// studyRenders runs every parallelized study against the package
// engine and concatenates the rendered artifacts.
func studyRenders(t *testing.T, s *Suite) string {
	t.Helper()
	dyn, err := StaticVsDynamic(s)
	if err != nil {
		t.Fatal(err)
	}
	ipm, err := InstrsPerMispredict(s)
	if err != nil {
		t.Fatal(err)
	}
	h2p, err := H2PStudy(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RunLengths(s)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := Coverage(s)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	return RenderStaticVsDynamic(dyn) +
		RenderInstrsPerMispredict(ipm) +
		RenderH2P(h2p) +
		RenderRunLengths(rl) +
		RenderCoverage(cov) +
		RenderTraceStudy(tr)
}

// TestStudiesMatchSequential pins the parallelized experiment stages:
// every study must render byte-identically whether its per-program
// fan runs on one worker or sixteen. Slot preassignment — not
// scheduling luck — is what the studies rely on for ordering, and
// this is the regression gate for it.
func TestStudiesMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite study sweep in -short mode")
	}
	s := suite(t)
	prev := Engine()
	defer SetEngine(prev)

	SetEngine(engine.New(engine.Options{Workers: 1}))
	seq := studyRenders(t, s)
	SetEngine(engine.New(engine.Options{Workers: 16}))
	wide := studyRenders(t, s)
	if seq != wide {
		t.Fatal("parallel studies render differently from sequential")
	}
}

package exp

import (
	"math"
	"strings"
	"testing"
)

func TestChartFigure1(t *testing.T) {
	rows := []Fig1Row{
		{Program: "a", Dataset: "x", NoCalls: 100, WithCalls: 50},
		{Program: "b", Dataset: "y", NoCalls: 10, WithCalls: 5},
	}
	out := ChartFigure1("t", rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+4 {
		t.Fatalf("expected header + 4 bar lines, got %d:\n%s", len(lines), out)
	}
	// Largest value gets the full-width bar.
	if !strings.Contains(lines[2], strings.Repeat("#", chartWidth)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	// Smaller values get proportionally shorter bars.
	if strings.Count(lines[4], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
}

func TestChartHandlesInfAndZero(t *testing.T) {
	rows := []Fig2Row{
		{Program: "a", Dataset: "x", Self: math.Inf(1), Others: 0},
		{Program: "b", Dataset: "y", Self: 100, Others: 50},
	}
	out := ChartFigure2("t", rows)
	if strings.Count(out, "|") != 4 {
		t.Errorf("chart malformed:\n%s", out)
	}
}

func TestChartFigure3(t *testing.T) {
	rows := []Fig3Row{{Program: "p", Dataset: "d", SelfIPB: 40, BestPct: 100, WorstPct: 25}}
	out := ChartFigure3("t", rows)
	if !strings.Contains(out, "best other dataset") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Worst bar should be about a quarter of best.
	lines := strings.Split(out, "\n")
	best := strings.Count(lines[2], "#")
	worst := strings.Count(lines[3], ".")
	if worst < best/5 || worst > best/3 {
		t.Errorf("bar proportions off: best=%d worst=%d\n%s", best, worst, out)
	}
}

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
)

// encoding/json refuses NaN and ±Inf float64 values, and both occur
// legitimately in degraded or zero-branch reports: InstrsPerBreak is
// +Inf for a run with no breaks (see breaks.Breakdown), and ratios of
// two such sentinels can surface NaN. MarshalSafe and EncodeSafe are
// the render paths every JSON writer in this repository routes
// through: healthy values marshal byte-identically to encoding/json
// (the plain marshal is tried first), and only a document that
// actually trips the encoder is re-walked with the non-finite floats
// re-encoded as the strings "+Inf", "-Inf" and "NaN".

// MarshalSafe marshals v, falling back to the sanitized form when v
// contains non-finite floats.
func MarshalSafe(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err == nil {
		return b, nil
	}
	return json.Marshal(SafeJSON(v))
}

// EncodeSafe writes v to w as indented JSON, sanitizing non-finite
// floats if the plain encoding fails. Encoder.Encode buffers the whole
// document before writing, so a failed first attempt writes nothing.
func EncodeSafe(w io.Writer, v any, indent string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", indent)
	if err := enc.Encode(v); err == nil {
		return nil
	}
	enc2 := json.NewEncoder(w)
	enc2.SetIndent("", indent)
	return enc2.Encode(SafeJSON(v))
}

var jsonMarshalerType = reflect.TypeOf((*json.Marshaler)(nil)).Elem()

// SafeJSON returns a marshal-safe shadow of v: the same JSON shape
// (field names, json tags, omitempty) with every non-finite float
// replaced by its string name. Types that marshal themselves
// (json.Marshaler, e.g. time.Time) pass through untouched.
func SafeJSON(v any) any {
	return sanitizeJSON(reflect.ValueOf(v))
}

func sanitizeJSON(rv reflect.Value) any {
	if !rv.IsValid() {
		return nil
	}
	if rv.Type().Implements(jsonMarshalerType) {
		if rv.Kind() == reflect.Pointer && rv.IsNil() {
			return nil
		}
		return rv.Interface()
	}
	switch rv.Kind() {
	case reflect.Interface, reflect.Pointer:
		if rv.IsNil() {
			return nil
		}
		return sanitizeJSON(rv.Elem())
	case reflect.Float32, reflect.Float64:
		f := rv.Float()
		switch {
		case math.IsInf(f, 1):
			return "+Inf"
		case math.IsInf(f, -1):
			return "-Inf"
		case math.IsNaN(f):
			return "NaN"
		}
		return f
	case reflect.Slice:
		if rv.IsNil() {
			return nil
		}
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			// []byte marshals to base64; keep that encoding.
			return rv.Interface()
		}
		return sanitizeSeq(rv)
	case reflect.Array:
		return sanitizeSeq(rv)
	case reflect.Map:
		if rv.IsNil() {
			return nil
		}
		out := make(map[string]any, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			k := iter.Key()
			var ks string
			if k.Kind() == reflect.String {
				ks = k.String()
			} else {
				ks = fmt.Sprint(k.Interface())
			}
			out[ks] = sanitizeJSON(iter.Value())
		}
		return out
	case reflect.Struct:
		return sanitizeStruct(rv)
	default:
		return rv.Interface()
	}
}

func sanitizeSeq(rv reflect.Value) any {
	out := make([]any, rv.Len())
	for i := range out {
		out[i] = sanitizeJSON(rv.Index(i))
	}
	return out
}

// sanitizeStruct mirrors encoding/json's field selection: exported
// fields only, honouring the json tag's name, "-" and omitempty.
func sanitizeStruct(rv reflect.Value) any {
	t := rv.Type()
	out := make(map[string]any, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" {
			// Unexported: dropped, except an untagged embedded struct,
			// whose exported fields encoding/json promotes.
			if !f.Anonymous || f.Type.Kind() != reflect.Struct || hasJSONTag(f) {
				continue
			}
		}
		name := f.Name
		var omitempty bool
		if tag, ok := f.Tag.Lookup("json"); ok {
			parts := strings.Split(tag, ",")
			if parts[0] == "-" && len(parts) == 1 {
				continue
			}
			if parts[0] != "" {
				name = parts[0]
			}
			for _, p := range parts[1:] {
				if p == "omitempty" {
					omitempty = true
				}
			}
		}
		fv := rv.Field(i)
		if f.Anonymous && f.Type.Kind() == reflect.Struct && !hasJSONTag(f) {
			// Embedded struct: inline its fields, as encoding/json does.
			if inner, ok := sanitizeStruct(fv).(map[string]any); ok {
				for k, v := range inner {
					if _, taken := out[k]; !taken {
						out[k] = v
					}
				}
			}
			continue
		}
		if omitempty && isEmptyJSONValue(fv) {
			continue
		}
		out[name] = sanitizeJSON(fv)
	}
	return out
}

func hasJSONTag(f reflect.StructField) bool {
	_, ok := f.Tag.Lookup("json")
	return ok
}

// isEmptyJSONValue matches encoding/json's omitempty emptiness.
func isEmptyJSONValue(rv reflect.Value) bool {
	switch rv.Kind() {
	case reflect.Array, reflect.Map, reflect.Slice, reflect.String:
		return rv.Len() == 0
	case reflect.Bool:
		return !rv.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rv.Int() == 0
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return rv.Uint() == 0
	case reflect.Float32, reflect.Float64:
		return rv.Float() == 0
	case reflect.Interface, reflect.Pointer:
		return rv.IsNil()
	}
	return false
}

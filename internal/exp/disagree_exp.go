package exp

import (
	"fmt"
	"strings"

	"branchprof/internal/predict"
)

// The paper's authors "felt that when a dataset predictor did poorly,
// it was usually because it emphasized a different part of the program
// than the target dataset, rather than that the branches changed
// direction" — but could not find a measurable quantity confirming it.
// DisagreementStudy tests the hypothesis directly: for each target,
// take its *worst* single-dataset predictor (Figure 3's white bar) and
// split its excess mispredicts (beyond the self oracle's) by cause:
//
//   - unseen: the branch never executed under the predictor dataset,
//     so its direction came from the fallback heuristic — "a
//     different part of the program";
//   - flipped: the predictor saw the branch but its majority
//     direction there disagrees with the target's — "the branches
//     changed direction";
//   - residual: sites where predictor and target agree on the
//     majority direction (these mispredicts match the oracle's).

// DisagreeRow is the decomposition for one (target, worst predictor)
// pair.
type DisagreeRow struct {
	Program     string
	Target      string
	Predictor   string
	SelfMiss    uint64 // oracle mispredicts (lower bound)
	TotalMiss   uint64 // worst predictor's mispredicts
	UnseenMiss  uint64 // excess at sites the predictor never executed
	FlippedMiss uint64 // excess at sites whose majority flipped
}

// Excess is the mispredicts beyond the oracle's.
func (r DisagreeRow) Excess() uint64 { return r.TotalMiss - r.SelfMiss }

// UnseenShare is the fraction of the excess explained by unseen sites.
func (r DisagreeRow) UnseenShare() float64 {
	if ex := r.Excess(); ex > 0 {
		return float64(r.UnseenMiss) / float64(ex)
	}
	return 0
}

// DisagreementStudy decomposes the worst pair for every multi-dataset
// program's every target dataset.
func DisagreementStudy(s *Suite) ([]DisagreeRow, error) {
	var rows []DisagreeRow
	for _, p := range s.Programs {
		if !p.Multi() {
			continue
		}
		for i, target := range p.Runs {
			selfPred, err := selfPrediction(p, target)
			if err != nil {
				return nil, err
			}
			selfEval, err := predict.Evaluate(selfPred, target.Prof)
			if err != nil {
				return nil, err
			}
			// Find the worst single predictor for this target.
			var worst *Run
			var worstEval predict.Eval
			var worstPred *predict.Prediction
			for j, other := range p.Runs {
				if i == j {
					continue
				}
				pr, err := predict.FromProfile(other.Prof, p.Prog.Sites, predict.LoopHeuristic)
				if err != nil {
					return nil, err
				}
				ev, err := predict.Evaluate(pr, target.Prof)
				if err != nil {
					return nil, err
				}
				if worst == nil || ev.Mispredicts > worstEval.Mispredicts {
					worst, worstEval, worstPred = other, ev, pr
				}
			}
			row := DisagreeRow{
				Program: p.Workload.Name, Target: target.Dataset, Predictor: worst.Dataset,
				SelfMiss: selfEval.Mispredicts, TotalMiss: worstEval.Mispredicts,
			}
			// Attribute each site's excess mispredicts.
			for site := range target.Prof.Total {
				tt, tk := target.Prof.Total[site], target.Prof.Taken[site]
				if tt == 0 {
					continue
				}
				oracleMiss := min64(tk, tt-tk)
				var predMiss uint64
				if worstPred.Dir[site] == predict.Taken {
					predMiss = tt - tk
				} else {
					predMiss = tk
				}
				if predMiss <= oracleMiss {
					continue
				}
				excess := predMiss - oracleMiss
				if worst.Prof.Total[site] == 0 {
					row.UnseenMiss += excess
				} else {
					row.FlippedMiss += excess
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// RenderDisagreement formats the study with an aggregate verdict on
// the paper's hypothesis.
func RenderDisagreement(rows []DisagreeRow) string {
	var b strings.Builder
	b.WriteString("Extension: why do the worst predictors fail? (paper's 'coverage' conjecture)\n")
	fmt.Fprintf(&b, "%-12s %-12s %-12s %9s %9s %9s %9s %8s\n",
		"PROGRAM", "TARGET", "WORST-PRED", "SELF-MISS", "MISS", "UNSEEN", "FLIPPED", "UNSEEN%")
	var totalExcess, totalUnseen uint64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %-12s %9d %9d %9d %9d %7.0f%%\n",
			r.Program, r.Target, r.Predictor, r.SelfMiss, r.TotalMiss,
			r.UnseenMiss, r.FlippedMiss, 100*r.UnseenShare())
		totalExcess += r.Excess()
		totalUnseen += r.UnseenMiss
	}
	if totalExcess > 0 {
		fmt.Fprintf(&b, "aggregate: %.0f%% of excess mispredicts come from branches the predictor never saw\n",
			100*float64(totalUnseen)/float64(totalExcess))
	}
	return b.String()
}

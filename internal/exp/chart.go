package exp

import (
	"fmt"
	"math"
	"strings"
)

// The paper presents Figures 1-3 as paired horizontal bar charts
// (black and white bars per dataset). These renderers produce the
// same presentation in text: '#' bars for the first series and '.'
// bars for the second, scaled to a common width.

const chartWidth = 48

// bar renders one value as a proportional bar.
func bar(v, max float64, fill byte) string {
	if max <= 0 || v <= 0 || math.IsInf(v, 1) {
		return ""
	}
	n := int(v / max * chartWidth)
	if n == 0 {
		n = 1
	}
	if n > chartWidth {
		n = chartWidth
	}
	return strings.Repeat(string(fill), n)
}

// pairChart renders two series per row with a shared scale.
func pairChart(title, label1, label2 string, names []string, s1, s2 []float64, logScale bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  (%c = %s, %c = %s", title, '#', label1, '.', label2)
	if logScale {
		b.WriteString("; log scale")
	}
	b.WriteString(")\n")
	xform := func(v float64) float64 {
		if !logScale {
			return v
		}
		if v <= 1 {
			return 0
		}
		return math.Log10(v)
	}
	var max float64
	for i := range s1 {
		if v := xform(s1[i]); v > max && !math.IsInf(v, 1) {
			max = v
		}
		if v := xform(s2[i]); v > max && !math.IsInf(v, 1) {
			max = v
		}
	}
	for i, name := range names {
		fmt.Fprintf(&b, "  %-22s %8.1f |%s\n", name, s1[i], bar(xform(s1[i]), max, '#'))
		fmt.Fprintf(&b, "  %-22s %8.1f |%s\n", "", s2[i], bar(xform(s2[i]), max, '.'))
	}
	return b.String()
}

// ChartFigure1 renders a Figure 1 panel as paired bars (black =
// without call breaks, white = with).
func ChartFigure1(title string, rows []Fig1Row) string {
	names := make([]string, len(rows))
	s1 := make([]float64, len(rows))
	s2 := make([]float64, len(rows))
	for i, r := range rows {
		names[i] = r.Program + "/" + r.Dataset
		s1[i] = r.NoCalls
		s2[i] = r.WithCalls
	}
	return pairChart(title+" — instrs/break, no prediction", "branches+indirect", "+calls/returns", names, s1, s2, false)
}

// ChartFigure2 renders a Figure 2 panel (black = self, white = sum of
// others), on a log scale since the values span decades.
func ChartFigure2(title string, rows []Fig2Row) string {
	names := make([]string, len(rows))
	s1 := make([]float64, len(rows))
	s2 := make([]float64, len(rows))
	for i, r := range rows {
		names[i] = r.Program + "/" + r.Dataset
		s1[i] = r.Self
		s2[i] = r.Others
	}
	return pairChart(title+" — instrs/break, predicted", "self (best possible)", "scaled sum of others", names, s1, s2, true)
}

// ChartFigure3 renders a Figure 3 panel (black = best other dataset
// as % of self, white = worst).
func ChartFigure3(title string, rows []Fig3Row) string {
	names := make([]string, len(rows))
	s1 := make([]float64, len(rows))
	s2 := make([]float64, len(rows))
	for i, r := range rows {
		names[i] = r.Program + "/" + r.Dataset
		s1[i] = r.BestPct
		s2[i] = r.WorstPct
	}
	return pairChart(title+" — single-dataset predictors, % of self", "best other dataset", "worst other dataset", names, s1, s2, false)
}

package runlength

import (
	"math"

	"branchprof/internal/vm"
)

// SiteRecorder implements vm.Tracer, accumulating per-static-branch
// outcome statistics from one run: how often each site executed and
// was taken, and the distribution of same-outcome runs (how many
// consecutive executions went the same way before flipping). These
// are the workload-characterization axes of the H2P methodology —
// a branch with near-0.5 taken rate, high outcome entropy and short
// same-outcome runs is structurally hard for any per-site scheme.
type SiteRecorder struct {
	taken    []uint64
	total    []uint64
	runDir   []bool   // current same-outcome run direction
	runLen   []uint64 // current same-outcome run length
	runCount []uint64 // completed + open runs
	maxRun   []uint64
	oob      uint64 // branch events with out-of-range site ids (skipped)
}

// NewSites returns a per-branch recorder for a program with sites
// static branches.
func NewSites(sites int) *SiteRecorder {
	if sites < 0 {
		sites = 0
	}
	return &SiteRecorder{
		taken:    make([]uint64, sites),
		total:    make([]uint64, sites),
		runDir:   make([]bool, sites),
		runLen:   make([]uint64, sites),
		runCount: make([]uint64, sites),
		maxRun:   make([]uint64, sites),
	}
}

// Branch implements vm.Tracer. Out-of-range sites are counted on
// OutOfRange and otherwise ignored, matching the dynpred contract.
func (s *SiteRecorder) Branch(site int32, taken bool, _ uint64) {
	if site < 0 || int(site) >= len(s.total) {
		s.oob++
		return
	}
	s.total[site]++
	if taken {
		s.taken[site]++
	}
	if s.runLen[site] == 0 || s.runDir[site] != taken {
		// First execution, or a direction flip: a new run opens.
		s.runDir[site] = taken
		s.runLen[site] = 1
		s.runCount[site]++
	} else {
		s.runLen[site]++
	}
	if s.runLen[site] > s.maxRun[site] {
		s.maxRun[site] = s.runLen[site]
	}
}

// Transfer implements vm.Tracer (ignored).
func (s *SiteRecorder) Transfer(vm.TransferKind, uint64) {}

// OutOfRange returns how many branch events carried a site id outside
// the recorder's tables (program/recorder shape mismatch).
func (s *SiteRecorder) OutOfRange() uint64 { return s.oob }

// SiteStats summarizes one static branch's outcome behaviour.
type SiteStats struct {
	Site     int
	Executed uint64
	Taken    uint64
	// TakenRate is Taken/Executed in [0,1] (0 for a never-executed site).
	TakenRate float64
	// Entropy is the Shannon entropy of the outcome in bits: 0 for a
	// branch that always goes one way, 1 for a 50/50 branch.
	Entropy float64
	// Runs counts maximal same-outcome runs; MeanRun and MaxRun
	// describe their lengths. A loop back-edge has few long runs; a
	// data-dependent test flips constantly (MeanRun near 1).
	Runs    uint64
	MeanRun float64
	MaxRun  uint64
}

// Stats summarizes every site, indexed by site id.
func (s *SiteRecorder) Stats() []SiteStats {
	out := make([]SiteStats, len(s.total))
	for i := range s.total {
		st := SiteStats{
			Site:     i,
			Executed: s.total[i],
			Taken:    s.taken[i],
			Entropy:  Entropy(s.taken[i], s.total[i]),
			Runs:     s.runCount[i],
			MaxRun:   s.maxRun[i],
		}
		if st.Executed > 0 {
			st.TakenRate = float64(st.Taken) / float64(st.Executed)
		}
		if st.Runs > 0 {
			st.MeanRun = float64(st.Executed) / float64(st.Runs)
		}
		out[i] = st
	}
	return out
}

// Entropy is the Shannon entropy, in bits, of a branch outcome with
// taken of total executions taken: 0 when the branch always goes one
// way (or never executes), 1 at 50/50. It is also computable from a
// stored profile, which is how branchprofd characterizes branches
// without re-running the program.
func Entropy(taken, total uint64) float64 {
	if total == 0 || taken == 0 || taken == total {
		return 0
	}
	p := float64(taken) / float64(total)
	q := 1 - p
	return -p*math.Log2(p) - q*math.Log2(q)
}

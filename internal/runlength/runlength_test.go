package runlength

import (
	"strings"
	"testing"

	"branchprof/internal/predict"
	"branchprof/internal/vm"
)

func recorder(dirs ...predict.Direction) *Recorder {
	return New(&predict.Prediction{Dir: dirs, FromProfile: make([]bool, len(dirs))})
}

func TestRecordsMispredictGaps(t *testing.T) {
	r := recorder(predict.Taken)
	r.Branch(0, true, 10)  // correct: no break
	r.Branch(0, false, 25) // mispredict: run of 25
	r.Branch(0, false, 40) // mispredict: run of 15
	r.Branch(0, true, 90)  // correct
	runs := r.Runs()
	if len(runs) != 2 || runs[0] != 25 || runs[1] != 15 {
		t.Errorf("runs = %v, want [25 15]", runs)
	}
}

func TestIndirectTransfersBreak(t *testing.T) {
	r := recorder(predict.NotTaken)
	r.Transfer(vm.TransferIndirectCall, 100)
	r.Transfer(vm.TransferCall, 150)   // direct: not a break
	r.Transfer(vm.TransferReturn, 180) // direct: not a break
	r.Transfer(vm.TransferIndirectReturn, 200)
	r.Transfer(vm.TransferJump, 220) // jumps never break
	runs := r.Runs()
	if len(runs) != 2 || runs[0] != 100 || runs[1] != 100 {
		t.Errorf("runs = %v, want [100 100]", runs)
	}
}

func TestSummarize(t *testing.T) {
	r := recorder(predict.NotTaken)
	// Breaks at 10, 20, 30, ..., 100: ten runs of 10.
	for i := uint64(1); i <= 10; i++ {
		r.Branch(0, true, 10*i)
	}
	s := r.Summarize()
	if s.Count != 10 || s.Mean != 10 || s.Median != 10 || s.Max != 10 {
		t.Errorf("stats = %+v", s)
	}
	if s.CV != 0 {
		t.Errorf("constant runs should have CV 0, got %v", s.CV)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := recorder(predict.NotTaken)
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestSummarizeSkewed(t *testing.T) {
	r := recorder(predict.NotTaken)
	// 99 runs of 1 and one run of 1000: high CV, median 1, max 1000.
	at := uint64(0)
	for i := 0; i < 99; i++ {
		at++
		r.Branch(0, true, at)
	}
	at += 1000
	r.Branch(0, true, at)
	s := r.Summarize()
	if s.Median != 1 || s.Max != 1000 {
		t.Errorf("stats = %+v", s)
	}
	if s.CV < 5 {
		t.Errorf("CV = %v, want high for a skewed distribution", s.CV)
	}
}

func TestHistogram(t *testing.T) {
	r := recorder(predict.NotTaken)
	for _, at := range []uint64{1, 3, 7, 1007} {
		r.Branch(0, true, at)
	}
	h := r.Histogram(12)
	if !strings.Contains(h, "2^0") || !strings.Contains(h, "#") {
		t.Errorf("histogram:\n%s", h)
	}
	if len(strings.Split(strings.TrimSpace(h), "\n")) != 13 {
		t.Errorf("histogram should have 13 buckets:\n%s", h)
	}
}

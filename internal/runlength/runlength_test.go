package runlength

import (
	"strings"
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/predict"
	"branchprof/internal/vm"
)

func recorder(dirs ...predict.Direction) *Recorder {
	return New(&predict.Prediction{Dir: dirs, FromProfile: make([]bool, len(dirs))})
}

func TestRecordsMispredictGaps(t *testing.T) {
	r := recorder(predict.Taken)
	r.Branch(0, true, 10)  // correct: no break
	r.Branch(0, false, 25) // mispredict: run of 25
	r.Branch(0, false, 40) // mispredict: run of 15
	r.Branch(0, true, 90)  // correct
	runs := r.Runs()
	if len(runs) != 2 || runs[0] != 25 || runs[1] != 15 {
		t.Errorf("runs = %v, want [25 15]", runs)
	}
}

func TestIndirectTransfersBreak(t *testing.T) {
	r := recorder(predict.NotTaken)
	r.Transfer(vm.TransferIndirectCall, 100)
	r.Transfer(vm.TransferCall, 150)   // direct: not a break
	r.Transfer(vm.TransferReturn, 180) // direct: not a break
	r.Transfer(vm.TransferIndirectReturn, 200)
	r.Transfer(vm.TransferJump, 220) // jumps never break
	runs := r.Runs()
	if len(runs) != 2 || runs[0] != 100 || runs[1] != 100 {
		t.Errorf("runs = %v, want [100 100]", runs)
	}
}

func TestSummarize(t *testing.T) {
	r := recorder(predict.NotTaken)
	// Breaks at 10, 20, 30, ..., 100: ten runs of 10.
	for i := uint64(1); i <= 10; i++ {
		r.Branch(0, true, 10*i)
	}
	s := r.Summarize()
	if s.Count != 10 || s.Mean != 10 || s.Median != 10 || s.Max != 10 {
		t.Errorf("stats = %+v", s)
	}
	if s.CV != 0 {
		t.Errorf("constant runs should have CV 0, got %v", s.CV)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := recorder(predict.NotTaken)
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestSummarizeSkewed(t *testing.T) {
	r := recorder(predict.NotTaken)
	// 99 runs of 1 and one run of 1000: high CV, median 1, max 1000.
	at := uint64(0)
	for i := 0; i < 99; i++ {
		at++
		r.Branch(0, true, at)
	}
	at += 1000
	r.Branch(0, true, at)
	s := r.Summarize()
	if s.Median != 1 || s.Max != 1000 {
		t.Errorf("stats = %+v", s)
	}
	if s.CV < 5 {
		t.Errorf("CV = %v, want high for a skewed distribution", s.CV)
	}
}

func TestHistogram(t *testing.T) {
	r := recorder(predict.NotTaken)
	for _, at := range []uint64{1, 3, 7, 1007} {
		r.Branch(0, true, at)
	}
	h := r.Histogram(12)
	if !strings.Contains(h, "2^0") || !strings.Contains(h, "#") {
		t.Errorf("histogram:\n%s", h)
	}
	if len(strings.Split(strings.TrimSpace(h), "\n")) != 13 {
		t.Errorf("histogram should have 13 buckets:\n%s", h)
	}
}

// --- the tail run (Finish) -------------------------------------------

func TestFinishRecordsTailRun(t *testing.T) {
	r := recorder(predict.Taken)
	r.Branch(0, false, 25) // break: run of 25
	r.Finish(100)          // program exits at instruction 100
	runs := r.Runs()
	if len(runs) != 2 || runs[0] != 25 || runs[1] != 75 {
		t.Errorf("runs = %v, want [25 75] (tail recorded)", runs)
	}
	// Idempotent: a second Finish at the same count adds nothing.
	r.Finish(100)
	if len(r.Runs()) != 2 {
		t.Errorf("second Finish appended: %v", r.Runs())
	}
}

func TestFinishBreakFreeRun(t *testing.T) {
	// A run with no breaks at all used to vanish entirely; now it is
	// one run the length of the whole program.
	r := recorder(predict.Taken)
	r.Branch(0, true, 50) // correctly predicted: no break
	r.Finish(200)
	runs := r.Runs()
	if len(runs) != 1 || runs[0] != 200 {
		t.Errorf("runs = %v, want [200]", runs)
	}
	s := r.Summarize()
	if s.Count != 1 || s.Mean != 200 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFinishAtOrBeforeLastBreakIsNoOp(t *testing.T) {
	r := recorder(predict.Taken)
	r.Branch(0, false, 30)
	r.Finish(30) // exit coincides with the final break: no empty run
	if len(r.Runs()) != 1 {
		t.Errorf("runs = %v, want just the break run", r.Runs())
	}
}

func TestRecorderOutOfRange(t *testing.T) {
	r := recorder(predict.Taken)
	r.Branch(3, false, 10) // stale shape: beyond the table
	r.Branch(-2, true, 20)
	if len(r.Runs()) != 0 {
		t.Errorf("oob events recorded runs: %v", r.Runs())
	}
	if r.OutOfRange() != 2 {
		t.Errorf("OutOfRange = %d, want 2", r.OutOfRange())
	}
}

// TestTailAgainstRealProgram pins the accounting against an actual
// compiled run: a program whose only branch is a loop back-edge,
// predicted taken, mispredicts exactly once (the exit) — so the run
// distribution must be exactly two runs that sum to the run's total
// instruction count, the second being the post-loop tail.
func TestTailAgainstRealProgram(t *testing.T) {
	src := `
func main() int {
	var i int = 0;
	var n int = 0;
	while (i < 10) {
		n = n + i;
		i = i + 1;
	}
	n = n + 100;
	n = n + 200;
	return n;
}
`
	prog, err := mfc.Compile("tail", src, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Predict every site taken: the back-edge then breaks only at exit.
	dirs := make([]predict.Direction, len(prog.Sites))
	for i := range dirs {
		dirs[i] = predict.Taken
	}
	r := New(&predict.Prediction{Dir: dirs, FromProfile: make([]bool, len(dirs))})
	res, err := vm.Run(prog, nil, &vm.Config{Trace: r})
	if err != nil {
		t.Fatal(err)
	}
	r.Finish(res.Instrs)
	runs := r.Runs()
	if len(runs) < 2 {
		t.Fatalf("runs = %v, want the loop-exit break plus the tail", runs)
	}
	var sum uint64
	for _, v := range runs {
		sum += v
	}
	if sum != res.Instrs {
		t.Errorf("runs sum to %d, program executed %d — instructions dropped", sum, res.Instrs)
	}
	// The tail is the epilogue after the loop: strictly positive.
	if tail := runs[len(runs)-1]; tail == 0 {
		t.Error("tail run has zero length")
	}
	if r.OutOfRange() != 0 {
		t.Errorf("OutOfRange = %d on a matching shape", r.OutOfRange())
	}
}

// --- per-site statistics ---------------------------------------------

func TestSiteRecorderStats(t *testing.T) {
	s := NewSites(2)
	// Site 0: T T T N T T T N — two runs of 3, two of 1.
	for i := 0; i < 2; i++ {
		s.Branch(0, true, 0)
		s.Branch(0, true, 0)
		s.Branch(0, true, 0)
		s.Branch(0, false, 0)
	}
	// Site 1: perfect alternation.
	for i := 0; i < 8; i++ {
		s.Branch(1, i%2 == 0, 0)
	}
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	s0, s1 := stats[0], stats[1]
	if s0.Executed != 8 || s0.Taken != 6 || s0.TakenRate != 0.75 {
		t.Errorf("site 0 = %+v", s0)
	}
	if s0.Runs != 4 || s0.MeanRun != 2 || s0.MaxRun != 3 {
		t.Errorf("site 0 runs = %+v", s0)
	}
	if s1.TakenRate != 0.5 || s1.Entropy != 1 || s1.MaxRun != 1 || s1.MeanRun != 1 {
		t.Errorf("alternating site = %+v", s1)
	}
	// 0.75 taken: entropy strictly between 0 and 1.
	if s0.Entropy <= 0 || s0.Entropy >= 1 {
		t.Errorf("site 0 entropy = %v", s0.Entropy)
	}
}

func TestSiteRecorderNeverExecuted(t *testing.T) {
	s := NewSites(3)
	s.Branch(1, true, 0)
	stats := s.Stats()
	for _, i := range []int{0, 2} {
		st := stats[i]
		if st.Executed != 0 || st.TakenRate != 0 || st.Entropy != 0 || st.Runs != 0 || st.MeanRun != 0 {
			t.Errorf("never-executed site %d = %+v", i, st)
		}
	}
}

func TestSiteRecorderOutOfRange(t *testing.T) {
	s := NewSites(1)
	s.Branch(4, true, 0)
	s.Branch(-1, true, 0)
	s.Branch(0, true, 0)
	if s.OutOfRange() != 2 {
		t.Errorf("OutOfRange = %d, want 2", s.OutOfRange())
	}
	if st := s.Stats()[0]; st.Executed != 1 {
		t.Errorf("in-range site polluted: %+v", st)
	}
}

func TestEntropy(t *testing.T) {
	cases := []struct {
		taken, total uint64
		want         float64
	}{
		{0, 0, 0}, {0, 10, 0}, {10, 10, 0}, {5, 10, 1},
	}
	for _, c := range cases {
		if got := Entropy(c.taken, c.total); got != c.want {
			t.Errorf("Entropy(%d,%d) = %v, want %v", c.taken, c.total, got, c.want)
		}
	}
	if e := Entropy(1, 4); e <= 0.8 || e >= 0.82 {
		t.Errorf("Entropy(1,4) = %v, want ~0.811", e)
	}
}

// --- H2P ranking -----------------------------------------------------

func TestRankH2P(t *testing.T) {
	stats := []SiteStats{
		{Site: 0, Executed: 100},
		{Site: 1, Executed: 100},
		{Site: 2, Executed: 0}, // never executed: excluded
	}
	schemes := []SchemeMisses{
		{Scheme: "a", Misses: []uint64{50, 10, 0}},
		{Scheme: "b", Misses: []uint64{40, 30, 0}},
	}
	entries := RankH2P(stats, 1000, schemes, 0)
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	// Site 0: min(50,40)/1k instrs → 40 MPKI. Site 1: min(10,30) → 10.
	if entries[0].Stats.Site != 0 || entries[0].Score != 40 {
		t.Errorf("top = %+v", entries[0])
	}
	if entries[1].Stats.Site != 1 || entries[1].Score != 10 {
		t.Errorf("second = %+v", entries[1])
	}
	if len(entries[0].MPKI) != 2 || entries[0].MPKI[0].Scheme != "a" || entries[0].MPKI[0].MPKI != 50 {
		t.Errorf("scheme breakdown = %+v", entries[0].MPKI)
	}
	// Top-N truncation.
	if top := RankH2P(stats, 1000, schemes, 1); len(top) != 1 || top[0].Stats.Site != 0 {
		t.Errorf("top-1 = %+v", top)
	}
	// A scheme table shorter than the site id contributes zero misses,
	// not a panic.
	short := []SchemeMisses{{Scheme: "s", Misses: []uint64{7}}}
	if e := RankH2P(stats, 1000, short, 0); e[0].Stats.Site != 0 || e[0].Score != 7 {
		t.Errorf("short-table rank = %+v", e)
	}
}

func TestMPKI(t *testing.T) {
	if v := MPKI(5, 1000); v != 5 {
		t.Errorf("MPKI(5,1000) = %v", v)
	}
	if v := MPKI(5, 0); v != 0 {
		t.Errorf("MPKI with zero instrs = %v, want 0 (degenerate guard)", v)
	}
}

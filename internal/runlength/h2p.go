package runlength

import "sort"

// H2P ranking, following Lin & Tarsa's "Branch Prediction Is Not a
// Solved Problem": a hard-to-predict (H2P) branch is one that keeps
// costing mispredicts per kilo-instruction even under the best
// history-based scheme available. Ranking static branches by that
// score names the specific branches a better predictor — or a static
// hint from a previous run's profile — would have to fix.

// SchemeMisses is one predictor's per-site mispredict attribution,
// as returned by dynpred.Predictor.SiteMispredicts.
type SchemeMisses struct {
	Scheme string
	Misses []uint64
}

// SchemeMPKI is one scheme's mispredicts-per-kilo-instruction at one
// site.
type SchemeMPKI struct {
	Scheme string  `json:"scheme"`
	MPKI   float64 `json:"mpki"`
}

// H2PEntry is one ranked branch: its outcome statistics and its cost
// under every measured scheme.
type H2PEntry struct {
	Stats SiteStats
	// MPKI lists the site's mispredicts-per-kilo-instruction under
	// each scheme, in the order the schemes were supplied.
	MPKI []SchemeMPKI
	// Score is the minimum MPKI across the supplied schemes: a branch
	// is only as hard as its best predictor finds it, so a high Score
	// means every scheme pays for this branch.
	Score float64
}

// MPKI is mispredicts per kilo-instruction: the H2P literature's unit
// for branch cost, robust across programs of different lengths.
// Guards the zero-instruction degenerate case (no run, no cost).
func MPKI(misses, instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instrs)
}

// RankH2P scores every site by its minimum MPKI across schemes over a
// run of instrs instructions and returns the top n (n <= 0 returns
// every site that executed). Sites that never executed are excluded.
// Ties break toward the more-executed, then lower-numbered, site so
// the ranking is deterministic.
func RankH2P(stats []SiteStats, instrs uint64, schemes []SchemeMisses, n int) []H2PEntry {
	entries := make([]H2PEntry, 0, len(stats))
	for _, st := range stats {
		if st.Executed == 0 {
			continue
		}
		e := H2PEntry{Stats: st, MPKI: make([]SchemeMPKI, 0, len(schemes))}
		first := true
		for _, sch := range schemes {
			var misses uint64
			if st.Site < len(sch.Misses) {
				misses = sch.Misses[st.Site]
			}
			v := MPKI(misses, instrs)
			e.MPKI = append(e.MPKI, SchemeMPKI{Scheme: sch.Scheme, MPKI: v})
			if first || v < e.Score {
				e.Score = v
				first = false
			}
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Stats.Executed != b.Stats.Executed {
			return a.Stats.Executed > b.Stats.Executed
		}
		return a.Stats.Site < b.Stats.Site
	})
	if n > 0 && n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

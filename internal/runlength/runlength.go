// Package runlength measures the distribution of instruction-run
// lengths between breaks in control — the paper's observation that
// "the distribution of runs of instructions between mispredicted
// branches will not be constant ... far more ILP will be available if
// one has 80 instructions followed by two mispredicted branches than
// if one has 40 instructions, a mispredicted branch" (§3). The mean
// alone (instructions per break) hides this; the recorder captures
// the whole distribution.
package runlength

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"branchprof/internal/predict"
	"branchprof/internal/vm"
)

// Recorder implements vm.Tracer: given a static prediction, it
// records the distance (in instructions) between consecutive breaks —
// mispredicted conditional branches and unavoidable indirect
// transfers.
type Recorder struct {
	dirs      []bool // per-site predicted-taken
	lastBreak uint64
	runs      []uint64
	oob       uint64 // branch events at out-of-range sites (skipped)
}

// New builds a recorder for a prediction over the program's sites.
func New(pred *predict.Prediction) *Recorder {
	dirs := make([]bool, len(pred.Dir))
	for i, d := range pred.Dir {
		dirs[i] = d == predict.Taken
	}
	return &Recorder{dirs: dirs}
}

// Branch implements vm.Tracer. A site id outside the prediction's
// table (recorder attached with a stale site count) is counted on
// OutOfRange and skipped rather than panicking the run, matching the
// dynpred tracer contract.
func (r *Recorder) Branch(site int32, taken bool, instrs uint64) {
	if site < 0 || int(site) >= len(r.dirs) {
		r.oob++
		return
	}
	if r.dirs[site] != taken {
		r.record(instrs)
	}
}

// OutOfRange returns how many branch events carried a site id outside
// the prediction's table (program/prediction shape mismatch).
func (r *Recorder) OutOfRange() uint64 { return r.oob }

// Transfer implements vm.Tracer.
func (r *Recorder) Transfer(kind vm.TransferKind, instrs uint64) {
	if kind == vm.TransferIndirectCall || kind == vm.TransferIndirectReturn {
		r.record(instrs)
	}
}

func (r *Recorder) record(instrs uint64) {
	r.runs = append(r.runs, instrs-r.lastBreak)
	r.lastBreak = instrs
}

// Finish records the tail run — the instructions between the final
// break and program exit, which the break events alone never close.
// Without it that last stretch (the whole program, for a run with no
// breaks at all) silently vanishes from the distribution. Call it
// once after the run with the run's total instruction count
// (vm.Result.Instrs); calling it again, or with a count at or before
// the last break, is a no-op.
func (r *Recorder) Finish(totalInstrs uint64) {
	if totalInstrs > r.lastBreak {
		r.record(totalInstrs)
	}
}

// Runs returns the recorded run lengths in execution order.
func (r *Recorder) Runs() []uint64 { return r.runs }

// Stats summarizes a run-length distribution.
type Stats struct {
	Count  int
	Mean   float64
	Median float64
	P90    float64
	P99    float64
	Max    uint64
	// CV is the coefficient of variation (stddev/mean); an
	// exponential spacing gives ~1, clustering gives more.
	CV float64
}

// Summarize computes distribution statistics.
func (r *Recorder) Summarize() Stats {
	n := len(r.runs)
	if n == 0 {
		return Stats{}
	}
	sorted := append([]uint64(nil), r.runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, sumsq float64
	for _, v := range sorted {
		f := float64(v)
		sum += f
		sumsq += f * f
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	q := func(p float64) float64 {
		idx := int(p * float64(n-1))
		return float64(sorted[idx])
	}
	s := Stats{
		Count:  n,
		Mean:   mean,
		Median: q(0.5),
		P90:    q(0.9),
		P99:    q(0.99),
		Max:    sorted[n-1],
	}
	if mean > 0 {
		s.CV = math.Sqrt(variance) / mean
	}
	return s
}

// Histogram buckets run lengths into powers of two up to maxLog2 and
// renders an ASCII histogram.
func (r *Recorder) Histogram(maxLog2 int) string {
	buckets := make([]int, maxLog2+1)
	for _, v := range r.runs {
		b := 0
		for v > 1 && b < maxLog2 {
			v >>= 1
			b++
		}
		buckets[b]++
	}
	peak := 0
	for _, c := range buckets {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for b, c := range buckets {
		width := 0
		if peak > 0 {
			width = c * 40 / peak
		}
		lo := 1 << b
		label := fmt.Sprintf("2^%-2d (%d+)", b, lo)
		fmt.Fprintf(&sb, "%-12s %6d %s\n", label, c, strings.Repeat("#", width))
	}
	return sb.String()
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one complete ("X" phase) event in Chrome's
// trace_event format, loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // µs since trace epoch
	Dur  int64          `json:"dur"` // µs
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts a JSONL span stream (as written by Tracer)
// into a Chrome trace_event JSON document. Timestamps are rebased so
// the earliest span starts at ts=0. Parent IDs are preserved in args
// so the hierarchy survives the conversion even though trace_event
// nests by time alone.
func WriteChromeTrace(w io.Writer, r io.Reader) error {
	var recs []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("obs: bad span record: %w", err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading spans: %w", err)
	}

	var epoch time.Time
	for i, rec := range recs {
		st, err := time.Parse(time.RFC3339Nano, rec.Start)
		if err != nil {
			return fmt.Errorf("obs: span %d has bad start %q: %w", rec.Span, rec.Start, err)
		}
		if i == 0 || st.Before(epoch) {
			epoch = st
		}
	}

	events := make([]chromeEvent, 0, len(recs))
	for _, rec := range recs {
		st, _ := time.Parse(time.RFC3339Nano, rec.Start)
		args := make(map[string]any, len(rec.Attrs)+2)
		for k, v := range rec.Attrs {
			args[k] = v
		}
		args["span"] = rec.Span
		if rec.Parent != 0 {
			args["parent"] = rec.Parent
		}
		events = append(events, chromeEvent{
			Name: rec.Name,
			Ph:   "X",
			TS:   st.Sub(epoch).Microseconds(),
			Dur:  rec.DurUS,
			PID:  1,
			TID:  1,
			Args: args,
		})
	}

	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

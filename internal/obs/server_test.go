package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServe binds :0, hits /metrics, /debug/vmprof and a pprof
// endpoint, then shuts down.
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_total", "").Add(11)
	vmp := NewVMProfile()
	vmp.Add("main", 3)
	s, err := Serve("127.0.0.1:0", reg, vmp)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "srv_total 11") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	if body := get("/debug/vmprof"); body != "main 3\n" {
		t.Fatalf("/debug/vmprof body = %q", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestServerCloseNil: Close on nil server is a no-op.
func TestServerCloseNil(t *testing.T) {
	var s *Server
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

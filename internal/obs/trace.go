package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Clock supplies the current time. Injectable so trace output (and
// stage timings) can be made deterministic in tests.
type Clock func() time.Time

// StepClock returns a Clock that starts at start and advances by step
// on every call. It is safe for concurrent use, which makes traces of
// concurrent pipelines reproducible modulo goroutine interleaving —
// golden tests should keep the traced work single-threaded.
func StepClock(start time.Time, step time.Duration) Clock {
	var mu sync.Mutex
	t := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now := t
		t = t.Add(step)
		return now
	}
}

// SpanRecord is the JSONL wire form of one completed span. Map keys
// inside Attrs are emitted sorted by encoding/json, so a record's
// bytes are a pure function of its contents.
type SpanRecord struct {
	Span   uint64         `json:"span"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  string         `json:"start"`  // RFC3339Nano, UTC
	DurUS  int64          `json:"dur_us"` // microseconds
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Tracer assigns span IDs and writes completed spans as JSONL. A nil
// *Tracer hands out nil spans, so instrumentation is free when tracing
// is off.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	clock  Clock
	nextID uint64
	err    error // first write/encode error, reported by Err
}

// NewTracer returns a tracer writing JSONL span records to w, reading
// time from clock (time.Now if nil).
func NewTracer(w io.Writer, clock Clock) *Tracer {
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{w: w, clock: clock}
}

// Err returns the first error hit while writing span records, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one traced region. A nil *Span ignores all operations, so
// callers never branch on whether tracing is enabled.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Start opens a span under parent (nil for a root). A nil tracer
// returns a nil span.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	now := t.clock()
	t.mu.Unlock()
	s := &Span{tr: t, id: id, name: name, start: now}
	if parent != nil {
		s.parent = parent.id
	}
	if len(attrs) > 0 {
		s.attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			s.attrs[a.Key] = a.Value
		}
	}
	return s
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// A builds an Attr; shorthand for call sites.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// SetAttr attaches (or replaces) an attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// SetError records err on the span (no-op for nil err). Convention:
// attribute "error" carries err.Error().
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// End closes the span and writes its record. Safe to call more than
// once; only the first call emits.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.clock()
	rec := SpanRecord{
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.UTC().Format(time.RFC3339Nano),
		DurUS:  end.Sub(s.start).Microseconds(),
		Attrs:  attrs,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		if t.err == nil {
			t.err = fmt.Errorf("obs: encoding span %q: %w", s.name, err)
		}
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = fmt.Errorf("obs: writing span %q: %w", s.name, err)
	}
}

// ID returns the span's ID (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

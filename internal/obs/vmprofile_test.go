package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestFoldedGolden locks the folded-stack output format.
func TestFoldedGolden(t *testing.T) {
	p := NewVMProfile()
	sample := p.Sampler([]string{"main", "inner", "leaf"})
	sample([]int32{0}, 0)
	sample([]int32{0, 1}, 4096)
	sample([]int32{0, 1, 2}, 8192)
	sample([]int32{0, 1}, 12288)
	var b strings.Builder
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	want := `main 1
main;inner 2
main;inner;leaf 1
`
	if got := b.String(); got != want {
		t.Errorf("folded mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if p.Total() != 4 {
		t.Fatalf("Total = %d, want 4", p.Total())
	}
}

// TestSamplerUnknownFn: out-of-range function indices get a synthetic
// name instead of panicking.
func TestSamplerUnknownFn(t *testing.T) {
	p := NewVMProfile()
	sample := p.Sampler([]string{"main"})
	sample([]int32{0, 9}, 0)
	got := p.Samples()
	if got["main;fn9"] != 1 {
		t.Fatalf("samples = %v", got)
	}
}

// TestVMProfileNil: nil profile is inert and hands out a nil sampler.
func TestVMProfileNil(t *testing.T) {
	var p *VMProfile
	if p.Sampler([]string{"main"}) != nil {
		t.Fatal("nil profile produced a sampler")
	}
	p.Add("x", 1)
	if p.Samples() != nil || p.Total() != 0 {
		t.Fatal("nil profile recorded")
	}
	if err := p.WriteFolded(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestVMProfileConcurrent: concurrent Add/Sampler use is race-free.
func TestVMProfileConcurrent(t *testing.T) {
	p := NewVMProfile()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := p.Sampler([]string{"main", "f"})
			for j := 0; j < 500; j++ {
				s([]int32{0, 1}, uint64(j))
				p.Add("main", 1)
			}
		}()
	}
	wg.Wait()
	if p.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", p.Total())
	}
}

// TestVMProfileHTTP serves the folded profile.
func TestVMProfileHTTP(t *testing.T) {
	p := NewVMProfile()
	p.Add("main;hot", 9)
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vmprof", nil))
	if got := rec.Body.String(); got != "main;hot 9\n" {
		t.Fatalf("body = %q", got)
	}
}

// Package obs is the repository's zero-dependency observability
// layer: a metrics registry exported in Prometheus text format, a
// structured span tracer emitting JSONL (convertible to a Chrome
// trace_event file), a folded-stack VM execution profile fed by the
// interpreter's sampling hook, and the HTTP plumbing that serves
// /metrics and net/http/pprof.
//
// The layer follows the same discipline as internal/faults: every
// producer-side handle is nil-safe, so production code carries plain
// pointers (normally nil or always-allocated atomics) and a disabled
// sink costs one pointer comparison on hot paths. All time is read
// through an injectable Clock, so trace and metric output is
// deterministic under test and can be golden-tested.
//
// See docs/OBSERVABILITY.md for the span names, metric inventory and
// endpoint map.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is usable; a nil *Counter ignores all operations.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value. A nil counter reads 0.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. A nil *Gauge
// ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value. A nil gauge reads 0.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative upper
// bounds, Prometheus-style) and tracks their sum. A nil *Histogram
// ignores all operations.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64
	infCnt  atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

// DefLatencyBuckets are the default stage-latency buckets, in seconds.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefRateBuckets are the default throughput buckets (e.g. millions of
// VM instructions per second).
var DefRateBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.infCnt.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations. A nil histogram reads 0.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations. A nil histogram reads 0.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name with all its labelled series.
type family struct {
	base   string
	help   string
	kind   metricKind
	series map[string]any // label string ("" allowed) → *Counter | *Gauge | func() float64 | *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. A nil *Registry hands out nil metric handles, so
// instrumented code never needs its own nil checks. Registration is
// idempotent: asking twice for the same name (labels included)
// returns the same handle, and the same base name must keep one
// metric type.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// splitName separates `base{label="v",...}` into base and the raw
// label list (without braces). Names without labels return ("", ok).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// fam returns (creating if needed) the family for name, enforcing one
// kind per base name.
func (r *Registry) fam(name, help string, kind metricKind) (*family, string) {
	base, labels := splitName(name)
	f, ok := r.fams[base]
	if !ok {
		f = &family{base: base, help: help, kind: kind, series: make(map[string]any)}
		r.fams[base] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", base, f.kind, kind))
	}
	return f, labels
}

// Counter returns the named counter, creating it on first use. The
// name may carry a Prometheus label list: `x_total{stage="run"}`.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, labels := r.fam(name, help, counterKind)
	if m, ok := f.series[labels]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[labels] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, labels := r.fam(name, help, gaugeKind)
	if m, ok := f.series[labels]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[labels] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed at export time
// (e.g. a hit ratio derived from two counters). Re-registering the
// same name replaces the function. A nil registry is a no-op.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, labels := r.fam(name, help, gaugeKind)
	f.series[labels] = fn
}

// Histogram returns the named histogram with the given bucket upper
// bounds (sorted ascending; +Inf is implicit), creating it on first
// use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, labels := r.fam(name, help, histogramKind)
	if m, ok := f.series[labels]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)),
	}
	f.series[labels] = h
	return h
}

// fnum renders a float the way the Prometheus text format expects.
func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders base plus a merged label list.
func seriesName(base, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return base
	}
	return base + "{" + all + "}"
}

// WritePrometheus renders every registered metric in text exposition
// format. Families and series are emitted in sorted order, so the
// output is deterministic for deterministic metric values. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].base < fams[j].base })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.base, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.base, f.kind)
		labels := make([]string, 0, len(f.series))
		for l := range f.series {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			switch m := f.series[l].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.base, l, ""), m.Load())
			case *Gauge:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.base, l, ""), fnum(m.Load()))
			case func() float64:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.base, l, ""), fnum(m()))
			case *Histogram:
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(&b, "%s %d\n",
						seriesName(f.base+"_bucket", l, `le="`+fnum(bound)+`"`), cum)
				}
				cum += m.infCnt.Load()
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.base+"_bucket", l, `le="+Inf"`), cum)
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.base+"_sum", l, ""), fnum(m.Sum()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.base+"_count", l, ""), m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

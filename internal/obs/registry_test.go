package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPromGolden locks the Prometheus text rendering byte-for-byte:
// sorted families, sorted series, histogram bucket/sum/count lines.
func TestPromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bp_runs_total", "Total VM runs.").Add(3)
	r.Counter(`bp_stage_total{stage="compile"}`, "Stage executions.").Add(2)
	r.Counter(`bp_stage_total{stage="run"}`, "Stage executions.").Add(5)
	r.Gauge("bp_ratio", "A ratio.").Set(0.25)
	r.GaugeFunc("bp_derived", "Computed at export.", func() float64 { return 2.5 })
	h := r.Histogram("bp_lat_seconds", "Stage latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP bp_derived Computed at export.
# TYPE bp_derived gauge
bp_derived 2.5
# HELP bp_lat_seconds Stage latency.
# TYPE bp_lat_seconds histogram
bp_lat_seconds_bucket{le="0.1"} 1
bp_lat_seconds_bucket{le="1"} 2
bp_lat_seconds_bucket{le="+Inf"} 3
bp_lat_seconds_sum 5.55
bp_lat_seconds_count 3
# HELP bp_ratio A ratio.
# TYPE bp_ratio gauge
bp_ratio 0.25
# HELP bp_runs_total Total VM runs.
# TYPE bp_runs_total counter
bp_runs_total 3
# HELP bp_stage_total Stage executions.
# TYPE bp_stage_total counter
bp_stage_total{stage="compile"} 2
bp_stage_total{stage="run"} 5
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryIdempotent: same name → same handle; counters survive
// re-registration.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "ignored on re-register")
	if a != b {
		t.Fatal("re-registration returned a different handle")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatalf("Load = %d, want 1", b.Load())
	}
	l1 := r.Counter(`y_total{k="a"}`, "")
	l2 := r.Counter(`y_total{k="b"}`, "")
	if l1 == l2 {
		t.Fatal("distinct label sets shared a handle")
	}
}

// TestRegistryKindConflict: one base name keeps one metric type.
func TestRegistryKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("z_total", "")
}

// TestNilRegistry: nil registry and nil instruments are silent no-ops.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter loaded nonzero")
	}
	g := r.Gauge("b", "")
	g.Set(3)
	if g.Load() != 0 {
		t.Fatal("nil gauge loaded nonzero")
	}
	r.GaugeFunc("c", "", func() float64 { return 1 })
	h := r.Histogram("d", "", DefLatencyBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramEdges: NaN/Inf observations land in +Inf bucket space
// without corrupting count/sum bookkeeping.
func TestHistogramEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e", "", []float64{1})
	h.Observe(math.Inf(1))
	h.Observe(0.5)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if !math.IsInf(h.Sum(), 1) {
		t.Fatalf("Sum = %v, want +Inf", h.Sum())
	}
}

// TestRegistryConcurrent hammers one counter/histogram from many
// goroutines; run under -race by make obs.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("cc_total", "")
			h := r.Histogram("ch", "", []float64{1, 10})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("cc_total", "").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("ch", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestRegistryHTTP: the registry serves itself as /metrics.
func TestRegistryHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Add(7)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "hits_total 7") {
		t.Fatalf("body missing metric:\n%s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

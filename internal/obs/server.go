package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewServeMux builds the observability HTTP mux: /metrics (when reg
// is non-nil), /debug/vmprof (when vmp is non-nil), and the standard
// net/http/pprof endpoints under /debug/pprof/. Using a dedicated mux
// keeps the pprof handlers off http.DefaultServeMux.
func NewServeMux(reg *Registry, vmp *VMProfile) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg)
	}
	if vmp != nil {
		mux.Handle("/debug/vmprof", vmp)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a started observability HTTP server.
type Server struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string
	srv  *http.Server
	lis  net.Listener
}

// Serve binds addr and serves the observability mux in a background
// goroutine. The caller shuts it down with Close.
//
// Like every listener in this repository the server carries the full
// set of read/write/idle timeouts and a header cap, so a stalled or
// hostile peer cannot pin a connection (or its goroutine) forever.
// The write timeout is generous because /debug/pprof/profile and
// /debug/pprof/trace stream for their requested duration (30s
// default) before writing completes.
func Serve(addr string, reg *Registry, vmp *VMProfile) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           NewServeMux(reg, vmp),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	s := &Server{Addr: lis.Addr().String(), srv: srv, lis: lis}
	go srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Close stops the server. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

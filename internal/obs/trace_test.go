package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var traceEpoch = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// TestTraceGoldenJSONL locks the JSONL span wire format byte-for-byte
// under the step clock. Clock reads: root start (t=0ms), child start
// (1ms), child end (2ms, dur 1ms), root end (3ms, dur 3ms).
func TestTraceGoldenJSONL(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, StepClock(traceEpoch, time.Millisecond))
	root := tr.Start(nil, "suite", A("programs", 2))
	child := tr.Start(root, "run", A("program", "eqntott"), A("dataset", "d1"))
	child.End()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	want := `{"span":2,"parent":1,"name":"run","start":"2026-01-02T03:04:05.001Z","dur_us":1000,"attrs":{"dataset":"d1","program":"eqntott"}}
{"span":1,"name":"suite","start":"2026-01-02T03:04:05Z","dur_us":3000,"attrs":{"programs":2}}
`
	if got := b.String(); got != want {
		t.Errorf("trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSpanNilSafety: nil tracer and nil spans absorb everything.
func TestSpanNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "x", A("k", "v"))
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	s.SetAttr("a", 1)
	s.SetError(context.Canceled)
	s.End()
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span has an ID")
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanEndOnce: double End emits one record.
func TestSpanEndOnce(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, StepClock(traceEpoch, time.Millisecond))
	s := tr.Start(nil, "once")
	s.End()
	s.End()
	if n := strings.Count(b.String(), "\n"); n != 1 {
		t.Fatalf("got %d records, want 1", n)
	}
}

// TestSpanContext: Start nests under the context span; disabled obs
// returns the identical context.
func TestSpanContext(t *testing.T) {
	var b strings.Builder
	o := &Obs{Tr: NewTracer(&b, StepClock(traceEpoch, time.Millisecond))}
	ctx, root := o.Start(context.Background(), "root")
	ctx2, child := o.Start(ctx, "child")
	if SpanFromContext(ctx2) != child {
		t.Fatal("context does not carry child span")
	}
	child.End()
	root.End()
	var rec SpanRecord
	line := strings.SplitN(b.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "child" || rec.Parent != root.ID() {
		t.Fatalf("child record = %+v, want parent %d", rec, root.ID())
	}

	var off *Obs
	ctx3, sp := off.Start(context.Background(), "x")
	if sp != nil || ctx3 != context.Background() {
		t.Fatal("disabled obs allocated span or context")
	}
}

// TestChromeTrace converts the golden JSONL and checks the trace_event
// shape: rebased µs timestamps, durations, preserved hierarchy.
func TestChromeTrace(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, StepClock(traceEpoch, time.Millisecond))
	root := tr.Start(nil, "suite")
	child := tr.Start(root, "run", A("program", "li"))
	child.End()
	root.End()

	var out strings.Builder
	if err := WriteChromeTrace(&out, strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	// JSONL order: child first (ended first), then root.
	ch, rt := doc.TraceEvents[0], doc.TraceEvents[1]
	if ch.Name != "run" || rt.Name != "suite" {
		t.Fatalf("names = %q, %q", ch.Name, rt.Name)
	}
	if rt.TS != 0 || ch.TS != 1000 {
		t.Fatalf("ts = root %d, child %d; want 0, 1000", rt.TS, ch.TS)
	}
	if ch.Dur != 1000 || rt.Dur != 3000 {
		t.Fatalf("dur = child %d, root %d; want 1000, 3000", ch.Dur, rt.Dur)
	}
	if ch.Ph != "X" || ch.PID != 1 || ch.TID != 1 {
		t.Fatalf("event shape = %+v", ch)
	}
	if ch.Args["program"] != "li" {
		t.Fatalf("args lost: %+v", ch.Args)
	}
	if ch.Args["parent"] != float64(rt.Args["span"].(float64)) {
		t.Fatalf("hierarchy lost: child args %+v, root args %+v", ch.Args, rt.Args)
	}
}

// TestChromeTraceBadInput rejects malformed JSONL.
func TestChromeTraceBadInput(t *testing.T) {
	var out strings.Builder
	if err := WriteChromeTrace(&out, strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected error")
	}
}

// TestStepClockDeterministic: two identical sequences produce
// identical bytes — the property engine golden tests rely on.
func TestStepClockDeterministic(t *testing.T) {
	emit := func() string {
		var b strings.Builder
		tr := NewTracer(&b, StepClock(traceEpoch, 7*time.Millisecond))
		a := tr.Start(nil, "a")
		bb := tr.Start(a, "b", A("i", 1))
		bb.End()
		a.End()
		return b.String()
	}
	if emit() != emit() {
		t.Fatal("identical span sequences produced different bytes")
	}
}

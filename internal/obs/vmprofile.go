package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// VMProfile aggregates stack samples from the VM's sampling hook into
// folded-stack form ("main;inner;leaf <count>"), the input format of
// flamegraph tooling. One VMProfile may aggregate samples from many
// program runs. A nil *VMProfile ignores all operations.
type VMProfile struct {
	mu      sync.Mutex
	samples map[string]uint64
}

// NewVMProfile returns an empty profile.
func NewVMProfile() *VMProfile {
	return &VMProfile{samples: make(map[string]uint64)}
}

// Sampler adapts the profile into a vm.Config.Sample callback for a
// program whose function indices resolve through funcNames. The
// returned closure folds the stack (outermost first) into a
// semicolon-joined key and bumps its sample count. A nil profile
// returns nil, so the VM's poll stays a pointer comparison.
func (p *VMProfile) Sampler(funcNames []string) func(stack []int32, instrs uint64) {
	if p == nil {
		return nil
	}
	var b strings.Builder
	return func(stack []int32, _ uint64) {
		b.Reset()
		for i, fn := range stack {
			if i > 0 {
				b.WriteByte(';')
			}
			if int(fn) < len(funcNames) && fn >= 0 {
				b.WriteString(funcNames[fn])
			} else {
				fmt.Fprintf(&b, "fn%d", fn)
			}
		}
		key := b.String()
		p.mu.Lock()
		p.samples[key]++
		p.mu.Unlock()
	}
}

// Add merges count samples for an already-folded stack key. Used by
// tests and by merge tooling.
func (p *VMProfile) Add(stack string, count uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.samples[stack] += count
	p.mu.Unlock()
}

// Samples returns a copy of the folded-stack → count map.
func (p *VMProfile) Samples() map[string]uint64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.samples))
	for k, v := range p.samples {
		out[k] = v
	}
	return out
}

// Total returns the total sample count.
func (p *VMProfile) Total() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, v := range p.samples {
		n += v
	}
	return n
}

// WriteFolded renders the profile in folded-stack format, one
// "stack count" line per unique stack, sorted by stack for
// deterministic output. Feed to a flamegraph generator as-is.
func (p *VMProfile) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	keys := make([]string, 0, len(p.samples))
	for k := range p.samples {
		keys = append(keys, k)
	}
	counts := make(map[string]uint64, len(p.samples))
	for k, v := range p.samples {
		counts[k] = v
	}
	p.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP serves the folded profile (for `curl | flamegraph.pl`).
func (p *VMProfile) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	p.WriteFolded(w)
}

package obs

import (
	"context"
	"time"
)

// Obs bundles the observability sinks a component may use: a clock,
// a metrics registry, a span tracer, and a VM sampling profile. Any
// field may be nil; every method on a nil *Obs (or with nil fields)
// degrades to a no-op, so components hold one *Obs pointer and never
// branch on configuration.
type Obs struct {
	// Clock supplies time for spans and stage timings. time.Now when
	// nil.
	Clock Clock
	// Reg receives metrics; nil hands out no-op instruments.
	Reg *Registry
	// Tr receives spans; nil hands out nil (no-op) spans.
	Tr *Tracer
	// VMProf aggregates VM stack samples; nil disables sampling.
	VMProf *VMProfile
}

// Now reads the clock (time.Now for a nil Obs or nil Clock).
func (o *Obs) Now() time.Time {
	if o == nil || o.Clock == nil {
		return time.Now()
	}
	return o.Clock()
}

// Registry returns the metrics registry, possibly nil. Safe on nil o.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the span tracer, possibly nil. Safe on nil o.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tr
}

// VMProfile returns the VM sampling profile, possibly nil. Safe on
// nil o.
func (o *Obs) VMProfile() *VMProfile {
	if o == nil {
		return nil
	}
	return o.VMProf
}

// Tracing reports whether spans are being recorded — the one branch
// hot paths take before assembling span attributes.
func (o *Obs) Tracing() bool {
	return o != nil && o.Tr != nil
}

type spanCtxKey struct{}

// ContextWithSpan stores a span in the context so child stages can
// nest under it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the enclosing span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Start opens a span named name under the span in ctx (if any) and
// returns a derived context carrying the new span. With tracing off
// it returns ctx unchanged and a nil span — one pointer comparison.
func (o *Obs) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if !o.Tracing() {
		return ctx, nil
	}
	s := o.Tr.Start(SpanFromContext(ctx), name, attrs...)
	return ContextWithSpan(ctx, s), s
}

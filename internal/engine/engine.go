// Package engine owns the repository's compile → run → profile
// pipeline: every tool and experiment that turns MF source (or an
// assembled program) plus an input into measured branch behaviour
// routes through one Engine.
//
// The engine deduplicates identical work (concurrent requests for the
// same unit share one computation), memoizes compiled programs and
// completed measurements in a bounded in-memory LRU, and optionally
// persists measurements in an on-disk content-addressed cache — the
// repo-level analogue of the paper's IFPROBBER database, which kept
// branch counters across runs of a program so later consumers never
// re-executed the instrumented binary. Cache keys are content hashes
// of everything that can influence a measurement: source text,
// compiler options, input bytes, the VM configuration fingerprint and
// the VM's semantics version (see docs/ENGINE.md for the derivation
// and invalidation rules). A stale, corrupt or truncated cache entry
// is never fatal: it is discarded, counted, and recomputed.
//
// The engine also provides the bounded worker pool used to collect
// the experiment matrix in parallel, and per-stage observability
// (compile/run/profile wall time, instructions executed, cache
// hit/miss counts) via Stats.
//
// Robustness (see docs/ROBUSTNESS.md): every *Context entry point
// honours cancellation and deadlines — the VM polls the context's done
// channel mid-run, so cancellation is prompt even inside a long
// interpretation. Stage panics never unwind through the engine; they
// are recovered and converted into structured *StageError values.
// Transient cache I/O faults are retried with jittered exponential
// backoff and then degraded to misses or dropped writes; compute is
// never retried, because the interpreter is deterministic — a failed
// run would fail identically again.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"branchprof/internal/faults"
	"branchprof/internal/ifprob"
	"branchprof/internal/isa"
	"branchprof/internal/mfc"
	"branchprof/internal/obs"
	"branchprof/internal/vm"
)

// Options configures an Engine.
type Options struct {
	// CacheDir, when non-empty, enables the persistent content-addressed
	// measurement cache rooted at that directory (created on demand).
	CacheDir string
	// Workers bounds the engine's parallel collection pool;
	// 0 means GOMAXPROCS.
	Workers int
	// MemEntries bounds the in-memory LRU of completed measurements;
	// 0 means the default of 256 entries.
	MemEntries int
	// Faults, when non-nil, injects deterministic faults at the
	// pipeline and cache stages (chaos tests only; nil in production).
	Faults *faults.Set
	// MaxRetries bounds retries of transient cache I/O faults;
	// 0 means the default of 2, negative disables retries.
	MaxRetries int
	// RetryBackoff is the base backoff between retries (doubled per
	// attempt, plus jitter); 0 means the default of 500µs.
	RetryBackoff time.Duration
	// Obs, when non-nil, supplies the observability sinks: a clock for
	// stage timing, a span tracer, a metrics registry and a VM sampling
	// profile. Nil costs one pointer comparison on hot paths; the
	// engine then times stages with time.Now and registers its counters
	// on a private registry so Stats keeps working.
	Obs *obs.Obs
}

// Engine is the shared compile→run→profile pipeline. It is safe for
// concurrent use.
type Engine struct {
	workers    int
	mem        *lruCache // execution key → *Outcome
	progs      *lruCache // compile key → *isa.Program
	images     *lruCache // program address → *vm.Image (pre-decoded)
	disk       *diskCache
	faults     *faults.Set
	maxRetries int
	backoff    time.Duration
	obs        *obs.Obs // may be nil; every use is nil-safe
	reg        *obs.Registry
	st         counters

	// Pre-decoded image cache effectiveness, exported as the
	// branchprof_engine_image_{hits,misses} gauges. A miss is a
	// verify/pre-decode/fuse (and codegen-digest lookup) pass.
	imageHits   atomic.Uint64
	imageMisses atomic.Uint64

	mu       sync.Mutex
	inflight map[string]*call
}

// New builds an engine from opts.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MemEntries <= 0 {
		opts.MemEntries = 256
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 500 * time.Microsecond
	}
	reg := opts.Obs.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		workers:    opts.Workers,
		mem:        newLRU(opts.MemEntries),
		progs:      newLRU(opts.MemEntries),
		images:     newLRU(opts.MemEntries),
		faults:     opts.Faults,
		maxRetries: opts.MaxRetries,
		backoff:    opts.RetryBackoff,
		obs:        opts.Obs,
		reg:        reg,
		st:         newCounters(reg),
		inflight:   make(map[string]*call),
	}
	if opts.CacheDir != "" {
		e.disk = &diskCache{dir: opts.CacheDir, faults: opts.Faults}
	}
	reg.GaugeFunc("branchprof_engine_image_hits",
		"Pre-decoded VM image cache hits.",
		func() float64 { return float64(e.imageHits.Load()) })
	reg.GaugeFunc("branchprof_engine_image_misses",
		"Pre-decoded VM image cache misses (image verified, pre-decoded and bound).",
		func() float64 { return float64(e.imageMisses.Load()) })
	return e
}

// Obs returns the engine's observability bundle (possibly nil).
func (e *Engine) Obs() *obs.Obs { return e.obs }

// Registry returns the metrics registry the engine's counters live
// on: the one Options.Obs carried, or the engine's private registry
// when observability was not configured. Never nil.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// now reads the engine's clock: the injected observability clock when
// configured, time.Now otherwise.
func (e *Engine) now() time.Time { return e.obs.Now() }

// span opens a pipeline-stage span under the span carried by ctx.
// With tracing off it returns ctx and a nil (no-op) span after one
// pointer comparison.
func (e *Engine) span(ctx context.Context, name, program, dataset string) (context.Context, *obs.Span) {
	if !e.obs.Tracing() {
		return ctx, nil
	}
	attrs := []obs.Attr{obs.A("program", program)}
	if dataset != "" {
		attrs = append(attrs, obs.A("dataset", dataset))
	}
	return e.obs.Start(ctx, name, attrs...)
}

// endSpan records err (if any) on sp and closes it.
func endSpan(sp *obs.Span, err error) {
	sp.SetError(err)
	sp.End()
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide engine: in-memory caching only, a
// GOMAXPROCS-bounded pool, no persistent cache.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Options{}) })
	return defaultEngine
}

// WorkerCount returns the size of the engine's worker pool.
func (e *Engine) WorkerCount() int { return e.workers }

// Spec identifies one unit of pipeline work: compile Source under
// Options, run it on Input under Config, extract the branch profile.
// Equal specs are the same unit of work and share one cache entry.
type Spec struct {
	Name    string      // program name recorded in profiles and reports
	Source  string      // complete MF source text
	Options mfc.Options // compiler configuration
	Dataset string      // dataset name recorded in the profile
	Input   []byte      // program input bytes
	Config  vm.Config   // VM limits and measurement switches
}

// Outcome is one completed unit of pipeline work. Res and Prof are
// private to the caller (defensive copies on cache hits); Prog is
// shared and must be treated as immutable.
type Outcome struct {
	Prog *isa.Program
	Res  *vm.Result
	Prof *ifprob.Profile
	// CacheHit reports whether the measurement was served from the
	// in-memory or on-disk cache rather than executed.
	CacheHit bool
}

// keyVersion is bumped whenever the key derivation or the persisted
// entry layout changes incompatibly.
const keyVersion = 1

// key derives the content hash identifying the spec's measurement.
func (s *Spec) key() string {
	h := sha256.New()
	fmt.Fprintf(h, "branchprof-engine/%d\x00vm/%d\x00", keyVersion, vm.SemanticsVersion)
	fmt.Fprintf(h, "name=%s\x00dataset=%s\x00", s.Name, s.Dataset)
	fmt.Fprintf(h, "opts=%s\x00cfg=%s\x00", optionsFingerprint(s.Options), s.Config.Fingerprint())
	fmt.Fprintf(h, "src/%d\x00", len(s.Source))
	io.WriteString(h, s.Source)
	fmt.Fprintf(h, "\x00in/%d\x00", len(s.Input))
	h.Write(s.Input)
	return hex.EncodeToString(h.Sum(nil))
}

// optionsFingerprint canonicalizes the compiler configuration for key
// derivation. Every field of mfc.Options appears here; adding a field
// to mfc.Options must extend this string.
func optionsFingerprint(o mfc.Options) string {
	return fmt.Sprintf("dce=%t,inline=%t,inlmax=%d,sel=%t",
		o.DeadBranchElim, o.InlineCalls, o.InlineMaxStmts, o.UseSelects)
}

// call is one in-flight computation; duplicate requests wait on done.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// once runs f exactly once per key among concurrent callers and
// shares its result. A waiter whose ctx is cancelled stops waiting and
// returns the ctx error; the computation itself keeps running for the
// callers that still want it.
func (e *Engine) once(ctx context.Context, key string, f func() (any, error)) (any, error) {
	e.mu.Lock()
	if c, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()
	c.val, c.err = f()
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// Compile builds name's source under opts, memoizing the compiled
// image: repeated compilations of identical (name, source, options)
// return the same *isa.Program, which callers must not mutate.
func (e *Engine) Compile(name, source string, opts mfc.Options) (*isa.Program, error) {
	return e.CompileContext(context.Background(), name, source, opts)
}

// CompileContext is Compile honouring ctx cancellation. Compilation
// itself is short and uninterruptible; the context is checked before
// the work starts and while waiting on a shared in-flight compile.
func (e *Engine) CompileContext(ctx context.Context, name, source string, opts mfc.Options) (*isa.Program, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "compile/%d\x00name=%s\x00opts=%s\x00", keyVersion, name, optionsFingerprint(opts))
	io.WriteString(h, source)
	key := hex.EncodeToString(h.Sum(nil))
	if p, ok := e.progs.get(key); ok {
		return p.(*isa.Program), nil
	}
	v, err := e.once(ctx, "compile:"+key, func() (any, error) {
		if p, ok := e.progs.get(key); ok {
			return p.(*isa.Program), nil
		}
		var prog *isa.Program
		_, sp := e.span(ctx, "compile", name, "")
		err := e.stage(faults.Compile, name, "", func() error {
			start := e.now()
			p, err := mfc.Compile(name, source, opts)
			if err != nil {
				return err
			}
			d := e.now().Sub(start)
			e.st.compiles.Add(1)
			e.st.compileNS.Add(uint64(d))
			e.st.compileLat.Observe(d.Seconds())
			prog = p
			return nil
		})
		endSpan(sp, err)
		if err != nil {
			return nil, err
		}
		e.progs.add(key, prog)
		return prog, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*isa.Program), nil
}

// Execute performs the full pipeline for spec, consulting the caches
// first. A spec carrying a tracer cannot be cached (tracers observe
// the execution itself), so it always runs fresh; everything else is
// served from the in-memory LRU, then the on-disk cache, then
// computed and stored in both.
func (e *Engine) Execute(spec Spec) (*Outcome, error) {
	return e.ExecuteContext(context.Background(), spec)
}

// ExecuteContext is Execute honouring ctx: cancellation and deadlines
// are checked between stages and polled inside the VM run, so a
// cancelled spec returns promptly with an error satisfying
// errors.Is(err, ctx.Err()). A cancelled or faulted measurement is
// never cached.
func (e *Engine) ExecuteContext(ctx context.Context, spec Spec) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, esp := e.span(ctx, "execute", spec.Name, spec.Dataset)
	if spec.Config.Trace != nil {
		prog, err := e.CompileContext(ctx, spec.Name, spec.Source, spec.Options)
		if err != nil {
			endSpan(esp, err)
			return nil, err
		}
		res, err := e.runStage(ctx, prog, &spec)
		if err != nil {
			endSpan(esp, err)
			return nil, err
		}
		prof, err := e.profileStage(ctx, &spec, res)
		endSpan(esp, err)
		if err != nil {
			return nil, err
		}
		return &Outcome{Prog: prog, Res: res, Prof: prof}, nil
	}
	key := spec.key()
	v, err := e.once(ctx, "exec:"+key, func() (any, error) { return e.execute(ctx, &spec, key) })
	if err != nil {
		endSpan(esp, err)
		return nil, err
	}
	out := v.(*Outcome)
	esp.SetAttr("cache_hit", out.CacheHit)
	esp.End()
	// Hand every caller its own counters: cached outcomes are shared
	// state, and experiment code is free to mutate what it is given.
	return &Outcome{
		Prog:     out.Prog,
		Res:      cloneResult(out.Res),
		Prof:     out.Prof.Clone(),
		CacheHit: out.CacheHit,
	}, nil
}

func (e *Engine) execute(ctx context.Context, spec *Spec, key string) (*Outcome, error) {
	if v, ok := e.mem.get(key); ok {
		e.st.memHits.Add(1)
		out := v.(*Outcome)
		return &Outcome{Prog: out.Prog, Res: out.Res, Prof: out.Prof, CacheHit: true}, nil
	}
	e.st.memMisses.Add(1)

	// The compiled image is never persisted — recompiling is cheap and
	// keeps the on-disk format to plain measurement counters — so the
	// program is materialized on every path, including disk hits.
	prog, err := e.CompileContext(ctx, spec.Name, spec.Source, spec.Options)
	if err != nil {
		return nil, err
	}

	label := specLabel(spec.Name, spec.Dataset)
	if e.disk != nil {
		_, sp := e.span(ctx, "cache.load", spec.Name, spec.Dataset)
		res, prof, ok := e.diskLoad(key, label, prog)
		sp.SetAttr("hit", ok)
		sp.End()
		if ok {
			out := &Outcome{Prog: prog, Res: res, Prof: prof, CacheHit: true}
			e.mem.add(key, out)
			return out, nil
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := e.runStage(ctx, prog, spec)
	if err != nil {
		return nil, err
	}
	prof, err := e.profileStage(ctx, spec, res)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Prog: prog, Res: res, Prof: prof}
	e.mem.add(key, out)
	if e.disk != nil {
		_, sp := e.span(ctx, "cache.store", spec.Name, spec.Dataset)
		e.diskStore(key, label, res, prof)
		sp.End()
	}
	return out, nil
}

// runStage executes spec's program as the fault-instrumented,
// panic-recovered "run" stage, wiring ctx's done channel into the VM
// so cancellation interrupts even a long interpretation.
func (e *Engine) runStage(ctx context.Context, prog *isa.Program, spec *Spec) (*vm.Result, error) {
	var res *vm.Result
	ctx, sp := e.span(ctx, "run", spec.Name, spec.Dataset)
	err := e.stage(faults.Run, spec.Name, spec.Dataset, func() error {
		cfg := spec.Config
		cfg.Done = ctx.Done()
		r, err := e.run(prog, spec.Input, &cfg)
		if err != nil {
			if errors.Is(err, vm.ErrCancelled) && ctx.Err() != nil {
				return fmt.Errorf("%w (%v)", ctx.Err(), err)
			}
			return err
		}
		res = r
		return nil
	})
	if res != nil {
		sp.SetAttr("instrs", res.Instrs)
	}
	endSpan(sp, err)
	return res, err
}

// profileStage extracts spec's branch profile as the
// fault-instrumented, panic-recovered "profile" stage.
func (e *Engine) profileStage(ctx context.Context, spec *Spec, res *vm.Result) (*ifprob.Profile, error) {
	var prof *ifprob.Profile
	_, sp := e.span(ctx, "profile", spec.Name, spec.Dataset)
	err := e.stage(faults.Profile, spec.Name, spec.Dataset, func() error {
		prof = e.profile(spec, res)
		return nil
	})
	endSpan(sp, err)
	return prof, err
}

// diskLoad reads and validates a persisted measurement. Entries that
// fail to decode, carry the wrong version or key, or disagree with
// the compiled program's site table are treated as misses and
// recomputed — a bad entry is never fatal. Transient read faults are
// retried with backoff and degraded to a miss when retries exhaust.
func (e *Engine) diskLoad(key, label string, prog *isa.Program) (*vm.Result, *ifprob.Profile, bool) {
	res, prof, ok, invalid := e.diskLoadRetry(key, label)
	if invalid {
		e.st.diskInvalid.Add(1)
	}
	if !ok {
		e.st.diskMisses.Add(1)
		return nil, nil, false
	}
	if len(res.SiteTotal) != len(prog.Sites) || (prof != nil && len(prof.Total) != len(prog.Sites)) {
		// Entry from a different compiler era: site table moved.
		e.st.diskInvalid.Add(1)
		e.st.diskMisses.Add(1)
		return nil, nil, false
	}
	e.st.diskHits.Add(1)
	return res, prof, true
}

// diskLoadRetry is one cache read attempt loop: injected (transient)
// faults and read-side panics are retried up to the bound, then the
// entry is treated as invalid; a genuinely corrupt file is never
// retried — it will not heal.
func (e *Engine) diskLoadRetry(key, label string) (res *vm.Result, prof *ifprob.Profile, ok, invalid bool) {
	for attempt := 0; ; attempt++ {
		ferr := e.cacheAttempt(faults.CacheRead, label, func() error {
			res, prof, ok, invalid = e.disk.load(key)
			return nil
		})
		if ferr == nil {
			return res, prof, ok, invalid
		}
		if attempt >= e.maxRetries {
			e.st.retryGiveUps.Add(1)
			return nil, nil, false, true
		}
		e.st.retries.Add(1)
		backoffSleep(e.backoff, attempt)
	}
}

// diskStore persists a measurement, retrying transient write faults
// with backoff. Exhausted retries are counted and dropped — a failed
// cache write never interrupts the pipeline.
func (e *Engine) diskStore(key, label string, res *vm.Result, prof *ifprob.Profile) {
	for attempt := 0; ; attempt++ {
		err := e.cacheAttempt(faults.CacheWrite, label, func() error {
			return e.disk.store(key, label, res, prof)
		})
		if err == nil {
			return
		}
		if attempt >= e.maxRetries {
			e.st.retryGiveUps.Add(1)
			e.st.diskWriteErrs.Add(1)
			return
		}
		e.st.retries.Add(1)
		backoffSleep(e.backoff, attempt)
	}
}

// cacheAttempt runs one cache I/O attempt: fault injectors fire first,
// and a panic anywhere in the attempt (injected or real) is converted
// into an error so the retry loop — not the caller — decides what
// happens next.
func (e *Engine) cacheAttempt(st faults.Stage, label string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.st.panics.Add(1)
			err = fmt.Errorf("engine: %s %s: %w", st, label, &PanicError{Value: r})
		}
	}()
	if ferr := e.faults.Fire(st, label); ferr != nil {
		return ferr
	}
	return f()
}

// Run executes a precompiled program through the engine. contentKey
// identifies the program's content (for images that did not come from
// MF source, e.g. assembled .mfs text); an empty contentKey — or a
// config carrying a tracer — disables caching for the run, which
// still executes through the pool-accounted, stats-counted path.
func (e *Engine) Run(prog *isa.Program, contentKey string, input []byte, cfg *vm.Config) (*vm.Result, error) {
	return e.RunContext(context.Background(), prog, contentKey, input, cfg)
}

// RunContext is Run honouring ctx: the VM polls the context's done
// channel mid-run, so cancellation is prompt even inside a long
// interpretation.
func (e *Engine) RunContext(ctx context.Context, prog *isa.Program, contentKey string, input []byte, cfg *vm.Config) (*vm.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var c vm.Config
	if cfg != nil {
		c = *cfg
	}
	label := prog.Source
	if contentKey == "" || c.Trace != nil {
		return e.runCtx(ctx, prog, input, &c)
	}
	h := sha256.New()
	fmt.Fprintf(h, "run/%d\x00vm/%d\x00name=%s\x00cfg=%s\x00", keyVersion, vm.SemanticsVersion, prog.Source, c.Fingerprint())
	io.WriteString(h, contentKey)
	fmt.Fprintf(h, "\x00in/%d\x00", len(input))
	h.Write(input)
	key := hex.EncodeToString(h.Sum(nil))

	v, err := e.once(ctx, "run:"+key, func() (any, error) {
		if v, ok := e.mem.get(key); ok {
			e.st.memHits.Add(1)
			return v, nil
		}
		e.st.memMisses.Add(1)
		if e.disk != nil {
			res, _, ok, invalid := e.diskLoadRetry(key, label)
			if invalid {
				e.st.diskInvalid.Add(1)
			}
			if ok {
				e.st.diskHits.Add(1)
				e.mem.add(key, res)
				return res, nil
			}
			e.st.diskMisses.Add(1)
		}
		res, err := e.runCtx(ctx, prog, input, &c)
		if err != nil {
			return nil, err
		}
		e.mem.add(key, res)
		if e.disk != nil {
			e.diskStore(key, label, res, nil)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return cloneResult(v.(*vm.Result)), nil
}

// runCtx wires ctx's done channel into the VM configuration and maps
// a cancellation trap back to the context's own error.
func (e *Engine) runCtx(ctx context.Context, prog *isa.Program, input []byte, cfg *vm.Config) (*vm.Result, error) {
	ctx, sp := e.span(ctx, "run", prog.Source, "")
	cfg.Done = ctx.Done()
	res, err := e.run(prog, input, cfg)
	if err != nil && errors.Is(err, vm.ErrCancelled) && ctx.Err() != nil {
		err = fmt.Errorf("%w (%v)", ctx.Err(), err)
		res = nil
	}
	if res != nil {
		sp.SetAttr("instrs", res.Instrs)
	}
	endSpan(sp, err)
	return res, err
}

// run is the timed, counted VM execution every path funnels through.
// When a VM sampling profile is configured (and the caller did not
// install its own Sample hook), the run feeds stack samples into it.
func (e *Engine) run(prog *isa.Program, input []byte, cfg *vm.Config) (*vm.Result, error) {
	if vp := e.obs.VMProfile(); vp != nil && cfg.Sample == nil {
		cfg.Sample = vp.Sampler(funcNames(prog))
	}
	start := e.now()
	res, err := e.image(prog).Run(input, cfg)
	d := e.now().Sub(start)
	e.st.runNS.Add(uint64(d))
	e.st.runs.Add(1)
	e.st.runLat.Observe(d.Seconds())
	if res != nil {
		e.st.instrs.Add(res.Instrs)
		if secs := d.Seconds(); secs > 0 {
			e.st.mips.Observe(float64(res.Instrs) / secs / 1e6)
		}
	}
	return res, err
}

// image returns the memoized pre-decoded form of prog, building it on
// first use. The key is prog's address: a cached entry keeps its
// program reachable, so the address cannot be recycled while the
// entry lives, and the Program check guards the eviction race where
// it can. This makes the one-time verify/pre-decode/fuse pass free
// across the repeated runs the measurement matrix performs.
func (e *Engine) image(prog *isa.Program) *vm.Image {
	key := fmt.Sprintf("%p", prog)
	if v, ok := e.images.get(key); ok {
		if im := v.(*vm.Image); im.Program() == prog {
			e.imageHits.Add(1)
			return im
		}
	}
	e.imageMisses.Add(1)
	im := vm.Load(prog)
	e.images.add(key, im)
	return im
}

// funcNames maps a program's function indices to their names for the
// folded-stack sampler.
func funcNames(prog *isa.Program) []string {
	names := make([]string, len(prog.Funcs))
	for i := range prog.Funcs {
		names[i] = prog.Funcs[i].Name
	}
	return names
}

// profile is the timed profile-extraction stage.
func (e *Engine) profile(spec *Spec, res *vm.Result) *ifprob.Profile {
	start := e.now()
	prof := ifprob.FromRun(spec.Name, spec.Dataset, res)
	d := e.now().Sub(start)
	e.st.profileNS.Add(uint64(d))
	e.st.profiles.Add(1)
	e.st.profileLat.Observe(d.Seconds())
	return prof
}

// Parallel runs f(0), …, f(n-1) with at most WorkerCount goroutines
// in flight and waits for all of them. The first error in index order
// is returned, so failure reporting is deterministic regardless of
// scheduling.
func (e *Engine) Parallel(n int, f func(i int) error) error {
	return e.ParallelContext(context.Background(), n, f)
}

// ParallelContext is Parallel honouring ctx: once the context is
// cancelled no new cell is started (its error slot is left as the
// context error), in-flight cells are expected to observe ctx
// themselves, and every started worker is always awaited — the pool
// never leaks goroutines. A panic in f is recovered into that cell's
// error slot as a *PanicError rather than tearing down siblings.
// ParallelErrors retrieves the full per-cell error slice.
func (e *Engine) ParallelContext(ctx context.Context, n int, f func(i int) error) error {
	_, err := e.parallel(ctx, n, f)
	return err
}

// ParallelErrors is ParallelContext returning the per-cell error
// slice (length n, nil for cells that succeeded) alongside the first
// error in index order. Degraded-mode callers use it to keep healthy
// cells while recording exactly which cells failed and why.
func (e *Engine) ParallelErrors(ctx context.Context, n int, f func(i int) error) ([]error, error) {
	return e.parallel(ctx, n, f)
}

func (e *Engine) parallel(ctx context.Context, n int, f func(i int) error) ([]error, error) {
	if n == 0 {
		return nil, nil
	}
	sem := make(chan struct{}, e.workers)
	errs := make([]error, n)
	var wg sync.WaitGroup
loop:
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break loop
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					e.st.panics.Add(1)
					errs[i] = fmt.Errorf("engine: parallel cell %d: %w", i, &PanicError{Value: r})
				}
			}()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return errs, err
		}
	}
	return errs, nil
}

// cloneResult deep-copies a measurement so cached state stays
// isolated from caller mutation.
func cloneResult(r *vm.Result) *vm.Result {
	if r == nil {
		return nil
	}
	c := *r
	c.Output = append([]byte(nil), r.Output...)
	c.SiteTaken = append([]uint64(nil), r.SiteTaken...)
	c.SiteTotal = append([]uint64(nil), r.SiteTotal...)
	if r.PerPC != nil {
		c.PerPC = make([][]uint64, len(r.PerPC))
		for i := range r.PerPC {
			c.PerPC[i] = append([]uint64(nil), r.PerPC[i]...)
		}
	}
	return &c
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestExecuteBatch: results come back in spec order, failures stay
// per-cell, and healthy specs complete alongside broken ones.
func TestExecuteBatch(t *testing.T) {
	e := New(Options{})
	specs := []Spec{
		testSpec("aaab"),
		{Name: "broken", Source: "func main() int { return undefined; }", Dataset: "d0"},
		testSpec("bbbb"),
	}
	results := e.ExecuteBatch(context.Background(), specs)
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	if results[0].Err != nil || results[0].Out == nil {
		t.Fatalf("healthy spec 0 failed: %v", results[0].Err)
	}
	if results[1].Err == nil || results[1].Out != nil {
		t.Fatal("broken spec 1 did not fail")
	}
	if results[2].Err != nil || results[2].Out == nil {
		t.Fatalf("healthy spec 2 failed after a broken sibling: %v", results[2].Err)
	}
	if got := results[0].Out.Prof.TakenCount(); got == 0 {
		t.Fatal("spec 0 profile lost its taken counts")
	}
	// Identical specs agree with a solo execution.
	solo, err := e.Execute(testSpec("aaab"))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Out.Res.Instrs != solo.Res.Instrs {
		t.Fatalf("batch instrs %d != solo instrs %d", results[0].Out.Res.Instrs, solo.Res.Instrs)
	}
}

// TestExecuteBatchCancellation: a cancelled context reports the
// context error for unstarted cells instead of hanging.
func TestExecuteBatchCancellation(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := make([]Spec, 8)
	for i := range specs {
		specs[i] = testSpec(fmt.Sprintf("a%d", i))
	}
	results := e.ExecuteBatch(ctx, specs)
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("cell %d after cancel: %v", i, r.Err)
		}
	}
}

// TestExecuteBatchEmpty: no specs, no results, no panic.
func TestExecuteBatchEmpty(t *testing.T) {
	if got := New(Options{}).ExecuteBatch(context.Background(), nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

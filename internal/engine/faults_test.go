package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"branchprof/internal/faults"
)

// loopSrc spins long enough that the VM's cancellation poll (every
// 4096 instructions) fires many times before natural termination.
const loopSrc = `
func main() int {
	var i int = 0;
	var n int = 0;
	while (i < 20000000) {
		if (i - (i / 2) * 2 == 0) {
			n = n + 1;
		}
		i = i + 1;
	}
	return n;
}
`

// TestFaultMatrixComputeStages drives an injected error and an
// injected panic through each compute stage and checks that what comes
// back is a structured *StageError naming that stage — never an
// escaped panic, never an unattributed error.
func TestFaultMatrixComputeStages(t *testing.T) {
	for _, st := range []faults.Stage{faults.Compile, faults.Run, faults.Profile} {
		for _, kind := range []faults.Kind{faults.Error, faults.Panic} {
			t.Run(string(st)+"/"+kind.String(), func(t *testing.T) {
				e := New(Options{Faults: faults.NewSet(1, faults.Rule{Stage: st, Kind: kind})})
				_, err := e.Execute(testSpec("abc"))
				if err == nil {
					t.Fatalf("injected %s at %s produced no error", kind, st)
				}
				var se *StageError
				if !errors.As(err, &se) {
					t.Fatalf("error is %T (%v), want *StageError", err, err)
				}
				if se.Stage != st || se.Name != "count" {
					t.Fatalf("stage error = %+v, want stage %s for count", se, st)
				}
				switch kind {
				case faults.Error:
					if !faults.Is(err) {
						t.Fatalf("injected error lost its sentinel: %v", err)
					}
				case faults.Panic:
					var pe *PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("recovered panic not surfaced as *PanicError: %v", err)
					}
					if _, ok := pe.Value.(*faults.InjectedPanic); !ok {
						t.Fatalf("panic value = %#v, want *faults.InjectedPanic", pe.Value)
					}
				}
				if e.Stats().Panics != map[faults.Kind]uint64{faults.Error: 0, faults.Panic: 1}[kind] {
					t.Fatalf("panic counter = %d after %s fault", e.Stats().Panics, kind)
				}
			})
		}
	}
}

// TestFaultZeroRulesIdenticalOutcome: an engine carrying an empty
// fault set (and one carrying none) measure identically — the
// instrumentation is a pass-through when nothing matches.
func TestFaultZeroRulesIdenticalOutcome(t *testing.T) {
	plain := New(Options{})
	armed := New(Options{Faults: faults.NewSet(1)})
	a, err := plain.Execute(testSpec("abcabc"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := armed.Execute(testSpec("abcabc"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Res.Instrs != b.Res.Instrs || string(a.Res.Output) != string(b.Res.Output) {
		t.Fatalf("fault-instrumented run diverged: %+v vs %+v", a.Res, b.Res)
	}
}

// TestRetryTransientCacheReadFault: a cache read that fails once is
// retried and then served, so a populated cache entry survives a
// transient fault without recomputation.
func TestRetryTransientCacheReadFault(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Options{CacheDir: dir}).Execute(testSpec("retry me")); err != nil {
		t.Fatal(err)
	}
	e := New(Options{
		CacheDir:     dir,
		Faults:       faults.NewSet(1, faults.Rule{Stage: faults.CacheRead, Kind: faults.Error, Nth: 1}),
		RetryBackoff: 10 * time.Microsecond,
	})
	out, err := e.Execute(testSpec("retry me"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("entry recomputed despite a retryable read fault")
	}
	st := e.Stats()
	if st.Retries < 1 || st.RetryGiveUps != 0 || st.Runs != 0 {
		t.Fatalf("stats = %+v, want ≥1 retry, 0 give-ups, 0 runs", st)
	}
}

// TestRetryExhaustionDegradesReadToMiss: a cache read that keeps
// failing is abandoned after the retry budget and the measurement is
// recomputed — degraded, counted, and still correct. The in-memory
// LRU stays consistent: the recomputed entry serves later callers.
func TestRetryExhaustionDegradesReadToMiss(t *testing.T) {
	dir := t.TempDir()
	want, err := New(Options{CacheDir: dir}).Execute(testSpec("exhaust"))
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{
		CacheDir:     dir,
		Faults:       faults.NewSet(1, faults.Rule{Stage: faults.CacheRead, Kind: faults.Error}),
		RetryBackoff: 10 * time.Microsecond,
	})
	got, err := e.Execute(testSpec("exhaust"))
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Fatal("permanently faulted read still reported a disk hit")
	}
	if got.Res.Instrs != want.Res.Instrs || string(got.Res.Output) != string(want.Res.Output) {
		t.Fatalf("recomputed result diverged: %+v vs %+v", got.Res, want.Res)
	}
	if st := e.Stats(); st.RetryGiveUps == 0 || st.Runs != 1 {
		t.Fatalf("stats = %+v, want ≥1 give-up and exactly 1 run", st)
	}
	// The LRU was populated by the recompute path despite the chaos.
	again, err := e.Execute(testSpec("exhaust"))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Res.Instrs != want.Res.Instrs {
		t.Fatalf("post-exhaustion LRU entry wrong: hit=%v %+v", again.CacheHit, again.Res)
	}
}

// TestRetryExhaustedWriteIsDropped: cache writes that keep failing are
// dropped and counted; the pipeline result is unaffected.
func TestRetryExhaustedWriteIsDropped(t *testing.T) {
	e := New(Options{
		CacheDir:     t.TempDir(),
		Faults:       faults.NewSet(1, faults.Rule{Stage: faults.CacheWrite, Kind: faults.Error}),
		RetryBackoff: 10 * time.Microsecond,
	})
	out, err := e.Execute(testSpec("droppable"))
	if err != nil {
		t.Fatalf("failed cache write surfaced to the caller: %v", err)
	}
	if string(out.Res.Output) != "droppable" {
		t.Fatalf("output = %q", out.Res.Output)
	}
	if st := e.Stats(); st.RetryGiveUps == 0 || st.DiskWriteErrs == 0 {
		t.Fatalf("stats = %+v, want the dropped write counted", st)
	}
}

// TestRetryCacheReadPanicAbsorbed: a panic during a cache read is
// retried like an injected error and never unwinds to the caller.
func TestRetryCacheReadPanicAbsorbed(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Options{CacheDir: dir}).Execute(testSpec("panic read")); err != nil {
		t.Fatal(err)
	}
	e := New(Options{
		CacheDir:     dir,
		Faults:       faults.NewSet(1, faults.Rule{Stage: faults.CacheRead, Kind: faults.Panic, Nth: 1}),
		RetryBackoff: 10 * time.Microsecond,
	})
	out, err := e.Execute(testSpec("panic read"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("retry after a read-side panic did not hit")
	}
	if st := e.Stats(); st.Panics != 1 || st.Retries < 1 {
		t.Fatalf("stats = %+v, want the panic counted and retried", st)
	}
}

// TestTornCacheWriteDetectedOnReload: a torn cache write leaves a
// truncated entry that a later engine detects, discards, and
// recomputes — corruption costs a recompute, never a wrong answer.
func TestTornCacheWriteDetectedOnReload(t *testing.T) {
	dir := t.TempDir()
	tearing := New(Options{
		CacheDir: dir,
		Faults:   faults.NewSet(3, faults.Rule{Stage: faults.CacheWrite, Kind: faults.TornWrite, Nth: 1}),
	})
	want, err := tearing.Execute(testSpec("torn entry"))
	if err != nil {
		t.Fatal(err)
	}

	clean := New(Options{CacheDir: dir})
	got, err := clean.Execute(testSpec("torn entry"))
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Fatal("torn entry served as a cache hit")
	}
	if got.Res.Instrs != want.Res.Instrs {
		t.Fatalf("recomputed instrs = %d, want %d", got.Res.Instrs, want.Res.Instrs)
	}
	if st := clean.Stats(); st.DiskInvalid == 0 {
		t.Fatalf("stats = %+v, want the torn entry counted invalid", st)
	}
}

// TestCancelExecutePromptly: cancelling mid-interpretation interrupts
// the VM loop well before the program would finish on its own.
func TestCancelExecutePromptly(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := e.ExecuteContext(ctx, Spec{Name: "spin", Source: loopSrc, Dataset: "d0"})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("cancellation took %v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}

// TestCancelledSpecNeverCached: a cancelled measurement must not
// poison the cache — re-running with a live context computes fresh.
func TestCancelledSpecNeverCached(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteContext(ctx, testSpec("cc")); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context returned %v", err)
	}
	out, err := e.Execute(testSpec("cc"))
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Fatal("cancelled attempt left a cache entry")
	}
}

// TestCancelDeadlineExceeded: a deadline behaves like cancellation and
// surfaces as context.DeadlineExceeded.
func TestCancelDeadlineExceeded(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := e.ExecuteContext(ctx, Spec{Name: "spin", Source: loopSrc, Dataset: "d0"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run returned %v", err)
	}
}

// TestCancelParallelFillsRemainingSlots: once the context dies, cells
// not yet started get the context error and the pool drains without
// leaking — the per-cell error slice accounts for every index.
func TestCancelParallelFillsRemainingSlots(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	errs, err := func() ([]error, error) {
		go func() {
			<-started // first cell is running
			cancel()
			close(release)
		}()
		return e.ParallelErrors(ctx, 64, func(i int) error {
			started <- struct{}{}
			<-release
			return nil
		})
	}()
	if err == nil {
		t.Fatal("cancelled parallel returned no error")
	}
	if len(errs) != 64 {
		t.Fatalf("error slice has %d slots, want 64", len(errs))
	}
	cancelled := 0
	for _, e := range errs {
		if errors.Is(e, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no slot carries the context error")
	}
}

// TestFaultParallelPanicIsolatedToCell: one panicking cell becomes
// that cell's error; its 63 siblings complete normally.
func TestFaultParallelPanicIsolatedToCell(t *testing.T) {
	e := New(Options{Workers: 4})
	errs, err := e.ParallelErrors(context.Background(), 64, func(i int) error {
		if i == 17 {
			panic("cell 17 exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking cell produced no error")
	}
	var pe *PanicError
	if !errors.As(errs[17], &pe) || pe.Value != "cell 17 exploded" {
		t.Fatalf("cell 17 error = %v", errs[17])
	}
	if !strings.Contains(errs[17].Error(), "cell 17") {
		t.Fatalf("cell error does not name its index: %v", errs[17])
	}
	for i, ce := range errs {
		if i != 17 && ce != nil {
			t.Fatalf("sibling cell %d failed: %v", i, ce)
		}
	}
	if e.Stats().Panics != 1 {
		t.Fatalf("panic counter = %d", e.Stats().Panics)
	}
}

// TestFaultDelayOnlySlowsNeverFails: Delay rules perturb timing — the
// race-detector's favourite chaos — without changing results.
func TestFaultDelayOnlySlowsNeverFails(t *testing.T) {
	e := New(Options{
		Faults: faults.NewSet(5, faults.Rule{Kind: faults.Delay, Prob: 0.5, Delay: 100 * time.Microsecond}),
	})
	want, err := New(Options{}).Execute(testSpec("slowpoke"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(testSpec("slowpoke"))
	if err != nil {
		t.Fatalf("delay-only fault set broke the pipeline: %v", err)
	}
	if got.Res.Instrs != want.Res.Instrs || string(got.Res.Output) != string(want.Res.Output) {
		t.Fatalf("delayed run diverged: %+v vs %+v", got.Res, want.Res)
	}
}

package engine

import (
	"container/list"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"branchprof/internal/faults"
	"branchprof/internal/flock"
	"branchprof/internal/ifprob"
	"branchprof/internal/vm"
)

// lruCache is a mutex-guarded LRU keyed by content hash.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// diskVersion is the persisted entry layout version; entries written
// with any other version are recomputed.
const diskVersion = 1

// diskEntry is the serialized measurement: the run's counters and,
// for full pipeline work, its extracted branch profile. The key is
// echoed so a file renamed or copied to the wrong address is rejected.
type diskEntry struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Res     *vm.Result      `json:"result"`
	Prof    *ifprob.Profile `json:"profile,omitempty"`
}

// diskCache is the persistent content-addressed measurement store:
// one JSON file per key under dir, written atomically (temp file +
// rename) so a crashed writer can only ever leave a stray temp file,
// never a truncated entry at the final path. The fault set (nil in
// production) lets chaos tests tear writes partway through to prove
// load rejects the result.
type diskCache struct {
	dir    string
	faults *faults.Set
}

func (d *diskCache) path(key string) string {
	return filepath.Join(d.dir, key+".json")
}

// load reads the entry for key. ok reports a usable entry; invalid
// reports that a file existed but was corrupt, truncated, stale, or
// misplaced (the caller counts it and recomputes).
func (d *diskCache) load(key string) (res *vm.Result, prof *ifprob.Profile, ok, invalid bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, false, false
		}
		return nil, nil, false, true
	}
	var ent diskEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, nil, false, true
	}
	if ent.Version != diskVersion || ent.Key != key || ent.Res == nil {
		return nil, nil, false, true
	}
	if len(ent.Res.SiteTaken) != len(ent.Res.SiteTotal) {
		return nil, nil, false, true
	}
	if ent.Prof != nil {
		if err := ent.Prof.CheckConsistent(); err != nil {
			return nil, nil, false, true
		}
	}
	return ent.Res, ent.Prof, true, false
}

// store writes the entry for key atomically. Failures are reported to
// the caller for counting but never interrupt the pipeline. A torn-
// write fault rule truncates the payload before it reaches the file,
// simulating a crash mid-write that still survived the rename.
func (d *diskCache) store(key, label string, res *vm.Result, prof *ifprob.Profile) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(&diskEntry{Version: diskVersion, Key: key, Res: res, Prof: prof})
	if err != nil {
		return err
	}
	// Serialize writers sharing this cache directory across processes
	// (advisory `<dir>/.branchprof.lock`, see docs/ENGINE.md). Loads
	// stay lock-free: every entry is validated on read and a bad one
	// degrades to a miss.
	lock, err := flock.Acquire(flock.CacheLockPath(d.dir))
	if err != nil {
		return err
	}
	defer lock.Unlock()
	data = data[:d.faults.Torn(faults.CacheWrite, label, len(data))]
	tmp, err := os.CreateTemp(d.dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

//go:build !branchprof_nocodegen

package engine

// The engine is the seam where the codegen backend enters the
// process: importing the generated package registers every workload
// analogue's compiled body with the vm backend registry, so images
// the engine loads bind native code when the program digest matches
// and fall back to the fast interpreter otherwise. Build with
// -tags branchprof_nocodegen to run interpreter-only.
import _ "branchprof/internal/workloads/compiled"

package engine

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"branchprof/internal/ifprob"
	"branchprof/internal/vm"
)

// fullResult builds a vm.Result with every field populated, including
// the optional per-PC matrix, so the round-trip test covers the whole
// serialized surface.
func fullResult() *vm.Result {
	return &vm.Result{
		Instrs:          123456,
		ExitCode:        7,
		Output:          []byte("hello\x00world\n"),
		SiteTaken:       []uint64{10, 0, 999},
		SiteTotal:       []uint64{20, 5, 1000},
		Jumps:           42,
		DirectCalls:     8,
		DirectReturns:   8,
		IndirectCalls:   2,
		IndirectReturns: 2,
		MaxDepth:        17,
		PerPC:           [][]uint64{{1, 2, 3}, {0, 0, 9}},
	}
}

func fullProfile() *ifprob.Profile {
	return &ifprob.Profile{
		Program: "demo",
		Dataset: "d0",
		Taken:   []uint64{10, 0, 999},
		Total:   []uint64{20, 5, 1000},
		Instrs:  123456,
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d := &diskCache{dir: t.TempDir()}
	key := "0123abcd"
	if err := d.store(key, "t", fullResult(), fullProfile()); err != nil {
		t.Fatal(err)
	}
	res, prof, ok, invalid := d.load(key)
	if !ok || invalid {
		t.Fatalf("load: ok=%t invalid=%t, want a clean hit", ok, invalid)
	}
	if !reflect.DeepEqual(res, fullResult()) {
		t.Fatalf("result did not survive the round trip:\n got %+v\nwant %+v", res, fullResult())
	}
	if !reflect.DeepEqual(prof, fullProfile()) {
		t.Fatalf("profile did not survive the round trip:\n got %+v\nwant %+v", prof, fullProfile())
	}
}

func TestDiskRoundTripWithoutProfile(t *testing.T) {
	d := &diskCache{dir: t.TempDir()}
	if err := d.store("k", "t", fullResult(), nil); err != nil {
		t.Fatal(err)
	}
	res, prof, ok, invalid := d.load("k")
	if !ok || invalid || prof != nil {
		t.Fatalf("load: ok=%t invalid=%t prof=%v, want hit with nil profile", ok, invalid, prof)
	}
	if res.Instrs != 123456 {
		t.Fatalf("result corrupted: %+v", res)
	}
}

func TestDiskMissingIsPlainMiss(t *testing.T) {
	d := &diskCache{dir: t.TempDir()}
	if _, _, ok, invalid := d.load("nothere"); ok || invalid {
		t.Fatalf("missing entry: ok=%t invalid=%t, want plain miss", ok, invalid)
	}
}

// corrupt rewrites an existing entry's file with mangle and asserts
// the next load reports an invalid entry rather than failing or
// returning garbage.
func corruptCase(t *testing.T, mangle func(path string, data []byte)) {
	t.Helper()
	d := &diskCache{dir: t.TempDir()}
	key := "deadbeef"
	if err := d.store(key, "t", fullResult(), fullProfile()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		t.Fatal(err)
	}
	mangle(d.path(key), data)
	if _, _, ok, invalid := d.load(key); ok || !invalid {
		t.Fatalf("mangled entry: ok=%t invalid=%t, want rejected as invalid", ok, invalid)
	}
}

func TestDiskRejectsCorruptJSON(t *testing.T) {
	corruptCase(t, func(path string, data []byte) {
		os.WriteFile(path, []byte("{not json at all"), 0o644)
	})
}

func TestDiskRejectsTruncatedEntry(t *testing.T) {
	corruptCase(t, func(path string, data []byte) {
		os.WriteFile(path, data[:len(data)/2], 0o644)
	})
}

func TestDiskRejectsEmptyFile(t *testing.T) {
	corruptCase(t, func(path string, data []byte) {
		os.WriteFile(path, nil, 0o644)
	})
}

func TestDiskRejectsVersionMismatch(t *testing.T) {
	corruptCase(t, func(path string, data []byte) {
		var ent diskEntry
		if err := json.Unmarshal(data, &ent); err != nil {
			t.Fatal(err)
		}
		ent.Version = 999
		out, _ := json.Marshal(&ent)
		os.WriteFile(path, out, 0o644)
	})
}

func TestDiskRejectsMisplacedEntry(t *testing.T) {
	// An entry copied to a different key's address must not be served:
	// the embedded key disagrees with the file name.
	d := &diskCache{dir: t.TempDir()}
	if err := d.store("rightkey", "t", fullResult(), fullProfile()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(d.path("rightkey"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("wrongkey"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, invalid := d.load("wrongkey"); ok || !invalid {
		t.Fatalf("misplaced entry: ok=%t invalid=%t, want rejected as invalid", ok, invalid)
	}
}

func TestDiskRejectsInconsistentCounters(t *testing.T) {
	corruptCase(t, func(path string, data []byte) {
		var ent diskEntry
		if err := json.Unmarshal(data, &ent); err != nil {
			t.Fatal(err)
		}
		ent.Prof.Taken[0] = ent.Prof.Total[0] + 1 // taken > total is impossible
		out, _ := json.Marshal(&ent)
		os.WriteFile(path, out, 0o644)
	})
}

// TestEngineRecomputesOverCorruptEntry drives corruption through the
// full pipeline: a trashed cache file must cost one recomputation and
// one DiskInvalid tick, never an error.
func TestEngineRecomputesOverCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("corruption survivor")

	cold := New(Options{CacheDir: dir})
	want, err := cold.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Trash every entry in the cache directory.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("cold run persisted nothing")
	}
	for _, f := range files {
		if err := os.WriteFile(dir+"/"+f.Name(), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := New(Options{CacheDir: dir})
	got, err := warm.Execute(spec)
	if err != nil {
		t.Fatalf("corrupt cache entry became fatal: %v", err)
	}
	if got.CacheHit {
		t.Fatal("corrupt entry was served as a hit")
	}
	if got.Res.Instrs != want.Res.Instrs {
		t.Fatalf("recomputed measurement differs: %d vs %d instrs", got.Res.Instrs, want.Res.Instrs)
	}
	st := warm.Stats()
	if st.DiskInvalid == 0 {
		t.Fatal("invalid entry was not counted")
	}
	if st.Runs != 1 {
		t.Fatalf("recomputation ran %d times, want 1", st.Runs)
	}

	// The recomputation must also have repaired the entry on disk.
	repaired := New(Options{CacheDir: dir})
	again, err := repaired.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("recomputed entry was not re-persisted")
	}
}

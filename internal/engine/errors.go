package engine

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"branchprof/internal/faults"
)

// StageError attributes a pipeline failure to the stage that produced
// it and the spec it was working on. Every error Execute and friends
// return is a *StageError; Unwrap exposes the cause, so errors.Is/As
// against vm.ErrFuel, *vm.RuntimeError, context.Canceled and
// faults.ErrInjected keep working.
type StageError struct {
	Stage   faults.Stage
	Name    string // program (spec) name
	Dataset string // dataset name; empty for dataset-free work (compiles)
	Err     error
}

// Error renders "engine: <stage> <name>/<dataset>: cause".
func (e *StageError) Error() string {
	if e.Dataset != "" {
		return fmt.Sprintf("engine: %s %s/%s: %v", e.Stage, e.Name, e.Dataset, e.Err)
	}
	return fmt.Sprintf("engine: %s %s: %v", e.Stage, e.Name, e.Err)
}

// Unwrap exposes the cause.
func (e *StageError) Unwrap() error { return e.Err }

// PanicError is the cause carried by a StageError built from a
// recovered stage panic: the panic value and the stack at recovery.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is available on the struct
// for diagnostics but kept out of one-line reports.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// stage runs f as one named pipeline stage for spec (name, dataset):
// it consults the fault injectors first, converts any panic into a
// structured *StageError instead of unwinding through the engine, and
// wraps plain errors with the stage and spec identity.
func (e *Engine) stage(st faults.Stage, name, dataset string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.st.panics.Add(1)
			err = &StageError{Stage: st, Name: name, Dataset: dataset,
				Err: &PanicError{Value: r, Stack: debug.Stack()}}
		}
	}()
	if ferr := e.faults.Fire(st, specLabel(name, dataset)); ferr != nil {
		return &StageError{Stage: st, Name: name, Dataset: dataset, Err: ferr}
	}
	if err := f(); err != nil {
		if se, ok := err.(*StageError); ok {
			return se
		}
		return &StageError{Stage: st, Name: name, Dataset: dataset, Err: err}
	}
	return nil
}

// specLabel is the operation label fault rules match against.
func specLabel(name, dataset string) string {
	if dataset == "" {
		return name
	}
	return name + "/" + dataset
}

// jitter is the engine's seeded backoff randomizer; retry timing need
// not be reproducible, only bounded, so one process-wide source is
// fine.
var jitter = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}

// backoffSleep sleeps for the attempt's jittered exponential backoff:
// base·2^attempt plus up to 50% random jitter.
func backoffSleep(base time.Duration, attempt int) {
	d := base << uint(attempt)
	jitter.mu.Lock()
	j := time.Duration(jitter.rng.Int63n(int64(d)/2 + 1))
	jitter.mu.Unlock()
	time.Sleep(d + j)
}

package engine

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"branchprof/internal/mfc"
	"branchprof/internal/obs"
)

const obsLoopSrc = `
func main() int {
	var i int = 0;
	var s int = 0;
	while (i < 20000) {
		s = s + i;
		i = i + 1;
	}
	return s;
}
`

var obsEpoch = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// obsEngine builds a fresh engine with a deterministic clock, a JSONL
// tracer into buf, and its own registry.
func obsEngine(buf *strings.Builder) *Engine {
	clock := obs.StepClock(obsEpoch, time.Millisecond)
	o := &obs.Obs{
		Clock: clock,
		Reg:   obs.NewRegistry(),
		Tr:    obs.NewTracer(buf, clock),
	}
	return New(Options{Obs: o, Workers: 1})
}

func obsSpec() Spec {
	return Spec{Name: "loop", Source: obsLoopSrc, Dataset: "d0"}
}

// TestObsTraceDeterministicGolden runs the identical pipeline on two
// fresh engines under the same step clock and requires byte-identical
// JSONL traces — the determinism contract golden tests rely on — then
// checks the span structure: compile/run/profile nested under
// execute, with per-cell attributes.
func TestObsTraceDeterministicGolden(t *testing.T) {
	emit := func() string {
		var buf strings.Builder
		e := obsEngine(&buf)
		if _, err := e.Execute(obsSpec()); err != nil {
			t.Fatal(err)
		}
		if err := e.Obs().Tracer().Err(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("identical pipelines produced different traces:\n--- a ---\n%s--- b ---\n%s", a, b)
	}

	spans := decodeSpans(t, a)
	byName := map[string]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	exec, ok := byName["execute"]
	if !ok {
		t.Fatalf("no execute span in trace:\n%s", a)
	}
	if exec.Parent != 0 {
		t.Errorf("execute span has parent %d, want root", exec.Parent)
	}
	if exec.Attrs["program"] != "loop" || exec.Attrs["dataset"] != "d0" {
		t.Errorf("execute attrs = %v", exec.Attrs)
	}
	if exec.Attrs["cache_hit"] != false {
		t.Errorf("execute cache_hit = %v, want false", exec.Attrs["cache_hit"])
	}
	for _, stage := range []string{"compile", "run", "profile"} {
		s, ok := byName[stage]
		if !ok {
			t.Fatalf("no %s span in trace:\n%s", stage, a)
		}
		if s.Parent != exec.Span {
			t.Errorf("%s span parent = %d, want execute (%d)", stage, s.Parent, exec.Span)
		}
	}
	if _, ok := byName["run"].Attrs["instrs"]; !ok {
		t.Error("run span missing instrs attribute")
	}

	// A second Execute on a warm engine is a memory hit: one execute
	// span, cache_hit=true, no stage spans.
	var buf strings.Builder
	e := obsEngine(&buf)
	if _, err := e.Execute(obsSpec()); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := e.Execute(obsSpec()); err != nil {
		t.Fatal(err)
	}
	warm := decodeSpans(t, buf.String())
	if len(warm) != 1 || warm[0].Name != "execute" || warm[0].Attrs["cache_hit"] != true {
		t.Errorf("warm-hit trace = %+v, want single execute span with cache_hit=true", warm)
	}
}

func decodeSpans(t *testing.T, jsonl string) []obs.SpanRecord {
	t.Helper()
	var out []obs.SpanRecord
	sc := bufio.NewScanner(strings.NewReader(jsonl))
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

// TestObsCacheSpans: with a disk cache, the cold path emits
// cache.load (hit=false) and cache.store, the disk-warm path emits
// cache.load (hit=true).
func TestObsCacheSpans(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	clock := obs.StepClock(obsEpoch, time.Millisecond)
	o := &obs.Obs{Clock: clock, Tr: obs.NewTracer(&buf, clock)}
	e := New(Options{Obs: o, CacheDir: dir, Workers: 1})
	if _, err := e.Execute(obsSpec()); err != nil {
		t.Fatal(err)
	}
	cold := decodeSpans(t, buf.String())
	var sawLoad, sawStore bool
	for _, s := range cold {
		switch s.Name {
		case "cache.load":
			sawLoad = true
			if s.Attrs["hit"] != false {
				t.Errorf("cold cache.load hit = %v", s.Attrs["hit"])
			}
		case "cache.store":
			sawStore = true
		}
	}
	if !sawLoad || !sawStore {
		t.Fatalf("cold trace missing cache spans (load=%t store=%t):\n%s", sawLoad, sawStore, buf.String())
	}

	// Fresh engine, same dir: disk hit.
	buf.Reset()
	e2 := New(Options{Obs: o, CacheDir: dir, Workers: 1})
	out, err := e2.Execute(obsSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("expected disk cache hit")
	}
	for _, s := range decodeSpans(t, buf.String()) {
		if s.Name == "cache.load" && s.Attrs["hit"] != true {
			t.Errorf("warm cache.load hit = %v", s.Attrs["hit"])
		}
		if s.Name == "run" {
			t.Error("disk hit should not emit a run span")
		}
	}
}

// TestObsMetricsRegistry: the engine's counters surface through the
// registry in Prometheus text form, agree with Stats, and two
// identical deterministic runs export identical bytes.
func TestObsMetricsRegistry(t *testing.T) {
	export := func() (string, Stats, *Engine) {
		var buf strings.Builder
		e := obsEngine(&buf)
		if _, err := e.Execute(obsSpec()); err != nil {
			t.Fatal(err)
		}
		var prom strings.Builder
		if err := e.Registry().WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return prom.String(), e.Stats(), e
	}
	text, st, _ := export()
	for _, want := range []string{
		`branchprof_engine_stage_total{stage="compile"} 1`,
		`branchprof_engine_stage_total{stage="run"} 1`,
		`branchprof_engine_stage_total{stage="profile"} 1`,
		fmt.Sprintf("branchprof_engine_instructions_total %d", st.Instrs),
		fmt.Sprintf(`branchprof_engine_stage_ns_total{stage="run"} %d`, st.RunWall.Nanoseconds()),
		`branchprof_engine_cache_total{layer="mem",result="miss"} 1`,
		`branchprof_engine_cache_mem_hit_ratio 0`,
		`branchprof_engine_stage_seconds_count{stage="run"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("export missing %q:\n%s", want, text)
		}
	}
	if st.Runs != 1 || st.Compiles != 1 || st.Profiles != 1 {
		t.Errorf("stats = %+v", st)
	}
	text2, _, _ := export()
	if text != text2 {
		t.Errorf("identical runs exported different metrics:\n--- a ---\n%s--- b ---\n%s", text, text2)
	}
}

// TestObsEngineWithoutObs: a plain engine still has a registry and
// Stats keeps working — the counters live on a private registry.
func TestObsEngineWithoutObs(t *testing.T) {
	e := New(Options{Workers: 1})
	if e.Obs() != nil {
		t.Fatal("plain engine reports an Obs bundle")
	}
	if e.Registry() == nil {
		t.Fatal("plain engine has no registry")
	}
	if _, err := e.Execute(obsSpec()); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Runs != 1 {
		t.Errorf("Runs = %d, want 1", st.Runs)
	}
	var prom strings.Builder
	if err := e.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `branchprof_engine_stage_total{stage="run"} 1`) {
		t.Error("private registry missing run counter")
	}
}

// TestObsVMSampleProfile: runs long enough to cross several 4096-
// instruction poll windows produce folded stack samples naming the
// program's functions.
func TestObsVMSampleProfile(t *testing.T) {
	vp := obs.NewVMProfile()
	e := New(Options{Obs: &obs.Obs{VMProf: vp}, Workers: 1})
	if _, err := e.Execute(obsSpec()); err != nil {
		t.Fatal(err)
	}
	if vp.Total() == 0 {
		t.Fatal("no VM samples collected")
	}
	samples := vp.Samples()
	if samples["main"] == 0 {
		t.Fatalf("samples = %v, want main stacks", samples)
	}
	var folded strings.Builder
	if err := vp.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(folded.String(), "main ") {
		t.Fatalf("folded output = %q", folded.String())
	}
}

// TestObsStatsSnapshotInvariants hammers the engine from several
// goroutines while snapshotting Stats concurrently, asserting the
// invariants the documented load ordering guarantees:
// Profiles ≤ Runs and DiskHits+DiskMisses ≤ MemMisses. Runs under
// -race via make obs / make race.
func TestObsStatsSnapshotInvariants(t *testing.T) {
	e := New(Options{CacheDir: t.TempDir(), Workers: 4})
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			if st.Profiles > st.Runs {
				snapErr = fmt.Errorf("torn snapshot: Profiles %d > Runs %d", st.Profiles, st.Runs)
				return
			}
			if st.DiskHits+st.DiskMisses > st.MemMisses {
				snapErr = fmt.Errorf("torn snapshot: disk lookups %d > MemMisses %d",
					st.DiskHits+st.DiskMisses, st.MemMisses)
				return
			}
		}
	}()

	err := e.Parallel(32, func(i int) error {
		spec := obsSpec()
		// Vary the source so every cell is a genuine miss.
		spec.Source = strings.Replace(obsLoopSrc, "20000", fmt.Sprintf("%d", 1000+i), 1)
		spec.Name = fmt.Sprintf("loop%d", i)
		_, err := e.ExecuteContext(context.Background(), spec)
		return err
	})
	close(stop)
	snapWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	// Final quiesced snapshot is exact.
	st := e.Stats()
	if st.Runs != 32 || st.Profiles != 32 || st.MemMisses != 32 {
		t.Errorf("final stats = %+v", st)
	}
}

// TestImageCacheGauges: the pre-decoded image cache must report its
// effectiveness on the shared registry — first run of a program is a
// miss (the image is built), repeat runs of the same program are hits.
func TestImageCacheGauges(t *testing.T) {
	var buf strings.Builder
	e := obsEngine(&buf)
	prog, err := e.Compile("loop", obsLoopSrc, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gauge := func(name string) float64 {
		var out strings.Builder
		if err := e.Registry().WritePrometheus(&out); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v float64
				if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("gauge %s not exported", name)
		return 0
	}
	if h, m := gauge("branchprof_engine_image_hits"), gauge("branchprof_engine_image_misses"); h != 0 || m != 0 {
		t.Fatalf("fresh engine reports image hits=%v misses=%v", h, m)
	}
	if _, err := e.Run(prog, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	if h, m := gauge("branchprof_engine_image_hits"), gauge("branchprof_engine_image_misses"); h != 0 || m != 1 {
		t.Fatalf("after first run: hits=%v misses=%v, want 0/1", h, m)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Run(prog, "", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if h, m := gauge("branchprof_engine_image_hits"), gauge("branchprof_engine_image_misses"); h != 3 || m != 1 {
		t.Fatalf("after repeat runs: hits=%v misses=%v, want 3/1", h, m)
	}
}

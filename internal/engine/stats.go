package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// counters is the engine's internal atomic instrumentation. Wall
// times accumulate per stage across all workers, so under the
// parallel pool they measure aggregate compute, not elapsed time.
type counters struct {
	compiles, runs, profiles atomic.Uint64
	compileNS, runNS         atomic.Int64
	profileNS                atomic.Int64
	instrs                   atomic.Uint64

	memHits, memMisses   atomic.Uint64
	diskHits, diskMisses atomic.Uint64
	diskInvalid          atomic.Uint64
	diskWriteErrs        atomic.Uint64

	panics       atomic.Uint64
	retries      atomic.Uint64
	retryGiveUps atomic.Uint64
}

// Stats is a point-in-time snapshot of the engine's per-stage
// observability: work performed, where the time went, and how the
// caches behaved.
type Stats struct {
	// Pipeline stages actually executed (cache hits excluded).
	Compiles uint64
	Runs     uint64
	Profiles uint64

	// Cumulative wall time per stage, summed across workers.
	CompileWall time.Duration
	RunWall     time.Duration
	ProfileWall time.Duration

	// Instrs is the total RISC-level instructions interpreted.
	Instrs uint64

	// Cache behaviour. DiskInvalid counts corrupt, truncated or
	// version-mismatched entries that were discarded and recomputed;
	// DiskWriteErrs counts failed best-effort writes.
	MemHits       uint64
	MemMisses     uint64
	DiskHits      uint64
	DiskMisses    uint64
	DiskInvalid   uint64
	DiskWriteErrs uint64

	// Robustness events. Panics counts stage panics recovered into
	// structured errors; Retries counts cache I/O attempts retried after
	// a transient fault; RetryGiveUps counts retry loops that exhausted
	// their budget and degraded (read → miss, write → dropped).
	Panics       uint64
	Retries      uint64
	RetryGiveUps uint64
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Compiles:      e.st.compiles.Load(),
		Runs:          e.st.runs.Load(),
		Profiles:      e.st.profiles.Load(),
		CompileWall:   time.Duration(e.st.compileNS.Load()),
		RunWall:       time.Duration(e.st.runNS.Load()),
		ProfileWall:   time.Duration(e.st.profileNS.Load()),
		Instrs:        e.st.instrs.Load(),
		MemHits:       e.st.memHits.Load(),
		MemMisses:     e.st.memMisses.Load(),
		DiskHits:      e.st.diskHits.Load(),
		DiskMisses:    e.st.diskMisses.Load(),
		DiskInvalid:   e.st.diskInvalid.Load(),
		DiskWriteErrs: e.st.diskWriteErrs.Load(),
		Panics:        e.st.panics.Load(),
		Retries:       e.st.retries.Load(),
		RetryGiveUps:  e.st.retryGiveUps.Load(),
	}
}

// InstrsPerSec is the aggregate interpreter throughput: instructions
// executed over cumulative run wall time.
func (s Stats) InstrsPerSec() float64 {
	if s.RunWall <= 0 {
		return 0
	}
	return float64(s.Instrs) / s.RunWall.Seconds()
}

// String renders the snapshot in the form the tools print under
// -stats.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d compiles (%v), %d runs (%v, %d instrs, %.1f Minstrs/s), %d profiles (%v)\n",
		s.Compiles, s.CompileWall.Round(time.Microsecond),
		s.Runs, s.RunWall.Round(time.Microsecond), s.Instrs, s.InstrsPerSec()/1e6,
		s.Profiles, s.ProfileWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "engine: cache mem %d/%d hits, disk %d/%d hits",
		s.MemHits, s.MemHits+s.MemMisses, s.DiskHits, s.DiskHits+s.DiskMisses)
	if s.DiskInvalid > 0 {
		fmt.Fprintf(&b, ", %d invalid entries recomputed", s.DiskInvalid)
	}
	if s.DiskWriteErrs > 0 {
		fmt.Fprintf(&b, ", %d write errors", s.DiskWriteErrs)
	}
	// Robustness counters appear only when something actually went
	// wrong, so healthy-run output is unchanged.
	if s.Panics > 0 || s.Retries > 0 || s.RetryGiveUps > 0 {
		fmt.Fprintf(&b, "\nengine: %d panics recovered, %d retries (%d gave up)",
			s.Panics, s.Retries, s.RetryGiveUps)
	}
	return b.String()
}

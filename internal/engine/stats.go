package engine

import (
	"fmt"
	"strings"
	"time"

	"branchprof/internal/obs"
)

// counters is the engine's per-stage instrumentation, backed by the
// observability registry so the same atomics feed both the -stats
// line and the Prometheus export. Wall times accumulate per stage
// across all workers, so under the parallel pool they measure
// aggregate compute, not elapsed time.
type counters struct {
	compiles, runs, profiles *obs.Counter
	compileNS, runNS         *obs.Counter
	profileNS                *obs.Counter
	instrs                   *obs.Counter

	memHits, memMisses   *obs.Counter
	diskHits, diskMisses *obs.Counter
	diskInvalid          *obs.Counter
	diskWriteErrs        *obs.Counter

	panics       *obs.Counter
	retries      *obs.Counter
	retryGiveUps *obs.Counter

	// Histograms for latency/throughput distributions; the flat
	// counters above keep the exact totals -stats reports.
	compileLat, runLat, profileLat *obs.Histogram
	mips                           *obs.Histogram
}

// newCounters registers the engine's metrics on reg. Metric names are
// documented in docs/OBSERVABILITY.md.
func newCounters(reg *obs.Registry) counters {
	const (
		stageHelp  = "Pipeline stage executions (cache hits excluded)."
		stageNS    = "Cumulative stage wall time in nanoseconds, summed across workers."
		stageLat   = "Per-execution stage latency in seconds."
		cacheHelp  = "Cache lookups by layer and result."
		eventsHelp = "Robustness events."
	)
	c := counters{
		compiles:  reg.Counter(`branchprof_engine_stage_total{stage="compile"}`, stageHelp),
		runs:      reg.Counter(`branchprof_engine_stage_total{stage="run"}`, stageHelp),
		profiles:  reg.Counter(`branchprof_engine_stage_total{stage="profile"}`, stageHelp),
		compileNS: reg.Counter(`branchprof_engine_stage_ns_total{stage="compile"}`, stageNS),
		runNS:     reg.Counter(`branchprof_engine_stage_ns_total{stage="run"}`, stageNS),
		profileNS: reg.Counter(`branchprof_engine_stage_ns_total{stage="profile"}`, stageNS),
		instrs:    reg.Counter("branchprof_engine_instructions_total", "RISC-level instructions interpreted."),

		memHits:       reg.Counter(`branchprof_engine_cache_total{layer="mem",result="hit"}`, cacheHelp),
		memMisses:     reg.Counter(`branchprof_engine_cache_total{layer="mem",result="miss"}`, cacheHelp),
		diskHits:      reg.Counter(`branchprof_engine_cache_total{layer="disk",result="hit"}`, cacheHelp),
		diskMisses:    reg.Counter(`branchprof_engine_cache_total{layer="disk",result="miss"}`, cacheHelp),
		diskInvalid:   reg.Counter("branchprof_engine_cache_invalid_total", "Corrupt or stale disk entries discarded and recomputed."),
		diskWriteErrs: reg.Counter("branchprof_engine_cache_write_errors_total", "Failed best-effort disk cache writes."),

		panics:       reg.Counter(`branchprof_engine_events_total{event="panic_recovered"}`, eventsHelp),
		retries:      reg.Counter(`branchprof_engine_events_total{event="retry"}`, eventsHelp),
		retryGiveUps: reg.Counter(`branchprof_engine_events_total{event="retry_giveup"}`, eventsHelp),

		compileLat: reg.Histogram(`branchprof_engine_stage_seconds{stage="compile"}`, stageLat, obs.DefLatencyBuckets),
		runLat:     reg.Histogram(`branchprof_engine_stage_seconds{stage="run"}`, stageLat, obs.DefLatencyBuckets),
		profileLat: reg.Histogram(`branchprof_engine_stage_seconds{stage="profile"}`, stageLat, obs.DefLatencyBuckets),
		mips:       reg.Histogram("branchprof_engine_vm_minstrs_per_second", "Per-run interpreter throughput, millions of instructions per second.", obs.DefRateBuckets),
	}
	reg.GaugeFunc("branchprof_engine_cache_mem_hit_ratio", "In-memory cache hit ratio.",
		func() float64 { return ratio(c.memHits.Load(), c.memMisses.Load()) })
	reg.GaugeFunc("branchprof_engine_cache_disk_hit_ratio", "Disk cache hit ratio.",
		func() float64 { return ratio(c.diskHits.Load(), c.diskMisses.Load()) })
	return c
}

// ratio is hits/(hits+misses), 0 when there were no lookups.
func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Stats is a point-in-time snapshot of the engine's per-stage
// observability: work performed, where the time went, and how the
// caches behaved.
type Stats struct {
	// Pipeline stages actually executed (cache hits excluded).
	Compiles uint64
	Runs     uint64
	Profiles uint64

	// Cumulative wall time per stage, summed across workers.
	CompileWall time.Duration
	RunWall     time.Duration
	ProfileWall time.Duration

	// Instrs is the total RISC-level instructions interpreted.
	Instrs uint64

	// Cache behaviour. DiskInvalid counts corrupt, truncated or
	// version-mismatched entries that were discarded and recomputed;
	// DiskWriteErrs counts failed best-effort writes.
	MemHits       uint64
	MemMisses     uint64
	DiskHits      uint64
	DiskMisses    uint64
	DiskInvalid   uint64
	DiskWriteErrs uint64

	// Robustness events. Panics counts stage panics recovered into
	// structured errors; Retries counts cache I/O attempts retried after
	// a transient fault; RetryGiveUps counts retry loops that exhausted
	// their budget and degraded (read → miss, write → dropped).
	Panics       uint64
	Retries      uint64
	RetryGiveUps uint64
}

// Stats snapshots the engine's counters.
//
// The counters are independent atomics, so a snapshot taken while
// work is in flight is not a single consistent cut. The load order
// below is chosen so the invariants consumers rely on still hold in
// every snapshot: a counter is loaded *before* any counter that the
// pipeline increments earlier in program order. Because the pipeline
// bumps memMisses before the disk counters, and the disk counters
// before runs/profiles, loading in the reverse order (profiles, then
// runs, then disk, then mem) guarantees
//
//	Profiles ≤ Runs  and  DiskHits+DiskMisses ≤ MemMisses
//
// for Execute-path workloads: any increment racing with the snapshot
// can only inflate the later-loaded (earlier-incremented) side.
// Uncached Run calls (empty content key, or a tracer attached) bump
// runs without touching the cache counters, so Runs ≤ MemMisses is
// deliberately NOT an invariant. TestStatsSnapshotInvariants asserts
// the guaranteed ones under the race detector.
func (e *Engine) Stats() Stats {
	s := Stats{}
	s.Profiles = e.st.profiles.Load()
	s.Runs = e.st.runs.Load()
	s.Compiles = e.st.compiles.Load()
	s.DiskHits = e.st.diskHits.Load()
	s.DiskMisses = e.st.diskMisses.Load()
	s.MemMisses = e.st.memMisses.Load()
	s.MemHits = e.st.memHits.Load()
	s.CompileWall = time.Duration(e.st.compileNS.Load())
	s.RunWall = time.Duration(e.st.runNS.Load())
	s.ProfileWall = time.Duration(e.st.profileNS.Load())
	s.Instrs = e.st.instrs.Load()
	s.DiskInvalid = e.st.diskInvalid.Load()
	s.DiskWriteErrs = e.st.diskWriteErrs.Load()
	s.Panics = e.st.panics.Load()
	s.Retries = e.st.retries.Load()
	s.RetryGiveUps = e.st.retryGiveUps.Load()
	return s
}

// InstrsPerSec is the aggregate interpreter throughput: instructions
// executed over cumulative run wall time.
func (s Stats) InstrsPerSec() float64 {
	if s.RunWall <= 0 {
		return 0
	}
	return float64(s.Instrs) / s.RunWall.Seconds()
}

// String renders the snapshot in the form the tools print under
// -stats.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d compiles (%v), %d runs (%v, %d instrs, %.1f Minstrs/s), %d profiles (%v)\n",
		s.Compiles, s.CompileWall.Round(time.Microsecond),
		s.Runs, s.RunWall.Round(time.Microsecond), s.Instrs, s.InstrsPerSec()/1e6,
		s.Profiles, s.ProfileWall.Round(time.Microsecond))
	fmt.Fprintf(&b, "engine: cache mem %d/%d hits, disk %d/%d hits",
		s.MemHits, s.MemHits+s.MemMisses, s.DiskHits, s.DiskHits+s.DiskMisses)
	if s.DiskInvalid > 0 {
		fmt.Fprintf(&b, ", %d invalid entries recomputed", s.DiskInvalid)
	}
	if s.DiskWriteErrs > 0 {
		fmt.Fprintf(&b, ", %d write errors", s.DiskWriteErrs)
	}
	// Robustness counters appear only when something actually went
	// wrong, so healthy-run output is unchanged.
	if s.Panics > 0 || s.Retries > 0 || s.RetryGiveUps > 0 {
		fmt.Fprintf(&b, "\nengine: %d panics recovered, %d retries (%d gave up)",
			s.Panics, s.Retries, s.RetryGiveUps)
	}
	return b.String()
}

package engine

import "context"

// BatchResult is one spec's outcome inside an ExecuteBatch call:
// exactly one of Out and Err is set.
type BatchResult struct {
	Out *Outcome
	Err error
}

// ExecuteBatch runs every spec through ExecuteContext on the engine's
// worker pool (at most WorkerCount in flight) and returns a result
// per spec, in spec order. Failures are per-cell: one hostile or
// broken spec never blocks its siblings, and a panic inside a cell is
// recovered into that cell's error as a *PanicError. Cancellation of
// ctx stops starting new cells; specs not yet started report the
// context error.
func (e *Engine) ExecuteBatch(ctx context.Context, specs []Spec) []BatchResult {
	results := make([]BatchResult, len(specs))
	errs, _ := e.ParallelErrors(ctx, len(specs), func(i int) error {
		out, err := e.ExecuteContext(ctx, specs[i])
		if err != nil {
			return err
		}
		results[i].Out = out
		return nil
	})
	for i := range errs {
		results[i].Err = errs[i]
	}
	return results
}

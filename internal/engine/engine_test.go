package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"branchprof/internal/mfc"
	"branchprof/internal/vm"
)

// countSrc branches on every input byte, so its measurements depend
// on the dataset and its site table is non-trivial.
const countSrc = `
func main() int {
	var n int = 0;
	var c int = getc();
	while (c >= 0) {
		if (c == 97) {
			n = n + 1;
		}
		putc(c);
		c = getc();
	}
	return n;
}
`

func testSpec(input string) Spec {
	return Spec{Name: "count", Source: countSrc, Dataset: "d0", Input: []byte(input)}
}

func TestExecuteComputesThenHits(t *testing.T) {
	e := New(Options{})
	first, err := e.Execute(testSpec("abcabc"))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	second, err := e.Execute(testSpec("abcabc"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second execution missed the in-memory cache")
	}
	if first.Res.Instrs != second.Res.Instrs || first.Res.ExitCode != second.Res.ExitCode {
		t.Fatalf("cached result differs: %+v vs %+v", first.Res, second.Res)
	}
	if string(second.Res.Output) != "abcabc" {
		t.Fatalf("output = %q, want %q", second.Res.Output, "abcabc")
	}
	if first.Prog != second.Prog {
		t.Fatal("compiled program was not memoized")
	}
	st := e.Stats()
	if st.Runs != 1 || st.Compiles != 1 || st.Profiles != 1 {
		t.Fatalf("stats = %d runs, %d compiles, %d profiles; want 1 each", st.Runs, st.Compiles, st.Profiles)
	}
	if st.MemHits != 1 || st.MemMisses != 1 {
		t.Fatalf("mem cache = %d hits, %d misses; want 1/1", st.MemHits, st.MemMisses)
	}
}

func TestExecuteReturnsDefensiveCopies(t *testing.T) {
	e := New(Options{})
	first, err := e.Execute(testSpec("aaa"))
	if err != nil {
		t.Fatal(err)
	}
	// Trash everything the first caller was handed.
	for i := range first.Res.SiteTaken {
		first.Res.SiteTaken[i] = 999
		first.Res.SiteTotal[i] = 0
	}
	first.Res.Output[0] = 'X'
	first.Prof.Taken[0] = 12345

	second, err := e.Execute(testSpec("aaa"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("expected a cache hit")
	}
	if second.Res == first.Res || second.Prof == first.Prof {
		t.Fatal("cache handed out the same pointers twice")
	}
	if string(second.Res.Output) != "aaa" {
		t.Fatalf("cached output corrupted by caller mutation: %q", second.Res.Output)
	}
	for i, v := range second.Res.SiteTaken {
		if v == 999 {
			t.Fatalf("SiteTaken[%d] corrupted by caller mutation", i)
		}
	}
	if second.Prof.Taken[0] == 12345 {
		t.Fatal("profile corrupted by caller mutation")
	}
}

func TestDiskCacheAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	cold := New(Options{CacheDir: dir})
	want, err := cold.Execute(testSpec("branch data"))
	if err != nil {
		t.Fatal(err)
	}

	warm := New(Options{CacheDir: dir})
	got, err := warm.Execute(testSpec("branch data"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Fatal("fresh engine over a populated cache dir did not hit disk")
	}
	st := warm.Stats()
	if st.DiskHits != 1 || st.Runs != 0 {
		t.Fatalf("warm stats = %d disk hits, %d runs; want 1 hit, 0 runs", st.DiskHits, st.Runs)
	}
	if st.Compiles != 1 {
		t.Fatalf("warm engine compiled %d times; the program must be rebuilt on disk hits", st.Compiles)
	}
	if got.Res.Instrs != want.Res.Instrs || string(got.Res.Output) != string(want.Res.Output) {
		t.Fatalf("disk round-trip changed the measurement: %+v vs %+v", got.Res, want.Res)
	}
	if got.Prof.Program != want.Prof.Program || got.Prof.Dataset != want.Prof.Dataset {
		t.Fatalf("disk round-trip changed the profile identity: %+v vs %+v", got.Prof, want.Prof)
	}
	for i := range want.Prof.Total {
		if got.Prof.Total[i] != want.Prof.Total[i] || got.Prof.Taken[i] != want.Prof.Taken[i] {
			t.Fatalf("disk round-trip changed profile counters at site %d", i)
		}
	}
}

type nopTracer struct{ branches atomic.Uint64 }

func (n *nopTracer) Branch(site int32, taken bool, instrs uint64) { n.branches.Add(1) }
func (n *nopTracer) Transfer(kind vm.TransferKind, instrs uint64) {}

func TestTracedRunsBypassCache(t *testing.T) {
	e := New(Options{CacheDir: t.TempDir()})
	for i := 0; i < 2; i++ {
		tr := &nopTracer{}
		spec := testSpec("aa")
		spec.Config = vm.Config{Trace: tr}
		out, err := e.Execute(spec)
		if err != nil {
			t.Fatal(err)
		}
		if out.CacheHit {
			t.Fatal("traced execution served from cache")
		}
		if tr.branches.Load() == 0 {
			t.Fatal("tracer saw no branches — the run did not actually execute")
		}
	}
	if st := e.Stats(); st.Runs != 2 {
		t.Fatalf("traced executions ran %d times, want 2", st.Runs)
	}
}

func TestRunContentKeyCaching(t *testing.T) {
	e := New(Options{})
	prog, err := e.Compile("count", countSrc, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Run(prog, countSrc, []byte("aba"), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(prog, countSrc, []byte("aba"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Runs != 1 {
		t.Fatalf("keyed Run executed %d times, want 1 (second call cached)", e.Stats().Runs)
	}
	if r1 == r2 {
		t.Fatal("cached Run handed out the same pointer twice")
	}
	if r1.Instrs != r2.Instrs {
		t.Fatalf("cached Run changed the measurement: %d vs %d instrs", r1.Instrs, r2.Instrs)
	}

	// An empty content key means the engine cannot identify the
	// program, so every call executes.
	if _, err := e.Run(prog, "", []byte("aba"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(prog, "", []byte("aba"), nil); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Runs != 3 {
		t.Fatalf("unkeyed Run must never cache; got %d total runs, want 3", e.Stats().Runs)
	}
}

func TestSpecKeySensitivity(t *testing.T) {
	base := testSpec("abc")
	keys := map[string]string{"base": base.key()}

	s := base
	s.Input = []byte("abd")
	keys["input"] = s.key()

	s = base
	s.Options = mfc.Options{DeadBranchElim: true}
	keys["options"] = s.key()

	s = base
	s.Config = vm.Config{PerPC: true}
	keys["config"] = s.key()

	s = base
	s.Dataset = "d1"
	keys["dataset"] = s.key()

	s = base
	s.Source = countSrc + "\n"
	keys["source"] = s.key()

	seen := map[string]string{}
	for what, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("changing %s and %s produced the same key", what, prev)
		}
		seen[k] = what
	}

	// A default-valued config and a nil-equivalent one must collide:
	// they describe the same run.
	s = base
	s.Config = vm.Config{Fuel: 1 << 33, MaxDepth: 100000, MaxOutput: 1 << 26}
	if s.key() != base.key() {
		t.Fatal("explicitly defaulted config produced a different key than the zero config")
	}
}

func TestParallelBoundsConcurrency(t *testing.T) {
	e := New(Options{Workers: 3})
	var cur, peak atomic.Int64
	var mu sync.Mutex
	err := e.Parallel(64, func(i int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent workers, pool bound is 3", p)
	}
}

func TestParallelFirstErrorByIndex(t *testing.T) {
	e := New(Options{Workers: 4})
	for trial := 0; trial < 10; trial++ {
		err := e.Parallel(32, func(i int) error {
			if i == 7 || i == 21 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("trial %d: got %v, want the lowest-index error (job 7)", trial, err)
		}
	}
}

func TestOnceDeduplicatesConcurrentWork(t *testing.T) {
	e := New(Options{Workers: 8})
	var computed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := e.once(context.Background(), "shared-key", func() (any, error) {
				computed.Add(1)
				return "value", nil
			})
			if err != nil || v != "value" {
				t.Errorf("once returned %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	// Concurrent callers share one computation; sequential waves may
	// recompute (the result is not retained), so only assert the
	// concurrent bound held well below the caller count.
	if n := computed.Load(); n > 16 {
		t.Fatalf("once ran the function %d times for 16 callers", n)
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	e := New(Options{})
	spec := testSpec("x")
	spec.Source = "func main() int { return undefined_var; }"
	if _, err := e.Execute(spec); err == nil {
		t.Fatal("compile error vanished")
	}
}

// TestImageMemoized: repeated executions of the same compiled program
// must reuse one pre-decoded vm.Image instead of paying the
// verify/fuse pass per run.
func TestImageMemoized(t *testing.T) {
	e := New(Options{})
	prog, err := e.Compile("count", countSrc, mfc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	im1 := e.image(prog)
	im2 := e.image(prog)
	if im1 != im2 {
		t.Fatal("image was rebuilt for the same program")
	}
	if im1.Program() != prog {
		t.Fatal("memoized image belongs to a different program")
	}
	// The Execute path funnels through the same cache.
	if _, err := e.Execute(testSpec("aa")); err != nil {
		t.Fatal(err)
	}
	if got := e.images.len(); got != 1 {
		t.Fatalf("image cache holds %d entries, want 1", got)
	}
}

package engine

import (
	"os"
	"testing"
)

// FuzzCacheDecode feeds arbitrary bytes to the persistent cache's
// entry decoder. The cache treats the disk as hostile — a stale,
// truncated, bit-flipped or hand-edited entry must come back as a
// miss (ok=false, usually invalid=true), never as a panic and never
// as a structurally inconsistent measurement.
func FuzzCacheDecode(f *testing.F) {
	const key = "0000feed"
	f.Add([]byte(`{"version":1,"key":"0000feed","result":{"SiteTaken":[1],"SiteTotal":[2],"Instrs":3}}`))
	f.Add([]byte(`{"version":1,"key":"wrong","result":{"SiteTaken":[],"SiteTotal":[]}}`))
	f.Add([]byte(`{"version":9,"key":"0000feed","result":{}}`))
	f.Add([]byte(`{"version":1,"key":"0000feed","result":{"SiteTaken":[1,2],"SiteTotal":[2]}}`))
	f.Add([]byte(`{"version":1,"key":"0000feed","result":{"SiteTaken":[1],"SiteTotal":[2]},"profile":{"Program":"p","Taken":[9],"Total":[2]}}`))
	f.Add([]byte(`{"version":1,"key":"0000feed"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &diskCache{dir: t.TempDir()}
		if err := os.WriteFile(d.path(key), data, 0o644); err != nil {
			t.Fatal(err)
		}
		res, prof, ok, _ := d.load(key)
		if !ok {
			return
		}
		if res == nil {
			t.Fatal("ok entry with nil result")
		}
		if len(res.SiteTaken) != len(res.SiteTotal) {
			t.Fatalf("ok entry with mismatched site slices: %d vs %d",
				len(res.SiteTaken), len(res.SiteTotal))
		}
		if prof != nil {
			if err := prof.CheckConsistent(); err != nil {
				t.Fatalf("ok entry with inconsistent profile: %v", err)
			}
		}
	})
}

package mfc

import (
	"branchprof/internal/isa"
	"branchprof/internal/mfc/ast"
	"branchprof/internal/mfc/token"
)

// If-conversion: the Trace compiler front ends converted "some simple
// if statements into a special select instruction that evaluates both
// operands and selects one of them depending on a tested condition"
// (paper footnote 2 — selects were typically under 0.2-0.7% of
// executed instructions). With Options.UseSelects the MF compiler does
// the same for ifs whose arms are single side-effect-free scalar
// assignments to one local variable:
//
//	if (c) { x = e1; }              ->  x = sel(c, e1, x)
//	if (c) { x = e1; } else { x = e2; } -> x = sel(c, e1, e2)
//
// Both arms are evaluated unconditionally, so e1/e2 (and nothing in
// them) may have side effects or trap: calls, array accesses,
// division, shifts and float-to-int casts disqualify a candidate.

// selectCandidate describes a convertible if statement.
type selectCandidate struct {
	lv       localVar
	thenExpr ast.Expr
	elseExpr ast.Expr // nil for one-armed ifs (keep the old value)
}

// matchSelect recognizes convertible ifs. It needs the compiler for
// scope lookups (only locals are convertible: global stores are
// observable effects).
func (fc *funcCompiler) matchSelect(s *ast.IfStmt) (selectCandidate, bool) {
	var c selectCandidate
	thenAsn, ok := singleAssign(s.Then)
	if !ok || thenAsn.Idx != nil {
		return c, false
	}
	lv, ok := fc.lookupLocal(thenAsn.Name)
	if !ok {
		return c, false
	}
	if !pureExpr(s.Cond) || !pureExpr(thenAsn.Value) {
		return c, false
	}
	c.lv = lv
	c.thenExpr = thenAsn.Value
	if s.Else == nil {
		return c, true
	}
	elseBlock, ok := s.Else.(*ast.BlockStmt)
	if !ok {
		return c, false
	}
	elseAsn, ok := singleAssign(elseBlock)
	if !ok || elseAsn.Idx != nil || elseAsn.Name != thenAsn.Name {
		return c, false
	}
	if !pureExpr(elseAsn.Value) {
		return c, false
	}
	c.elseExpr = elseAsn.Value
	return c, true
}

func singleAssign(b *ast.BlockStmt) (*ast.AssignStmt, bool) {
	if len(b.List) != 1 {
		return nil, false
	}
	a, ok := b.List[0].(*ast.AssignStmt)
	return a, ok
}

// pureBuiltins never trap and have no effects.
var pureBuiltins = map[string]bool{
	"sqrt": true, "sin": true, "cos": true, "exp": true, "log": true,
	"fabs": true, "floor": true, "pow": true,
}

// pureExpr reports whether evaluating e unconditionally is safe: no
// side effects and no possible traps.
func pureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.Ident, *ast.FuncRef:
		return true
	case *ast.Unary:
		return pureExpr(e.X)
	case *ast.Binary:
		switch e.Op {
		case token.Slash, token.Percent, token.Shl, token.Shr:
			// Can trap on zero divisors / out-of-range shifts.
			return false
		}
		return pureExpr(e.X) && pureExpr(e.Y)
	case *ast.Cast:
		if e.To == ast.Int {
			// float->int conversion traps on non-finite values.
			return false
		}
		return pureExpr(e.X)
	case *ast.Call:
		if !pureBuiltins[e.Name] {
			return false
		}
		for _, a := range e.Args {
			if !pureExpr(a) {
				return false
			}
		}
		return true
	}
	// Index (bounds traps) and anything unknown: not convertible.
	return false
}

// genSelect emits the branch-free form.
func (fc *funcCompiler) genSelect(s *ast.IfStmt, c selectCandidate) error {
	cond, err := fc.genExpect(s.Cond, ast.Int)
	if err != nil {
		return err
	}
	thenV, err := fc.genExpect(c.thenExpr, c.lv.typ)
	if err != nil {
		fc.release(cond)
		return err
	}
	elseReg := c.lv.reg // one-armed: keep the current value
	var elseV value
	if c.elseExpr != nil {
		elseV, err = fc.genExpect(c.elseExpr, c.lv.typ)
		if err != nil {
			fc.release(thenV)
			fc.release(cond)
			return err
		}
		elseReg = elseV.reg
	}
	op := isa.OpSel
	if c.lv.typ == ast.Float {
		op = isa.OpFSel
	}
	fc.emit(isa.Instr{
		Op: op, C: int32(c.lv.reg), A: int32(cond.reg), B: int32(thenV.reg),
		Imm: int64(elseReg),
	})
	if c.elseExpr != nil {
		fc.release(elseV)
	}
	fc.release(thenV)
	fc.release(cond)
	return nil
}

package mfc

import (
	"testing"

	"branchprof/internal/vm"
)

// runMF compiles and runs src, failing the test on any error.
func runMF(t *testing.T, src string, input string, opts Options) *vm.Result {
	t.Helper()
	p, err := Compile("test", src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := vm.Run(p, []byte(input), nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestSmokeHello(t *testing.T) {
	src := `
func main() int {
	var i int = 0;
	while (i < 5) {
		putc('a' + i);
		i = i + 1;
	}
	return i;
}
`
	res := runMF(t, src, "", Options{})
	if got := string(res.Output); got != "abcde" {
		t.Errorf("output = %q, want abcde", got)
	}
	if res.ExitCode != 5 {
		t.Errorf("exit = %d, want 5", res.ExitCode)
	}
	if res.CondBranches() == 0 {
		t.Error("expected conditional branches to be counted")
	}
}

func TestSmokeFibRecursive(t *testing.T) {
	src := `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() int { return fib(12); }
`
	res := runMF(t, src, "", Options{})
	if res.ExitCode != 144 {
		t.Errorf("fib(12) = %d, want 144", res.ExitCode)
	}
	if res.DirectCalls == 0 || res.DirectReturns == 0 {
		t.Error("expected direct call/return counts")
	}
}

func TestSmokeFloatsAndArrays(t *testing.T) {
	src := `
const N = 10;
var a[N] float;
func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		a[i] = float(i) * 1.5;
	}
	var s float = 0.0;
	for (i = 0; i < N; i = i + 1) {
		s = s + a[i];
	}
	return int(s);
}
`
	res := runMF(t, src, "", Options{})
	if res.ExitCode != 67 { // 1.5 * 45 = 67.5 truncated
		t.Errorf("exit = %d, want 67", res.ExitCode)
	}
}

func TestSmokeSwitchAndIO(t *testing.T) {
	src := `
func main() int {
	var c int = getc();
	var n int = 0;
	while (c != -1) {
		switch (c) {
		case 'a', 'e', 'i', 'o', 'u':
			n = n + 1;
		case ' ':
			putc('_');
		default:
			putc(c);
		}
		c = getc();
	}
	return n;
}
`
	res := runMF(t, src, "hello world", Options{})
	if res.ExitCode != 3 {
		t.Errorf("vowels = %d, want 3", res.ExitCode)
	}
	if got := string(res.Output); got != "hll_wrld" {
		t.Errorf("output = %q, want hll_wrld", got)
	}
}

func TestSmokeIndirectCall(t *testing.T) {
	src := `
func double(x int) int { return x * 2; }
func square(x int) int { return x * x; }
func main() int {
	var f int = &double;
	var g int = &square;
	return icall1(f, 10) + icall1(g, 5);
}
`
	res := runMF(t, src, "", Options{})
	if res.ExitCode != 45 {
		t.Errorf("exit = %d, want 45", res.ExitCode)
	}
	if res.IndirectCalls != 2 || res.IndirectReturns != 2 {
		t.Errorf("indirect calls/returns = %d/%d, want 2/2", res.IndirectCalls, res.IndirectReturns)
	}
}

func TestSmokeShortCircuit(t *testing.T) {
	src := `
var calls[1] int;
func sideEffect() int {
	calls[0] = calls[0] + 1;
	return 1;
}
func main() int {
	var x int = 0;
	if (x != 0 && sideEffect() != 0) { putc('A'); }
	if (x == 0 || sideEffect() != 0) { putc('B'); }
	return calls[0];
}
`
	res := runMF(t, src, "", Options{})
	if res.ExitCode != 0 {
		t.Errorf("side effects = %d, want 0 (short circuit)", res.ExitCode)
	}
	if got := string(res.Output); got != "B" {
		t.Errorf("output = %q, want B", got)
	}
}

func TestDeadBranchElim(t *testing.T) {
	src := `
const DEBUG = 0;
func main() int {
	var i int;
	var n int = 0;
	for (i = 0; i < 100; i = i + 1) {
		if (DEBUG != 0) {
			putc('!');
		}
		n = n + i;
	}
	return n % 256;
}
`
	plain := runMF(t, src, "", Options{})
	dce := runMF(t, src, "", Options{DeadBranchElim: true})
	if plain.ExitCode != dce.ExitCode {
		t.Fatalf("exit codes differ: %d vs %d", plain.ExitCode, dce.ExitCode)
	}
	if dce.Instrs >= plain.Instrs {
		t.Errorf("DCE did not shrink execution: %d vs %d", dce.Instrs, plain.Instrs)
	}
	if dce.CondBranches() >= plain.CondBranches() {
		t.Errorf("DCE did not remove branch executions: %d vs %d", dce.CondBranches(), plain.CondBranches())
	}
}

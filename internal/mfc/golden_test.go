package mfc

import (
	"strings"
	"testing"

	"branchprof/internal/isa"
)

// TestGoldenLowering pins the exact instruction sequence for one
// small function, so accidental codegen changes — which would shift
// every instruction count in EXPERIMENTS.md — show up as a diff here
// rather than as silently different results.
func TestGoldenLowering(t *testing.T) {
	src := `
func main() int {
	var i int = 0;
	var s int = 0;
	while (i < 4) {
		s = s + i;
		i = i + 1;
	}
	return s;
}
`
	p, err := Compile("golden", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	main := p.Funcs[p.Main]
	var ops []string
	for _, in := range main.Code {
		ops = append(ops, in.Op.String())
	}
	got := strings.Join(ops, " ")
	// Initializers evaluate into a temp then move into the local
	// (ldi+mov each); the loop is bottom-tested: jmp to test, body
	// (s = s+i, i = i+1, each op+mov with a folded ldi for the
	// constant), test (slt, br), then the explicit return plus the
	// fall-off return the compiler appends.
	want := "ldi mov ldi mov jmp add mov ldi add mov ldi slt br ret ret"
	if got != want {
		t.Errorf("lowering changed:\n got: %s\nwant: %s\n%s", got, want, isa.Disasm(p))
	}
	if len(p.Sites) != 1 || !p.Sites[0].LoopBack {
		t.Errorf("sites = %+v", p.Sites)
	}
}

// TestGoldenShortCircuit pins the && lowering: one branch site plus
// the 0/1 normalization.
func TestGoldenShortCircuit(t *testing.T) {
	src := `
func main() int {
	var a int = 1;
	var b int = 2;
	if (a > 0 && b > 0) {
		return 1;
	}
	return 0;
}
`
	p, err := Compile("golden", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var brs, snes int
	for _, in := range p.Funcs[p.Main].Code {
		switch in.Op {
		case isa.OpBr:
			brs++
		case isa.OpSne:
			snes++
		}
	}
	// One branch for &&, one for the if.
	if brs != 2 {
		t.Errorf("branches = %d, want 2 (&& and if)", brs)
	}
	if snes != 1 {
		t.Errorf("sne = %d, want 1 (&& normalization)", snes)
	}
	labels := []string{p.Sites[0].Label, p.Sites[1].Label}
	if labels[0] != "&&" || labels[1] != "if" {
		t.Errorf("site labels = %v, want [&& if]", labels)
	}
}

// Package ast defines the abstract syntax tree for the MF language.
package ast

import "branchprof/internal/mfc/token"

// Type is an MF scalar type.
type Type uint8

// MF has exactly two scalar types.
const (
	Int Type = iota
	Float
	Void // function return "type" only
)

// String returns the source spelling of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	}
	return "void"
}

// Node is implemented by every AST node.
type Node interface{ Pos() token.Pos }

// ---- Expressions ----

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer or character literal.
type IntLit struct {
	P     token.Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	P     token.Pos
	Value float64
}

// StrLit is a string literal; its value is the int-memory address of
// the NUL-terminated byte sequence the compiler places in global data.
type StrLit struct {
	P     token.Pos
	Value string
}

// Ident names a variable or constant.
type Ident struct {
	P    token.Pos
	Name string
}

// Index is arr[i] on a global array.
type Index struct {
	P     token.Pos
	Array string
	Idx   Expr
}

// Call invokes a function or builtin.
type Call struct {
	P    token.Pos
	Name string
	Args []Expr
}

// FuncRef is &name: the function's index, usable with the icallN builtins.
type FuncRef struct {
	P    token.Pos
	Name string
}

// Unary is -x, !x or ~x.
type Unary struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

// Binary is x op y, including the short-circuit && and ||.
type Binary struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

// Cast is int(x) or float(x).
type Cast struct {
	P  token.Pos
	To Type
	X  Expr
}

func (e *IntLit) Pos() token.Pos   { return e.P }
func (e *FloatLit) Pos() token.Pos { return e.P }
func (e *StrLit) Pos() token.Pos   { return e.P }
func (e *Ident) Pos() token.Pos    { return e.P }
func (e *Index) Pos() token.Pos    { return e.P }
func (e *Call) Pos() token.Pos     { return e.P }
func (e *FuncRef) Pos() token.Pos  { return e.P }
func (e *Unary) Pos() token.Pos    { return e.P }
func (e *Binary) Pos() token.Pos   { return e.P }
func (e *Cast) Pos() token.Pos     { return e.P }

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*StrLit) exprNode()   {}
func (*Ident) exprNode()    {}
func (*Index) exprNode()    {}
func (*Call) exprNode()     {}
func (*FuncRef) exprNode()  {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Cast) exprNode()     {}

// ---- Statements ----

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// VarStmt declares a local scalar, optionally initialized.
type VarStmt struct {
	P    token.Pos
	Name string
	Type Type
	Init Expr // may be nil
}

// AssignStmt assigns to a scalar or an array element.
type AssignStmt struct {
	P     token.Pos
	Name  string
	Idx   Expr // nil for scalar targets
	Value Expr
}

// IfStmt is if/else.
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	P    token.Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for(init; cond; post).
type ForStmt struct {
	P    token.Pos
	Init Stmt // nil, *VarStmt or *AssignStmt
	Cond Expr // nil means true
	Post Stmt // nil or *AssignStmt
	Body *BlockStmt
}

// SwitchCase is one arm of a switch.
type SwitchCase struct {
	P      token.Pos
	Values []Expr // constant expressions; nil for default
	Body   []Stmt
}

// SwitchStmt is a switch over an int expression; arms do not fall
// through (the compiler lowers the whole thing to cascaded
// conditional branches, as the Multiflow compiler did).
type SwitchStmt struct {
	P       token.Pos
	Subject Expr
	Cases   []SwitchCase
}

// BreakStmt exits the nearest loop or switch.
type BreakStmt struct{ P token.Pos }

// ContinueStmt continues the nearest loop.
type ContinueStmt struct{ P token.Pos }

// ReturnStmt returns from the function.
type ReturnStmt struct {
	P     token.Pos
	Value Expr // nil for void returns
}

// ExprStmt evaluates a call for its effect.
type ExprStmt struct {
	P token.Pos
	X Expr
}

// BlockStmt is { ... } with its own scope.
type BlockStmt struct {
	P    token.Pos
	List []Stmt
}

func (s *VarStmt) Pos() token.Pos      { return s.P }
func (s *AssignStmt) Pos() token.Pos   { return s.P }
func (s *IfStmt) Pos() token.Pos       { return s.P }
func (s *WhileStmt) Pos() token.Pos    { return s.P }
func (s *ForStmt) Pos() token.Pos      { return s.P }
func (s *SwitchStmt) Pos() token.Pos   { return s.P }
func (s *BreakStmt) Pos() token.Pos    { return s.P }
func (s *ContinueStmt) Pos() token.Pos { return s.P }
func (s *ReturnStmt) Pos() token.Pos   { return s.P }
func (s *ExprStmt) Pos() token.Pos     { return s.P }
func (s *BlockStmt) Pos() token.Pos    { return s.P }

func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}

// ---- Declarations ----

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// GlobalVar declares a global scalar (Size == nil) or array. Sizes
// and initializer elements must be constant expressions; the semantic
// pass folds them.
type GlobalVar struct {
	P       token.Pos
	Name    string
	Type    Type
	Size    Expr   // nil for scalars
	Init    []Expr // optional element initializers
	InitStr string // optional string initializer for int arrays
	IsStr   bool
}

// ConstDecl is a named compile-time constant; Value must fold to a
// constant.
type ConstDecl struct {
	P     token.Pos
	Name  string
	Value Expr
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	P      token.Pos
	Name   string
	Params []Param
	Ret    Type // Void when absent
	Body   *BlockStmt
}

func (d *GlobalVar) Pos() token.Pos { return d.P }
func (d *ConstDecl) Pos() token.Pos { return d.P }
func (d *FuncDecl) Pos() token.Pos  { return d.P }

func (*GlobalVar) declNode() {}
func (*ConstDecl) declNode() {}
func (*FuncDecl) declNode()  {}

// File is a parsed compilation unit.
type File struct {
	Decls []Decl
}

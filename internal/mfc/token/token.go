// Package token defines the lexical tokens of the MF language, the
// small C-like language in which this repository's benchmark program
// analogues are written (standing in for the C and FORTRAN sources the
// paper compiled with the Multiflow compiler).
package token

import "fmt"

// Kind identifies a token class.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Int    // 123, 0x7f
	Float  // 1.5, 2e-3
	Char   // 'a'
	String // "abc"

	// Keywords.
	KwVar
	KwConst
	KwFunc
	KwIf
	KwElse
	KwWhile
	KwFor
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwInt
	KwFloat

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Colon
	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Amp    // & (bitwise and / function address)
	Pipe   // |
	Caret  // ^
	Tilde  // ~
	Bang   // !
	Shl    // <<
	Shr    // >>
	AndAnd // &&
	OrOr   // ||
	Eq     // ==
	Ne     // !=
	Lt
	Le
	Gt
	Ge
)

var names = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Int: "int literal", Float: "float literal",
	Char: "char literal", String: "string literal",
	KwVar: "var", KwConst: "const", KwFunc: "func", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwSwitch: "switch", KwCase: "case",
	KwDefault: "default", KwBreak: "break", KwContinue: "continue",
	KwReturn: "return", KwInt: "int", KwFloat: "float",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";", Colon: ":",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", AndAnd: "&&", OrOr: "||",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
}

// String returns a readable name for the kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"var": KwVar, "const": KwConst, "func": KwFunc, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "break": KwBreak, "continue": KwContinue,
	"return": KwReturn, "int": KwInt, "float": KwFloat,
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string  // identifier name or literal spelling
	IVal int64   // value for Int and Char
	FVal float64 // value for Float
	SVal string  // decoded value for String
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, Int, Float, Char, String:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

package mfc

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"branchprof/internal/vm"
)

// progGen generates random but well-typed MF programs: straight-line
// arithmetic, bounded loops, conditionals with short-circuit
// operators, switches, array traffic, calls, and constant-condition
// branches (so dead-branch elimination has work to do). Loops are
// always bounded by construction so every generated program
// terminates.
type progGen struct {
	rng        *rand.Rand
	sb         strings.Builder
	depth      int
	indent     int
	intVars    []string // readable int variables (includes loop counters)
	assignable []string // writable int variables (excludes loop counters)
	funcs      []string // callable int(int) functions defined so far
}

func (g *progGen) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// intExpr produces a well-typed int expression of bounded depth.
func (g *progGen) intExpr(d int) string {
	if d <= 0 || g.rng.Intn(100) < 30 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(200)-100)
		case 1:
			if len(g.intVars) > 0 {
				return g.intVars[g.rng.Intn(len(g.intVars))]
			}
			return fmt.Sprintf("%d", g.rng.Intn(10))
		case 2:
			return fmt.Sprintf("arr[%d]", g.rng.Intn(16))
		default:
			return "K0"
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(d-1), g.intExpr(d-1))
	case 3:
		// Division guarded against zero by construction.
		return fmt.Sprintf("(%s / (1 + (%s & 7)))", g.intExpr(d-1), g.intExpr(d-1))
	case 4:
		return fmt.Sprintf("(%s %% (1 + (%s & 15)))", g.intExpr(d-1), g.intExpr(d-1))
	case 5:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(d-1),
			[]string{"&", "|", "^"}[g.rng.Intn(3)], g.intExpr(d-1))
	case 6:
		return fmt.Sprintf("(%s %s %s)", g.intExpr(d-1),
			[]string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)], g.intExpr(d-1))
	default:
		if len(g.funcs) > 0 && g.depth < 2 {
			return fmt.Sprintf("%s(%s)", g.funcs[g.rng.Intn(len(g.funcs))], g.intExpr(d-1))
		}
		return fmt.Sprintf("(-%s)", g.intExpr(d-1))
	}
}

// cond produces an int-typed condition, sometimes with short-circuit
// operators and sometimes constant (dead-branch fodder).
func (g *progGen) cond(d int) string {
	switch g.rng.Intn(6) {
	case 0:
		return "DBG != 0" // constant false
	case 1:
		return "1 == 1" // constant true
	case 2:
		return fmt.Sprintf("(%s) && (%s)", g.cond(d-1), g.intExpr(1))
	case 3:
		return fmt.Sprintf("(%s) || (%s)", g.cond(d-1), g.intExpr(1))
	default:
		return g.intExpr(d)
	}
}

func (g *progGen) stmt(d int) {
	if d <= 0 {
		g.assign()
		return
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		g.assign()
	case 3:
		g.w("if (%s) {", g.cond(2))
		g.indent++
		g.block(d-1, 2)
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			g.block(d-1, 2)
			g.indent--
		}
		g.w("}")
	case 4:
		// Bounded loop over a fresh counter.
		v := fmt.Sprintf("L%d", g.rng.Int31())
		g.w("var %s int;", v)
		g.w("for (%s = 0; %s < %d; %s = %s + 1) {", v, v, 1+g.rng.Intn(8), v, v)
		g.indent++
		g.intVars = append(g.intVars, v)
		g.block(d-1, 2)
		g.intVars = g.intVars[:len(g.intVars)-1]
		g.indent--
		g.w("}")
	case 5:
		g.w("switch (%s & 3) {", g.intExpr(1))
		for k := 0; k <= g.rng.Intn(3); k++ {
			g.w("case %d:", k)
			g.indent++
			g.assign()
			if g.rng.Intn(3) == 0 {
				g.w("break;")
			}
			g.indent--
		}
		if g.rng.Intn(2) == 0 {
			g.w("default:")
			g.indent++
			g.assign()
			g.indent--
		}
		g.w("}")
	case 6:
		g.w("arr[%d] = %s;", g.rng.Intn(16), g.intExpr(2))
	case 7:
		g.w("putc('a' + ((%s) & 15));", g.intExpr(1))
	default:
		g.assign()
	}
}

func (g *progGen) assign() {
	if len(g.assignable) == 0 {
		g.w("arr[0] = %s;", g.intExpr(2))
		return
	}
	v := g.assignable[g.rng.Intn(len(g.assignable))]
	g.w("%s = %s;", v, g.intExpr(2))
}

func (g *progGen) block(d, n int) {
	for i := 0; i <= g.rng.Intn(n+1); i++ {
		g.stmt(d)
	}
}

// generate builds a complete program.
func generate(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.w("const DBG = 0;")
	g.w("const K0 = %d;", g.rng.Intn(50))
	g.w("var arr[16] int;")
	nf := g.rng.Intn(3)
	for f := 0; f < nf; f++ {
		name := fmt.Sprintf("fn%d", f)
		g.w("func %s(x int) int {", name)
		g.indent++
		g.intVars = []string{"x"}
		g.assignable = []string{"x"}
		g.block(2, 2)
		g.w("return %s;", g.intExpr(2))
		g.indent--
		g.w("}")
		g.intVars = nil
		g.assignable = nil
		g.funcs = append(g.funcs, name)
	}
	g.w("func main() int {")
	g.indent++
	g.w("var a int = %d;", g.rng.Intn(20))
	g.w("var b int = %d;", g.rng.Intn(20))
	g.intVars = []string{"a", "b"}
	g.assignable = []string{"a", "b"}
	g.block(3, 4)
	g.w("return (a + b) & 0xffff;")
	g.indent--
	g.w("}")
	return g.sb.String()
}

// TestFuzzCompileRunDeterministic: every generated program compiles,
// validates, terminates within fuel, and is deterministic.
func TestFuzzCompileRunDeterministic(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		src := generate(seed)
		prog, err := Compile(fmt.Sprintf("fuzz%d", seed), src, Options{})
		if err != nil {
			t.Fatalf("seed %d: compile failed: %v\nsource:\n%s", seed, err, src)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		cfg := &vm.Config{Fuel: 50_000_000}
		r1, err := vm.Run(prog, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d: run failed: %v\nsource:\n%s", seed, err, src)
		}
		r2, err := vm.Run(prog, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d: rerun failed: %v", seed, err)
		}
		if r1.ExitCode != r2.ExitCode || r1.Instrs != r2.Instrs || !bytes.Equal(r1.Output, r2.Output) {
			t.Fatalf("seed %d: nondeterministic run", seed)
		}
	}
}

// TestFuzzDCEEquivalence: dead-branch elimination never changes
// observable behaviour on generated programs, and never increases the
// dynamic instruction count.
func TestFuzzDCEEquivalence(t *testing.T) {
	for seed := int64(1000); seed < 1120; seed++ {
		src := generate(seed)
		plain, err := Compile("p", src, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dce, err := Compile("p", src, Options{DeadBranchElim: true})
		if err != nil {
			t.Fatalf("seed %d (dce): %v", seed, err)
		}
		cfg := &vm.Config{Fuel: 50_000_000}
		rp, err := vm.Run(plain, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rd, err := vm.Run(dce, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d (dce): %v", seed, err)
		}
		if rp.ExitCode != rd.ExitCode || !bytes.Equal(rp.Output, rd.Output) {
			t.Fatalf("seed %d: DCE changed behaviour: exit %d/%d out %q/%q\nsource:\n%s",
				seed, rp.ExitCode, rd.ExitCode, rp.Output, rd.Output, src)
		}
		if rd.Instrs > rp.Instrs {
			t.Errorf("seed %d: DCE increased instructions %d -> %d", seed, rp.Instrs, rd.Instrs)
		}
		if len(dce.Sites) > len(plain.Sites) {
			t.Errorf("seed %d: DCE added sites", seed)
		}
	}
}

// TestFuzzSiteCountsConsistent: for every generated program, the sum
// of per-site totals equals what a per-site census of branch
// instructions would allow — no site lost or double-counted.
func TestFuzzSiteCountsConsistent(t *testing.T) {
	for seed := int64(2000); seed < 2060; seed++ {
		src := generate(seed)
		prog, err := Compile("p", src, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := vm.Run(prog, nil, &vm.Config{Fuel: 50_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range res.SiteTotal {
			if res.SiteTaken[i] > res.SiteTotal[i] {
				t.Fatalf("seed %d: site %d taken %d > total %d", seed, i, res.SiteTaken[i], res.SiteTotal[i])
			}
		}
	}
}

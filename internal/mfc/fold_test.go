package mfc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"branchprof/internal/vm"
)

// These tests pin the central constant-folding invariant: evaluating
// an expression at compile time must produce exactly the value the VM
// computes at run time. Each random expression is compiled twice —
// once over literals (folds to a single ldi) and once over variables
// initialized to the same values (computed by the machine) — and both
// programs must return the same result.

// exprGen builds random int expressions with two spellings: one using
// literals, one using variables a/b/c.
type exprGen struct {
	rng  *rand.Rand
	vals [3]int64
}

func (g *exprGen) operand() (lit, varr string) {
	i := g.rng.Intn(3)
	return fmt.Sprintf("%d", g.vals[i]), string(rune('a' + i))
}

func (g *exprGen) expr(d int) (lit, varr string) {
	if d <= 0 || g.rng.Intn(100) < 25 {
		return g.operand()
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
	op := ops[g.rng.Intn(len(ops))]
	l1, v1 := g.expr(d - 1)
	l2, v2 := g.expr(d - 1)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(-%s)", l1), fmt.Sprintf("(-%s)", v1)
	case 1:
		return fmt.Sprintf("(~%s)", l1), fmt.Sprintf("(~%s)", v1)
	case 2:
		return fmt.Sprintf("(!%s)", l1), fmt.Sprintf("(!%s)", v1)
	case 3:
		// Guarded division/remainder/shift: fold and runtime must
		// agree on guarded forms too.
		d := []string{"/", "%"}[g.rng.Intn(2)]
		return fmt.Sprintf("(%s %s (1 + (%s & 7)))", l1, d, l2),
			fmt.Sprintf("(%s %s (1 + (%s & 7)))", v1, d, v2)
	case 4:
		sh := []string{"<<", ">>"}[g.rng.Intn(2)]
		return fmt.Sprintf("(%s %s (%s & 15))", l1, sh, l2),
			fmt.Sprintf("(%s %s (%s & 15))", v1, sh, v2)
	}
	return fmt.Sprintf("(%s %s %s)", l1, op, l2), fmt.Sprintf("(%s %s %s)", v1, op, v2)
}

func evalProgram(t *testing.T, src string) int64 {
	t.Helper()
	p, err := Compile("fold", src, Options{})
	if err != nil {
		t.Fatalf("compile failed: %v\nsource:\n%s", err, src)
	}
	res, err := vm.Run(p, nil, &vm.Config{Fuel: 1_000_000})
	if err != nil {
		t.Fatalf("run failed: %v\nsource:\n%s", err, src)
	}
	return res.ExitCode
}

func TestFoldMatchesRuntime(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := &exprGen{rng: rng}
		for i := range g.vals {
			g.vals[i] = int64(rng.Intn(41) - 20)
		}
		lit, varr := g.expr(4)

		folded := evalProgram(t, fmt.Sprintf(
			"func main() int { return (%s) & 0xffff; }", lit))
		computed := evalProgram(t, fmt.Sprintf(`
func main() int {
	var a int = %d;
	var b int = %d;
	var c int = %d;
	return (%s) & 0xffff;
}`, g.vals[0], g.vals[1], g.vals[2], varr))
		if folded != computed {
			t.Fatalf("seed %d: folded %d != computed %d\nexpr: %s",
				seed, folded, computed, lit)
		}
	}
}

// TestFoldedProgramIsSmall confirms the literal spelling actually
// folded (no arithmetic ops survive).
func TestFoldedProgramIsSmall(t *testing.T) {
	p, err := Compile("fold", "func main() int { return ((3 + 4) * (5 - 2)) << 2; }", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(p.Funcs[p.Main].Code); n > 3 {
		t.Errorf("constant expression left %d instructions", n)
	}
	res, err := vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 84 {
		t.Errorf("exit = %d, want 84", res.ExitCode)
	}
}

// TestFloatFoldMatchesRuntime does the same for float arithmetic.
func TestFloatFoldMatchesRuntime(t *testing.T) {
	cases := []string{
		"(1.5 + 2.25) * 4.0",
		"(10.0 / 4.0) - 0.5",
		"-(3.5 * 2.0)",
		"(1.0 / 3.0) * 3.0",
	}
	for _, e := range cases {
		ve := strings.NewReplacer("1.5", "x", "2.25", "y", "4.0", "z").Replace(e)
		folded := evalProgram(t, fmt.Sprintf(
			"func main() int { return int((%s) * 1000.0); }", e))
		computed := evalProgram(t, fmt.Sprintf(`
func main() int {
	var x float = 1.5;
	var y float = 2.25;
	var z float = 4.0;
	return int((%s) * 1000.0);
}`, ve))
		if folded != computed {
			t.Errorf("%s: folded %d != computed %d", e, folded, computed)
		}
	}
}

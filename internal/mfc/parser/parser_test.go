package parser

import (
	"strings"
	"testing"

	"branchprof/internal/mfc/ast"
	"branchprof/internal/mfc/token"
)

func TestParseExprPrecedence(t *testing.T) {
	// a + b * c parses as a + (b * c)
	e, err := ParseExpr("a + b * c")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := e.(*ast.Binary)
	if !ok || top.Op != token.Plus {
		t.Fatalf("top = %#v, want +", e)
	}
	rhs, ok := top.Y.(*ast.Binary)
	if !ok || rhs.Op != token.Star {
		t.Fatalf("rhs = %#v, want *", top.Y)
	}
}

func TestParseExprAssociativity(t *testing.T) {
	// a - b - c parses as (a - b) - c
	e, err := ParseExpr("a - b - c")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*ast.Binary)
	if _, ok := top.X.(*ast.Binary); !ok {
		t.Fatalf("left operand should be the nested subtraction, got %#v", top.X)
	}
}

func TestParseExprShiftVsComparison(t *testing.T) {
	// a << b < c parses as (a << b) < c (shift binds tighter)
	e, err := ParseExpr("a << b < c")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*ast.Binary)
	if top.Op != token.Lt {
		t.Fatalf("top = %v, want <", top.Op)
	}
}

func TestParseUnaryAndCast(t *testing.T) {
	e, err := ParseExpr("-int(x) + float(3)")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*ast.Binary)
	u, ok := top.X.(*ast.Unary)
	if !ok || u.Op != token.Minus {
		t.Fatalf("left = %#v", top.X)
	}
	if _, ok := u.X.(*ast.Cast); !ok {
		t.Fatalf("negated operand should be a cast, got %#v", u.X)
	}
}

func TestParseFuncRefAndCalls(t *testing.T) {
	e, err := ParseExpr("icall1(&f, g(1, 2))")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*ast.Call)
	if c.Name != "icall1" || len(c.Args) != 2 {
		t.Fatalf("call = %#v", c)
	}
	if _, ok := c.Args[0].(*ast.FuncRef); !ok {
		t.Fatalf("first arg = %#v, want &f", c.Args[0])
	}
}

func TestParseFullProgram(t *testing.T) {
	src := `
const N = 4;
var arr[N * 2] int = { 1, 2, 3 };
var name[16] int = "hi";
var scalar float;

func helper(a int, b float) float {
	var x float = b;
	if (a > 0) {
		x = x + float(a);
	} else if (a < -1) {
		x = -x;
	} else {
		x = 0.0;
	}
	return x;
}

func main() int {
	var i int;
	for (i = 0; i < N; i = i + 1) {
		arr[i] = i;
	}
	while (i > 0) {
		i = i - 1;
		if (i == 2) { continue; }
		if (i == 1) { break; }
	}
	switch (arr[0]) {
	case 0, 1:
		i = 10;
	default:
		i = 20;
	}
	return i;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Decls) != 6 {
		t.Fatalf("got %d decls, want 6", len(f.Decls))
	}
	g := f.Decls[1].(*ast.GlobalVar)
	if g.Name != "arr" || g.Size == nil || len(g.Init) != 3 {
		t.Errorf("arr decl = %#v", g)
	}
	s := f.Decls[2].(*ast.GlobalVar)
	if !s.IsStr || s.InitStr != "hi" {
		t.Errorf("name decl = %#v", s)
	}
	fn := f.Decls[4].(*ast.FuncDecl)
	if fn.Name != "helper" || len(fn.Params) != 2 || fn.Ret != ast.Float {
		t.Errorf("helper decl = %#v", fn)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func main() int { return 1 }", "expected ;"},
		{"func main() int { if x { } }", "expected ("},
		{"var a[0 int;", "expected ]"},
		{"func f(,) {}", "expected identifier"},
		{"func f(a string) {}", "expected type"},
		{"func main() int { switch (x) { what: } }", "expected case or default"},
		{"func main() int { switch (x) { default: default: } }", "duplicate default"},
		{"garbage", "expected declaration"},
		{"func main() int { x ++; }", "expected assignment or call"},
		{"func main() int { return (1; }", "expected )"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("parsing %q should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parsing %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestParseForVariants(t *testing.T) {
	for _, src := range []string{
		"func main() int { for (;;) { break; } return 0; }",
		"func main() int { var i int; for (i = 0; ; i = i + 1) { break; } return 0; }",
		"func main() int { for (var i int = 0; i < 3; i = i + 1) { } return 0; }",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

// Package parser builds MF abstract syntax trees from tokens.
//
// The grammar is a small C dialect with Go-flavoured declarations:
//
//	file      = { global | const | func }
//	global    = "var" ident [ "[" expr "]" ] type [ "=" init ] ";"
//	init      = "{" expr { "," expr } "}" | string | expr
//	const     = "const" ident "=" expr ";"
//	func      = "func" ident "(" [ params ] ")" [ type ] block
//	params    = ident type { "," ident type }
//	block     = "{" { stmt } "}"
//	stmt      = varStmt | assign | callStmt | if | while | for | switch
//	          | "break" ";" | "continue" ";" | "return" [ expr ] ";"
//	          | block | ";"
//	varStmt   = "var" ident type [ "=" expr ] ";"
//	assign    = ident [ "[" expr "]" ] "=" expr ";"
//	if        = "if" "(" expr ")" block [ "else" (if | block) ]
//	while     = "while" "(" expr ")" block
//	for       = "for" "(" [simple] ";" [expr] ";" [simple] ")" block
//	switch    = "switch" "(" expr ")" "{" { case } "}"
//	case      = ("case" expr {"," expr} | "default") ":" { stmt }
//
// Expressions use C precedence: || && | ^ & (== !=) (< <= > >=)
// (<< >>) (+ -) (* / %), with unary - ! ~ and &func, casts
// int(x)/float(x), calls, and array indexing.
package parser

import (
	"fmt"

	"branchprof/internal/mfc/ast"
	"branchprof/internal/mfc/lexer"
	"branchprof/internal/mfc/token"
)

// Error is a parse error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
}

// Parse parses a complete MF source unit.
func Parse(src string) (*ast.File, error) {
	toks, err := lexer.All(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &ast.File{}
	for p.cur().Kind != token.EOF {
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.All(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != token.EOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) next() token.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.cur().Kind != k {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) parseType() (ast.Type, error) {
	switch p.cur().Kind {
	case token.KwInt:
		p.next()
		return ast.Int, nil
	case token.KwFloat:
		p.next()
		return ast.Float, nil
	}
	return ast.Int, p.errf("expected type, found %s", p.cur())
}

func (p *parser) decl() (ast.Decl, error) {
	switch p.cur().Kind {
	case token.KwVar:
		return p.globalVar()
	case token.KwConst:
		return p.constDecl()
	case token.KwFunc:
		return p.funcDecl()
	}
	return nil, p.errf("expected declaration, found %s", p.cur())
}

func (p *parser) globalVar() (ast.Decl, error) {
	start := p.next() // var
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	g := &ast.GlobalVar{P: start.Pos, Name: name.Text}
	if p.cur().Kind == token.LBracket {
		p.next()
		g.Size, err = p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
	}
	g.Type, err = p.parseType()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == token.Assign {
		p.next()
		switch p.cur().Kind {
		case token.LBrace:
			p.next()
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, e)
				if p.cur().Kind == token.Comma {
					p.next()
					if p.cur().Kind == token.RBrace {
						break
					}
					continue
				}
				break
			}
			if _, err := p.expect(token.RBrace); err != nil {
				return nil, err
			}
		case token.String:
			s := p.next()
			g.InitStr, g.IsStr = s.SVal, true
		default:
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			g.Init = append(g.Init, e)
		}
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) constDecl() (ast.Decl, error) {
	start := p.next() // const
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.ConstDecl{P: start.Pos, Name: name.Text, Value: v}, nil
}

func (p *parser) funcDecl() (ast.Decl, error) {
	start := p.next() // func
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	fd := &ast.FuncDecl{P: start.Pos, Name: name.Text, Ret: ast.Void}
	if p.cur().Kind != token.RParen {
		for {
			pn, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fd.Params = append(fd.Params, ast.Param{Name: pn.Text, Type: pt})
			if p.cur().Kind != token.Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if p.cur().Kind == token.KwInt || p.cur().Kind == token.KwFloat {
		fd.Ret, err = p.parseType()
		if err != nil {
			return nil, err
		}
	}
	fd.Body, err = p.block()
	if err != nil {
		return nil, err
	}
	return fd, nil
}

func (p *parser) block() (*ast.BlockStmt, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.BlockStmt{P: lb.Pos}
	for p.cur().Kind != token.RBrace {
		if p.cur().Kind == token.EOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.List = append(b.List, s)
		}
	}
	p.next() // }
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch p.cur().Kind {
	case token.Semicolon:
		p.next()
		return nil, nil
	case token.LBrace:
		return p.block()
	case token.KwVar:
		s, err := p.varStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	case token.KwIf:
		return p.ifStmt()
	case token.KwWhile:
		return p.whileStmt()
	case token.KwFor:
		return p.forStmt()
	case token.KwSwitch:
		return p.switchStmt()
	case token.KwBreak:
		t := p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.BreakStmt{P: t.Pos}, nil
	case token.KwContinue:
		t := p.next()
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ContinueStmt{P: t.Pos}, nil
	case token.KwReturn:
		t := p.next()
		var v ast.Expr
		var err error
		if p.cur().Kind != token.Semicolon {
			v, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return &ast.ReturnStmt{P: t.Pos, Value: v}, nil
	case token.Ident:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, p.errf("expected statement, found %s", p.cur())
}

// varStmt parses a local declaration without the trailing semicolon.
func (p *parser) varStmt() (ast.Stmt, error) {
	start := p.next() // var
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	s := &ast.VarStmt{P: start.Pos, Name: name.Text, Type: ty}
	if p.cur().Kind == token.Assign {
		p.next()
		s.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// simpleStmt parses an assignment or call statement without the
// trailing semicolon (shared by statement position and for-headers).
func (p *parser) simpleStmt() (ast.Stmt, error) {
	name := p.next() // Ident
	switch p.cur().Kind {
	case token.LParen:
		call, err := p.finishCall(name)
		if err != nil {
			return nil, err
		}
		return &ast.ExprStmt{P: name.Pos, X: call}, nil
	case token.LBracket:
		p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Assign); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{P: name.Pos, Name: name.Text, Idx: idx, Value: v}, nil
	case token.Assign:
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{P: name.Pos, Name: name.Text, Value: v}, nil
	}
	return nil, p.errf("expected assignment or call after %q, found %s", name.Text, p.cur())
}

func (p *parser) parenExpr() (ast.Expr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	start := p.next() // if
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &ast.IfStmt{P: start.Pos, Cond: cond, Then: then}
	if p.cur().Kind == token.KwElse {
		p.next()
		if p.cur().Kind == token.KwIf {
			s.Else, err = p.ifStmt()
		} else {
			s.Else, err = p.block()
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	start := p.next() // while
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{P: start.Pos, Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	start := p.next() // for
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	s := &ast.ForStmt{P: start.Pos}
	var err error
	if p.cur().Kind != token.Semicolon {
		if p.cur().Kind == token.KwVar {
			s.Init, err = p.varStmt()
		} else if p.cur().Kind == token.Ident {
			s.Init, err = p.simpleStmt()
		} else {
			return nil, p.errf("expected for-init, found %s", p.cur())
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != token.Semicolon {
		s.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != token.RParen {
		if p.cur().Kind != token.Ident {
			return nil, p.errf("expected for-post assignment, found %s", p.cur())
		}
		s.Post, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	s.Body, err = p.block()
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) switchStmt() (ast.Stmt, error) {
	start := p.next() // switch
	subj, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	s := &ast.SwitchStmt{P: start.Pos, Subject: subj}
	sawDefault := false
	for p.cur().Kind != token.RBrace {
		var c ast.SwitchCase
		c.P = p.cur().Pos
		switch p.cur().Kind {
		case token.KwCase:
			p.next()
			for {
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Values = append(c.Values, v)
				if p.cur().Kind != token.Comma {
					break
				}
				p.next()
			}
		case token.KwDefault:
			if sawDefault {
				return nil, p.errf("duplicate default case")
			}
			sawDefault = true
			p.next()
		default:
			return nil, p.errf("expected case or default, found %s", p.cur())
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		for p.cur().Kind != token.KwCase && p.cur().Kind != token.KwDefault && p.cur().Kind != token.RBrace {
			st, err := p.stmt()
			if err != nil {
				return nil, err
			}
			if st != nil {
				c.Body = append(c.Body, st)
			}
		}
		s.Cases = append(s.Cases, c)
	}
	p.next() // }
	return s, nil
}

// ---- Expressions ----

// binaryLevels lists operator precedence from loosest to tightest.
var binaryLevels = [][]token.Kind{
	{token.OrOr},
	{token.AndAnd},
	{token.Pipe},
	{token.Caret},
	{token.Amp},
	{token.Eq, token.Ne},
	{token.Lt, token.Le, token.Gt, token.Ge},
	{token.Shl, token.Shr},
	{token.Plus, token.Minus},
	{token.Star, token.Slash, token.Percent},
}

func (p *parser) expr() (ast.Expr, error) { return p.binary(0) }

func (p *parser) binary(level int) (ast.Expr, error) {
	if level >= len(binaryLevels) {
		return p.unary()
	}
	x, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		match := false
		for _, op := range binaryLevels[level] {
			if k == op {
				match = true
				break
			}
		}
		if !match {
			return x, nil
		}
		opTok := p.next()
		y, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &ast.Binary{P: opTok.Pos, Op: opTok.Kind, X: x, Y: y}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	switch p.cur().Kind {
	case token.Minus, token.Bang, token.Tilde:
		opTok := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{P: opTok.Pos, Op: opTok.Kind, X: x}, nil
	case token.Amp:
		opTok := p.next()
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		return &ast.FuncRef{P: opTok.Pos, Name: name.Text}, nil
	}
	return p.primary()
}

func (p *parser) primary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Int, token.Char:
		p.next()
		return &ast.IntLit{P: t.Pos, Value: t.IVal}, nil
	case token.Float:
		p.next()
		return &ast.FloatLit{P: t.Pos, Value: t.FVal}, nil
	case token.String:
		p.next()
		return &ast.StrLit{P: t.Pos, Value: t.SVal}, nil
	case token.LParen:
		return p.parenExpr()
	case token.KwInt, token.KwFloat:
		p.next()
		x, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		to := ast.Int
		if t.Kind == token.KwFloat {
			to = ast.Float
		}
		return &ast.Cast{P: t.Pos, To: to, X: x}, nil
	case token.Ident:
		p.next()
		switch p.cur().Kind {
		case token.LParen:
			return p.finishCall(t)
		case token.LBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			return &ast.Index{P: t.Pos, Array: t.Text, Idx: idx}, nil
		}
		return &ast.Ident{P: t.Pos, Name: t.Text}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}

func (p *parser) finishCall(name token.Token) (ast.Expr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	c := &ast.Call{P: name.Pos, Name: name.Text}
	if p.cur().Kind != token.RParen {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, a)
			if p.cur().Kind != token.Comma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	return c, nil
}

package mfc

import (
	"strings"
	"testing"
)

// FuzzCompile feeds arbitrary bytes to the compiler front end. The
// contract for untrusted source (branchprofd accepts programs over
// HTTP) is: a well-formed program compiles, anything else returns an
// error — the compiler never panics and never hangs.
func FuzzCompile(f *testing.F) {
	f.Add("func main() int { return 0 }")
	f.Add("func main() int { var i int; for i = 0; i < 10; i = i + 1 { puti(i); } return i }\nfunc puti(x int) int { return x }")
	f.Add("func f(x int) int { if x > 0 && x < 9 { return 1; } return 0 }\nfunc main() int { return f(3) }")
	f.Add("func main() int { switch 3 { case 1: return 1; case 2: return 2; default: return 9 } }")
	f.Add("func main() float { var a [4]float; a[0] = 1.5; return sqrt(a[0]); }")
	f.Add("func main() int { return }")
	f.Add("\x00\xff{{{")
	f.Add("func main() int { return 1 }\nfunc main() int { return 2 }")
	f.Fuzz(func(t *testing.T, src string) {
		for _, opts := range []Options{
			{},
			{DeadBranchElim: true, InlineCalls: true, UseSelects: true},
		} {
			prog, err := Compile("fuzz", src, opts)
			if err != nil {
				continue
			}
			if prog == nil {
				t.Fatalf("nil program with nil error (opts %+v)", opts)
			}
			// Site numbering must stay dense and in range for every
			// branch the image carries — profiles index by site id.
			for _, s := range prog.Sites {
				if int(s.ID) >= len(prog.Sites) {
					t.Fatalf("site id %d out of range (%d sites)", s.ID, len(prog.Sites))
				}
			}
		}
	})
}

// FuzzCompileLong guards against pathological inputs built from
// repetition (deep nesting, long operator chains) blowing the stack.
func FuzzCompileLong(f *testing.F) {
	f.Add("func main() int { return ", "1+", 64)
	f.Add("func main() int { if 1 < 2 { ", "if 1 < 2 { ", 32)
	f.Fuzz(func(t *testing.T, prefix, unit string, n int) {
		if n < 0 || n > 2000 || len(unit) > 64 {
			t.Skip()
		}
		src := prefix + strings.Repeat(unit, n)
		Compile("fuzz", src, Options{}) //nolint:errcheck // must not panic
	})
}

package mfc

import (
	"branchprof/internal/isa"
	"branchprof/internal/mfc/ast"
)

// defaultInlineMaxStmts bounds eligible body sizes when the option
// doesn't say otherwise.
const defaultInlineMaxStmts = 8

// maxInlineDepth stops runaway expansion through chains (and mutual
// recursion) — calls beyond this depth compile as real calls.
const maxInlineDepth = 3

// inlinable reports whether calls to fd may be expanded in place:
// the body is small and the function does not call itself directly.
func (m *module) inlinable(fd *ast.FuncDecl) bool {
	max := m.opts.InlineMaxStmts
	if max == 0 {
		max = defaultInlineMaxStmts
	}
	if countStmts(fd.Body.List) > max {
		return false
	}
	return !stmtsCall(fd.Body.List, fd.Name)
}

// blockEndsWithReturn reports whether every path through the
// statement list reaches a return (conservatively: the list ends in a
// return, a block that does, or an if whose arms both do).
func blockEndsWithReturn(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		return blockEndsWithReturn(s.List)
	case *ast.IfStmt:
		if s.Else == nil || !blockEndsWithReturn(s.Then.List) {
			return false
		}
		return blockEndsWithReturn([]ast.Stmt{s.Else})
	}
	return false
}

func countStmts(list []ast.Stmt) int {
	n := 0
	for _, s := range list {
		n++
		switch s := s.(type) {
		case *ast.BlockStmt:
			n += countStmts(s.List) - 1 // the block itself is free
		case *ast.IfStmt:
			n += countStmts(s.Then.List)
			if s.Else != nil {
				n += countStmts([]ast.Stmt{s.Else})
			}
		case *ast.WhileStmt:
			n += countStmts(s.Body.List)
		case *ast.ForStmt:
			n += countStmts(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				n += countStmts(c.Body)
			}
		}
	}
	return n
}

// stmtsCall reports whether any statement calls (or takes the address
// of) the named function.
func stmtsCall(list []ast.Stmt, name string) bool {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.BlockStmt:
			if stmtsCall(s.List, name) {
				return true
			}
		case *ast.VarStmt:
			if s.Init != nil && exprCalls(s.Init, name) {
				return true
			}
		case *ast.AssignStmt:
			if s.Idx != nil && exprCalls(s.Idx, name) {
				return true
			}
			if exprCalls(s.Value, name) {
				return true
			}
		case *ast.IfStmt:
			if exprCalls(s.Cond, name) || stmtsCall(s.Then.List, name) {
				return true
			}
			if s.Else != nil && stmtsCall([]ast.Stmt{s.Else}, name) {
				return true
			}
		case *ast.WhileStmt:
			if exprCalls(s.Cond, name) || stmtsCall(s.Body.List, name) {
				return true
			}
		case *ast.ForStmt:
			if s.Init != nil && stmtsCall([]ast.Stmt{s.Init}, name) {
				return true
			}
			if s.Cond != nil && exprCalls(s.Cond, name) {
				return true
			}
			if s.Post != nil && stmtsCall([]ast.Stmt{s.Post}, name) {
				return true
			}
			if stmtsCall(s.Body.List, name) {
				return true
			}
		case *ast.SwitchStmt:
			if exprCalls(s.Subject, name) {
				return true
			}
			for _, c := range s.Cases {
				if stmtsCall(c.Body, name) {
					return true
				}
			}
		case *ast.ReturnStmt:
			if s.Value != nil && exprCalls(s.Value, name) {
				return true
			}
		case *ast.ExprStmt:
			if exprCalls(s.X, name) {
				return true
			}
		}
	}
	return false
}

func exprCalls(e ast.Expr, name string) bool {
	switch e := e.(type) {
	case *ast.Call:
		if e.Name == name {
			return true
		}
		for _, a := range e.Args {
			if exprCalls(a, name) {
				return true
			}
		}
	case *ast.FuncRef:
		return e.Name == name
	case *ast.Unary:
		return exprCalls(e.X, name)
	case *ast.Binary:
		return exprCalls(e.X, name) || exprCalls(e.Y, name)
	case *ast.Cast:
		return exprCalls(e.X, name)
	case *ast.Index:
		return exprCalls(e.Idx, name)
	}
	return false
}

// genInlineCall expands fd's body at the call site: arguments are
// evaluated in the caller's scope into fresh registers, the body is
// compiled with params bound to those registers and returns rewritten
// to a store-and-jump, and the whole expansion contributes fresh
// branch sites attributed to the caller.
func (fc *funcCompiler) genInlineCall(e *ast.Call, fd *ast.FuncDecl) (value, ast.Type, error) {
	// Arguments first, before the params shadow anything they use.
	temps := make([]value, len(fd.Params))
	for i, p := range fd.Params {
		a, err := fc.genExpect(e.Args[i], p.Type)
		if err != nil {
			return value{}, 0, err
		}
		t := fc.allocT(p.Type)
		reg := t.reg
		fc.moveInto(reg, a)
		temps[i] = t
	}
	var res value
	if fd.Ret != ast.Void {
		res = fc.allocT(fd.Ret)
		// Falling off the end of a value-returning body yields zero,
		// matching the standalone compilation's implicit return. When
		// every path through the body returns, the initialization is
		// unreachable and elided.
		if !blockEndsWithReturn(fd.Body.List) {
			if fd.Ret == ast.Float {
				fc.emit(isa.Instr{Op: isa.OpLdf, C: int32(res.reg)})
			} else {
				fc.emit(isa.Instr{Op: isa.OpLdi, C: int32(res.reg)})
			}
		}
	}
	end := fc.newLabel()
	fc.pushScope()
	scope := fc.scopes[len(fc.scopes)-1]
	for i, p := range fd.Params {
		scope[p.Name] = localVar{typ: p.Type, reg: temps[i].reg}
	}
	savedBreaks, savedConts := fc.breaks, fc.conts
	fc.breaks, fc.conts = nil, nil
	fc.inlines = append(fc.inlines, inlineCtx{retType: fd.Ret, resReg: res.reg, end: end})
	fc.inlineDepth++
	err := fc.genBlock(fd.Body)
	fc.inlineDepth--
	fc.inlines = fc.inlines[:len(fc.inlines)-1]
	fc.breaks, fc.conts = savedBreaks, savedConts
	fc.popScope()
	if err != nil {
		return value{}, 0, err
	}
	// A body ending in return leaves a jump to the very next
	// instruction; drop it.
	if n := len(fc.code); n > 0 && fc.code[n-1].Op == isa.OpJmp {
		for i, at := range end.patches {
			if at == n-1 {
				end.patches = append(end.patches[:i], end.patches[i+1:]...)
				fc.code = fc.code[:n-1]
				break
			}
		}
	}
	fc.bind(end)
	for i := len(temps) - 1; i >= 0; i-- {
		fc.release(temps[i])
	}
	if fd.Ret == ast.Void {
		return value{}, ast.Void, nil
	}
	return res, fd.Ret, nil
}

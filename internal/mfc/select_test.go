package mfc

import (
	"bytes"
	"testing"

	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

func countOp(p *isa.Program, op isa.Op) int {
	n := 0
	for fi := range p.Funcs {
		for _, in := range p.Funcs[fi].Code {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

const selectSrc = `
func main() int {
	var i int;
	var best int = -1000;
	var evens int = 0;
	var f float = 0.0;
	for (i = 0; i < 200; i = i + 1) {
		var v int = (i * 37) % 101 - 50;
		if (v > best) { best = v; }
		if ((i & 1) == 0) { evens = evens + 1; } else { evens = evens - 1; }
		var w float = float(v);
		if (w < 0.0) { f = f + 1.0; }
	}
	return best * 1000 + evens + int(f);
}
`

func TestSelectConversion(t *testing.T) {
	plain, err := Compile("p", selectSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Compile("p", selectSrc, Options{UseSelects: true})
	if err != nil {
		t.Fatal(err)
	}
	if countOp(plain, isa.OpSel)+countOp(plain, isa.OpFSel) != 0 {
		t.Error("plain compilation emitted selects")
	}
	nSel := countOp(sel, isa.OpSel)
	nFSel := countOp(sel, isa.OpFSel)
	if nSel < 2 {
		t.Errorf("expected at least 2 int selects, got %d", nSel)
	}
	if nFSel < 1 {
		t.Errorf("expected a float select, got %d", nFSel)
	}
	if len(sel.Sites) >= len(plain.Sites) {
		t.Errorf("if-conversion did not remove branch sites: %d vs %d", len(sel.Sites), len(plain.Sites))
	}
	rp, err := vm.Run(plain, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := vm.Run(sel, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.ExitCode != rs.ExitCode {
		t.Errorf("behaviour changed: %d vs %d", rp.ExitCode, rs.ExitCode)
	}
	if rs.CondBranches() >= rp.CondBranches() {
		t.Errorf("if-conversion did not reduce executed branches: %d vs %d",
			rs.CondBranches(), rp.CondBranches())
	}
}

func TestSelectRefusesUnsafe(t *testing.T) {
	cases := []string{
		// call with side effects in the arm
		`func eff() int { putc('x'); return 1; }
		 func main() int { var x int; if (1 > 0 && x == 0) { x = eff(); } return x; }`,
		// division can trap
		`func main() int { var x int; var d int = 0; if (d != 0) { x = 10 / d; } return x; }`,
		// array index can trap
		`var a[4] int; func main() int { var x int; var i int = 9; if (i < 4) { x = a[i]; } return x; }`,
		// global assignment is an observable store
		`var g int; func main() int { var c int = 1; if (c == 1) { g = 5; } return g; }`,
		// float->int cast can trap
		`func main() int { var x int; var f float = 1.0; if (x == 0) { x = int(f / 0.0); } return 0; }`,
	}
	for i, src := range cases {
		p, err := Compile("p", src, Options{UseSelects: true})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n := countOp(p, isa.OpSel) + countOp(p, isa.OpFSel); n != 0 {
			t.Errorf("case %d: unsafe if was converted to %d selects", i, n)
		}
	}
}

func TestSelectPureBuiltinsConvert(t *testing.T) {
	src := `
func main() int {
	var f float = -3.0;
	var m float = 0.0;
	var i int;
	for (i = 0; i < 10; i = i + 1) {
		var v float = sin(float(i));
		if (fabs(v) > m) { m = fabs(v); }
	}
	return int(m * 100.0);
}
`
	p, err := Compile("p", src, Options{UseSelects: true})
	if err != nil {
		t.Fatal(err)
	}
	if countOp(p, isa.OpFSel) == 0 {
		t.Error("pure-builtin arm should convert")
	}
	_ = p
}

// TestSelectFuzzEquivalence: if-conversion never changes behaviour on
// the random corpus.
func TestSelectFuzzEquivalence(t *testing.T) {
	for seed := int64(4000); seed < 4100; seed++ {
		src := generate(seed)
		p1, err := Compile("p", src, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p2, err := Compile("p", src, Options{UseSelects: true})
		if err != nil {
			t.Fatalf("seed %d (sel): %v", seed, err)
		}
		cfg := &vm.Config{Fuel: 50_000_000}
		r1, err := vm.Run(p1, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := vm.Run(p2, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d (sel): %v\nsource:\n%s", seed, err, src)
		}
		if r1.ExitCode != r2.ExitCode || !bytes.Equal(r1.Output, r2.Output) {
			t.Fatalf("seed %d: if-conversion changed behaviour\nsource:\n%s", seed, src)
		}
	}
}

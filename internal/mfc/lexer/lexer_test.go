package lexer

import (
	"testing"

	"branchprof/internal/mfc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := All(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestOperators(t *testing.T) {
	got := kinds(t, "+ - * / % & | ^ ~ ! << >> && || == != < <= > >= = ; : , ( ) { } [ ]")
	want := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Amp, token.Pipe, token.Caret, token.Tilde, token.Bang,
		token.Shl, token.Shr, token.AndAnd, token.OrOr,
		token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge,
		token.Assign, token.Semicolon, token.Colon, token.Comma,
		token.LParen, token.RParen, token.LBrace, token.RBrace,
		token.LBracket, token.RBracket, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, err := All("42 0x2a 3.5 1e3 2.5e-2 7")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.Int || toks[0].IVal != 42 {
		t.Errorf("42 lexed as %v %d", toks[0].Kind, toks[0].IVal)
	}
	if toks[1].Kind != token.Int || toks[1].IVal != 42 {
		t.Errorf("0x2a lexed as %v %d", toks[1].Kind, toks[1].IVal)
	}
	if toks[2].Kind != token.Float || toks[2].FVal != 3.5 {
		t.Errorf("3.5 lexed as %v %g", toks[2].Kind, toks[2].FVal)
	}
	if toks[3].Kind != token.Float || toks[3].FVal != 1000 {
		t.Errorf("1e3 lexed as %v %g", toks[3].Kind, toks[3].FVal)
	}
	if toks[4].Kind != token.Float || toks[4].FVal != 0.025 {
		t.Errorf("2.5e-2 lexed as %v %g", toks[4].Kind, toks[4].FVal)
	}
}

func TestIdentifierVsKeyword(t *testing.T) {
	toks, err := All("while whiles iff if _x int")
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{token.KwWhile, token.Ident, token.Ident, token.KwIf, token.Ident, token.KwInt}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestCharAndStringLiterals(t *testing.T) {
	toks, err := All(`'a' '\n' '\'' "ab\tc" ""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].IVal != 'a' || toks[1].IVal != '\n' || toks[2].IVal != '\'' {
		t.Errorf("char literals = %d %d %d", toks[0].IVal, toks[1].IVal, toks[2].IVal)
	}
	if toks[3].SVal != "ab\tc" {
		t.Errorf("string = %q", toks[3].SVal)
	}
	if toks[4].SVal != "" {
		t.Errorf("empty string = %q", toks[4].SVal)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	toks, err := All("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "'ab'", "\"unterminated", "/* unterminated", "'"} {
		if _, err := All(src); err == nil {
			t.Errorf("lexing %q should fail", src)
		}
	}
}

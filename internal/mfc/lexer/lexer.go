// Package lexer turns MF source text into tokens.
package lexer

import (
	"fmt"
	"strconv"

	"branchprof/internal/mfc/token"
)

// Error is a lexical error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MF source.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(pos, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := token.Keywords[text]; ok {
			return token.Token{Kind: k, Pos: pos, Text: text}, nil
		}
		return token.Token{Kind: token.Ident, Pos: pos, Text: text}, nil
	case isDigit(c):
		return l.number(pos)
	case c == '\'':
		return l.charLit(pos)
	case c == '"':
		return l.stringLit(pos)
	}
	l.advance()
	two := func(second byte, twoKind, oneKind token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: twoKind, Pos: pos}
		}
		return token.Token{Kind: oneKind, Pos: pos}
	}
	switch c {
	case '(':
		return token.Token{Kind: token.LParen, Pos: pos}, nil
	case ')':
		return token.Token{Kind: token.RParen, Pos: pos}, nil
	case '{':
		return token.Token{Kind: token.LBrace, Pos: pos}, nil
	case '}':
		return token.Token{Kind: token.RBrace, Pos: pos}, nil
	case '[':
		return token.Token{Kind: token.LBracket, Pos: pos}, nil
	case ']':
		return token.Token{Kind: token.RBracket, Pos: pos}, nil
	case ',':
		return token.Token{Kind: token.Comma, Pos: pos}, nil
	case ';':
		return token.Token{Kind: token.Semicolon, Pos: pos}, nil
	case ':':
		return token.Token{Kind: token.Colon, Pos: pos}, nil
	case '+':
		return token.Token{Kind: token.Plus, Pos: pos}, nil
	case '-':
		return token.Token{Kind: token.Minus, Pos: pos}, nil
	case '*':
		return token.Token{Kind: token.Star, Pos: pos}, nil
	case '/':
		return token.Token{Kind: token.Slash, Pos: pos}, nil
	case '%':
		return token.Token{Kind: token.Percent, Pos: pos}, nil
	case '^':
		return token.Token{Kind: token.Caret, Pos: pos}, nil
	case '~':
		return token.Token{Kind: token.Tilde, Pos: pos}, nil
	case '&':
		return two('&', token.AndAnd, token.Amp), nil
	case '|':
		return two('|', token.OrOr, token.Pipe), nil
	case '=':
		return two('=', token.Eq, token.Assign), nil
	case '!':
		return two('=', token.Ne, token.Bang), nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.Shl, Pos: pos}, nil
		}
		return two('=', token.Le, token.Lt), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.Shr, Pos: pos}, nil
		}
		return two('=', token.Ge, token.Gt), nil
	}
	return token.Token{}, l.errf(pos, "unexpected character %q", c)
}

func (l *Lexer) number(pos token.Pos) (token.Token, error) {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text[2:], 16, 64)
		if err != nil {
			return token.Token{}, l.errf(pos, "bad hex literal %q: %v", text, err)
		}
		return token.Token{Kind: token.Int, Pos: pos, Text: text, IVal: v}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		saveLine, saveCol := l.line, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off, l.line, l.col = save, saveLine, saveCol
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token.Token{}, l.errf(pos, "bad float literal %q: %v", text, err)
		}
		return token.Token{Kind: token.Float, Pos: pos, Text: text, FVal: v}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token.Token{}, l.errf(pos, "bad int literal %q: %v", text, err)
	}
	return token.Token{Kind: token.Int, Pos: pos, Text: text, IVal: v}, nil
}

func (l *Lexer) escape(pos token.Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, l.errf(pos, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, l.errf(pos, "unknown escape \\%c", c)
}

func (l *Lexer) charLit(pos token.Pos) (token.Token, error) {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return token.Token{}, l.errf(pos, "unterminated char literal")
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		e, err := l.escape(pos)
		if err != nil {
			return token.Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return token.Token{}, l.errf(pos, "unterminated char literal")
	}
	return token.Token{Kind: token.Char, Pos: pos, Text: string(v), IVal: int64(v)}, nil
}

func (l *Lexer) stringLit(pos token.Pos) (token.Token, error) {
	l.advance() // opening quote
	var buf []byte
	for {
		if l.off >= len(l.src) {
			return token.Token{}, l.errf(pos, "unterminated string literal")
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return token.Token{}, l.errf(pos, "newline in string literal")
		}
		if c == '\\' {
			e, err := l.escape(pos)
			if err != nil {
				return token.Token{}, err
			}
			buf = append(buf, e)
			continue
		}
		buf = append(buf, c)
	}
	s := string(buf)
	return token.Token{Kind: token.String, Pos: pos, Text: s, SVal: s}, nil
}

// All scans the entire source, returning every token up to and
// including EOF.
func All(src string) ([]token.Token, error) {
	l := New(src)
	var toks []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

package mfc

import (
	"strings"
	"testing"

	"branchprof/internal/isa"
	"branchprof/internal/vm"
)

func compileErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Compile("test", src, Options{})
	return err
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no main", "func f() int { return 0; }", "no main"},
		{"main with params", "func main(a int) int { return a; }", "main must be"},
		{"main returns float", "func main() float { return 0.0; }", "main must be"},
		{"undefined var", "func main() int { return x; }", "undefined variable"},
		{"undefined func", "func main() int { return f(); }", "undefined function"},
		{"type mismatch add", "func main() int { var f float; return 1 + int(f) + (2 + 0) % 1; }", ""},
		{"int plus float", "func main() int { var f float; f = f + 1; return 0; }", "mismatched"},
		{"float condition", "func main() int { if (1.5) { } return 0; }", "must be int"},
		{"assign wrong type", "func main() int { var x int; x = 1.5; return x; }", "expected int"},
		{"array as scalar", "var a[4] int; func main() int { return a; }", "index it"},
		{"scalar indexed", "var s int; func main() int { return s[0]; }", "not an array"},
		{"assign to array name", "var a[4] int; func main() int { a = 1; return 0; }", "assign to an element"},
		{"break outside", "func main() int { break; return 0; }", "break outside"},
		{"continue outside", "func main() int { continue; return 0; }", "continue outside"},
		{"void returns value", "func f() { return 1; } func main() int { f(); return 0; }", "returns a value"},
		{"missing return value", "func f() int { return; } func main() int { return f(); }", "must return"},
		{"wrong arg count", "func f(a int) int { return a; } func main() int { return f(); }", "takes 1 arguments"},
		{"wrong arg type", "func f(a float) int { return 0; } func main() int { return f(1); }", "expected float"},
		{"redeclared local", "func main() int { var x int; var x int; return x; }", "redeclared in this block"},
		{"redeclared global", "var g int; var g int; func main() int { return 0; }", "redeclared"},
		{"builtin redefined", "func putc(c int) { } func main() int { return 0; }", "builtin"},
		{"nonconst case", "func main() int { var v int; switch (1) { case v: } return 0; }", "constant"},
		{"duplicate case", "func main() int { switch (1) { case 2: case 2: } return 0; }", "duplicate case"},
		{"nonconst array size", "var n int; var a[n] int; func main() int { return 0; }", "not an int constant"},
		{"negative array size", "var a[0 - 3] int; func main() int { return 0; }", "out of range"},
		{"too many inits", "var a[2] int = {1,2,3}; func main() int { return 0; }", "exceed"},
		{"string into float array", "var a[8] float = \"x\"; func main() int { return 0; }", "int array"},
		{"bad funcref", "func main() int { return &nothing; }", "undefined function or global"},
		{"void in expression", "func f() { } func main() int { return f(); }", "returns no value"},
		{"not on float", "func main() int { var f float; return !int(f) + !0; }", ""},
		{"bang float", "func main() int { var f float; if (!f) { } return 0; }", "int operand"},
		{"mod on float", "func main() int { var f float; f = f % f; return 0; }", "not defined on float"},
		{"const div zero", "const Z = 1 / 0; func main() int { return Z; }", "division by zero"},
	}
	for _, c := range cases {
		err := compileErr(t, c.src)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestBranchSiteMetadata(t *testing.T) {
	src := `
func main() int {
	var i int;
	var n int = 0;
	while (i < 10) {
		if (i % 2 == 0 && i != 4) {
			n = n + 1;
		}
		i = i + 1;
	}
	switch (n) {
	case 1:
		n = 0;
	}
	return n;
}
`
	p, err := Compile("meta", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var whiles, ifs, ands, arms int
	for _, s := range p.Sites {
		switch s.Label {
		case "while":
			whiles++
			if !s.LoopBack {
				t.Error("while site should be a loop back edge")
			}
			if s.LoopDepth != 1 {
				t.Errorf("while back edge depth = %d, want 1", s.LoopDepth)
			}
		case "if":
			ifs++
			if s.LoopBack {
				t.Error("if site should not be a back edge")
			}
			if s.Line > 0 && s.Label == "if" && s.LoopDepth != 1 {
				t.Errorf("if inside loop has depth %d, want 1", s.LoopDepth)
			}
		case "&&":
			ands++
		case "switch-arm":
			arms++
			if s.LoopDepth != 0 {
				t.Errorf("switch arm depth = %d, want 0", s.LoopDepth)
			}
		}
	}
	if whiles != 1 || ifs != 1 || ands != 1 || arms != 1 {
		t.Errorf("site mix: while=%d if=%d &&=%d arm=%d, want 1 each", whiles, ifs, ands, arms)
	}
	// Site ids must be dense and in order.
	for i, s := range p.Sites {
		if s.ID != i {
			t.Errorf("site %d has id %d", i, s.ID)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	src := `
const A = 6;
const B = A * 7;
func main() int { return B - 2 * (1 + 2); }
`
	p, err := Compile("fold", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The whole expression folds: the body should be ldi + ret.
	main := p.Funcs[p.Main]
	if len(main.Code) > 3 {
		t.Errorf("folded main has %d instructions: %v", len(main.Code), main.Code)
	}
	res, err := vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 36 {
		t.Errorf("exit = %d, want 36", res.ExitCode)
	}
}

func TestGlobalLayoutAndStrings(t *testing.T) {
	src := `
var a[4] int = { 10, 20 };
var s int = 7;
var f[2] float = { 1.5, 2.5 };
var g float = 0.25;

func main() int {
	var msg int = "ok";
	// Identical literals are interned to one address.
	var msg2 int = "ok";
	if (msg != msg2) {
		return -1;
	}
	if (peek(msg) != 'o' || peek(msg + 1) != 'k' || peek(msg + 2) != 0) {
		return -2;
	}
	return a[0] + a[1] + a[2] + s + int(f[0] + f[1] + g * 4.0);
}
`
	p, err := Compile("glob", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 { // 10+20+0+7 + int(1.5+2.5+1.0)=5
		t.Errorf("exit = %d, want 42", res.ExitCode)
	}
}

// TestDCEEquivalence checks the core compiler invariant the paper's
// methodology rests on: dead-branch elimination changes instruction
// counts but never observable behaviour.
func TestDCEEquivalence(t *testing.T) {
	src := `
const DEBUG = 0;
const MODE = 3;
func work(x int) int {
	if (DEBUG == 1) {
		putc('D');
	}
	switch (MODE) {
	case 1:
		return x;
	case 3:
		return x * 2;
	default:
		return -x;
	}
}
func main() int {
	var i int;
	var n int = 0;
	while (DEBUG != 0) {
		putc('!');
	}
	for (i = 0; i < 50; i = i + 1) {
		n = n + work(i);
	}
	putc('0' + n % 10);
	return n;
}
`
	plain, err := Compile("plain", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dce, err := Compile("dce", src, Options{DeadBranchElim: true})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := vm.Run(plain, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := vm.Run(dce, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.ExitCode != rd.ExitCode || string(rp.Output) != string(rd.Output) {
		t.Errorf("behaviour differs: exit %d/%d output %q/%q", rp.ExitCode, rd.ExitCode, rp.Output, rd.Output)
	}
	if rd.Instrs >= rp.Instrs {
		t.Errorf("DCE did not reduce instructions: %d vs %d", rd.Instrs, rp.Instrs)
	}
	if len(dce.Sites) >= len(plain.Sites) {
		t.Errorf("DCE did not remove static sites: %d vs %d", len(dce.Sites), len(plain.Sites))
	}
}

func TestValidatePassesForAllSmokePrograms(t *testing.T) {
	src := `
var data[64] int;
func fill(n int) {
	var i int;
	for (i = 0; i < n; i = i + 1) {
		data[i] = i * i;
	}
}
func main() int {
	fill(64);
	return data[63];
}
`
	for _, opts := range []Options{{}, {DeadBranchElim: true}} {
		p, err := Compile("v", src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
		_ = isa.Disasm(p) // must not panic
	}
}

func TestForLoopSemantics(t *testing.T) {
	res := runMF(t, `
func main() int {
	var total int = 0;
	var i int;
	for (i = 0; i < 10; i = i + 1) {
		if (i == 3) { continue; }
		if (i == 8) { break; }
		total = total + i;
	}
	return total;
}
`, "", Options{})
	// 0+1+2+4+5+6+7 = 25
	if res.ExitCode != 25 {
		t.Errorf("exit = %d, want 25", res.ExitCode)
	}
}

func TestNestedLoopsAndShadowing(t *testing.T) {
	res := runMF(t, `
var x int = 100;
func main() int {
	var sum int = 0;
	var i int;
	for (i = 0; i < 3; i = i + 1) {
		var x int = i * 10;
		var j int;
		for (j = 0; j < 2; j = j + 1) {
			sum = sum + x + j;
		}
	}
	return sum + x;
}
`, "", Options{})
	// inner: sum over i of 2*(10i)+1 = (0+1)+(10+11)+(20+21)=63; +100
	if res.ExitCode != 163 {
		t.Errorf("exit = %d, want 163", res.ExitCode)
	}
}

func TestFloatParamsAndReturns(t *testing.T) {
	res := runMF(t, `
func mix(a float, n int, b float) float {
	if (n == 0) {
		return a;
	}
	return (a + b) / 2.0;
}
func main() int {
	return int(mix(1.0, 1, 3.0) * 10.0);
}
`, "", Options{})
	if res.ExitCode != 20 {
		t.Errorf("exit = %d, want 20", res.ExitCode)
	}
}

func TestRecursionDeep(t *testing.T) {
	res := runMF(t, `
func sum(n int) int {
	if (n == 0) { return 0; }
	return n + sum(n - 1);
}
func main() int { return sum(1000); }
`, "", Options{})
	if res.ExitCode != 500500 {
		t.Errorf("sum(1000) = %d, want 500500", res.ExitCode)
	}
}

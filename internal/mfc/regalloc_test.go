package mfc

import (
	"testing"
)

// These tests stress the register allocator's contiguity requirements
// for call-argument staging: nested calls as arguments force staging
// blocks to be allocated while other staging blocks and temporaries
// are live.

func TestNestedCallsAsArguments(t *testing.T) {
	res := runMF(t, `
func add3(a int, b int, c int) int { return a + b + c; }
func twice(x int) int { return x * 2; }
func main() int {
	// Every argument is itself a call; staging for add3 must survive
	// the inner calls' own staging.
	return add3(twice(1), add3(twice(2), twice(3), 4), twice(add3(5, 6, 7)));
}
`, "", Options{})
	// 2 + (4+6+4) + 2*(18) = 2 + 14 + 36 = 52
	if res.ExitCode != 52 {
		t.Errorf("exit = %d, want 52", res.ExitCode)
	}
}

func TestMixedIntFloatArgStaging(t *testing.T) {
	res := runMF(t, `
func mix(a int, x float, b int, y float, c int) float {
	return float(a + b + c) + x * y;
}
func half(v float) float { return v * 0.5; }
func main() int {
	// Int and float staging blocks are separate and interleaved.
	return int(mix(1, half(4.0), 2, half(8.0), 3) * 10.0);
}
`, "", Options{})
	// (1+2+3) + 2*4 = 14 -> 140
	if res.ExitCode != 140 {
		t.Errorf("exit = %d, want 140", res.ExitCode)
	}
}

func TestCallInsideConditionAndIndex(t *testing.T) {
	res := runMF(t, `
var a[10] int = { 5, 10, 15, 20, 25, 30, 35, 40, 45, 50 };
func pick(i int) int { return i % 10; }
func main() int {
	var n int = 0;
	var i int;
	for (i = 0; i < 20; i = i + 1) {
		if (a[pick(i)] > 20 && pick(i + 1) != 3) {
			n = n + a[pick(i * 3)];
		}
	}
	return n;
}
`, "", Options{})
	if res.ExitCode == 0 {
		t.Error("expected nonzero accumulation")
	}
	// Run twice to confirm determinism of the allocation-heavy path.
	res2 := runMF(t, `
var a[10] int = { 5, 10, 15, 20, 25, 30, 35, 40, 45, 50 };
func pick(i int) int { return i % 10; }
func main() int {
	var n int = 0;
	var i int;
	for (i = 0; i < 20; i = i + 1) {
		if (a[pick(i)] > 20 && pick(i + 1) != 3) {
			n = n + a[pick(i * 3)];
		}
	}
	return n;
}
`, "", Options{})
	if res.ExitCode != res2.ExitCode {
		t.Errorf("nondeterministic: %d vs %d", res.ExitCode, res2.ExitCode)
	}
}

func TestIndirectCallArgStaging(t *testing.T) {
	res := runMF(t, `
func sum3(a int, b int, c int) int { return a + b + c; }
func id(x int) int { return x; }
func main() int {
	var f int = &sum3;
	// icall3 staging interleaved with direct-call evaluation.
	return icall3(f, id(10), icall1(&id, 20), id(30));
}
`, "", Options{})
	if res.ExitCode != 60 {
		t.Errorf("exit = %d, want 60", res.ExitCode)
	}
}

func TestDeepExpressionTemporaries(t *testing.T) {
	res := runMF(t, `
func main() int {
	var a int = 1;
	var b int = 2;
	var c int = 3;
	var d int = 4;
	// A deep tree forces many simultaneous temporaries.
	return ((a + b) * (c + d) - (a * b + c * d)) *
	       ((d - c) * (b - a) + (a + d) * (b + c)) +
	       ((a | b) & (c ^ d)) << ((a + b) % 3);
}
`, "", Options{})
	// (3*7 - (2+12)) * (1*1 + 5*5) + ((3 & 7) << 0) = 7*26 + 3 = 185
	if res.ExitCode != 185 {
		t.Errorf("exit = %d, want 185", res.ExitCode)
	}
}

func TestFrameSizesAreTight(t *testing.T) {
	p, err := Compile("p", `
func tiny() int { return 1; }
func main() int { return tiny(); }
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Funcs {
		if f.NumIRegs > 8 {
			t.Errorf("%s uses %d int registers for a trivial body", f.Name, f.NumIRegs)
		}
	}
}

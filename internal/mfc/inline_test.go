package mfc

import (
	"bytes"
	"testing"

	"branchprof/internal/vm"
)

const inlineSrc = `
var data[32] int;

func clamp(x int, lo int, hi int) int {
	if (x < lo) { return lo; }
	if (x > hi) { return hi; }
	return x;
}

func note(c int) {
	putc(c);
}

func weight(x int) float {
	if (x < 0) { return 0.0; }
	return float(x) * 0.5;
}

func main() int {
	var i int;
	var sum int = 0;
	var f float = 0.0;
	for (i = -5; i < 25; i = i + 1) {
		sum = sum + clamp(i, 0, 15);
		f = f + weight(i);
	}
	note('d'); note('o'); note('n'); note('e');
	data[0] = sum;
	return sum + int(f);
}
`

func compileBoth(t *testing.T, src string) (plain, inlined *vm.Result) {
	t.Helper()
	p1, err := Compile("p", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile("p", src, Options{InlineCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := vm.Run(p1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := vm.Run(p2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r1, r2
}

func TestInlinePreservesBehaviour(t *testing.T) {
	plain, inlined := compileBoth(t, inlineSrc)
	if plain.ExitCode != inlined.ExitCode {
		t.Errorf("exit codes differ: %d vs %d", plain.ExitCode, inlined.ExitCode)
	}
	if !bytes.Equal(plain.Output, inlined.Output) {
		t.Errorf("outputs differ: %q vs %q", plain.Output, inlined.Output)
	}
}

func TestInlineRemovesCalls(t *testing.T) {
	plain, inlined := compileBoth(t, inlineSrc)
	if plain.DirectCalls == 0 {
		t.Fatal("test program should make direct calls when not inlining")
	}
	if inlined.DirectCalls != 0 {
		t.Errorf("inlined image still makes %d direct calls", inlined.DirectCalls)
	}
	if inlined.DirectReturns != 0 {
		t.Errorf("inlined image still makes %d direct returns", inlined.DirectReturns)
	}
	// Inlining eliminates call/return and argument-staging overhead.
	if inlined.Instrs >= plain.Instrs {
		t.Errorf("inlining did not reduce instructions: %d vs %d", inlined.Instrs, plain.Instrs)
	}
}

func TestInlineRecursiveNotExpanded(t *testing.T) {
	src := `
func fact(n int) int {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
func main() int { return fact(10); }
`
	p, err := Compile("p", src, Options{InlineCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 3628800 {
		t.Errorf("fact(10) = %d", res.ExitCode)
	}
	if res.DirectCalls == 0 {
		t.Error("recursive function must remain a real call")
	}
}

func TestInlineDepthCapped(t *testing.T) {
	// f -> g -> h -> k chains stop at the depth cap but stay correct.
	src := `
func k(x int) int { return x + 1; }
func h(x int) int { return k(x) + 1; }
func g(x int) int { return h(x) + 1; }
func f(x int) int { return g(x) + 1; }
func main() int { return f(0); }
`
	p, err := Compile("p", src, Options{InlineCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 4 {
		t.Errorf("f(0) = %d, want 4", res.ExitCode)
	}
}

func TestInlineParamShadowing(t *testing.T) {
	// The caller's x must feed the callee's parameter even though the
	// callee names its parameter x too, and assignments to the inlined
	// parameter must not clobber the caller's variable.
	src := `
func bump(x int) int {
	x = x + 100;
	return x;
}
func main() int {
	var x int = 5;
	var y int = bump(x);
	return y * 1000 + x;
}
`
	for _, opts := range []Options{{}, {InlineCalls: true}} {
		p, err := Compile("p", src, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := vm.Run(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != 105005 {
			t.Errorf("opts %+v: got %d, want 105005", opts, res.ExitCode)
		}
	}
}

func TestInlineSizeBound(t *testing.T) {
	big := `
func big(x int) int {
	x = x + 1; x = x + 1; x = x + 1; x = x + 1; x = x + 1;
	x = x + 1; x = x + 1; x = x + 1; x = x + 1; x = x + 1;
	return x;
}
func main() int { return big(0); }
`
	p, err := Compile("p", big, Options{InlineCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectCalls != 1 {
		t.Errorf("oversized body was inlined (calls=%d)", res.DirectCalls)
	}
	// Raising the bound inlines it.
	p, err = Compile("p", big, Options{InlineCalls: true, InlineMaxStmts: 32})
	if err != nil {
		t.Fatal(err)
	}
	res, err = vm.Run(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectCalls != 0 {
		t.Errorf("raised bound did not inline (calls=%d)", res.DirectCalls)
	}
}

// TestInlineFuzzEquivalence: inlining never changes behaviour on the
// random program corpus.
func TestInlineFuzzEquivalence(t *testing.T) {
	for seed := int64(3000); seed < 3100; seed++ {
		src := generate(seed)
		p1, err := Compile("p", src, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p2, err := Compile("p", src, Options{InlineCalls: true, InlineMaxStmts: 16})
		if err != nil {
			t.Fatalf("seed %d (inline): %v", seed, err)
		}
		cfg := &vm.Config{Fuel: 50_000_000}
		r1, err := vm.Run(p1, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := vm.Run(p2, nil, cfg)
		if err != nil {
			t.Fatalf("seed %d (inline): %v\nsource:\n%s", seed, err, src)
		}
		if r1.ExitCode != r2.ExitCode || !bytes.Equal(r1.Output, r2.Output) {
			t.Fatalf("seed %d: inlining changed behaviour: exit %d/%d\nsource:\n%s",
				seed, r1.ExitCode, r2.ExitCode, src)
		}
	}
}

// TestInlineWorkloadsEquivalent: inlining preserves the observable
// behaviour of every real workload on its first dataset.
func TestInlineWorkloadsEquivalent(t *testing.T) {
	// Import cycle prevents using the workloads package here; instead
	// exercise the prelude-heavy smoke program, which calls puti/puts
	// recursively and through loops.
	src := `
func digitsum(n int) int {
	var s int = 0;
	while (n > 0) {
		s = s + n % 10;
		n = n / 10;
	}
	return s;
}
func main() int {
	var i int;
	var acc int = 0;
	for (i = 0; i < 500; i = i + 1) {
		acc = acc + digitsum(i * 37);
	}
	return acc;
}
`
	plain, inlined := compileBoth(t, src)
	if plain.ExitCode != inlined.ExitCode {
		t.Fatalf("exit %d vs %d", plain.ExitCode, inlined.ExitCode)
	}
	if inlined.DirectCalls != 0 {
		t.Errorf("digitsum not inlined: %d calls", inlined.DirectCalls)
	}
}

// Package mfc compiles MF source (see internal/mfc/parser for the
// grammar) to isa.Program images.
//
// The compiler plays the role of the Multiflow trace-scheduling
// compiler in the paper's methodology, in the respects the experiments
// depend on:
//
//   - every source-level conditional branch — if, while, for, each
//     short-circuit && and ||, and each arm of a switch (which is
//     lowered to cascaded conditional branches, exactly as the paper's
//     compiler lowered multi-way branches) — becomes one OpBr with a
//     stable, densely numbered branch site;
//   - constant folding happens always, but *dead-branch elimination*
//     (removing conditional branches whose outcome is a compile-time
//     constant, together with the dead arm) is behind
//     Options.DeadBranchElim. The paper had to switch global dead code
//     elimination off to keep IFPROBBER and MFPixie branch numbering
//     in sync, and Table 1 measures what that left on the table; our
//     experiments do the same;
//   - loops are emitted bottom-tested so the loop branch is a back
//     edge taken once per iteration, giving the "loop vs non-loop"
//     heuristic predictor the same information the paper's naive
//     heuristics had.
package mfc

import (
	"fmt"

	"branchprof/internal/isa"
	"branchprof/internal/mfc/ast"
	"branchprof/internal/mfc/parser"
	"branchprof/internal/mfc/token"
)

// Options controls compilation.
type Options struct {
	// DeadBranchElim removes conditional branches with compile-time
	// constant outcomes along with their dead arms. Off by default to
	// mirror the paper's measurement configuration (Table 1 quantifies
	// the difference).
	DeadBranchElim bool
	// InlineCalls expands calls to small non-recursive functions in
	// place, eliminating their call/return breaks in control — the
	// capability the paper calls important for ILP compilers ("the
	// Multiflow compiler used some simple heuristics to do this
	// automatically when a compiler switch was set"). Inlined code
	// contributes fresh branch sites, so profiles are only comparable
	// between images compiled with the same setting.
	InlineCalls bool
	// InlineMaxStmts bounds the body size eligible for inlining;
	// 0 means the default of 8 statements.
	InlineMaxStmts int
	// UseSelects if-converts simple ifs into branch-free select
	// instructions, as the Trace front ends did (paper footnote 2).
	// Like inlining, it changes the branch-site table, so profiles
	// only line up between images compiled with the same setting.
	UseSelects bool
}

// Error is a semantic error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// constVal is a folded compile-time constant.
type constVal struct {
	typ ast.Type
	i   int64
	f   float64
}

// global describes a global scalar or array.
type global struct {
	typ   ast.Type
	base  int64 // word address in the int or float memory
	size  int64 // 1 for scalars
	array bool
	pos   token.Pos
}

// funcSym describes a declared function.
type funcSym struct {
	index int
	decl  *ast.FuncDecl
}

// module holds per-compilation state shared across functions.
type module struct {
	opts    Options
	name    string
	consts  map[string]constVal
	globals map[string]*global
	funcs   map[string]*funcSym
	order   []*ast.FuncDecl

	intMem   int64
	floatMem int64
	intData  []int64
	fltData  []float64
	strings  map[string]int64 // interned string literal → address

	sites []isa.BranchSite
}

// Compile compiles one MF source unit. name identifies the unit in
// diagnostics and reports.
func Compile(name, src string, opts Options) (*isa.Program, error) {
	file, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	m := &module{
		opts:    opts,
		name:    name,
		consts:  make(map[string]constVal),
		globals: make(map[string]*global),
		funcs:   make(map[string]*funcSym),
		strings: make(map[string]int64),
	}
	if err := m.collect(file); err != nil {
		return nil, err
	}
	p := &isa.Program{Source: name, Funcs: make([]isa.Func, len(m.order))}
	for _, fd := range m.order {
		fc := newFuncCompiler(m, fd)
		f, err := fc.compile()
		if err != nil {
			return nil, err
		}
		p.Funcs[m.funcs[fd.Name].index] = f
	}
	mi := -1
	if fs, ok := m.funcs["main"]; ok {
		mi = fs.index
		if fs.decl.Ret != ast.Int || len(fs.decl.Params) != 0 {
			return nil, errf(fs.decl.P, "main must be func main() int")
		}
	} else {
		return nil, fmt.Errorf("mfc: %s: no main function", name)
	}
	p.Main = mi
	p.IntMem = int(m.intMem)
	p.FloatMem = int(m.floatMem)
	p.IntData = m.intData
	p.FloatData = m.fltData
	p.Sites = m.sites
	if p.IntMem == 0 {
		p.IntMem = 1 // keep the VM's memory non-nil even for pure-register programs
	}
	if p.FloatMem == 0 {
		p.FloatMem = 1
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("mfc: internal error compiling %s: %w", name, err)
	}
	return p, nil
}

// collect lays out globals and registers constants and functions.
func (m *module) collect(file *ast.File) error {
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.ConstDecl:
			if err := m.checkRedecl(d.Name, d.P); err != nil {
				return err
			}
			cv, err := m.fold(d.Value)
			if err != nil {
				return err
			}
			if cv == nil {
				return errf(d.P, "const %s is not a constant expression", d.Name)
			}
			m.consts[d.Name] = *cv
		case *ast.GlobalVar:
			if err := m.checkRedecl(d.Name, d.P); err != nil {
				return err
			}
			g := &global{typ: d.Type, size: 1, pos: d.P}
			if d.Size != nil {
				cv, err := m.fold(d.Size)
				if err != nil {
					return err
				}
				if cv == nil || cv.typ != ast.Int {
					return errf(d.P, "array size of %s is not an int constant", d.Name)
				}
				if cv.i <= 0 || cv.i > 1<<28 {
					return errf(d.P, "array size %d of %s out of range", cv.i, d.Name)
				}
				g.size = cv.i
				g.array = true
			}
			if err := m.initGlobal(d, g); err != nil {
				return err
			}
			m.globals[d.Name] = g
		case *ast.FuncDecl:
			if err := m.checkRedecl(d.Name, d.P); err != nil {
				return err
			}
			if isBuiltin(d.Name) {
				return errf(d.P, "%s is a builtin and cannot be redefined", d.Name)
			}
			m.funcs[d.Name] = &funcSym{index: len(m.order), decl: d}
			m.order = append(m.order, d)
		}
	}
	return nil
}

func (m *module) checkRedecl(name string, pos token.Pos) error {
	if _, ok := m.consts[name]; ok {
		return errf(pos, "%s redeclared (previously a const)", name)
	}
	if _, ok := m.globals[name]; ok {
		return errf(pos, "%s redeclared (previously a global)", name)
	}
	if _, ok := m.funcs[name]; ok {
		return errf(pos, "%s redeclared (previously a func)", name)
	}
	return nil
}

// initGlobal assigns the global's address and fills initial data.
func (m *module) initGlobal(d *ast.GlobalVar, g *global) error {
	if d.Type == ast.Int {
		g.base = m.intMem
		m.intMem += g.size
	} else {
		g.base = m.floatMem
		m.floatMem += g.size
	}
	if d.IsStr {
		if d.Type != ast.Int {
			return errf(d.P, "string initializer requires an int array")
		}
		if int64(len(d.InitStr))+1 > g.size {
			return errf(d.P, "string initializer (%d bytes + NUL) exceeds array size %d", len(d.InitStr), g.size)
		}
		m.growIntData(g.base + g.size)
		for i := 0; i < len(d.InitStr); i++ {
			m.intData[g.base+int64(i)] = int64(d.InitStr[i])
		}
		return nil
	}
	if len(d.Init) == 0 {
		return nil
	}
	if int64(len(d.Init)) > g.size {
		return errf(d.P, "%d initializers exceed array size %d", len(d.Init), g.size)
	}
	for i, e := range d.Init {
		cv, err := m.fold(e)
		if err != nil {
			return err
		}
		if cv == nil {
			return errf(e.Pos(), "initializer element is not constant")
		}
		if cv.typ != d.Type {
			return errf(e.Pos(), "initializer element is %s, array is %s", cv.typ, d.Type)
		}
		if d.Type == ast.Int {
			m.growIntData(g.base + g.size)
			m.intData[g.base+int64(i)] = cv.i
		} else {
			m.growFltData(g.base + g.size)
			m.fltData[g.base+int64(i)] = cv.f
		}
	}
	return nil
}

func (m *module) growIntData(n int64) {
	for int64(len(m.intData)) < n {
		m.intData = append(m.intData, 0)
	}
}

func (m *module) growFltData(n int64) {
	for int64(len(m.fltData)) < n {
		m.fltData = append(m.fltData, 0)
	}
}

// internString places a NUL-terminated string in int memory once and
// returns its address.
func (m *module) internString(s string) int64 {
	if a, ok := m.strings[s]; ok {
		return a
	}
	base := m.intMem
	m.intMem += int64(len(s)) + 1
	m.growIntData(m.intMem)
	for i := 0; i < len(s); i++ {
		m.intData[base+int64(i)] = int64(s[i])
	}
	m.strings[s] = base
	return base
}

// newSite registers a static conditional branch and returns its id.
func (m *module) newSite(s isa.BranchSite) int32 {
	s.ID = len(m.sites)
	m.sites = append(m.sites, s)
	return int32(s.ID)
}

// fold evaluates e as a compile-time constant, returning nil (no
// error) when it is not constant.
func (m *module) fold(e ast.Expr) (*constVal, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return &constVal{typ: ast.Int, i: e.Value}, nil
	case *ast.FloatLit:
		return &constVal{typ: ast.Float, f: e.Value}, nil
	case *ast.Ident:
		if cv, ok := m.consts[e.Name]; ok {
			return &cv, nil
		}
		return nil, nil
	case *ast.Cast:
		x, err := m.fold(e.X)
		if err != nil || x == nil {
			return nil, err
		}
		if e.To == ast.Int && x.typ == ast.Float {
			return &constVal{typ: ast.Int, i: int64(x.f)}, nil
		}
		if e.To == ast.Float && x.typ == ast.Int {
			return &constVal{typ: ast.Float, f: float64(x.i)}, nil
		}
		return x, nil
	case *ast.Unary:
		x, err := m.fold(e.X)
		if err != nil || x == nil {
			return nil, err
		}
		switch e.Op {
		case token.Minus:
			if x.typ == ast.Int {
				return &constVal{typ: ast.Int, i: -x.i}, nil
			}
			return &constVal{typ: ast.Float, f: -x.f}, nil
		case token.Bang:
			if x.typ != ast.Int {
				return nil, errf(e.P, "! requires an int operand")
			}
			return &constVal{typ: ast.Int, i: b2i(x.i == 0)}, nil
		case token.Tilde:
			if x.typ != ast.Int {
				return nil, errf(e.P, "~ requires an int operand")
			}
			return &constVal{typ: ast.Int, i: ^x.i}, nil
		}
		return nil, nil
	case *ast.Binary:
		x, err := m.fold(e.X)
		if err != nil || x == nil {
			return nil, err
		}
		// Short-circuit folding only needs a constant left side.
		if e.Op == token.AndAnd && x.typ == ast.Int && x.i == 0 {
			return &constVal{typ: ast.Int, i: 0}, nil
		}
		if e.Op == token.OrOr && x.typ == ast.Int && x.i != 0 {
			return &constVal{typ: ast.Int, i: 1}, nil
		}
		y, err := m.fold(e.Y)
		if err != nil || y == nil {
			return nil, err
		}
		return foldBinary(e, x, y)
	}
	return nil, nil
}

func foldBinary(e *ast.Binary, x, y *constVal) (*constVal, error) {
	if x.typ != y.typ {
		return nil, errf(e.P, "mismatched operand types %s and %s", x.typ, y.typ)
	}
	if x.typ == ast.Float {
		switch e.Op {
		case token.Plus:
			return &constVal{typ: ast.Float, f: x.f + y.f}, nil
		case token.Minus:
			return &constVal{typ: ast.Float, f: x.f - y.f}, nil
		case token.Star:
			return &constVal{typ: ast.Float, f: x.f * y.f}, nil
		case token.Slash:
			return &constVal{typ: ast.Float, f: x.f / y.f}, nil
		case token.Lt:
			return &constVal{typ: ast.Int, i: b2i(x.f < y.f)}, nil
		case token.Le:
			return &constVal{typ: ast.Int, i: b2i(x.f <= y.f)}, nil
		case token.Gt:
			return &constVal{typ: ast.Int, i: b2i(x.f > y.f)}, nil
		case token.Ge:
			return &constVal{typ: ast.Int, i: b2i(x.f >= y.f)}, nil
		case token.Eq:
			return &constVal{typ: ast.Int, i: b2i(x.f == y.f)}, nil
		case token.Ne:
			return &constVal{typ: ast.Int, i: b2i(x.f != y.f)}, nil
		}
		return nil, errf(e.P, "operator %s not defined on float", e.Op)
	}
	switch e.Op {
	case token.Plus:
		return &constVal{typ: ast.Int, i: x.i + y.i}, nil
	case token.Minus:
		return &constVal{typ: ast.Int, i: x.i - y.i}, nil
	case token.Star:
		return &constVal{typ: ast.Int, i: x.i * y.i}, nil
	case token.Slash:
		if y.i == 0 {
			return nil, errf(e.P, "constant division by zero")
		}
		return &constVal{typ: ast.Int, i: x.i / y.i}, nil
	case token.Percent:
		if y.i == 0 {
			return nil, errf(e.P, "constant remainder by zero")
		}
		return &constVal{typ: ast.Int, i: x.i % y.i}, nil
	case token.Amp:
		return &constVal{typ: ast.Int, i: x.i & y.i}, nil
	case token.Pipe:
		return &constVal{typ: ast.Int, i: x.i | y.i}, nil
	case token.Caret:
		return &constVal{typ: ast.Int, i: x.i ^ y.i}, nil
	case token.Shl:
		if y.i < 0 || y.i > 63 {
			return nil, errf(e.P, "constant shift out of range")
		}
		return &constVal{typ: ast.Int, i: x.i << uint(y.i)}, nil
	case token.Shr:
		if y.i < 0 || y.i > 63 {
			return nil, errf(e.P, "constant shift out of range")
		}
		return &constVal{typ: ast.Int, i: x.i >> uint(y.i)}, nil
	case token.Lt:
		return &constVal{typ: ast.Int, i: b2i(x.i < y.i)}, nil
	case token.Le:
		return &constVal{typ: ast.Int, i: b2i(x.i <= y.i)}, nil
	case token.Gt:
		return &constVal{typ: ast.Int, i: b2i(x.i > y.i)}, nil
	case token.Ge:
		return &constVal{typ: ast.Int, i: b2i(x.i >= y.i)}, nil
	case token.Eq:
		return &constVal{typ: ast.Int, i: b2i(x.i == y.i)}, nil
	case token.Ne:
		return &constVal{typ: ast.Int, i: b2i(x.i != y.i)}, nil
	case token.AndAnd:
		return &constVal{typ: ast.Int, i: b2i(x.i != 0 && y.i != 0)}, nil
	case token.OrOr:
		return &constVal{typ: ast.Int, i: b2i(x.i != 0 || y.i != 0)}, nil
	}
	return nil, errf(e.P, "operator %s not defined on int", e.Op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
